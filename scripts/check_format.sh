#!/usr/bin/env bash
# Verifies that every C++ source file matches .clang-format. Advisory in CI
# (the workflow marks the job continue-on-error); run locally with no
# arguments, or with --fix to reformat in place.
set -euo pipefail

cd "$(dirname "$0")/.."

if ! command -v clang-format >/dev/null 2>&1; then
  echo "clang-format not found; skipping format check." >&2
  exit 0
fi

mapfile -t files < <(find src tests bench examples \
  -name '*.cc' -o -name '*.h' -o -name '*.cpp' | sort)

if [[ "${1:-}" == "--fix" ]]; then
  clang-format -i "${files[@]}"
  echo "Reformatted ${#files[@]} files."
  exit 0
fi

failed=0
for f in "${files[@]}"; do
  if ! diff -q <(clang-format "$f") "$f" >/dev/null; then
    echo "needs formatting: $f"
    failed=1
  fi
done

if [[ $failed -ne 0 ]]; then
  echo
  echo "Run scripts/check_format.sh --fix to reformat." >&2
  exit 1
fi
echo "All ${#files[@]} files formatted."
