#!/usr/bin/env bash
# Fails when any tracked markdown file contains a broken intra-repo link:
# a [text](target) whose target is a relative path that does not exist.
# External links (scheme://, mailto:) and pure in-page anchors (#...) are
# skipped; anchors on existing files are accepted. Run from anywhere.
set -euo pipefail

cd "$(dirname "$0")/.."

errors=0
# Tracked markdown only, so build artifacts and vendored trees stay out.
while IFS= read -r file; do
  dir=$(dirname "$file")
  # Pull every (target) of a markdown link. grep -o keeps it line-based, so
  # multi-line links are out of scope (and out of style).
  while IFS= read -r target; do
    # Strip surrounding parens and any #anchor / "title" suffix.
    target=${target#(}
    target=${target%)}
    target=${target%% *}
    target=${target%%#*}
    [ -z "$target" ] && continue                      # pure anchor
    case "$target" in
      *://*|mailto:*) continue ;;                     # external
    esac
    if [ "${target#/}" != "$target" ]; then
      resolved=".$target"                             # repo-absolute
    else
      resolved="$dir/$target"
    fi
    if [ ! -e "$resolved" ]; then
      echo "BROKEN: $file -> $target"
      errors=$((errors + 1))
    fi
  done < <(grep -oE '\]\([^)]+\)' "$file" | sed 's/^]//')
done < <(git ls-files --cached --others --exclude-standard '*.md')

if [ "$errors" -gt 0 ]; then
  echo "check_docs: $errors broken intra-repo link(s)"
  exit 1
fi
echo "check_docs: all intra-repo markdown links resolve"
