// Preprocessing-cost workload (Sec. 4.2.1): "Preparing this [k'-NN] matrix
// takes approximately 30 minutes on the million-sized dataset". The
// historical bench timed BuildKnnMatrix alone; this one races it against the
// workload subsystem's KnnGraphBuilder (workload/knn_graph.h) on one
// sift-like base:
//
//   brute    — BuildKnnMatrix(data, k), the original per-row O(n^2 d) scan.
//   exact    — KnnGraphBuilder::BuildExact: symmetric tiles, each scored once
//              for both endpoints. Must be bit-identical to brute.
//   stream   — KnnGraphBuilder::BuildFromStream over a MatrixStream: the
//              out-of-core path, also bit-identical; per-chunk scoring
//              latencies are summarized (p50/p95/p99/mean).
//   approx   — KnnGraphBuilder::BuildApproximate over an IVF-Flat index
//              trained on the same rows, budget = nprobe. Wall clock counts
//              TRAIN + BUILD; recall is measured against the exact graph.
//
// Output: human-readable table plus machine-readable BENCH_graph.json
// (override the path with argv[1]). CI greps "approx_recall_ge_target"
// (recall >= 0.90) and the committed run at n=20000 carries
// "approx_speedup_ge_5x" (train+build >= 5x faster than brute force).
//
// Scale knobs: USP_BENCH_GRAPH_N (default 20000), USP_BENCH_GRAPH_DIM (128),
// USP_BENCH_GRAPH_K (10), USP_BENCH_GRAPH_NLIST (0 = ~sqrt(n) * 1.5),
// USP_BENCH_GRAPH_NPROBE (8), USP_BENCH_GRAPH_RESIDENT (4096).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench/common.h"
#include "dataset/fvecs_stream.h"
#include "dataset/synthetic.h"
#include "ivf/ivf.h"
#include "knn/brute_force.h"
#include "tensor/matrix.h"
#include "util/env.h"
#include "workload/knn_graph.h"

namespace usp::bench {
namespace {

using SteadyClock = std::chrono::steady_clock;

double SecondsSince(SteadyClock::time_point start) {
  return std::chrono::duration<double>(SteadyClock::now() - start).count();
}

/// ChunkStream decorator that records, for every chunk it hands out, how
/// long the caller spent before asking for the next one — i.e. the per-chunk
/// scoring latency of the streaming build, without instrumenting the builder.
class TimingStream : public ChunkStream {
 public:
  TimingStream(ChunkStream* inner, std::vector<double>* chunk_ms)
      : inner_(inner), chunk_ms_(chunk_ms) {}

  size_t dim() const override { return inner_->dim(); }
  size_t num_rows() const override { return inner_->num_rows(); }

  Status Reset() override {
    armed_ = false;
    return inner_->Reset();
  }

  StatusOr<MatrixView> NextChunk(size_t max_rows) override {
    if (armed_) {
      chunk_ms_->push_back(
          std::chrono::duration<double, std::milli>(SteadyClock::now() -
                                                    handed_out_)
              .count());
    }
    StatusOr<MatrixView> chunk = inner_->NextChunk(max_rows);
    armed_ = chunk.ok() && chunk.value().rows() > 0;
    handed_out_ = SteadyClock::now();
    return chunk;
  }

 private:
  ChunkStream* inner_;
  std::vector<double>* chunk_ms_;
  bool armed_ = false;
  SteadyClock::time_point handed_out_;
};

bool SameGraph(const KnnResult& a, const KnnResult& b) {
  return a.k == b.k && a.indices == b.indices &&
         std::memcmp(a.distances.data(), b.distances.data(),
                     a.distances.size() * sizeof(float)) == 0;
}

int Run(const char* out_path) {
  const size_t n = static_cast<size_t>(EnvInt("USP_BENCH_GRAPH_N", 20000));
  const size_t d = static_cast<size_t>(EnvInt("USP_BENCH_GRAPH_DIM", 128));
  const size_t k = static_cast<size_t>(EnvInt("USP_BENCH_GRAPH_K", 10));
  size_t nlist = static_cast<size_t>(EnvInt("USP_BENCH_GRAPH_NLIST", 0));
  if (nlist == 0) {
    while ((nlist + 1) * (nlist + 1) * 4 <= n * 9) ++nlist;  // ~1.5 sqrt(n)
  }
  const size_t nprobe = static_cast<size_t>(EnvInt("USP_BENCH_GRAPH_NPROBE", 5));
  const size_t resident =
      static_cast<size_t>(EnvInt("USP_BENCH_GRAPH_RESIDENT", 4096));
  const double recall_target = 0.90;

  std::printf("=== k-NN graph construction: n=%zu d=%zu k=%zu ===\n", n, d, k);
  const Matrix data = MakeSiftLike(n, 42);
  const double edges = static_cast<double>(n) * static_cast<double>(k);

  // Baseline: the historical per-row brute-force build.
  auto start = SteadyClock::now();
  const KnnResult brute = BuildKnnMatrix(data, k);
  const double brute_s = SecondsSince(start);
  std::printf("  %-28s %8.3f s  %12.0f edges/s\n", "brute (BuildKnnMatrix)",
              brute_s, edges / brute_s);

  // Symmetric exact build — must reproduce brute force bit for bit.
  KnnGraphConfig config;
  config.k = k;
  const KnnGraphBuilder builder(config);
  start = SteadyClock::now();
  const KnnResult exact = builder.BuildExact(data);
  const double exact_s = SecondsSince(start);
  const bool exact_identical = SameGraph(exact, brute);
  std::printf("  %-28s %8.3f s  %12.0f edges/s  identical=%s\n",
              "exact (symmetric tiles)", exact_s, edges / exact_s,
              exact_identical ? "yes" : "NO");

  // Out-of-core build over a chunk stream; also bit-identical.
  std::vector<double> chunk_ms;
  MatrixStream matrix_stream(data);
  TimingStream timing_stream(&matrix_stream, &chunk_ms);
  start = SteadyClock::now();
  StatusOr<KnnResult> streamed = builder.BuildFromStream(&timing_stream,
                                                         resident);
  const double stream_s = SecondsSince(start);
  const bool stream_identical = streamed.ok() && SameGraph(streamed.value(),
                                                           brute);
  const LatencySummary chunk_lat = SummarizeLatencies(chunk_ms);
  std::printf("  %-28s %8.3f s  %12.0f edges/s  identical=%s\n",
              "stream (out-of-core)", stream_s, edges / stream_s,
              stream_identical ? "yes" : "NO");
  std::printf("    per-chunk scoring: p50=%.2f ms p95=%.2f ms p99=%.2f ms "
              "mean=%.2f ms (%zu chunks)\n",
              chunk_lat.p50, chunk_lat.p95, chunk_lat.p99, chunk_lat.mean,
              chunk_ms.size());

  // Index-accelerated approximate build; train time counts.
  IvfConfig ivf_config;
  ivf_config.nlist = nlist;
  // Rough coarse centroids are enough here: graph recall at these probe
  // counts has ~10 points of headroom over the 0.90 target, and every Lloyd
  // iteration costs O(n * nlist * d) — the same order as the whole
  // approximate build.
  ivf_config.kmeans_iterations = 4;
  ivf_config.seed = 7;
  start = SteadyClock::now();
  const IvfFlatIndex ivf(&data, ivf_config);
  const double train_s = SecondsSince(start);
  start = SteadyClock::now();
  const KnnResult approx = builder.BuildApproximate(ivf, data, nprobe);
  const double build_s = SecondsSince(start);
  const double approx_s = train_s + build_s;
  const double recall = KnnGraphBuilder::GraphRecall(approx, brute);
  const double speedup = brute_s / approx_s;
  std::printf("  %-28s %8.3f s  %12.0f edges/s  (train %.3f + build %.3f)\n",
              "approx (IVF-Flat)", approx_s, edges / approx_s, train_s,
              build_s);
  std::printf("    nlist=%zu nprobe=%zu  recall=%.4f  speedup vs brute=%.1fx\n",
              nlist, nprobe, recall, speedup);

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"n\": %zu, \"dim\": %zu, \"k\": %zu,\n", n, d, k);
  std::fprintf(f, "  \"brute_force_seconds\": %.4f,\n", brute_s);
  std::fprintf(f, "  \"brute_force_edges_per_sec\": %.0f,\n", edges / brute_s);
  std::fprintf(f, "  \"exact_seconds\": %.4f,\n", exact_s);
  std::fprintf(f, "  \"exact_edges_per_sec\": %.0f,\n", edges / exact_s);
  std::fprintf(f, "  \"exact_identical\": %s,\n",
               exact_identical ? "true" : "false");
  std::fprintf(f, "  \"stream_seconds\": %.4f,\n", stream_s);
  std::fprintf(f, "  \"stream_identical\": %s,\n",
               stream_identical ? "true" : "false");
  std::fprintf(f,
               "  \"stream_chunk_ms\": {\"p50\": %.3f, \"p95\": %.3f, "
               "\"p99\": %.3f, \"mean\": %.3f},\n",
               chunk_lat.p50, chunk_lat.p95, chunk_lat.p99, chunk_lat.mean);
  std::fprintf(f, "  \"approx_nlist\": %zu, \"approx_nprobe\": %zu,\n", nlist,
               nprobe);
  std::fprintf(f, "  \"approx_train_seconds\": %.4f,\n", train_s);
  std::fprintf(f, "  \"approx_build_seconds\": %.4f,\n", build_s);
  std::fprintf(f, "  \"approx_total_seconds\": %.4f,\n", approx_s);
  std::fprintf(f, "  \"approx_edges_per_sec\": %.0f,\n", edges / approx_s);
  std::fprintf(f, "  \"approx_recall\": %.4f,\n", recall);
  std::fprintf(f, "  \"approx_speedup\": %.2f,\n", speedup);
  std::fprintf(f, "  \"approx_speedup_ge_5x\": %s,\n",
               speedup >= 5.0 ? "true" : "false");
  std::fprintf(f, "  \"approx_recall_ge_target\": %s\n",
               recall >= recall_target && exact_identical && stream_identical
                   ? "true"
                   : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("  wrote %s\n", out_path);
  return exact_identical && stream_identical ? 0 : 1;
}

}  // namespace
}  // namespace usp::bench

int main(int argc, char** argv) {
  return usp::bench::Run(argc > 1 ? argv[1] : "BENCH_graph.json");
}
