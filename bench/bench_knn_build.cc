// Preprocessing-cost claim (Sec. 4.2.1): "Preparing this [k'-NN] matrix takes
// approximately 30 minutes on the million-sized dataset". Google-benchmark
// timings of BuildKnnMatrix across dataset sizes; the O(n^2 d) scaling lets
// the 1M-point cost be extrapolated from these points.
#include <benchmark/benchmark.h>

#include "dataset/synthetic.h"
#include "knn/brute_force.h"

namespace {

void BM_BuildKnnMatrix(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const usp::Matrix data = usp::MakeSiftLike(n, 42);
  for (auto _ : state) {
    const usp::KnnResult knn = usp::BuildKnnMatrix(data, 10);
    benchmark::DoNotOptimize(knn.indices.data());
  }
  state.SetComplexityN(static_cast<int64_t>(n));
  state.counters["points"] = static_cast<double>(n);
}

BENCHMARK(BM_BuildKnnMatrix)
    ->Arg(1000)
    ->Arg(2000)
    ->Arg(4000)
    ->Arg(8000)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Complexity(benchmark::oNSquared);

void BM_BruteForceQueries(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const usp::Matrix base = usp::MakeSiftLike(n, 42);
  const usp::Matrix queries = usp::MakeSiftLike(100, 77);
  for (auto _ : state) {
    const usp::KnnResult result = usp::BruteForceKnn(base, queries, 10);
    benchmark::DoNotOptimize(result.indices.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 100);
}

BENCHMARK(BM_BruteForceQueries)
    ->Arg(4000)
    ->Arg(16000)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
