// Out-of-core scale benchmark for serve/out_of_core_builder.h. Builds an
// IVF-Flat index from a 1M-point synthetic .fvecs base that is generated,
// trained on, and encoded chunk by chunk — the full fp32 matrix never exists
// in this process — then serves it through the mmap path and sweeps nprobe
// for recall@10 vs QPS. Written machine-readable to BENCH_scale.json
// (override the path with argv[1]; conventions in docs/BENCHMARKS.md):
//
//   1. generate — chunk-wise Gaussian base to disk (FvecsWriter).
//   2. build    — disk-direct OutOfCoreBuilder run; reports wall time and
//                 the getrusage peak-RSS delta, measured before any
//                 ground-truth or mmap work touches the base. The headline
//                 acceptance number: rss_fraction_of_base must stay < 0.25.
//   3. truth    — streaming exact top-10 (per-chunk BruteForceKnn, merged),
//                 still O(chunk) memory.
//   4. sweep    — recall@10 and QPS per nprobe through MmapIndex; the
//                 acceptance flag records whether any budget reaches 0.9.
//
// The base is a Gaussian mixture (USP_BENCH_SCALE_CLUSTERS centers, unit
// noise) generated chunk by chunk; queries perturb base rows so ground-truth
// neighbors are meaningful. Scale knobs: USP_BENCH_SCALE_N (default
// 1000000), USP_BENCH_SCALE_DIM (64), USP_BENCH_SCALE_CLUSTERS (1024),
// USP_BENCH_SCALE_NLIST (1024), USP_BENCH_SCALE_CHUNK (16384),
// USP_BENCH_SCALE_EPOCHS (3), USP_BENCH_SCALE_SAMPLE (32768),
// USP_BENCH_SCALE_QUERIES (100), USP_BENCH_SCALE_REPS (2). The CI smoke run
// uses USP_BENCH_SCALE_N=200000. The exit code reports whether the run
// completed; the acceptance flags live in the JSON.
#include <sys/resource.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "dataset/fvecs_stream.h"
#include "index/serialize.h"
#include "knn/brute_force.h"
#include "serve/out_of_core_builder.h"
#include "tensor/matrix.h"
#include "util/env.h"
#include "util/rng.h"
#include "util/timer.h"

namespace usp::bench {
namespace {

constexpr size_t kTopK = 10;

size_t PeakRssKb() {
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<size_t>(usage.ru_maxrss);
}

/// Exact top-k over the fvecs base without loading it: per-chunk brute force
/// merged into a running top-k per query.
KnnResult StreamingGroundTruth(const std::string& fvecs_path,
                               const Matrix& queries, size_t chunk_rows) {
  KnnResult truth;
  truth.k = kTopK;
  const size_t nq = queries.rows();
  std::vector<std::vector<std::pair<float, uint32_t>>> best(nq);

  auto reader = FvecsReader::Open(fvecs_path);
  if (!reader.ok()) {
    std::fprintf(stderr, "ground truth: %s\n",
                 reader.status().ToString().c_str());
    return truth;
  }
  size_t row_base = 0;
  for (;;) {
    auto chunk = reader.value().NextChunk(chunk_rows);
    if (!chunk.ok() || chunk.value().rows() == 0) break;
    const KnnResult local =
        BruteForceKnn(chunk.value(), queries, std::min(kTopK, chunk.value().rows()));
    for (size_t q = 0; q < nq; ++q) {
      auto& heap = best[q];
      for (size_t j = 0; j < local.k; ++j) {
        heap.emplace_back(local.distances[q * local.k + j],
                          static_cast<uint32_t>(row_base) + local.Row(q)[j]);
      }
      std::sort(heap.begin(), heap.end());
      if (heap.size() > kTopK) heap.resize(kTopK);
    }
    row_base += chunk.value().rows();
  }
  truth.indices.resize(nq * kTopK);
  truth.distances.resize(nq * kTopK);
  for (size_t q = 0; q < nq; ++q) {
    for (size_t j = 0; j < best[q].size(); ++j) {
      truth.indices[q * kTopK + j] = best[q][j].second;
      truth.distances[q * kTopK + j] = best[q][j].first;
    }
  }
  return truth;
}

double RecallAt10(const BatchSearchResult& result, const KnnResult& truth) {
  size_t hits = 0, want = 0;
  for (size_t q = 0; q * truth.k < truth.indices.size(); ++q) {
    want += truth.k;
    for (size_t j = 0; j < result.k; ++j) {
      const uint32_t id = result.Row(q)[j];
      for (size_t t = 0; t < truth.k; ++t) {
        if (truth.Row(q)[t] == id) {
          ++hits;
          break;
        }
      }
    }
  }
  return want == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(want);
}

struct SweepPoint {
  size_t budget;
  double recall;
  double qps;
  double ns_per_query;
};

int Run(const char* out_path) {
  const size_t n = static_cast<size_t>(EnvInt("USP_BENCH_SCALE_N", 1000000));
  const size_t dim = static_cast<size_t>(EnvInt("USP_BENCH_SCALE_DIM", 64));
  const size_t clusters =
      static_cast<size_t>(EnvInt("USP_BENCH_SCALE_CLUSTERS", 1024));
  const size_t nlist =
      static_cast<size_t>(EnvInt("USP_BENCH_SCALE_NLIST", 1024));
  const size_t chunk =
      static_cast<size_t>(EnvInt("USP_BENCH_SCALE_CHUNK", 16384));
  const size_t epochs =
      static_cast<size_t>(EnvInt("USP_BENCH_SCALE_EPOCHS", 3));
  const size_t sample =
      static_cast<size_t>(EnvInt("USP_BENCH_SCALE_SAMPLE", 32768));
  const size_t nq =
      static_cast<size_t>(EnvInt("USP_BENCH_SCALE_QUERIES", 100));
  const size_t reps = static_cast<size_t>(EnvInt("USP_BENCH_SCALE_REPS", 2));

  const std::string fvecs_path = std::string(out_path) + ".base.fvecs";
  const std::string index_path = std::string(out_path) + ".index.usp";
  const uint64_t base_bytes =
      static_cast<uint64_t>(n) * dim * sizeof(float);

  // Phase 1: chunk-wise mixture generation straight to disk. Centers are
  // N(0, spread^2) rows, points add unit Gaussian noise — clustered enough
  // for IVF to be meaningful, overlapping enough to need real probing.
  const float spread = 0.7f;
  Rng center_rng(43);
  Matrix centers = Matrix::RandomGaussian(clusters, dim, &center_rng);
  for (size_t i = 0; i < centers.size(); ++i) centers.data()[i] *= spread;
  const auto mixture_chunk = [&](size_t count, Rng* rng) {
    Matrix rows = Matrix::RandomGaussian(count, dim, rng);
    for (size_t i = 0; i < count; ++i) {
      const float* c = centers.Row(rng->UniformInt(clusters));
      float* x = rows.Row(i);
      for (size_t j = 0; j < dim; ++j) x[j] += c[j];
    }
    return rows;
  };

  WallTimer gen_timer;
  {
    Rng rng(42);
    FvecsWriter writer(fvecs_path);
    for (size_t done = 0; done < n; done += chunk) {
      const size_t count = std::min(chunk, n - done);
      if (!writer.Append(mixture_chunk(count, &rng)).ok()) {
        std::fprintf(stderr, "cannot write %s\n", fvecs_path.c_str());
        return 1;
      }
    }
    if (!writer.Close().ok()) return 1;
  }
  const double gen_seconds = gen_timer.ElapsedSeconds();
  std::printf("generate: %zu x %zu (%.0f MB) in %.1fs\n", n, dim,
              static_cast<double>(base_bytes) / 1e6, gen_seconds);

  // Phase 2: the out-of-core build, RSS-instrumented. Nothing before this
  // point has touched more than one chunk at a time.
  OutOfCoreConfig config;
  config.kind = OutOfCoreKind::kIvfFlat;
  config.chunk_rows = chunk;
  config.nlist = nlist;
  config.train_epochs = epochs;
  config.sample_rows = sample;
  config.seed = 42;

  const size_t rss_before_kb = PeakRssKb();
  WallTimer build_timer;
  auto stats = OutOfCoreBuilder(config).Build(fvecs_path, index_path);
  const double build_seconds = build_timer.ElapsedSeconds();
  const size_t rss_after_kb = PeakRssKb();
  if (!stats.ok()) {
    std::fprintf(stderr, "build: %s\n", stats.status().ToString().c_str());
    return 1;
  }
  const size_t rss_delta_kb = rss_after_kb - rss_before_kb;
  const double rss_fraction =
      static_cast<double>(rss_delta_kb) * 1024.0 /
      static_cast<double>(base_bytes);
  std::printf(
      "build: %.1fs, file %.0f MB, peak-RSS delta %zu KiB (%.1f%% of base), "
      "nlist %zu, epochs %zu, lists [%zu, %zu] (%zu empty)\n",
      build_seconds, static_cast<double>(stats.value().file_size) / 1e6,
      rss_delta_kb, rss_fraction * 100.0, stats.value().nlist,
      stats.value().epochs_run, stats.value().min_list,
      stats.value().max_list, stats.value().empty_lists);

  // Phase 3: streaming exact ground truth against mixture-drawn queries.
  Rng qrng(7);
  const Matrix queries = mixture_chunk(nq, &qrng);
  WallTimer gt_timer;
  const KnnResult truth = StreamingGroundTruth(fvecs_path, queries, chunk);
  std::printf("truth: %zu queries in %.1fs\n", nq, gt_timer.ElapsedSeconds());

  // Phase 4: serve through the mmap path, sweeping nprobe.
  auto index = MmapIndex(index_path);
  if (!index.ok()) {
    std::fprintf(stderr, "mmap: %s\n", index.status().ToString().c_str());
    return 1;
  }
  std::vector<SweepPoint> sweep;
  double best_recall = 0.0;
  for (size_t budget :
       {size_t{1}, size_t{2}, size_t{4}, size_t{8}, size_t{16}, size_t{32},
        size_t{64}, size_t{128}, size_t{256}}) {
    if (budget > stats.value().nlist) break;
    SearchRequest request;
    request.queries = queries;
    request.options.k = kTopK;
    request.options.budget = budget;
    BatchSearchResult result;
    double seconds = 1e100;
    for (size_t r = 0; r < reps; ++r) {
      WallTimer timer;
      result = index.value()->SearchBatch(request);
      seconds = std::min(seconds, timer.ElapsedSeconds());
    }
    SweepPoint point;
    point.budget = budget;
    point.recall = RecallAt10(result, truth);
    point.qps = static_cast<double>(nq) / seconds;
    point.ns_per_query = seconds * 1e9 / static_cast<double>(nq);
    sweep.push_back(point);
    best_recall = std::max(best_recall, point.recall);
    std::printf("sweep: nprobe=%-4zu recall@10=%.4f  %10.0f ns/query (%.0f qps)\n",
                budget, point.recall, point.ns_per_query, point.qps);
  }

  const bool rss_ok = rss_fraction < 0.25;
  const bool recall_ok = best_recall >= 0.9;
  std::printf("acceptance: rss_fraction=%.3f (<0.25: %s), best recall=%.4f "
              "(>=0.9: %s)\n",
              rss_fraction, rss_ok ? "yes" : "NO", best_recall,
              recall_ok ? "yes" : "NO");

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fprintf(f,
               "{\n  \"config\": {\"points\": %zu, \"dim\": %zu, "
               "\"base_bytes\": %llu, \"nlist\": %zu, \"chunk_rows\": %zu, "
               "\"train_epochs\": %zu, \"sample_rows\": %zu, \"queries\": "
               "%zu, \"k\": %zu},\n",
               n, dim, static_cast<unsigned long long>(base_bytes), nlist,
               chunk, epochs, sample, nq, kTopK);
  std::fprintf(f,
               "  \"build\": {\"seconds\": %.2f, \"generate_seconds\": %.2f, "
               "\"file_bytes\": %llu, \"peak_rss_delta_kib\": %zu, "
               "\"rss_fraction_of_base\": %.4f, \"nlist\": %zu, "
               "\"epochs_run\": %zu, \"train_inertia\": %.1f, \"chunks\": "
               "%zu, \"min_list\": %zu, \"max_list\": %zu, \"empty_lists\": "
               "%zu},\n",
               build_seconds, gen_seconds,
               static_cast<unsigned long long>(stats.value().file_size),
               rss_delta_kb, rss_fraction, stats.value().nlist,
               stats.value().epochs_run, stats.value().train_inertia,
               stats.value().chunks, stats.value().min_list,
               stats.value().max_list, stats.value().empty_lists);
  std::fprintf(f, "  \"mmap_sweep\": [\n");
  for (size_t i = 0; i < sweep.size(); ++i) {
    const SweepPoint& p = sweep[i];
    std::fprintf(f,
                 "    {\"nprobe\": %zu, \"recall_at_10\": %.4f, \"qps\": "
                 "%.1f, \"ns_per_query\": %.1f}%s\n",
                 p.budget, p.recall, p.qps, p.ns_per_query,
                 i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"acceptance\": {\"rss_under_quarter_of_base\": %s, "
               "\"best_recall_at_10\": %.4f, \"recall_target_met\": %s}\n}\n",
               rss_ok ? "true" : "false", best_recall,
               recall_ok ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);

  std::remove(fvecs_path.c_str());
  std::remove(index_path.c_str());
  return 0;
}

}  // namespace
}  // namespace usp::bench

int main(int argc, char** argv) {
  return usp::bench::Run(argc > 1 ? argv[1] : "BENCH_scale.json");
}
