// Table 3: offline training time of the USP method per configuration (the
// paper reports MNIST/16: 2min, MNIST/256: 12min, SIFT/16: 6min, SIFT/256:
// 40min for 3-model ensembles on a K80 GPU; our absolute numbers are CPU
// wall-clock at reduced n — the row ORDERING and the eta values are the
// comparable content). Also reports the Neural LSH preprocessing split for
// the Sec. 5.3 comparison ("significantly lower than the several hours of
// preprocessing needed for Neural LSH").
#include <cstdio>

#include "bench/common.h"
#include "core/ensemble.h"
#include "core/hierarchical.h"
#include "graphpart/neural_lsh.h"
#include "util/timer.h"

namespace usp::bench {
namespace {

double TrainFlatEnsemble(const Workload& w, size_t bins, float eta,
                         size_t epochs) {
  UspEnsembleConfig config;
  config.model.num_bins = bins;
  config.model.eta = eta;
  config.model.epochs = epochs;
  config.model.batch_size = 512;
  config.model.seed = 31;
  config.num_models = 3;  // Table 3 times cover the 3-model ensemble
  UspEnsemble ensemble(config);
  WallTimer timer;
  ensemble.Train(w.base, w.knn_matrix);
  return timer.ElapsedSeconds();
}

double TrainHierarchical(const Workload& w, float eta, size_t epochs) {
  HierarchicalConfig config;
  config.fanouts = {16, 16};
  config.model.eta = eta;
  config.model.epochs = epochs;
  config.model.batch_size = 512;
  config.model.seed = 31;
  HierarchicalUspPartitioner tree(config);
  WallTimer timer;
  tree.Train(w.base, w.knn_matrix);
  return timer.ElapsedSeconds();
}

void Run() {
  const BenchScale scale = GetScale();
  const Workload& sift = SiftLikeWorkload();
  const Workload& mnist = MnistLikeWorkload();

  std::printf(
      "=== Table 3: USP offline training times (3-model ensembles / 16x16 "
      "tree) ===\n");
  std::printf("  %-12s %-9s %-14s %-8s %s\n", "dataset", "bins",
              "training time", "eta", "paper (K80 GPU, full-size data)");

  const double mnist16 = TrainFlatEnsemble(mnist, 16, 7.0f, scale.epochs);
  std::printf("  %-12s %-9d %10.1fs   %-8.0f %s\n", "mnist-like", 16, mnist16,
              7.0, "2 min");
  const double mnist256 = TrainHierarchical(mnist, 30.0f, scale.epochs);
  std::printf("  %-12s %-9d %10.1fs   %-8.0f %s\n", "mnist-like", 256,
              mnist256, 30.0, "12 min");
  const double sift16 = TrainFlatEnsemble(sift, 16, 7.0f, scale.epochs);
  std::printf("  %-12s %-9d %10.1fs   %-8.0f %s\n", "sift-like", 16, sift16,
              7.0, "6 min");
  const double sift256 = TrainHierarchical(sift, 10.0f, scale.epochs);
  std::printf("  %-12s %-9d %10.1fs   %-8.0f %s\n", "sift-like", 256, sift256,
              10.0, "40 min");

  // Sec. 5.3 comparison: Neural LSH's label-generation preprocessing.
  NeuralLshConfig nlsh_config;
  nlsh_config.num_bins = 256;
  nlsh_config.hidden_dim = 512;
  nlsh_config.epochs = scale.epochs;
  nlsh_config.seed = 5;
  NeuralLsh nlsh(nlsh_config);
  nlsh.Train(sift.base, sift.knn_matrix);
  std::printf(
      "\n  Neural LSH (sift-like, 256 bins): graph partition %.1fs + "
      "classifier %.1fs\n",
      nlsh.partition_seconds(), nlsh.train_seconds());
  std::printf(
      "  (paper: graph-partition preprocessing takes hours on 1M points; our "
      "USP needs none)\n");
}

}  // namespace
}  // namespace usp::bench

int main() {
  usp::bench::Run();
  return 0;
}
