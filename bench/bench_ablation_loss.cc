// Ablation: the balance parameter eta (Sec. 5.1.4 discusses its trade-off).
// Sweeps eta including 0 (no computational-cost term), reporting partition
// balance, the exact quality cost (Eq. 2), and 1-probe index accuracy.
//
// Expected: eta = 0 collapses towards few giant bins (great quality cost,
// useless candidate sets); large eta flattens the partition at some quality
// cost; the paper's chosen values sit at the knee.
#include <cstdio>

#include "bench/common.h"
#include "core/loss.h"
#include "core/partition_index.h"
#include "core/partitioner.h"

namespace usp::bench {
namespace {

void Run() {
  const BenchScale scale = GetScale();
  const Workload& w = SiftLikeWorkload();
  constexpr size_t kBins = 16;

  std::printf("=== Ablation: loss balance parameter eta (sift-like, %zu bins) "
              "===\n",
              kBins);
  std::printf("  %8s %14s %14s %16s %12s %12s\n", "eta", "balance-ratio",
              "largest-bin", "quality (Eq.2)", "acc@1probe", "mean|C|@1");

  for (float eta : {0.0f, 1.0f, 4.0f, 7.0f, 15.0f, 30.0f}) {
    UspTrainConfig config;
    config.num_bins = kBins;
    config.eta = eta;
    config.epochs = scale.epochs;
    config.batch_size = 512;
    config.seed = 51;
    UspPartitioner partitioner(config);
    partitioner.Train(w.base, w.knn_matrix);

    const auto bins = partitioner.AssignBins(w.base);
    const auto histogram = BinHistogram(bins, kBins);
    size_t largest = 0;
    for (size_t count : histogram) largest = std::max(largest, count);

    // Exact quality cost of Eq. 2 over the dataset.
    std::vector<uint32_t> neighbor_bins(w.base.rows() * w.knn_matrix.k);
    for (size_t i = 0; i < w.base.rows(); ++i) {
      const uint32_t* nbrs = w.knn_matrix.Row(i);
      for (size_t t = 0; t < w.knn_matrix.k; ++t) {
        neighbor_bins[i * w.knn_matrix.k + t] = bins[nbrs[t]];
      }
    }
    const double quality = ExactQualityCost(bins, neighbor_bins,
                                            w.base.rows(), w.knn_matrix.k);

    PartitionIndex index(&w.base, &partitioner, bins);
    SearchRequest request;
    request.queries = w.queries;
    request.options.k = 10;
    request.options.budget = 1;
    const auto result = index.SearchBatch(request);
    std::printf("  %8.1f %14.2f %14zu %16.3f %12.4f %12.1f\n", eta,
                BalanceRatio(bins, kBins), largest, quality,
                KnnAccuracy(result, w.ground_truth.indices, w.ground_truth.k),
                result.MeanCandidates());
  }
}

}  // namespace
}  // namespace usp::bench

int main() {
  usp::bench::Run();
  return 0;
}
