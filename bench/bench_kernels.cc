// Microbenchmark for the src/dist/ kernel layer: 1-vs-1 scalar vs dispatched
// vs batched ScoreBlock / gather ScoreIds, at d in {32, 128, 960}, plus the
// compressed-domain kernels of dist/quant_kernels.h (4-bit PQ fast-scan vs
// the per-code float-ADC walk, SQ8 int8 scans vs the fp32 loop) and a
// whole-index Sq8-vs-IVF-Flat QPS comparison at matched recall@10. Writes
// machine-readable results to BENCH_kernels.json (override the path with
// argv[1]) to seed the perf trajectory; the headline numbers are the speedup
// of the dispatched batched kernels over the scalar 1-vs-1 loop and of the
// pq4 shuffle kernel over the per-code ADC loop.
//
// Scale knobs: USP_BENCH_KERNEL_MB (working set, default 64) and
// USP_BENCH_KERNEL_REPS (timed repetitions, default 5); the index comparison
// follows the shared bench scale (USP_BENCH_SIFT_N / USP_BENCH_QUERIES).
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <numeric>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "core/partition_index.h"
#include "dist/distance_kernels.h"
#include "dist/quant_kernels.h"
#include "ivf/ivf.h"
#include "quant/fastscan.h"
#include "quant/sq8_index.h"
#include "util/env.h"
#include "util/timer.h"

namespace usp::bench {
namespace {

struct BenchResult {
  std::string kernel;
  std::string impl;
  size_t dim;
  size_t rows;
  double ns_per_row;
  double gb_per_sec;
  double speedup_vs_scalar_1v1;  // 0 when it IS the baseline
};

/// Whole-index operating points of the Sq8-vs-IVF-Flat comparison.
struct IndexQps {
  double sq8_recall = 0.0;
  double sq8_qps = 0.0;
  double ivf_recall = 0.0;
  double ivf_qps = 0.0;
  size_t ivf_probes = 0;
  double qps_ratio = 0.0;  // sq8_qps / ivf_qps at matched recall
};

double BestOfReps(size_t reps, const std::function<void()>& fn) {
  double best = 1e100;
  for (size_t r = 0; r < reps; ++r) {
    WallTimer timer;
    fn();
    best = std::min(best, timer.ElapsedSeconds());
  }
  return best;
}

/// Sq8Index vs IVF-Flat at matched recall@10 on the default bench workload:
/// measures the exhaustive quantized scan against the probe count IVF-Flat
/// needs to reach the same recall.
IndexQps RunIndexComparison(size_t reps) {
  const Workload& w = SiftLikeWorkload();
  IndexQps out;
  const size_t nq = w.queries.rows();
  const size_t k = 10;

  Sq8IndexConfig sq8_config;
  const Sq8Index sq8(&w.base, sq8_config);
  SearchRequest request;
  request.queries = w.queries;
  request.options.k = k;
  request.options.budget = 1;  // the SQ8 scan is exhaustive regardless
  const BatchSearchResult sq8_result = sq8.SearchBatch(request);
  out.sq8_recall =
      KnnAccuracy(sq8_result, w.ground_truth.indices, w.ground_truth.k);
  out.sq8_qps = static_cast<double>(nq) /
                BestOfReps(reps, [&] { sq8.SearchBatch(request); });

  IvfConfig ivf_config;
  ivf_config.nlist = std::max<size_t>(
      1, static_cast<size_t>(std::sqrt(static_cast<double>(w.base.rows()))));
  const IvfFlatIndex ivf(&w.base, ivf_config);

  // Smallest probe budget whose recall matches SQ8's (all lists if it never
  // gets there — then the comparison is against exact search).
  out.ivf_probes = ivf_config.nlist;
  for (size_t probes = 1; probes <= ivf_config.nlist; ++probes) {
    request.options.budget = probes;
    const double recall = KnnAccuracy(ivf.SearchBatch(request),
                                      w.ground_truth.indices,
                                      w.ground_truth.k);
    if (recall >= out.sq8_recall) {
      out.ivf_probes = probes;
      out.ivf_recall = recall;
      break;
    }
    out.ivf_recall = recall;
  }
  request.options.budget = out.ivf_probes;
  out.ivf_qps = static_cast<double>(nq) /
                BestOfReps(reps, [&] { ivf.SearchBatch(request); });
  out.qps_ratio = out.ivf_qps > 0.0 ? out.sq8_qps / out.ivf_qps : 0.0;
  return out;
}

int Run(const char* out_path) {
  const size_t budget_floats =
      static_cast<size_t>(EnvInt("USP_BENCH_KERNEL_MB", 64)) * (1u << 20) / 4;
  const size_t reps = static_cast<size_t>(EnvInt("USP_BENCH_KERNEL_REPS", 5));
  const DistanceKernels& scalar = ScalarKernels();
  const DistanceKernels& dispatched = GetDistanceKernels();
  const QuantKernels& quant_scalar = ScalarQuantKernels();
  const QuantKernels& quant = GetQuantKernels();
  std::printf("dispatched kernel set: %s (quantized: %s)\n", dispatched.name,
              quant.name);

  std::vector<BenchResult> results;
  float sink = 0.0f;      // defeats dead-code elimination
  uint64_t isink = 0;     // same, integer domain

  auto record = [&](const std::string& kernel, const std::string& impl,
                    size_t d, size_t rows, double bytes, double seconds,
                    double baseline_seconds) {
    BenchResult r;
    r.kernel = kernel;
    r.impl = impl;
    r.dim = d;
    r.rows = rows;
    r.ns_per_row = seconds * 1e9 / static_cast<double>(rows);
    r.gb_per_sec = bytes / seconds / 1e9;
    r.speedup_vs_scalar_1v1 =
        baseline_seconds > 0.0 ? baseline_seconds / seconds : 0.0;
    results.push_back(r);
    std::printf("%-18s %-7s d=%-4zu rows=%-7zu %8.2f ns/row %7.2f GB/s%s\n",
                kernel.c_str(), impl.c_str(), d, rows, r.ns_per_row,
                r.gb_per_sec,
                baseline_seconds > 0.0
                    ? ("  (" + std::to_string(r.speedup_vs_scalar_1v1) +
                       "x vs baseline)")
                          .c_str()
                    : "");
  };

  for (const size_t d : {size_t{32}, size_t{128}, size_t{960}}) {
    const size_t rows = std::min<size_t>(200000, budget_floats / d);
    std::vector<float> base(rows * d), query(d);
    std::mt19937 gen(42);
    std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
    for (auto& v : base) v = dist(gen);
    for (auto& v : query) v = dist(gen);
    std::vector<uint32_t> ids(rows);
    std::iota(ids.begin(), ids.end(), 0u);
    std::shuffle(ids.begin(), ids.end(), gen);
    std::vector<float> out(rows);
    const double bytes = static_cast<double>(rows) * d * sizeof(float);

    // Baseline: scalar 1-vs-1 loop (the pre-refactor call-site shape).
    const double scalar_1v1 = BestOfReps(reps, [&] {
      for (size_t i = 0; i < rows; ++i) {
        out[i] = scalar.squared_l2(query.data(), base.data() + i * d, d);
      }
      sink += out[rows / 2];
    });
    record("l2_1v1", "scalar", d, rows, bytes, scalar_1v1, 0.0);

    record("l2_1v1", dispatched.name, d, rows, bytes, BestOfReps(reps, [&] {
             for (size_t i = 0; i < rows; ++i) {
               out[i] =
                   dispatched.squared_l2(query.data(), base.data() + i * d, d);
             }
             sink += out[rows / 2];
           }),
           scalar_1v1);

    record("l2_score_block", dispatched.name, d, rows, bytes,
           BestOfReps(reps, [&] {
             dispatched.score_block_l2(query.data(), base.data(), rows, d,
                                       out.data());
             sink += out[rows / 2];
           }),
           scalar_1v1);

    record("l2_score_ids", dispatched.name, d, rows, bytes,
           BestOfReps(reps, [&] {
             dispatched.score_ids_l2(query.data(), base.data(), d, ids.data(),
                                     rows, out.data());
             sink += out[rows / 2];
           }),
           scalar_1v1);

    record("dot_score_block", dispatched.name, d, rows, bytes,
           BestOfReps(reps, [&] {
             dispatched.score_block_dot(query.data(), base.data(), rows, d,
                                        out.data());
             sink += out[rows / 2];
           }),
           scalar_1v1);

    record("dot_score_ids", dispatched.name, d, rows, bytes,
           BestOfReps(reps, [&] {
             dispatched.score_ids_dot(query.data(), base.data(), d, ids.data(),
                                      rows, out.data());
             sink += out[rows / 2];
           }),
           scalar_1v1);
  }

  // --- 4-bit PQ fast-scan vs the per-code float-ADC walk -------------------
  // Baseline is the historical ADC inner loop (one table lookup + add per
  // subspace code); the contender scores 32 codes per 16-byte LUT shuffle.
  for (const size_t m : {size_t{8}, size_t{16}}) {
    constexpr size_t kCodebook = 16;
    const size_t rows = 256 * 1024;  // multiple of the 32-code block
    std::mt19937 gen(7);
    std::uniform_int_distribution<uint32_t> code_dist(0, kCodebook - 1);
    std::uniform_real_distribution<float> val_dist(0.0f, 4.0f);
    std::vector<uint8_t> codes(rows * m);
    for (auto& c : codes) c = static_cast<uint8_t>(code_dist(gen));
    std::vector<float> table(m * kCodebook);
    for (auto& v : table) v = val_dist(gen);

    const PackedCodes packed = PackCodes4(codes.data(), rows, m);
    const QuantizedLut qlut = QuantizeAdcTable(table.data(), m, kCodebook);
    std::vector<float> fscores(rows);
    std::vector<uint16_t> qsums(packed.num_blocks() * kPq4BlockSize);
    const double code_bytes = static_cast<double>(rows) * m;

    const double adc_float = BestOfReps(reps, [&] {
      for (size_t i = 0; i < rows; ++i) {
        const uint8_t* code = codes.data() + i * m;
        float sum = 0.0f;
        for (size_t s = 0; s < m; ++s) {
          sum += table[s * kCodebook + code[s]];
        }
        fscores[i] = sum;
      }
      sink += fscores[rows / 2];
    });
    record("pq4_adc", "float", m, rows, code_bytes, adc_float, 0.0);

    record("pq4_fastscan", quant_scalar.name, m, rows, code_bytes,
           BestOfReps(reps, [&] {
             quant_scalar.pq4_scan(packed.data.data(), qlut.lut.data(), m,
                                   packed.num_blocks(), qsums.data());
             isink += qsums[rows / 2];
           }),
           adc_float);

    record("pq4_fastscan", quant.name, m, rows, code_bytes,
           BestOfReps(reps, [&] {
             quant.pq4_scan(packed.data.data(), qlut.lut.data(), m,
                            packed.num_blocks(), qsums.data());
             isink += qsums[rows / 2];
           }),
           adc_float);
  }

  // --- SQ8 int8 scans vs the scalar fp32 loop ------------------------------
  // Same logical workload (rows x d distances); the int8 rows move 4x fewer
  // bytes and go through the widening madd kernels.
  {
    const size_t d = 128;
    const size_t rows = std::min<size_t>(200000, budget_floats / d);
    std::mt19937 gen(11);
    std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
    std::vector<float> fbase(rows * d), fquery(d);
    for (auto& v : fbase) v = dist(gen);
    for (auto& v : fquery) v = dist(gen);
    std::vector<uint8_t> qbase(rows * d), qquery(d);
    auto encode = [](float v) {
      return static_cast<uint8_t>((v + 1.0f) * 127.5f);
    };
    for (size_t i = 0; i < fbase.size(); ++i) qbase[i] = encode(fbase[i]);
    for (size_t j = 0; j < d; ++j) qquery[j] = encode(fquery[j]);
    std::vector<float> fout(rows);
    std::vector<uint32_t> qout(rows);
    const double qbytes = static_cast<double>(rows) * d;

    const double fp32_l2 = BestOfReps(reps, [&] {
      for (size_t i = 0; i < rows; ++i) {
        fout[i] = scalar.squared_l2(fquery.data(), fbase.data() + i * d, d);
      }
      sink += fout[rows / 2];
    });
    record("sq8_scan_l2", "fp32", d, rows,
           static_cast<double>(rows) * d * sizeof(float), fp32_l2, 0.0);

    record("sq8_scan_l2", quant.name, d, rows, qbytes, BestOfReps(reps, [&] {
             quant.sq8_scan_l2(qquery.data(), qbase.data(), rows, d,
                               qout.data());
             isink += qout[rows / 2];
           }),
           fp32_l2);

    record("sq8_scan_dot", quant.name, d, rows, qbytes, BestOfReps(reps, [&] {
             quant.sq8_scan_dot(qquery.data(), qbase.data(), rows, d,
                                qout.data());
             isink += qout[rows / 2];
           }),
           fp32_l2);
  }

  std::printf("index comparison (Sq8 vs IVF-Flat at matched recall@10)...\n");
  const IndexQps qps = RunIndexComparison(reps);
  std::printf(
      "sq8: recall=%.3f qps=%.0f | ivf_flat: probes=%zu recall=%.3f "
      "qps=%.0f | qps ratio %.2fx\n",
      qps.sq8_recall, qps.sq8_qps, qps.ivf_probes, qps.ivf_recall, qps.ivf_qps,
      qps.qps_ratio);

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n  \"dispatched\": \"%s\",\n", dispatched.name);
  std::fprintf(f,
               "  \"machine\": {\"dispatched_isa\": \"%s\", "
               "\"quant_isa\": \"%s\", \"cores\": %u},\n",
               dispatched.name, quant.name,
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    std::fprintf(f,
                 "    {\"kernel\": \"%s\", \"impl\": \"%s\", \"dim\": %zu, "
                 "\"rows\": %zu, \"ns_per_row\": %.3f, \"gb_per_sec\": %.3f, "
                 "\"speedup_vs_scalar_1v1\": %.3f}%s\n",
                 r.kernel.c_str(), r.impl.c_str(), r.dim, r.rows, r.ns_per_row,
                 r.gb_per_sec, r.speedup_vs_scalar_1v1,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"index_qps\": {\"sq8_recall\": %.4f, \"sq8_qps\": %.1f, "
               "\"ivf_flat_probes\": %zu, \"ivf_flat_recall\": %.4f, "
               "\"ivf_flat_qps\": %.1f, \"qps_ratio\": %.3f}\n",
               qps.sq8_recall, qps.sq8_qps, qps.ivf_probes, qps.ivf_recall,
               qps.ivf_qps, qps.qps_ratio);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s (sink=%g isink=%llu)\n", out_path,
              static_cast<double>(sink),
              static_cast<unsigned long long>(isink));
  return 0;
}

}  // namespace
}  // namespace usp::bench

int main(int argc, char** argv) {
  return usp::bench::Run(argc > 1 ? argv[1] : "BENCH_kernels.json");
}
