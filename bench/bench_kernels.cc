// Microbenchmark for the src/dist/ kernel layer: 1-vs-1 scalar vs dispatched
// vs batched ScoreBlock / gather ScoreIds, at d in {32, 128, 960}. Writes
// machine-readable results to BENCH_kernels.json (override the path with
// argv[1]) to seed the perf trajectory; the headline number is the speedup of
// the dispatched batched kernels over the scalar 1-vs-1 loop.
//
// Scale knobs: USP_BENCH_KERNEL_MB (working set, default 64) and
// USP_BENCH_KERNEL_REPS (timed repetitions, default 5).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <numeric>
#include <random>
#include <string>
#include <vector>

#include "dist/distance_kernels.h"
#include "util/env.h"
#include "util/timer.h"

namespace usp::bench {
namespace {

struct BenchResult {
  std::string kernel;
  std::string impl;
  size_t dim;
  size_t rows;
  double ns_per_row;
  double gb_per_sec;
  double speedup_vs_scalar_1v1;  // 0 when it IS the baseline
};

double BestOfReps(size_t reps, const std::function<void()>& fn) {
  double best = 1e100;
  for (size_t r = 0; r < reps; ++r) {
    WallTimer timer;
    fn();
    best = std::min(best, timer.ElapsedSeconds());
  }
  return best;
}

int Run(const char* out_path) {
  const size_t budget_floats =
      static_cast<size_t>(EnvInt("USP_BENCH_KERNEL_MB", 64)) * (1u << 20) / 4;
  const size_t reps = static_cast<size_t>(EnvInt("USP_BENCH_KERNEL_REPS", 5));
  const DistanceKernels& scalar = ScalarKernels();
  const DistanceKernels& dispatched = GetDistanceKernels();
  std::printf("dispatched kernel set: %s\n", dispatched.name);

  std::vector<BenchResult> results;
  float sink = 0.0f;  // defeats dead-code elimination

  for (const size_t d : {size_t{32}, size_t{128}, size_t{960}}) {
    const size_t rows = std::min<size_t>(200000, budget_floats / d);
    std::vector<float> base(rows * d), query(d);
    std::mt19937 gen(42);
    std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
    for (auto& v : base) v = dist(gen);
    for (auto& v : query) v = dist(gen);
    std::vector<uint32_t> ids(rows);
    std::iota(ids.begin(), ids.end(), 0u);
    std::shuffle(ids.begin(), ids.end(), gen);
    std::vector<float> out(rows);
    const double bytes = static_cast<double>(rows) * d * sizeof(float);

    auto record = [&](const std::string& kernel, const std::string& impl,
                      double seconds, double baseline_seconds) {
      BenchResult r;
      r.kernel = kernel;
      r.impl = impl;
      r.dim = d;
      r.rows = rows;
      r.ns_per_row = seconds * 1e9 / static_cast<double>(rows);
      r.gb_per_sec = bytes / seconds / 1e9;
      r.speedup_vs_scalar_1v1 =
          baseline_seconds > 0.0 ? baseline_seconds / seconds : 0.0;
      results.push_back(r);
      std::printf("%-18s %-7s d=%-4zu rows=%-7zu %8.2f ns/row %7.2f GB/s%s\n",
                  kernel.c_str(), impl.c_str(), d, rows, r.ns_per_row,
                  r.gb_per_sec,
                  baseline_seconds > 0.0
                      ? ("  (" + std::to_string(r.speedup_vs_scalar_1v1) +
                         "x vs scalar 1v1)")
                            .c_str()
                      : "");
    };

    // Baseline: scalar 1-vs-1 loop (the pre-refactor call-site shape).
    const double scalar_1v1 = BestOfReps(reps, [&] {
      for (size_t i = 0; i < rows; ++i) {
        out[i] = scalar.squared_l2(query.data(), base.data() + i * d, d);
      }
      sink += out[rows / 2];
    });
    record("l2_1v1", "scalar", scalar_1v1, 0.0);

    record("l2_1v1", dispatched.name, BestOfReps(reps, [&] {
             for (size_t i = 0; i < rows; ++i) {
               out[i] =
                   dispatched.squared_l2(query.data(), base.data() + i * d, d);
             }
             sink += out[rows / 2];
           }),
           scalar_1v1);

    record("l2_score_block", dispatched.name, BestOfReps(reps, [&] {
             dispatched.score_block_l2(query.data(), base.data(), rows, d,
                                       out.data());
             sink += out[rows / 2];
           }),
           scalar_1v1);

    record("l2_score_ids", dispatched.name, BestOfReps(reps, [&] {
             dispatched.score_ids_l2(query.data(), base.data(), d, ids.data(),
                                     rows, out.data());
             sink += out[rows / 2];
           }),
           scalar_1v1);

    record("dot_score_block", dispatched.name, BestOfReps(reps, [&] {
             dispatched.score_block_dot(query.data(), base.data(), rows, d,
                                        out.data());
             sink += out[rows / 2];
           }),
           scalar_1v1);
  }

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n  \"dispatched\": \"%s\",\n  \"results\": [\n",
               dispatched.name);
  for (size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    std::fprintf(f,
                 "    {\"kernel\": \"%s\", \"impl\": \"%s\", \"dim\": %zu, "
                 "\"rows\": %zu, \"ns_per_row\": %.3f, \"gb_per_sec\": %.3f, "
                 "\"speedup_vs_scalar_1v1\": %.3f}%s\n",
                 r.kernel.c_str(), r.impl.c_str(), r.dim, r.rows, r.ns_per_row,
                 r.gb_per_sec, r.speedup_vs_scalar_1v1,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (sink=%g)\n", out_path, static_cast<double>(sink));
  return 0;
}

}  // namespace
}  // namespace usp::bench

int main(int argc, char** argv) {
  return usp::bench::Run(argc > 1 ? argv[1] : "BENCH_kernels.json");
}
