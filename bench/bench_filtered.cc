// Predicate-filtered search benchmark: QPS and recall vs selectivity for
// every index type, in three modes per (index, selectivity) cell:
//
//   pushdown     selector pushdown pinned (PlanMode::kForcePushdown) — the
//                historical baseline.
//   postfilter   naive post-filter baseline: unfiltered search with the
//                over-fetch window scaled as min(n, k/selectivity), drop
//                disallowed, truncate to k. The window used is recorded per
//                result row (postfilter_overfetch) so comparisons are honest.
//   planner      PlanMode::kAuto — the selectivity-aware query planner
//                (index/query_planner.h) picks the strategy per request; the
//                chosen strategy is recorded per row.
//
// Pushdown + postfilter are written to BENCH_filtered.json (argv[1]); the
// planner mode to BENCH_planner.json (argv[2]); conventions in
// docs/BENCHMARKS.md.
//
// Expected shape: pushdown recall stays ~1.0 at every selectivity (ground
// truth is brute force over the allowed subset, which pushdown matches by
// construction at full budget and closely tracks at working budgets), while
// the post-filter baseline collapses at low selectivity — its over-fetch
// window runs out of allowed ids — and pays the over-fetch in QPS. The
// planner should match the best mode everywhere, and in particular lift
// filtered HNSW off its low-selectivity cliff (allowed < ef degrades graph
// traversal to O(n); the planner reroutes to an allowed-set scan).
//
// Scale knobs: USP_BENCH_FILTERED_N (default 4000), USP_BENCH_FILTERED_QUERIES
// (200), USP_BENCH_FILTERED_REPS (2), USP_BENCH_EPOCHS (USP ensemble).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "baselines/kmeans.h"
#include "bench/common.h"
#include "core/ensemble.h"
#include "hnsw/hnsw.h"
#include "index/query_planner.h"
#include "ivf/ivf.h"
#include "knn/brute_force.h"
#include "quant/pq.h"
#include "quant/scann_index.h"
#include "serve/dynamic_index.h"
#include "util/env.h"
#include "util/rng.h"
#include "util/timer.h"

namespace usp::bench {
namespace {

constexpr size_t kTopK = 10;

struct MeasuredMode {
  double qps = 0.0;
  double recall = 0.0;
  double mean_candidates = 0.0;
};

struct Row {
  std::string index;
  double selectivity;
  MeasuredMode filtered;    // selector pushdown (pinned)
  MeasuredMode postfilter;  // over-fetch + drop + truncate
  MeasuredMode planner;     // PlanMode::kAuto
  size_t postfilter_overfetch = 0;  // actual window used by the baseline
  std::string planner_strategy;     // what kAuto picked for this cell
};

/// One benched index: the engine plus its working-point budget (probes /
/// ef_search / forwarded segment budget).
struct Entry {
  std::string name;
  const Index* index;
  size_t budget;
};

double BestSeconds(size_t reps, const std::function<void()>& fn) {
  double best = 1e100;
  for (size_t r = 0; r < reps; ++r) {
    WallTimer timer;
    fn();
    best = std::min(best, timer.ElapsedSeconds());
  }
  return best;
}

/// recall@k against the filtered ground truth (padding-aware on both sides).
double FilteredRecall(const std::vector<std::vector<uint32_t>>& got,
                      const KnnResult& truth) {
  size_t hits = 0, want = 0;
  for (size_t q = 0; q < got.size(); ++q) {
    std::unordered_set<uint32_t> expected;
    for (size_t j = 0; j < truth.k; ++j) {
      const uint32_t id = truth.Row(q)[j];
      if (id != kInvalidId) expected.insert(id);
    }
    want += expected.size();
    for (uint32_t id : got[q]) {
      if (expected.count(id) > 0) ++hits;
    }
  }
  return want == 0 ? 1.0 : static_cast<double>(hits) / static_cast<double>(want);
}

Row Measure(const Entry& entry, const Workload& w, double selectivity,
            const IdSelectorBitmap& filter, const KnnResult& truth,
            size_t reps) {
  Row row;
  row.index = entry.name;
  row.selectivity = selectivity;
  const size_t nq = w.queries.rows();

  // Mode 1: selector pushdown through the index, pinned so the planner
  // cannot silently swap the strategy under the baseline being measured.
  SearchRequest request;
  request.queries = w.queries;
  request.options.k = kTopK;
  request.options.budget = entry.budget;
  request.options.filter = &filter;
  request.options.plan = PlanMode::kForcePushdown;
  BatchSearchResult pushed;
  row.filtered.qps = static_cast<double>(nq) / BestSeconds(reps, [&] {
    pushed = entry.index->SearchBatch(request);
  });
  {
    std::vector<std::vector<uint32_t>> got(nq);
    for (size_t q = 0; q < nq; ++q) {
      for (size_t j = 0; j < pushed.k; ++j) {
        const uint32_t id = pushed.Row(q)[j];
        if (id != kInvalidId) got[q].push_back(id);
      }
    }
    row.filtered.recall = FilteredRecall(got, truth);
    row.filtered.mean_candidates = pushed.MeanCandidates();
  }

  // Mode 2: post-filter baseline — unfiltered search with the over-fetch
  // window scaled to the *measured* selectivity, min(n, k * n / allowed):
  // the window expected to hold k allowed rows. (A hardcoded 10x window was
  // unfair at low selectivity — far too small for the allowed count — and
  // wasteful at high selectivity.) Then drop disallowed ids and truncate to
  // k; the drop/truncate pass is part of what this strategy costs per query,
  // so it runs inside the timed region.
  const size_t n = w.base.rows();
  const size_t allowed = std::max<size_t>(filter.count(), 1);
  row.postfilter_overfetch =
      std::min(n, std::max(kTopK, (kTopK * n + allowed - 1) / allowed));
  SearchRequest naive;
  naive.queries = w.queries;
  naive.options.k = row.postfilter_overfetch;
  naive.options.budget = entry.budget;
  BatchSearchResult unf;
  std::vector<std::vector<uint32_t>> post_got(nq);
  row.postfilter.qps = static_cast<double>(nq) / BestSeconds(reps, [&] {
    unf = entry.index->SearchBatch(naive);
    for (size_t q = 0; q < nq; ++q) {
      post_got[q].clear();
      for (size_t j = 0; j < unf.k && post_got[q].size() < kTopK; ++j) {
        const uint32_t id = unf.Row(q)[j];
        if (id != kInvalidId && filter.is_member(id)) post_got[q].push_back(id);
      }
    }
  });
  row.postfilter.recall = FilteredRecall(post_got, truth);
  row.postfilter.mean_candidates = unf.MeanCandidates();

  // Mode 3: the planner (PlanMode::kAuto is the SearchOptions default).
  SearchRequest planned_request;
  planned_request.queries = w.queries;
  planned_request.options.k = kTopK;
  planned_request.options.budget = entry.budget;
  planned_request.options.filter = &filter;
  row.planner_strategy = PlanStrategyName(
      PlanFilteredSearch(*entry.index, planned_request.options).strategy);
  BatchSearchResult planned;
  row.planner.qps = static_cast<double>(nq) / BestSeconds(reps, [&] {
    planned = entry.index->SearchBatch(planned_request);
  });
  {
    std::vector<std::vector<uint32_t>> got(nq);
    for (size_t q = 0; q < nq; ++q) {
      for (size_t j = 0; j < planned.k; ++j) {
        const uint32_t id = planned.Row(q)[j];
        if (id != kInvalidId) got[q].push_back(id);
      }
    }
    row.planner.recall = FilteredRecall(got, truth);
    row.planner.mean_candidates = planned.MeanCandidates();
  }
  return row;
}

int Run(const char* out_path, const char* planner_out_path) {
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kSiftLike;
  spec.num_base = static_cast<size_t>(EnvInt("USP_BENCH_FILTERED_N", 4000));
  spec.num_queries =
      static_cast<size_t>(EnvInt("USP_BENCH_FILTERED_QUERIES", 200));
  spec.gt_k = kTopK;
  spec.knn_k = 10;
  spec.seed = 57;
  const size_t reps =
      static_cast<size_t>(EnvInt("USP_BENCH_FILTERED_REPS", 2));
  std::printf("building workload (n=%zu, d=128)...\n", spec.num_base);
  const Workload w = MakeWorkload(spec);
  const size_t n = w.base.rows();

  // --- Build all seven index types over the shared corpus ----------------
  constexpr size_t kBins = 32;
  WallTimer timer;

  KMeansConfig km_config;
  km_config.num_clusters = kBins;
  km_config.seed = 3;
  KMeansPartitioner kmeans(w.base, km_config);
  PartitionIndex partition(&w.base, &kmeans);

  IvfConfig flat_config;
  flat_config.nlist = kBins;
  flat_config.seed = 4;
  IvfFlatIndex ivf_flat(&w.base, flat_config);

  IvfConfig pq_config;
  pq_config.nlist = kBins;
  pq_config.seed = 5;
  pq_config.pq.num_subspaces = 8;
  pq_config.pq.codebook_size = 16;
  pq_config.rerank_budget = 200;
  IvfPqIndex ivf_pq(&w.base, pq_config);

  PqConfig scann_pq;
  scann_pq.num_subspaces = 8;
  scann_pq.codebook_size = 16;
  scann_pq.anisotropic_eta = 4.0f;
  scann_pq.seed = 6;
  ProductQuantizer quantizer(scann_pq);
  quantizer.Train(w.base);
  ScannIndexConfig scann_config;
  scann_config.rerank_budget = 200;
  ScannIndex scann(&w.base, &kmeans, std::move(quantizer), scann_config);

  HnswConfig hnsw_config;
  hnsw_config.max_neighbors = 16;
  hnsw_config.ef_construction = 100;
  hnsw_config.seed = 7;
  HnswIndex hnsw(hnsw_config);
  hnsw.Build(w.base);

  UspEnsembleConfig ens_config;
  ens_config.model.num_bins = 16;
  ens_config.model.eta = 7.0f;
  ens_config.model.epochs =
      static_cast<size_t>(EnvInt("USP_BENCH_EPOCHS", 8));
  ens_config.model.batch_size = 512;
  ens_config.model.hidden_dim = 64;
  ens_config.model.seed = 8;
  ens_config.num_models = 2;
  UspEnsemble ensemble(ens_config);
  ensemble.Train(w.base, w.knn_matrix);

  DynamicIndex dynamic(w.base.cols());
  dynamic.AddBatch(w.base);  // global ids == base row ids
  dynamic.Seal();
  std::printf("  [built all 7 index types in %.1fs]\n", timer.ElapsedSeconds());

  const std::vector<Entry> entries = {
      {"partition", &partition, 6},
      {"ivf_flat", &ivf_flat, 6},
      {"ivf_pq", &ivf_pq, 6},
      {"scann", &scann, 6},
      {"hnsw", &hnsw, 120},
      {"usp_ensemble", &ensemble, 3},
      {"dynamic", &dynamic, 16},
  };

  // --- Selectivity sweep --------------------------------------------------
  std::vector<Row> rows;
  for (const double selectivity : {0.01, 0.1, 0.5, 0.9}) {
    Rng rng(900 + static_cast<uint64_t>(selectivity * 100));
    IdSelectorBitmap filter(n);
    for (uint32_t id = 0; id < n; ++id) {
      if (rng.Uniform() < selectivity) filter.Set(id);
    }
    if (filter.count() == 0) filter.Set(0);
    const KnnResult truth =
        BruteForceKnn(w.base, w.queries, kTopK, Metric::kSquaredL2, &filter);

    std::printf("\nselectivity %.0f%% (%zu of %zu ids allowed)\n",
                100 * selectivity, filter.count(), n);
    std::printf("  %-14s %14s %10s  | %14s %10s  | %14s %10s %s\n", "index",
                "pushdown-qps", "recall", "postfilter-qps", "recall",
                "planner-qps", "recall", "strategy");
    for (const Entry& entry : entries) {
      const Row row = Measure(entry, w, selectivity, filter, truth, reps);
      std::printf("  %-14s %14.1f %10.4f  | %14.1f %10.4f  | %14.1f %10.4f %s\n",
                  row.index.c_str(), row.filtered.qps, row.filtered.recall,
                  row.postfilter.qps, row.postfilter.recall, row.planner.qps,
                  row.planner.recall, row.planner_strategy.c_str());
      rows.push_back(row);
    }
  }

  // --- JSON ---------------------------------------------------------------
  // BENCH_filtered.json: the pushdown / post-filter baselines. The over-fetch
  // window is selectivity-dependent now, so it lives on each result row
  // instead of in the config block.
  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fprintf(f,
               "{\n  \"config\": {\"points\": %zu, \"queries\": %zu, "
               "\"k\": %zu},\n  \"results\": [\n",
               n, w.queries.rows(), kTopK);
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "    {\"index\": \"%s\", \"selectivity\": %.2f, "
        "\"filtered_qps\": %.1f, \"filtered_recall\": %.4f, "
        "\"filtered_mean_candidates\": %.1f, "
        "\"postfilter_qps\": %.1f, \"postfilter_recall\": %.4f, "
        "\"postfilter_mean_candidates\": %.1f, "
        "\"postfilter_overfetch\": %zu}%s\n",
        r.index.c_str(), r.selectivity, r.filtered.qps, r.filtered.recall,
        r.filtered.mean_candidates, r.postfilter.qps, r.postfilter.recall,
        r.postfilter.mean_candidates, r.postfilter_overfetch,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path);

  // BENCH_planner.json: the planner mode, with the pushdown baseline rate
  // alongside so speedups are readable from one file.
  std::FILE* p = std::fopen(planner_out_path, "w");
  if (p == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", planner_out_path);
    return 1;
  }
  std::fprintf(p,
               "{\n  \"config\": {\"points\": %zu, \"queries\": %zu, "
               "\"k\": %zu},\n  \"results\": [\n",
               n, w.queries.rows(), kTopK);
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        p,
        "    {\"index\": \"%s\", \"selectivity\": %.2f, "
        "\"strategy\": \"%s\", "
        "\"planner_qps\": %.1f, \"planner_recall\": %.4f, "
        "\"planner_mean_candidates\": %.1f, "
        "\"pushdown_qps\": %.1f, \"speedup_vs_pushdown\": %.2f}%s\n",
        r.index.c_str(), r.selectivity, r.planner_strategy.c_str(),
        r.planner.qps, r.planner.recall, r.planner.mean_candidates,
        r.filtered.qps,
        r.filtered.qps > 0 ? r.planner.qps / r.filtered.qps : 0.0,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(p, "  ]\n}\n");
  std::fclose(p);
  std::printf("wrote %s\n", planner_out_path);
  return 0;
}

}  // namespace
}  // namespace usp::bench

int main(int argc, char** argv) {
  return usp::bench::Run(argc > 1 ? argv[1] : "BENCH_filtered.json",
                         argc > 2 ? argv[2] : "BENCH_planner.json");
}
