// Ablation: mini-batch fraction (Sec. 4.2.2 "Batching"): the paper claims
// sampling ~4% of the dataset per mini-batch already yields high-quality
// partitions, because a uniform sample preserves the data distribution the
// balance term needs. Sweeps the batch fraction at a fixed number of epochs.
//
// Also covers design ablation 5 (DESIGN.md): hard argmax neighbor-histogram
// targets vs. soft expected-bin targets.
#include <algorithm>
#include <cstdio>

#include "bench/common.h"
#include "core/partition_index.h"
#include "core/partitioner.h"

namespace usp::bench {
namespace {

void Run() {
  const BenchScale scale = GetScale();
  const Workload& w = SiftLikeWorkload();
  constexpr size_t kBins = 16;
  const size_t n = w.base.rows();

  std::printf("=== Ablation: mini-batch fraction (sift-like, %zu bins) ===\n",
              kBins);
  std::printf("  %10s %12s %14s %12s %12s\n", "fraction", "batch-size",
              "balance-ratio", "acc@1probe", "acc@2probes");

  for (double fraction : {0.01, 0.04, 0.125, 0.5, 1.0}) {
    UspTrainConfig config;
    config.num_bins = kBins;
    config.eta = 7.0f;
    config.epochs = scale.epochs;
    config.batch_size =
        std::max<size_t>(32, static_cast<size_t>(fraction * n));
    config.seed = 61;
    UspPartitioner partitioner(config);
    partitioner.Train(w.base, w.knn_matrix);
    PartitionIndex index(&w.base, &partitioner);
    SearchRequest request;
    request.queries = w.queries;
    request.options.k = 10;
    request.options.budget = 1;
    const auto at1 = index.SearchBatch(request);
    request.options.budget = 2;
    const auto at2 = index.SearchBatch(request);
    std::printf("  %9.1f%% %12zu %14.2f %12.4f %12.4f\n", 100 * fraction,
                config.batch_size,
                BalanceRatio(index.assignments(), kBins),
                KnnAccuracy(at1, w.ground_truth.indices, w.ground_truth.k),
                KnnAccuracy(at2, w.ground_truth.indices, w.ground_truth.k));
  }

  std::printf("\n=== Ablation: hard vs soft neighbor-bin targets ===\n");
  std::printf("  %10s %14s %12s\n", "targets", "balance-ratio", "acc@1probe");
  for (bool soft : {false, true}) {
    UspTrainConfig config;
    config.num_bins = kBins;
    config.eta = 7.0f;
    config.epochs = scale.epochs;
    config.batch_size = 512;
    config.soft_targets = soft;
    config.seed = 62;
    UspPartitioner partitioner(config);
    partitioner.Train(w.base, w.knn_matrix);
    PartitionIndex index(&w.base, &partitioner);
    SearchRequest request;
    request.queries = w.queries;
    request.options.k = 10;
    request.options.budget = 1;
    const auto result = index.SearchBatch(request);
    std::printf("  %10s %14.2f %12.4f\n", soft ? "soft" : "hard",
                BalanceRatio(index.assignments(), kBins),
                KnnAccuracy(result, w.ground_truth.indices, w.ground_truth.k));
  }
}

}  // namespace
}  // namespace usp::bench

int main() {
  usp::bench::Run();
  return 0;
}
