// Serving-path benchmark for serve/sharded_index.h + serve/batching_executor.h:
// what micro-batching buys when single-query traffic hits the index. The
// index is a mutable ShardedIndex whose DynamicIndex shards serve un-sealed
// rows by blocked exact scan — the regime where coalescing pays even on one
// core, because BruteForceKnn's norm-trick kernel scores each 2048-row base
// block for a whole chunk of queries while it is cache-hot: a width-32 batch
// streams each shard once per chunk where 32 serial calls stream it 32
// times. Recall@10 is 1.0 in every mode (exact search), so recall is matched
// by construction; the executor and shard-merge tests additionally pin
// bit-identity of the rows themselves. Three modes per shard count:
//
//   serial    — one client, one query at a time, num_threads=1 per search:
//               the un-batched single-query service baseline.
//   direct@L  — L client threads, each searching directly (still one query
//               per call, num_threads=1): thread-per-request concurrency
//               without coalescing.
//   batched@L — L client threads submitting to a shared BatchingExecutor
//               (pipeline depth 8 per client) that coalesces singles into
//               SIMD-width batches executed on the full pool.
//
// Output: QPS plus client-observed p50/p95/p99 latency per mode, written
// machine-readable to BENCH_serving.json (override with argv[1]); the
// "coalesced_ge_serial" flag asserts batched@(load>=4) >= 2x serial QPS at
// every shard count, which CI greps.
//
// Scale knobs: USP_BENCH_SERVE_N (default 20000), USP_BENCH_SERVE_DIM (128),
// USP_BENCH_SERVE_QUERIES (256 distinct queries, cycled),
// USP_BENCH_SERVE_REQUESTS (2048 per measurement).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <future>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/common.h"
#include "knn/brute_force.h"
#include "serve/batching_executor.h"
#include "serve/sharded_index.h"
#include "tensor/matrix.h"
#include "util/env.h"
#include "util/rng.h"

namespace usp::bench {
namespace {

constexpr size_t kTopK = 10;
constexpr size_t kPipelineDepth = 8;

using SteadyClock = std::chrono::steady_clock;

double MicrosSince(SteadyClock::time_point start) {
  return std::chrono::duration<double, std::micro>(SteadyClock::now() - start)
      .count();
}

struct ModeResult {
  double qps = 0;
  LatencySummary latency_us;
};

struct LoadPoint {
  size_t clients;
  ModeResult direct;
  ModeResult batched;
};

struct ShardResult {
  size_t shards;
  double recall;
  ModeResult serial;
  std::vector<LoadPoint> loads;
};

/// recall@kTopK of one result row against the ground-truth row.
size_t RowHits(const uint32_t* got, size_t k, const KnnResult& truth,
               size_t q) {
  size_t hits = 0;
  for (size_t j = 0; j < k; ++j) {
    if (got[j] == kInvalidId) break;
    for (size_t t = 0; t < truth.k; ++t) {
      if (truth.Row(q)[t] == got[j]) {
        ++hits;
        break;
      }
    }
  }
  return hits;
}

/// One client, one query at a time, one thread per search. Also measures
/// recall@kTopK over the first pass through the distinct queries.
ModeResult RunSerial(const Index& index, const Matrix& queries,
                     const SearchOptions& options, size_t requests,
                     const KnnResult& truth, double* recall_out) {
  const size_t nq = queries.rows();
  std::vector<double> latencies;
  latencies.reserve(requests);
  size_t hits = 0;
  const SteadyClock::time_point begin = SteadyClock::now();
  for (size_t r = 0; r < requests; ++r) {
    const size_t q = r % nq;
    SearchRequest request;
    request.queries = MatrixView(queries.Row(q), 1, queries.cols());
    request.options = options;
    const SteadyClock::time_point submit = SteadyClock::now();
    const BatchSearchResult result = index.SearchBatch(request);
    latencies.push_back(MicrosSince(submit));
    if (r < nq) hits += RowHits(result.Row(0), result.k, truth, q);
  }
  const double elapsed_us = MicrosSince(begin);
  ModeResult mode;
  mode.qps = static_cast<double>(requests) / (elapsed_us * 1e-6);
  mode.latency_us = SummarizeLatencies(latencies);
  *recall_out = static_cast<double>(hits) /
                static_cast<double>(nq * std::min(kTopK, truth.k));
  return mode;
}

/// L threads searching directly, one query per call.
ModeResult RunDirect(const Index& index, const Matrix& queries,
                     const SearchOptions& options, size_t requests,
                     size_t clients) {
  const size_t nq = queries.rows();
  std::vector<std::vector<double>> per_client(clients);
  std::vector<std::thread> threads;
  const SteadyClock::time_point begin = SteadyClock::now();
  for (size_t c = 0; c < clients; ++c) {
    const size_t share = requests / clients + (c == 0 ? requests % clients : 0);
    threads.emplace_back([&, c, share] {
      per_client[c].reserve(share);
      for (size_t r = 0; r < share; ++r) {
        const size_t q = (c * 7919 + r) % nq;
        SearchRequest request;
        request.queries = MatrixView(queries.Row(q), 1, queries.cols());
        request.options = options;
        const SteadyClock::time_point submit = SteadyClock::now();
        const BatchSearchResult result = index.SearchBatch(request);
        (void)result;
        per_client[c].push_back(MicrosSince(submit));
      }
    });
  }
  for (auto& t : threads) t.join();
  const double elapsed_us = MicrosSince(begin);
  std::vector<double> latencies;
  for (auto& v : per_client) {
    latencies.insert(latencies.end(), v.begin(), v.end());
  }
  ModeResult mode;
  mode.qps = static_cast<double>(requests) / (elapsed_us * 1e-6);
  mode.latency_us = SummarizeLatencies(latencies);
  return mode;
}

/// L clients pipelining single-query submissions into a shared executor.
ModeResult RunBatched(const Index& index, const Matrix& queries,
                      const SearchOptions& options, size_t requests,
                      size_t clients) {
  const size_t nq = queries.rows();
  BatchingExecutorConfig config;
  config.max_batch = 32;
  config.max_delay_us = 200;
  config.max_queue = 4096;
  BatchingExecutor executor(&index, config);

  std::vector<std::vector<double>> per_client(clients);
  std::vector<std::thread> threads;
  const SteadyClock::time_point begin = SteadyClock::now();
  for (size_t c = 0; c < clients; ++c) {
    const size_t share = requests / clients + (c == 0 ? requests % clients : 0);
    threads.emplace_back([&, c, share] {
      per_client[c].reserve(share);
      std::deque<std::pair<SteadyClock::time_point,
                           std::future<SingleSearchResult>>>
          window;
      auto drain_one = [&] {
        auto [submit, future] = std::move(window.front());
        window.pop_front();
        future.get();
        per_client[c].push_back(MicrosSince(submit));
      };
      for (size_t r = 0; r < share; ++r) {
        const size_t q = (c * 7919 + r) % nq;
        if (window.size() >= kPipelineDepth) drain_one();
        const SteadyClock::time_point submit = SteadyClock::now();
        auto submitted = executor.Submit(queries.Row(q), options, c);
        if (!submitted.ok()) {
          std::fprintf(stderr, "submit failed: %s\n",
                       submitted.status().message().c_str());
          continue;
        }
        window.emplace_back(submit, std::move(submitted).value());
      }
      while (!window.empty()) drain_one();
    });
  }
  for (auto& t : threads) t.join();
  const double elapsed_us = MicrosSince(begin);
  executor.Shutdown();
  std::vector<double> latencies;
  for (auto& v : per_client) {
    latencies.insert(latencies.end(), v.begin(), v.end());
  }
  ModeResult mode;
  mode.qps = static_cast<double>(requests) / (elapsed_us * 1e-6);
  mode.latency_us = SummarizeLatencies(latencies);
  return mode;
}

void PrintMode(const char* label, size_t shards, size_t clients,
               const ModeResult& mode) {
  std::printf(
      "shards=%zu %-10s clients=%zu  %8.0f qps  p50=%7.1fus p95=%7.1fus "
      "p99=%7.1fus\n",
      shards, label, clients, mode.qps, mode.latency_us.p50,
      mode.latency_us.p95, mode.latency_us.p99);
}

void PrintJsonMode(std::FILE* f, const char* key, const ModeResult& mode,
                   const char* suffix) {
  std::fprintf(f,
               "\"%s\": {\"qps\": %.1f, \"p50_us\": %.1f, \"p95_us\": %.1f, "
               "\"p99_us\": %.1f, \"mean_us\": %.1f}%s",
               key, mode.qps, mode.latency_us.p50, mode.latency_us.p95,
               mode.latency_us.p99, mode.latency_us.mean, suffix);
}

int Run(const char* out_path) {
  const size_t n = static_cast<size_t>(EnvInt("USP_BENCH_SERVE_N", 20000));
  const size_t dim = static_cast<size_t>(EnvInt("USP_BENCH_SERVE_DIM", 128));
  const size_t nq =
      static_cast<size_t>(EnvInt("USP_BENCH_SERVE_QUERIES", 256));
  const size_t requests =
      static_cast<size_t>(EnvInt("USP_BENCH_SERVE_REQUESTS", 2048));

  Rng rng(42);
  const Matrix base = Matrix::RandomGaussian(n, dim, &rng);
  const Matrix queries = Matrix::RandomGaussian(nq, dim, &rng);
  const KnnResult truth = BruteForceKnn(base, queries, kTopK);

  SearchOptions options;
  options.k = kTopK;
  options.budget = 1u << 20;  // un-sealed shards are scanned exactly anyway
  options.num_threads = 1;    // one serving thread per in-flight search; the
                              // executor's whole-batch SearchBatch runs on
                              // the full pool instead
  SearchOptions batch_options = options;
  batch_options.num_threads = 0;

  const std::vector<size_t> shard_counts = {1, 4, 8};
  const std::vector<size_t> load_sweep = {1, 2, 4, 8};
  std::vector<ShardResult> results;
  bool coalesced_ge_serial = true;
  for (const size_t shards : shard_counts) {
    ShardedIndexConfig config;
    config.num_shards = shards;
    ShardedIndex index(base.cols(), config);
    index.AddBatch(base);

    ShardResult result;
    result.shards = shards;
    result.serial = RunSerial(index, queries, options, requests, truth,
                              &result.recall);
    PrintMode("serial", shards, 1, result.serial);
    double best_coalesced_at_load = 0;
    for (const size_t clients : load_sweep) {
      LoadPoint point;
      point.clients = clients;
      point.direct = RunDirect(index, queries, options, requests, clients);
      point.batched =
          RunBatched(index, queries, batch_options, requests, clients);
      PrintMode("direct", shards, clients, point.direct);
      PrintMode("batched", shards, clients, point.batched);
      if (clients >= 4) {
        best_coalesced_at_load =
            std::max(best_coalesced_at_load, point.batched.qps);
      }
      result.loads.push_back(point);
    }
    std::printf("shards=%zu recall@%zu=%.4f (identical across modes)\n",
                shards, kTopK, result.recall);
    if (best_coalesced_at_load < 2.0 * result.serial.qps) {
      coalesced_ge_serial = false;
    }
    results.push_back(std::move(result));
  }

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fprintf(f,
               "{\n  \"config\": {\"points\": %zu, \"dim\": %zu, "
               "\"queries\": %zu, \"requests\": %zu, \"k\": %zu, "
               "\"budget\": %zu, \"pipeline_depth\": %zu},\n",
               n, dim, nq, requests, kTopK, options.budget, kPipelineDepth);
  std::fprintf(f, "  \"shards\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const ShardResult& result = results[i];
    std::fprintf(f, "    {\"num_shards\": %zu, \"recall_at_%zu\": %.4f,\n",
                 result.shards, kTopK, result.recall);
    std::fprintf(f, "     ");
    PrintJsonMode(f, "serial", result.serial, ",\n");
    std::fprintf(f, "     \"loads\": [\n");
    for (size_t j = 0; j < result.loads.size(); ++j) {
      const LoadPoint& point = result.loads[j];
      std::fprintf(f, "      {\"clients\": %zu, ", point.clients);
      PrintJsonMode(f, "direct", point.direct, ", ");
      PrintJsonMode(f, "batched", point.batched,
                    j + 1 < result.loads.size() ? "},\n" : "}\n");
    }
    std::fprintf(f, "     ]}%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"coalesced_ge_serial\": %s\n}\n",
               coalesced_ge_serial ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return coalesced_ge_serial ? 0 : 1;
}

}  // namespace
}  // namespace usp::bench

int main(int argc, char** argv) {
  return usp::bench::Run(argc > 1 ? argv[1] : "BENCH_serving.json");
}
