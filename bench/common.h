// Shared helpers for the benchmark binaries: env-scalable workload sizes and
// table/series printers so every bench emits paper-style output.
#ifndef USP_BENCH_COMMON_H_
#define USP_BENCH_COMMON_H_

#include <string>
#include <vector>

#include "core/bin_scorer.h"
#include "dataset/workload.h"
#include "eval/sweep.h"

namespace usp::bench {

/// Workload sizes used by the benches. Defaults are laptop-scale; raise via
/// environment: USP_BENCH_SIFT_N, USP_BENCH_MNIST_N, USP_BENCH_QUERIES.
struct BenchScale {
  size_t sift_n;
  size_t mnist_n;
  size_t num_queries;
  size_t epochs;  ///< USP_BENCH_EPOCHS
};

/// Reads the scale from the environment (with defaults).
BenchScale GetScale();

/// Cached workload constructors (built once per process).
const Workload& SiftLikeWorkload();
const Workload& MnistLikeWorkload();

/// Prints one accuracy-vs-candidates series in a fixed-width table:
/// rows of (mean |C|, |C| as % of n, accuracy).
void PrintSeries(const std::string& figure, const std::string& dataset,
                 const std::string& method,
                 const std::vector<double>& mean_candidates,
                 const std::vector<double>& accuracies, size_t dataset_size);

/// Prints a one-line summary row: "<label>: <value>".
void PrintKeyValue(const std::string& label, const std::string& value);

/// Nearest-rank percentile of `values` for p in [0, 100]; sorts the vector
/// in place. Returns 0 for an empty vector.
double Percentile(std::vector<double>& values, double p);

/// p50/p95/p99/mean of a latency sample, all in the sample's own unit.
struct LatencySummary {
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  double mean = 0;
};

/// Summarizes a latency sample (sorts `values` in place).
LatencySummary SummarizeLatencies(std::vector<double>& values);

/// Builds a PartitionIndex over `scorer`, sweeps probe counts up to the bin
/// count, and returns the accuracy/candidates curve (10-NN).
std::vector<SweepPoint> SweepScorer(const Workload& w, const BinScorer& scorer,
                                    size_t max_probes);

/// Prints a curve returned by SweepScorer/ProbeSweep.
void PrintCurve(const std::string& figure, const Workload& w,
                const std::string& method,
                const std::vector<SweepPoint>& curve);

}  // namespace usp::bench

#endif  // USP_BENCH_COMMON_H_
