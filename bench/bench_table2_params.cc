// Table 2: learnable parameter counts when dividing SIFT (d=128) into 256
// bins. Paper: Neural LSH 729k (hidden width 512), Ours 183k (hidden width
// 128), K-means 33k (the centroid table). The 729k figure pins Neural LSH's
// architecture to three 512-wide hidden layers; "ours" is the 3-model
// ensemble of single-hidden-layer width-128 nets used in Fig. 5. Counts are
// architecture properties, so they match the paper regardless of dataset
// scale.
#include <cstdio>

#include "nn/model_factory.h"

namespace {

size_t MlpParams(size_t input, size_t hidden, size_t layers, size_t bins) {
  usp::MlpConfig config;
  config.input_dim = input;
  config.hidden_dim = hidden;
  config.num_hidden_layers = layers;
  config.num_bins = bins;
  return usp::BuildMlp(config).ParameterCount();
}

}  // namespace

int main() {
  constexpr size_t kDim = 128;   // SIFT dimensionality
  constexpr size_t kBins = 256;  // Table 2 setting

  // Neural LSH: 3 hidden layers of width 512 reproduces the paper's ~729k.
  const size_t nlsh = MlpParams(kDim, 512, 3, kBins);
  // Ours: Fig. 5 uses an ensemble of 3 width-128 single-hidden-layer models.
  const size_t ours_single = MlpParams(kDim, 128, 1, kBins);
  const size_t ours_ensemble = 3 * ours_single;
  // K-means "parameters": the centroid table (256 x 128 floats).
  const size_t kmeans = kBins * kDim;

  std::printf("=== Table 2: learnable parameters, SIFT d=%zu, %zu bins ===\n",
              kDim, kBins);
  std::printf("  %-26s %12s %14s %16s\n", "method", "parameters",
              "hidden width", "paper value");
  std::printf("  %-26s %12zu %14d %16s\n", "Neural LSH (3x512)", nlsh, 512,
              "~729k");
  std::printf("  %-26s %12zu %14d %16s\n", "USP ensemble e=3 (ours)",
              ours_ensemble, 128, "~183k");
  std::printf("  %-26s %12zu %14d %16s\n", "USP single model (ours)",
              ours_single, 128, "-");
  std::printf("  %-26s %12zu %14s %16s\n", "K-means", kmeans, "-", "~33k");
  std::printf("\n  ensemble/NLSH parameter ratio: %.2fx fewer (paper: ~4x)\n",
              static_cast<double>(nlsh) / static_cast<double>(ours_ensemble));
  return 0;
}
