// Serving-layer benchmark for serve/dynamic_index.h. Three phases, all
// scale-controlled by environment variables and written machine-readable to
// BENCH_dynamic.json (override the path with argv[1]; conventions in
// docs/BENCHMARKS.md):
//
//   1. insert        — single-threaded Add() throughput into the write
//                      segment (points/sec).
//   2. query_vs_fill — batched query latency as the write segment grows from
//                      0% to 100% of the corpus (the rest sealed): the cost
//                      of serving un-sealed data by brute force.
//   3. compaction    — recall@10 and query latency before vs after Compact()
//                      on a deleted-heavy multi-segment index.
//
// Scale knobs: USP_BENCH_DYN_N (default 20000), USP_BENCH_DYN_DIM (64),
// USP_BENCH_DYN_QUERIES (200), USP_BENCH_DYN_REPS (3).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

#include "knn/brute_force.h"
#include "serve/dynamic_index.h"
#include "tensor/matrix.h"
#include "util/env.h"
#include "util/rng.h"
#include "util/timer.h"

namespace usp::bench {
namespace {

constexpr size_t kTopK = 10;
constexpr size_t kFullBudget = 1u << 20;  // probe every list in each segment

SearchRequest FullBudgetRequest(const Matrix& queries) {
  SearchRequest request;
  request.queries = queries;
  request.options.k = kTopK;
  request.options.budget = kFullBudget;
  return request;
}

double BestOfReps(size_t reps, const std::function<void()>& fn) {
  double best = 1e100;
  for (size_t r = 0; r < reps; ++r) {
    WallTimer timer;
    fn();
    best = std::min(best, timer.ElapsedSeconds());
  }
  return best;
}

/// recall@k of `result` against the first k live ids of each truth row.
double LiveRecall(const BatchSearchResult& result, const KnnResult& truth,
                  const std::unordered_set<uint32_t>& deleted) {
  size_t hits = 0, want = 0;
  for (size_t q = 0; q < result.candidate_counts.size(); ++q) {
    std::unordered_set<uint32_t> expected;
    for (size_t t = 0; t < truth.k && expected.size() < kTopK; ++t) {
      const uint32_t id = truth.Row(q)[t];
      if (deleted.count(id) == 0) expected.insert(id);
    }
    want += expected.size();
    for (size_t j = 0; j < result.k; ++j) {
      const uint32_t id = result.Row(q)[j];
      if (id != kInvalidId && expected.count(id) > 0) ++hits;
    }
  }
  return want == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(want);
}

struct FillPoint {
  double write_fill;
  size_t write_rows;
  size_t sealed_rows;
  double ns_per_query;
  double qps;
};

int Run(const char* out_path) {
  const size_t n = static_cast<size_t>(EnvInt("USP_BENCH_DYN_N", 20000));
  const size_t dim = static_cast<size_t>(EnvInt("USP_BENCH_DYN_DIM", 64));
  const size_t nq = static_cast<size_t>(EnvInt("USP_BENCH_DYN_QUERIES", 200));
  const size_t reps = static_cast<size_t>(EnvInt("USP_BENCH_DYN_REPS", 3));

  Rng rng(42);
  const Matrix base = Matrix::RandomGaussian(n, dim, &rng);
  const Matrix queries = Matrix::RandomGaussian(nq, dim, &rng);

  // Phase 1: insert throughput into the write segment (no auto-seal, so this
  // times the locked append alone).
  double insert_seconds = 1e100;
  for (size_t r = 0; r < reps; ++r) {
    DynamicIndex index(dim);
    WallTimer timer;
    for (size_t i = 0; i < n; ++i) index.Add(base.Row(i));
    insert_seconds = std::min(insert_seconds, timer.ElapsedSeconds());
  }
  const double inserts_per_sec = static_cast<double>(n) / insert_seconds;
  std::printf("insert: %zu points, %.0f inserts/sec\n", n, inserts_per_sec);

  // Phase 2: query latency vs write-segment fill.
  std::vector<FillPoint> fill_points;
  for (const double fill : {0.0, 0.25, 0.5, 1.0}) {
    const size_t write_rows = static_cast<size_t>(fill * n);
    const size_t sealed_rows = n - write_rows;
    DynamicIndex index(dim);
    if (sealed_rows > 0) {
      index.AddBatch(MatrixView(base.Row(0), sealed_rows, dim));
      index.Seal();
    }
    if (write_rows > 0) {
      index.AddBatch(MatrixView(base.Row(sealed_rows), write_rows, dim));
    }
    const double seconds = BestOfReps(reps, [&] {
      const BatchSearchResult result =
          index.SearchBatch(FullBudgetRequest(queries));
      (void)result;
    });
    FillPoint point;
    point.write_fill = fill;
    point.write_rows = write_rows;
    point.sealed_rows = sealed_rows;
    point.ns_per_query = seconds * 1e9 / static_cast<double>(nq);
    point.qps = static_cast<double>(nq) / seconds;
    fill_points.push_back(point);
    std::printf(
        "query_vs_fill: fill=%.2f write=%zu sealed=%zu  %10.0f ns/query "
        "(%.0f qps)\n",
        fill, write_rows, sealed_rows, point.ns_per_query, point.qps);
  }

  // Phase 3: recall and latency before/after compaction. Four sealed
  // segments, 10% of points deleted.
  const KnnResult truth = BruteForceKnn(base, queries, kTopK + n / 10);
  DynamicIndex index(dim);
  const size_t quarter = n / 4;
  for (size_t s = 0; s < 4; ++s) {
    const size_t begin = s * quarter;
    const size_t rows = s + 1 < 4 ? quarter : n - begin;
    index.AddBatch(MatrixView(base.Row(begin), rows, dim));
    index.Seal();
  }
  std::unordered_set<uint32_t> deleted;
  Rng delete_rng(7);
  while (deleted.size() < n / 10) {
    const uint32_t id = static_cast<uint32_t>(delete_rng.UniformInt(n));
    if (deleted.insert(id).second) index.Delete(id);
  }
  const size_t segments_before = index.num_sealed_segments();
  BatchSearchResult before_result;
  const double before_seconds = BestOfReps(reps, [&] {
    before_result = index.SearchBatch(FullBudgetRequest(queries));
  });
  const double recall_before = LiveRecall(before_result, truth, deleted);

  index.Compact();
  const size_t segments_after = index.num_sealed_segments();
  BatchSearchResult after_result;
  const double after_seconds = BestOfReps(reps, [&] {
    after_result = index.SearchBatch(FullBudgetRequest(queries));
  });
  const double recall_after = LiveRecall(after_result, truth, deleted);
  std::printf(
      "compaction: %zu->%zu segments, recall %.4f -> %.4f, %0.0f -> %0.0f "
      "ns/query\n",
      segments_before, segments_after, recall_before, recall_after,
      before_seconds * 1e9 / nq, after_seconds * 1e9 / nq);

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fprintf(f,
               "{\n  \"config\": {\"points\": %zu, \"dim\": %zu, "
               "\"queries\": %zu, \"k\": %zu},\n",
               n, dim, nq, kTopK);
  std::fprintf(f, "  \"insert\": {\"inserts_per_sec\": %.1f},\n",
               inserts_per_sec);
  std::fprintf(f, "  \"query_vs_fill\": [\n");
  for (size_t i = 0; i < fill_points.size(); ++i) {
    const FillPoint& p = fill_points[i];
    std::fprintf(f,
                 "    {\"write_fill\": %.2f, \"write_rows\": %zu, "
                 "\"sealed_rows\": %zu, \"ns_per_query\": %.1f, "
                 "\"qps\": %.1f}%s\n",
                 p.write_fill, p.write_rows, p.sealed_rows, p.ns_per_query,
                 p.qps, i + 1 < fill_points.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"compaction\": {\"segments_before\": %zu, "
               "\"segments_after\": %zu, \"deleted_fraction\": %.2f, "
               "\"recall_before\": %.4f, \"recall_after\": %.4f, "
               "\"ns_per_query_before\": %.1f, \"ns_per_query_after\": "
               "%.1f}\n}\n",
               segments_before, segments_after,
               static_cast<double>(deleted.size()) / static_cast<double>(n),
               recall_before, recall_after, before_seconds * 1e9 / nq,
               after_seconds * 1e9 / nq);
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return 0;
}

}  // namespace
}  // namespace usp::bench

int main(int argc, char** argv) {
  return usp::bench::Run(argc > 1 ? argv[1] : "BENCH_dynamic.json");
}
