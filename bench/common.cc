#include "bench/common.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "util/env.h"

namespace usp::bench {

BenchScale GetScale() {
  BenchScale s;
  s.sift_n = static_cast<size_t>(EnvInt("USP_BENCH_SIFT_N", 8000));
  s.mnist_n = static_cast<size_t>(EnvInt("USP_BENCH_MNIST_N", 4000));
  s.num_queries = static_cast<size_t>(EnvInt("USP_BENCH_QUERIES", 300));
  s.epochs = static_cast<size_t>(EnvInt("USP_BENCH_EPOCHS", 18));
  return s;
}

const Workload& SiftLikeWorkload() {
  static const Workload* w = [] {
    const BenchScale scale = GetScale();
    WorkloadSpec spec;
    spec.kind = WorkloadKind::kSiftLike;
    spec.num_base = scale.sift_n;
    spec.num_queries = scale.num_queries;
    spec.gt_k = 10;
    spec.knn_k = 10;
    spec.seed = 42;
    return new Workload(MakeWorkload(spec));
  }();
  return *w;
}

const Workload& MnistLikeWorkload() {
  static const Workload* w = [] {
    const BenchScale scale = GetScale();
    WorkloadSpec spec;
    spec.kind = WorkloadKind::kMnistLike;
    spec.num_base = scale.mnist_n;
    spec.num_queries = scale.num_queries;
    spec.gt_k = 10;
    spec.knn_k = 10;
    spec.seed = 7;
    return new Workload(MakeWorkload(spec));
  }();
  return *w;
}

void PrintSeries(const std::string& figure, const std::string& dataset,
                 const std::string& method,
                 const std::vector<double>& mean_candidates,
                 const std::vector<double>& accuracies, size_t dataset_size) {
  std::printf("\n[%s] dataset=%s method=%s (n=%zu)\n", figure.c_str(),
              dataset.c_str(), method.c_str(), dataset_size);
  std::printf("  %12s  %10s  %10s\n", "mean|C|", "|C|/n %", "10NN-acc");
  for (size_t i = 0; i < mean_candidates.size(); ++i) {
    std::printf("  %12.1f  %9.2f%%  %10.4f\n", mean_candidates[i],
                100.0 * mean_candidates[i] / static_cast<double>(dataset_size),
                accuracies[i]);
  }
}

void PrintKeyValue(const std::string& label, const std::string& value) {
  std::printf("  %-48s %s\n", label.c_str(), value.c_str());
}

double Percentile(std::vector<double>& values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const double rank = std::ceil(p / 100.0 * static_cast<double>(values.size()));
  const size_t index =
      std::min(values.size() - 1,
               static_cast<size_t>(std::max(rank - 1.0, 0.0)));
  return values[index];
}

LatencySummary SummarizeLatencies(std::vector<double>& values) {
  LatencySummary summary;
  if (values.empty()) return summary;
  summary.mean = std::accumulate(values.begin(), values.end(), 0.0) /
                 static_cast<double>(values.size());
  summary.p50 = Percentile(values, 50);
  summary.p95 = Percentile(values, 95);
  summary.p99 = Percentile(values, 99);
  return summary;
}

std::vector<SweepPoint> SweepScorer(const Workload& w, const BinScorer& scorer,
                                    size_t max_probes) {
  PartitionIndex index(&w.base, &scorer);
  const Matrix scores = index.ScoreQueries(w.queries);
  auto search = [&](size_t probes) {
    SearchOptions options;
    options.k = 10;
    options.budget = probes;
    return index.SearchBatchWithScores(w.queries, scores, options);
  };
  return ProbeSweep(search, DefaultProbeCounts(max_probes),
                    w.ground_truth.indices, w.ground_truth.k);
}

void PrintCurve(const std::string& figure, const Workload& w,
                const std::string& method,
                const std::vector<SweepPoint>& curve) {
  std::vector<double> candidates, accuracies;
  for (const auto& point : curve) {
    candidates.push_back(point.mean_candidates);
    accuracies.push_back(point.accuracy);
  }
  PrintSeries(figure, w.name, method, candidates, accuracies, w.base.rows());
}

}  // namespace usp::bench
