// Figure 7 (a-b): end-to-end ANNS throughput. USP + ScaNN (our partition +
// anisotropic PQ + exact rerank) vs. K-means + ScaNN, vanilla ScaNN (full ADC
// scan), HNSW, and FAISS-style IVF-Flat. Reports queries/second at each
// operating point alongside 10-NN accuracy.
//
// Expected shape (paper): USP+ScaNN dominates K-means+ScaNN (the paper
// reports ~40% faster 10-NN retrieval at matched accuracy); vanilla ScaNN is
// slowest (scans everything); HNSW is fast but measured here on equal CPU
// footing.
#include <cstdio>
#include <functional>

#include "baselines/kmeans.h"
#include "bench/common.h"
#include "core/partitioner.h"
#include "hnsw/hnsw.h"
#include "ivf/ivf.h"
#include "quant/pq.h"
#include "quant/scann_index.h"
#include "util/timer.h"

namespace usp::bench {
namespace {

struct OperatingPoint {
  size_t knob;  // probes / ef / nprobe
  double accuracy;
  double qps;
  double mean_candidates;
};

void PrintThroughput(const Workload& w, const std::string& method,
                     const std::vector<OperatingPoint>& points) {
  std::printf("\n[fig7] dataset=%s method=%s (n=%zu)\n", w.name.c_str(),
              method.c_str(), w.base.rows());
  std::printf("  %8s  %10s  %12s  %12s\n", "knob", "10NN-acc", "QPS",
              "mean|C|");
  for (const auto& p : points) {
    std::printf("  %8zu  %10.4f  %12.1f  %12.1f\n", p.knob, p.accuracy, p.qps,
                p.mean_candidates);
  }
}

std::vector<OperatingPoint> MeasureSweep(
    const Workload& w, const std::vector<size_t>& knobs,
    const std::function<BatchSearchResult(size_t)>& search) {
  std::vector<OperatingPoint> points;
  for (size_t knob : knobs) {
    search(knob);  // warm-up (page in buckets/codes)
    WallTimer timer;
    const BatchSearchResult result = search(knob);
    const double seconds = timer.ElapsedSeconds();
    OperatingPoint p;
    p.knob = knob;
    p.accuracy = KnnAccuracy(result, w.ground_truth.indices, w.ground_truth.k);
    p.qps = static_cast<double>(w.queries.rows()) / seconds;
    p.mean_candidates = result.MeanCandidates();
    points.push_back(p);
  }
  return points;
}

// 10-NN request at one effort knob (probes / ef / nprobe).
SearchRequest KnobRequest(const Workload& w, size_t knob) {
  SearchRequest request;
  request.queries = w.queries;
  request.options.k = 10;
  request.options.budget = knob;
  return request;
}

ProductQuantizer TrainPq(const Workload& w, float anisotropic_eta) {
  PqConfig config;
  config.num_subspaces = w.base.cols() >= 256 ? 16 : 8;
  config.codebook_size = 16;
  config.anisotropic_eta = anisotropic_eta;  // ScaNN's score-aware objective
  config.seed = 4;
  ProductQuantizer pq(config);
  pq.Train(w.base);
  return pq;
}

void RunDataset(const Workload& w, float usp_eta) {
  const BenchScale scale = GetScale();
  constexpr size_t kBins = 32;
  const std::vector<size_t> probe_knobs = {1, 2, 3, 4, 6, 8, 12, 16};
  ScannIndexConfig scann_config;
  scann_config.rerank_budget = 120;

  // --- USP + ScaNN ---
  UspTrainConfig usp_config;
  usp_config.num_bins = kBins;
  usp_config.eta = usp_eta;
  usp_config.epochs = scale.epochs;
  usp_config.batch_size = 512;
  usp_config.seed = 21;
  UspPartitioner usp(usp_config);
  WallTimer timer;
  usp.Train(w.base, w.knn_matrix);
  std::printf("  [USP partition trained in %.1fs]\n", timer.ElapsedSeconds());
  {
    ScannIndex index(&w.base, &usp, TrainPq(w, 4.0f), scann_config);
    PrintThroughput(w, "USP + ScaNN (ours)",
                    MeasureSweep(w, probe_knobs, [&](size_t probes) {
                      return index.SearchBatch(KnobRequest(w, probes));
                    }));
  }

  // --- K-means + ScaNN ---
  KMeansConfig km_config;
  km_config.num_clusters = kBins;
  km_config.seed = 22;
  KMeansPartitioner kmeans(w.base, km_config);
  {
    ScannIndex index(&w.base, &kmeans, TrainPq(w, 4.0f), scann_config);
    PrintThroughput(w, "K-means + ScaNN",
                    MeasureSweep(w, probe_knobs, [&](size_t probes) {
                      return index.SearchBatch(KnobRequest(w, probes));
                    }));
  }

  // --- Vanilla ScaNN: exhaustive ADC scan + rerank ---
  {
    ScannIndex index(&w.base, nullptr, TrainPq(w, 4.0f), scann_config);
    PrintThroughput(w, "ScaNN (no partition)",
                    MeasureSweep(w, {1}, [&](size_t) {
                      return index.SearchBatch(KnobRequest(w, 0));
                    }));
  }

  // --- HNSW ---
  HnswConfig hnsw_config;
  hnsw_config.max_neighbors = 16;
  hnsw_config.ef_construction = 120;
  hnsw_config.seed = 23;
  HnswIndex hnsw(hnsw_config);
  timer.Reset();
  hnsw.Build(w.base);
  std::printf("  [HNSW built in %.1fs]\n", timer.ElapsedSeconds());
  PrintThroughput(w, "HNSW",
                  MeasureSweep(w, {10, 20, 40, 80, 160}, [&](size_t ef) {
                    return hnsw.SearchBatch(KnobRequest(w, ef));
                  }));

  // --- FAISS-style IVF-Flat ---
  IvfConfig ivf_config;
  ivf_config.nlist = kBins;
  ivf_config.seed = 24;
  IvfFlatIndex ivf(&w.base, ivf_config);
  PrintThroughput(w, "FAISS IVF-Flat",
                  MeasureSweep(w, probe_knobs, [&](size_t nprobe) {
                    return ivf.SearchBatch(KnobRequest(w, nprobe));
                  }));
}

}  // namespace
}  // namespace usp::bench

int main() {
  std::printf("=== Figure 7a: SIFT-like ===\n");
  usp::bench::RunDataset(usp::bench::SiftLikeWorkload(), 10.0f);
  std::printf("\n=== Figure 7b: MNIST-like ===\n");
  usp::bench::RunDataset(usp::bench::MnistLikeWorkload(), 10.0f);
  return 0;
}
