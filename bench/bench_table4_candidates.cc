// Table 4: relative decrease in mean candidate-set size at a fixed 85% 10-NN
// accuracy on SIFT with 16 bins. Paper: USP's candidate sets are 33% smaller
// than Neural LSH's and 38% smaller than K-means'. Reproduced by sweeping
// each method's probe count and interpolating |C| at the accuracy target.
#include <cstdio>

#include "baselines/kmeans.h"
#include "bench/common.h"
#include "core/ensemble.h"
#include "eval/sweep.h"
#include "graphpart/neural_lsh.h"

namespace usp::bench {
namespace {

constexpr double kTargetAccuracy = 0.85;
constexpr size_t kBins = 16;

void Run() {
  const BenchScale scale = GetScale();
  const Workload& w = SiftLikeWorkload();

  // USP: 3-model ensemble, as in Fig. 5a from which Table 4 is derived.
  UspEnsembleConfig usp_config;
  usp_config.model.num_bins = kBins;
  usp_config.model.eta = 7.0f;
  usp_config.model.epochs = scale.epochs;
  usp_config.model.batch_size = 512;
  usp_config.model.seed = 41;
  usp_config.num_models = 3;
  UspEnsemble ensemble(usp_config);
  ensemble.Train(w.base, w.knn_matrix);
  const auto usp_curve = ProbeSweep(
      [&](size_t probes) {
        SearchRequest request;
        request.queries = w.queries;
        request.options.k = 10;
        request.options.budget = probes;
        return ensemble.SearchBatch(request);
      },
      DefaultProbeCounts(kBins), w.ground_truth.indices, w.ground_truth.k);
  const double usp_c = CandidatesAtAccuracy(usp_curve, kTargetAccuracy);

  NeuralLshConfig nlsh_config;
  nlsh_config.num_bins = kBins;
  nlsh_config.hidden_dim = 512;
  nlsh_config.epochs = scale.epochs;
  nlsh_config.seed = 42;
  NeuralLsh nlsh(nlsh_config);
  nlsh.Train(w.base, w.knn_matrix);
  const double nlsh_c =
      CandidatesAtAccuracy(SweepScorer(w, nlsh, kBins), kTargetAccuracy);

  KMeansConfig km_config;
  km_config.num_clusters = kBins;
  km_config.seed = 43;
  KMeansPartitioner kmeans(w.base, km_config);
  const double km_c =
      CandidatesAtAccuracy(SweepScorer(w, kmeans, kBins), kTargetAccuracy);

  std::printf(
      "=== Table 4: |C| needed for %.0f%% 10-NN accuracy, sift-like, %zu bins "
      "===\n",
      100 * kTargetAccuracy, kBins);
  std::printf("  %-22s %14s %26s\n", "method", "|C| @ 85%",
              "USP decrease vs method");
  std::printf("  %-22s %14.0f %26s\n", "USP (ours, e=3)", usp_c, "-");
  auto report = [&](const char* name, double candidates, const char* paper) {
    if (candidates < 0 || usp_c < 0) {
      std::printf("  %-22s %14s %26s\n", name, "unreached", "-");
      return;
    }
    std::printf("  %-22s %14.0f %22.0f%%   (paper: %s)\n", name, candidates,
                100.0 * (1.0 - usp_c / candidates), paper);
  };
  report("Neural LSH", nlsh_c, "33%");
  report("K-means", km_c, "38%");

  // Multi-label ablation (workload subsystem): soften Neural LSH's one-hot
  // targets with the bins of each point's top-m k-NN-graph neighbors
  // (NeuralLshConfig::label_top_m) and re-measure |C| at the same accuracy.
  std::printf(
      "\n=== Multi-label ablation: Neural LSH |C| @ %.0f%%, top-m neighbor "
      "bins in the target ===\n",
      100 * kTargetAccuracy);
  std::printf("  %-22s %14s %26s\n", "labels", "|C| @ 85%",
              "vs single-label");
  std::printf("  %-22s %14.0f %26s\n", "single-label (m=0)", nlsh_c, "-");
  for (const size_t top_m : {1, 3, 5}) {
    NeuralLshConfig ml_config = nlsh_config;
    ml_config.label_top_m = top_m;
    NeuralLsh ml(ml_config);
    ml.Train(w.base, w.knn_matrix);
    const double ml_c =
        CandidatesAtAccuracy(SweepScorer(w, ml, kBins), kTargetAccuracy);
    char name[32];
    std::snprintf(name, sizeof(name), "multi-label (m=%zu)", top_m);
    if (ml_c < 0 || nlsh_c < 0) {
      std::printf("  %-22s %14s %26s\n", name, "unreached", "-");
    } else {
      std::printf("  %-22s %14.0f %25.0f%%\n", name, ml_c,
                  100.0 * (1.0 - ml_c / nlsh_c));
    }
  }
}

}  // namespace
}  // namespace usp::bench

int main() {
  usp::bench::Run();
  return 0;
}
