// Figure 6 (a-b): binary decision trees with hyperplane partitions at depth
// 10 (up to 1024 bins): USP with a logistic-regression learner (hierarchical
// 2-way tree) vs. Regression LSH, 2-means tree, PCA tree, random-projection
// tree, learned KD-tree, and boosted search tree.
//
// Expected shape (paper): USP-LR > Regression LSH > 2-means/PCA > learned KD
// > boosted > RP, with the gap largest in the high-accuracy regime.
#include <cstdio>

#include "baselines/partition_tree.h"
#include "bench/common.h"
#include "core/hierarchical.h"
#include "graphpart/graph.h"
#include "graphpart/regression_lsh.h"
#include "util/timer.h"

namespace usp::bench {
namespace {

constexpr size_t kDepth = 10;  // 2^10 = 1024 bins

void RunDataset(const Workload& w) {
  const BenchScale scale = GetScale();
  const Graph graph = BuildKnnGraph(w.knn_matrix, w.base.rows());

  // USP with logistic regression, recursive 2-way splits (Sec. 5.4.2).
  {
    HierarchicalConfig config;
    config.fanouts.assign(kDepth, 2);
    config.model.model = UspModelKind::kLogisticRegression;
    config.model.num_bins = 2;
    config.model.eta = 7.0f;
    config.model.epochs = scale.epochs;
    config.model.batch_size = 512;
    config.model.seed = 5;
    config.min_points_per_child = 16;
    HierarchicalUspPartitioner usp_tree(config);
    WallTimer timer;
    usp_tree.Train(w.base, w.knn_matrix);
    std::printf("  [USP logistic tree: %zu models in %.1fs]\n",
                usp_tree.NumModels(), timer.ElapsedSeconds());
    PrintCurve("fig6/1024bins", w, "USP (ours, logistic)",
               SweepScorer(w, usp_tree, usp_tree.num_bins()));
  }

  PartitionTreeConfig tree_config;
  tree_config.depth = kDepth;
  tree_config.min_leaf_size = 4;
  tree_config.seed = 9;

  struct NamedSplit {
    const char* name;
    HyperplaneSplitFn split;
  };
  const NamedSplit baselines[] = {
      {"Regression LSH", RegressionLshSplit(&graph)},
      {"2-means tree", TwoMeansSplit()},
      {"PCA tree", PcaSplit()},
      {"Random-projection tree", RandomProjectionSplit()},
      {"Learned KD-tree", LearnedKdSplit()},
      {"Boosted search tree", BoostedSearchSplit()},
  };
  for (const auto& baseline : baselines) {
    WallTimer timer;
    PartitionTree tree(w.base, tree_config, baseline.split, &w.knn_matrix);
    std::printf("  [%s: %zu leaves in %.1fs]\n", baseline.name,
                tree.num_bins(), timer.ElapsedSeconds());
    PrintCurve("fig6/1024bins", w, baseline.name,
               SweepScorer(w, tree, tree.num_bins()));
  }
}

}  // namespace
}  // namespace usp::bench

int main() {
  std::printf("=== Figure 6a: SIFT-like, 1024 bins (depth-10 trees) ===\n");
  usp::bench::RunDataset(usp::bench::SiftLikeWorkload());
  std::printf("\n=== Figure 6b: MNIST-like, 1024 bins (depth-10 trees) ===\n");
  usp::bench::RunDataset(usp::bench::MnistLikeWorkload());
  return 0;
}
