// Table 5: USP as a general clustering method vs. DBSCAN, K-means and
// spectral clustering on the scikit-learn benchmark shapes (moons, circles,
// make_classification). The paper shows scatter plots; here each cell is
// quantified with ARI / NMI against the generative labels, plus an ASCII
// render of each method's labeling so the shapes are visible in text.
#include <cstdio>
#include <string>
#include <vector>

#include "cluster/dbscan.h"
#include "cluster/metrics.h"
#include "cluster/spectral.h"
#include "baselines/kmeans.h"
#include "core/partitioner.h"
#include "dataset/synthetic.h"
#include "knn/brute_force.h"

namespace usp::bench {
namespace {

// Renders 2-D labeled points on a character grid.
void AsciiScatter(const Matrix& points, const std::vector<uint32_t>& labels,
                  const std::string& title) {
  constexpr int kWidth = 64, kHeight = 18;
  float min_x = 1e30f, max_x = -1e30f, min_y = 1e30f, max_y = -1e30f;
  for (size_t i = 0; i < points.rows(); ++i) {
    min_x = std::min(min_x, points(i, 0));
    max_x = std::max(max_x, points(i, 0));
    min_y = std::min(min_y, points(i, 1));
    max_y = std::max(max_y, points(i, 1));
  }
  std::vector<std::string> grid(kHeight, std::string(kWidth, ' '));
  const char glyphs[] = "o+x*#@%&";
  for (size_t i = 0; i < points.rows(); ++i) {
    const int cx = static_cast<int>((points(i, 0) - min_x) /
                                    (max_x - min_x + 1e-9f) * (kWidth - 1));
    const int cy = static_cast<int>((points(i, 1) - min_y) /
                                    (max_y - min_y + 1e-9f) * (kHeight - 1));
    grid[kHeight - 1 - cy][cx] = glyphs[labels[i] % 8];
  }
  std::printf("  -- %s --\n", title.c_str());
  for (const auto& row : grid) std::printf("  |%s|\n", row.c_str());
}

struct MethodScore {
  double ari;
  double nmi;
};

MethodScore Score(const std::vector<uint32_t>& truth,
                  const std::vector<uint32_t>& predicted) {
  return {AdjustedRandIndex(truth, predicted),
          NormalizedMutualInformation(truth, predicted)};
}

void RunDataset(const std::string& name, const LabeledDataset& ds,
                size_t clusters, float dbscan_eps, bool render) {
  const Matrix& points = ds.points;

  // USP as clustering: k'-NN matrix + unsupervised partitioner with m = k.
  const KnnResult knn = BuildKnnMatrix(points, 10);
  UspTrainConfig usp_config;
  usp_config.num_bins = clusters;
  usp_config.eta = 7.0f;
  usp_config.epochs = 60;
  usp_config.batch_size = 256;
  usp_config.hidden_dim = 64;
  usp_config.seed = 3;
  UspPartitioner usp(usp_config);
  usp.Train(points, knn);
  const auto usp_labels = usp.AssignBins(points);

  DbscanConfig db_config;
  db_config.epsilon = dbscan_eps;
  db_config.min_points = 5;
  const auto db_labels = DensifyLabels(RunDbscan(points, db_config).labels);

  KMeansConfig km_config;
  km_config.num_clusters = clusters;
  km_config.seed = 4;
  const auto km_labels = RunKMeans(points, km_config).assignments;

  SpectralConfig sp_config;
  sp_config.num_clusters = clusters;
  sp_config.graph_neighbors = 10;
  sp_config.seed = 5;
  const auto sp_labels = RunSpectralClustering(points, sp_config);

  const MethodScore usp_score = Score(ds.labels, usp_labels);
  const MethodScore db_score = Score(ds.labels, db_labels);
  const MethodScore km_score = Score(ds.labels, km_labels);
  const MethodScore sp_score = Score(ds.labels, sp_labels);

  std::printf("\n[table5] dataset=%s (n=%zu, k=%zu)\n", name.c_str(),
              points.rows(), clusters);
  std::printf("  %-16s %8s %8s\n", "method", "ARI", "NMI");
  std::printf("  %-16s %8.3f %8.3f\n", "USP (ours)", usp_score.ari,
              usp_score.nmi);
  std::printf("  %-16s %8.3f %8.3f\n", "DBSCAN", db_score.ari, db_score.nmi);
  std::printf("  %-16s %8.3f %8.3f\n", "K-means", km_score.ari, km_score.nmi);
  std::printf("  %-16s %8.3f %8.3f\n", "Spectral", sp_score.ari, sp_score.nmi);

  if (render) {
    AsciiScatter(points, ds.labels, name + ": ground truth");
    AsciiScatter(points, usp_labels, name + ": USP (ours)");
    AsciiScatter(points, km_labels, name + ": K-means");
  }
}

}  // namespace
}  // namespace usp::bench

int main() {
  using namespace usp;
  std::printf("=== Table 5: clustering quality on scikit-learn shapes ===\n");
  bench::RunDataset("moons", MakeMoons(1000, 0.05f, 1), 2, 0.16f,
                    /*render=*/true);
  bench::RunDataset("circles", MakeCircles(1000, 0.03f, 0.45f, 2), 2, 0.14f,
                    /*render=*/true);
  bench::RunDataset("classification",
                    MakeClassification(1000, 2, 4, 5.0f, 3), 4, 0.9f,
                    /*render=*/false);
  return 0;
}
