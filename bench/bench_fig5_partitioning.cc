// Figure 5 (a-d): 10-NN accuracy vs. candidate-set size for USP (1 and 3
// model ensembles) against Neural LSH, K-means, and Cross-polytope LSH, at 16
// bins (flat) and 256 bins (hierarchical 16x16 for USP, as in the paper).
//
// Expected shape (paper): USP(e=3) > USP(e=1) ~ Neural LSH > K-means >> LSH
// on both datasets; the gap widens at 256 bins. Scale via USP_BENCH_* env
// vars (see bench/common.h).
#include <cstdio>

#include "baselines/cross_polytope_lsh.h"
#include "baselines/kmeans.h"
#include "bench/common.h"
#include "core/ensemble.h"
#include "core/hierarchical.h"
#include "core/partitioner.h"
#include "eval/sweep.h"
#include "graphpart/neural_lsh.h"
#include "util/timer.h"

namespace usp::bench {
namespace {

UspTrainConfig UspConfig(size_t bins, float eta, size_t epochs) {
  UspTrainConfig config;
  config.num_bins = bins;
  config.eta = eta;
  config.epochs = epochs;
  config.batch_size = 512;
  config.hidden_dim = 128;  // paper Sec. 5.2
  config.seed = 11;
  return config;
}

void SixteenBins(const Workload& w, float eta) {
  const BenchScale scale = GetScale();
  constexpr size_t kBins = 16;

  // USP, single model and 3-model ensemble (Alg. 3/4).
  UspEnsembleConfig ensemble_config;
  ensemble_config.model = UspConfig(kBins, eta, scale.epochs);
  ensemble_config.num_models = 3;
  UspEnsemble ensemble(ensemble_config);
  WallTimer timer;
  ensemble.Train(w.base, w.knn_matrix);
  std::printf("  [trained USP ensemble e=3 in %.1fs]\n",
              timer.ElapsedSeconds());

  {
    PartitionIndex single(&w.base, &ensemble.model(0));
    const Matrix scores = single.ScoreQueries(w.queries);
    auto search = [&](size_t probes) {
      SearchOptions options;
      options.k = 10;
      options.budget = probes;
      return single.SearchBatchWithScores(w.queries, scores, options);
    };
    PrintCurve("fig5/16bins", w, "USP (ours, e=1)",
               ProbeSweep(search, DefaultProbeCounts(kBins),
                          w.ground_truth.indices, w.ground_truth.k));
  }
  {
    auto search = [&](size_t probes) {
      SearchRequest request;
      request.queries = w.queries;
      request.options.k = 10;
      request.options.budget = probes;
      return ensemble.SearchBatch(request);
    };
    PrintCurve("fig5/16bins", w, "USP (ours, e=3)",
               ProbeSweep(search, DefaultProbeCounts(kBins),
                          w.ground_truth.indices, w.ground_truth.k));
  }

  // Neural LSH (graph partition + supervised MLP, hidden 512 per Table 2).
  NeuralLshConfig nlsh_config;
  nlsh_config.num_bins = kBins;
  nlsh_config.hidden_dim = 512;
  nlsh_config.epochs = scale.epochs;
  nlsh_config.seed = 7;
  NeuralLsh nlsh(nlsh_config);
  timer.Reset();
  nlsh.Train(w.base, w.knn_matrix);
  std::printf("  [trained Neural LSH in %.1fs (partition %.1fs + train %.1fs)]\n",
              timer.ElapsedSeconds(), nlsh.partition_seconds(),
              nlsh.train_seconds());
  PrintCurve("fig5/16bins", w, "Neural LSH", SweepScorer(w, nlsh, kBins));

  // K-means.
  KMeansConfig km_config;
  km_config.num_clusters = kBins;
  km_config.seed = 3;
  KMeansPartitioner kmeans(w.base, km_config);
  PrintCurve("fig5/16bins", w, "K-means", SweepScorer(w, kmeans, kBins));

  // Cross-polytope LSH (data-oblivious).
  CrossPolytopeLsh lsh(w.base.cols(), kBins, 13);
  PrintCurve("fig5/16bins", w, "Cross-polytope LSH",
             SweepScorer(w, lsh, kBins));
}

void TwoFiftySixBins(const Workload& w, float eta) {
  const BenchScale scale = GetScale();
  constexpr size_t kBins = 256;

  // USP hierarchical 16 x 16 (paper: "first splitting into 16 bins and then
  // sub-splitting each bin into 16 more bins").
  HierarchicalConfig tree_config;
  tree_config.fanouts = {16, 16};
  tree_config.model = UspConfig(16, eta, scale.epochs);
  HierarchicalUspPartitioner usp_tree(tree_config);
  WallTimer timer;
  usp_tree.Train(w.base, w.knn_matrix);
  std::printf("  [trained USP hierarchical 16x16 in %.1fs, %zu models]\n",
              timer.ElapsedSeconds(), usp_tree.NumModels());
  PrintCurve("fig5/256bins", w, "USP (ours, hierarchical)",
             SweepScorer(w, usp_tree, kBins));

  NeuralLshConfig nlsh_config;
  nlsh_config.num_bins = kBins;
  nlsh_config.hidden_dim = 512;
  nlsh_config.epochs = scale.epochs;
  nlsh_config.seed = 7;
  NeuralLsh nlsh(nlsh_config);
  timer.Reset();
  nlsh.Train(w.base, w.knn_matrix);
  std::printf("  [trained Neural LSH-256 in %.1fs]\n", timer.ElapsedSeconds());
  PrintCurve("fig5/256bins", w, "Neural LSH", SweepScorer(w, nlsh, kBins));

  KMeansConfig km_config;
  km_config.num_clusters = kBins;
  km_config.seed = 3;
  KMeansPartitioner kmeans(w.base, km_config);
  PrintCurve("fig5/256bins", w, "K-means", SweepScorer(w, kmeans, kBins));

  CrossPolytopeLsh lsh(w.base.cols(), kBins, 13);
  PrintCurve("fig5/256bins", w, "Cross-polytope LSH",
             SweepScorer(w, lsh, kBins));
}

void Run() {
  // Eta values per dataset/bin count follow Table 3 of the paper.
  std::printf("=== Figure 5a: SIFT-like, 16 bins ===\n");
  SixteenBins(SiftLikeWorkload(), 7.0f);
  std::printf("\n=== Figure 5b: MNIST-like, 16 bins ===\n");
  SixteenBins(MnistLikeWorkload(), 7.0f);
  std::printf("\n=== Figure 5c: SIFT-like, 256 bins ===\n");
  TwoFiftySixBins(SiftLikeWorkload(), 10.0f);
  std::printf("\n=== Figure 5d: MNIST-like, 256 bins ===\n");
  TwoFiftySixBins(MnistLikeWorkload(), 30.0f);
}

}  // namespace
}  // namespace usp::bench

int main() {
  usp::bench::Run();
  return 0;
}
