// Pins the SearchRequest/IdSelector contract of the structured query API:
//
//   - For every index type, filtered search at full budget is bit-identical
//     (ids AND distances) to BruteForceKnn restricted to the selector's
//     allowed set, across a {1%, 10%, 50%, 90%} selectivity sweep.
//   - A selector admitting nothing yields fully padded rows (kInvalidId).
//   - candidate_counts counts candidates *scored* (post-filter): filtered
//     count + filtered_out == unfiltered count, keeping MeanCandidates()
//     (Eq. 4's S(R)) meaningful under filters.
//   - The positional SearchBatch shim is bit-identical to an unfiltered
//     SearchRequest.
//   - DynamicIndex composes the filter with tombstones across the
//     write-segment -> sealed-segment lifecycle.
//   - IdSelector implementations (Range/Array/Bitmap/Not) behave as
//     documented.
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/kmeans.h"
#include "core/ensemble.h"
#include "core/partition_index.h"
#include "dataset/workload.h"
#include "hnsw/hnsw.h"
#include "ivf/ivf.h"
#include "knn/brute_force.h"
#include "quant/scann_index.h"
#include "serve/dynamic_index.h"
#include "util/rng.h"

namespace usp {
namespace {

// Budget that makes every index exhaustive: all bins probed (<= 16 bins /
// nlist in every fixture index), ef = n for HNSW, all lists in every sealed
// segment for DynamicIndex.
constexpr size_t kFullBudget = 1u << 20;

const Workload& FilterWorkload() {
  static const Workload* w = [] {
    WorkloadSpec spec;
    spec.kind = WorkloadKind::kGaussian;  // d = 32
    spec.num_base = 500;
    spec.num_queries = 25;
    spec.gt_k = 10;
    spec.knn_k = 8;
    spec.seed = 77;
    return new Workload(MakeWorkload(spec));
  }();
  return *w;
}

// All seven index types built once over the shared workload. Every index is
// exhaustive at kFullBudget; ScaNN/IVF-PQ get rerank_budget = n so the ADC
// shortlist never truncates the allowed set.
struct AllIndexes {
  const Workload& w = FilterWorkload();
  KMeansPartitioner kmeans;
  PartitionIndex partition;
  IvfFlatIndex ivf_flat;
  IvfPqIndex ivf_pq;
  ScannIndex scann;
  HnswIndex hnsw;
  UspEnsemble ensemble;
  DynamicIndex dynamic;

  static KMeansConfig KmConfig() {
    KMeansConfig config;
    config.num_clusters = 16;
    config.seed = 11;
    return config;
  }
  static IvfConfig FlatConfig() {
    IvfConfig config;
    config.nlist = 16;
    config.seed = 12;
    return config;
  }
  static IvfConfig PqIvfConfig(size_t n) {
    IvfConfig config;
    config.nlist = 8;
    config.seed = 13;
    config.pq.num_subspaces = 8;
    config.pq.codebook_size = 16;
    config.pq.seed = 14;
    config.rerank_budget = n;  // exact at full budget
    return config;
  }
  static ProductQuantizer TrainPq(const Matrix& base) {
    PqConfig config;
    config.num_subspaces = 8;
    config.codebook_size = 16;
    config.seed = 15;
    ProductQuantizer pq(config);
    pq.Train(base);
    return pq;
  }
  static ScannIndexConfig ScConfig(size_t n) {
    ScannIndexConfig config;
    config.rerank_budget = n;
    return config;
  }
  static HnswConfig GraphConfig() {
    HnswConfig config;
    config.max_neighbors = 8;
    config.ef_construction = 60;
    config.seed = 16;
    return config;
  }
  static UspEnsembleConfig EnsembleConfig() {
    UspEnsembleConfig config;
    config.model.num_bins = 8;
    config.model.eta = 8.0f;
    config.model.epochs = 8;
    config.model.batch_size = 256;
    config.model.hidden_dim = 16;
    config.model.seed = 17;
    config.num_models = 2;
    return config;
  }

  AllIndexes()
      : kmeans(FilterWorkload().base, KmConfig()),
        partition(&FilterWorkload().base, &kmeans),
        ivf_flat(&FilterWorkload().base, FlatConfig()),
        ivf_pq(&FilterWorkload().base, PqIvfConfig(FilterWorkload().base.rows())),
        scann(&FilterWorkload().base, &kmeans, TrainPq(FilterWorkload().base),
              ScConfig(FilterWorkload().base.rows())),
        hnsw(GraphConfig()),
        ensemble(EnsembleConfig()),
        dynamic(FilterWorkload().base.cols()) {
    hnsw.Build(w.base);
    ensemble.Train(w.base, w.knn_matrix);
    // Global ids 0..n-1 == base row ids: add everything, then seal once so
    // queries exercise the sealed-segment (IVF) pushdown path.
    dynamic.AddBatch(w.base);
    dynamic.Seal();
  }

  std::vector<const Index*> All() const {
    return {&partition, &ivf_flat, &ivf_pq, &scann,
            &hnsw,      &ensemble, &dynamic};
  }
};

const AllIndexes& Indexes() {
  static const AllIndexes* all = new AllIndexes();
  return *all;
}

// Deterministic ~`selectivity` random subset of [0, n); never empty.
IdSelectorBitmap RandomSubset(size_t n, double selectivity, uint64_t seed) {
  Rng rng(seed);
  IdSelectorBitmap bitmap(n);
  for (uint32_t id = 0; id < n; ++id) {
    if (rng.Uniform() < selectivity) bitmap.Set(id);
  }
  if (bitmap.count() == 0) bitmap.Set(0);
  return bitmap;
}

// The acceptance bar of the filtered-search contract: at full budget, ids and
// distances are bit-identical to brute force over the allowed subset (the
// filtered BruteForceKnn overload, which shares the per-row kernel with the
// indexes' rerank paths).
void ExpectMatchesFilteredBruteForce(const Index& index, const Workload& w,
                                     size_t k, const IdSelector& filter,
                                     const char* label) {
  SearchRequest request;
  request.queries = w.queries;
  request.options.k = k;
  request.options.budget = kFullBudget;
  request.options.filter = &filter;
  const BatchSearchResult got = index.SearchBatch(request);

  const KnnResult expected =
      BruteForceKnn(w.base, w.queries, k, index.metric(), &filter);
  EXPECT_EQ(got.ids, expected.indices) << label;
  EXPECT_EQ(got.distances, expected.distances) << label;
}

TEST(FilteredSearchTest, FullBudgetEqualsBruteForceAcrossSelectivities) {
  const AllIndexes& all = Indexes();
  const size_t n = all.w.base.rows();
  const char* names[] = {"partition", "ivf_flat", "ivf_pq", "scann",
                         "hnsw",      "ensemble", "dynamic"};
  for (const double selectivity : {0.01, 0.1, 0.5, 0.9}) {
    const IdSelectorBitmap filter =
        RandomSubset(n, selectivity, /*seed=*/1000 + size_t(selectivity * 100));
    size_t i = 0;
    for (const Index* index : all.All()) {
      SCOPED_TRACE(testing::Message()
                   << names[i] << " selectivity=" << selectivity);
      ExpectMatchesFilteredBruteForce(*index, all.w, 10, filter, names[i]);
      ++i;
    }
  }
}

TEST(FilteredSearchTest, RangeAndNotSelectorsPushDown) {
  const AllIndexes& all = Indexes();
  const size_t n = all.w.base.rows();
  const IdSelectorRange first_third(0, static_cast<uint32_t>(n / 3));
  const IdSelectorNot rest(&first_third);
  for (const Index* index : all.All()) {
    ExpectMatchesFilteredBruteForce(*index, all.w, 10, first_third, "range");
    ExpectMatchesFilteredBruteForce(*index, all.w, 10, rest, "not-range");
  }
}

TEST(FilteredSearchTest, EmptyFilterReturnsAllPaddedRows) {
  const AllIndexes& all = Indexes();
  const IdSelectorRange nothing(0, 0);
  for (const Index* index : all.All()) {
    SearchRequest request;
    request.queries = all.w.queries;
    request.options.k = 5;
    request.options.budget = kFullBudget;
    request.options.filter = &nothing;
    const BatchSearchResult result = index->SearchBatch(request);
    ASSERT_EQ(result.ids.size(), all.w.queries.rows() * 5);
    for (size_t i = 0; i < result.ids.size(); ++i) {
      EXPECT_EQ(result.ids[i], kInvalidId);
      EXPECT_EQ(result.distances[i], std::numeric_limits<float>::infinity());
    }
  }
}

TEST(FilteredSearchTest, PositionalShimBitIdenticalToRequest) {
  const AllIndexes& all = Indexes();
  for (const Index* index : all.All()) {
    const BatchSearchResult positional =
        index->SearchBatch(all.w.queries, 10, 4, /*num_threads=*/1);
    SearchRequest request;
    request.queries = all.w.queries;
    request.options.k = 10;
    request.options.budget = 4;
    request.options.num_threads = 1;
    const BatchSearchResult structured = index->SearchBatch(request);
    EXPECT_EQ(positional.ids, structured.ids);
    EXPECT_EQ(positional.distances, structured.distances);
    EXPECT_EQ(positional.candidate_counts, structured.candidate_counts);
    EXPECT_FALSE(positional.stats.has_value());
  }
}

// Satellite regression: candidate_counts counts candidates *scored*
// (post-filter) — dropped candidates move to filtered_out, and the two sum
// back to the unfiltered count. Checked on the partition family (PartitionIndex
// probes + rerank, IVF delegation, ScaNN ADC pipeline), where the candidate
// set is an explicit list.
TEST(FilteredSearchTest, CandidateCountsArePostFilter) {
  const AllIndexes& all = Indexes();
  const size_t n = all.w.base.rows();
  const IdSelectorBitmap filter = RandomSubset(n, 0.5, /*seed=*/42);

  for (const Index* index :
       {static_cast<const Index*>(&all.partition),
        static_cast<const Index*>(&all.ivf_flat),
        static_cast<const Index*>(&all.scann)}) {
    SearchRequest request;
    request.queries = all.w.queries;
    request.options.k = 10;
    request.options.budget = 4;
    request.options.stats = true;
    // This test pins the *pushdown* path's counting semantics; keep the
    // planner from rerouting to another (equally correct) strategy.
    request.options.plan = PlanMode::kForcePushdown;
    const BatchSearchResult unfiltered = index->SearchBatch(request);
    request.options.filter = &filter;
    const BatchSearchResult filtered = index->SearchBatch(request);

    ASSERT_TRUE(unfiltered.stats.has_value());
    ASSERT_TRUE(filtered.stats.has_value());
    for (size_t q = 0; q < all.w.queries.rows(); ++q) {
      // Scored is what candidate_counts reports...
      EXPECT_EQ(filtered.candidate_counts[q],
                filtered.stats->candidates_scored[q]);
      // ...and scored + filtered_out recovers the unfiltered candidate set.
      EXPECT_EQ(filtered.candidate_counts[q] + filtered.stats->filtered_out[q],
                unfiltered.candidate_counts[q]);
      EXPECT_EQ(filtered.stats->bins_probed[q],
                unfiltered.stats->bins_probed[q]);
    }
    EXPECT_LE(filtered.MeanCandidates(), unfiltered.MeanCandidates());
  }
}

TEST(FilteredSearchTest, HnswStatsCountVisitsAndFilterDrops) {
  const AllIndexes& all = Indexes();
  const size_t n = all.w.base.rows();
  const IdSelectorBitmap filter = RandomSubset(n, 0.1, /*seed=*/7);
  SearchRequest request;
  request.queries = all.w.queries;
  request.options.k = 10;
  request.options.budget = 64;
  request.options.stats = true;
  request.options.filter = &filter;
  // This test pins the traversal stats of the pushdown path; under kAuto the
  // planner would (correctly) reroute this low-selectivity request to an
  // allowed-set scan, which visits no graph nodes at all.
  request.options.plan = PlanMode::kForcePushdown;
  const BatchSearchResult result = all.hnsw.SearchBatch(request);
  ASSERT_TRUE(result.stats.has_value());
  for (size_t q = 0; q < all.w.queries.rows(); ++q) {
    // HNSW scores every node it visits, filter or not.
    EXPECT_EQ(result.stats->candidates_scored[q], result.candidate_counts[q]);
    EXPECT_GT(result.stats->nodes_visited[q], 0u);
    EXPECT_LE(result.stats->nodes_visited[q], n);
    EXPECT_LE(result.stats->filtered_out[q], result.stats->nodes_visited[q]);
  }
}

TEST(FilteredSearchTest, DynamicFilterComposesWithTombstonesAcrossSeal) {
  const Workload& w = FilterWorkload();
  const size_t n = w.base.rows();
  const size_t k = 10;

  DynamicIndex index(w.base.cols());
  index.AddBatch(w.base);

  // Tombstone every 7th id; the user filter admits every 3rd id. The
  // reference selector is their composition over live rows.
  IdSelectorBitmap user_filter(n + w.queries.rows());
  IdSelectorBitmap reference(n + w.queries.rows());
  for (uint32_t id = 0; id < n; ++id) {
    if (id % 3 == 0) user_filter.Set(id);
  }
  for (uint32_t id = 0; id < n; ++id) {
    if (id % 7 == 0) {
      ASSERT_TRUE(index.Delete(id));
    }
  }
  for (uint32_t id = 0; id < n; ++id) {
    if (id % 3 == 0 && id % 7 != 0) reference.Set(id);
  }

  SearchRequest request;
  request.queries = w.queries;
  request.options.k = k;
  request.options.budget = kFullBudget;
  request.options.filter = &user_filter;

  // Phase 1: everything in the write segment (filtered brute-force path).
  {
    const BatchSearchResult got = index.SearchBatch(request);
    const KnnResult expected =
        BruteForceKnn(w.base, w.queries, k, index.metric(), &reference);
    EXPECT_EQ(got.ids, expected.indices);
    EXPECT_EQ(got.distances, expected.distances);
  }

  // Phase 2: sealed into an IVF segment (local-id selector translation).
  index.Seal();
  {
    const BatchSearchResult got = index.SearchBatch(request);
    const KnnResult expected =
        BruteForceKnn(w.base, w.queries, k, index.metric(), &reference);
    EXPECT_EQ(got.ids, expected.indices);
    EXPECT_EQ(got.distances, expected.distances);
  }

  // Phase 3: fresh rows land in the write segment (global ids n..n+m), some
  // deleted, some admitted — the filter spans sealed + write segments.
  const size_t m = w.queries.rows();
  index.AddBatch(w.queries);  // reuse query vectors as extra base rows
  for (uint32_t id = 0; id < m; ++id) {
    const uint32_t gid = static_cast<uint32_t>(n) + id;
    if (id % 2 == 0) {
      user_filter.Set(gid);
      if (id % 4 == 0) {
        ASSERT_TRUE(index.Delete(gid));
      } else {
        reference.Set(gid);
      }
    }
  }
  {
    Matrix combined(n + m, w.base.cols());
    std::memcpy(combined.Row(0), w.base.data(),
                w.base.size() * sizeof(float));
    std::memcpy(combined.Row(n), w.queries.data(),
                w.queries.size() * sizeof(float));
    const BatchSearchResult got = index.SearchBatch(request);
    const KnnResult expected =
        BruteForceKnn(combined, w.queries, k, index.metric(), &reference);
    EXPECT_EQ(got.ids, expected.indices);
    EXPECT_EQ(got.distances, expected.distances);
  }
}

TEST(FilteredSearchTest, FilteredBruteForceMatchesManualSubsetScan) {
  const Workload& w = FilterWorkload();
  const size_t n = w.base.rows();
  const size_t k = 10;
  const IdSelectorBitmap filter = RandomSubset(n, 0.25, /*seed=*/9);

  // Gather the allowed rows into a compact matrix and map local ids back.
  std::vector<uint32_t> allowed;
  for (uint32_t id = 0; id < n; ++id) {
    if (filter.is_member(id)) allowed.push_back(id);
  }
  Matrix subset(allowed.size(), w.base.cols());
  for (size_t i = 0; i < allowed.size(); ++i) {
    std::memcpy(subset.Row(i), w.base.Row(allowed[i]),
                w.base.cols() * sizeof(float));
  }

  const KnnResult filtered =
      BruteForceKnn(w.base, w.queries, k, Metric::kSquaredL2, &filter);
  // The subset scan must use the same kernel path, so pass an all-pass
  // selector rather than the (norm-trick) unfiltered overload.
  const IdSelectorAll all_pass;
  const KnnResult compact =
      BruteForceKnn(subset, w.queries, k, Metric::kSquaredL2, &all_pass);
  ASSERT_EQ(filtered.k, compact.k);
  for (size_t q = 0; q < w.queries.rows(); ++q) {
    for (size_t j = 0; j < k; ++j) {
      const uint32_t local = compact.Row(q)[j];
      const uint32_t expected_id =
          local == kInvalidId ? kInvalidId : allowed[local];
      EXPECT_EQ(filtered.Row(q)[j], expected_id);
      EXPECT_EQ(filtered.distances[q * k + j], compact.distances[q * k + j]);
    }
  }
}

TEST(IdSelectorTest, RangeArrayBitmapNotSemantics) {
  const IdSelectorRange range(3, 6);
  EXPECT_FALSE(range.is_member(2));
  EXPECT_TRUE(range.is_member(3));
  EXPECT_TRUE(range.is_member(5));
  EXPECT_FALSE(range.is_member(6));

  // Array sorts and dedupes its input.
  const IdSelectorArray array({9, 1, 4, 4, 1});
  EXPECT_EQ(array.ids(), (std::vector<uint32_t>{1, 4, 9}));
  EXPECT_TRUE(array.is_member(4));
  EXPECT_FALSE(array.is_member(5));

  IdSelectorBitmap bitmap(100);
  EXPECT_EQ(bitmap.count(), 0u);
  bitmap.Set(0);
  bitmap.Set(63);
  bitmap.Set(64);
  bitmap.Set(99);
  bitmap.Set(100);  // out of universe: ignored
  EXPECT_EQ(bitmap.count(), 4u);
  EXPECT_TRUE(bitmap.is_member(63));
  EXPECT_TRUE(bitmap.is_member(64));
  EXPECT_FALSE(bitmap.is_member(100));
  bitmap.Reset(63);
  EXPECT_FALSE(bitmap.is_member(63));
  EXPECT_EQ(bitmap.count(), 3u);

  const IdSelectorBitmap from_ids(10, {2, 7, 12});
  EXPECT_TRUE(from_ids.is_member(2));
  EXPECT_TRUE(from_ids.is_member(7));
  EXPECT_FALSE(from_ids.is_member(12));  // out of universe at construction

  const IdSelectorNot inverted(&range);
  EXPECT_TRUE(inverted.is_member(2));
  EXPECT_FALSE(inverted.is_member(4));

  const IdSelectorAll all;
  EXPECT_TRUE(all.is_member(0));
  EXPECT_TRUE(all.is_member(0xFFFFFFFEu));
}

}  // namespace
}  // namespace usp
