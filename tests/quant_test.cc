// Tests for quant/: PQ codebook training, encode/decode consistency, ADC
// distance quality, the anisotropic objective's effect, and the ScaNN-style
// index end-to-end (vanilla scan vs. partitioned).
#include <cmath>

#include <gtest/gtest.h>

#include "baselines/kmeans.h"
#include "core/partitioner.h"
#include "dataset/workload.h"
#include "quant/pq.h"
#include "quant/scann_index.h"
#include "tensor/ops.h"

namespace usp {
namespace {

const Workload& QuantWorkload() {
  static const Workload* w = [] {
    WorkloadSpec spec;
    spec.kind = WorkloadKind::kGaussian;
    spec.num_base = 1500;
    spec.num_queries = 60;
    spec.gt_k = 10;
    spec.knn_k = 10;
    spec.seed = 31;
    return new Workload(MakeWorkload(spec));
  }();
  return *w;
}

TEST(PqTest, SubspacesCoverAllDims) {
  PqConfig config;
  config.num_subspaces = 5;  // 32 dims -> 7,7,6,6,6
  ProductQuantizer pq(config);
  const Workload& w = QuantWorkload();
  pq.Train(w.base);
  EXPECT_EQ(pq.dims(), w.base.cols());
  // Decode must write every dimension: encode+decode a point and check no
  // dimension stays at the sentinel.
  const auto codes = pq.Encode(w.base.GatherRows({0}));
  std::vector<float> reconstructed(w.base.cols(), -12345.0f);
  pq.Decode(codes.data(), reconstructed.data());
  for (float v : reconstructed) EXPECT_NE(v, -12345.0f);
}

TEST(PqTest, ReconstructionBeatsGlobalMeanBaseline) {
  const Workload& w = QuantWorkload();
  PqConfig config;
  config.num_subspaces = 8;
  config.codebook_size = 16;
  ProductQuantizer pq(config);
  pq.Train(w.base);
  const double pq_error = pq.ReconstructionError(w.base);

  // Baseline: quantize everything to the dataset mean.
  std::vector<float> mean(w.base.cols(), 0.0f);
  for (size_t i = 0; i < w.base.rows(); ++i) {
    for (size_t j = 0; j < w.base.cols(); ++j) mean[j] += w.base(i, j);
  }
  for (auto& v : mean) v /= static_cast<float>(w.base.rows());
  double mean_error = 0.0;
  for (size_t i = 0; i < w.base.rows(); ++i) {
    mean_error += SquaredDistance(w.base.Row(i), mean.data(), w.base.cols());
  }
  mean_error /= static_cast<double>(w.base.rows());

  EXPECT_LT(pq_error, 0.35 * mean_error);
}

TEST(PqTest, MoreCodewordsReduceError) {
  const Workload& w = QuantWorkload();
  double prev = 1e300;
  for (size_t k : {4, 16, 64}) {
    PqConfig config;
    config.num_subspaces = 8;
    config.codebook_size = k;
    ProductQuantizer pq(config);
    pq.Train(w.base);
    const double err = pq.ReconstructionError(w.base);
    EXPECT_LT(err, prev);
    prev = err;
  }
}

TEST(PqTest, AdcMatchesDecodedDistance) {
  const Workload& w = QuantWorkload();
  PqConfig config;
  config.num_subspaces = 8;
  ProductQuantizer pq(config);
  pq.Train(w.base);
  const auto codes = pq.Encode(w.base);
  std::vector<float> reconstructed(w.base.cols());
  for (size_t q = 0; q < 5; ++q) {
    const float* query = w.queries.Row(q);
    const auto table = pq.BuildAdcTable(query);
    for (size_t i = 0; i < 10; ++i) {
      const float adc =
          pq.AdcDistance(table, codes.data() + i * pq.num_subspaces());
      pq.Decode(codes.data() + i * pq.num_subspaces(), reconstructed.data());
      const float exact =
          SquaredDistance(query, reconstructed.data(), w.base.cols());
      EXPECT_NEAR(adc, exact, 1e-1f + 1e-3f * exact);
    }
  }
}

TEST(PqTest, AdcPreservesNeighborOrderingApproximately) {
  const Workload& w = QuantWorkload();
  PqConfig config;
  config.num_subspaces = 8;
  config.codebook_size = 32;
  ProductQuantizer pq(config);
  pq.Train(w.base);
  const auto codes = pq.Encode(w.base);
  // For each query, the ADC-top-50 should contain most of the exact top-10.
  size_t hits = 0;
  for (size_t q = 0; q < 20; ++q) {
    const auto table = pq.BuildAdcTable(w.queries.Row(q));
    std::vector<std::pair<float, uint32_t>> scored(w.base.rows());
    for (size_t i = 0; i < w.base.rows(); ++i) {
      scored[i] = {pq.AdcDistance(table, codes.data() + i * 8),
                   static_cast<uint32_t>(i)};
    }
    std::partial_sort(scored.begin(), scored.begin() + 50, scored.end());
    std::set<uint32_t> shortlist;
    for (size_t i = 0; i < 50; ++i) shortlist.insert(scored[i].second);
    for (size_t j = 0; j < 10; ++j) {
      if (shortlist.count(w.ground_truth.indices[q * 10 + j])) ++hits;
    }
  }
  EXPECT_GT(hits, 20 * 10 * 6 / 10);  // >60% of true neighbors in shortlist
}

TEST(PqTest, AnisotropicTrainingStillQuantizesWell) {
  const Workload& w = QuantWorkload();
  PqConfig vanilla;
  vanilla.num_subspaces = 8;
  PqConfig aniso = vanilla;
  aniso.anisotropic_eta = 4.0f;
  ProductQuantizer pq_vanilla(vanilla), pq_aniso(aniso);
  pq_vanilla.Train(w.base);
  pq_aniso.Train(w.base);
  // Anisotropic trades some reconstruction error for score preservation;
  // error must stay the same order of magnitude.
  EXPECT_LT(pq_aniso.ReconstructionError(w.base),
            3.0 * pq_vanilla.ReconstructionError(w.base));
}

TEST(ScannIndexTest, ExhaustiveModeIsAccurate) {
  const Workload& w = QuantWorkload();
  PqConfig pq_config;
  pq_config.num_subspaces = 8;
  pq_config.codebook_size = 32;
  ProductQuantizer pq(pq_config);
  pq.Train(w.base);
  ScannIndexConfig config;
  config.rerank_budget = 100;
  ScannIndex index(&w.base, nullptr, std::move(pq), config);
  const auto result = index.SearchBatch(w.queries, 10, 0);
  EXPECT_GT(KnnAccuracy(result, w.ground_truth.indices, w.ground_truth.k),
            0.85);
  // Exhaustive mode scans everything.
  EXPECT_DOUBLE_EQ(result.MeanCandidates(),
                   static_cast<double>(w.base.rows()));
}

TEST(ScannIndexTest, PartitionedModeShrinksCandidates) {
  const Workload& w = QuantWorkload();
  KMeansConfig kc;
  kc.num_clusters = 16;
  kc.seed = 5;
  KMeansPartitioner partitioner(w.base, kc);

  PqConfig pq_config;
  pq_config.num_subspaces = 8;
  pq_config.codebook_size = 32;
  ProductQuantizer pq(pq_config);
  pq.Train(w.base);
  ScannIndexConfig config;
  config.rerank_budget = 80;
  ScannIndex index(&w.base, &partitioner, std::move(pq), config);

  const auto result = index.SearchBatch(w.queries, 10, 4);
  EXPECT_LT(result.MeanCandidates(), 0.6 * w.base.rows());
  EXPECT_GT(KnnAccuracy(result, w.ground_truth.indices, w.ground_truth.k),
            0.6);
}

TEST(ScannIndexTest, BiggerRerankBudgetHelps) {
  const Workload& w = QuantWorkload();
  PqConfig pq_config;
  pq_config.num_subspaces = 4;  // coarse codes so rerank matters
  pq_config.codebook_size = 8;
  double prev_accuracy = -1.0;
  for (size_t budget : {10, 200}) {
    ProductQuantizer pq(pq_config);
    pq.Train(w.base);
    ScannIndexConfig config;
    config.rerank_budget = budget;
    ScannIndex index(&w.base, nullptr, std::move(pq), config);
    const auto result = index.SearchBatch(w.queries, 10, 0);
    const double accuracy =
        KnnAccuracy(result, w.ground_truth.indices, w.ground_truth.k);
    EXPECT_GT(accuracy, prev_accuracy);
    prev_accuracy = accuracy;
  }
}

}  // namespace
}  // namespace usp
