// Tests for the scatter-gather sharding layer (serve/sharded_index.h): the
// acceptance bar is bit-identity — ids AND distances — against the
// equivalent single-index search at shard counts {1, 3, 8}, filtered and
// unfiltered, plus save/OpenIndex round-trips (heap and mmap), the
// cross-shard TopK merge edge cases (fewer-than-k shards, duplicate-distance
// ties, empty shards), and SearchStats aggregation across the fan-out.
#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <numeric>
#include <string>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "dataset/workload.h"
#include "index/serialize.h"
#include "knn/brute_force.h"
#include "serve/dynamic_index.h"
#include "serve/sharded_index.h"
#include "tensor/matrix.h"

namespace usp {
namespace {

// Large enough that every IVF shard (nlist <= sqrt(shard rows)) probes all
// of its lists, making shard search exact — the regime where the bit-identity
// contract binds.
constexpr size_t kFullBudget = 1u << 20;

const Workload& ShardWorkload() {
  static const Workload* w = [] {
    WorkloadSpec spec;
    spec.kind = WorkloadKind::kGaussian;
    spec.num_base = 700;
    spec.num_queries = 30;
    spec.gt_k = 10;
    spec.knn_k = 8;
    spec.seed = 77;
    return new Workload(MakeWorkload(spec));
  }();
  return *w;
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

// Ids must match a reference ranking bitwise; distances are checked against
// the single-shard union index (same scoring kernel), not BruteForceKnn,
// whose accumulation order differs at the ulp level.
void ExpectIdsEqual(const BatchSearchResult& got, const KnnResult& expected,
                    size_t nq, const std::string& label) {
  ASSERT_EQ(got.k, expected.k) << label;
  for (size_t q = 0; q < nq; ++q) {
    for (size_t j = 0; j < got.k; ++j) {
      EXPECT_EQ(got.Row(q)[j], expected.Row(q)[j])
          << label << " q=" << q << " j=" << j;
    }
  }
}

void ExpectBitIdentical(const BatchSearchResult& got,
                        const BatchSearchResult& want,
                        const std::string& label) {
  ASSERT_EQ(got.k, want.k) << label;
  EXPECT_EQ(got.ids, want.ids) << label;
  EXPECT_EQ(got.distances, want.distances) << label;
}

TEST(ShardedIndexTest, StaticShardsBitIdenticalToSingleIndex) {
  const Workload& w = ShardWorkload();
  const size_t k = 10;
  // The union index: one shard holding every point. Anchor its ids against
  // exact brute force, then demand every other shard count reproduce it
  // bit-for-bit (ids AND distances).
  ShardedIndexConfig union_config;
  union_config.num_shards = 1;
  const ShardedIndex union_index(w.base, union_config);
  const BatchSearchResult want =
      union_index.SearchBatch(w.queries, k, kFullBudget);
  ExpectIdsEqual(want, BruteForceKnn(w.base, w.queries, k), w.queries.rows(),
                 "union vs brute force");
  for (size_t shards : {3u, 8u}) {
    ShardedIndexConfig config;
    config.num_shards = shards;
    const ShardedIndex index(w.base, config);
    EXPECT_EQ(index.size(), w.base.rows());
    EXPECT_EQ(index.num_shards(), shards);
    EXPECT_FALSE(index.is_mutable());
    const BatchSearchResult got =
        index.SearchBatch(w.queries, k, kFullBudget);
    ExpectBitIdentical(got, want, "shards=" + std::to_string(shards));
  }
}

TEST(ShardedIndexTest, FilteredSearchBitIdenticalToFilteredBruteForce) {
  const Workload& w = ShardWorkload();
  const size_t k = 10;
  // ~29% selectivity, scattered across the id space (and thus across every
  // shard placement).
  IdSelectorBitmap filter(w.base.rows());
  for (uint32_t id = 0; id < w.base.rows(); id += 7) {
    filter.Set(id);
    filter.Set(id + 1 < w.base.rows() ? id + 1 : id);
  }
  SearchRequest request;
  request.queries = w.queries;
  request.options.k = k;
  request.options.budget = kFullBudget;
  request.options.filter = &filter;

  ShardedIndexConfig union_config;
  union_config.num_shards = 1;
  const ShardedIndex union_index(w.base, union_config);
  const BatchSearchResult want = union_index.SearchBatch(request);
  ExpectIdsEqual(want,
                 BruteForceKnn(w.base, w.queries, k, Metric::kSquaredL2,
                               &filter),
                 w.queries.rows(), "filtered union vs brute force");
  for (size_t shards : {3u, 8u}) {
    ShardedIndexConfig config;
    config.num_shards = shards;
    const ShardedIndex index(w.base, config);
    const BatchSearchResult got = index.SearchBatch(request);
    ExpectBitIdentical(got, want, "filtered shards=" + std::to_string(shards));
  }
}

TEST(ShardedIndexTest, ResultsBitIdenticalAtEveryThreadCount) {
  const Workload& w = ShardWorkload();
  ShardedIndexConfig config;
  config.num_shards = 3;
  const ShardedIndex index(w.base, config);
  const BatchSearchResult serial =
      index.SearchBatch(w.queries, 10, kFullBudget, /*num_threads=*/1);
  for (size_t nt : {0u, 2u, 5u}) {
    const BatchSearchResult got =
        index.SearchBatch(w.queries, 10, kFullBudget, nt);
    EXPECT_EQ(got.ids, serial.ids) << "nt=" << nt;
    EXPECT_EQ(got.distances, serial.distances) << "nt=" << nt;
    EXPECT_EQ(got.candidate_counts, serial.candidate_counts) << "nt=" << nt;
  }
}

TEST(ShardedIndexTest, MutableShardsMatchSingleDynamicIndex) {
  const Workload& w = ShardWorkload();
  ShardedIndexConfig config;
  config.num_shards = 3;
  ShardedIndex sharded(w.base.cols(), config);
  EXPECT_TRUE(sharded.is_mutable());
  DynamicIndex single(w.base.cols());

  const std::vector<uint32_t> sharded_ids = sharded.AddBatch(w.base);
  const std::vector<uint32_t> single_ids = single.AddBatch(w.base);
  ASSERT_EQ(sharded_ids, single_ids);  // dense ids in both
  EXPECT_EQ(sharded.size(), w.base.rows());

  const size_t k = 10;
  BatchSearchResult got = sharded.SearchBatch(w.queries, k, kFullBudget);
  BatchSearchResult want = single.SearchBatch(w.queries, k, kFullBudget);
  EXPECT_EQ(got.ids, want.ids);
  EXPECT_EQ(got.distances, want.distances);

  // Deletes route to the right shard and results still agree.
  for (uint32_t id : {5u, 123u, 400u, 699u}) {
    EXPECT_TRUE(sharded.Contains(id));
    EXPECT_TRUE(sharded.Delete(id));
    EXPECT_FALSE(sharded.Contains(id));
    EXPECT_FALSE(sharded.Delete(id));  // double delete
    EXPECT_TRUE(single.Delete(id));
  }
  EXPECT_FALSE(sharded.Delete(99999));  // never assigned
  EXPECT_EQ(sharded.size(), w.base.rows() - 4);
  got = sharded.SearchBatch(w.queries, k, kFullBudget);
  want = single.SearchBatch(w.queries, k, kFullBudget);
  EXPECT_EQ(got.ids, want.ids);
  EXPECT_EQ(got.distances, want.distances);
}

TEST(ShardedIndexTest, ShardReturningFewerThanKPadsWithInvalidId) {
  // 5 points across 3 shards, k = 10: every merged row must hold the 5 real
  // neighbors first, then an uninterrupted run of kInvalidId / +inf slots.
  const Workload& w = ShardWorkload();
  const MatrixView tiny(w.base.data(), 5, w.base.cols());
  ShardedIndexConfig config;
  config.num_shards = 3;
  const ShardedIndex index(tiny, config);
  const size_t k = 10;
  const BatchSearchResult got = index.SearchBatch(w.queries, k, kFullBudget);
  // Brute force cannot be asked for k > n; rank the 5 real rows at k = 5.
  const KnnResult expected = BruteForceKnn(tiny, w.queries, 5);
  for (size_t q = 0; q < w.queries.rows(); ++q) {
    for (size_t j = 0; j < 5; ++j) {
      EXPECT_EQ(got.Row(q)[j], expected.Row(q)[j]);
    }
    for (size_t j = 5; j < k; ++j) {
      EXPECT_EQ(got.Row(q)[j], kInvalidId) << "q=" << q << " j=" << j;
      EXPECT_EQ(got.DistanceRow(q)[j],
                std::numeric_limits<float>::infinity());
    }
  }
}

TEST(ShardedIndexTest, EmptyShardsAreSkipped) {
  // 4 points into 8 shards: at least 4 hash partitions are empty, and those
  // shards must neither break the merge nor appear in shard_size.
  const Workload& w = ShardWorkload();
  const MatrixView tiny(w.base.data(), 4, w.base.cols());
  ShardedIndexConfig config;
  config.num_shards = 8;
  const ShardedIndex index(tiny, config);
  size_t absent = 0, total = 0;
  for (size_t s = 0; s < index.num_shards(); ++s) {
    if (index.shard_size(s) == 0) ++absent;
    total += index.shard_size(s);
  }
  EXPECT_GE(absent, 4u);
  EXPECT_EQ(total, 4u);
  const BatchSearchResult got = index.SearchBatch(w.queries, 4, kFullBudget);
  ExpectIdsEqual(got, BruteForceKnn(tiny, w.queries, 4), w.queries.rows(),
                 "empty-shards vs brute force");
  ShardedIndexConfig union_config;
  union_config.num_shards = 1;
  const ShardedIndex union_index(tiny, union_config);
  ExpectBitIdentical(got, union_index.SearchBatch(w.queries, 4, kFullBudget),
                     "empty-shards vs union");
}

TEST(ShardedIndexTest, DuplicateDistanceTiesMergeInGlobalIdOrder) {
  // 60 rows, the first 40 all the same vector: every query ties across the
  // shard boundary, and the merged row must break ties exactly like a single
  // index would — ascending global id.
  const size_t dim = 8;
  Matrix base(60, dim);
  for (size_t i = 0; i < 60; ++i) {
    for (size_t d = 0; d < dim; ++d) {
      base.Row(i)[d] = i < 40 ? 1.0f : static_cast<float>(i + d);
    }
  }
  Matrix queries(3, dim);
  for (size_t q = 0; q < 3; ++q) {
    for (size_t d = 0; d < dim; ++d) {
      queries.Row(q)[d] = 1.0f + 0.01f * static_cast<float>(q);
    }
  }
  const size_t k = 10;
  ShardedIndexConfig union_config;
  union_config.num_shards = 1;
  const ShardedIndex union_index(base, union_config);
  const BatchSearchResult want =
      union_index.SearchBatch(queries, k, kFullBudget);
  for (size_t shards : {3u, 8u}) {
    ShardedIndexConfig config;
    config.num_shards = shards;
    const ShardedIndex index(base, config);
    const BatchSearchResult got = index.SearchBatch(queries, k, kFullBudget);
    ExpectBitIdentical(got, want, "ties shards=" + std::to_string(shards));
    // The winning ids are the 10 smallest of the 40 tied duplicates — the
    // ascending-global-id tie-break a single index would produce.
    for (size_t q = 0; q < 3; ++q) {
      for (size_t j = 0; j < k; ++j) {
        EXPECT_EQ(got.Row(q)[j], static_cast<uint32_t>(j))
            << "shards=" << shards << " q=" << q;
      }
    }
  }
}

TEST(ShardedIndexTest, StatsAggregateAcrossShards) {
  const Workload& w = ShardWorkload();
  const size_t n = w.base.rows();
  ShardedIndexConfig config;
  config.num_shards = 3;
  const ShardedIndex index(w.base, config);

  // Unfiltered at full budget: every live row is scored somewhere, so the
  // summed candidates must equal n and candidate_counts must mirror stats.
  SearchRequest request;
  request.queries = w.queries;
  request.options.k = 10;
  request.options.budget = kFullBudget;
  request.options.stats = true;
  BatchSearchResult got = index.SearchBatch(request);
  ASSERT_TRUE(got.stats.has_value());
  for (size_t q = 0; q < w.queries.rows(); ++q) {
    EXPECT_EQ(got.candidate_counts[q], n);
    EXPECT_EQ(got.stats->candidates_scored[q], got.candidate_counts[q]);
    EXPECT_GT(got.stats->bins_probed[q], 0u);  // summed across shards
  }

  // Filtered pushdown at full budget: scored + filtered_out must account for
  // every row in the index — the Eq.4 budget-accounting identity the fan-out
  // has to preserve.
  IdSelectorRange filter(100, 300);
  request.options.filter = &filter;
  request.options.plan = PlanMode::kForcePushdown;
  got = index.SearchBatch(request);
  ASSERT_TRUE(got.stats.has_value());
  for (size_t q = 0; q < w.queries.rows(); ++q) {
    EXPECT_EQ(got.stats->candidates_scored[q], 200u);
    EXPECT_EQ(got.stats->candidates_scored[q] + got.stats->filtered_out[q],
              n);
  }
}

TEST(ShardedIndexTest, SaveOpenRoundTripIsBitIdentical) {
  const Workload& w = ShardWorkload();
  const size_t k = 10;
  ShardedIndexConfig config;
  config.num_shards = 3;
  const ShardedIndex index(w.base, config);
  const BatchSearchResult want = index.SearchBatch(w.queries, k, kFullBudget);

  const std::string path = TempPath("sharded_static.uspidx");
  ASSERT_TRUE(SaveIndex(index, path).ok());
  for (const LoadMode mode : {LoadMode::kHeap, LoadMode::kMmap}) {
    StatusOr<std::unique_ptr<Index>> loaded = OpenIndex(path, mode);
    ASSERT_TRUE(loaded.ok()) << loaded.status().message();
    const Index& reopened = *loaded.value();
    EXPECT_EQ(reopened.type(), IndexType::kSharded);
    EXPECT_EQ(reopened.size(), w.base.rows());
    EXPECT_EQ(reopened.dim(), w.base.cols());
    const BatchSearchResult got =
        reopened.SearchBatch(w.queries, k, kFullBudget);
    EXPECT_EQ(got.ids, want.ids);
    EXPECT_EQ(got.distances, want.distances);
    EXPECT_EQ(got.candidate_counts, want.candidate_counts);
  }
}

TEST(ShardedIndexTest, MutableRoundTripKeepsDeletesAndEmptyShards) {
  const Workload& w = ShardWorkload();
  const size_t k = 10;
  ShardedIndexConfig config;
  config.num_shards = 8;
  ShardedIndex index(w.base.cols(), config);
  // Only 20 points into 8 shards (some shards stay empty but present), then
  // a few deletes: the round trip must preserve tombstones and id routing.
  const MatrixView small(w.base.data(), 20, w.base.cols());
  index.AddBatch(small);
  EXPECT_TRUE(index.Delete(3));
  EXPECT_TRUE(index.Delete(11));
  const BatchSearchResult want = index.SearchBatch(w.queries, k, kFullBudget);

  const std::string path = TempPath("sharded_mutable.uspidx");
  ASSERT_TRUE(SaveIndex(index, path).ok());
  for (const LoadMode mode : {LoadMode::kHeap, LoadMode::kMmap}) {
    StatusOr<std::unique_ptr<Index>> loaded = OpenIndex(path, mode);
    ASSERT_TRUE(loaded.ok()) << loaded.status().message();
    const Index& reopened = *loaded.value();
    EXPECT_EQ(reopened.type(), IndexType::kSharded);
    EXPECT_EQ(reopened.size(), 18u);
    const BatchSearchResult got =
        reopened.SearchBatch(w.queries, k, kFullBudget);
    EXPECT_EQ(got.ids, want.ids);
    EXPECT_EQ(got.distances, want.distances);
    for (size_t i = 0; i < got.ids.size(); ++i) {
      EXPECT_NE(got.ids[i], 3u);
      EXPECT_NE(got.ids[i], 11u);
    }
  }
}

TEST(ShardedIndexTest, HashPlacementIsStableAndCoversAllShards) {
  // The placement function is part of the on-disk contract: pin a few values
  // so an accidental change fails loudly instead of corrupting round-trips.
  EXPECT_EQ(ShardedIndex::Place(0, 1), 0u);
  for (uint32_t id = 0; id < 1000; ++id) {
    EXPECT_EQ(ShardedIndex::Place(id, 8), ShardedIndex::Place(id, 8));
    EXPECT_LT(ShardedIndex::Place(id, 3), 3u);
  }
  // 1000 dense ids over 8 shards: every shard gets a reasonable share.
  std::vector<size_t> counts(8, 0);
  for (uint32_t id = 0; id < 1000; ++id) {
    ++counts[ShardedIndex::Place(id, 8)];
  }
  for (size_t s = 0; s < 8; ++s) {
    EXPECT_GT(counts[s], 50u) << "shard " << s << " starved";
  }
}

}  // namespace
}  // namespace usp
