// Round-trips an OutOfCoreBuilder product into DynamicIndex as a sealed
// segment (DynamicIndex::AddSealedSegmentFromContainer): the disk-to-serving
// handoff must answer k-NN and radius queries bit-identically to brute force
// over the union of the bulk-loaded rows and the live write segment, through
// both load modes, and must reject incompatible containers with a Status
// (never a crash) while leaving the index untouched.
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dataset/fvecs_stream.h"
#include "util/rng.h"
#include "index/id_selector.h"
#include "index/serialize.h"
#include "knn/brute_force.h"
#include "serve/dynamic_index.h"
#include "serve/out_of_core_builder.h"
#include "tensor/matrix.h"

namespace usp {
namespace {

constexpr size_t kFullBudget = 1u << 20;

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

Matrix RandomData(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  return Matrix::RandomGaussian(n, dim, &rng);
}

// Streams `base` through the disk-direct writer and returns the container
// path — the same pipeline an out-of-core .fvecs build runs.
std::string BuildContainer(const Matrix& base, const std::string& name) {
  OutOfCoreConfig config;
  config.nlist = 8;
  config.chunk_rows = 100;
  config.sample_rows = base.rows();
  const std::string path = TempPath(name);
  MatrixStream stream(base);
  auto stats = OutOfCoreBuilder(config).BuildFromStream(&stream, path);
  EXPECT_TRUE(stats.ok()) << stats.status().message();
  return path;
}

void ExpectSameKnn(const BatchSearchResult& got, const BatchSearchResult& want,
                   const char* label) {
  ASSERT_EQ(got.k, want.k) << label;
  EXPECT_EQ(got.ids, want.ids) << label;
  EXPECT_EQ(got.distances, want.distances) << label;
}

TEST(DynamicBulkLoadTest, ContainerServesNextToWriteSegment) {
  const size_t dim = 32;
  const Matrix bulk = RandomData(300, dim, 21);
  const Matrix fresh = RandomData(40, dim, 22);
  const Matrix queries = RandomData(10, dim, 23);
  const std::string path = BuildContainer(bulk, "bulk_segment.uspidx");

  for (const LoadMode mode : {LoadMode::kMmap, LoadMode::kHeap}) {
    SCOPED_TRACE(mode == LoadMode::kMmap ? "mmap" : "heap");
    DynamicIndex index(dim);
    auto first = index.AddSealedSegmentFromContainer(path, mode);
    ASSERT_TRUE(first.ok()) << first.status().message();
    EXPECT_EQ(first.value(), 0u);  // bulk rows take global ids 0..299
    EXPECT_EQ(index.size(), bulk.rows());

    // Fresh rows land in the write segment after the bulk ids.
    const std::vector<uint32_t> fresh_ids = index.AddBatch(fresh);
    ASSERT_EQ(fresh_ids.size(), fresh.rows());
    EXPECT_EQ(fresh_ids.front(), bulk.rows());

    // Reference: one matrix holding bulk rows then fresh rows, ids aligned.
    Matrix combined(bulk.rows() + fresh.rows(), dim);
    std::memcpy(combined.Row(0), bulk.data(), bulk.size() * sizeof(float));
    std::memcpy(combined.Row(bulk.rows()), fresh.data(),
                fresh.size() * sizeof(float));

    // Bit-identity is pinned through the filtered path on both sides (an
    // all-pass selector): that routes every row — bulk segment and write
    // segment alike — through the gather-score (ScoreIds) kernels, whereas
    // the unfiltered write-segment scan takes the norm-trick tiles, which
    // round differently from any brute-force reference.
    IdSelectorBitmap everything(combined.rows());
    for (uint32_t id = 0; id < combined.rows(); ++id) everything.Set(id);
    SearchRequest request;
    request.queries = queries;
    request.options.k = 10;
    request.options.budget = kFullBudget;
    request.options.filter = &everything;
    // Pin the pushdown plan (the convention of the filtered-search bit-
    // identity suite): under kAuto a dense selector reroutes to post-filter,
    // whose unfiltered write-segment scan takes the norm-trick tiles.
    request.options.plan = PlanMode::kForcePushdown;
    ExpectSameKnn(index.SearchBatch(request),
                  [&] {
                    BatchSearchResult r;
                    const KnnResult knn = BruteForceKnn(
                        combined, queries, 10, index.metric(), &everything);
                    r.k = knn.k;
                    r.ids = knn.indices;
                    r.distances = knn.distances;
                    return r;
                  }(),
                  "knn");

    // Radius rows must span both the bulk-loaded segment and the write
    // segment, bit-identical to the brute-force reference.
    const KnnResult knn = BruteForceKnn(combined, queries, 3);
    const float radius = knn.distances[knn.k];  // some mid-range distance
    RadiusOptions options;
    options.budget = kFullBudget;
    const RadiusResult got = index.RadiusSearch(queries, radius, options);
    const RadiusResult expected =
        BruteForceRadius(combined, queries, radius, index.metric());
    EXPECT_EQ(got.offsets, expected.offsets);
    EXPECT_EQ(got.ids, expected.ids);
    EXPECT_EQ(got.distances, expected.distances);

    // Bulk-loaded ids are first-class: deletable like any other row.
    ASSERT_TRUE(index.Contains(5));
    ASSERT_TRUE(index.Delete(5));
    EXPECT_FALSE(index.Contains(5));
  }
}

TEST(DynamicBulkLoadTest, RejectsMissingFile) {
  DynamicIndex index(16);
  auto result =
      index.AddSealedSegmentFromContainer(TempPath("no_such.uspidx"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(index.size(), 0u);
}

TEST(DynamicBulkLoadTest, RejectsDimMismatchBeforeAnyStateChange) {
  const Matrix bulk = RandomData(200, 24, 31);
  const std::string path = BuildContainer(bulk, "dim24_segment.uspidx");
  DynamicIndex index(32);
  const Matrix keep = RandomData(5, 32, 32);
  index.AddBatch(keep);
  auto result = index.AddSealedSegmentFromContainer(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(index.size(), keep.rows());  // failed load left the index alone
}

TEST(DynamicBulkLoadTest, RejectsNestedDynamicContainer) {
  const size_t dim = 16;
  DynamicIndex inner(dim);
  inner.AddBatch(RandomData(50, dim, 33));
  inner.Seal();
  const std::string path = TempPath("nested_dynamic.uspidx");
  ASSERT_TRUE(SaveIndex(inner, path).ok());

  DynamicIndex outer(dim);
  auto result = outer.AddSealedSegmentFromContainer(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(outer.size(), 0u);
}

}  // namespace
}  // namespace usp
