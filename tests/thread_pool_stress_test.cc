// Determinism under parallelism: SearchBatch sharded over 1/2/8 threads must
// return bit-identical ids and candidate counts on every index type. Each
// query's work is independent, so chunk boundaries must never leak into
// results; these tests pin that contract on a 3k-point Gaussian workload.
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/kmeans.h"
#include "core/partition_index.h"
#include "dataset/workload.h"
#include "eval/sweep.h"
#include "ivf/ivf.h"
#include "quant/pq.h"
#include "quant/scann_index.h"
#include "util/thread_pool.h"

namespace usp {
namespace {

const Workload& StressWorkload() {
  static const Workload* w = [] {
    WorkloadSpec spec;
    spec.kind = WorkloadKind::kGaussian;
    spec.num_base = 3000;
    spec.num_queries = 200;
    spec.gt_k = 10;
    spec.knn_k = 8;
    spec.seed = 123;
    return new Workload(MakeWorkload(spec));
  }();
  return *w;
}

const std::vector<size_t>& ThreadCounts() {
  static const std::vector<size_t> counts = {1, 2, 8};
  return counts;
}

void ExpectIdenticalResults(const BatchSearchResult& serial,
                            const BatchSearchResult& parallel,
                            size_t num_threads) {
  EXPECT_EQ(serial.ids, parallel.ids) << "ids diverge at " << num_threads
                                      << " threads";
  EXPECT_EQ(serial.candidate_counts, parallel.candidate_counts)
      << "candidate counts diverge at " << num_threads << " threads";
}

TEST(ThreadPoolStressTest, PartitionIndexSearchBatchIsThreadCountInvariant) {
  const Workload& w = StressWorkload();
  KMeansConfig config;
  config.num_clusters = 24;
  config.seed = 3;
  KMeansPartitioner kmeans(w.base, config);
  PartitionIndex index(&w.base, &kmeans);

  const auto serial = index.SearchBatch(w.queries, 10, 4, /*num_threads=*/1);
  for (size_t threads : ThreadCounts()) {
    ExpectIdenticalResults(
        index.SearchBatch(w.queries, 10, 4, threads), serial, threads);
  }
  // The pool-default path (num_threads = 0) must agree too.
  ExpectIdenticalResults(index.SearchBatch(w.queries, 10, 4), serial, 0);
}

TEST(ThreadPoolStressTest, SearchBatchWithScoresIsThreadCountInvariant) {
  const Workload& w = StressWorkload();
  KMeansConfig config;
  config.num_clusters = 24;
  config.seed = 3;
  KMeansPartitioner kmeans(w.base, config);
  PartitionIndex index(&w.base, &kmeans);

  const Matrix scores = index.ScoreQueries(w.queries);
  const auto serial =
      index.SearchBatchWithScores(w.queries, scores, 10, 6, /*num_threads=*/1);
  for (size_t threads : ThreadCounts()) {
    ExpectIdenticalResults(
        index.SearchBatchWithScores(w.queries, scores, 10, 6, threads), serial,
        threads);
  }
}

TEST(ThreadPoolStressTest, IvfFlatSearchBatchIsThreadCountInvariant) {
  const Workload& w = StressWorkload();
  IvfConfig config;
  config.nlist = 24;
  config.seed = 7;
  IvfFlatIndex index(&w.base, config);

  const auto serial = index.SearchBatch(w.queries, 10, 4, /*num_threads=*/1);
  for (size_t threads : ThreadCounts()) {
    ExpectIdenticalResults(
        index.SearchBatch(w.queries, 10, 4, threads), serial, threads);
  }
}

TEST(ThreadPoolStressTest, IvfPqSearchBatchIsThreadCountInvariant) {
  const Workload& w = StressWorkload();
  IvfConfig config;
  config.nlist = 24;
  config.seed = 7;
  config.pq.num_subspaces = 4;
  config.pq.codebook_size = 16;
  config.pq.seed = 11;
  config.rerank_budget = 50;
  IvfPqIndex index(&w.base, config);

  const auto serial = index.SearchBatch(w.queries, 10, 4, /*num_threads=*/1);
  for (size_t threads : ThreadCounts()) {
    ExpectIdenticalResults(
        index.SearchBatch(w.queries, 10, 4, threads), serial, threads);
  }
}

TEST(ThreadPoolStressTest, ScannIndexSearchBatchIsThreadCountInvariant) {
  const Workload& w = StressWorkload();
  KMeansConfig km_config;
  km_config.num_clusters = 24;
  km_config.seed = 3;
  KMeansPartitioner kmeans(w.base, km_config);

  PqConfig pq_config;
  pq_config.num_subspaces = 4;
  pq_config.codebook_size = 16;
  pq_config.seed = 11;
  ProductQuantizer pq(pq_config);
  pq.Train(w.base);

  ScannIndexConfig config;
  config.rerank_budget = 50;
  ScannIndex index(&w.base, &kmeans, std::move(pq), config);

  const auto serial = index.SearchBatch(w.queries, 10, 4, /*num_threads=*/1);
  for (size_t threads : ThreadCounts()) {
    ExpectIdenticalResults(
        index.SearchBatch(w.queries, 10, 4, threads), serial, threads);
  }
}

TEST(ThreadPoolStressTest, ProbeSweepCurveIsThreadCountInvariant) {
  const Workload& w = StressWorkload();
  KMeansConfig config;
  config.num_clusters = 24;
  config.seed = 3;
  KMeansPartitioner kmeans(w.base, config);
  PartitionIndex index(&w.base, &kmeans);

  const auto probes = DefaultProbeCounts(12);
  const auto serial = ProbeSweep(index, w.queries, 10, probes,
                                 w.ground_truth.indices, w.ground_truth.k,
                                 /*num_threads=*/1);
  for (size_t threads : ThreadCounts()) {
    const auto curve = ProbeSweep(index, w.queries, 10, probes,
                                  w.ground_truth.indices, w.ground_truth.k,
                                  threads);
    ASSERT_EQ(curve.size(), serial.size());
    for (size_t i = 0; i < curve.size(); ++i) {
      EXPECT_EQ(curve[i].probes, serial[i].probes);
      EXPECT_EQ(curve[i].mean_candidates, serial[i].mean_candidates)
          << "candidates diverge at point " << i << ", " << threads
          << " threads";
      EXPECT_EQ(curve[i].accuracy, serial[i].accuracy)
          << "accuracy diverges at point " << i << ", " << threads
          << " threads";
    }
  }
}

TEST(ThreadPoolStressTest, ParallelForWithThreadCapCoversEveryIndexOnce) {
  constexpr size_t kCount = 10'000;
  for (size_t threads : {size_t{0}, size_t{1}, size_t{2}, size_t{8},
                         size_t{64}}) {
    std::vector<std::atomic<uint32_t>> hits(kCount);
    for (auto& h : hits) h.store(0);
    ParallelFor(kCount, 16, threads, [&](size_t begin, size_t end, size_t) {
      for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
    });
    for (size_t i = 0; i < kCount; ++i) {
      ASSERT_EQ(hits[i].load(), 1u)
          << "index " << i << " at " << threads << " threads";
    }
  }
}

TEST(ThreadPoolStressTest, ParallelForSingleThreadRunsOnCallingThread) {
  const std::thread::id caller = std::this_thread::get_id();
  std::atomic<bool> same_thread{true};
  ParallelFor(1000, 8, /*num_threads=*/1, [&](size_t, size_t, size_t) {
    if (std::this_thread::get_id() != caller) same_thread.store(false);
  });
  EXPECT_TRUE(same_thread.load());
}

TEST(ParallelInvokeTest, RunsEveryTaskExactlyOnce) {
  for (size_t count : {size_t{0}, size_t{1}, size_t{3}, size_t{64},
                       size_t{500}}) {
    std::vector<std::atomic<uint32_t>> hits(count);
    for (auto& h : hits) h.store(0);
    ParallelInvoke(count, [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < count; ++i) {
      ASSERT_EQ(hits[i].load(), 1u) << "task " << i << " of " << count;
    }
  }
}

TEST(ParallelInvokeTest, TasksMayRunNestedParallelFor) {
  // The shard fan-out pattern: heterogeneous outer tasks each running their
  // own ParallelFor on the shared pool. Work-claiming means this completes
  // even when every pool worker is busy with outer tasks — the classic
  // nested-parallelism deadlock this design exists to avoid.
  constexpr size_t kOuter = 16;
  constexpr size_t kInner = 2000;
  std::vector<std::atomic<uint32_t>> hits(kOuter * kInner);
  for (auto& h : hits) h.store(0);
  ParallelInvoke(kOuter, [&](size_t task) {
    ParallelFor(kInner, 64, /*num_threads=*/0,
                [&, task](size_t begin, size_t end, size_t) {
                  for (size_t i = begin; i < end; ++i) {
                    hits[task * kInner + i].fetch_add(1);
                  }
                });
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1u) << "slot " << i;
  }
}

TEST(ParallelInvokeTest, SingleTaskRunsOnCallingThread) {
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran_on;
  ParallelInvoke(1, [&](size_t) { ran_on = std::this_thread::get_id(); });
  EXPECT_EQ(ran_on, caller);
}

TEST(ParallelInvokeTest, NestedInvokeFromPoolTaskCompletes) {
  // ParallelInvoke called from inside a ParallelInvoke task must not
  // deadlock either (the caller claims unstarted tasks itself).
  std::atomic<uint32_t> total{0};
  ParallelInvoke(8, [&](size_t) {
    ParallelInvoke(8, [&](size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64u);
}

}  // namespace
}  // namespace usp
