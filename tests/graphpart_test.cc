// Tests for graphpart/: k-NN graph construction, balanced bisection (balance
// + cut quality on planted structures), m-way partitioning, Neural LSH
// end-to-end, and the Regression-LSH tree split.
#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "baselines/partition_tree.h"
#include "core/partition_index.h"
#include "dataset/synthetic.h"
#include "dataset/workload.h"
#include "graphpart/balanced_partitioner.h"
#include "graphpart/graph.h"
#include "graphpart/neural_lsh.h"
#include "graphpart/regression_lsh.h"

namespace usp {
namespace {

// Two disjoint cliques of size `half` connected by a single bridge edge.
Graph TwoCliques(size_t half) {
  Graph graph;
  const size_t n = 2 * half;
  graph.adjacency.resize(n);
  auto connect = [&](uint32_t a, uint32_t b) {
    graph.adjacency[a].push_back(b);
    graph.adjacency[b].push_back(a);
  };
  for (size_t i = 0; i < half; ++i) {
    for (size_t j = i + 1; j < half; ++j) {
      connect(i, j);
      connect(half + i, half + j);
    }
  }
  connect(0, static_cast<uint32_t>(half));  // bridge
  return graph;
}

TEST(GraphTest, SymmetrizesKnnLists) {
  KnnResult knn;
  knn.k = 1;
  knn.indices = {1, 2, 0};  // 0->1, 1->2, 2->0
  knn.distances.assign(3, 0.0f);
  const Graph graph = BuildKnnGraph(knn, 3);
  // Every directed edge becomes undirected.
  EXPECT_EQ(graph.num_edges(), 3u);
  EXPECT_EQ(graph.adjacency[0].size(), 2u);  // 1 (out) and 2 (in)
}

TEST(GraphTest, RemovesDuplicateEdges) {
  KnnResult knn;
  knn.k = 2;
  knn.indices = {1, 1, 0, 0};  // both lists point at each other twice
  knn.distances.assign(4, 0.0f);
  const Graph graph = BuildKnnGraph(knn, 2);
  EXPECT_EQ(graph.num_edges(), 1u);
}

TEST(GraphTest, InducedSubgraphRenumbers) {
  const Graph graph = TwoCliques(4);
  const Graph sub = InducedSubgraph(graph, {0, 1, 2});
  EXPECT_EQ(sub.num_vertices(), 3u);
  EXPECT_EQ(sub.num_edges(), 3u);  // triangle within the first clique
  for (const auto& list : sub.adjacency) {
    for (uint32_t v : list) EXPECT_LT(v, 3u);
  }
}

TEST(GraphTest, CutSizeCountsCrossEdges) {
  const Graph graph = TwoCliques(3);
  std::vector<uint32_t> perfect = {0, 0, 0, 1, 1, 1};
  EXPECT_EQ(CutSize(graph, perfect), 1u);  // only the bridge
  std::vector<uint32_t> bad = {0, 1, 0, 1, 0, 1};
  EXPECT_GT(CutSize(graph, bad), 3u);
}

TEST(BisectTest, FindsPlantedBisection) {
  const Graph graph = TwoCliques(20);
  BalancedPartitionConfig config;
  config.seed = 3;
  const auto labels = BisectBalanced(graph, 20, config);
  EXPECT_EQ(CutSize(graph, labels), 1u);
  size_t left = 0;
  for (uint32_t l : labels) {
    if (l == 0) ++left;
  }
  EXPECT_EQ(left, 20u);
}

TEST(BisectTest, RespectsBalanceSlack) {
  const Graph graph = TwoCliques(25);
  BalancedPartitionConfig config;
  config.epsilon = 0.05;
  config.seed = 5;
  const auto labels = BisectBalanced(graph, 25, config);
  size_t left = 0;
  for (uint32_t l : labels) {
    if (l == 0) ++left;
  }
  EXPECT_NEAR(static_cast<double>(left), 25.0, 3.0);
}

TEST(BisectTest, DegenerateTargets) {
  const Graph graph = TwoCliques(3);
  BalancedPartitionConfig config;
  EXPECT_EQ(BisectBalanced(graph, 0, config),
            std::vector<uint32_t>(6, 1));
  EXPECT_EQ(BisectBalanced(graph, 6, config),
            std::vector<uint32_t>(6, 0));
}

class PartitionGraphTest : public ::testing::TestWithParam<size_t> {};

TEST_P(PartitionGraphTest, ProducesBalancedMWayParts) {
  const size_t m = GetParam();
  // Random-ish graph from a Gaussian dataset's kNN structure.
  const LabeledDataset ds = MakeGaussianMixture(400, 8, 8, 20.0f, 1.0f, 7);
  const KnnResult knn = BuildKnnMatrix(ds.points, 6);
  const Graph graph = BuildKnnGraph(knn, 400);
  BalancedPartitionConfig config;
  config.seed = 11;
  const auto labels = PartitionGraph(graph, m, config);
  // All m labels used, sizes within 35% of ideal.
  std::vector<size_t> sizes(m, 0);
  for (uint32_t l : labels) {
    ASSERT_LT(l, m);
    ++sizes[l];
  }
  const double ideal = 400.0 / static_cast<double>(m);
  for (size_t s : sizes) {
    EXPECT_GT(static_cast<double>(s), 0.55 * ideal);
    EXPECT_LT(static_cast<double>(s), 1.45 * ideal);
  }
}

INSTANTIATE_TEST_SUITE_P(Parts, PartitionGraphTest,
                         ::testing::Values(2, 3, 4, 8, 16));

TEST(NeuralLshTest, EndToEndBeatsRandomRouting) {
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kGaussian;
  spec.num_base = 1000;
  spec.num_queries = 60;
  spec.gt_k = 10;
  spec.knn_k = 10;
  spec.seed = 13;
  const Workload w = MakeWorkload(spec);

  NeuralLshConfig config;
  config.num_bins = 8;
  config.hidden_dim = 64;
  config.epochs = 40;
  config.batch_size = 128;  // n=1000: small batches so enough Adam steps run
  config.seed = 2;
  NeuralLsh nlsh(config);
  nlsh.Train(w.base, w.knn_matrix);

  // Stage-1 labels are balanced.
  std::vector<size_t> sizes(8, 0);
  for (uint32_t l : nlsh.training_labels()) ++sizes[l];
  for (size_t s : sizes) EXPECT_GT(s, 60u);

  // The classifier agrees with its training labels on most points.
  const auto predicted = nlsh.AssignBins(w.base);
  size_t agree = 0;
  for (size_t i = 0; i < w.base.rows(); ++i) {
    if (predicted[i] == nlsh.training_labels()[i]) ++agree;
  }
  EXPECT_GT(static_cast<double>(agree) / w.base.rows(), 0.7);

  // And the index beats chance at 1 probe (random routing ~ 1/8 accuracy).
  PartitionIndex index(&w.base, &nlsh);
  const auto result = index.SearchBatch(w.queries, 10, 1);
  EXPECT_GT(KnnAccuracy(result, w.ground_truth.indices, w.ground_truth.k),
            0.4);
  EXPECT_GT(nlsh.partition_seconds(), 0.0);
  EXPECT_GT(nlsh.train_seconds(), 0.0);
}

TEST(RegressionLshTest, TreeSplitsTrackGraphBisection) {
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kGaussian;
  spec.num_base = 600;
  spec.num_queries = 40;
  spec.gt_k = 10;
  spec.knn_k = 8;
  spec.seed = 19;
  const Workload w = MakeWorkload(spec);
  const Graph graph = BuildKnnGraph(w.knn_matrix, w.base.rows());

  PartitionTreeConfig config;
  config.depth = 3;
  config.seed = 23;
  PartitionTree tree(w.base, config, RegressionLshSplit(&graph),
                     &w.knn_matrix);
  EXPECT_GE(tree.num_bins(), 4u);

  const auto bins = tree.AssignBins(w.base);
  EXPECT_LT(BalanceRatio(bins, tree.num_bins()), 2.5);

  PartitionIndex index(&w.base, &tree);
  const auto result = index.SearchBatch(w.queries, 10, tree.num_bins() / 2);
  EXPECT_GT(KnnAccuracy(result, w.ground_truth.indices, w.ground_truth.k),
            0.5);
}

}  // namespace
}  // namespace usp
