// Tests for util/: Status, Rng determinism and distributions, ThreadPool and
// ParallelFor correctness, env parsing.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <numeric>
#include <set>

#include "util/env.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace usp {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::IoError("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_EQ(s.ToString(), "IO_ERROR: disk on fire");
}

TEST(StatusTest, AllConstructorsSetMatchingCode) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusOrTest, HoldsValueWhenOk) {
  StatusOr<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
}

TEST(StatusOrTest, HoldsStatusWhenFailed) {
  StatusOr<int> result(Status::NotFound("missing"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.UniformInt(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, GaussianMomentsMatchStandardNormal) {
  Rng rng(11);
  const int n = 20000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(3);
  std::vector<uint32_t> values(100);
  std::iota(values.begin(), values.end(), 0u);
  rng.Shuffle(&values);
  std::vector<uint32_t> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (uint32_t i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(5);
  const auto sample = rng.SampleWithoutReplacement(50, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<uint32_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (uint32_t v : sample) EXPECT_LT(v, 50u);
}

TEST(RngTest, SampleFullRangeIsPermutation) {
  Rng rng(6);
  const auto sample = rng.SampleWithoutReplacement(10, 10);
  std::set<uint32_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(17);
  Rng child = parent.Fork();
  // The child should not replay the parent's stream.
  Rng parent_copy(17);
  parent_copy.Next();  // advance as Fork did
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.Next() == parent_copy.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not deadlock
  SUCCEED();
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> touched(1000);
  ParallelFor(1000, 16, [&](size_t begin, size_t end, size_t) {
    for (size_t i = begin; i < end; ++i) touched[i].fetch_add(1);
  });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ParallelForTest, ZeroCountIsNoop) {
  bool called = false;
  ParallelFor(0, 1, [&](size_t, size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, SmallCountRunsInline) {
  std::vector<int> touched(3, 0);
  ParallelFor(3, 100, [&](size_t begin, size_t end, size_t) {
    for (size_t i = begin; i < end; ++i) touched[i] += 1;
  });
  EXPECT_EQ(touched, (std::vector<int>{1, 1, 1}));
}

TEST(EnvTest, IntParsesAndDefaults) {
  ::setenv("USP_TEST_INT", "123", 1);
  EXPECT_EQ(EnvInt("USP_TEST_INT", 0), 123);
  EXPECT_EQ(EnvInt("USP_TEST_MISSING_INT", 77), 77);
  ::setenv("USP_TEST_BAD_INT", "abc", 1);
  EXPECT_EQ(EnvInt("USP_TEST_BAD_INT", 5), 5);
}

TEST(EnvTest, DoubleParsesAndDefaults) {
  ::setenv("USP_TEST_DOUBLE", "2.5", 1);
  EXPECT_DOUBLE_EQ(EnvDouble("USP_TEST_DOUBLE", 0.0), 2.5);
  EXPECT_DOUBLE_EQ(EnvDouble("USP_TEST_MISSING_DOUBLE", 1.5), 1.5);
}

TEST(EnvTest, StringDefaults) {
  ::setenv("USP_TEST_STR", "hello", 1);
  EXPECT_EQ(EnvString("USP_TEST_STR", "x"), "hello");
  EXPECT_EQ(EnvString("USP_TEST_MISSING_STR", "fallback"), "fallback");
}

TEST(EnvTest, EmptyValueFallsBackToDefault) {
  // Empty strings are treated as unset across all three parsers (common with
  // `VAR= ./binary` launcher lines).
  ::setenv("USP_TEST_EMPTY", "", 1);
  EXPECT_EQ(EnvInt("USP_TEST_EMPTY", 42), 42);
  EXPECT_DOUBLE_EQ(EnvDouble("USP_TEST_EMPTY", 2.5), 2.5);
  EXPECT_EQ(EnvString("USP_TEST_EMPTY", "dflt"), "dflt");
}

TEST(EnvTest, UnparsableDoubleFallsBackToDefault) {
  ::setenv("USP_TEST_BAD_DOUBLE", "not-a-number", 1);
  EXPECT_DOUBLE_EQ(EnvDouble("USP_TEST_BAD_DOUBLE", 3.25), 3.25);
}

TEST(EnvTest, PartialParseTakesLeadingNumber) {
  // strtoll/strtod semantics: the numeric prefix wins. This is the behavior
  // benchmark launch scripts rely on for values like "8 # nprobe".
  ::setenv("USP_TEST_PARTIAL_INT", "8 # comment", 1);
  EXPECT_EQ(EnvInt("USP_TEST_PARTIAL_INT", 0), 8);
  ::setenv("USP_TEST_PARTIAL_DOUBLE", "1.5x", 1);
  EXPECT_DOUBLE_EQ(EnvDouble("USP_TEST_PARTIAL_DOUBLE", 0.0), 1.5);
}

TEST(EnvTest, NegativeValuesParse) {
  ::setenv("USP_TEST_NEG_INT", "-17", 1);
  EXPECT_EQ(EnvInt("USP_TEST_NEG_INT", 0), -17);
  ::setenv("USP_TEST_NEG_DOUBLE", "-0.125", 1);
  EXPECT_DOUBLE_EQ(EnvDouble("USP_TEST_NEG_DOUBLE", 0.0), -0.125);
}

}  // namespace
}  // namespace usp
