// Tests for the 4-bit PQ fast-scan path (quant/fastscan.h +
// dist/quant_kernels.h): packed layout round trips, scalar-vs-AVX2 bitwise
// parity across every SIMD tail, the LUT quantization error bound, and
// end-to-end agreement between the fast-scan and float ADC pipelines inside
// ScannIndex / IvfPqIndex under every metric.
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "core/partition_index.h"
#include "dataset/workload.h"
#include "dist/quant_kernels.h"
#include "index/id_selector.h"
#include "ivf/ivf.h"
#include "knn/brute_force.h"
#include "quant/fastscan.h"
#include "quant/scann_index.h"

namespace usp {
namespace {

std::vector<uint8_t> RandomCodes(size_t n, size_t m, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> code(0, 15);
  std::vector<uint8_t> codes(n * m);
  for (auto& c : codes) c = static_cast<uint8_t>(code(rng));
  return codes;
}

const Workload& FastScanWorkload() {
  static const Workload* w = [] {
    WorkloadSpec spec;
    spec.kind = WorkloadKind::kGaussian;
    spec.num_base = 1200;
    spec.num_queries = 50;
    spec.gt_k = 10;
    spec.seed = 77;
    return new Workload(MakeWorkload(spec));
  }();
  return *w;
}

TEST(FastScanTest, PackUnpackRoundTripsEveryCode) {
  // Sizes cover: exact block multiple, one short of a block, a lone tail
  // vector, and the empty group.
  for (const size_t n : {0u, 1u, 31u, 32u, 33u, 64u, 100u}) {
    for (const size_t m : {1u, 4u, 8u, 16u}) {
      const std::vector<uint8_t> codes = RandomCodes(n, m, 13 * n + m);
      const PackedCodes packed = PackCodes4(codes.data(), n, m);
      EXPECT_EQ(packed.num_vectors, n);
      EXPECT_EQ(packed.num_subspaces, m);
      EXPECT_EQ(packed.data.size(), PackedCodesBytes(n, m));
      EXPECT_EQ(packed.num_blocks(), (n + kPq4BlockSize - 1) / kPq4BlockSize);
      std::vector<uint8_t> out(m);
      for (size_t i = 0; i < n; ++i) {
        UnpackCode4(packed.data.data(), m, i, out.data());
        for (size_t s = 0; s < m; ++s) {
          ASSERT_EQ(out[s], codes[i * m + s]) << "n=" << n << " m=" << m
                                              << " vec=" << i << " sub=" << s;
        }
      }
    }
  }
}

TEST(FastScanTest, BucketOrderPackFollowsIdList) {
  const size_t m = 8;
  const std::vector<uint8_t> codes = RandomCodes(200, m, 5);
  // A permuted, partial id list: the packed order must be exactly the list
  // order, not the storage order.
  std::vector<uint32_t> ids = {190, 3, 57, 57, 0, 101, 44};
  const PackedCodes packed = PackCodes4(codes.data(), ids, m);
  ASSERT_EQ(packed.num_vectors, ids.size());
  std::vector<uint8_t> out(m);
  for (size_t i = 0; i < ids.size(); ++i) {
    UnpackCode4(packed.data.data(), m, i, out.data());
    for (size_t s = 0; s < m; ++s) {
      ASSERT_EQ(out[s], codes[ids[i] * m + s]);
    }
  }
}

// Reference sum the kernel contract specifies: uint16 wraparound of LUT
// entries over subspaces.
std::vector<uint16_t> ReferenceSums(const std::vector<uint8_t>& codes,
                                    const uint8_t* luts, size_t n, size_t m) {
  std::vector<uint16_t> sums(n, 0);
  for (size_t i = 0; i < n; ++i) {
    uint16_t acc = 0;
    for (size_t s = 0; s < m; ++s) {
      acc = static_cast<uint16_t>(acc + luts[s * 16 + codes[i * m + s]]);
    }
    sums[i] = acc;
  }
  return sums;
}

TEST(FastScanTest, ScalarAndDispatchedKernelsAreBitIdentical) {
  const QuantKernels& scalar = SelectQuantKernels(/*force_scalar=*/true);
  const QuantKernels& fast = SelectQuantKernels(/*force_scalar=*/false);
  std::mt19937_64 rng(21);
  std::uniform_int_distribution<int> byte(0, 255);
  for (const size_t m : {1u, 2u, 8u, 16u}) {
    std::vector<uint8_t> luts(m * 16);
    for (auto& b : luts) b = static_cast<uint8_t>(byte(rng));
    for (const size_t n : {1u, 31u, 32u, 33u, 96u, 257u}) {
      const std::vector<uint8_t> codes = RandomCodes(n, m, 91 * n + m);
      const PackedCodes packed = PackCodes4(codes.data(), n, m);
      std::vector<uint16_t> got_scalar(packed.num_blocks() * kPq4BlockSize);
      std::vector<uint16_t> got_fast(got_scalar.size());
      scalar.pq4_scan(packed.data.data(), luts.data(), m, packed.num_blocks(),
                      got_scalar.data());
      fast.pq4_scan(packed.data.data(), luts.data(), m, packed.num_blocks(),
                    got_fast.data());
      const std::vector<uint16_t> want = ReferenceSums(codes, luts.data(), n, m);
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(got_scalar[i], want[i]) << "scalar n=" << n << " m=" << m
                                          << " i=" << i;
        ASSERT_EQ(got_fast[i], want[i])
            << fast.name << " n=" << n << " m=" << m << " i=" << i;
      }
    }
  }
}

TEST(FastScanTest, Sq8KernelsAreBitIdenticalAcrossTails) {
  const QuantKernels& scalar = SelectQuantKernels(true);
  const QuantKernels& fast = SelectQuantKernels(false);
  std::mt19937_64 rng(33);
  std::uniform_int_distribution<int> byte(0, 255);
  for (const size_t d : {1u, 15u, 16u, 31u, 32u, 33u, 100u, 128u}) {
    std::vector<uint8_t> x(d), y(d);
    for (auto& b : x) b = static_cast<uint8_t>(byte(rng));
    for (auto& b : y) b = static_cast<uint8_t>(byte(rng));
    uint32_t l2 = 0, dot = 0;
    for (size_t i = 0; i < d; ++i) {
      const int diff = static_cast<int>(x[i]) - static_cast<int>(y[i]);
      l2 += static_cast<uint32_t>(diff * diff);
      dot += static_cast<uint32_t>(x[i]) * static_cast<uint32_t>(y[i]);
    }
    EXPECT_EQ(scalar.sq8_l2(x.data(), y.data(), d), l2) << "d=" << d;
    EXPECT_EQ(fast.sq8_l2(x.data(), y.data(), d), l2) << "d=" << d;
    EXPECT_EQ(scalar.sq8_dot(x.data(), y.data(), d), dot) << "d=" << d;
    EXPECT_EQ(fast.sq8_dot(x.data(), y.data(), d), dot) << "d=" << d;
  }
  // Row-scan forms agree with the 1v1 forms.
  const size_t d = 48, rows = 37;
  std::vector<uint8_t> q(d), base(rows * d);
  for (auto& b : q) b = static_cast<uint8_t>(byte(rng));
  for (auto& b : base) b = static_cast<uint8_t>(byte(rng));
  std::vector<uint32_t> out_a(rows), out_b(rows);
  for (const QuantKernels* k : {&scalar, &fast}) {
    k->sq8_scan_l2(q.data(), base.data(), rows, d, out_a.data());
    k->sq8_scan_dot(q.data(), base.data(), rows, d, out_b.data());
    for (size_t r = 0; r < rows; ++r) {
      EXPECT_EQ(out_a[r], k->sq8_l2(q.data(), base.data() + r * d, d));
      EXPECT_EQ(out_b[r], k->sq8_dot(q.data(), base.data() + r * d, d));
    }
  }
}

TEST(FastScanTest, LutQuantizationErrorIsBounded) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<float> val(-4.0f, 9.0f);
  for (const size_t m : {1u, 8u, 16u}) {
    for (const size_t k : {2u, 9u, 16u}) {
      std::vector<float> table(m * k);
      for (auto& t : table) t = val(rng);
      const QuantizedLut lut = QuantizeAdcTable(table.data(), m, k);
      ASSERT_EQ(lut.lut.size(), m * 16);
      // Every representable code combination must recover its float score
      // within m * delta / 2. Spot-check random combinations.
      std::uniform_int_distribution<int> code(0, static_cast<int>(k) - 1);
      for (int trial = 0; trial < 200; ++trial) {
        float want = 0.0f;
        uint16_t sum = 0;
        for (size_t s = 0; s < m; ++s) {
          const int c = code(rng);
          want += table[s * k + c];
          sum = static_cast<uint16_t>(sum + lut.lut[s * 16 + c]);
        }
        const float got = lut.Score(sum);
        const float bound =
            static_cast<float>(m) * lut.delta / 2.0f + 1e-5f;
        ASSERT_LE(std::fabs(got - want), bound)
            << "m=" << m << " k=" << k << " delta=" << lut.delta;
      }
    }
  }
}

TEST(FastScanTest, ConstantTableQuantizesToZeroDelta) {
  std::vector<float> table(8 * 16, 3.25f);
  const QuantizedLut lut = QuantizeAdcTable(table.data(), 8, 16);
  EXPECT_EQ(lut.delta, 0.0f);
  EXPECT_FLOAT_EQ(lut.bias, 8 * 3.25f);
  EXPECT_FLOAT_EQ(lut.Score(12345), 8 * 3.25f);
}

TEST(FastScanTest, ScorePackedMatchesPerCodeTableWalk) {
  const size_t n = 77, m = 8, k = 16;
  const std::vector<uint8_t> codes = RandomCodes(n, m, 3);
  const PackedCodes packed = PackCodes4(codes.data(), n, m);
  std::mt19937_64 rng(4);
  std::uniform_real_distribution<float> val(0.0f, 5.0f);
  std::vector<float> table(m * k);
  for (auto& t : table) t = val(rng);
  const QuantizedLut lut = QuantizeAdcTable(table.data(), m, k);
  std::vector<float> got(n);
  ScorePacked(packed, lut, got.data());
  for (size_t i = 0; i < n; ++i) {
    uint16_t sum = 0;
    for (size_t s = 0; s < m; ++s) {
      sum = static_cast<uint16_t>(sum + lut.lut[s * 16 + codes[i * m + s]]);
    }
    ASSERT_EQ(got[i], lut.Score(sum)) << i;
  }
}

// End-to-end: the fast-scan ADC stage feeds the same exact rerank as the
// float table walk, so at a healthy rerank budget the two pipelines land
// within a hair of each other on recall — and fast-scan must actually be
// engaged.
TEST(FastScanTest, FastScanRecallMatchesFloatAdc) {
  const Workload& w = FastScanWorkload();
  for (const Metric metric :
       {Metric::kSquaredL2, Metric::kInnerProduct, Metric::kCosine}) {
    IvfConfig config;
    config.nlist = 12;
    config.metric = metric;
    config.seed = 9;
    config.pq.num_subspaces = 8;
    config.pq.codebook_size = 16;
    config.rerank_budget = 80;

    config.adc = AdcMode::kFastScan;
    IvfPqIndex fast(&w.base, config);
    ASSERT_TRUE(fast.scann().has_fast_scan());
    config.adc = AdcMode::kFloat;
    IvfPqIndex slow(&w.base, config);
    ASSERT_FALSE(slow.scann().has_fast_scan());

    const KnnResult truth = BruteForceKnn(w.base, w.queries, 10, metric);
    const auto rf = fast.SearchBatch(w.queries, 10, 4);
    const auto rs = slow.SearchBatch(w.queries, 10, 4);
    const double recall_fast = KnnAccuracy(rf, truth.indices, truth.k);
    const double recall_slow = KnnAccuracy(rs, truth.indices, truth.k);
    EXPECT_GE(recall_fast, recall_slow - 0.02)
        << MetricName(metric) << ": fast-scan recall " << recall_fast
        << " vs float ADC " << recall_slow;
    EXPECT_GT(recall_fast, 0.5) << MetricName(metric);
  }
}

TEST(FastScanTest, FilteredSearchFallsBackToFloatPathExactly) {
  // Filters prune below block granularity, so filtered requests take the
  // float per-code path even on a fast-scan index; with every bin probed and
  // a full rerank budget the result is exact over the allowed subset.
  const Workload& w = FastScanWorkload();
  IvfConfig config;
  config.nlist = 8;
  config.seed = 9;
  config.pq.num_subspaces = 8;
  config.pq.codebook_size = 16;
  config.rerank_budget = w.base.rows();
  IvfPqIndex index(&w.base, config);
  ASSERT_TRUE(index.scann().has_fast_scan());

  IdSelectorRange filter(100, 400);
  SearchRequest request;
  request.queries = w.queries;
  request.options.k = 10;
  request.options.budget = config.nlist;
  request.options.filter = &filter;
  const auto got = index.SearchBatch(request);
  const KnnResult want =
      BruteForceKnn(w.base, w.queries, 10, Metric::kSquaredL2, &filter);
  EXPECT_EQ(got.ids, want.indices);
}

TEST(FastScanTest, WideCodebookNeverBuildsFastScan) {
  const Workload& w = FastScanWorkload();
  IvfConfig config;
  config.nlist = 8;
  config.seed = 9;
  config.pq.num_subspaces = 8;
  config.pq.codebook_size = 32;
  IvfPqIndex index(&w.base, config);
  EXPECT_FALSE(index.scann().has_fast_scan());
}

}  // namespace
}  // namespace usp
