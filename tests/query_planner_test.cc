// Pins the selectivity-aware query planner (index/query_planner.h):
//
//   - Every strategy — pushdown, allowed-scan, post-filter — on every one of
//     the seven index types is bit-identical (ids AND distances) to filtered
//     brute force at full budget, across a selectivity sweep. Strategies
//     differ only in cost, never in full-budget results.
//   - Regression: a low-selectivity filtered HNSW request under kAuto routes
//     to the allowed-set scan instead of the degraded O(n) graph traversal
//     (the BENCH_filtered cliff this planner exists to fix).
//   - IdSelector::count / CountUpTo probe semantics, including Not,
//     out-of-universe ids, bitmap word boundaries, and the bounded scan over
//     selectors that cannot count themselves.
//   - QueryPlanner's recall-target mode: the calibrated budget curve is
//     monotone in recall and Search(target=1.0) is exact.
//   - The algorithm='auto' factory (index/auto_index.h) decision table and
//     that its built indexes actually answer queries.
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/kmeans.h"
#include "core/ensemble.h"
#include "core/partition_index.h"
#include "dataset/workload.h"
#include "hnsw/hnsw.h"
#include "index/auto_index.h"
#include "index/query_planner.h"
#include "ivf/ivf.h"
#include "knn/brute_force.h"
#include "quant/scann_index.h"
#include "serve/dynamic_index.h"
#include "util/rng.h"

namespace usp {
namespace {

// Budget that makes every fixture index exhaustive (all bins / ef = n / all
// sealed-segment lists).
constexpr size_t kFullBudget = 1u << 20;

const Workload& PlannerWorkload() {
  static const Workload* w = [] {
    WorkloadSpec spec;
    spec.kind = WorkloadKind::kGaussian;  // d = 32
    spec.num_base = 500;
    spec.num_queries = 25;
    spec.gt_k = 10;
    spec.knn_k = 8;
    spec.seed = 177;
    return new Workload(MakeWorkload(spec));
  }();
  return *w;
}

// All seven index types built once over the shared workload, exhaustive at
// kFullBudget (ScaNN/IVF-PQ get rerank_budget = n so the ADC shortlist never
// truncates the allowed set) — the same construction the filtered-search
// acceptance suite pins pushdown against.
struct PlannerIndexes {
  const Workload& w = PlannerWorkload();
  KMeansPartitioner kmeans;
  PartitionIndex partition;
  IvfFlatIndex ivf_flat;
  IvfPqIndex ivf_pq;
  ScannIndex scann;
  HnswIndex hnsw;
  UspEnsemble ensemble;
  DynamicIndex dynamic;

  static KMeansConfig KmConfig() {
    KMeansConfig config;
    config.num_clusters = 16;
    config.seed = 21;
    return config;
  }
  static IvfConfig FlatConfig() {
    IvfConfig config;
    config.nlist = 16;
    config.seed = 22;
    return config;
  }
  static IvfConfig PqIvfConfig(size_t n) {
    IvfConfig config;
    config.nlist = 8;
    config.seed = 23;
    config.pq.num_subspaces = 8;
    config.pq.codebook_size = 16;
    config.pq.seed = 24;
    config.rerank_budget = n;
    return config;
  }
  static ProductQuantizer TrainPq(const Matrix& base) {
    PqConfig config;
    config.num_subspaces = 8;
    config.codebook_size = 16;
    config.seed = 25;
    ProductQuantizer pq(config);
    pq.Train(base);
    return pq;
  }
  static ScannIndexConfig ScConfig(size_t n) {
    ScannIndexConfig config;
    config.rerank_budget = n;
    return config;
  }
  static HnswConfig GraphConfig() {
    HnswConfig config;
    config.max_neighbors = 8;
    config.ef_construction = 60;
    config.seed = 26;
    return config;
  }
  static UspEnsembleConfig EnsembleConfig() {
    UspEnsembleConfig config;
    config.model.num_bins = 8;
    config.model.eta = 8.0f;
    config.model.epochs = 8;
    config.model.batch_size = 256;
    config.model.hidden_dim = 16;
    config.model.seed = 27;
    config.num_models = 2;
    return config;
  }

  PlannerIndexes()
      : kmeans(PlannerWorkload().base, KmConfig()),
        partition(&PlannerWorkload().base, &kmeans),
        ivf_flat(&PlannerWorkload().base, FlatConfig()),
        ivf_pq(&PlannerWorkload().base,
               PqIvfConfig(PlannerWorkload().base.rows())),
        scann(&PlannerWorkload().base, &kmeans, TrainPq(PlannerWorkload().base),
              ScConfig(PlannerWorkload().base.rows())),
        hnsw(GraphConfig()),
        ensemble(EnsembleConfig()),
        dynamic(PlannerWorkload().base.cols()) {
    hnsw.Build(w.base);
    ensemble.Train(w.base, w.knn_matrix);
    dynamic.AddBatch(w.base);  // global ids == base row ids
    dynamic.Seal();
  }

  std::vector<const Index*> All() const {
    return {&partition, &ivf_flat, &ivf_pq, &scann,
            &hnsw,      &ensemble, &dynamic};
  }
};

const PlannerIndexes& Indexes() {
  static const PlannerIndexes* all = new PlannerIndexes();
  return *all;
}

// Deterministic ~`selectivity` random subset of [0, n); never empty.
IdSelectorBitmap RandomSubset(size_t n, double selectivity, uint64_t seed) {
  Rng rng(seed);
  IdSelectorBitmap bitmap(n);
  for (uint32_t id = 0; id < n; ++id) {
    if (rng.Uniform() < selectivity) bitmap.Set(id);
  }
  if (bitmap.count() == 0) bitmap.Set(0);
  return bitmap;
}

// A selector the planner cannot count in O(1): exercises the bounded
// CountUpTo scan and the post-filter window fallback.
class EveryThirdSelector final : public IdSelector {
 public:
  bool is_member(uint32_t id) const override { return id % 3 == 0; }
};

void ExpectBitIdentical(const BatchSearchResult& got, const KnnResult& want,
                        size_t nq, const char* label) {
  ASSERT_EQ(got.k, want.k) << label;
  for (size_t q = 0; q < nq; ++q) {
    for (size_t j = 0; j < want.k; ++j) {
      EXPECT_EQ(got.Row(q)[j], want.Row(q)[j])
          << label << " query " << q << " slot " << j;
      EXPECT_EQ(got.DistanceRow(q)[j], want.distances[q * want.k + j])
          << label << " query " << q << " slot " << j;
    }
  }
}

// --- Selector counting (satellite: count() beyond IdSelectorBitmap) --------

TEST(SelectorCountTest, AllRangeArrayCountExactly) {
  EXPECT_EQ(IdSelectorAll().count(0), 0u);
  EXPECT_EQ(IdSelectorAll().count(7), 7u);

  const IdSelectorRange range(5, 15);
  EXPECT_EQ(range.count(20), 10u);
  EXPECT_EQ(range.count(10), 5u);   // clipped to the universe
  EXPECT_EQ(range.count(5), 0u);    // universe ends before the range
  EXPECT_EQ(range.count(3), 0u);

  const IdSelectorArray array({9, 1, 5, 100, 5});  // dedup + sort inside
  EXPECT_EQ(array.count(101), 4u);
  EXPECT_EQ(array.count(50), 3u);   // out-of-universe id 100 excluded
  EXPECT_EQ(array.count(10), 3u);
  EXPECT_EQ(array.count(1), 0u);
}

TEST(SelectorCountTest, BitmapCountsRespectUniverseAndWordBoundaries) {
  IdSelectorBitmap bitmap(100, {0, 63, 64, 99});
  EXPECT_EQ(bitmap.count(), 4u);       // historical no-arg popcount
  EXPECT_EQ(bitmap.count(64), 2u);     // exactly one full word
  EXPECT_EQ(bitmap.count(65), 3u);     // partial-word mask
  EXPECT_EQ(bitmap.count(100), 4u);
  EXPECT_EQ(bitmap.count(1000), 4u);   // clamped to the bitmap's universe
}

TEST(SelectorCountTest, NotComplementsKnownCountsAndPropagatesUnknown) {
  const IdSelectorRange range(0, 10);
  const IdSelectorNot not_range(&range);
  EXPECT_EQ(not_range.count(25), 15u);
  EXPECT_EQ(not_range.count(10), 0u);

  const EveryThirdSelector unknown;
  EXPECT_EQ(unknown.count(30), kUnknownCount);
  const IdSelectorNot not_unknown(&unknown);
  EXPECT_EQ(not_unknown.count(30), kUnknownCount);
}

TEST(SelectorCountTest, CountUpToBoundsTheScan) {
  const EveryThirdSelector unknown;
  EXPECT_EQ(CountUpTo(unknown, 30, 100), 10u);  // exhausts the universe
  EXPECT_EQ(CountUpTo(unknown, 30, 4), 4u);     // stops at the bound
  EXPECT_EQ(CountUpTo(unknown, 0, 4), 0u);

  // Counting selectors take the O(1) fast path and still honor the bound.
  const IdSelectorRange range(0, 50);
  EXPECT_EQ(CountUpTo(range, 100, 10), 10u);
  EXPECT_EQ(CountUpTo(range, 100, 1000), 50u);

  const IdSelectorNot not_unknown(&unknown);
  EXPECT_EQ(CountUpTo(not_unknown, 30, 100), 20u);  // bounded scan via Not
}

// --- Full-budget bit-identity for every strategy on every index ------------

TEST(QueryPlannerTest, EveryStrategyBitIdenticalToBruteForceAtFullBudget) {
  const PlannerIndexes& all = Indexes();
  const size_t n = all.w.base.rows();
  const size_t nq = all.w.queries.rows();
  const PlanMode modes[] = {PlanMode::kAuto, PlanMode::kForcePushdown,
                            PlanMode::kForceAllowedScan,
                            PlanMode::kForcePostFilter};

  for (const double selectivity : {0.02, 0.1, 0.5}) {
    const IdSelectorBitmap filter =
        RandomSubset(n, selectivity, /*seed=*/31 + size_t(selectivity * 100));
    const KnnResult truth =
        BruteForceKnn(all.w.base, all.w.queries, 10, Metric::kSquaredL2,
                      &filter);
    for (const Index* index : all.All()) {
      for (const PlanMode mode : modes) {
        SearchRequest request;
        request.queries = all.w.queries;
        request.options.k = 10;
        request.options.budget = kFullBudget;
        request.options.filter = &filter;
        request.options.plan = mode;
        const BatchSearchResult result = index->SearchBatch(request);
        ExpectBitIdentical(result, truth, nq,
                           IndexTypeName(index->type()));
      }
    }
  }
}

// A selector with no O(1) count still plans and stays exact (the bounded
// probe path, including the post-filter window fallback).
TEST(QueryPlannerTest, UncountableSelectorStaysExactUnderEveryMode) {
  const PlannerIndexes& all = Indexes();
  const size_t nq = all.w.queries.rows();
  const EveryThirdSelector filter;
  const KnnResult truth = BruteForceKnn(all.w.base, all.w.queries, 10,
                                        Metric::kSquaredL2, &filter);
  for (const PlanMode mode :
       {PlanMode::kAuto, PlanMode::kForceAllowedScan,
        PlanMode::kForcePostFilter}) {
    SearchRequest request;
    request.queries = all.w.queries;
    request.options.k = 10;
    request.options.budget = kFullBudget;
    request.options.filter = &filter;
    request.options.plan = mode;
    const BatchSearchResult result = all.partition.SearchBatch(request);
    ExpectBitIdentical(result, truth, nq, "partition/every-third");
  }
}

// --- The cliff regression ---------------------------------------------------

TEST(QueryPlannerTest, LowSelectivityHnswRoutesToAllowedScan) {
  const PlannerIndexes& all = Indexes();
  const size_t n = all.w.base.rows();
  const IdSelectorBitmap filter = RandomSubset(n, 0.1, /*seed=*/7);
  const size_t allowed = filter.count();
  ASSERT_LT(allowed, 64u);  // the regression needs allowed < ef

  SearchRequest request;
  request.queries = all.w.queries;
  request.options.k = 10;
  request.options.budget = 64;  // ef > allowed: the degraded-traversal regime
  request.options.filter = &filter;
  request.options.stats = true;

  // The plan itself: pushdown is modeled at the O(n) cliff, the allowed scan
  // at the allowed count, and the scan must win.
  const PlanDecision decision = PlanFilteredSearch(all.hnsw, request.options);
  EXPECT_EQ(decision.strategy, PlanStrategy::kAllowedScan);
  EXPECT_TRUE(decision.allowed_exact);
  EXPECT_EQ(decision.allowed_count, allowed);
  EXPECT_EQ(decision.cost_pushdown, static_cast<double>(n));
  EXPECT_EQ(decision.cost_allowed_scan, static_cast<double>(allowed));

  // And the executed search really does skip the graph: no nodes visited,
  // per-query scored work equals the allowed count, result exact.
  const BatchSearchResult result = all.hnsw.SearchBatch(request);
  const KnnResult truth = BruteForceKnn(all.w.base, all.w.queries, 10,
                                        Metric::kSquaredL2, &filter);
  ExpectBitIdentical(result, truth, all.w.queries.rows(), "hnsw/auto");
  ASSERT_TRUE(result.stats.has_value());
  for (size_t q = 0; q < all.w.queries.rows(); ++q) {
    EXPECT_EQ(result.stats->nodes_visited[q], 0u);
    EXPECT_EQ(result.stats->candidates_scored[q], allowed);
    EXPECT_EQ(result.candidate_counts[q], allowed);
    EXPECT_EQ(result.stats->filtered_out[q], n - allowed);
  }
}

TEST(QueryPlannerTest, ModerateSelectivityKeepsPushdownOnPartition) {
  const PlannerIndexes& all = Indexes();
  const IdSelectorBitmap filter =
      RandomSubset(all.w.base.rows(), 0.5, /*seed=*/8);
  SearchOptions options;
  options.k = 10;
  options.budget = 4;  // 4 of 16 bins: E ~ n/4, far below the allowed count
  options.filter = &filter;
  const PlanDecision decision = PlanFilteredSearch(all.partition, options);
  EXPECT_EQ(decision.strategy, PlanStrategy::kPushdown);
  EXPECT_LT(decision.cost_pushdown, decision.cost_allowed_scan);
}

TEST(QueryPlannerTest, ForcedAllowedScanFallsBackToPushdownWithoutBaseView) {
  const PlannerIndexes& all = Indexes();
  ASSERT_EQ(all.dynamic.base_view().data(), nullptr);
  const IdSelectorBitmap filter =
      RandomSubset(all.w.base.rows(), 0.1, /*seed=*/9);
  SearchOptions options;
  options.k = 10;
  options.budget = 4;
  options.filter = &filter;
  options.plan = PlanMode::kForceAllowedScan;
  const PlanDecision decision = PlanFilteredSearch(all.dynamic, options);
  EXPECT_EQ(decision.strategy, PlanStrategy::kPushdown);
  EXPECT_TRUE(std::isinf(decision.cost_allowed_scan));
}

// --- Recall-target mode -----------------------------------------------------

TEST(QueryPlannerTest, CalibrationCurveReachesExactRecall) {
  const PlannerIndexes& all = Indexes();
  QueryPlanner planner(&all.partition);
  ASSERT_TRUE(planner.Calibrate(all.w.queries, 10).ok());
  ASSERT_FALSE(planner.curve().empty());

  // Budgets ascend, candidates grow with budget, and the curve ends exact
  // (the doubling schedule stops only at recall 1.0 or an exhaustive
  // budget, which for this index is all 16 bins == brute force).
  for (size_t i = 1; i < planner.curve().size(); ++i) {
    EXPECT_GT(planner.curve()[i].budget, planner.curve()[i - 1].budget);
    EXPECT_GE(planner.curve()[i].mean_candidates,
              planner.curve()[i - 1].mean_candidates);
  }
  EXPECT_DOUBLE_EQ(planner.curve().back().recall, 1.0);

  // BudgetForRecall is the smallest calibrated budget meeting the target.
  EXPECT_EQ(planner.BudgetForRecall(0.0), planner.curve().front().budget);
  const size_t exact_budget = planner.BudgetForRecall(1.0);
  EXPECT_LE(exact_budget, planner.curve().back().budget);

  // Serving at target 1.0 returns exact results. Ground truth goes through
  // the all-pass selector so it uses the same per-row kernel as the index's
  // rerank stage (the unfiltered overload's norm trick rounds differently).
  const IdSelectorAll all_pass;
  const KnnResult truth = BruteForceKnn(all.w.base, all.w.queries, 10,
                                        Metric::kSquaredL2, &all_pass);
  SearchRequest request;
  request.queries = all.w.queries;
  request.options.k = 10;
  const BatchSearchResult result = planner.Search(request, 1.0);
  ExpectBitIdentical(result, truth, all.w.queries.rows(), "recall-target");
}

TEST(QueryPlannerTest, CalibrateRejectsBadInputs) {
  const PlannerIndexes& all = Indexes();
  QueryPlanner planner(&all.partition);
  EXPECT_FALSE(planner.Calibrate(MatrixView(), 10).ok());
  EXPECT_FALSE(planner.Calibrate(all.w.queries, 0).ok());

  // DynamicIndex has no base_view to take ground truth from.
  QueryPlanner no_base(&all.dynamic);
  const Status status = no_base.Calibrate(all.w.queries, 10);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

// --- algorithm='auto' factory ----------------------------------------------

TEST(AutoIndexTest, DecisionTableMatchesDocumentedRules) {
  // Small base: exact scan as a single-list IVF-Flat.
  AutoIndexChoice c = ChooseIndexType(1000, 128, Metric::kSquaredL2);
  EXPECT_EQ(c.type, IndexType::kIvfFlat);
  EXPECT_EQ(c.ivf.nlist, 1u);

  // Mid-size non-L2: IVF-Flat (HNSW is L2-only).
  c = ChooseIndexType(50000, 128, Metric::kCosine);
  EXPECT_EQ(c.type, IndexType::kIvfFlat);
  EXPECT_EQ(c.ivf.metric, Metric::kCosine);
  EXPECT_GT(c.ivf.nlist, 1u);

  // Large non-L2: IVF-PQ is metric-complete, so compression wins at scale.
  c = ChooseIndexType(500000, 96, Metric::kInnerProduct);
  EXPECT_EQ(c.type, IndexType::kIvfPq);
  EXPECT_EQ(c.ivf.metric, Metric::kInnerProduct);
  c = ChooseIndexType(500000, 96, Metric::kCosine);
  EXPECT_EQ(c.type, IndexType::kIvfPq);

  // Low-dim L2: list scans beat graphs.
  c = ChooseIndexType(50000, 8, Metric::kSquaredL2);
  EXPECT_EQ(c.type, IndexType::kIvfFlat);

  // Mid-size high-dim L2: the graph.
  c = ChooseIndexType(50000, 128, Metric::kSquaredL2);
  EXPECT_EQ(c.type, IndexType::kHnsw);

  // Large high-dim L2: compressed residency, subspaces tiling the dim.
  c = ChooseIndexType(500000, 96, Metric::kSquaredL2);
  EXPECT_EQ(c.type, IndexType::kIvfPq);
  EXPECT_EQ(96u % c.ivf.pq.num_subspaces, 0u);
  EXPECT_GT(c.ivf.pq.num_subspaces, 1u);
}

TEST(AutoIndexTest, BuiltIndexAnswersExactlyOnSmallBase) {
  const Workload& w = PlannerWorkload();
  const std::unique_ptr<Index> index = BuildAutoIndex(w.base);
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->dim(), w.base.cols());
  EXPECT_EQ(index->size(), w.base.rows());
  EXPECT_EQ(index->type(), IndexType::kIvfFlat);  // n = 500 -> exact scan

  // nlist = 1 means budget 1 is already exhaustive. All-pass selector keeps
  // the ground truth on the same per-row kernel as the rerank stage.
  const IdSelectorAll all_pass;
  const KnnResult truth =
      BruteForceKnn(w.base, w.queries, 10, Metric::kSquaredL2, &all_pass);
  const BatchSearchResult result = index->SearchBatch(w.queries, 10, 1);
  ExpectBitIdentical(result, truth, w.queries.rows(), "auto/ivf_flat");
}

}  // namespace
}  // namespace usp
