// Tests for the async micro-batching front-end (serve/batching_executor.h):
// the acceptance bar is bit-identity — a query coalesced into a batch gets
// exactly the rows it would get submitted alone — plus the width/deadline
// flush triggers, options-compatibility grouping, per-tenant admission
// control, and a multi-threaded submit/drain/shutdown stress that the CI
// TSan leg runs.
#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dataset/workload.h"
#include "ivf/ivf.h"
#include "knn/brute_force.h"
#include "serve/batching_executor.h"
#include "serve/sharded_index.h"
#include "tensor/matrix.h"

namespace usp {
namespace {

constexpr size_t kFullBudget = 1u << 20;

const Workload& ExecWorkload() {
  static const Workload* w = [] {
    WorkloadSpec spec;
    spec.kind = WorkloadKind::kGaussian;
    spec.num_base = 500;
    spec.num_queries = 32;
    spec.gt_k = 10;
    spec.knn_k = 8;
    spec.seed = 99;
    return new Workload(MakeWorkload(spec));
  }();
  return *w;
}

std::unique_ptr<Index> MakeIvf(const Workload& w) {
  IvfConfig config;
  config.nlist = 16;
  return std::make_unique<IvfFlatIndex>(&w.base, config);
}

TEST(BatchingExecutorTest, CoalescedResultsBitIdenticalToPerQuery) {
  const Workload& w = ExecWorkload();
  const std::unique_ptr<Index> index = MakeIvf(w);
  SearchOptions options;
  options.k = 10;
  options.budget = 4;  // a real (non-exhaustive) budget: identity must hold
                       // at any budget, not just the exact regime

  BatchingExecutorConfig config;
  config.max_batch = 8;
  config.max_delay_us = 2000;
  BatchingExecutor executor(index.get(), config);

  std::vector<std::future<SingleSearchResult>> futures;
  for (size_t q = 0; q < w.queries.rows(); ++q) {
    StatusOr<std::future<SingleSearchResult>> submitted =
        executor.Submit(w.queries.Row(q), options);
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(submitted).value());
  }
  for (size_t q = 0; q < w.queries.rows(); ++q) {
    const SingleSearchResult got = futures[q].get();
    SearchRequest single;
    single.queries = MatrixView(w.queries.Row(q), 1, w.queries.cols());
    single.options = options;
    const BatchSearchResult want = index->SearchBatch(single);
    ASSERT_EQ(got.k, want.k);
    EXPECT_EQ(got.ids, want.ids) << "q=" << q;
    EXPECT_EQ(got.distances, want.distances) << "q=" << q;
    EXPECT_EQ(got.candidates_scored, want.candidate_counts[0]) << "q=" << q;
  }
  // 32 requests through width-8 batches: coalescing must actually happen.
  EXPECT_EQ(executor.requests_executed(), w.queries.rows());
  EXPECT_LT(executor.batches_executed(), executor.requests_executed());
  EXPECT_GT(executor.max_batch_width(), 1u);
}

TEST(BatchingExecutorTest, WidthTriggersFlushBeforeDeadline) {
  const Workload& w = ExecWorkload();
  const std::unique_ptr<Index> index = MakeIvf(w);
  BatchingExecutorConfig config;
  config.max_batch = 4;
  config.max_delay_us = 1000000;  // 1s: only the width trigger can flush fast
  BatchingExecutor executor(index.get(), config);

  SearchOptions options;
  options.k = 5;
  options.budget = kFullBudget;
  std::vector<std::future<SingleSearchResult>> futures;
  for (size_t q = 0; q < 8; ++q) {
    auto submitted = executor.Submit(w.queries.Row(q), options);
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(submitted).value());
  }
  for (auto& future : futures) {
    EXPECT_EQ(future.get().ids.size(), 5u);
  }
  EXPECT_EQ(executor.requests_executed(), 8u);
  EXPECT_LE(executor.max_batch_width(), 4u);
  // Had the deadline been the only trigger this would have taken 2+ seconds;
  // the width trigger makes it immediate and at most ceil(8/4)+1 batches
  // (the +1 tolerates a short first pop racing the submit loop).
  EXPECT_LE(executor.batches_executed(), 3u);
}

TEST(BatchingExecutorTest, DeadlineFlushesShortBatch) {
  const Workload& w = ExecWorkload();
  const std::unique_ptr<Index> index = MakeIvf(w);
  BatchingExecutorConfig config;
  config.max_batch = 64;     // never reached by 3 requests
  config.max_delay_us = 500;  // the deadline must flush instead
  BatchingExecutor executor(index.get(), config);

  SearchOptions options;
  options.k = 3;
  options.budget = 4;
  std::vector<std::future<SingleSearchResult>> futures;
  for (size_t q = 0; q < 3; ++q) {
    auto submitted = executor.Submit(w.queries.Row(q), options);
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(submitted).value());
  }
  // get() would deadlock if nothing ever flushed below max_batch width.
  for (auto& future : futures) {
    EXPECT_EQ(future.get().ids.size(), 3u);
  }
  EXPECT_EQ(executor.requests_executed(), 3u);
}

TEST(BatchingExecutorTest, IncompatibleOptionsNeverShareABatch) {
  const Workload& w = ExecWorkload();
  const std::unique_ptr<Index> index = MakeIvf(w);
  BatchingExecutorConfig config;
  config.max_batch = 16;
  config.max_delay_us = 2000;
  BatchingExecutor executor(index.get(), config);

  // Interleave three option shapes; every future must come back with its own
  // k and its own bit-identical row.
  std::vector<std::future<SingleSearchResult>> futures;
  std::vector<SearchOptions> per_query;
  for (size_t q = 0; q < 12; ++q) {
    SearchOptions options;
    options.k = 3 + (q % 3) * 2;  // 3, 5, 7
    options.budget = q % 2 == 0 ? 4 : kFullBudget;
    per_query.push_back(options);
    auto submitted = executor.Submit(w.queries.Row(q), options);
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(submitted).value());
  }
  for (size_t q = 0; q < futures.size(); ++q) {
    const SingleSearchResult got = futures[q].get();
    ASSERT_EQ(got.k, per_query[q].k);
    SearchRequest single;
    single.queries = MatrixView(w.queries.Row(q), 1, w.queries.cols());
    single.options = per_query[q];
    const BatchSearchResult want = index->SearchBatch(single);
    EXPECT_EQ(got.ids, want.ids) << "q=" << q;
    EXPECT_EQ(got.distances, want.distances) << "q=" << q;
  }
}

TEST(BatchingExecutorTest, PerTenantAdmissionControl) {
  const Workload& w = ExecWorkload();
  const std::unique_ptr<Index> index = MakeIvf(w);
  BatchingExecutorConfig config;
  config.max_batch = 100;
  config.max_delay_us = 200000;  // 200ms FILLING window keeps requests queued
  config.max_in_flight_per_tenant = 2;
  BatchingExecutor executor(index.get(), config);

  SearchOptions options;
  options.k = 4;
  options.budget = 4;
  auto a = executor.Submit(w.queries.Row(0), options, /*tenant=*/7);
  auto b = executor.Submit(w.queries.Row(1), options, /*tenant=*/7);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Tenant 7 is at its cap; tenant 8 is not.
  auto rejected = executor.Submit(w.queries.Row(2), options, /*tenant=*/7);
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kFailedPrecondition);
  auto c = executor.Submit(w.queries.Row(3), options, /*tenant=*/8);
  ASSERT_TRUE(c.ok());

  // Once the in-flight requests finish, the tenant may submit again.
  a.value().get();
  b.value().get();
  c.value().get();
  executor.Drain();
  auto again = executor.Submit(w.queries.Row(4), options, /*tenant=*/7);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().get().ids.size(), 4u);
}

TEST(BatchingExecutorTest, ShutdownFulfillsPendingAndRejectsNew) {
  const Workload& w = ExecWorkload();
  const std::unique_ptr<Index> index = MakeIvf(w);
  BatchingExecutorConfig config;
  config.max_batch = 100;
  config.max_delay_us = 1000000;  // pending requests sit in FILLING
  BatchingExecutor executor(index.get(), config);

  SearchOptions options;
  options.k = 6;
  options.budget = 4;
  std::vector<std::future<SingleSearchResult>> futures;
  for (size_t q = 0; q < 5; ++q) {
    auto submitted = executor.Submit(w.queries.Row(q), options);
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(submitted).value());
  }
  executor.Shutdown();
  // Every pending future was fulfilled normally during the drain.
  for (auto& future : futures) {
    EXPECT_EQ(future.get().ids.size(), 6u);
  }
  auto rejected = executor.Submit(w.queries.Row(0), options);
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kFailedPrecondition);
  executor.Shutdown();  // idempotent
}

// The TSan target: many client threads submitting against a mutable sharded
// index while a writer keeps inserting, with Drain/Shutdown racing the tail.
TEST(BatchingExecutorTest, SubmitDrainStress) {
  const Workload& w = ExecWorkload();
  ShardedIndexConfig shard_config;
  shard_config.num_shards = 2;
  ShardedIndex index(w.base.cols(), shard_config);
  index.AddBatch(MatrixView(w.base.data(), 100, w.base.cols()));

  BatchingExecutorConfig config;
  config.max_batch = 8;
  config.max_delay_us = 100;
  config.max_queue = 64;
  BatchingExecutor executor(&index, config);

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    size_t next = 100;
    while (!stop.load(std::memory_order_relaxed) && next < w.base.rows()) {
      index.Add(w.base.Row(next++));
    }
  });

  constexpr size_t kClients = 4;
  constexpr size_t kPerClient = 50;
  std::atomic<size_t> fulfilled{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      SearchOptions options;
      options.k = 5;
      options.budget = kFullBudget;
      options.num_threads = 1;
      for (size_t i = 0; i < kPerClient; ++i) {
        auto submitted = executor.Submit(
            w.queries.Row((c * kPerClient + i) % w.queries.rows()), options,
            /*tenant=*/c);
        ASSERT_TRUE(submitted.ok());
        const SingleSearchResult result = submitted.value().get();
        ASSERT_EQ(result.ids.size(), 5u);
        // Row contract survives concurrency: real ids then padding.
        bool padding = false;
        for (uint32_t id : result.ids) {
          if (id == kInvalidId) {
            padding = true;
          } else {
            ASSERT_FALSE(padding);
            ASSERT_LT(id, w.base.rows());
          }
        }
        fulfilled.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& client : clients) client.join();
  executor.Drain();
  stop.store(true);
  writer.join();
  executor.Shutdown();
  EXPECT_EQ(fulfilled.load(), kClients * kPerClient);
  EXPECT_EQ(executor.requests_executed(), kClients * kPerClient);
}

}  // namespace
}  // namespace usp
