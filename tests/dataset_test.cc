// Tests for dataset/: generator shapes/properties, fvecs/ivecs round trips,
// and workload construction invariants.
#include <cmath>
#include <cstdio>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "dataset/io.h"
#include "dataset/synthetic.h"
#include "dataset/workload.h"

namespace usp {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(SyntheticTest, GaussianMixtureShapesAndLabels) {
  const LabeledDataset ds = MakeGaussianMixture(500, 8, 4, 10.0f, 0.5f, 1);
  EXPECT_EQ(ds.points.rows(), 500u);
  EXPECT_EQ(ds.points.cols(), 8u);
  EXPECT_EQ(ds.labels.size(), 500u);
  std::set<uint32_t> labels(ds.labels.begin(), ds.labels.end());
  EXPECT_LE(labels.size(), 4u);
  EXPECT_GE(labels.size(), 2u);
}

TEST(SyntheticTest, GaussianMixtureClustersAreCompact) {
  const LabeledDataset ds = MakeGaussianMixture(400, 4, 2, 100.0f, 0.1f, 2);
  // Points sharing a label should be far closer than points across labels.
  double intra = 0.0, inter = 0.0;
  size_t intra_n = 0, inter_n = 0;
  for (size_t i = 0; i < 100; ++i) {
    for (size_t j = i + 1; j < 100; ++j) {
      double dist = 0.0;
      for (size_t t = 0; t < 4; ++t) {
        const double diff = ds.points(i, t) - ds.points(j, t);
        dist += diff * diff;
      }
      if (ds.labels[i] == ds.labels[j]) {
        intra += dist;
        ++intra_n;
      } else {
        inter += dist;
        ++inter_n;
      }
    }
  }
  ASSERT_GT(intra_n, 0u);
  ASSERT_GT(inter_n, 0u);
  EXPECT_LT(intra / intra_n, inter / inter_n / 10.0);
}

TEST(SyntheticTest, SiftLikeIsNonNegative128d) {
  const Matrix data = MakeSiftLike(300, 3);
  EXPECT_EQ(data.cols(), 128u);
  for (size_t i = 0; i < data.size(); ++i) EXPECT_GE(data.data()[i], 0.0f);
}

TEST(SyntheticTest, MnistLikeIsSparse784d) {
  const Matrix data = MakeMnistLike(200, 4);
  EXPECT_EQ(data.cols(), 784u);
  size_t zeroish = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_GE(data.data()[i], 0.0f);
    EXPECT_LE(data.data()[i], 255.0f);
    if (data.data()[i] < 1.0f) ++zeroish;
  }
  // Most coordinates are background.
  EXPECT_GT(zeroish, data.size() / 2);
}

TEST(SyntheticTest, GeneratorsAreDeterministic) {
  const Matrix a = MakeSiftLike(50, 77);
  const Matrix b = MakeSiftLike(50, 77);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.data()[i], b.data()[i]);
  }
}

TEST(SyntheticTest, MoonsAreTwoBalancedClasses) {
  const LabeledDataset moons = MakeMoons(400, 0.05f, 5);
  EXPECT_EQ(moons.points.cols(), 2u);
  size_t ones = 0;
  for (uint32_t l : moons.labels) {
    ASSERT_LE(l, 1u);
    ones += l;
  }
  EXPECT_EQ(ones, 200u);
}

TEST(SyntheticTest, CirclesHaveDistinctRadii) {
  const LabeledDataset circles = MakeCircles(600, 0.0f, 0.4f, 6);
  double inner = 0.0, outer = 0.0;
  size_t inner_n = 0, outer_n = 0;
  for (size_t i = 0; i < 600; ++i) {
    const double r = std::sqrt(circles.points(i, 0) * circles.points(i, 0) +
                               circles.points(i, 1) * circles.points(i, 1));
    if (circles.labels[i] == 1) {
      inner += r;
      ++inner_n;
    } else {
      outer += r;
      ++outer_n;
    }
  }
  EXPECT_NEAR(inner / inner_n, 0.4, 0.05);
  EXPECT_NEAR(outer / outer_n, 1.0, 0.05);
}

TEST(SyntheticTest, ClassificationHasRequestedClasses) {
  const LabeledDataset ds = MakeClassification(300, 2, 4, 6.0f, 7);
  std::set<uint32_t> labels(ds.labels.begin(), ds.labels.end());
  EXPECT_EQ(labels.size(), 4u);
  EXPECT_EQ(ds.points.cols(), 2u);
}

TEST(IoTest, FvecsRoundTrip) {
  Rng rng(8);
  const Matrix original = Matrix::RandomGaussian(20, 7, &rng);
  const std::string path = TempPath("roundtrip.fvecs");
  ASSERT_TRUE(WriteFvecs(path, original).ok());
  auto loaded = ReadFvecs(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Matrix& m = loaded.value();
  ASSERT_EQ(m.rows(), 20u);
  ASSERT_EQ(m.cols(), 7u);
  for (size_t i = 0; i < m.size(); ++i) {
    EXPECT_EQ(m.data()[i], original.data()[i]);
  }
  std::remove(path.c_str());
}

TEST(IoTest, FvecsMaxRowsTruncates) {
  Rng rng(9);
  const Matrix original = Matrix::RandomGaussian(30, 3, &rng);
  const std::string path = TempPath("truncate.fvecs");
  ASSERT_TRUE(WriteFvecs(path, original).ok());
  auto loaded = ReadFvecs(path, 10);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().rows(), 10u);
  std::remove(path.c_str());
}

TEST(IoTest, FvecsMissingFileFails) {
  auto result = ReadFvecs(TempPath("does_not_exist.fvecs"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(IoTest, IvecsRoundTrip) {
  const std::vector<std::vector<int32_t>> rows = {{1, 2, 3}, {4, 5, 6}};
  const std::string path = TempPath("roundtrip.ivecs");
  ASSERT_TRUE(WriteIvecs(path, rows).ok());
  auto loaded = ReadIvecs(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value(), rows);
  std::remove(path.c_str());
}

TEST(IoTest, IvecsMissingFileFails) {
  auto result = ReadIvecs(TempPath("does_not_exist.ivecs"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(IoTest, EmptyFvecsFileFails) {
  const std::string path = TempPath("empty.fvecs");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  auto result = ReadFvecs(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(IoTest, ShortFvecsRecordFails) {
  // A record header promising 7 floats followed by only 3: the short read
  // must surface as kIoError, not as a silently truncated matrix.
  const std::string path = TempPath("short_record.fvecs");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const int32_t dim = 7;
  const float partial[3] = {1.0f, 2.0f, 3.0f};
  std::fwrite(&dim, sizeof(dim), 1, f);
  std::fwrite(partial, sizeof(float), 3, f);
  std::fclose(f);
  auto result = ReadFvecs(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(IoTest, NegativeFvecsDimensionFails) {
  const std::string path = TempPath("bad_dim.fvecs");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const int32_t dim = -4;
  std::fwrite(&dim, sizeof(dim), 1, f);
  std::fclose(f);
  auto result = ReadFvecs(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(IoTest, RaggedFvecsRecordsFail) {
  // Two records with different dims: fvecs files must be rectangular.
  const std::string path = TempPath("ragged.fvecs");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const float values[3] = {1.0f, 2.0f, 3.0f};
  int32_t dim = 3;
  std::fwrite(&dim, sizeof(dim), 1, f);
  std::fwrite(values, sizeof(float), 3, f);
  dim = 2;
  std::fwrite(&dim, sizeof(dim), 1, f);
  std::fwrite(values, sizeof(float), 2, f);
  std::fclose(f);
  auto result = ReadFvecs(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(IoTest, ShortIvecsRecordFails) {
  const std::string path = TempPath("short_record.ivecs");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const int32_t dim = 5;
  const int32_t partial[2] = {1, 2};
  std::fwrite(&dim, sizeof(dim), 1, f);
  std::fwrite(partial, sizeof(int32_t), 2, f);
  std::fclose(f);
  auto result = ReadIvecs(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(WorkloadTest, SplitsBaseAndQueries) {
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kGaussian;
  spec.num_base = 400;
  spec.num_queries = 50;
  spec.gt_k = 5;
  spec.knn_k = 4;
  const Workload w = MakeWorkload(spec);
  EXPECT_EQ(w.base.rows(), 400u);
  EXPECT_EQ(w.queries.rows(), 50u);
  EXPECT_EQ(w.base.cols(), w.queries.cols());
  EXPECT_EQ(w.ground_truth.k, 5u);
  EXPECT_EQ(w.ground_truth.indices.size(), 50u * 5u);
  EXPECT_EQ(w.knn_matrix.k, 4u);
  EXPECT_EQ(w.knn_matrix.indices.size(), 400u * 4u);
}

TEST(WorkloadTest, GroundTruthPointsExistInBase) {
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kGaussian;
  spec.num_base = 200;
  spec.num_queries = 20;
  const Workload w = MakeWorkload(spec);
  for (uint32_t id : w.ground_truth.indices) {
    EXPECT_LT(id, 200u);
  }
}

TEST(WorkloadTest, DeterministicInSeed) {
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kGaussian;
  spec.num_base = 100;
  spec.num_queries = 10;
  spec.seed = 123;
  const Workload a = MakeWorkload(spec);
  const Workload b = MakeWorkload(spec);
  EXPECT_EQ(a.ground_truth.indices, b.ground_truth.indices);
}

}  // namespace
}  // namespace usp
