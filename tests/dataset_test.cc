// Tests for dataset/: generator shapes/properties, fvecs/ivecs round trips,
// and workload construction invariants.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dataset/fvecs_stream.h"
#include "dataset/io.h"
#include "dataset/synthetic.h"
#include "dataset/workload.h"

namespace usp {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(SyntheticTest, GaussianMixtureShapesAndLabels) {
  const LabeledDataset ds = MakeGaussianMixture(500, 8, 4, 10.0f, 0.5f, 1);
  EXPECT_EQ(ds.points.rows(), 500u);
  EXPECT_EQ(ds.points.cols(), 8u);
  EXPECT_EQ(ds.labels.size(), 500u);
  std::set<uint32_t> labels(ds.labels.begin(), ds.labels.end());
  EXPECT_LE(labels.size(), 4u);
  EXPECT_GE(labels.size(), 2u);
}

TEST(SyntheticTest, GaussianMixtureClustersAreCompact) {
  const LabeledDataset ds = MakeGaussianMixture(400, 4, 2, 100.0f, 0.1f, 2);
  // Points sharing a label should be far closer than points across labels.
  double intra = 0.0, inter = 0.0;
  size_t intra_n = 0, inter_n = 0;
  for (size_t i = 0; i < 100; ++i) {
    for (size_t j = i + 1; j < 100; ++j) {
      double dist = 0.0;
      for (size_t t = 0; t < 4; ++t) {
        const double diff = ds.points(i, t) - ds.points(j, t);
        dist += diff * diff;
      }
      if (ds.labels[i] == ds.labels[j]) {
        intra += dist;
        ++intra_n;
      } else {
        inter += dist;
        ++inter_n;
      }
    }
  }
  ASSERT_GT(intra_n, 0u);
  ASSERT_GT(inter_n, 0u);
  EXPECT_LT(intra / intra_n, inter / inter_n / 10.0);
}

TEST(SyntheticTest, SiftLikeIsNonNegative128d) {
  const Matrix data = MakeSiftLike(300, 3);
  EXPECT_EQ(data.cols(), 128u);
  for (size_t i = 0; i < data.size(); ++i) EXPECT_GE(data.data()[i], 0.0f);
}

TEST(SyntheticTest, MnistLikeIsSparse784d) {
  const Matrix data = MakeMnistLike(200, 4);
  EXPECT_EQ(data.cols(), 784u);
  size_t zeroish = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_GE(data.data()[i], 0.0f);
    EXPECT_LE(data.data()[i], 255.0f);
    if (data.data()[i] < 1.0f) ++zeroish;
  }
  // Most coordinates are background.
  EXPECT_GT(zeroish, data.size() / 2);
}

TEST(SyntheticTest, GeneratorsAreDeterministic) {
  const Matrix a = MakeSiftLike(50, 77);
  const Matrix b = MakeSiftLike(50, 77);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.data()[i], b.data()[i]);
  }
}

TEST(SyntheticTest, MoonsAreTwoBalancedClasses) {
  const LabeledDataset moons = MakeMoons(400, 0.05f, 5);
  EXPECT_EQ(moons.points.cols(), 2u);
  size_t ones = 0;
  for (uint32_t l : moons.labels) {
    ASSERT_LE(l, 1u);
    ones += l;
  }
  EXPECT_EQ(ones, 200u);
}

TEST(SyntheticTest, CirclesHaveDistinctRadii) {
  const LabeledDataset circles = MakeCircles(600, 0.0f, 0.4f, 6);
  double inner = 0.0, outer = 0.0;
  size_t inner_n = 0, outer_n = 0;
  for (size_t i = 0; i < 600; ++i) {
    const double r = std::sqrt(circles.points(i, 0) * circles.points(i, 0) +
                               circles.points(i, 1) * circles.points(i, 1));
    if (circles.labels[i] == 1) {
      inner += r;
      ++inner_n;
    } else {
      outer += r;
      ++outer_n;
    }
  }
  EXPECT_NEAR(inner / inner_n, 0.4, 0.05);
  EXPECT_NEAR(outer / outer_n, 1.0, 0.05);
}

TEST(SyntheticTest, ClassificationHasRequestedClasses) {
  const LabeledDataset ds = MakeClassification(300, 2, 4, 6.0f, 7);
  std::set<uint32_t> labels(ds.labels.begin(), ds.labels.end());
  EXPECT_EQ(labels.size(), 4u);
  EXPECT_EQ(ds.points.cols(), 2u);
}

TEST(IoTest, FvecsRoundTrip) {
  Rng rng(8);
  const Matrix original = Matrix::RandomGaussian(20, 7, &rng);
  const std::string path = TempPath("roundtrip.fvecs");
  ASSERT_TRUE(WriteFvecs(path, original).ok());
  auto loaded = ReadFvecs(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Matrix& m = loaded.value();
  ASSERT_EQ(m.rows(), 20u);
  ASSERT_EQ(m.cols(), 7u);
  for (size_t i = 0; i < m.size(); ++i) {
    EXPECT_EQ(m.data()[i], original.data()[i]);
  }
  std::remove(path.c_str());
}

TEST(IoTest, FvecsMaxRowsTruncates) {
  Rng rng(9);
  const Matrix original = Matrix::RandomGaussian(30, 3, &rng);
  const std::string path = TempPath("truncate.fvecs");
  ASSERT_TRUE(WriteFvecs(path, original).ok());
  auto loaded = ReadFvecs(path, 10);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().rows(), 10u);
  std::remove(path.c_str());
}

TEST(IoTest, FvecsMissingFileFails) {
  auto result = ReadFvecs(TempPath("does_not_exist.fvecs"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(IoTest, IvecsRoundTrip) {
  const std::vector<std::vector<int32_t>> rows = {{1, 2, 3}, {4, 5, 6}};
  const std::string path = TempPath("roundtrip.ivecs");
  ASSERT_TRUE(WriteIvecs(path, rows).ok());
  auto loaded = ReadIvecs(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value(), rows);
  std::remove(path.c_str());
}

TEST(IoTest, IvecsMissingFileFails) {
  auto result = ReadIvecs(TempPath("does_not_exist.ivecs"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(IoTest, EmptyFvecsFileFails) {
  const std::string path = TempPath("empty.fvecs");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  auto result = ReadFvecs(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(IoTest, ShortFvecsRecordFails) {
  // A record header promising 7 floats followed by only 3: the short read
  // must surface as kIoError, not as a silently truncated matrix.
  const std::string path = TempPath("short_record.fvecs");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const int32_t dim = 7;
  const float partial[3] = {1.0f, 2.0f, 3.0f};
  std::fwrite(&dim, sizeof(dim), 1, f);
  std::fwrite(partial, sizeof(float), 3, f);
  std::fclose(f);
  auto result = ReadFvecs(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(IoTest, NegativeFvecsDimensionFails) {
  const std::string path = TempPath("bad_dim.fvecs");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const int32_t dim = -4;
  std::fwrite(&dim, sizeof(dim), 1, f);
  std::fclose(f);
  auto result = ReadFvecs(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(IoTest, RaggedFvecsRecordsFail) {
  // Two records with different dims: fvecs files must be rectangular.
  const std::string path = TempPath("ragged.fvecs");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const float values[3] = {1.0f, 2.0f, 3.0f};
  int32_t dim = 3;
  std::fwrite(&dim, sizeof(dim), 1, f);
  std::fwrite(values, sizeof(float), 3, f);
  dim = 2;
  std::fwrite(&dim, sizeof(dim), 1, f);
  std::fwrite(values, sizeof(float), 2, f);
  std::fclose(f);
  auto result = ReadFvecs(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(IoTest, ShortIvecsRecordFails) {
  const std::string path = TempPath("short_record.ivecs");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const int32_t dim = 5;
  const int32_t partial[2] = {1, 2};
  std::fwrite(&dim, sizeof(dim), 1, f);
  std::fwrite(partial, sizeof(int32_t), 2, f);
  std::fclose(f);
  auto result = ReadIvecs(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(FvecsStreamTest, ChunkedReadMatchesReadFvecs) {
  // The core FvecsReader contract: concatenating NextChunk results is
  // byte-identical to ReadFvecs, whatever the chunk size — including sizes
  // that don't divide the row count and sizes larger than the file.
  Rng rng(21);
  const size_t rows = 53;
  const Matrix original = Matrix::RandomGaussian(rows, 9, &rng);
  const std::string path = TempPath("stream_equiv.fvecs");
  ASSERT_TRUE(WriteFvecs(path, original).ok());
  auto whole = ReadFvecs(path);
  ASSERT_TRUE(whole.ok());

  for (size_t chunk_rows : {size_t{1}, size_t{7}, rows, rows + 1}) {
    auto reader = FvecsReader::Open(path);
    ASSERT_TRUE(reader.ok()) << reader.status().ToString();
    EXPECT_EQ(reader.value().dim(), 9u);
    EXPECT_EQ(reader.value().num_rows(), rows);
    std::vector<float> gathered;
    size_t chunks = 0;
    for (;;) {
      auto chunk = reader.value().NextChunk(chunk_rows);
      ASSERT_TRUE(chunk.ok()) << chunk.status().ToString();
      if (chunk.value().rows() == 0) break;
      ASSERT_LE(chunk.value().rows(), chunk_rows);
      gathered.insert(gathered.end(), chunk.value().data(),
                      chunk.value().data() + chunk.value().size());
      ++chunks;
    }
    EXPECT_EQ(chunks, (rows + chunk_rows - 1) / chunk_rows);
    ASSERT_EQ(gathered.size(), whole.value().size());
    EXPECT_EQ(std::memcmp(gathered.data(), whole.value().data(),
                          gathered.size() * sizeof(float)),
              0)
        << "chunk_rows=" << chunk_rows;
  }
  std::remove(path.c_str());
}

TEST(FvecsStreamTest, ResetRewindsToFirstRow) {
  Rng rng(22);
  const Matrix original = Matrix::RandomGaussian(10, 4, &rng);
  const std::string path = TempPath("stream_reset.fvecs");
  ASSERT_TRUE(WriteFvecs(path, original).ok());
  auto reader = FvecsReader::Open(path);
  ASSERT_TRUE(reader.ok());
  auto first = reader.value().NextChunk(6);
  ASSERT_TRUE(first.ok());
  const Matrix before = first.value().Clone();
  ASSERT_TRUE(reader.value().Reset().ok());
  auto again = reader.value().NextChunk(6);
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again.value().rows(), 6u);
  EXPECT_EQ(std::memcmp(again.value().data(), before.data(),
                        before.size() * sizeof(float)),
            0);
  std::remove(path.c_str());
}

TEST(FvecsStreamTest, OpenFailsOnEmptyAndMissingFiles) {
  auto missing = FvecsReader::Open(TempPath("stream_missing.fvecs"));
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kIoError);

  const std::string path = TempPath("stream_empty.fvecs");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  auto empty = FvecsReader::Open(path);
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(FvecsStreamTest, OpenFailsOnFileTruncatedMidRecord) {
  // A record header promising 7 floats followed by only 3 breaks the
  // whole-record grid, so the reader refuses at Open — before any chunk is
  // handed out.
  const std::string path = TempPath("stream_truncated.fvecs");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const int32_t dim = 7;
  const float partial[3] = {1.0f, 2.0f, 3.0f};
  std::fwrite(&dim, sizeof(dim), 1, f);
  std::fwrite(partial, sizeof(float), 3, f);
  std::fclose(f);
  auto reader = FvecsReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(FvecsStreamTest, RaggedRecordMidChunkFailsFromNextChunk) {
  // Record 2 claims dim=2 but is padded so the file still lies on the
  // 16-byte dim=3 record grid: Open cannot tell, so the per-record dimension
  // check in NextChunk has to catch it.
  const std::string path = TempPath("stream_ragged.fvecs");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const float values[3] = {1.0f, 2.0f, 3.0f};
  int32_t dim = 3;
  std::fwrite(&dim, sizeof(dim), 1, f);
  std::fwrite(values, sizeof(float), 3, f);
  dim = 2;
  std::fwrite(&dim, sizeof(dim), 1, f);
  std::fwrite(values, sizeof(float), 2, f);
  const float pad = 0.0f;
  std::fwrite(&pad, sizeof(float), 1, f);
  std::fclose(f);

  auto reader = FvecsReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  ASSERT_EQ(reader.value().num_rows(), 2u);
  auto chunk = reader.value().NextChunk(2);
  ASSERT_FALSE(chunk.ok());
  EXPECT_EQ(chunk.status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(FvecsStreamTest, MatrixStreamYieldsSameChunksAsReader) {
  Rng rng(23);
  const Matrix original = Matrix::RandomGaussian(31, 5, &rng);
  const std::string path = TempPath("stream_matrix.fvecs");
  ASSERT_TRUE(WriteFvecs(path, original).ok());
  auto reader = FvecsReader::Open(path);
  ASSERT_TRUE(reader.ok());
  MatrixStream mem(original);
  for (;;) {
    auto disk = reader.value().NextChunk(8);
    auto ram = mem.NextChunk(8);
    ASSERT_TRUE(disk.ok());
    ASSERT_TRUE(ram.ok());
    ASSERT_EQ(disk.value().rows(), ram.value().rows());
    if (disk.value().rows() == 0) break;
    EXPECT_EQ(std::memcmp(disk.value().data(), ram.value().data(),
                          disk.value().size() * sizeof(float)),
              0);
  }
  std::remove(path.c_str());
}

TEST(FvecsStreamTest, ReservoirSampleIsChunkAndBackendIndependent) {
  // A row's fate depends only on its position and the seed, so the same rows
  // sampled through a disk reader and an in-memory stream — internally read
  // with different chunkings — must produce bit-identical reservoirs.
  Rng rng(24);
  const Matrix original = Matrix::RandomGaussian(500, 6, &rng);
  const std::string path = TempPath("stream_sample.fvecs");
  ASSERT_TRUE(WriteFvecs(path, original).ok());
  auto reader = FvecsReader::Open(path);
  ASSERT_TRUE(reader.ok());
  MatrixStream mem(original);

  auto from_disk = ReservoirSample(&reader.value(), 64, 99);
  auto from_ram = ReservoirSample(&mem, 64, 99);
  ASSERT_TRUE(from_disk.ok());
  ASSERT_TRUE(from_ram.ok());
  ASSERT_EQ(from_disk.value().rows(), 64u);
  EXPECT_EQ(std::memcmp(from_disk.value().data(), from_ram.value().data(),
                        from_disk.value().size() * sizeof(float)),
            0);

  // Oversampling returns every row in order.
  auto all = ReservoirSample(&mem, 1000, 7);
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all.value().rows(), 500u);
  EXPECT_EQ(std::memcmp(all.value().data(), original.data(),
                        original.size() * sizeof(float)),
            0);
  std::remove(path.c_str());
}

TEST(FvecsStreamTest, StridedSampleTakesEveryStrideThRow) {
  Rng rng(25);
  const Matrix original = Matrix::RandomGaussian(20, 3, &rng);
  MatrixStream mem(original);
  auto sampled = StridedSample(&mem, 7);
  ASSERT_TRUE(sampled.ok());
  ASSERT_EQ(sampled.value().rows(), 3u);  // rows 0, 7, 14
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(std::memcmp(sampled.value().Row(i), original.Row(i * 7),
                          3 * sizeof(float)),
              0);
  }
  auto capped = StridedSample(&mem, 7, 2);
  ASSERT_TRUE(capped.ok());
  EXPECT_EQ(capped.value().rows(), 2u);
}

TEST(FvecsStreamTest, ChunkedWriterMatchesWriteFvecs) {
  Rng rng(26);
  const Matrix original = Matrix::RandomGaussian(40, 5, &rng);
  const std::string whole_path = TempPath("writer_whole.fvecs");
  const std::string chunked_path = TempPath("writer_chunked.fvecs");
  ASSERT_TRUE(WriteFvecs(whole_path, original).ok());
  {
    FvecsWriter writer(chunked_path);
    ASSERT_TRUE(writer.ok());
    for (size_t start = 0; start < 40; start += 9) {
      const size_t count = std::min<size_t>(9, 40 - start);
      ASSERT_TRUE(
          writer.Append(MatrixView(original.Row(start), count, 5)).ok());
    }
    ASSERT_TRUE(writer.Close().ok());
  }
  auto whole = ReadFvecs(whole_path);
  auto chunked = ReadFvecs(chunked_path);
  ASSERT_TRUE(whole.ok());
  ASSERT_TRUE(chunked.ok());
  ASSERT_EQ(chunked.value().rows(), 40u);
  EXPECT_EQ(std::memcmp(whole.value().data(), chunked.value().data(),
                        whole.value().size() * sizeof(float)),
            0);
  std::remove(whole_path.c_str());
  std::remove(chunked_path.c_str());
}

TEST(WorkloadTest, SplitsBaseAndQueries) {
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kGaussian;
  spec.num_base = 400;
  spec.num_queries = 50;
  spec.gt_k = 5;
  spec.knn_k = 4;
  const Workload w = MakeWorkload(spec);
  EXPECT_EQ(w.base.rows(), 400u);
  EXPECT_EQ(w.queries.rows(), 50u);
  EXPECT_EQ(w.base.cols(), w.queries.cols());
  EXPECT_EQ(w.ground_truth.k, 5u);
  EXPECT_EQ(w.ground_truth.indices.size(), 50u * 5u);
  EXPECT_EQ(w.knn_matrix.k, 4u);
  EXPECT_EQ(w.knn_matrix.indices.size(), 400u * 4u);
}

TEST(WorkloadTest, GroundTruthPointsExistInBase) {
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kGaussian;
  spec.num_base = 200;
  spec.num_queries = 20;
  const Workload w = MakeWorkload(spec);
  for (uint32_t id : w.ground_truth.indices) {
    EXPECT_LT(id, 200u);
  }
}

TEST(WorkloadTest, DeterministicInSeed) {
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kGaussian;
  spec.num_base = 100;
  spec.num_queries = 10;
  spec.seed = 123;
  const Workload a = MakeWorkload(spec);
  const Workload b = MakeWorkload(spec);
  EXPECT_EQ(a.ground_truth.indices, b.ground_truth.indices);
}

}  // namespace
}  // namespace usp
