// Cross-module integration tests: the paper's headline comparisons at small
// scale (USP vs K-means candidate efficiency), the full fvecs -> index ->
// search round trip, the USP + ScaNN composite pipeline, and end-to-end
// determinism.
#include <algorithm>
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "baselines/kmeans.h"
#include "core/bin_scorer.h"
#include "core/ensemble.h"
#include "core/partition_index.h"
#include "core/partitioner.h"
#include "dataset/io.h"
#include "dataset/workload.h"
#include "eval/sweep.h"
#include "quant/pq.h"
#include "quant/scann_index.h"
#include "usp.h"  // umbrella header must stay self-contained

namespace usp {
namespace {

const Workload& SiftSmall() {
  static const Workload* w = [] {
    WorkloadSpec spec;
    spec.kind = WorkloadKind::kSiftLike;
    spec.num_base = 3000;
    spec.num_queries = 150;
    spec.gt_k = 10;
    spec.knn_k = 10;
    spec.seed = 71;
    return new Workload(MakeWorkload(spec));
  }();
  return *w;
}

UspTrainConfig TrainedConfig() {
  // n = 3000 here, so smaller batches + more epochs keep the Adam step count
  // (~360) comparable to the paper's setting on larger data.
  UspTrainConfig config;
  config.num_bins = 16;
  config.eta = 10.0f;
  config.epochs = 30;
  config.batch_size = 256;
  config.seed = 73;
  return config;
}

TEST(IntegrationTest, UspNeedsFewerCandidatesThanKMeansAt85) {
  // The paper's central claim (Table 4 / Fig. 5a): at matched accuracy, USP's
  // candidate sets are smaller than K-means'.
  const Workload& w = SiftSmall();
  UspPartitioner usp(TrainedConfig());
  usp.Train(w.base, w.knn_matrix);
  PartitionIndex usp_index(&w.base, &usp);

  KMeansConfig km_config;
  km_config.num_clusters = 16;
  km_config.seed = 5;
  KMeansPartitioner kmeans(w.base, km_config);
  PartitionIndex km_index(&w.base, &kmeans);

  const auto usp_curve = ProbeSweep(
      [&](size_t p) { return usp_index.SearchBatch(w.queries, 10, p); },
      DefaultProbeCounts(16), w.ground_truth.indices, w.ground_truth.k);
  const auto km_curve = ProbeSweep(
      [&](size_t p) { return km_index.SearchBatch(w.queries, 10, p); },
      DefaultProbeCounts(16), w.ground_truth.indices, w.ground_truth.k);

  const double usp_c = CandidatesAtAccuracy(usp_curve, 0.85);
  const double km_c = CandidatesAtAccuracy(km_curve, 0.85);
  ASSERT_GT(usp_c, 0.0);
  ASSERT_GT(km_c, 0.0);
  EXPECT_LT(usp_c, km_c);
}

TEST(IntegrationTest, UspRecallBeatsKMeansAtEqualCandidateBudget) {
  // Table 4 read along the other axis: at a fixed candidate budget, USP's
  // recall must be at least K-means', and must clear absolute floors. Uses
  // the index-based ProbeSweep (one scoring pass, batched parallel search).
  const Workload& w = SiftSmall();
  UspPartitioner usp(TrainedConfig());
  usp.Train(w.base, w.knn_matrix);
  PartitionIndex usp_index(&w.base, &usp);

  KMeansConfig km_config;
  km_config.num_clusters = 16;
  km_config.seed = 5;
  KMeansPartitioner kmeans(w.base, km_config);
  PartitionIndex km_index(&w.base, &kmeans);

  const auto probes = DefaultProbeCounts(16);
  const auto usp_curve = ProbeSweep(usp_index, w.queries, 10, probes,
                                    w.ground_truth.indices, w.ground_truth.k);
  const auto km_curve = ProbeSweep(km_index, w.queries, 10, probes,
                                   w.ground_truth.indices, w.ground_truth.k);

  // Equal-budget comparison at budgets spanning the K-means curve: probe
  // counts 2, 4, and 8 out of 16 bins.
  for (size_t probe_count : {2u, 4u, 8u}) {
    const auto km_point =
        std::find_if(km_curve.begin(), km_curve.end(),
                     [&](const SweepPoint& p) { return p.probes == probe_count; });
    ASSERT_NE(km_point, km_curve.end());
    const double budget = km_point->mean_candidates;
    const double usp_recall = AccuracyAtCandidates(usp_curve, budget);
    const double km_recall = AccuracyAtCandidates(km_curve, budget);
    EXPECT_GE(usp_recall, km_recall)
        << "USP below K-means at budget " << budget;
  }

  // Absolute recall floors: a quarter of the bins must already reach high
  // recall, and the full sweep must essentially saturate.
  EXPECT_GE(AccuracyAtCandidates(usp_curve, 0.25 * w.base.rows()), 0.85);
  EXPECT_GE(usp_curve.back().accuracy, 0.95);
}

TEST(IntegrationTest, UspPartitionIsMoreBalancedThanKMeans) {
  const Workload& w = SiftSmall();
  UspPartitioner usp(TrainedConfig());
  usp.Train(w.base, w.knn_matrix);
  KMeansConfig km_config;
  km_config.num_clusters = 16;
  km_config.seed = 5;
  KMeansPartitioner kmeans(w.base, km_config);
  const double usp_balance = BalanceRatio(usp.AssignBins(w.base), 16);
  const double km_balance = BalanceRatio(kmeans.AssignBins(w.base), 16);
  EXPECT_LT(usp_balance, km_balance);
  EXPECT_LT(usp_balance, 1.8);
}

TEST(IntegrationTest, FvecsRoundTripPreservesSearchResults) {
  const Workload& w = SiftSmall();
  const std::string base_path = testing::TempDir() + "/integ_base.fvecs";
  ASSERT_TRUE(WriteFvecs(base_path, w.base).ok());
  auto reloaded = ReadFvecs(base_path);
  ASSERT_TRUE(reloaded.ok());

  UspPartitioner usp(TrainedConfig());
  usp.Train(w.base, w.knn_matrix);
  PartitionIndex original_index(&w.base, &usp);
  PartitionIndex reloaded_index(&reloaded.value(), &usp);

  const auto a = original_index.SearchBatch(w.queries, 10, 2);
  const auto b = reloaded_index.SearchBatch(w.queries, 10, 2);
  EXPECT_EQ(a.ids, b.ids);
  std::remove(base_path.c_str());
}

TEST(IntegrationTest, UspScannPipelineReachesHighRecall) {
  const Workload& w = SiftSmall();
  UspPartitioner usp(TrainedConfig());
  usp.Train(w.base, w.knn_matrix);

  PqConfig pq_config;
  pq_config.num_subspaces = 8;
  pq_config.codebook_size = 16;
  pq_config.anisotropic_eta = 4.0f;
  pq_config.seed = 9;
  ProductQuantizer pq(pq_config);
  pq.Train(w.base);

  ScannIndexConfig index_config;
  index_config.rerank_budget = 100;
  ScannIndex index(&w.base, &usp, std::move(pq), index_config);
  const auto result = index.SearchBatch(w.queries, 10, 6);
  EXPECT_GT(KnnAccuracy(result, w.ground_truth.indices, w.ground_truth.k),
            0.8);
  // Partitioned: candidate sets well under the full dataset.
  EXPECT_LT(result.MeanCandidates(), 0.7 * w.base.rows());
}

TEST(IntegrationTest, EndToEndDeterministicAcrossRuns) {
  const Workload& w = SiftSmall();
  auto run = [&] {
    UspPartitioner usp(TrainedConfig());
    usp.Train(w.base, w.knn_matrix);
    PartitionIndex index(&w.base, &usp);
    const auto result = index.SearchBatch(w.queries, 10, 2);
    return result.ids;
  };
  EXPECT_EQ(run(), run());
}

TEST(IntegrationTest, EnsembleImprovesRecallAtFixedProbeCount) {
  // Fig. 5's "ours e=3 vs e=1" ordering at a small scale: allow slack, but
  // the ensemble must never be much worse.
  const Workload& w = SiftSmall();
  UspEnsembleConfig config;
  config.model = TrainedConfig();
  config.num_models = 3;
  UspEnsemble ensemble(config);
  ensemble.Train(w.base, w.knn_matrix);

  PartitionIndex single(&w.base, &ensemble.model(0));
  const auto single_result = single.SearchBatch(w.queries, 10, 1);
  const auto ensemble_result = ensemble.SearchBatch(w.queries, 10, 1);
  const double single_accuracy =
      KnnAccuracy(single_result, w.ground_truth.indices, w.ground_truth.k);
  const double ensemble_accuracy =
      KnnAccuracy(ensemble_result, w.ground_truth.indices, w.ground_truth.k);
  EXPECT_GE(ensemble_accuracy, single_accuracy - 0.01);
}

TEST(IntegrationTest, BalanceHelpersEdgeCases) {
  EXPECT_DOUBLE_EQ(BalanceRatio({}, 4), 1.0);
  const std::vector<uint32_t> all_one_bin = {2, 2, 2, 2};
  EXPECT_DOUBLE_EQ(BalanceRatio(all_one_bin, 4), 4.0);
  const auto histogram = BinHistogram(all_one_bin, 4);
  EXPECT_EQ(histogram[2], 4u);
  EXPECT_EQ(histogram[0], 0u);
}

}  // namespace
}  // namespace usp
