// Tests for the USP training loop, partition index (Alg. 2), ensembling
// (Alg. 3-4) and hierarchical partitioning on small synthetic workloads:
// training must converge to balanced partitions, indexes must beat random
// probing, ensembles must not regress single models, trees must score like
// flattened products.
#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "core/ensemble.h"
#include "core/hierarchical.h"
#include "core/partition_index.h"
#include "core/partitioner.h"
#include "dataset/workload.h"

namespace usp {
namespace {

// Shared small workload (cached across tests; construction is the slow part).
const Workload& SmallWorkload() {
  static const Workload* w = [] {
    WorkloadSpec spec;
    spec.kind = WorkloadKind::kGaussian;
    spec.num_base = 1200;
    spec.num_queries = 80;
    spec.gt_k = 10;
    spec.knn_k = 10;
    spec.seed = 5;
    return new Workload(MakeWorkload(spec));
  }();
  return *w;
}

UspTrainConfig FastConfig(size_t bins) {
  UspTrainConfig config;
  config.num_bins = bins;
  config.eta = 8.0f;
  config.epochs = 16;
  config.batch_size = 256;
  config.hidden_dim = 32;
  config.seed = 3;
  return config;
}

TEST(UspPartitionerTest, TrainingReducesLoss) {
  const Workload& w = SmallWorkload();
  UspPartitioner partitioner(FastConfig(8));
  partitioner.Train(w.base, w.knn_matrix);
  const auto& stats = partitioner.epoch_stats();
  ASSERT_GE(stats.size(), 4u);
  EXPECT_LT(stats.back().loss.total, stats.front().loss.total);
}

TEST(UspPartitionerTest, ProducesRoughlyBalancedPartition) {
  const Workload& w = SmallWorkload();
  // The paper tunes eta to "the lowest value resulting in a balanced
  // partition" (Sec. 5.1.4); this config mirrors that: higher eta + enough
  // epochs for dead bins to recover.
  UspTrainConfig config = FastConfig(8);
  config.eta = 12.0f;
  config.epochs = 24;
  UspPartitioner partitioner(config);
  partitioner.Train(w.base, w.knn_matrix);
  const auto bins = partitioner.AssignBins(w.base);
  EXPECT_LT(BalanceRatio(bins, 8), 2.2);
  // Every bin is used.
  const auto histogram = BinHistogram(bins, 8);
  for (size_t count : histogram) EXPECT_GT(count, 0u);
}

TEST(UspPartitionerTest, ScoresAreProbabilities) {
  const Workload& w = SmallWorkload();
  UspPartitioner partitioner(FastConfig(4));
  partitioner.Train(w.base, w.knn_matrix);
  const Matrix scores = partitioner.ScoreBins(w.queries);
  ASSERT_EQ(scores.cols(), 4u);
  for (size_t i = 0; i < scores.rows(); ++i) {
    float sum = 0.0f;
    for (size_t j = 0; j < 4; ++j) {
      EXPECT_GE(scores(i, j), 0.0f);
      sum += scores(i, j);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-4f);
  }
}

TEST(UspPartitionerTest, NeighborsMostlyShareBins) {
  const Workload& w = SmallWorkload();
  UspPartitioner partitioner(FastConfig(8));
  partitioner.Train(w.base, w.knn_matrix);
  const auto bins = partitioner.AssignBins(w.base);
  size_t colocated = 0, total = 0;
  for (size_t i = 0; i < w.base.rows(); ++i) {
    const uint32_t* nbrs = w.knn_matrix.Row(i);
    for (size_t t = 0; t < w.knn_matrix.k; ++t) {
      if (bins[nbrs[t]] == bins[i]) ++colocated;
      ++total;
    }
  }
  // The quality loss optimizes exactly this; random would be 1/8.
  EXPECT_GT(static_cast<double>(colocated) / total, 0.6);
}

TEST(UspPartitionerTest, LogisticModelTrains) {
  const Workload& w = SmallWorkload();
  UspTrainConfig config = FastConfig(2);
  config.model = UspModelKind::kLogisticRegression;
  UspPartitioner partitioner(config);
  partitioner.Train(w.base, w.knn_matrix);
  EXPECT_EQ(partitioner.ParameterCount(), w.base.cols() * 2 + 2);
  const auto bins = partitioner.AssignBins(w.base);
  EXPECT_LT(BalanceRatio(bins, 2), 1.7);
}

TEST(UspPartitionerTest, SoftTargetsAlsoConverge) {
  const Workload& w = SmallWorkload();
  UspTrainConfig config = FastConfig(4);
  config.soft_targets = true;
  UspPartitioner partitioner(config);
  partitioner.Train(w.base, w.knn_matrix);
  const auto& stats = partitioner.epoch_stats();
  EXPECT_LT(stats.back().loss.total, stats.front().loss.total);
}

TEST(UspPartitionerTest, DeterministicForSameSeed) {
  const Workload& w = SmallWorkload();
  UspPartitioner a(FastConfig(4)), b(FastConfig(4));
  a.Train(w.base, w.knn_matrix);
  b.Train(w.base, w.knn_matrix);
  EXPECT_EQ(a.AssignBins(w.base), b.AssignBins(w.base));
}

TEST(PartitionIndexTest, BucketsPartitionTheDataset) {
  const Workload& w = SmallWorkload();
  UspPartitioner partitioner(FastConfig(8));
  partitioner.Train(w.base, w.knn_matrix);
  PartitionIndex index(&w.base, &partitioner);
  size_t total = 0;
  std::vector<uint8_t> seen(w.base.rows(), 0);
  for (const auto& bucket : index.buckets()) {
    for (uint32_t id : bucket) {
      EXPECT_LT(id, w.base.rows());
      EXPECT_EQ(seen[id], 0) << "point in two buckets";
      seen[id] = 1;
      ++total;
    }
  }
  EXPECT_EQ(total, w.base.rows());
}

TEST(PartitionIndexTest, MoreProbesMonotonicallyImproveAccuracy) {
  const Workload& w = SmallWorkload();
  UspPartitioner partitioner(FastConfig(8));
  partitioner.Train(w.base, w.knn_matrix);
  PartitionIndex index(&w.base, &partitioner);
  double prev_accuracy = -1.0, prev_candidates = -1.0;
  for (size_t probes : {1, 2, 4, 8}) {
    const auto result = index.SearchBatch(w.queries, 10, probes);
    const double accuracy =
        KnnAccuracy(result, w.ground_truth.indices, w.ground_truth.k);
    EXPECT_GE(accuracy, prev_accuracy);
    EXPECT_GT(result.MeanCandidates(), prev_candidates);
    prev_accuracy = accuracy;
    prev_candidates = result.MeanCandidates();
  }
  EXPECT_GT(prev_accuracy, 0.95);  // all bins probed ~ exhaustive
}

TEST(PartitionIndexTest, AllBinsProbedIsExact) {
  const Workload& w = SmallWorkload();
  UspPartitioner partitioner(FastConfig(4));
  partitioner.Train(w.base, w.knn_matrix);
  PartitionIndex index(&w.base, &partitioner);
  const auto result = index.SearchBatch(w.queries, 10, 4);
  EXPECT_DOUBLE_EQ(
      KnnAccuracy(result, w.ground_truth.indices, w.ground_truth.k), 1.0);
  // Candidate set = whole dataset.
  EXPECT_DOUBLE_EQ(result.MeanCandidates(),
                   static_cast<double>(w.base.rows()));
}

TEST(PartitionIndexTest, CandidateCountsMatchBucketSizes) {
  const Workload& w = SmallWorkload();
  UspPartitioner partitioner(FastConfig(8));
  partitioner.Train(w.base, w.knn_matrix);
  PartitionIndex index(&w.base, &partitioner);
  const Matrix scores = index.ScoreQueries(w.queries);
  std::vector<uint32_t> candidates;
  for (size_t q = 0; q < 5; ++q) {
    index.CollectCandidates(scores.Row(q), 2, &candidates);
    // Recompute expected: sizes of the two best-scored buckets.
    std::vector<uint32_t> order(8);
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      return scores(q, a) > scores(q, b);
    });
    const size_t expected = index.buckets()[order[0]].size() +
                            index.buckets()[order[1]].size();
    EXPECT_EQ(candidates.size(), expected);
  }
}

TEST(KnnAccuracyTest, PerfectAndZeroCases) {
  BatchSearchResult result;
  result.k = 2;
  result.ids = {0, 1, 2, 3};
  result.candidate_counts = {2, 2};
  const std::vector<uint32_t> truth_match = {0, 1, 9, 9, 2, 3, 9, 9};
  EXPECT_DOUBLE_EQ(KnnAccuracy(result, truth_match, 4), 1.0);
  const std::vector<uint32_t> truth_miss = {7, 8, 9, 9, 7, 8, 9, 9};
  EXPECT_DOUBLE_EQ(KnnAccuracy(result, truth_miss, 4), 0.0);
}

TEST(EnsembleTest, TrainsRequestedModels) {
  const Workload& w = SmallWorkload();
  UspEnsembleConfig config;
  config.model = FastConfig(8);
  config.num_models = 3;
  UspEnsemble ensemble(config);
  ensemble.Train(w.base, w.knn_matrix);
  EXPECT_EQ(ensemble.num_models(), 3u);
  EXPECT_EQ(ensemble.ParameterCount(), 3 * ensemble.model(0).ParameterCount());
}

TEST(EnsembleTest, WeightsChangeAcrossStages) {
  const Workload& w = SmallWorkload();
  UspEnsembleConfig config;
  config.model = FastConfig(8);
  config.num_models = 2;
  UspEnsemble ensemble(config);
  ensemble.Train(w.base, w.knn_matrix);
  const auto& weights = ensemble.final_weights();
  ASSERT_EQ(weights.size(), w.base.rows());
  // Mean-normalized to ~1, but not all equal (some points are harder).
  double mean = std::accumulate(weights.begin(), weights.end(), 0.0) /
                weights.size();
  EXPECT_NEAR(mean, 1.0, 0.05);
  const auto [mn, mx] = std::minmax_element(weights.begin(), weights.end());
  EXPECT_GT(*mx - *mn, 1e-3f);
}

TEST(EnsembleTest, AtLeastAsAccurateAsFirstModel) {
  const Workload& w = SmallWorkload();
  UspEnsembleConfig config;
  config.model = FastConfig(8);
  config.num_models = 3;
  UspEnsemble ensemble(config);
  ensemble.Train(w.base, w.knn_matrix);

  const auto ensemble_result = ensemble.SearchBatch(w.queries, 10, 1);
  const double ensemble_accuracy =
      KnnAccuracy(ensemble_result, w.ground_truth.indices, w.ground_truth.k);

  PartitionIndex first(&w.base, &ensemble.model(0));
  const auto single_result = first.SearchBatch(w.queries, 10, 1);
  const double single_accuracy =
      KnnAccuracy(single_result, w.ground_truth.indices, w.ground_truth.k);

  EXPECT_GE(ensemble_accuracy, single_accuracy - 0.02);
}

TEST(EnsembleTest, UnionCombineGathersMoreCandidates) {
  const Workload& w = SmallWorkload();
  UspEnsembleConfig config;
  config.model = FastConfig(8);
  config.num_models = 2;
  config.combine = EnsembleCombine::kUnion;
  UspEnsemble union_ensemble(config);
  union_ensemble.Train(w.base, w.knn_matrix);
  config.combine = EnsembleCombine::kBestConfidence;
  UspEnsemble best_ensemble(config);
  best_ensemble.Train(w.base, w.knn_matrix);

  const auto union_result = union_ensemble.SearchBatch(w.queries, 10, 1);
  const auto best_result = best_ensemble.SearchBatch(w.queries, 10, 1);
  EXPECT_GE(union_result.MeanCandidates(), best_result.MeanCandidates());
}

TEST(HierarchicalTest, TotalBinsIsFanoutProduct) {
  HierarchicalConfig config;
  config.fanouts = {4, 4};
  config.model = FastConfig(4);
  HierarchicalUspPartitioner tree(config);
  EXPECT_EQ(tree.num_bins(), 16u);
}

TEST(HierarchicalTest, ScoresAreDistributions) {
  const Workload& w = SmallWorkload();
  HierarchicalConfig config;
  config.fanouts = {4, 4};
  config.model = FastConfig(4);
  config.model.epochs = 6;
  HierarchicalUspPartitioner tree(config);
  tree.Train(w.base, w.knn_matrix);
  const Matrix scores = tree.ScoreBins(w.queries);
  ASSERT_EQ(scores.cols(), 16u);
  for (size_t i = 0; i < scores.rows(); ++i) {
    double sum = 0.0;
    for (size_t j = 0; j < 16; ++j) {
      EXPECT_GE(scores(i, j), 0.0f);
      sum += scores(i, j);
    }
    // Product of per-level distributions sums to 1 over leaves.
    EXPECT_NEAR(sum, 1.0, 1e-3);
  }
}

TEST(HierarchicalTest, IndexableAndReasonablyAccurate) {
  const Workload& w = SmallWorkload();
  HierarchicalConfig config;
  config.fanouts = {4, 4};
  config.model = FastConfig(4);
  config.model.epochs = 8;
  HierarchicalUspPartitioner tree(config);
  tree.Train(w.base, w.knn_matrix);
  PartitionIndex index(&w.base, &tree);
  const auto result = index.SearchBatch(w.queries, 10, 4);
  const double accuracy =
      KnnAccuracy(result, w.ground_truth.indices, w.ground_truth.k);
  EXPECT_GT(accuracy, 0.5);
  // Probing 4/16 bins must not scan the whole dataset.
  EXPECT_LT(result.MeanCandidates(), 0.8 * w.base.rows());
}

TEST(HierarchicalTest, CountsModelsInTree) {
  const Workload& w = SmallWorkload();
  HierarchicalConfig config;
  config.fanouts = {2, 2};
  config.model = FastConfig(2);
  config.model.epochs = 4;
  HierarchicalUspPartitioner tree(config);
  tree.Train(w.base, w.knn_matrix);
  // Root + up to 2 children.
  EXPECT_GE(tree.NumModels(), 1u);
  EXPECT_LE(tree.NumModels(), 3u);
  EXPECT_GT(tree.ParameterCount(), 0u);
}

}  // namespace
}  // namespace usp
