// Tests for knn/: TopK heap semantics, brute-force search against an O(n^2)
// reference, k'-NN matrix construction invariants, candidate re-ranking, and
// subset filtering.
#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "knn/brute_force.h"
#include "knn/top_k.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace usp {
namespace {

TEST(TopKTest, KeepsSmallestDistances) {
  TopK heap(3);
  heap.Push(5.0f, 0);
  heap.Push(1.0f, 1);
  heap.Push(3.0f, 2);
  heap.Push(2.0f, 3);
  heap.Push(9.0f, 4);
  const auto sorted = heap.TakeSorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].id, 1u);
  EXPECT_EQ(sorted[1].id, 3u);
  EXPECT_EQ(sorted[2].id, 2u);
}

TEST(TopKTest, WorstDistanceInfiniteUntilFull) {
  TopK heap(2);
  EXPECT_TRUE(std::isinf(heap.WorstDistance()));
  heap.Push(1.0f, 0);
  EXPECT_TRUE(std::isinf(heap.WorstDistance()));
  heap.Push(2.0f, 1);
  EXPECT_FLOAT_EQ(heap.WorstDistance(), 2.0f);
}

TEST(TopKTest, TieBrokenByLowerId) {
  TopK heap(2);
  heap.Push(1.0f, 7);
  heap.Push(1.0f, 3);
  heap.Push(1.0f, 5);
  const auto sorted = heap.TakeSorted();
  EXPECT_EQ(sorted[0].id, 3u);
  EXPECT_EQ(sorted[1].id, 5u);
}

TEST(TopKTest, FewerCandidatesThanK) {
  TopK heap(10);
  heap.Push(2.0f, 1);
  heap.Push(1.0f, 0);
  const auto sorted = heap.TakeSorted();
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_EQ(sorted[0].id, 0u);
}

class BruteForceTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BruteForceTest, MatchesExhaustiveReference) {
  const size_t k = GetParam();
  Rng rng(k * 7 + 1);
  const Matrix base = Matrix::RandomGaussian(120, 12, &rng);
  const Matrix queries = Matrix::RandomGaussian(15, 12, &rng);
  const KnnResult result = BruteForceKnn(base, queries, k);
  ASSERT_EQ(result.k, k);

  for (size_t q = 0; q < queries.rows(); ++q) {
    // Exhaustive reference sort.
    std::vector<std::pair<float, uint32_t>> all;
    for (size_t b = 0; b < base.rows(); ++b) {
      all.push_back({SquaredDistance(queries.Row(q), base.Row(b), 12),
                     static_cast<uint32_t>(b)});
    }
    std::sort(all.begin(), all.end());
    for (size_t j = 0; j < k; ++j) {
      EXPECT_EQ(result.indices[q * k + j], all[j].second)
          << "query " << q << " pos " << j;
      EXPECT_NEAR(result.distances[q * k + j], all[j].first, 1e-3f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, BruteForceTest, ::testing::Values(1, 5, 10, 50));

TEST(BruteForceTest, DistancesAscendPerQuery) {
  Rng rng(2);
  const Matrix base = Matrix::RandomGaussian(300, 8, &rng);
  const Matrix queries = Matrix::RandomGaussian(10, 8, &rng);
  const KnnResult result = BruteForceKnn(base, queries, 20);
  for (size_t q = 0; q < 10; ++q) {
    for (size_t j = 1; j < 20; ++j) {
      EXPECT_LE(result.distances[q * 20 + j - 1], result.distances[q * 20 + j]);
    }
  }
}

TEST(BruteForceTest, BlockBoundaryCorrectness) {
  // More base points than one internal tile to cross the blocking path.
  Rng rng(3);
  const Matrix base = Matrix::RandomGaussian(4100, 4, &rng);
  Matrix query(1, 4);
  for (size_t j = 0; j < 4; ++j) query(0, j) = base(4099, j);
  const KnnResult result = BruteForceKnn(base, query, 1);
  EXPECT_EQ(result.indices[0], 4099u);
  EXPECT_NEAR(result.distances[0], 0.0f, 1e-5f);
}

TEST(KnnMatrixTest, ExcludesSelf) {
  Rng rng(4);
  const Matrix data = Matrix::RandomGaussian(50, 6, &rng);
  const KnnResult knn = BuildKnnMatrix(data, 5);
  for (size_t i = 0; i < 50; ++i) {
    for (size_t j = 0; j < 5; ++j) {
      EXPECT_NE(knn.indices[i * 5 + j], i) << "row " << i;
    }
  }
}

TEST(KnnMatrixTest, RowsHaveDistinctNeighbors) {
  Rng rng(5);
  const Matrix data = Matrix::RandomGaussian(40, 6, &rng);
  const KnnResult knn = BuildKnnMatrix(data, 8);
  for (size_t i = 0; i < 40; ++i) {
    std::set<uint32_t> unique(knn.Row(i), knn.Row(i) + 8);
    EXPECT_EQ(unique.size(), 8u);
  }
}

TEST(KnnMatrixTest, NearDuplicatePointsAreMutualNeighbors) {
  Matrix data(4, 2);
  data(0, 0) = 0.0f;
  data(1, 0) = 0.01f;   // near point 0
  data(2, 0) = 10.0f;
  data(3, 0) = 10.01f;  // near point 2
  const KnnResult knn = BuildKnnMatrix(data, 1);
  EXPECT_EQ(knn.indices[0], 1u);
  EXPECT_EQ(knn.indices[1], 0u);
  EXPECT_EQ(knn.indices[2], 3u);
  EXPECT_EQ(knn.indices[3], 2u);
}

TEST(RerankTest, ReturnsTopKByExactDistance) {
  Matrix base(5, 1);
  for (size_t i = 0; i < 5; ++i) base(i, 0) = static_cast<float>(i);
  const float query = 2.2f;
  const auto top = RerankCandidates(base, &query, {0, 1, 2, 3, 4}, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 2u);
  EXPECT_EQ(top[1], 3u);
}

TEST(RerankTest, DeduplicatesOverlappingCandidates) {
  // Overlapping ensemble probes can repeat ids; duplicates must not occupy
  // several top-k slots.
  Matrix base(4, 1);
  for (size_t i = 0; i < 4; ++i) base(i, 0) = static_cast<float>(i);
  const float query = 0.0f;
  const auto top =
      RerankCandidates(base, &query, {2, 0, 0, 1, 1, 1, 2, 3}, 4);
  ASSERT_EQ(top.size(), 4u);
  EXPECT_EQ(top[0], 0u);
  EXPECT_EQ(top[1], 1u);
  EXPECT_EQ(top[2], 2u);
  EXPECT_EQ(top[3], 3u);
  const std::set<uint32_t> unique(top.begin(), top.end());
  EXPECT_EQ(unique.size(), top.size());
}

TEST(RerankTest, HandlesFewerCandidatesThanK) {
  Matrix base(3, 1);
  const float query = 0.0f;
  const auto top = RerankCandidates(base, &query, {1}, 5);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0], 1u);
}

TEST(FilterKnnTest, KeepsInSubsetNeighborsWithLocalIds) {
  // Global: 6 points; knn lists handcrafted.
  KnnResult global;
  global.k = 3;
  global.indices = {
      1, 2, 3,  // 0
      0, 2, 4,  // 1
      0, 1, 5,  // 2
      0, 4, 5,  // 3
      1, 3, 5,  // 4
      2, 3, 4,  // 5
  };
  global.distances.assign(18, 0.0f);
  // Subset {0, 2, 4} -> local ids {0:0, 2:1, 4:2}.
  const KnnResult local = FilterKnnToSubset(global, {0, 2, 4});
  ASSERT_EQ(local.k, 3u);
  // Point 0's global list {1,2,3} -> kept {2}=local 1, padded cyclically.
  EXPECT_EQ(local.indices[0], 1u);
  EXPECT_EQ(local.indices[1], 1u);
  EXPECT_EQ(local.indices[2], 1u);
  // Point 2's list {0,1,5} -> kept {0}=local 0.
  EXPECT_EQ(local.indices[3], 0u);
}

TEST(FilterKnnTest, SelfPadWhenNoNeighborSurvives) {
  KnnResult global;
  global.k = 2;
  global.indices = {1, 2, 0, 2, 0, 1};
  global.distances.assign(6, 0.0f);
  const KnnResult local = FilterKnnToSubset(global, {0});  // alone
  EXPECT_EQ(local.indices[0], 0u);
  EXPECT_EQ(local.indices[1], 0u);
}

}  // namespace
}  // namespace usp
