// Tests for cluster/: DBSCAN on planted densities, spectral clustering on the
// non-convex Table-5 shapes, and the external metrics (ARI/NMI/purity)
// against hand-computed values.
#include <set>

#include <gtest/gtest.h>

#include "cluster/dbscan.h"
#include "cluster/metrics.h"
#include "cluster/spectral.h"
#include "dataset/synthetic.h"

namespace usp {
namespace {

TEST(DbscanTest, SeparatesTwoDenseBlobs) {
  const LabeledDataset ds = MakeGaussianMixture(300, 2, 2, 50.0f, 0.5f, 1);
  DbscanConfig config;
  config.epsilon = 2.0f;
  config.min_points = 4;
  const DbscanResult result = RunDbscan(ds.points, config);
  EXPECT_EQ(result.num_clusters, 2u);
  // Predicted clusters align with generative labels.
  const auto dense = DensifyLabels(result.labels);
  EXPECT_GT(AdjustedRandIndex(ds.labels, dense), 0.95);
}

TEST(DbscanTest, MarksIsolatedPointsAsNoise) {
  Matrix points(12, 2);
  // Dense cluster of 10 near origin + 2 far isolated points.
  Rng rng(2);
  for (size_t i = 0; i < 10; ++i) {
    points(i, 0) = 0.1f * static_cast<float>(rng.Gaussian());
    points(i, 1) = 0.1f * static_cast<float>(rng.Gaussian());
  }
  points(10, 0) = 100.0f;
  points(11, 0) = -100.0f;
  DbscanConfig config;
  config.epsilon = 1.0f;
  config.min_points = 4;
  const DbscanResult result = RunDbscan(points, config);
  EXPECT_EQ(result.num_clusters, 1u);
  EXPECT_EQ(result.labels[10], kDbscanNoise);
  EXPECT_EQ(result.labels[11], kDbscanNoise);
}

TEST(DbscanTest, MoonsAreRecoveredDensityBased) {
  const LabeledDataset moons = MakeMoons(500, 0.04f, 3);
  DbscanConfig config;
  config.epsilon = 0.18f;
  config.min_points = 5;
  const DbscanResult result = RunDbscan(moons.points, config);
  const auto dense = DensifyLabels(result.labels);
  EXPECT_GT(AdjustedRandIndex(moons.labels, dense), 0.9);
}

TEST(SpectralTest, RecoversConcentricCircles) {
  // The canonical K-means failure case that spectral clustering solves.
  const LabeledDataset circles = MakeCircles(400, 0.02f, 0.4f, 4);
  SpectralConfig config;
  config.num_clusters = 2;
  config.graph_neighbors = 8;
  config.seed = 5;
  const auto labels = RunSpectralClustering(circles.points, config);
  EXPECT_GT(AdjustedRandIndex(circles.labels, labels), 0.9);
}

TEST(SpectralTest, RecoversMoons) {
  const LabeledDataset moons = MakeMoons(400, 0.04f, 6);
  SpectralConfig config;
  config.num_clusters = 2;
  config.graph_neighbors = 10;
  config.seed = 7;
  const auto labels = RunSpectralClustering(moons.points, config);
  EXPECT_GT(AdjustedRandIndex(moons.labels, labels), 0.9);
}

TEST(SpectralTest, LabelsWithinRange) {
  const LabeledDataset ds = MakeGaussianMixture(150, 3, 3, 20.0f, 1.0f, 8);
  SpectralConfig config;
  config.num_clusters = 3;
  const auto labels = RunSpectralClustering(ds.points, config);
  for (uint32_t l : labels) EXPECT_LT(l, 3u);
}

TEST(MetricsTest, AriPerfectAndPermuted) {
  const std::vector<uint32_t> truth = {0, 0, 1, 1, 2, 2};
  EXPECT_DOUBLE_EQ(AdjustedRandIndex(truth, truth), 1.0);
  // Permuting cluster names does not change ARI.
  const std::vector<uint32_t> permuted = {2, 2, 0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(AdjustedRandIndex(truth, permuted), 1.0);
}

TEST(MetricsTest, AriNearZeroForRandomLabels) {
  Rng rng(9);
  std::vector<uint32_t> truth(2000), predicted(2000);
  for (size_t i = 0; i < 2000; ++i) {
    truth[i] = static_cast<uint32_t>(rng.UniformInt(4));
    predicted[i] = static_cast<uint32_t>(rng.UniformInt(4));
  }
  EXPECT_NEAR(AdjustedRandIndex(truth, predicted), 0.0, 0.05);
}

TEST(MetricsTest, AriHandComputedSplit) {
  // truth: {a,a,a,b,b,b}; predicted splits one cluster.
  const std::vector<uint32_t> truth = {0, 0, 0, 1, 1, 1};
  const std::vector<uint32_t> predicted = {0, 0, 1, 2, 2, 2};
  const double ari = AdjustedRandIndex(truth, predicted);
  EXPECT_GT(ari, 0.3);
  EXPECT_LT(ari, 1.0);
}

TEST(MetricsTest, NmiBounds) {
  const std::vector<uint32_t> truth = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(NormalizedMutualInformation(truth, truth), 1.0);
  const std::vector<uint32_t> constant = {0, 0, 0, 0};
  EXPECT_LE(NormalizedMutualInformation(truth, constant), 1e-9);
}

TEST(MetricsTest, NmiInvariantToRelabeling) {
  const std::vector<uint32_t> truth = {0, 0, 1, 1, 2, 2};
  const std::vector<uint32_t> relabeled = {5, 5, 3, 3, 0, 0};
  // Densify first (NMI implementation expects dense-ish ids for efficiency).
  std::vector<int32_t> as_int(relabeled.begin(), relabeled.end());
  EXPECT_NEAR(NormalizedMutualInformation(truth, DensifyLabels(as_int)), 1.0,
              1e-9);
}

TEST(MetricsTest, PurityMajorityFraction) {
  // Cluster 0: {a, a, b} -> 2/3 pure; cluster 1: {b} -> pure.
  const std::vector<uint32_t> truth = {0, 0, 1, 1};
  const std::vector<uint32_t> predicted = {0, 0, 0, 1};
  EXPECT_DOUBLE_EQ(Purity(truth, predicted), 3.0 / 4.0);
}

TEST(MetricsTest, DensifyMapsNoiseAndIds) {
  const std::vector<int32_t> labels = {-1, 3, 3, -1, 7};
  const auto dense = DensifyLabels(labels);
  EXPECT_EQ(dense[0], dense[3]);
  EXPECT_EQ(dense[1], dense[2]);
  std::set<uint32_t> unique(dense.begin(), dense.end());
  EXPECT_EQ(unique.size(), 3u);
}

}  // namespace
}  // namespace usp
