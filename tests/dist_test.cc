// Tests for src/dist/: exhaustive scalar-vs-dispatched kernel parity across
// dims 1..67 (covering every SIMD remainder tail), batched-vs-1v1 kernel
// consistency, NaN/inf propagation, metric semantics of DistanceComputer,
// and end-to-end inner-product / cosine recall of PartitionIndex and
// IvfFlatIndex against brute-force ground truth in the same metric.
#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <numeric>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/kmeans.h"
#include "core/partition_index.h"
#include "dist/distance_computer.h"
#include "dist/distance_kernels.h"
#include "dist/metric.h"
#include "ivf/ivf.h"
#include "knn/brute_force.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace usp {
namespace {

uint32_t Bits(float f) {
  uint32_t u;
  std::memcpy(&u, &f, sizeof(u));
  return u;
}

std::vector<float> RandomVec(size_t d, Rng* rng, float scale = 1.0f) {
  std::vector<float> v(d);
  for (auto& x : v) x = static_cast<float>(rng->Gaussian()) * scale;
  return v;
}

// --------------------------------------------------------------------------
// Scalar vs dispatched parity. The two kernel sets promise bit-identical
// squared_l2 and dot (see the contract in distance_kernels.h).
// --------------------------------------------------------------------------

TEST(KernelParityTest, SquaredL2BitExactAcrossDims1To67) {
  const DistanceKernels& scalar = ScalarKernels();
  const DistanceKernels& dispatched = GetDistanceKernels();
  Rng rng(11);
  for (size_t d = 1; d <= 67; ++d) {
    for (int rep = 0; rep < 4; ++rep) {
      const auto x = RandomVec(d, &rng, 3.0f);
      const auto y = RandomVec(d, &rng, 3.0f);
      const float s = scalar.squared_l2(x.data(), y.data(), d);
      const float v = dispatched.squared_l2(x.data(), y.data(), d);
      ASSERT_EQ(Bits(s), Bits(v)) << "d=" << d << " rep=" << rep;
    }
  }
}

TEST(KernelParityTest, DotBitExactAcrossDims1To67) {
  const DistanceKernels& scalar = ScalarKernels();
  const DistanceKernels& dispatched = GetDistanceKernels();
  Rng rng(12);
  for (size_t d = 1; d <= 67; ++d) {
    for (int rep = 0; rep < 4; ++rep) {
      const auto x = RandomVec(d, &rng, 3.0f);
      const auto y = RandomVec(d, &rng, 3.0f);
      const float s = scalar.dot(x.data(), y.data(), d);
      const float v = dispatched.dot(x.data(), y.data(), d);
      ASSERT_EQ(Bits(s), Bits(v)) << "d=" << d << " rep=" << rep;
    }
  }
}

TEST(KernelParityTest, BatchedKernelsMatchOneVsOneBitExact) {
  Rng rng(13);
  const size_t count = 37;
  for (const size_t d : {1u, 7u, 8u, 9u, 31u, 32u, 33u, 64u, 67u}) {
    std::vector<float> rows(count * d);
    for (auto& v : rows) v = static_cast<float>(rng.Gaussian());
    const auto q = RandomVec(d, &rng);
    std::vector<uint32_t> ids(count);
    std::iota(ids.begin(), ids.end(), 0u);
    std::reverse(ids.begin(), ids.end());  // non-trivial gather order

    for (const DistanceKernels* kd : {&ScalarKernels(), &GetDistanceKernels()}) {
      std::vector<float> block(count), gather(count);
      kd->score_block_l2(q.data(), rows.data(), count, d, block.data());
      kd->score_ids_l2(q.data(), rows.data(), d, ids.data(), count,
                       gather.data());
      for (size_t r = 0; r < count; ++r) {
        const float one = kd->squared_l2(q.data(), rows.data() + r * d, d);
        ASSERT_EQ(Bits(block[r]), Bits(one)) << kd->name << " d=" << d;
        ASSERT_EQ(Bits(gather[r]), Bits(kd->squared_l2(
                                       q.data(), rows.data() + ids[r] * d, d)))
            << kd->name << " d=" << d;
      }
      kd->score_block_dot(q.data(), rows.data(), count, d, block.data());
      kd->score_ids_dot(q.data(), rows.data(), d, ids.data(), count,
                        gather.data());
      for (size_t r = 0; r < count; ++r) {
        ASSERT_EQ(Bits(block[r]),
                  Bits(kd->dot(q.data(), rows.data() + r * d, d)))
            << kd->name << " d=" << d;
        ASSERT_EQ(Bits(gather[r]),
                  Bits(kd->dot(q.data(), rows.data() + ids[r] * d, d)))
            << kd->name << " d=" << d;
      }
    }
  }
}

TEST(KernelParityTest, AxpyMatchesWithinTolerance) {
  // axpy carries no bit-compatibility promise (FMA contraction in the vector
  // path); require close agreement instead.
  Rng rng(14);
  for (const size_t n : {1u, 8u, 15u, 64u, 67u}) {
    const auto x = RandomVec(n, &rng);
    const auto y0 = RandomVec(n, &rng);
    std::vector<float> ys(y0), yv(y0);
    ScalarKernels().axpy(0.37f, x.data(), ys.data(), n);
    GetDistanceKernels().axpy(0.37f, x.data(), yv.data(), n);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_NEAR(ys[i], yv[i], 1e-5f) << "n=" << n;
    }
  }
}

TEST(KernelDispatchTest, SelectionPolicy) {
  // Forcing scalar always yields the scalar set (USP_FORCE_SCALAR=1 routes
  // through the same SelectKernels(true) branch).
  EXPECT_STREQ(SelectKernels(true).name, "scalar");
  const DistanceKernels* avx2 = Avx2KernelsOrNull();
  if (avx2 != nullptr) {
    EXPECT_STREQ(SelectKernels(false).name, "avx2");
  } else {
    EXPECT_STREQ(SelectKernels(false).name, "scalar");
  }
}

TEST(KernelEdgeCaseTest, NanPropagatesInBothSets) {
  Rng rng(15);
  for (const size_t d : {5u, 8u, 13u}) {
    for (size_t pos = 0; pos < d; ++pos) {
      auto x = RandomVec(d, &rng);
      const auto y = RandomVec(d, &rng);
      x[pos] = std::numeric_limits<float>::quiet_NaN();
      for (const DistanceKernels* kd :
           {&ScalarKernels(), &GetDistanceKernels()}) {
        EXPECT_TRUE(std::isnan(kd->squared_l2(x.data(), y.data(), d)))
            << kd->name << " d=" << d << " pos=" << pos;
        EXPECT_TRUE(std::isnan(kd->dot(x.data(), y.data(), d)))
            << kd->name << " d=" << d << " pos=" << pos;
      }
    }
  }
}

TEST(KernelEdgeCaseTest, InfinityBehavesIdenticallyInBothSets) {
  Rng rng(16);
  const float inf = std::numeric_limits<float>::infinity();
  for (const size_t d : {3u, 8u, 11u}) {
    auto x = RandomVec(d, &rng);
    auto y = RandomVec(d, &rng);
    x[d - 1] = inf;  // remainder-lane position
    // Finite y: |x - y|^2 and <x, y>*sign hit +/-inf in both sets.
    EXPECT_EQ(ScalarKernels().squared_l2(x.data(), y.data(), d), inf);
    EXPECT_EQ(GetDistanceKernels().squared_l2(x.data(), y.data(), d), inf);
    EXPECT_EQ(Bits(ScalarKernels().dot(x.data(), y.data(), d)),
              Bits(GetDistanceKernels().dot(x.data(), y.data(), d)));
    // inf - inf = NaN inside the L2 kernel.
    y[d - 1] = inf;
    EXPECT_TRUE(std::isnan(ScalarKernels().squared_l2(x.data(), y.data(), d)));
    EXPECT_TRUE(
        std::isnan(GetDistanceKernels().squared_l2(x.data(), y.data(), d)));
  }
}

// --------------------------------------------------------------------------
// DistanceComputer metric semantics.
// --------------------------------------------------------------------------

TEST(DistanceComputerTest, MetricsMinimizeAndMatchReference) {
  Rng rng(21);
  Matrix base = Matrix::RandomGaussian(40, 19, &rng);
  const auto q = RandomVec(19, &rng);
  const DistanceKernels& kd = GetDistanceKernels();

  const DistanceComputer l2(&base, Metric::kSquaredL2);
  const DistanceComputer ip(&base, Metric::kInnerProduct);
  const DistanceComputer cos(&base, Metric::kCosine);

  std::vector<float> scratch;
  EXPECT_EQ(l2.PrepareQuery(q.data(), &scratch), q.data());
  EXPECT_EQ(ip.PrepareQuery(q.data(), &scratch), q.data());
  const float* q_cos = cos.PrepareQuery(q.data(), &scratch);
  EXPECT_NE(q_cos, q.data());
  EXPECT_NEAR(kd.dot(q_cos, q_cos, 19), 1.0f, 1e-5f);

  const float q_norm = std::sqrt(kd.dot(q.data(), q.data(), 19));
  for (uint32_t id = 0; id < 40; ++id) {
    const float* x = base.Row(id);
    EXPECT_EQ(Bits(l2.Distance(q.data(), id)),
              Bits(kd.squared_l2(q.data(), x, 19)));
    EXPECT_EQ(Bits(ip.Distance(q.data(), id)), Bits(-kd.dot(q.data(), x, 19)));
    const float x_norm = std::sqrt(kd.dot(x, x, 19));
    const float expected_cos =
        1.0f - kd.dot(q.data(), x, 19) / (q_norm * x_norm);
    EXPECT_NEAR(cos.Distance(q_cos, id), expected_cos, 1e-4f);
    EXPECT_GE(cos.Distance(q_cos, id), -1e-4f);
    EXPECT_LE(cos.Distance(q_cos, id), 2.0f + 1e-4f);
  }
}

TEST(DistanceComputerTest, BatchedPathsMatchSingleDistance) {
  Rng rng(22);
  Matrix base = Matrix::RandomGaussian(64, 23, &rng);
  const auto q = RandomVec(23, &rng);
  std::vector<uint32_t> ids = {5, 0, 63, 17, 17, 8};
  for (const Metric metric :
       {Metric::kSquaredL2, Metric::kInnerProduct, Metric::kCosine}) {
    const DistanceComputer dist(&base, metric);
    std::vector<float> scratch;
    const float* pq = dist.PrepareQuery(q.data(), &scratch);
    std::vector<float> by_id(ids.size());
    dist.ScoreIds(pq, ids.data(), ids.size(), by_id.data());
    for (size_t i = 0; i < ids.size(); ++i) {
      ASSERT_EQ(Bits(by_id[i]), Bits(dist.Distance(pq, ids[i])))
          << MetricName(metric);
    }
    std::vector<float> range(10);
    dist.ScoreRange(pq, 20, 10, range.data());
    for (size_t i = 0; i < 10; ++i) {
      ASSERT_EQ(Bits(range[i]), Bits(dist.Distance(pq, 20 + i)))
          << MetricName(metric);
    }
  }
}

TEST(DistanceComputerTest, ZeroNormRowsAndQueriesAreNeutralUnderCosine) {
  Matrix base(3, 4);
  base(0, 0) = 1.0f;  // unit row
  // row 1 stays all-zero
  base(2, 1) = -2.0f;
  const DistanceComputer cos(&base, Metric::kCosine);
  std::vector<float> scratch;
  const std::vector<float> q = {1.0f, 0.0f, 0.0f, 0.0f};
  const float* pq = cos.PrepareQuery(q.data(), &scratch);
  EXPECT_NEAR(cos.Distance(pq, 0), 0.0f, 1e-6f);  // aligned
  EXPECT_NEAR(cos.Distance(pq, 1), 1.0f, 1e-6f);  // zero row -> neutral
  EXPECT_NEAR(cos.Distance(pq, 2), 1.0f, 1e-6f);  // orthogonal

  const std::vector<float> zero_q(4, 0.0f);
  const float* pzq = cos.PrepareQuery(zero_q.data(), &scratch);
  EXPECT_NEAR(cos.Distance(pzq, 0), 1.0f, 1e-6f);
}

// --------------------------------------------------------------------------
// End-to-end: inner-product and cosine search against same-metric brute
// force through PartitionIndex and IvfFlatIndex.
// --------------------------------------------------------------------------

struct MetricWorkload {
  Matrix base;
  Matrix queries;
};

// Gaussian data with per-row scale variation so inner-product and cosine
// rankings genuinely differ from L2.
MetricWorkload MakeMetricWorkload(size_t n, size_t nq, size_t d,
                                  uint64_t seed) {
  Rng rng(seed);
  MetricWorkload w{Matrix::RandomGaussian(n, d, &rng),
                   Matrix::RandomGaussian(nq, d, &rng)};
  for (size_t i = 0; i < n; ++i) {
    const float scale = 0.25f + 1.5f * static_cast<float>(rng.Uniform());
    float* row = w.base.Row(i);
    for (size_t j = 0; j < d; ++j) row[j] *= scale;
  }
  return w;
}

TEST(MetricBruteForceTest, ExplicitL2MatchesDefaultPath) {
  const MetricWorkload w = MakeMetricWorkload(300, 12, 16, 31);
  const KnnResult a = BruteForceKnn(w.base, w.queries, 10);
  const KnnResult b =
      BruteForceKnn(w.base, w.queries, 10, Metric::kSquaredL2);
  EXPECT_EQ(a.indices, b.indices);
}

TEST(MetricBruteForceTest, DistancesAscendUnderEveryMetric) {
  const MetricWorkload w = MakeMetricWorkload(300, 12, 16, 32);
  for (const Metric metric : {Metric::kInnerProduct, Metric::kCosine}) {
    const KnnResult gt = BruteForceKnn(w.base, w.queries, 15, metric);
    for (size_t q = 0; q < w.queries.rows(); ++q) {
      for (size_t j = 1; j < 15; ++j) {
        EXPECT_LE(gt.distances[q * 15 + j - 1], gt.distances[q * 15 + j])
            << MetricName(metric);
      }
    }
  }
}

class MetricRecallTest : public ::testing::TestWithParam<Metric> {};

TEST_P(MetricRecallTest, IvfFlatServesMetricEndToEnd) {
  const Metric metric = GetParam();
  const MetricWorkload w = MakeMetricWorkload(600, 40, 24, 33);
  const KnnResult gt = BruteForceKnn(w.base, w.queries, 10, metric);

  IvfConfig config;
  config.nlist = 16;
  config.metric = metric;
  const IvfFlatIndex index(&w.base, config);
  EXPECT_EQ(index.metric(), metric);

  // Probing every list scans every point: the exact-rerank stage must then
  // reproduce brute force exactly.
  const BatchSearchResult full = index.SearchBatch(w.queries, 10, 16);
  EXPECT_DOUBLE_EQ(KnnAccuracy(full, gt.indices, 10), 1.0);

  // A partial probe keeps high recall.
  const BatchSearchResult partial = index.SearchBatch(w.queries, 10, 8);
  EXPECT_GE(KnnAccuracy(partial, gt.indices, 10), 0.75);
}

TEST_P(MetricRecallTest, PartitionIndexServesMetricEndToEnd) {
  const Metric metric = GetParam();
  const MetricWorkload w = MakeMetricWorkload(600, 40, 24, 34);
  const KnnResult gt = BruteForceKnn(w.base, w.queries, 10, metric);

  KMeansConfig kc;
  kc.num_clusters = 16;
  kc.seed = 7;
  Matrix train = w.base.Clone();
  if (metric == Metric::kCosine) NormalizeRows(&train);
  KMeansResult km = RunKMeans(train, kc);
  const KMeansPartitioner scorer(std::move(km.centroids), metric);
  const PartitionIndex index(&w.base, &scorer, metric);
  EXPECT_EQ(index.metric(), metric);

  const BatchSearchResult full = index.SearchBatch(w.queries, 10, 16);
  EXPECT_DOUBLE_EQ(KnnAccuracy(full, gt.indices, 10), 1.0);

  const BatchSearchResult partial = index.SearchBatch(w.queries, 10, 8);
  EXPECT_GE(KnnAccuracy(partial, gt.indices, 10), 0.75);
}

INSTANTIATE_TEST_SUITE_P(Metrics, MetricRecallTest,
                         ::testing::Values(Metric::kInnerProduct,
                                           Metric::kCosine),
                         [](const ::testing::TestParamInfo<Metric>& info) {
                           return std::string(MetricName(info.param));
                         });

TEST(MetricRerankTest, RerankMatchesGroundTruthOverFullCandidateSet) {
  const MetricWorkload w = MakeMetricWorkload(250, 8, 20, 35);
  std::vector<uint32_t> all(w.base.rows());
  std::iota(all.begin(), all.end(), 0u);
  // IP/cosine brute force and rerank share bit-identical kernel arithmetic,
  // so the full-candidate rerank must reproduce ground truth exactly. (The
  // L2 brute-force path uses the norm-trick formulation, whose rounding can
  // legitimately differ from the rerank's diff form at ties.)
  for (const Metric metric : {Metric::kInnerProduct, Metric::kCosine}) {
    const KnnResult gt = BruteForceKnn(w.base, w.queries, 5, metric);
    const DistanceComputer dist(&w.base, metric);
    for (size_t q = 0; q < w.queries.rows(); ++q) {
      const auto top = RerankCandidates(dist, w.queries.Row(q), all, 5);
      ASSERT_EQ(top.size(), 5u);
      for (size_t j = 0; j < 5; ++j) {
        EXPECT_EQ(top[j], gt.indices[q * 5 + j])
            << MetricName(metric) << " q=" << q;
      }
    }
  }
}

}  // namespace
}  // namespace usp
