// Tests for the mutable serving layer (serve/dynamic_index.h): exact search
// over the write segment, bit-identical pass-through of a single sealed
// segment, tombstone deletes, seal/compact lifecycle, container round-trips,
// and a read-while-insert stress test (run under TSan by the CI sanitizer
// job) with a recall floor asserted after sealing.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "dataset/workload.h"
#include "index/serialize.h"
#include "ivf/ivf.h"
#include "knn/brute_force.h"
#include "serve/dynamic_index.h"
#include "tensor/matrix.h"
#include "util/rng.h"

namespace usp {
namespace {

// Budget large enough that every segment (IVF-Flat with nlist <= sqrt(n))
// probes all of its lists, making sealed-segment search exact.
constexpr size_t kFullBudget = 1u << 20;

const Workload& DynWorkload() {
  static const Workload* w = [] {
    WorkloadSpec spec;
    spec.kind = WorkloadKind::kGaussian;
    spec.num_base = 600;
    spec.num_queries = 40;
    spec.gt_k = 10;
    spec.knn_k = 8;
    spec.seed = 123;
    return new Workload(MakeWorkload(spec));
  }();
  return *w;
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(DynamicIndexTest, EmptyIndexReturnsPaddingOnly) {
  DynamicIndex index(8);
  Matrix queries(2, 8);
  const BatchSearchResult result = index.SearchBatch(queries, 5, 4);
  ASSERT_EQ(result.ids.size(), 10u);
  for (size_t i = 0; i < result.ids.size(); ++i) {
    EXPECT_EQ(result.ids[i], kInvalidId);
    EXPECT_EQ(result.distances[i],
              std::numeric_limits<float>::infinity());
  }
  EXPECT_EQ(index.size(), 0u);
}

TEST(DynamicIndexTest, StatsAggregateAcrossSegments) {
  // Regression for the fan-out stats contract (shared with ShardedIndex):
  // per-query stats must be SUMS over every segment touched, and at full
  // budget scored + filtered_out must account for every live row.
  const Workload& w = DynWorkload();
  const size_t n = w.base.rows();
  DynamicIndex index(w.base.cols());
  // Half the rows sealed into an IVF segment, half served from the write
  // segment, so aggregation spans both search paths.
  index.AddBatch(MatrixView(w.base.data(), n / 2, w.base.cols()));
  index.Seal();
  index.AddBatch(
      MatrixView(w.base.Row(n / 2), n - n / 2, w.base.cols()));

  SearchRequest request;
  request.queries = w.queries;
  request.options.k = 10;
  request.options.budget = kFullBudget;
  request.options.stats = true;
  BatchSearchResult got = index.SearchBatch(request);
  ASSERT_TRUE(got.stats.has_value());
  for (size_t q = 0; q < w.queries.rows(); ++q) {
    EXPECT_EQ(got.candidate_counts[q], n) << "q=" << q;
    EXPECT_EQ(got.stats->candidates_scored[q], got.candidate_counts[q]);
    EXPECT_GT(got.stats->bins_probed[q], 0u);
  }

  // Filtered pushdown: every live row is either scored or filtered out.
  IdSelectorRange filter(50, 250);
  request.options.filter = &filter;
  request.options.plan = PlanMode::kForcePushdown;
  got = index.SearchBatch(request);
  ASSERT_TRUE(got.stats.has_value());
  for (size_t q = 0; q < w.queries.rows(); ++q) {
    EXPECT_EQ(got.stats->candidates_scored[q], 200u) << "q=" << q;
    EXPECT_EQ(got.stats->candidates_scored[q] + got.stats->filtered_out[q], n)
        << "q=" << q;
  }
}

TEST(DynamicIndexTest, WriteSegmentSearchIsExact) {
  const Workload& w = DynWorkload();
  DynamicIndex index(w.base.cols());
  const std::vector<uint32_t> ids = index.AddBatch(w.base);
  ASSERT_EQ(ids.size(), w.base.rows());
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(ids[i], static_cast<uint32_t>(i));  // contiguous global ids
  }
  EXPECT_EQ(index.size(), w.base.rows());
  EXPECT_EQ(index.write_segment_rows(), w.base.rows());

  const size_t k = 10;
  const BatchSearchResult got = index.SearchBatch(w.queries, k, 1);
  const KnnResult expected = BruteForceKnn(w.base, w.queries, k);
  for (size_t q = 0; q < w.queries.rows(); ++q) {
    for (size_t j = 0; j < k; ++j) {
      EXPECT_EQ(got.Row(q)[j], expected.Row(q)[j]) << "q=" << q << " j=" << j;
    }
  }
}

TEST(DynamicIndexTest, SingleSealedSegmentIsBitIdentical) {
  const Workload& w = DynWorkload();
  IvfConfig ivf;
  ivf.nlist = 16;
  auto segment = std::make_unique<IvfFlatIndex>(&w.base, ivf);
  const size_t k = 10, budget = 4;
  const BatchSearchResult direct =
      segment->SearchBatch(w.queries, k, budget);

  DynamicIndex index(w.base.cols());
  // w.base outlives the test; no storage transfer needed.
  EXPECT_EQ(index.AddSealedSegment(std::move(segment)), 0u);
  EXPECT_EQ(index.size(), w.base.rows());
  const BatchSearchResult via_dynamic =
      index.SearchBatch(w.queries, k, budget);

  // The acceptance bar: ids, distances, and candidate counts all
  // bit-identical to querying the segment directly.
  EXPECT_EQ(via_dynamic.ids, direct.ids);
  EXPECT_EQ(via_dynamic.distances, direct.distances);
  EXPECT_EQ(via_dynamic.candidate_counts, direct.candidate_counts);
}

TEST(DynamicIndexTest, DeletedIdsNeverAppear) {
  const Workload& w = DynWorkload();
  DynamicIndex index(w.base.cols());
  index.AddBatch(w.base);

  std::vector<uint32_t> deleted = {3, 17, 100, 599};
  for (uint32_t id : deleted) {
    EXPECT_TRUE(index.Contains(id));
    EXPECT_TRUE(index.Delete(id));
    EXPECT_FALSE(index.Contains(id));
    EXPECT_FALSE(index.Delete(id));  // double delete
  }
  EXPECT_FALSE(index.Delete(99999));  // never assigned
  EXPECT_EQ(index.size(), w.base.rows() - deleted.size());

  const std::unordered_set<uint32_t> gone(deleted.begin(), deleted.end());
  const BatchSearchResult result =
      index.SearchBatch(w.base, 20, kFullBudget);  // query every base point
  for (size_t q = 0; q < w.base.rows(); ++q) {
    for (size_t j = 0; j < result.k; ++j) {
      const uint32_t id = result.Row(q)[j];
      if (id == kInvalidId) break;
      EXPECT_EQ(gone.count(id), 0u) << "deleted id " << id << " surfaced";
    }
  }

  // Deletes stay deleted across a seal.
  index.Seal();
  EXPECT_EQ(index.num_sealed_segments(), 1u);
  const BatchSearchResult sealed = index.SearchBatch(w.queries, 20, kFullBudget);
  for (size_t i = 0; i < sealed.ids.size(); ++i) {
    if (sealed.ids[i] == kInvalidId) continue;
    EXPECT_EQ(gone.count(sealed.ids[i]), 0u);
  }
}

TEST(DynamicIndexTest, SealPreservesExactRecall) {
  const Workload& w = DynWorkload();
  DynamicIndex index(w.base.cols());
  index.AddBatch(w.base);

  const size_t k = 10;
  const BatchSearchResult before = index.SearchBatch(w.queries, k, kFullBudget);
  index.Seal();
  EXPECT_EQ(index.write_segment_rows(), 0u);
  EXPECT_EQ(index.num_sealed_segments(), 1u);
  const BatchSearchResult after = index.SearchBatch(w.queries, k, kFullBudget);

  // Both are exact (brute force before; full-probe IVF-Flat after), so the
  // result sets agree.
  EXPECT_EQ(before.ids, after.ids);
}

TEST(DynamicIndexTest, CompactDropsTombstonesAndReclaimsIds) {
  const Workload& w = DynWorkload();
  const size_t n = w.base.rows();
  DynamicIndex index(w.base.cols());

  // Two sealed segments + a small write tail.
  index.AddBatch(MatrixView(w.base.Row(0), 250, w.base.cols()));
  index.Seal();
  index.AddBatch(MatrixView(w.base.Row(250), 250, w.base.cols()));
  index.Seal();
  index.AddBatch(MatrixView(w.base.Row(500), n - 500, w.base.cols()));
  ASSERT_EQ(index.num_sealed_segments(), 2u);
  ASSERT_EQ(index.write_segment_rows(), n - 500);

  std::vector<uint32_t> deleted = {1, 251, 400};  // one per sealed segment
  for (uint32_t id : deleted) ASSERT_TRUE(index.Delete(id));
  EXPECT_EQ(index.num_tombstones(), deleted.size());

  index.Compact();
  EXPECT_EQ(index.num_sealed_segments(), 1u);
  EXPECT_EQ(index.num_tombstones(), 0u);  // reclaimed
  EXPECT_EQ(index.size(), n - deleted.size());
  for (uint32_t id : deleted) {
    EXPECT_FALSE(index.Contains(id));
    EXPECT_FALSE(index.Delete(id));  // id is gone, not deletable again
  }

  // Every live point still finds itself as its own nearest neighbor.
  std::vector<uint32_t> self(n);
  for (size_t i = 0; i < n; ++i) self[i] = static_cast<uint32_t>(i);
  const BatchSearchResult result = index.SearchBatch(w.base, 1, kFullBudget);
  for (size_t q = 0; q < n; ++q) {
    const bool was_deleted =
        std::find(deleted.begin(), deleted.end(), q) != deleted.end();
    if (was_deleted) continue;
    EXPECT_EQ(result.Row(q)[0], self[q]) << "q=" << q;
  }
}

// Regression: a Delete landing while Compact() trains the merged segment
// (outside the lock) must survive the install — the merged segment contains
// the row, so its tombstone must not be reclaimed with the snapshot-excluded
// ones.
TEST(DynamicIndexTest, DeleteDuringCompactionSurvives) {
  const Workload& w = DynWorkload();
  DynamicIndex* index_ptr = nullptr;
  std::atomic<bool> delete_during_build{false};
  const uint32_t victim = 42;

  DynamicIndexConfig config;
  config.segment_builder = [&](const Matrix& base,
                               Metric metric) -> std::unique_ptr<Index> {
    if (delete_during_build.exchange(false)) {
      EXPECT_TRUE(index_ptr->Delete(victim));  // lands mid-training
    }
    IvfConfig ivf;
    ivf.metric = metric;
    ivf.nlist = 4;
    return std::make_unique<IvfFlatIndex>(&base, ivf);
  };
  DynamicIndex index(w.base.cols(), config);
  index_ptr = &index;
  index.AddBatch(MatrixView(w.base.Row(0), 150, w.base.cols()));
  index.Seal();
  index.AddBatch(MatrixView(w.base.Row(150), 150, w.base.cols()));
  index.Seal();
  ASSERT_EQ(index.num_sealed_segments(), 2u);

  delete_during_build.store(true);
  index.Compact();  // Delete(victim) fires while the merged segment trains

  EXPECT_FALSE(index.Contains(victim));
  EXPECT_EQ(index.num_tombstones(), 1u);  // kept, not reclaimed
  EXPECT_EQ(index.size(), 299u);
  const BatchSearchResult result = index.SearchBatch(w.base, 20, kFullBudget);
  for (size_t i = 0; i < result.ids.size(); ++i) {
    EXPECT_NE(result.ids[i], victim);
  }

  index.Compact();  // the next compaction physically reclaims it
  EXPECT_EQ(index.num_tombstones(), 0u);
  EXPECT_FALSE(index.Contains(victim));
  EXPECT_EQ(index.size(), 299u);
}

TEST(DynamicIndexTest, AutoSealAndCompactThresholds) {
  const Workload& w = DynWorkload();
  DynamicIndexConfig config;
  config.seal_threshold = 128;
  config.max_sealed_segments = 2;
  DynamicIndex index(w.base.cols(), config);
  index.AddBatch(w.base);
  index.WaitForMaintenance();
  // Background seals fired; compaction keeps the sealed count bounded. The
  // exact counts depend on timing, so assert the invariants, not a schedule.
  EXPECT_GE(index.num_sealed_segments(), 1u);
  EXPECT_EQ(index.size(), w.base.rows());

  // Everything is still found: each base point is its own nearest neighbor.
  const BatchSearchResult result = index.SearchBatch(w.base, 1, kFullBudget);
  for (size_t q = 0; q < w.base.rows(); ++q) {
    EXPECT_EQ(result.Row(q)[0], static_cast<uint32_t>(q));
  }
}

TEST(DynamicIndexTest, SaveOpenRoundTripIsBitIdentical) {
  const Workload& w = DynWorkload();
  const size_t n = w.base.rows();
  DynamicIndex index(w.base.cols());

  // The acceptance shape: write segment + 2 sealed segments + tombstones.
  index.AddBatch(MatrixView(w.base.Row(0), 200, w.base.cols()));
  index.Seal();
  index.AddBatch(MatrixView(w.base.Row(200), 200, w.base.cols()));
  index.Seal();
  index.AddBatch(MatrixView(w.base.Row(400), n - 400, w.base.cols()));
  ASSERT_TRUE(index.Delete(5));
  ASSERT_TRUE(index.Delete(205));
  ASSERT_TRUE(index.Delete(450));

  const size_t k = 10;
  const BatchSearchResult before = index.SearchBatch(w.queries, k, 8);

  const std::string path = TempPath("dynamic.uspx");
  ASSERT_TRUE(SaveIndex(index, path).ok());

  for (const LoadMode mode : {LoadMode::kHeap, LoadMode::kMmap}) {
    auto loaded = OpenIndex(path, mode);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded.value()->type(), IndexType::kDynamic);
    EXPECT_EQ(loaded.value()->dim(), index.dim());
    EXPECT_EQ(loaded.value()->size(), index.size());
    EXPECT_EQ(loaded.value()->metric(), index.metric());
    const BatchSearchResult after =
        loaded.value()->SearchBatch(w.queries, k, 8);
    EXPECT_EQ(after.ids, before.ids);
    EXPECT_EQ(after.distances, before.distances);
    EXPECT_EQ(after.candidate_counts, before.candidate_counts);
  }
  std::remove(path.c_str());
}

TEST(DynamicIndexTest, SaveWhileWritingTakesConsistentSnapshot) {
  const Workload& w = DynWorkload();
  DynamicIndex index(w.base.cols());
  index.AddBatch(MatrixView(w.base.Row(0), 300, w.base.cols()));
  index.Seal();

  // A writer hammers the index while it is saved; the snapshot must load
  // back as a valid container regardless of what it caught.
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    size_t i = 300;
    while (!stop.load(std::memory_order_relaxed)) {
      index.Add(w.base.Row(i % w.base.rows()));
      ++i;
    }
  });
  const std::string path = TempPath("dynamic_live.uspx");
  ASSERT_TRUE(SaveIndex(index, path).ok());
  stop.store(true);
  writer.join();

  auto loaded = OpenIndex(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_GE(loaded.value()->size(), 300u);
  std::remove(path.c_str());
}

// The stress test of the issue: a writer thread appends and deletes while
// reader threads run SearchBatch; must be ThreadSanitizer-clean, and after a
// final seal the recall floor holds.
TEST(DynamicIndexTest, ReadWhileInsertStress) {
  const size_t dim = 16, total = 800, k = 5;
  Rng rng(7);
  Matrix data = Matrix::RandomGaussian(total, dim, &rng);

  DynamicIndexConfig config;
  config.seal_threshold = 200;  // background seals fire during the run
  DynamicIndex index(dim, config);

  std::atomic<bool> done{false};
  std::atomic<size_t> searches{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      Rng reader_rng(100 + searches.load());
      Matrix queries = Matrix::RandomGaussian(4, dim, &reader_rng);
      while (!done.load(std::memory_order_relaxed)) {
        const BatchSearchResult result =
            index.SearchBatch(queries, k, kFullBudget);
        // Results are well-formed: padding only after real hits.
        for (size_t q = 0; q < queries.rows(); ++q) {
          bool padding = false;
          for (size_t j = 0; j < k; ++j) {
            if (result.Row(q)[j] == kInvalidId) {
              padding = true;
            } else {
              EXPECT_FALSE(padding) << "hit after padding";
            }
          }
        }
        searches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::vector<uint32_t> ids;
  ids.reserve(total);
  for (size_t i = 0; i < total; ++i) {
    ids.push_back(index.Add(data.Row(i)));
    if (i % 7 == 3) index.Delete(ids[i / 2]);  // interleave deletes
  }
  // Keep readers running until they have genuinely overlapped the writes.
  while (searches.load(std::memory_order_relaxed) < 10) {
    std::this_thread::yield();
  }
  done.store(true);
  for (auto& t : readers) t.join();
  index.WaitForMaintenance();
  EXPECT_GT(searches.load(), 0u);

  index.Seal();
  EXPECT_EQ(index.write_segment_rows(), 0u);

  // Recall floor after seal: every live point finds itself at rank 1 (the
  // sealed segments are probed exhaustively at kFullBudget).
  size_t live_checked = 0, hits = 0;
  for (size_t i = 0; i < total; i += 13) {
    if (!index.Contains(ids[i])) continue;
    ++live_checked;
    const BatchSearchResult r =
        index.SearchBatch(MatrixView(data.Row(i), 1, dim), 1, kFullBudget);
    if (r.Row(0)[0] == ids[i]) ++hits;
  }
  ASSERT_GT(live_checked, 0u);
  EXPECT_EQ(hits, live_checked) << "exact full-probe recall must be 1.0";
}

}  // namespace
}  // namespace usp
