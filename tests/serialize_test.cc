// Tests for model persistence: a saved-and-reloaded partitioner must behave
// identically to the original (including batch-norm running statistics), and
// malformed inputs must fail with clear Status codes, never crash.
#include <cstdint>
#include <cstdio>
#include <unistd.h>
#include <string>

#include <gtest/gtest.h>

#include "core/partition_index.h"
#include "core/partitioner.h"
#include "dataset/workload.h"

namespace usp {
namespace {

const Workload& SerializeWorkload() {
  static const Workload* w = [] {
    WorkloadSpec spec;
    spec.kind = WorkloadKind::kGaussian;
    spec.num_base = 800;
    spec.num_queries = 60;
    spec.gt_k = 10;
    spec.knn_k = 8;
    spec.seed = 91;
    return new Workload(MakeWorkload(spec));
  }();
  return *w;
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

UspPartitioner TrainSmall(UspModelKind kind) {
  UspTrainConfig config;
  config.num_bins = 8;
  config.model = kind;
  config.eta = 8.0f;
  config.epochs = 10;
  config.batch_size = 256;
  config.hidden_dim = 32;
  config.seed = 17;
  UspPartitioner partitioner(config);
  const Workload& w = SerializeWorkload();
  partitioner.Train(w.base, w.knn_matrix);
  return partitioner;
}

TEST(SerializeTest, MlpRoundTripScoresIdentically) {
  const Workload& w = SerializeWorkload();
  const UspPartitioner original = TrainSmall(UspModelKind::kMlp);
  const std::string path = TempPath("model.uspm");
  ASSERT_TRUE(original.Save(path).ok());

  auto loaded = UspPartitioner::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Matrix a = original.ScoreBins(w.queries);
  const Matrix b = loaded.value().ScoreBins(w.queries);
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.data()[i], b.data()[i]) << "score mismatch at " << i;
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, ReloadedModelDrivesIdenticalIndex) {
  const Workload& w = SerializeWorkload();
  const UspPartitioner original = TrainSmall(UspModelKind::kMlp);
  const std::string path = TempPath("index_model.uspm");
  ASSERT_TRUE(original.Save(path).ok());
  auto loaded = UspPartitioner::Load(path);
  ASSERT_TRUE(loaded.ok());

  PartitionIndex original_index(&w.base, &original);
  PartitionIndex loaded_index(&w.base, &loaded.value());
  EXPECT_EQ(original_index.assignments(), loaded_index.assignments());
  const auto ra = original_index.SearchBatch(w.queries, 10, 2);
  const auto rb = loaded_index.SearchBatch(w.queries, 10, 2);
  EXPECT_EQ(ra.ids, rb.ids);
  std::remove(path.c_str());
}

TEST(SerializeTest, LogisticRoundTrip) {
  const Workload& w = SerializeWorkload();
  const UspPartitioner original = TrainSmall(UspModelKind::kLogisticRegression);
  const std::string path = TempPath("logistic.uspm");
  ASSERT_TRUE(original.Save(path).ok());
  auto loaded = UspPartitioner::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(original.AssignBins(w.base), loaded.value().AssignBins(w.base));
  EXPECT_EQ(loaded.value().ParameterCount(), original.ParameterCount());
  std::remove(path.c_str());
}

TEST(SerializeTest, SaveUntrainedFailsPrecondition) {
  UspTrainConfig config;
  config.num_bins = 4;
  UspPartitioner untrained(config);
  const Status status = untrained.Save(TempPath("untrained.uspm"));
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(SerializeTest, LoadMissingFileIsIoError) {
  auto result = UspPartitioner::Load(TempPath("nope.uspm"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(SerializeTest, LoadGarbageIsInvalidArgument) {
  const std::string path = TempPath("garbage.uspm");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char junk[128] = "definitely not a model";
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);
  auto result = UspPartitioner::Load(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializeTest, LoadTruncatedIsError) {
  // Save a valid model, truncate it, expect a clean IO/argument error — never
  // a crash and never a silently half-loaded model.
  const UspPartitioner original = TrainSmall(UspModelKind::kMlp);
  const std::string path = TempPath("truncated.uspm");
  ASSERT_TRUE(original.Save(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(0, truncate(path.c_str(), size / 2));
  auto result = UspPartitioner::Load(path);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().code() == StatusCode::kIoError ||
              result.status().code() == StatusCode::kInvalidArgument)
      << result.status().ToString();
  std::remove(path.c_str());
}

TEST(SerializeTest, LoadTruncatedHeaderIsIoError) {
  // Cut inside the fixed-size header: the first read itself comes up short.
  const UspPartitioner original = TrainSmall(UspModelKind::kMlp);
  const std::string path = TempPath("truncated_header.uspm");
  ASSERT_TRUE(original.Save(path).ok());
  ASSERT_EQ(0, truncate(path.c_str(), 40));
  auto result = UspPartitioner::Load(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError)
      << result.status().ToString();
  std::remove(path.c_str());
}

TEST(SerializeTest, LoadTruncatedTensorDataIsIoError) {
  // Cut a few bytes off the end: header parses, the last tensor record is
  // short.
  const UspPartitioner original = TrainSmall(UspModelKind::kMlp);
  const std::string path = TempPath("truncated_tensor.uspm");
  ASSERT_TRUE(original.Save(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_GT(size, 7);
  ASSERT_EQ(0, truncate(path.c_str(), size - 7));
  auto result = UspPartitioner::Load(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError)
      << result.status().ToString();
  std::remove(path.c_str());
}

TEST(SerializeTest, LoadWrongMagicIsInvalidArgument) {
  // A structurally complete file whose magic bytes are wrong must be rejected
  // as not-a-model, before any tensor data is interpreted.
  const UspPartitioner original = TrainSmall(UspModelKind::kMlp);
  const std::string path = TempPath("wrong_magic.uspm");
  ASSERT_TRUE(original.Save(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  const uint64_t bogus_magic = 0xDEADBEEFDEADBEEFULL;
  ASSERT_EQ(sizeof(bogus_magic),
            std::fwrite(&bogus_magic, 1, sizeof(bogus_magic), f));
  std::fclose(f);
  auto result = UspPartitioner::Load(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument)
      << result.status().ToString();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace usp
