// Tests for persistence: a saved-and-reloaded partitioner must behave
// identically to the original (including batch-norm running statistics); every
// index type must round-trip through the container format (docs/FORMAT.md)
// with bit-identical search results under both the streaming and the
// zero-copy mmap loader; and malformed inputs must fail with clear Status
// codes, never crash.
#include <cstdint>
#include <cstdio>
#include <unistd.h>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "baselines/kmeans.h"
#include "core/ensemble.h"
#include "core/partition_index.h"
#include "core/partitioner.h"
#include "dataset/workload.h"
#include "hnsw/hnsw.h"
#include "index/container.h"
#include "index/serialize.h"
#include "ivf/ivf.h"
#include "quant/scann_index.h"
#include "quant/sq8_index.h"

namespace usp {
namespace {

const Workload& SerializeWorkload() {
  static const Workload* w = [] {
    WorkloadSpec spec;
    spec.kind = WorkloadKind::kGaussian;
    spec.num_base = 800;
    spec.num_queries = 60;
    spec.gt_k = 10;
    spec.knn_k = 8;
    spec.seed = 91;
    return new Workload(MakeWorkload(spec));
  }();
  return *w;
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

UspPartitioner TrainSmall(UspModelKind kind) {
  UspTrainConfig config;
  config.num_bins = 8;
  config.model = kind;
  config.eta = 8.0f;
  config.epochs = 10;
  config.batch_size = 256;
  config.hidden_dim = 32;
  config.seed = 17;
  UspPartitioner partitioner(config);
  const Workload& w = SerializeWorkload();
  partitioner.Train(w.base, w.knn_matrix);
  return partitioner;
}

TEST(SerializeTest, MlpRoundTripScoresIdentically) {
  const Workload& w = SerializeWorkload();
  const UspPartitioner original = TrainSmall(UspModelKind::kMlp);
  const std::string path = TempPath("model.uspm");
  ASSERT_TRUE(original.Save(path).ok());

  auto loaded = UspPartitioner::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Matrix a = original.ScoreBins(w.queries);
  const Matrix b = loaded.value().ScoreBins(w.queries);
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.data()[i], b.data()[i]) << "score mismatch at " << i;
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, ReloadedModelDrivesIdenticalIndex) {
  const Workload& w = SerializeWorkload();
  const UspPartitioner original = TrainSmall(UspModelKind::kMlp);
  const std::string path = TempPath("index_model.uspm");
  ASSERT_TRUE(original.Save(path).ok());
  auto loaded = UspPartitioner::Load(path);
  ASSERT_TRUE(loaded.ok());

  PartitionIndex original_index(&w.base, &original);
  PartitionIndex loaded_index(&w.base, &loaded.value());
  EXPECT_EQ(original_index.assignments(), loaded_index.assignments());
  const auto ra = original_index.SearchBatch(w.queries, 10, 2);
  const auto rb = loaded_index.SearchBatch(w.queries, 10, 2);
  EXPECT_EQ(ra.ids, rb.ids);
  std::remove(path.c_str());
}

TEST(SerializeTest, LogisticRoundTrip) {
  const Workload& w = SerializeWorkload();
  const UspPartitioner original = TrainSmall(UspModelKind::kLogisticRegression);
  const std::string path = TempPath("logistic.uspm");
  ASSERT_TRUE(original.Save(path).ok());
  auto loaded = UspPartitioner::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(original.AssignBins(w.base), loaded.value().AssignBins(w.base));
  EXPECT_EQ(loaded.value().ParameterCount(), original.ParameterCount());
  std::remove(path.c_str());
}

TEST(SerializeTest, SaveUntrainedFailsPrecondition) {
  UspTrainConfig config;
  config.num_bins = 4;
  UspPartitioner untrained(config);
  const Status status = untrained.Save(TempPath("untrained.uspm"));
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(SerializeTest, LoadMissingFileIsIoError) {
  auto result = UspPartitioner::Load(TempPath("nope.uspm"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(SerializeTest, LoadGarbageIsInvalidArgument) {
  const std::string path = TempPath("garbage.uspm");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char junk[128] = "definitely not a model";
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);
  auto result = UspPartitioner::Load(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializeTest, LoadTruncatedIsError) {
  // Save a valid model, truncate it, expect a clean IO/argument error — never
  // a crash and never a silently half-loaded model.
  const UspPartitioner original = TrainSmall(UspModelKind::kMlp);
  const std::string path = TempPath("truncated.uspm");
  ASSERT_TRUE(original.Save(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(0, truncate(path.c_str(), size / 2));
  auto result = UspPartitioner::Load(path);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().code() == StatusCode::kIoError ||
              result.status().code() == StatusCode::kInvalidArgument)
      << result.status().ToString();
  std::remove(path.c_str());
}

TEST(SerializeTest, LoadTruncatedHeaderIsIoError) {
  // Cut inside the fixed-size header: the first read itself comes up short.
  const UspPartitioner original = TrainSmall(UspModelKind::kMlp);
  const std::string path = TempPath("truncated_header.uspm");
  ASSERT_TRUE(original.Save(path).ok());
  ASSERT_EQ(0, truncate(path.c_str(), 40));
  auto result = UspPartitioner::Load(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError)
      << result.status().ToString();
  std::remove(path.c_str());
}

TEST(SerializeTest, LoadTruncatedTensorDataIsIoError) {
  // Cut a few bytes off the end: header parses, the last tensor record is
  // short.
  const UspPartitioner original = TrainSmall(UspModelKind::kMlp);
  const std::string path = TempPath("truncated_tensor.uspm");
  ASSERT_TRUE(original.Save(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_GT(size, 7);
  ASSERT_EQ(0, truncate(path.c_str(), size - 7));
  auto result = UspPartitioner::Load(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError)
      << result.status().ToString();
  std::remove(path.c_str());
}

TEST(SerializeTest, LoadWrongMagicIsInvalidArgument) {
  // A structurally complete file whose magic bytes are wrong must be rejected
  // as not-a-model, before any tensor data is interpreted.
  const UspPartitioner original = TrainSmall(UspModelKind::kMlp);
  const std::string path = TempPath("wrong_magic.uspm");
  ASSERT_TRUE(original.Save(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  const uint64_t bogus_magic = 0xDEADBEEFDEADBEEFULL;
  ASSERT_EQ(sizeof(bogus_magic),
            std::fwrite(&bogus_magic, 1, sizeof(bogus_magic), f));
  std::fclose(f);
  auto result = UspPartitioner::Load(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument)
      << result.status().ToString();
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Container format: save -> LoadIndex / MmapIndex round trips for every index
// type, with bit-identical search results, plus corruption rejection.
// ---------------------------------------------------------------------------

// Compares SearchBatch outputs element-wise (ids and candidate counts).
void ExpectSameResults(const Index& original, const Index& reopened,
                       const Matrix& queries, size_t k, size_t budget,
                       const std::string& label) {
  const BatchSearchResult a = original.SearchBatch(queries, k, budget);
  const BatchSearchResult b = reopened.SearchBatch(queries, k, budget);
  ASSERT_EQ(a.ids.size(), b.ids.size()) << label;
  EXPECT_EQ(a.ids, b.ids) << label;
  EXPECT_EQ(a.candidate_counts, b.candidate_counts) << label;
}

// Saves `index`, reopens it through both loaders, and checks searches are
// bit-identical to the in-memory original in both modes, and that interface
// metadata survives.
void ExpectRoundTrip(const Index& index, const Matrix& queries, size_t k,
                     size_t budget, const std::string& name) {
  const std::string path = TempPath(name + ".uspidx");
  ASSERT_TRUE(SaveIndex(index, path).ok());

  auto heap = LoadIndex(path);
  ASSERT_TRUE(heap.ok()) << heap.status().ToString();
  auto mapped = MmapIndex(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();

  for (const auto* reopened : {&heap, &mapped}) {
    const Index& loaded = *reopened->value();
    EXPECT_EQ(loaded.type(), index.type());
    EXPECT_EQ(loaded.dim(), index.dim());
    EXPECT_EQ(loaded.size(), index.size());
    EXPECT_EQ(loaded.metric(), index.metric());
    EXPECT_EQ(loaded.underlying().type(), index.type());
  }
  ExpectSameResults(index, *heap.value(), queries, k, budget, name + "/heap");
  ExpectSameResults(index, *mapped.value(), queries, k, budget,
                    name + "/mmap");

  // Single-query path agrees with the batch path on the loaded index.
  std::vector<uint32_t> single =
      mapped.value()->Search(queries.Row(0), k, budget);
  const BatchSearchResult batch = index.SearchBatch(queries, k, budget);
  ASSERT_LE(single.size(), k);
  for (size_t j = 0; j < single.size(); ++j) {
    EXPECT_EQ(single[j], batch.Row(0)[j]) << name;
  }

  // A loaded index can be re-saved: the save path reads through underlying().
  const std::string resaved = TempPath(name + "_resaved.uspidx");
  ASSERT_TRUE(SaveIndex(*mapped.value(), resaved).ok()) << name;
  auto reopened = LoadIndex(resaved);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ExpectSameResults(index, *reopened.value(), queries, k, budget,
                    name + "/resaved");
  std::remove(resaved.c_str());
  std::remove(path.c_str());
}

TEST(IndexContainerTest, PartitionIndexWithUspScorerRoundTrips) {
  const Workload& w = SerializeWorkload();
  const UspPartitioner scorer = TrainSmall(UspModelKind::kMlp);
  PartitionIndex index(&w.base, &scorer);
  ExpectRoundTrip(index, w.queries, 10, 3, "partition_usp");
}

TEST(IndexContainerTest, PartitionIndexWithKMeansScorerRoundTrips) {
  const Workload& w = SerializeWorkload();
  KMeansConfig kc;
  kc.num_clusters = 8;
  kc.seed = 5;
  const KMeansPartitioner scorer(w.base, kc);
  PartitionIndex index(&w.base, &scorer);
  ExpectRoundTrip(index, w.queries, 10, 3, "partition_kmeans");
}

TEST(IndexContainerTest, PartitionIndexCosineRoundTrips) {
  // Cosine stresses the no-renormalization contract of
  // KMeansPartitioner::FromTrainedCentroids: a second normalization pass on
  // reload would drift the stored unit centroids by an ulp.
  const Workload& w = SerializeWorkload();
  KMeansConfig kc;
  kc.num_clusters = 8;
  kc.seed = 5;
  const KMeansResult km = RunKMeans(w.base, kc);
  const KMeansPartitioner scorer(km.centroids.Clone(), Metric::kCosine);
  PartitionIndex index(&w.base, &scorer, Metric::kCosine);
  ExpectRoundTrip(index, w.queries, 10, 3, "partition_cosine");
}

TEST(IndexContainerTest, IvfFlatRoundTripsUnderEveryMetric) {
  const Workload& w = SerializeWorkload();
  for (const Metric metric :
       {Metric::kSquaredL2, Metric::kInnerProduct, Metric::kCosine}) {
    IvfConfig config;
    config.nlist = 16;
    config.seed = 3;
    config.metric = metric;
    IvfFlatIndex index(&w.base, config);
    ExpectRoundTrip(index, w.queries, 10, 4,
                    std::string("ivf_flat_") + MetricName(metric));
  }
}

TEST(IndexContainerTest, IvfPqRoundTripsUnderEveryMetric) {
  // codebook_size = 16 also exercises the kPqPackedCodes fast-scan section.
  const Workload& w = SerializeWorkload();
  for (const Metric metric :
       {Metric::kSquaredL2, Metric::kInnerProduct, Metric::kCosine}) {
    IvfConfig config;
    config.nlist = 16;
    config.seed = 3;
    config.metric = metric;
    config.pq.num_subspaces = 4;
    config.pq.codebook_size = 16;
    config.rerank_budget = 50;
    IvfPqIndex index(&w.base, config);
    ExpectRoundTrip(index, w.queries, 10, 4,
                    std::string("ivf_pq_") + MetricName(metric));
  }
}

TEST(IndexContainerTest, IvfPqWideCodebookRoundTripsWithoutPackedSection) {
  // codebook_size > 16 has no fast-scan form: the container must omit
  // kPqPackedCodes and still round-trip through the float ADC path.
  const Workload& w = SerializeWorkload();
  IvfConfig config;
  config.nlist = 16;
  config.seed = 3;
  config.pq.num_subspaces = 4;
  config.pq.codebook_size = 32;
  config.rerank_budget = 50;
  IvfPqIndex index(&w.base, config);
  EXPECT_FALSE(index.scann().has_fast_scan());
  ExpectRoundTrip(index, w.queries, 10, 4, "ivf_pq_wide");

  const std::string path = TempPath("ivf_pq_wide_section.uspidx");
  ASSERT_TRUE(SaveIndex(index, path).ok());
  auto container = ContainerReader::OpenMmap(path);
  ASSERT_TRUE(container.ok());
  EXPECT_FALSE(container.value()->Has(SectionTag::kPqPackedCodes, 0));
  std::remove(path.c_str());
}

TEST(IndexContainerTest, PackedCodesSectionIsSavedAndAdoptedOnLoad) {
  const Workload& w = SerializeWorkload();
  IvfConfig config;
  config.nlist = 16;
  config.seed = 3;
  config.pq.num_subspaces = 4;
  config.pq.codebook_size = 16;
  IvfPqIndex index(&w.base, config);
  ASSERT_TRUE(index.scann().has_fast_scan());

  const std::string path = TempPath("ivf_pq_packed.uspidx");
  ASSERT_TRUE(SaveIndex(index, path).ok());
  auto container = ContainerReader::OpenMmap(path);
  ASSERT_TRUE(container.ok());
  EXPECT_TRUE(container.value()->Has(SectionTag::kPqPackedCodes, 0));

  // A mapped load serves the saved blocks zero-copy; the loaded index still
  // fast-scans and answers identically (covered by the round-trip test, but
  // pin the fast-scan state explicitly here).
  auto mapped = MmapIndex(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  const auto& loaded =
      static_cast<const IvfPqIndex&>(mapped.value()->underlying());
  EXPECT_TRUE(loaded.scann().has_fast_scan());
  EXPECT_EQ(loaded.scann().PackedBytes(), index.scann().PackedBytes());
  std::remove(path.c_str());
}

TEST(IndexContainerTest, Sq8RoundTripsUnderEveryMetric) {
  const Workload& w = SerializeWorkload();
  for (const Metric metric :
       {Metric::kSquaredL2, Metric::kInnerProduct, Metric::kCosine}) {
    Sq8IndexConfig config;
    config.metric = metric;
    config.rerank_budget = 40;
    Sq8Index index(&w.base, config);
    ExpectRoundTrip(index, w.queries, 10, 1,
                    std::string("sq8_") + MetricName(metric));
  }
}

TEST(IndexContainerTest, ScannWithPartitionRoundTrips) {
  const Workload& w = SerializeWorkload();
  const UspPartitioner scorer = TrainSmall(UspModelKind::kLogisticRegression);
  PqConfig pc;
  pc.num_subspaces = 4;
  pc.codebook_size = 16;
  pc.anisotropic_eta = 2.0f;
  ProductQuantizer pq(pc);
  pq.Train(w.base);
  ScannIndexConfig sc;
  sc.rerank_budget = 40;
  ScannIndex index(&w.base, &scorer, std::move(pq), sc);
  ExpectRoundTrip(index, w.queries, 10, 3, "scann_partitioned");
}

TEST(IndexContainerTest, ScannWithoutPartitionRoundTrips) {
  const Workload& w = SerializeWorkload();
  PqConfig pc;
  pc.num_subspaces = 4;
  pc.codebook_size = 16;
  ProductQuantizer pq(pc);
  pq.Train(w.base);
  ScannIndex index(&w.base, nullptr, std::move(pq), ScannIndexConfig{});
  ExpectRoundTrip(index, w.queries, 10, 1, "scann_flat");
}

TEST(IndexContainerTest, HnswRoundTrips) {
  const Workload& w = SerializeWorkload();
  HnswConfig config;
  config.max_neighbors = 8;
  config.ef_construction = 40;
  HnswIndex index(config);
  index.Build(w.base);
  ExpectRoundTrip(index, w.queries, 10, 30, "hnsw");
}

TEST(IndexContainerTest, EnsembleRoundTrips) {
  const Workload& w = SerializeWorkload();
  UspEnsembleConfig config;
  config.num_models = 2;
  config.model.num_bins = 8;
  config.model.epochs = 6;
  config.model.hidden_dim = 16;
  config.model.seed = 11;
  UspEnsemble ensemble(config);
  ensemble.Train(w.base, w.knn_matrix);
  ExpectRoundTrip(ensemble, w.queries, 10, 2, "ensemble");

  // Union combining survives the round trip too (stored in the config
  // record, not implied by the default).
  config.combine = EnsembleCombine::kUnion;
  UspEnsemble union_ensemble(config);
  union_ensemble.Train(w.base, w.knn_matrix);
  ExpectRoundTrip(union_ensemble, w.queries, 10, 2, "ensemble_union");
}

TEST(IndexContainerTest, RegistryCoversEveryType) {
  EXPECT_EQ(IndexLoaderRegistry().size(), 9u);
  for (const IndexLoaderEntry& entry : IndexLoaderRegistry()) {
    EXPECT_EQ(FindIndexLoader(static_cast<uint32_t>(entry.type)), &entry);
    EXPECT_STREQ(IndexTypeName(entry.type), entry.name);
  }
  EXPECT_EQ(FindIndexLoader(0), nullptr);
  EXPECT_EQ(FindIndexLoader(999), nullptr);
}

TEST(IndexContainerTest, SaveRejectsUnserializableScorer) {
  // A scorer type with no on-disk representation must be rejected with a
  // Status, not silently written as garbage.
  class OddEvenScorer : public BinScorer {
   public:
    size_t num_bins() const override { return 2; }
    Matrix ScoreBins(MatrixView points) const override {
      Matrix scores(points.rows(), 2);
      for (size_t i = 0; i < points.rows(); ++i) {
        scores(i, i % 2) = 1.0f;
      }
      return scores;
    }
  };
  const Workload& w = SerializeWorkload();
  OddEvenScorer scorer;
  PartitionIndex index(&w.base, &scorer);
  const Status status = SaveIndex(index, TempPath("odd_even.uspidx"));
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(IndexContainerTest, IvfPqValidateConfigAcceptsAllMetrics) {
  // The dot-ADC tables lifted the historical L2-only restriction: every
  // metric validates; only malformed shape parameters are rejected.
  IvfConfig config;
  config.metric = Metric::kInnerProduct;
  EXPECT_TRUE(IvfPqIndex::ValidateConfig(config).ok());
  config.metric = Metric::kCosine;
  EXPECT_TRUE(IvfPqIndex::ValidateConfig(config).ok());
  config.metric = Metric::kSquaredL2;
  EXPECT_TRUE(IvfPqIndex::ValidateConfig(config).ok());
  config.pq.codebook_size = 300;  // does not fit a one-byte code
  EXPECT_EQ(IvfPqIndex::ValidateConfig(config).code(),
            StatusCode::kInvalidArgument);
  config.pq.codebook_size = 16;
  config.nlist = 0;
  EXPECT_EQ(IvfPqIndex::ValidateConfig(config).code(),
            StatusCode::kInvalidArgument);
}

// Writes a small valid container and returns its path.
std::string WriteValidContainer(const std::string& name) {
  const Workload& w = SerializeWorkload();
  KMeansConfig kc;
  kc.num_clusters = 8;
  kc.seed = 5;
  static const KMeansPartitioner* scorer =
      new KMeansPartitioner(SerializeWorkload().base, kc);
  PartitionIndex index(&w.base, scorer);
  const std::string path = TempPath(name);
  EXPECT_TRUE(SaveIndex(index, path).ok());
  return path;
}

void PatchFile(const std::string& path, long offset, uint32_t value) {
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(0, std::fseek(f, offset, SEEK_SET));
  ASSERT_EQ(sizeof(value), std::fwrite(&value, 1, sizeof(value), f));
  std::fclose(f);
}

TEST(IndexContainerTest, OpenMissingFileIsIoError) {
  for (const LoadMode mode : {LoadMode::kHeap, LoadMode::kMmap}) {
    auto result = OpenIndex(TempPath("does_not_exist.uspidx"), mode);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  }
}

TEST(IndexContainerTest, OpenGarbageIsInvalidArgument) {
  const std::string path = TempPath("garbage.uspidx");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char junk[256] = "not a container at all";
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);
  for (const LoadMode mode : {LoadMode::kHeap, LoadMode::kMmap}) {
    auto result = OpenIndex(path, mode);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
  std::remove(path.c_str());
}

TEST(IndexContainerTest, TruncatedContainerIsRejectedEverywhere) {
  // Chop the file at many depths: the header file_size check must catch every
  // one of them with a Status, never a crash or an out-of-bounds read.
  const std::string path = WriteValidContainer("truncate_sweep.uspidx");
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long full = std::ftell(f);
  std::fclose(f);
  for (const long cut : {4L, 32L, 63L, 64L, 200L, full / 2, full - 1}) {
    ASSERT_LT(cut, full);
    const std::string copy = TempPath("truncated_cut.uspidx");
    std::FILE* in = std::fopen(path.c_str(), "rb");
    std::FILE* out = std::fopen(copy.c_str(), "wb");
    ASSERT_NE(in, nullptr);
    ASSERT_NE(out, nullptr);
    std::vector<char> buffer(cut);
    ASSERT_EQ(static_cast<size_t>(cut),
              std::fread(buffer.data(), 1, cut, in));
    ASSERT_EQ(static_cast<size_t>(cut),
              std::fwrite(buffer.data(), 1, cut, out));
    std::fclose(in);
    std::fclose(out);
    for (const LoadMode mode : {LoadMode::kHeap, LoadMode::kMmap}) {
      auto result = OpenIndex(copy, mode);
      ASSERT_FALSE(result.ok()) << "cut at " << cut;
      EXPECT_TRUE(result.status().code() == StatusCode::kIoError ||
                  result.status().code() == StatusCode::kInvalidArgument)
          << "cut at " << cut << ": " << result.status().ToString();
    }
    std::remove(copy.c_str());
  }
  std::remove(path.c_str());
}

TEST(IndexContainerTest, TrailingGarbageIsRejected) {
  const std::string path = WriteValidContainer("padded.uspidx");
  std::FILE* f = std::fopen(path.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  const char extra[16] = {};
  std::fwrite(extra, 1, sizeof(extra), f);
  std::fclose(f);
  auto result = LoadIndex(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(IndexContainerTest, WrongVersionIsInvalidArgument) {
  const std::string path = WriteValidContainer("skewed_version.uspidx");
  PatchFile(path, 8, 999);  // header.version
  for (const LoadMode mode : {LoadMode::kHeap, LoadMode::kMmap}) {
    auto result = OpenIndex(path, mode);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(result.status().message().find("version"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(IndexContainerTest, UnknownTypeTagIsInvalidArgument) {
  const std::string path = WriteValidContainer("unknown_type.uspidx");
  PatchFile(path, 12, 77);  // header.index_type
  auto result = LoadIndex(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("type tag"), std::string::npos);
  std::remove(path.c_str());
}

TEST(IndexContainerTest, UnknownMetricIsInvalidArgument) {
  const std::string path = WriteValidContainer("bad_metric.uspidx");
  PatchFile(path, 16, 9);  // header.metric
  auto result = LoadIndex(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

void PatchFile64(const std::string& path, long offset, uint64_t value) {
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(0, std::fseek(f, offset, SEEK_SET));
  ASSERT_EQ(sizeof(value), std::fwrite(&value, 1, sizeof(value), f));
  std::fclose(f);
}

// Locates a section's payload offset through the public reader API so the
// corruption tests don't hard-code the save-side section order.
long SectionOffset(const std::string& path, SectionTag tag) {
  auto reader = ContainerReader::OpenFile(path);
  EXPECT_TRUE(reader.ok());
  auto entry = reader.value()->Find(tag, 0);
  EXPECT_TRUE(entry.ok());
  return static_cast<long>(entry.value().offset);
}

TEST(IndexContainerTest, CorruptNlistIsStatusNotBadAlloc) {
  // A patched shape field must never drive an allocation: the loader checks
  // the stored section size against the shape before allocating.
  const Workload& w = SerializeWorkload();
  IvfConfig config;
  config.nlist = 16;
  IvfFlatIndex index(&w.base, config);
  const std::string path = TempPath("huge_nlist.uspidx");
  ASSERT_TRUE(SaveIndex(index, path).ok());
  // IvfFlatConfigRecord.nlist is the first field of the config payload.
  PatchFile64(path, SectionOffset(path, SectionTag::kConfig), 1ULL << 40);
  for (const LoadMode mode : {LoadMode::kHeap, LoadMode::kMmap}) {
    auto result = OpenIndex(path, mode);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
  std::remove(path.c_str());
}

TEST(IndexContainerTest, CorruptEmbeddedModelHeaderIsStatusNotBadAlloc) {
  const Workload& w = SerializeWorkload();
  const UspPartitioner scorer = TrainSmall(UspModelKind::kMlp);
  PartitionIndex index(&w.base, &scorer);
  const std::string path = TempPath("huge_hidden.uspidx");
  ASSERT_TRUE(SaveIndex(index, path).ok());
  // The embedded model record stores hidden_dim as header word 4 (byte 32).
  PatchFile64(path, SectionOffset(path, SectionTag::kUspModel) + 32,
              1ULL << 40);
  for (const LoadMode mode : {LoadMode::kHeap, LoadMode::kMmap}) {
    auto result = OpenIndex(path, mode);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
  std::remove(path.c_str());
}

TEST(IndexContainerTest, MisalignedSectionOffsetIsInvalidArgument) {
  const std::string path = WriteValidContainer("misaligned.uspidx");
  // First section-table entry: tag(4) + ordinal(4), then offset at 64 + 8.
  PatchFile(path, 64 + 8, 65);
  auto result = LoadIndex(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace usp
