// Pins BuildMultiLabelBinTargets (core/loss.h) and its plumbing through
// Neural LSH training (NeuralLshConfig::label_top_m):
//
//   - top_m == 0 reproduces the historical one-hot rows bit for bit (the
//     default path existing models train on must be unchanged).
//   - top_m > 0 rows are normalized histograms over the point's own bin plus
//     its first top_m k-NN-graph neighbors' bins; rows always sum to 1.
//   - top_m is capped at the graph's k.
//   - A NeuralLsh trained with label_top_m > 0 still produces balanced
//     labels, valid probability rows, and a working partition index.
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/loss.h"
#include "core/partition_index.h"
#include "dataset/workload.h"
#include "graphpart/neural_lsh.h"

namespace usp {
namespace {

TEST(MultiLabelTargetsTest, TopMZeroIsOneHotBitwise) {
  const std::vector<uint32_t> labels = {2, 0, 1, 1, 3};
  const std::vector<uint32_t> ids = {4, 0, 2};
  const Matrix targets =
      BuildMultiLabelBinTargets(labels, ids, /*knn_indices=*/nullptr,
                                /*knn_k=*/0, /*top_m=*/0, /*num_bins=*/4);
  ASSERT_EQ(targets.rows(), ids.size());
  ASSERT_EQ(targets.cols(), 4u);
  for (size_t i = 0; i < ids.size(); ++i) {
    for (size_t b = 0; b < 4; ++b) {
      EXPECT_EQ(targets(i, b), b == labels[ids[i]] ? 1.0f : 0.0f);
    }
  }
}

TEST(MultiLabelTargetsTest, HistogramOverOwnAndNeighborBins) {
  // 4 points, k = 2 neighbors each, 3 bins.
  const std::vector<uint32_t> labels = {0, 1, 2, 0};
  const std::vector<uint32_t> knn = {1, 2,   // point 0 -> bins {1, 2}
                                     0, 3,   // point 1 -> bins {0, 0}
                                     3, 1,   // point 2 -> bins {0, 1}
                                     2, 1};  // point 3 -> bins {2, 1}
  const std::vector<uint32_t> ids = {0, 1, 2, 3};
  const Matrix targets = BuildMultiLabelBinTargets(labels, ids, knn.data(),
                                                   /*knn_k=*/2, /*top_m=*/2,
                                                   /*num_bins=*/3);
  const float third = 1.0f / 3.0f;
  // Point 0: own bin 0 + neighbor bins {1, 2} -> uniform thirds.
  EXPECT_EQ(targets(0, 0), third);
  EXPECT_EQ(targets(0, 1), third);
  EXPECT_EQ(targets(0, 2), third);
  // Point 1: own bin 1 + neighbor bins {0, 0} -> 2/3 mass on bin 0.
  EXPECT_EQ(targets(1, 0), 2 * third);
  EXPECT_EQ(targets(1, 1), third);
  EXPECT_EQ(targets(1, 2), 0.0f);
  // Rows sum to 1 (exact float sums of thirds wobble; allow 1 ulp-ish).
  for (size_t i = 0; i < 4; ++i) {
    float sum = 0.0f;
    for (size_t b = 0; b < 3; ++b) sum += targets(i, b);
    EXPECT_NEAR(sum, 1.0f, 1e-6f);
  }
}

TEST(MultiLabelTargetsTest, TopMCappedAtGraphK) {
  const std::vector<uint32_t> labels = {0, 1};
  const std::vector<uint32_t> knn = {1, 0};  // k = 1
  const std::vector<uint32_t> ids = {0};
  // top_m = 10 with k = 1 uses just the single neighbor: halves.
  const Matrix targets = BuildMultiLabelBinTargets(labels, ids, knn.data(),
                                                   /*knn_k=*/1, /*top_m=*/10,
                                                   /*num_bins=*/2);
  EXPECT_EQ(targets(0, 0), 0.5f);
  EXPECT_EQ(targets(0, 1), 0.5f);
}

TEST(MultiLabelTargetsTest, NeuralLshTrainsWithMultiLabelTargets) {
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kGaussian;
  spec.num_base = 1000;
  spec.num_queries = 60;
  spec.gt_k = 10;
  spec.knn_k = 10;
  spec.seed = 13;
  const Workload w = MakeWorkload(spec);

  NeuralLshConfig config;
  config.num_bins = 8;
  config.hidden_dim = 64;
  config.epochs = 40;
  config.batch_size = 128;
  config.seed = 2;
  config.label_top_m = 3;
  NeuralLsh nlsh(config);
  nlsh.Train(w.base, w.knn_matrix);

  // Stage-1 labels are unaffected by the target softening and stay balanced.
  std::vector<size_t> sizes(8, 0);
  for (uint32_t l : nlsh.training_labels()) ++sizes[l];
  for (size_t s : sizes) EXPECT_GT(s, 60u);

  // ScoreBins rows are valid distributions.
  const Matrix probs = nlsh.ScoreBins(w.queries);
  for (size_t q = 0; q < w.queries.rows(); ++q) {
    float sum = 0.0f;
    for (size_t b = 0; b < 8; ++b) {
      EXPECT_GE(probs(q, b), 0.0f);
      sum += probs(q, b);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-4f);
  }

  // The soft-labeled router still beats random routing at 1 probe.
  PartitionIndex index(&w.base, &nlsh);
  const auto result = index.SearchBatch(w.queries, 10, 1);
  EXPECT_GT(KnnAccuracy(result, w.ground_truth.indices, w.ground_truth.k),
            0.4);
}

}  // namespace
}  // namespace usp
