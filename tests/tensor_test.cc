// Tests for tensor/: Matrix container semantics and the parallel kernels
// (GEMM family, distances, softmax, column top-k) against naive references.
#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "tensor/matrix.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace usp {
namespace {

Matrix NaiveGemm(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < b.cols(); ++j) {
      double acc = 0.0;
      for (size_t p = 0; p < a.cols(); ++p) acc += a(i, p) * b(p, j);
      c(i, j) = static_cast<float>(acc);
    }
  }
  return c;
}

TEST(MatrixTest, ConstructsZeroed) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  for (size_t i = 0; i < m.size(); ++i) EXPECT_EQ(m.data()[i], 0.0f);
}

TEST(MatrixTest, CloneIsDeep) {
  Matrix m(2, 2);
  m(0, 0) = 1.0f;
  Matrix c = m.Clone();
  c(0, 0) = 5.0f;
  EXPECT_EQ(m(0, 0), 1.0f);
  EXPECT_EQ(c(0, 0), 5.0f);
}

TEST(MatrixTest, GatherRowsSelectsAndOrders) {
  Matrix m(4, 2);
  for (size_t i = 0; i < 4; ++i) {
    m(i, 0) = static_cast<float>(i);
    m(i, 1) = static_cast<float>(10 * i);
  }
  const Matrix g = m.GatherRows({3, 1});
  EXPECT_EQ(g.rows(), 2u);
  EXPECT_EQ(g(0, 0), 3.0f);
  EXPECT_EQ(g(1, 1), 10.0f);
}

TEST(MatrixTest, FillSetsEveryEntry) {
  Matrix m(3, 3);
  m.Fill(2.5f);
  for (size_t i = 0; i < m.size(); ++i) EXPECT_EQ(m.data()[i], 2.5f);
}

TEST(MatrixTest, RandomGaussianMoments) {
  Rng rng(1);
  Matrix m = Matrix::RandomGaussian(200, 50, &rng, 1.0f, 2.0f);
  double sum = 0.0, sq = 0.0;
  for (size_t i = 0; i < m.size(); ++i) {
    sum += m.data()[i];
    sq += m.data()[i] * m.data()[i];
  }
  const double mean = sum / m.size();
  const double var = sq / m.size() - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

class GemmShapeTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmShapeTest, MatchesNaiveReference) {
  const auto [n, k, m] = GetParam();
  Rng rng(n * 131 + k * 17 + m);
  const Matrix a = Matrix::RandomGaussian(n, k, &rng);
  const Matrix b = Matrix::RandomGaussian(k, m, &rng);
  Matrix c(n, m);
  Gemm(a, b, &c);
  const Matrix expected = NaiveGemm(a, b);
  for (size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c.data()[i], expected.data()[i], 1e-3f) << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapeTest,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(3, 5, 2),
                      std::make_tuple(17, 8, 31), std::make_tuple(64, 33, 20),
                      std::make_tuple(128, 16, 1), std::make_tuple(2, 100, 2)));

TEST(GemmTest, TransposedBMatchesExplicitTranspose) {
  Rng rng(5);
  const Matrix a = Matrix::RandomGaussian(7, 12, &rng);
  const Matrix b = Matrix::RandomGaussian(9, 12, &rng);  // (m x k)
  Matrix bt(12, 9);
  for (size_t i = 0; i < 9; ++i) {
    for (size_t j = 0; j < 12; ++j) bt(j, i) = b(i, j);
  }
  Matrix c(7, 9);
  GemmTransposedB(a, b, &c);
  const Matrix expected = NaiveGemm(a, bt);
  for (size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c.data()[i], expected.data()[i], 1e-3f);
  }
}

TEST(GemmTest, TransposedAMatchesExplicitTranspose) {
  Rng rng(6);
  const Matrix a = Matrix::RandomGaussian(12, 7, &rng);  // (k x n)
  const Matrix b = Matrix::RandomGaussian(12, 9, &rng);  // (k x m)
  Matrix at(7, 12);
  for (size_t i = 0; i < 12; ++i) {
    for (size_t j = 0; j < 7; ++j) at(j, i) = a(i, j);
  }
  Matrix c(7, 9);
  GemmTransposedA(a, b, &c);
  const Matrix expected = NaiveGemm(at, b);
  for (size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c.data()[i], expected.data()[i], 1e-3f);
  }
}

TEST(DistanceTest, PairwiseMatchesDirect) {
  Rng rng(7);
  const Matrix a = Matrix::RandomGaussian(11, 16, &rng);
  const Matrix b = Matrix::RandomGaussian(13, 16, &rng);
  Matrix dist(11, 13);
  PairwiseSquaredDistances(a, b, &dist);
  for (size_t i = 0; i < 11; ++i) {
    for (size_t j = 0; j < 13; ++j) {
      EXPECT_NEAR(dist(i, j), SquaredDistance(a.Row(i), b.Row(j), 16), 1e-2f);
    }
  }
}

TEST(DistanceTest, NonNegativeEvenWithCancellation) {
  // Identical points: |a|^2 + |b|^2 - 2ab can go slightly negative in float.
  Matrix a(1, 8), b(1, 8);
  for (size_t j = 0; j < 8; ++j) a(0, j) = b(0, j) = 1e3f + float(j) * 0.1f;
  Matrix dist(1, 1);
  PairwiseSquaredDistances(a, b, &dist);
  EXPECT_GE(dist(0, 0), 0.0f);
  EXPECT_LT(dist(0, 0), 1.0f);
}

TEST(DistanceTest, DotHandlesTailLengths) {
  // Exercises the 4-way unrolled loop remainder handling.
  for (size_t d = 1; d <= 9; ++d) {
    std::vector<float> x(d, 2.0f), y(d, 3.0f);
    EXPECT_FLOAT_EQ(Dot(x.data(), y.data(), d), 6.0f * d);
  }
}

TEST(SoftmaxTest, RowsSumToOne) {
  Rng rng(8);
  Matrix m = Matrix::RandomGaussian(10, 6, &rng, 0.0f, 5.0f);
  SoftmaxRows(&m);
  for (size_t i = 0; i < 10; ++i) {
    float sum = 0.0f;
    for (size_t j = 0; j < 6; ++j) {
      EXPECT_GT(m(i, j), 0.0f);
      sum += m(i, j);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(SoftmaxTest, StableUnderLargeLogits) {
  Matrix m(1, 3);
  m(0, 0) = 1000.0f;
  m(0, 1) = 999.0f;
  m(0, 2) = -1000.0f;
  SoftmaxRows(&m);
  EXPECT_TRUE(std::isfinite(m(0, 0)));
  EXPECT_GT(m(0, 0), m(0, 1));
  EXPECT_NEAR(m(0, 0) + m(0, 1) + m(0, 2), 1.0f, 1e-5f);
}

TEST(SoftmaxTest, LogSoftmaxMatchesLogOfSoftmax) {
  Rng rng(9);
  const Matrix logits = Matrix::RandomGaussian(5, 7, &rng, 0.0f, 3.0f);
  Matrix log_probs(5, 7);
  LogSoftmaxRows(logits, &log_probs);
  Matrix probs = logits.Clone();
  SoftmaxRows(&probs);
  for (size_t i = 0; i < probs.size(); ++i) {
    EXPECT_NEAR(log_probs.data()[i], std::log(probs.data()[i]), 1e-4f);
  }
}

TEST(ArgmaxTest, FindsRowMaxima) {
  Matrix m(2, 4);
  m(0, 2) = 5.0f;
  m(1, 0) = 3.0f;
  const auto arg = ArgmaxRows(m);
  EXPECT_EQ(arg[0], 2u);
  EXPECT_EQ(arg[1], 0u);
}

class ColumnTopKTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ColumnTopKTest, MarksExactlyKLargestPerColumn) {
  const size_t k = GetParam();
  Rng rng(10 + k);
  const Matrix m = Matrix::RandomGaussian(50, 8, &rng);
  const auto mask = ColumnTopKMask(m, k);
  for (size_t j = 0; j < 8; ++j) {
    size_t marked = 0;
    float min_marked = 1e30f, max_unmarked = -1e30f;
    for (size_t i = 0; i < 50; ++i) {
      if (mask[i * 8 + j]) {
        ++marked;
        min_marked = std::min(min_marked, m(i, j));
      } else {
        max_unmarked = std::max(max_unmarked, m(i, j));
      }
    }
    EXPECT_EQ(marked, std::min<size_t>(k, 50));
    if (marked > 0 && marked < 50) {
      EXPECT_GE(min_marked, max_unmarked);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(WindowSizes, ColumnTopKTest,
                         ::testing::Values(1, 3, 10, 49, 50, 80));

TEST(ColumnTopKTest, ZeroKMarksNothing) {
  Matrix m(5, 2);
  const auto mask = ColumnTopKMask(m, 0);
  for (uint8_t v : mask) EXPECT_EQ(v, 0);
}

TEST(MaskedSumTest, SumsOnlyMarked) {
  Matrix m(2, 2);
  m(0, 0) = 1.0f;
  m(0, 1) = 2.0f;
  m(1, 0) = 4.0f;
  m(1, 1) = 8.0f;
  const std::vector<uint8_t> mask = {1, 0, 0, 1};
  EXPECT_DOUBLE_EQ(MaskedSum(m, mask), 9.0);
}

TEST(AxpyTest, AccumulatesScaled) {
  Matrix x(1, 3), y(1, 3);
  for (size_t j = 0; j < 3; ++j) {
    x(0, j) = 1.0f;
    y(0, j) = float(j);
  }
  Axpy(2.0f, x, &y);
  EXPECT_EQ(y(0, 0), 2.0f);
  EXPECT_EQ(y(0, 2), 4.0f);
}

TEST(MeanTest, AveragesAllEntries) {
  Matrix m(2, 2);
  m(0, 0) = 1.0f;
  m(0, 1) = 2.0f;
  m(1, 0) = 3.0f;
  m(1, 1) = 4.0f;
  EXPECT_DOUBLE_EQ(Mean(m), 2.5);
}

TEST(MeanTest, EmptyIsZero) { EXPECT_DOUBLE_EQ(Mean(Matrix()), 0.0); }

}  // namespace
}  // namespace usp
