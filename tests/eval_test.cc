// Tests for eval/: probe sweeps, probe-count schedules and fixed-accuracy
// interpolation (the machinery behind Figs. 5-7 and Table 4).
#include <gtest/gtest.h>

#include "eval/sweep.h"

namespace usp {
namespace {

TEST(DefaultProbeCountsTest, DenseThenSparse) {
  const auto counts = DefaultProbeCounts(16);
  ASSERT_FALSE(counts.empty());
  EXPECT_EQ(counts.front(), 1u);
  EXPECT_EQ(counts.back(), 16u);
  for (size_t i = 1; i < counts.size(); ++i) {
    EXPECT_GT(counts[i], counts[i - 1]);
  }
}

TEST(DefaultProbeCountsTest, SmallMax) {
  const auto counts = DefaultProbeCounts(2);
  EXPECT_EQ(counts, (std::vector<size_t>{1, 2}));
}

TEST(DefaultProbeCountsTest, LargeMaxStaysCompact) {
  const auto counts = DefaultProbeCounts(1024);
  EXPECT_LE(counts.size(), 30u);
  EXPECT_EQ(counts.back(), 1024u);
}

TEST(ProbeSweepTest, CallsSearchPerProbeCount) {
  // Fake searcher: accuracy and candidates grow with probes.
  const std::vector<uint32_t> truth = {0, 1, 2, 3};
  auto search = [](size_t probes) {
    BatchSearchResult result;
    result.k = 2;
    result.candidate_counts = {static_cast<uint32_t>(10 * probes),
                               static_cast<uint32_t>(10 * probes)};
    if (probes >= 2) {
      result.ids = {0, 1, 2, 3};  // perfect
    } else {
      result.ids = {9, 9, 9, 9};  // useless
    }
    return result;
  };
  const auto curve = ProbeSweep(search, {1, 2}, truth, 2);
  ASSERT_EQ(curve.size(), 2u);
  EXPECT_DOUBLE_EQ(curve[0].accuracy, 0.0);
  EXPECT_DOUBLE_EQ(curve[1].accuracy, 1.0);
  EXPECT_DOUBLE_EQ(curve[0].mean_candidates, 10.0);
  EXPECT_DOUBLE_EQ(curve[1].mean_candidates, 20.0);
}

TEST(CandidatesAtAccuracyTest, InterpolatesLinearly) {
  std::vector<SweepPoint> curve = {
      {1, 100.0, 0.5},
      {2, 200.0, 0.9},
  };
  // Target 0.7 is halfway between 0.5 and 0.9 -> 150 candidates.
  EXPECT_NEAR(CandidatesAtAccuracy(curve, 0.7), 150.0, 1e-9);
}

TEST(CandidatesAtAccuracyTest, TargetBelowFirstPoint) {
  std::vector<SweepPoint> curve = {{1, 100.0, 0.5}, {2, 200.0, 0.9}};
  EXPECT_DOUBLE_EQ(CandidatesAtAccuracy(curve, 0.3), 100.0);
}

TEST(CandidatesAtAccuracyTest, UnreachableTargetIsNegative) {
  std::vector<SweepPoint> curve = {{1, 100.0, 0.5}, {2, 200.0, 0.8}};
  EXPECT_LT(CandidatesAtAccuracy(curve, 0.95), 0.0);
}

TEST(CandidatesAtAccuracyTest, FlatSegment) {
  std::vector<SweepPoint> curve = {{1, 100.0, 0.6}, {2, 300.0, 0.6}};
  EXPECT_DOUBLE_EQ(CandidatesAtAccuracy(curve, 0.6), 100.0);
}

}  // namespace
}  // namespace usp
