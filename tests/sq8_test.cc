// Tests for the SQ8 int8 index (quant/sq8_index.h): encode/decode geometry,
// full-budget exactness against brute force under every metric, the recall
// floor at practical rerank budgets, filtered-search exactness, and sealing
// DynamicIndex write segments through Sq8SegmentBuilder.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/partition_index.h"
#include "dataset/workload.h"
#include "index/id_selector.h"
#include "knn/brute_force.h"
#include "quant/sq8_index.h"
#include "serve/dynamic_index.h"

namespace usp {
namespace {

const Workload& Sq8Workload() {
  static const Workload* w = [] {
    WorkloadSpec spec;
    spec.kind = WorkloadKind::kGaussian;
    spec.num_base = 1500;
    spec.num_queries = 60;
    spec.gt_k = 10;
    spec.seed = 55;
    return new Workload(MakeWorkload(spec));
  }();
  return *w;
}

TEST(Sq8Test, EncodeDecodeStaysWithinHalfStep) {
  const Workload& w = Sq8Workload();
  Sq8Index index(&w.base);
  std::vector<uint8_t> code(index.dim());
  std::vector<float> decoded(index.dim());
  for (const size_t row : {0u, 7u, 1499u}) {
    index.EncodeVector(w.base.Row(row), code.data());
    index.DecodeVector(code.data(), decoded.data());
    for (size_t d = 0; d < index.dim(); ++d) {
      // The decoded midpoint sits within half a quantization step of the
      // original (in-range by construction: ranges are trained on the base).
      const float step = index.scales()[d];
      EXPECT_NEAR(decoded[d], w.base.Row(row)[d], step / 2.0f + 1e-6f)
          << "row=" << row << " dim=" << d;
    }
  }
}

TEST(Sq8Test, CodesMatchEncodeVector) {
  const Workload& w = Sq8Workload();
  Sq8Index index(&w.base);
  std::vector<uint8_t> code(index.dim());
  index.EncodeVector(w.base.Row(42), code.data());
  const uint8_t* stored = index.codes() + 42 * index.dim();
  for (size_t d = 0; d < index.dim(); ++d) {
    EXPECT_EQ(stored[d], code[d]) << d;
  }
}

TEST(Sq8Test, FullBudgetIsExactUnderEveryMetric) {
  // With rerank_budget >= size() every row reaches the exact fp32 rerank, so
  // the quantized proxy only orders the shortlist — results must equal brute
  // force exactly.
  const Workload& w = Sq8Workload();
  for (const Metric metric :
       {Metric::kSquaredL2, Metric::kInnerProduct, Metric::kCosine}) {
    Sq8IndexConfig config;
    config.metric = metric;
    config.rerank_budget = w.base.rows();
    Sq8Index index(&w.base, config);
    const auto got = index.SearchBatch(w.queries, 10, 1);
    const KnnResult want = BruteForceKnn(w.base, w.queries, 10, metric);
    EXPECT_EQ(got.ids, want.indices) << MetricName(metric);
  }
}

TEST(Sq8Test, DefaultBudgetRecallFloor) {
  const Workload& w = Sq8Workload();
  for (const Metric metric :
       {Metric::kSquaredL2, Metric::kInnerProduct, Metric::kCosine}) {
    Sq8IndexConfig config;
    config.metric = metric;
    Sq8Index index(&w.base, config);  // rerank_budget = 100
    const KnnResult truth = BruteForceKnn(w.base, w.queries, 10, metric);
    const auto got = index.SearchBatch(w.queries, 10, 1);
    const double recall = KnnAccuracy(got, truth.indices, truth.k);
    // 8-bit codes at 100 reranks over 1500 rows: the proxy scan has to place
    // nearly every true neighbor in the shortlist.
    EXPECT_GE(recall, 0.9) << MetricName(metric) << " recall " << recall;
  }
}

TEST(Sq8Test, FilteredSearchIsExactOverAllowedSubset) {
  const Workload& w = Sq8Workload();
  Sq8IndexConfig config;
  config.rerank_budget = w.base.rows();
  Sq8Index index(&w.base, config);
  IdSelectorRange filter(200, 700);
  SearchRequest request;
  request.queries = w.queries;
  request.options.k = 10;
  request.options.filter = &filter;
  const auto got = index.SearchBatch(request);
  const KnnResult want =
      BruteForceKnn(w.base, w.queries, 10, Metric::kSquaredL2, &filter);
  EXPECT_EQ(got.ids, want.indices);
}

TEST(Sq8Test, ThreadShardingIsDeterministic) {
  const Workload& w = Sq8Workload();
  Sq8Index index(&w.base);
  SearchRequest request;
  request.queries = w.queries;
  request.options.k = 10;
  request.options.num_threads = 1;
  const auto serial = index.SearchBatch(request);
  request.options.num_threads = 0;
  const auto pooled = index.SearchBatch(request);
  EXPECT_EQ(serial.ids, pooled.ids);
}

TEST(Sq8Test, DynamicIndexSealsToSq8Segments) {
  const Workload& w = Sq8Workload();
  DynamicIndexConfig config;
  config.metric = Metric::kSquaredL2;
  config.segment_builder = Sq8SegmentBuilder(/*rerank_budget=*/400);
  DynamicIndex dynamic(w.base.cols(), config);
  const size_t n = 600;
  dynamic.AddBatch(MatrixView(w.base.data(), n, w.base.cols()));
  dynamic.Seal();

  const MatrixView head(w.base.data(), n, w.base.cols());
  const KnnResult truth = BruteForceKnn(head, w.queries, 10);
  const auto got = dynamic.SearchBatch(w.queries, 10, 1);
  const double recall = KnnAccuracy(got, truth.indices, truth.k);
  EXPECT_GE(recall, 0.95) << "sealed-SQ8 recall " << recall;
}

}  // namespace
}  // namespace usp
