// Pins the RadiusSearchBatch contract of the workload subsystem
// (workload/radius.h):
//
//   - For every index type — all nine, plus a container-loaded index — radius
//     search at full budget is bit-identical (offsets, ids, AND distances) to
//     BruteForceRadius, at radii that produce zero rows, rows shorter than a
//     typical k, and rows far larger than any k.
//   - Filters compose: a selector restricts radius rows exactly as it
//     restricts k-NN rows, including through DynamicIndex tombstones and
//     ShardedIndex scatter-gather.
//   - The CSR shape honors the empty-row contract: no sentinel padding ever,
//     an empty row is a zero-length offset span.
//   - A partial budget returns a subset of the full-budget row.
#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/kmeans.h"
#include "core/ensemble.h"
#include "core/partition_index.h"
#include "dataset/workload.h"
#include "hnsw/hnsw.h"
#include "index/serialize.h"
#include "ivf/ivf.h"
#include "knn/brute_force.h"
#include "quant/scann_index.h"
#include "quant/sq8_index.h"
#include "serve/dynamic_index.h"
#include "serve/sharded_index.h"
#include "util/rng.h"

namespace usp {
namespace {

// Budget that makes every index exhaustive: all bins probed (<= 16 bins /
// nlist in every fixture index), radius-beam ef = n for HNSW, forwarded to
// every segment/shard by the serving types.
constexpr size_t kFullBudget = 1u << 20;

const Workload& RadiusWorkload() {
  static const Workload* w = [] {
    WorkloadSpec spec;
    spec.kind = WorkloadKind::kGaussian;  // d = 32
    spec.num_base = 500;
    spec.num_queries = 25;
    spec.gt_k = 10;
    spec.knn_k = 8;
    spec.seed = 77;
    return new Workload(MakeWorkload(spec));
  }();
  return *w;
}

// Radii derived from the query-to-base distance distribution so the expected
// row sizes are known by construction: kNone yields zero rows everywhere,
// kFew sits below the typical 3rd-neighbor distance (rows shorter than the
// usual k = 10), kMany covers far more than any practical k.
struct Radii {
  float none;
  float few;
  float many;
};

Radii FixtureRadii() {
  static const Radii radii = [] {
    const Workload& w = RadiusWorkload();
    const KnnResult knn = BruteForceKnn(w.base, w.queries, 10);
    std::vector<float> third, first;
    for (size_t q = 0; q < w.queries.rows(); ++q) {
      first.push_back(knn.distances[q * knn.k]);
      third.push_back(knn.distances[q * knn.k + 2]);
    }
    std::sort(first.begin(), first.end());
    std::sort(third.begin(), third.end());
    Radii r;
    r.none = 0.5f * first.front();       // below every nearest neighbor
    r.few = third[third.size() / 2];     // ~3 hits for half the queries
    r.many = 16.0f * third.back();       // hundreds of hits per query
    return r;
  }();
  return radii;
}

// All nine index types built once over the shared workload, mirroring the
// filtered-search fixture (every index exhaustive at kFullBudget;
// ScaNN/IVF-PQ rerank budgets = n so shortlists never truncate).
struct AllIndexes {
  const Workload& w = RadiusWorkload();
  KMeansPartitioner kmeans;
  PartitionIndex partition;
  IvfFlatIndex ivf_flat;
  IvfPqIndex ivf_pq;
  ScannIndex scann;
  HnswIndex hnsw;
  UspEnsemble ensemble;
  Sq8Index sq8;
  DynamicIndex dynamic;
  ShardedIndex sharded;

  static KMeansConfig KmConfig() {
    KMeansConfig config;
    config.num_clusters = 16;
    config.seed = 11;
    return config;
  }
  static IvfConfig FlatConfig() {
    IvfConfig config;
    config.nlist = 16;
    config.seed = 12;
    return config;
  }
  static IvfConfig PqIvfConfig(size_t n) {
    IvfConfig config;
    config.nlist = 8;
    config.seed = 13;
    config.pq.num_subspaces = 8;
    config.pq.codebook_size = 16;
    config.pq.seed = 14;
    config.rerank_budget = n;
    return config;
  }
  static ProductQuantizer TrainPq(const Matrix& base) {
    PqConfig config;
    config.num_subspaces = 8;
    config.codebook_size = 16;
    config.seed = 15;
    ProductQuantizer pq(config);
    pq.Train(base);
    return pq;
  }
  static ScannIndexConfig ScConfig(size_t n) {
    ScannIndexConfig config;
    config.rerank_budget = n;
    return config;
  }
  static HnswConfig GraphConfig() {
    HnswConfig config;
    config.max_neighbors = 8;
    config.ef_construction = 60;
    config.seed = 16;
    return config;
  }
  static UspEnsembleConfig EnsembleConfig() {
    UspEnsembleConfig config;
    config.model.num_bins = 8;
    config.model.eta = 8.0f;
    config.model.epochs = 8;
    config.model.batch_size = 256;
    config.model.hidden_dim = 16;
    config.model.seed = 17;
    config.num_models = 2;
    return config;
  }
  static ShardedIndexConfig ShardConfig() {
    ShardedIndexConfig config;
    config.num_shards = 3;
    return config;
  }

  AllIndexes()
      : kmeans(RadiusWorkload().base, KmConfig()),
        partition(&RadiusWorkload().base, &kmeans),
        ivf_flat(&RadiusWorkload().base, FlatConfig()),
        ivf_pq(&RadiusWorkload().base, PqIvfConfig(RadiusWorkload().base.rows())),
        scann(&RadiusWorkload().base, &kmeans, TrainPq(RadiusWorkload().base),
              ScConfig(RadiusWorkload().base.rows())),
        hnsw(GraphConfig()),
        ensemble(EnsembleConfig()),
        sq8(&RadiusWorkload().base),
        dynamic(RadiusWorkload().base.cols()),
        sharded(RadiusWorkload().base, ShardConfig()) {
    hnsw.Build(w.base);
    ensemble.Train(w.base, w.knn_matrix);
    dynamic.AddBatch(w.base);
    dynamic.Seal();
  }

  std::vector<std::pair<const char*, const Index*>> All() const {
    return {{"partition", &partition},
            {"ivf_flat", &ivf_flat},
            {"ivf_pq", &ivf_pq},
            {"scann", &scann},
            {"hnsw", &hnsw},
            {"ensemble", &ensemble},
            {"sq8", &sq8},
            {"dynamic", &dynamic},
            {"sharded", &sharded}};
  }
};

const AllIndexes& Indexes() {
  static const AllIndexes* all = new AllIndexes();
  return *all;
}

IdSelectorBitmap RandomSubset(size_t n, double selectivity, uint64_t seed) {
  Rng rng(seed);
  IdSelectorBitmap bitmap(n);
  for (uint32_t id = 0; id < n; ++id) {
    if (rng.Uniform() < selectivity) bitmap.Set(id);
  }
  if (bitmap.count() == 0) bitmap.Set(0);
  return bitmap;
}

void ExpectSameRadiusResult(const RadiusResult& got,
                            const RadiusResult& expected, const char* label) {
  EXPECT_EQ(got.offsets, expected.offsets) << label;
  EXPECT_EQ(got.ids, expected.ids) << label;
  EXPECT_EQ(got.distances, expected.distances) << label;
}

// The acceptance bar: at full budget, the CSR triplet is bit-identical to
// BruteForceRadius (which shares the per-row scoring kernels with every
// index's range filter).
void ExpectMatchesBruteForce(const Index& index, MatrixView base,
                             MatrixView queries, float radius,
                             const IdSelector* filter, const char* label) {
  RadiusOptions options;
  options.budget = kFullBudget;
  options.filter = filter;
  const RadiusResult got = index.RadiusSearch(queries, radius, options);
  const RadiusResult expected =
      BruteForceRadius(base, queries, radius, index.metric(), filter);
  ExpectSameRadiusResult(got, expected, label);
}

TEST(RadiusSearchTest, FullBudgetBitIdenticalAcrossTypesAndRadii) {
  const AllIndexes& all = Indexes();
  const Radii radii = FixtureRadii();
  for (const float radius : {radii.none, radii.few, radii.many}) {
    // Sanity: the reference itself hits the intended row-count regimes.
    const RadiusResult reference =
        BruteForceRadius(all.w.base, all.w.queries, radius, Metric::kSquaredL2);
    if (radius == radii.none) {
      EXPECT_EQ(reference.ids.size(), 0u);
    } else if (radius == radii.many) {
      EXPECT_GT(reference.ids.size(), all.w.queries.rows() * 50);
    }
    for (const auto& [name, index] : all.All()) {
      SCOPED_TRACE(testing::Message() << name << " radius=" << radius);
      ExpectMatchesBruteForce(*index, all.w.base, all.w.queries, radius,
                              nullptr, name);
    }
  }
}

TEST(RadiusSearchTest, FilteredBitIdenticalAcrossSelectivities) {
  const AllIndexes& all = Indexes();
  const Radii radii = FixtureRadii();
  const size_t n = all.w.base.rows();
  for (const double selectivity : {0.1, 0.5}) {
    const IdSelectorBitmap filter =
        RandomSubset(n, selectivity, /*seed=*/2000 + size_t(selectivity * 100));
    for (const auto& [name, index] : all.All()) {
      SCOPED_TRACE(testing::Message()
                   << name << " selectivity=" << selectivity);
      ExpectMatchesBruteForce(*index, all.w.base, all.w.queries, radii.many,
                              &filter, name);
    }
  }
}

TEST(RadiusSearchTest, LoadedIndexForwardsRadiusSearch) {
  const AllIndexes& all = Indexes();
  const Radii radii = FixtureRadii();
  const std::string path = testing::TempDir() + "/radius_ivf.uspidx";
  ASSERT_TRUE(SaveIndex(all.ivf_flat, path).ok());
  for (const LoadMode mode : {LoadMode::kHeap, LoadMode::kMmap}) {
    auto loaded = OpenIndex(path, mode);
    ASSERT_TRUE(loaded.ok()) << loaded.status().message();
    ExpectMatchesBruteForce(*loaded.value(), all.w.base, all.w.queries,
                            radii.few, nullptr, "loaded");
  }
}

TEST(RadiusSearchTest, EmptyRowOffsetContract) {
  const AllIndexes& all = Indexes();
  const Radii radii = FixtureRadii();
  const size_t nq = all.w.queries.rows();
  for (const auto& [name, index] : all.All()) {
    SCOPED_TRACE(name);
    RadiusOptions options;
    options.budget = kFullBudget;
    const RadiusResult result =
        index->RadiusSearch(all.w.queries, radii.none, options);
    // No sentinel padding exists in the CSR form: a query with no in-range
    // points contributes a zero-length span and nothing else.
    ASSERT_EQ(result.offsets.size(), nq + 1);
    EXPECT_EQ(result.num_queries(), nq);
    EXPECT_EQ(result.offsets.front(), 0u);
    EXPECT_EQ(result.offsets.back(), 0u);
    EXPECT_TRUE(result.ids.empty());
    EXPECT_TRUE(result.distances.empty());
    for (size_t q = 0; q < nq; ++q) {
      EXPECT_EQ(result.RowSize(q), 0u);
    }
    // Work was still done: candidates were scored to prove rows empty.
    ASSERT_EQ(result.candidate_counts.size(), nq);
    EXPECT_GT(result.candidate_counts[0], 0u);
  }
}

TEST(RadiusSearchTest, RowsSortedAndInclusiveOfBoundary) {
  const AllIndexes& all = Indexes();
  const Radii radii = FixtureRadii();
  RadiusOptions options;
  options.budget = kFullBudget;
  const RadiusResult result =
      all.partition.RadiusSearch(all.w.queries, radii.many, options);
  for (size_t q = 0; q < result.num_queries(); ++q) {
    const float* dist = result.RowDistances(q);
    const uint32_t* ids = result.RowIds(q);
    for (size_t j = 0; j + 1 < result.RowSize(q); ++j) {
      // Ascending (distance, id).
      EXPECT_TRUE(dist[j] < dist[j + 1] ||
                  (dist[j] == dist[j + 1] && ids[j] < ids[j + 1]));
    }
    if (result.RowSize(q) > 0) {
      EXPECT_LE(dist[result.RowSize(q) - 1], radii.many);  // inclusive <=
    }
  }
  // The boundary is inclusive: search with radius == an existing distance
  // must return that hit.
  if (!result.distances.empty()) {
    const float boundary = result.distances.front();
    const RadiusResult at_boundary =
        all.partition.RadiusSearch(all.w.queries, boundary, options);
    bool found = false;
    for (size_t j = 0; j < at_boundary.distances.size(); ++j) {
      if (at_boundary.distances[j] == boundary) found = true;
    }
    EXPECT_TRUE(found);
  }
}

TEST(RadiusSearchTest, PartialBudgetReturnsSubsetOfFullRows) {
  const AllIndexes& all = Indexes();
  const Radii radii = FixtureRadii();
  RadiusOptions options;
  options.budget = kFullBudget;
  const RadiusResult full =
      all.partition.RadiusSearch(all.w.queries, radii.many, options);
  options.budget = 2;  // probe 2 of 16 bins
  const RadiusResult partial =
      all.partition.RadiusSearch(all.w.queries, radii.many, options);
  size_t total_partial = 0;
  for (size_t q = 0; q < partial.num_queries(); ++q) {
    // Every partial hit must appear in the full row (same id, same distance).
    const uint32_t* full_ids = full.RowIds(q);
    const size_t full_size = full.RowSize(q);
    for (size_t j = 0; j < partial.RowSize(q); ++j) {
      const uint32_t id = partial.RowIds(q)[j];
      const float* pos = nullptr;
      for (size_t t = 0; t < full_size; ++t) {
        if (full_ids[t] == id) {
          pos = full.RowDistances(q) + t;
          break;
        }
      }
      ASSERT_NE(pos, nullptr);
      EXPECT_EQ(*pos, partial.RowDistances(q)[j]);
    }
    total_partial += partial.RowSize(q);
  }
  EXPECT_LE(total_partial, full.ids.size());
  EXPECT_GT(total_partial, 0u);
}

TEST(RadiusSearchTest, StatsReportScoredAndFiltered) {
  const AllIndexes& all = Indexes();
  const Radii radii = FixtureRadii();
  const size_t n = all.w.base.rows();
  const IdSelectorBitmap filter = RandomSubset(n, 0.5, /*seed=*/42);
  RadiusOptions options;
  options.budget = kFullBudget;
  options.stats = true;
  const RadiusResult unfiltered =
      all.partition.RadiusSearch(all.w.queries, radii.many, options);
  options.filter = &filter;
  const RadiusResult filtered =
      all.partition.RadiusSearch(all.w.queries, radii.many, options);
  ASSERT_TRUE(unfiltered.stats.has_value());
  ASSERT_TRUE(filtered.stats.has_value());
  for (size_t q = 0; q < all.w.queries.rows(); ++q) {
    EXPECT_EQ(filtered.candidate_counts[q],
              filtered.stats->candidates_scored[q]);
    // Scored + dropped recovers the unfiltered candidate set (full budget
    // probes every bin, so the pre-filter candidate sets agree).
    EXPECT_EQ(filtered.candidate_counts[q] + filtered.stats->filtered_out[q],
              unfiltered.candidate_counts[q]);
    EXPECT_EQ(filtered.stats->bins_probed[q], 16u);
  }
}

TEST(RadiusSearchTest, ThreadCountInvariant) {
  const AllIndexes& all = Indexes();
  const Radii radii = FixtureRadii();
  for (const auto& [name, index] : all.All()) {
    SCOPED_TRACE(name);
    RadiusOptions serial;
    serial.budget = kFullBudget;
    serial.num_threads = 1;
    RadiusOptions pooled = serial;
    pooled.num_threads = 0;
    const RadiusResult a =
        index->RadiusSearch(all.w.queries, radii.few, serial);
    const RadiusResult b =
        index->RadiusSearch(all.w.queries, radii.few, pooled);
    ExpectSameRadiusResult(a, b, name);
  }
}

TEST(RadiusSearchTest, DynamicComposesFilterWithTombstonesAcrossSeal) {
  const Workload& w = RadiusWorkload();
  const Radii radii = FixtureRadii();
  const size_t n = w.base.rows();

  DynamicIndex index(w.base.cols());
  index.AddBatch(w.base);

  IdSelectorBitmap user_filter(n + w.queries.rows());
  IdSelectorBitmap reference(n + w.queries.rows());
  for (uint32_t id = 0; id < n; ++id) {
    if (id % 3 == 0) user_filter.Set(id);
  }
  for (uint32_t id = 0; id < n; ++id) {
    if (id % 7 == 0) {
      ASSERT_TRUE(index.Delete(id));
    }
  }
  for (uint32_t id = 0; id < n; ++id) {
    if (id % 3 == 0 && id % 7 != 0) reference.Set(id);
  }

  RadiusOptions options;
  options.budget = kFullBudget;
  options.filter = &user_filter;

  // Phase 1: everything in the write segment (filtered brute-force path).
  {
    const RadiusResult got =
        index.RadiusSearch(w.queries, radii.many, options);
    const RadiusResult expected = BruteForceRadius(
        w.base, w.queries, radii.many, index.metric(), &reference);
    ExpectSameRadiusResult(got, expected, "write-segment");
  }

  // Phase 2: sealed into an IVF segment (local-selector translation).
  index.Seal();
  {
    const RadiusResult got =
        index.RadiusSearch(w.queries, radii.many, options);
    const RadiusResult expected = BruteForceRadius(
        w.base, w.queries, radii.many, index.metric(), &reference);
    ExpectSameRadiusResult(got, expected, "sealed");
  }

  // Phase 3: fresh rows in the write segment (ids n..n+m), some deleted,
  // some admitted — radius rows span sealed + write segments.
  const size_t m = w.queries.rows();
  index.AddBatch(w.queries);
  for (uint32_t id = 0; id < m; ++id) {
    const uint32_t gid = static_cast<uint32_t>(n) + id;
    if (id % 2 == 0) {
      user_filter.Set(gid);
      if (id % 4 == 0) {
        ASSERT_TRUE(index.Delete(gid));
      } else {
        reference.Set(gid);
      }
    }
  }
  {
    Matrix combined(n + m, w.base.cols());
    std::memcpy(combined.Row(0), w.base.data(), w.base.size() * sizeof(float));
    std::memcpy(combined.Row(n), w.queries.data(),
                w.queries.size() * sizeof(float));
    const RadiusResult got =
        index.RadiusSearch(w.queries, radii.many, options);
    const RadiusResult expected = BruteForceRadius(
        combined, w.queries, radii.many, index.metric(), &reference);
    ExpectSameRadiusResult(got, expected, "mixed-segments");
  }

  // Unfiltered: tombstones alone must still be dropped.
  {
    IdSelectorBitmap live(n + m);
    for (uint32_t id = 0; id < n + m; ++id) {
      if (index.Contains(id)) live.Set(id);
    }
    Matrix combined(n + m, w.base.cols());
    std::memcpy(combined.Row(0), w.base.data(), w.base.size() * sizeof(float));
    std::memcpy(combined.Row(n), w.queries.data(),
                w.queries.size() * sizeof(float));
    RadiusOptions unfiltered;
    unfiltered.budget = kFullBudget;
    const RadiusResult got =
        index.RadiusSearch(w.queries, radii.many, unfiltered);
    const RadiusResult expected = BruteForceRadius(
        combined, w.queries, radii.many, index.metric(), &live);
    ExpectSameRadiusResult(got, expected, "tombstones-only");
  }
}

TEST(RadiusSearchTest, MutableShardedComposesDeletesAndFilter) {
  const Workload& w = RadiusWorkload();
  const Radii radii = FixtureRadii();
  const size_t n = w.base.rows();

  ShardedIndexConfig config;
  config.num_shards = 3;
  ShardedIndex index(w.base.cols(), config);
  const std::vector<uint32_t> ids = index.AddBatch(w.base);
  ASSERT_EQ(ids.size(), n);

  IdSelectorBitmap user_filter(n);
  IdSelectorBitmap reference(n);
  for (uint32_t id = 0; id < n; ++id) {
    if (id % 2 == 0) user_filter.Set(id);
    if (id % 5 == 0) {
      ASSERT_TRUE(index.Delete(id));
    }
  }
  for (uint32_t id = 0; id < n; ++id) {
    if (id % 2 == 0 && id % 5 != 0) reference.Set(id);
  }

  RadiusOptions options;
  options.budget = kFullBudget;
  options.filter = &user_filter;
  const RadiusResult got = index.RadiusSearch(w.queries, radii.many, options);
  const RadiusResult expected = BruteForceRadius(
      w.base, w.queries, radii.many, index.metric(), &reference);
  ExpectSameRadiusResult(got, expected, "sharded-deletes-filter");
}

}  // namespace
}  // namespace usp
