// Tests for core/loss.*: target construction, loss values on hand-computable
// cases, finite-difference validation of the full gradient (quality +
// balance, through the softmax), and behavioral properties (balanced
// partitions score lower balance cost, co-located neighbors score lower
// quality cost).
#include <cmath>

#include <gtest/gtest.h>

#include "core/loss.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace usp {
namespace {

TEST(NeighborTargetsTest, HistogramIsRowStochastic) {
  // 2 points, 4 neighbors each, 3 bins.
  const std::vector<uint32_t> neighbor_bins = {0, 0, 1, 2, 1, 1, 1, 1};
  const Matrix targets = BuildNeighborBinTargets(neighbor_bins, 2, 4, 3);
  EXPECT_FLOAT_EQ(targets(0, 0), 0.5f);
  EXPECT_FLOAT_EQ(targets(0, 1), 0.25f);
  EXPECT_FLOAT_EQ(targets(0, 2), 0.25f);
  EXPECT_FLOAT_EQ(targets(1, 1), 1.0f);
  EXPECT_FLOAT_EQ(targets(1, 0), 0.0f);
}

TEST(NeighborTargetsTest, SoftTargetsAverageNeighborRows) {
  Matrix neighbor_probs(4, 2);  // 2 points x 2 neighbors
  neighbor_probs(0, 0) = 1.0f;
  neighbor_probs(1, 1) = 1.0f;
  neighbor_probs(2, 0) = 0.5f;
  neighbor_probs(2, 1) = 0.5f;
  neighbor_probs(3, 0) = 0.5f;
  neighbor_probs(3, 1) = 0.5f;
  const Matrix targets = BuildSoftNeighborBinTargets(neighbor_probs, 2, 2);
  EXPECT_FLOAT_EQ(targets(0, 0), 0.5f);
  EXPECT_FLOAT_EQ(targets(0, 1), 0.5f);
  EXPECT_FLOAT_EQ(targets(1, 0), 0.5f);
}

TEST(UspLossTest, PerfectPredictionHasLowQualityCost) {
  // Logits strongly favoring the target bin -> CE near 0.
  const size_t batch = 4, m = 3;
  Matrix logits(batch, m);
  Matrix targets(batch, m);
  for (size_t i = 0; i < batch; ++i) {
    const size_t bin = i % m;
    logits(i, bin) = 20.0f;
    targets(i, bin) = 1.0f;
  }
  Matrix grad;
  const LossParts parts =
      UspLoss(logits, targets, nullptr, {m, 0.0f}, &grad);
  EXPECT_LT(parts.quality, 1e-3);
}

TEST(UspLossTest, UniformPredictionQualityIsLogM) {
  const size_t batch = 6, m = 4;
  Matrix logits(batch, m);  // all-zero logits -> uniform softmax
  Matrix targets(batch, m);
  for (size_t i = 0; i < batch; ++i) targets(i, i % m) = 1.0f;
  Matrix grad;
  const LossParts parts = UspLoss(logits, targets, nullptr, {m, 0.0f}, &grad);
  EXPECT_NEAR(parts.quality, std::log(double(m)), 1e-5);
}

TEST(UspLossTest, BalancedAssignmentScoresLowBalanceCost) {
  // Perfectly balanced confident assignment: each bin gets batch/m points.
  const size_t batch = 8, m = 4;
  Matrix balanced(batch, m);
  for (size_t i = 0; i < batch; ++i) balanced(i, i % m) = 30.0f;
  // Collapsed: everything in bin 0.
  Matrix collapsed(batch, m);
  for (size_t i = 0; i < batch; ++i) collapsed(i, 0) = 30.0f;
  Matrix targets(batch, m);
  for (size_t i = 0; i < batch; ++i) targets(i, 0) = 1.0f;

  Matrix grad;
  const LossParts lp_balanced =
      UspLoss(balanced, targets, nullptr, {m, 1.0f}, &grad);
  const LossParts lp_collapsed =
      UspLoss(collapsed, targets, nullptr, {m, 1.0f}, &grad);
  EXPECT_LT(lp_balanced.balance, 0.05);
  EXPECT_GT(lp_collapsed.balance, 0.5);
}

TEST(UspLossTest, WeightsScaleQualityContribution) {
  const size_t batch = 2, m = 2;
  Matrix logits(batch, m);  // uniform
  Matrix targets(batch, m);
  targets(0, 0) = 1.0f;
  targets(1, 0) = 1.0f;
  Matrix grad;
  const std::vector<float> uniform_weights = {1.0f, 1.0f};
  const std::vector<float> doubled = {2.0f, 2.0f};
  const LossParts base =
      UspLoss(logits, targets, &uniform_weights, {m, 0.0f}, &grad);
  const LossParts heavy =
      UspLoss(logits, targets, &doubled, {m, 0.0f}, &grad);
  EXPECT_NEAR(heavy.quality, 2.0 * base.quality, 1e-6);
}

TEST(UspLossTest, TotalCombinesTermsWithEta) {
  Rng rng(3);
  const size_t batch = 10, m = 5;
  const Matrix logits = Matrix::RandomGaussian(batch, m, &rng);
  Matrix targets(batch, m);
  for (size_t i = 0; i < batch; ++i) targets(i, i % m) = 1.0f;
  Matrix grad;
  const UspLossConfig config{m, 3.5f};
  const LossParts parts = UspLoss(logits, targets, nullptr, config, &grad);
  EXPECT_NEAR(parts.total, parts.quality + 3.5 * parts.balance, 1e-9);
}

// Numeric loss evaluation for finite differences (recomputes everything).
double NumericLoss(const Matrix& logits, const Matrix& targets,
                   const std::vector<float>* weights,
                   const UspLossConfig& config) {
  Matrix grad;
  return UspLoss(logits, targets, weights, config, &grad).total;
}

class UspLossGradientTest : public ::testing::TestWithParam<float> {};

TEST_P(UspLossGradientTest, MatchesFiniteDifferences) {
  const float eta = GetParam();
  Rng rng(11 + static_cast<uint64_t>(eta * 10));
  const size_t batch = 12, m = 4;
  Matrix logits = Matrix::RandomGaussian(batch, m, &rng);
  Matrix targets(batch, m);
  // Random row-stochastic targets.
  for (size_t i = 0; i < batch; ++i) {
    float sum = 0.0f;
    for (size_t j = 0; j < m; ++j) {
      targets(i, j) = static_cast<float>(rng.Uniform()) + 0.01f;
      sum += targets(i, j);
    }
    for (size_t j = 0; j < m; ++j) targets(i, j) /= sum;
  }
  std::vector<float> weights(batch);
  for (auto& w : weights) w = static_cast<float>(rng.Uniform()) + 0.5f;

  const UspLossConfig config{m, eta};
  Matrix grad;
  UspLoss(logits, targets, &weights, config, &grad);

  // The balance term's top-k window makes the loss piecewise; perturbations
  // that flip window membership create kinks. Use a small epsilon and a
  // tolerance that absorbs occasional boundary noise.
  const double eps = 1e-3;
  size_t checked = 0, close = 0;
  for (size_t idx = 0; idx < logits.size(); ++idx) {
    const float original = logits.data()[idx];
    logits.data()[idx] = original + static_cast<float>(eps);
    const double plus = NumericLoss(logits, targets, &weights, config);
    logits.data()[idx] = original - static_cast<float>(eps);
    const double minus = NumericLoss(logits, targets, &weights, config);
    logits.data()[idx] = original;
    const double numeric = (plus - minus) / (2 * eps);
    ++checked;
    if (std::abs(grad.data()[idx] - numeric) < 5e-3) ++close;
  }
  // Require near-universal agreement (window-boundary kinks may break a few).
  EXPECT_GE(close, checked - 3)
      << "only " << close << "/" << checked << " gradients matched";
}

INSTANTIATE_TEST_SUITE_P(Etas, UspLossGradientTest,
                         ::testing::Values(0.0f, 1.0f, 7.0f, 30.0f));

TEST(UspLossTest, GradientDescentReducesLoss) {
  // Pure sanity: stepping against the gradient lowers the loss.
  Rng rng(21);
  const size_t batch = 16, m = 4;
  Matrix logits = Matrix::RandomGaussian(batch, m, &rng);
  Matrix targets(batch, m);
  for (size_t i = 0; i < batch; ++i) targets(i, (i * 7) % m) = 1.0f;
  const UspLossConfig config{m, 2.0f};
  Matrix grad;
  double prev = UspLoss(logits, targets, nullptr, config, &grad).total;
  for (int step = 0; step < 50; ++step) {
    for (size_t i = 0; i < logits.size(); ++i) {
      logits.data()[i] -= 5.0f * grad.data()[i];
    }
    const double now = UspLoss(logits, targets, nullptr, config, &grad).total;
    prev = now;
  }
  Matrix final_grad;
  const double final_loss =
      UspLoss(logits, targets, nullptr, config, &final_grad).total;
  Matrix fresh = Matrix::RandomGaussian(batch, m, &rng);
  const double fresh_loss =
      UspLoss(fresh, targets, nullptr, config, &final_grad).total;
  EXPECT_LT(final_loss, fresh_loss);
}

TEST(ExactQualityCostTest, CountsMisplacedNeighbors) {
  // 3 points, 2 neighbors each.
  const std::vector<uint32_t> point_bins = {0, 0, 1};
  const std::vector<uint32_t> neighbor_bins = {0, 1,   // point 0: one misplaced
                                               0, 0,   // point 1: none
                                               1, 0};  // point 2: one misplaced
  EXPECT_DOUBLE_EQ(ExactQualityCost(point_bins, neighbor_bins, 3, 2),
                   2.0 / 3.0);
}

}  // namespace
}  // namespace usp
