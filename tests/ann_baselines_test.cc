// Tests for hnsw/ and ivf/: index construction invariants and recall floors
// on clustered workloads.
#include <set>

#include <gtest/gtest.h>

#include "dataset/workload.h"
#include "hnsw/hnsw.h"
#include "ivf/ivf.h"

namespace usp {
namespace {

const Workload& AnnWorkload() {
  static const Workload* w = [] {
    WorkloadSpec spec;
    spec.kind = WorkloadKind::kGaussian;
    spec.num_base = 1500;
    spec.num_queries = 60;
    spec.gt_k = 10;
    spec.knn_k = 10;
    spec.seed = 41;
    return new Workload(MakeWorkload(spec));
  }();
  return *w;
}

TEST(HnswTest, BuildsAllNodes) {
  const Workload& w = AnnWorkload();
  HnswConfig config;
  config.seed = 1;
  HnswIndex index(config);
  index.Build(w.base);
  EXPECT_EQ(index.size(), w.base.rows());
  EXPECT_GE(index.max_level(), 1);
}

TEST(HnswTest, HighRecallAtLargeEf) {
  const Workload& w = AnnWorkload();
  HnswConfig config;
  config.max_neighbors = 16;
  config.ef_construction = 120;
  config.seed = 2;
  HnswIndex index(config);
  index.Build(w.base);
  const auto result = index.SearchBatch(w.queries, 10, 200);
  EXPECT_GT(KnnAccuracy(result, w.ground_truth.indices, w.ground_truth.k),
            0.9);
}

TEST(HnswTest, EfTradesAccuracyForWork) {
  const Workload& w = AnnWorkload();
  HnswConfig config;
  config.seed = 3;
  HnswIndex index(config);
  index.Build(w.base);
  const auto cheap = index.SearchBatch(w.queries, 10, 10);
  const auto thorough = index.SearchBatch(w.queries, 10, 150);
  EXPECT_GE(KnnAccuracy(thorough, w.ground_truth.indices, w.ground_truth.k),
            KnnAccuracy(cheap, w.ground_truth.indices, w.ground_truth.k));
  EXPECT_GT(thorough.MeanCandidates(), cheap.MeanCandidates());
}

TEST(HnswTest, SingleQueryMatchesBatch) {
  const Workload& w = AnnWorkload();
  HnswConfig config;
  config.seed = 4;
  HnswIndex index(config);
  index.Build(w.base);
  const auto batch = index.SearchBatch(w.queries, 5, 60);
  for (size_t q = 0; q < 5; ++q) {
    const auto single = index.Search(w.queries.Row(q), 5, 60);
    ASSERT_EQ(single.size(), 5u);
    for (size_t j = 0; j < 5; ++j) {
      EXPECT_EQ(single[j], batch.ids[q * 5 + j]);
    }
  }
}

TEST(HnswTest, ExactNeighborOfBasePointIsFound) {
  const Workload& w = AnnWorkload();
  HnswConfig config;
  config.seed = 5;
  HnswIndex index(config);
  index.Build(w.base);
  // Querying with a base point itself must return that point first.
  for (size_t i = 0; i < 20; ++i) {
    const auto result = index.Search(w.base.Row(i), 1, 50);
    ASSERT_EQ(result.size(), 1u);
    EXPECT_EQ(result[0], i);
  }
}

TEST(IvfFlatTest, NprobeSweepIsMonotone) {
  const Workload& w = AnnWorkload();
  IvfConfig config;
  config.nlist = 32;
  config.seed = 6;
  IvfFlatIndex index(&w.base, config);
  double prev = -1.0;
  for (size_t nprobe : {1, 4, 16, 32}) {
    const auto result = index.SearchBatch(w.queries, 10, nprobe);
    const double accuracy =
        KnnAccuracy(result, w.ground_truth.indices, w.ground_truth.k);
    EXPECT_GE(accuracy, prev);
    prev = accuracy;
  }
  EXPECT_DOUBLE_EQ(prev, 1.0);  // all lists probed == exact
}

TEST(IvfFlatTest, FewProbesScanFraction) {
  const Workload& w = AnnWorkload();
  IvfConfig config;
  config.nlist = 32;
  config.seed = 7;
  IvfFlatIndex index(&w.base, config);
  const auto result = index.SearchBatch(w.queries, 10, 2);
  EXPECT_LT(result.MeanCandidates(), 0.3 * w.base.rows());
}

TEST(IvfPqTest, ReachesReasonableRecall) {
  const Workload& w = AnnWorkload();
  IvfConfig config;
  config.nlist = 16;
  config.seed = 8;
  config.pq.num_subspaces = 8;
  config.pq.codebook_size = 32;
  config.rerank_budget = 100;
  IvfPqIndex index(&w.base, config);
  const auto result = index.SearchBatch(w.queries, 10, 8);
  EXPECT_GT(KnnAccuracy(result, w.ground_truth.indices, w.ground_truth.k),
            0.6);
}

TEST(IvfPqTest, ResultsAreValidIds) {
  const Workload& w = AnnWorkload();
  IvfConfig config;
  config.nlist = 8;
  config.seed = 9;
  config.pq.num_subspaces = 4;
  IvfPqIndex index(&w.base, config);
  const auto result = index.SearchBatch(w.queries, 10, 2);
  for (uint32_t id : result.ids) {
    EXPECT_LT(id, w.base.rows());
  }
}

}  // namespace
}  // namespace usp
