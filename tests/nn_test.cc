// Tests for nn/: every layer's backward pass is validated against central
// finite differences (both input gradients and parameter gradients), the
// optimizers are checked on closed-form problems, and the model factory is
// checked against the paper's architecture (parameter counts of Table 2).
#include <cmath>
#include <functional>
#include <memory>

#include <gtest/gtest.h>

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/layer.h"
#include "nn/linear.h"
#include "nn/model_factory.h"
#include "nn/optimizer.h"
#include "nn/sequential.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace usp {
namespace {

// Scalar loss used to drive gradient checks: L = sum(output * coeff).
double ScalarLoss(const Matrix& out, const Matrix& coeff) {
  double total = 0.0;
  for (size_t i = 0; i < out.size(); ++i) {
    total += static_cast<double>(out.data()[i]) * coeff.data()[i];
  }
  return total;
}

// Checks dL/dInput of `layer` against central differences. The layer must be
// deterministic across Forward calls (no dropout).
void CheckInputGradient(Layer* layer, const Matrix& input, double tolerance) {
  Rng rng(99);
  Matrix out = layer->Forward(input, /*training=*/true);
  const Matrix coeff = Matrix::RandomGaussian(out.rows(), out.cols(), &rng);
  const Matrix grad_input = layer->Backward(coeff);

  const double eps = 1e-3;
  Matrix perturbed = input.Clone();
  for (size_t idx = 0; idx < input.size(); ++idx) {
    const float original = perturbed.data()[idx];
    perturbed.data()[idx] = original + static_cast<float>(eps);
    const double plus = ScalarLoss(layer->Forward(perturbed, true), coeff);
    perturbed.data()[idx] = original - static_cast<float>(eps);
    const double minus = ScalarLoss(layer->Forward(perturbed, true), coeff);
    perturbed.data()[idx] = original;
    const double numeric = (plus - minus) / (2.0 * eps);
    EXPECT_NEAR(grad_input.data()[idx], numeric, tolerance)
        << "input grad mismatch at " << idx;
  }
}

// Checks dL/dParam for every parameter tensor of `layer`.
void CheckParameterGradients(Layer* layer, const Matrix& input,
                             double tolerance) {
  Rng rng(98);
  Matrix out = layer->Forward(input, true);
  const Matrix coeff = Matrix::RandomGaussian(out.rows(), out.cols(), &rng);
  layer->Backward(coeff);

  std::vector<Matrix*> params, grads;
  layer->CollectParameters(&params, &grads);
  const double eps = 1e-3;
  for (size_t p = 0; p < params.size(); ++p) {
    for (size_t idx = 0; idx < params[p]->size(); ++idx) {
      const float original = params[p]->data()[idx];
      params[p]->data()[idx] = original + static_cast<float>(eps);
      const double plus = ScalarLoss(layer->Forward(input, true), coeff);
      params[p]->data()[idx] = original - static_cast<float>(eps);
      const double minus = ScalarLoss(layer->Forward(input, true), coeff);
      params[p]->data()[idx] = original;
      const double numeric = (plus - minus) / (2.0 * eps);
      // Re-run forward/backward to restore analytic gradients.
      layer->Forward(input, true);
      layer->Backward(coeff);
      EXPECT_NEAR(grads[p]->data()[idx], numeric, tolerance)
          << "param " << p << " grad mismatch at " << idx;
    }
  }
}

TEST(LinearTest, ForwardMatchesManualAffine) {
  Rng rng(1);
  Linear layer(3, 2, &rng);
  layer.weight().Fill(0.0f);
  layer.weight()(0, 0) = 1.0f;
  layer.weight()(2, 1) = 2.0f;
  layer.bias()(0, 1) = -1.0f;
  Matrix input(1, 3);
  input(0, 0) = 4.0f;
  input(0, 2) = 5.0f;
  const Matrix out = layer.Forward(input, false);
  EXPECT_FLOAT_EQ(out(0, 0), 4.0f);
  EXPECT_FLOAT_EQ(out(0, 1), 9.0f);
}

TEST(LinearTest, GlorotInitWithinLimit) {
  Rng rng(2);
  Linear layer(100, 50, &rng);
  const float limit = std::sqrt(6.0f / 150.0f);
  for (size_t i = 0; i < layer.weight().size(); ++i) {
    EXPECT_LE(std::abs(layer.weight().data()[i]), limit);
  }
  for (size_t i = 0; i < layer.bias().size(); ++i) {
    EXPECT_EQ(layer.bias().data()[i], 0.0f);
  }
}

TEST(LinearTest, GradientsMatchFiniteDifferences) {
  Rng rng(3);
  Linear layer(4, 3, &rng);
  const Matrix input = Matrix::RandomGaussian(5, 4, &rng);
  CheckInputGradient(&layer, input, 5e-2);
  CheckParameterGradients(&layer, input, 5e-2);
}

TEST(LinearTest, ParameterCountIsWeightsPlusBias) {
  Rng rng(4);
  Linear layer(128, 16, &rng);
  EXPECT_EQ(layer.ParameterCount(), 128u * 16u + 16u);
}

TEST(ReluTest, ForwardClampsNegatives) {
  Relu relu;
  Matrix input(1, 4);
  input(0, 0) = -1.0f;
  input(0, 1) = 2.0f;
  input(0, 2) = 0.0f;
  input(0, 3) = -0.5f;
  const Matrix out = relu.Forward(input, true);
  EXPECT_EQ(out(0, 0), 0.0f);
  EXPECT_EQ(out(0, 1), 2.0f);
  EXPECT_EQ(out(0, 2), 0.0f);
  EXPECT_EQ(out(0, 3), 0.0f);
}

TEST(ReluTest, GradientMatchesFiniteDifferences) {
  Rng rng(5);
  Relu relu;
  // Keep activations away from the kink so finite differences are valid.
  Matrix input = Matrix::RandomGaussian(6, 5, &rng);
  for (size_t i = 0; i < input.size(); ++i) {
    if (std::abs(input.data()[i]) < 0.05f) input.data()[i] = 0.5f;
  }
  CheckInputGradient(&relu, input, 5e-2);
}

TEST(BatchNormTest, TrainOutputIsStandardized) {
  BatchNorm bn(3);
  Rng rng(6);
  const Matrix input = Matrix::RandomGaussian(64, 3, &rng, 5.0f, 2.0f);
  const Matrix out = bn.Forward(input, true);
  for (size_t j = 0; j < 3; ++j) {
    double mean = 0.0, var = 0.0;
    for (size_t i = 0; i < 64; ++i) mean += out(i, j);
    mean /= 64.0;
    for (size_t i = 0; i < 64; ++i) {
      var += (out(i, j) - mean) * (out(i, j) - mean);
    }
    var /= 64.0;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNormTest, EvalUsesRunningStatistics) {
  BatchNorm bn(2);
  Rng rng(7);
  // Run several training batches so running stats converge near (3, 4).
  for (int step = 0; step < 200; ++step) {
    const Matrix batch = Matrix::RandomGaussian(32, 2, &rng, 3.0f, 2.0f);
    bn.Forward(batch, true);
  }
  Matrix probe(1, 2);
  probe(0, 0) = 3.0f;
  probe(0, 1) = 3.0f;
  const Matrix out = bn.Forward(probe, false);
  // A point at the running mean should map near gamma*0 + beta = 0.
  EXPECT_NEAR(out(0, 0), 0.0f, 0.2f);
}

TEST(BatchNormTest, GradientsMatchFiniteDifferences) {
  Rng rng(8);
  BatchNorm bn(3);
  const Matrix input = Matrix::RandomGaussian(8, 3, &rng);
  CheckInputGradient(&bn, input, 5e-2);
  CheckParameterGradients(&bn, input, 5e-2);
}

TEST(DropoutTest, EvalIsIdentity) {
  Dropout dropout(0.5f, 1);
  Rng rng(9);
  const Matrix input = Matrix::RandomGaussian(4, 4, &rng);
  const Matrix out = dropout.Forward(input, false);
  for (size_t i = 0; i < input.size(); ++i) {
    EXPECT_EQ(out.data()[i], input.data()[i]);
  }
}

TEST(DropoutTest, TrainPreservesExpectedValue) {
  Dropout dropout(0.3f, 2);
  Matrix input(200, 50);
  input.Fill(1.0f);
  const Matrix out = dropout.Forward(input, true);
  double sum = 0.0;
  size_t zeros = 0;
  for (size_t i = 0; i < out.size(); ++i) {
    sum += out.data()[i];
    if (out.data()[i] == 0.0f) ++zeros;
  }
  // Inverted dropout: E[out] == E[in]; drop rate should be near 0.3.
  EXPECT_NEAR(sum / out.size(), 1.0, 0.03);
  EXPECT_NEAR(static_cast<double>(zeros) / out.size(), 0.3, 0.03);
}

TEST(DropoutTest, BackwardUsesSameMask) {
  Dropout dropout(0.5f, 3);
  Matrix input(10, 10);
  input.Fill(1.0f);
  const Matrix out = dropout.Forward(input, true);
  Matrix grad_out(10, 10);
  grad_out.Fill(1.0f);
  const Matrix grad_in = dropout.Backward(grad_out);
  for (size_t i = 0; i < out.size(); ++i) {
    if (out.data()[i] == 0.0f) {
      EXPECT_EQ(grad_in.data()[i], 0.0f);
    } else {
      EXPECT_FLOAT_EQ(grad_in.data()[i], 2.0f);  // 1/(1-0.5)
    }
  }
}

TEST(SequentialTest, ChainsForwardAndBackward) {
  Rng rng(10);
  Sequential model;
  model.Add(std::make_unique<Linear>(4, 8, &rng));
  model.Add(std::make_unique<Relu>());
  model.Add(std::make_unique<Linear>(8, 3, &rng));
  const Matrix input = Matrix::RandomGaussian(5, 4, &rng);
  const Matrix out = model.Forward(input, true);
  EXPECT_EQ(out.rows(), 5u);
  EXPECT_EQ(out.cols(), 3u);
  Matrix grad(5, 3);
  grad.Fill(1.0f);
  const Matrix grad_in = model.Backward(grad);
  EXPECT_EQ(grad_in.rows(), 5u);
  EXPECT_EQ(grad_in.cols(), 4u);
}

TEST(SequentialTest, EndToEndGradientMatchesFiniteDifferences) {
  Rng rng(11);
  Sequential model;
  model.Add(std::make_unique<Linear>(3, 6, &rng));
  model.Add(std::make_unique<BatchNorm>(6));
  model.Add(std::make_unique<Relu>());
  model.Add(std::make_unique<Linear>(6, 2, &rng));

  Matrix input = Matrix::RandomGaussian(7, 3, &rng);
  const Matrix coeff = Matrix::RandomGaussian(7, 2, &rng);
  model.Forward(input, true);
  // Analytic input gradient.
  Matrix out = model.Forward(input, true);
  const Matrix grad_in = model.Backward(coeff);
  const double eps = 1e-3;
  for (size_t idx = 0; idx < input.size(); ++idx) {
    const float original = input.data()[idx];
    input.data()[idx] = original + static_cast<float>(eps);
    const double plus = ScalarLoss(model.Forward(input, true), coeff);
    input.data()[idx] = original - static_cast<float>(eps);
    const double minus = ScalarLoss(model.Forward(input, true), coeff);
    input.data()[idx] = original;
    EXPECT_NEAR(grad_in.data()[idx], (plus - minus) / (2 * eps), 8e-2)
        << "at " << idx;
  }
}

TEST(SgdTest, ConvergesOnQuadratic) {
  // Minimize ||p - 3||^2 by hand-fed gradients.
  Matrix param(1, 1);
  Matrix grad(1, 1);
  Sgd sgd(0.1f);
  sgd.Attach({&param}, {&grad});
  for (int step = 0; step < 200; ++step) {
    grad(0, 0) = 2.0f * (param(0, 0) - 3.0f);
    sgd.Step();
  }
  EXPECT_NEAR(param(0, 0), 3.0f, 1e-3f);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Matrix param(1, 2);
  param(0, 0) = -4.0f;
  param(0, 1) = 7.0f;
  Matrix grad(1, 2);
  Adam adam(0.1f);
  adam.Attach({&param}, {&grad});
  for (int step = 0; step < 500; ++step) {
    grad(0, 0) = 2.0f * (param(0, 0) - 1.0f);
    grad(0, 1) = 2.0f * (param(0, 1) + 2.0f);
    adam.Step();
  }
  EXPECT_NEAR(param(0, 0), 1.0f, 1e-2f);
  EXPECT_NEAR(param(0, 1), -2.0f, 1e-2f);
}

TEST(AdamTest, ZeroGradClearsBuffers) {
  Matrix param(1, 1), grad(1, 1);
  grad(0, 0) = 5.0f;
  Adam adam(0.1f);
  adam.Attach({&param}, {&grad});
  adam.ZeroGrad();
  EXPECT_EQ(grad(0, 0), 0.0f);
}

TEST(ModelFactoryTest, MlpMatchesPaperArchitecture) {
  MlpConfig config;
  config.input_dim = 128;
  config.hidden_dim = 128;
  config.num_bins = 256;
  const Sequential model = BuildMlp(config);
  // Linear(128->128) + BN(128) + Linear(128->256):
  // 128*128+128 + 2*128 + 128*256+256 = 16512 + 256 + 33024.
  EXPECT_EQ(model.ParameterCount(), 16512u + 256u + 33024u);
  EXPECT_EQ(model.Summary(),
            "Linear -> BatchNorm -> ReLU -> Dropout -> Linear");
}

TEST(ModelFactoryTest, LogisticRegressionIsSingleLinear) {
  const Sequential model = BuildLogisticRegression(128, 2, 1);
  EXPECT_EQ(model.ParameterCount(), 128u * 2u + 2u);
  EXPECT_EQ(model.Summary(), "Linear");
}

TEST(ModelFactoryTest, MlpOutputsRequestedBins) {
  MlpConfig config;
  config.input_dim = 10;
  config.hidden_dim = 16;
  config.num_bins = 4;
  config.dropout_rate = 0.0f;
  Sequential model = BuildMlp(config);
  Rng rng(12);
  const Matrix input = Matrix::RandomGaussian(3, 10, &rng);
  const Matrix out = model.Forward(input, false);
  EXPECT_EQ(out.cols(), 4u);
}

TEST(ModelFactoryTest, DeterministicForSameSeed) {
  MlpConfig config;
  config.input_dim = 6;
  config.hidden_dim = 8;
  config.num_bins = 3;
  config.dropout_rate = 0.0f;
  config.seed = 77;
  Sequential a = BuildMlp(config);
  Sequential b = BuildMlp(config);
  Rng rng(13);
  const Matrix input = Matrix::RandomGaussian(4, 6, &rng);
  const Matrix out_a = a.Forward(input, false);
  const Matrix out_b = b.Forward(input, false);
  for (size_t i = 0; i < out_a.size(); ++i) {
    EXPECT_EQ(out_a.data()[i], out_b.data()[i]);
  }
}

}  // namespace
}  // namespace usp
