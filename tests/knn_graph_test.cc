// Pins the KnnGraphBuilder contracts (workload/knn_graph.h):
//
//   - BuildExact is bit-identical (indices AND distances) to BuildKnnMatrix,
//     including when n is not a multiple of block_rows and at every thread
//     count — tile symmetry and scheduling must be invisible in the output.
//   - BuildFromStream is bit-identical to BuildExact at ragged
//     resident-block / chunk-size splits, and fails cleanly on a stream that
//     ends short.
//   - BuildApproximate at an exhaustive budget recovers the exact graph;
//     at a partial budget its rows stay valid input for BuildKnnGraph
//     (no sentinel ids, no self-matches) and GraphRecall degrades sanely.
#include <algorithm>
#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "dataset/fvecs_stream.h"
#include "dataset/synthetic.h"
#include "graphpart/graph.h"
#include "ivf/ivf.h"
#include "knn/brute_force.h"
#include "workload/knn_graph.h"

namespace usp {
namespace {

bool SameGraph(const KnnResult& a, const KnnResult& b) {
  return a.k == b.k && a.indices == b.indices &&
         a.distances.size() == b.distances.size() &&
         std::memcmp(a.distances.data(), b.distances.data(),
                     a.distances.size() * sizeof(float)) == 0;
}

Matrix TestData(size_t n, uint64_t seed) { return MakeSiftLike(n, seed); }

TEST(KnnGraphBuilderTest, ExactMatchesBruteForceBitwise) {
  const Matrix data = TestData(/*n=*/777, /*seed=*/5);  // not a tile multiple
  const KnnResult brute = BuildKnnMatrix(data, /*k=*/8);

  KnnGraphConfig config;
  config.k = 8;
  for (const size_t block_rows : {64u, 100u, 777u, 4096u}) {
    config.block_rows = block_rows;
    const KnnResult exact = KnnGraphBuilder(config).BuildExact(data);
    EXPECT_TRUE(SameGraph(exact, brute)) << "block_rows=" << block_rows;
  }
}

TEST(KnnGraphBuilderTest, ExactThreadCountInvariant) {
  const Matrix data = TestData(/*n=*/500, /*seed=*/6);
  KnnGraphConfig config;
  config.k = 10;
  config.block_rows = 96;
  config.num_threads = 1;
  const KnnResult serial = KnnGraphBuilder(config).BuildExact(data);
  config.num_threads = 0;
  const KnnResult pooled = KnnGraphBuilder(config).BuildExact(data);
  EXPECT_TRUE(SameGraph(serial, pooled));
}

TEST(KnnGraphBuilderTest, ExactExcludesSelfAndSortsRows) {
  const Matrix data = TestData(/*n=*/300, /*seed=*/7);
  KnnGraphConfig config;
  config.k = 6;
  const KnnResult graph = KnnGraphBuilder(config).BuildExact(data);
  for (size_t i = 0; i < data.rows(); ++i) {
    for (size_t j = 0; j < config.k; ++j) {
      EXPECT_NE(graph.indices[i * config.k + j], i);
      if (j + 1 < config.k) {
        const float a = graph.distances[i * config.k + j];
        const float b = graph.distances[i * config.k + j + 1];
        EXPECT_TRUE(a < b || (a == b && graph.indices[i * config.k + j] <
                                            graph.indices[i * config.k + j + 1]));
      }
    }
  }
}

TEST(KnnGraphBuilderTest, StreamMatchesExactAtRaggedSplits) {
  const Matrix data = TestData(/*n=*/613, /*seed=*/8);  // prime-ish n
  KnnGraphConfig config;
  config.k = 7;
  const KnnGraphBuilder builder(config);
  const KnnResult exact = builder.BuildExact(data);

  for (const size_t resident : {50u, 128u, 613u, 1000u}) {
    for (const size_t chunk : {37u, 256u}) {
      KnnGraphConfig stream_config = config;
      stream_config.block_rows = chunk;
      MatrixStream stream(data);
      StatusOr<KnnResult> streamed =
          KnnGraphBuilder(stream_config).BuildFromStream(&stream, resident);
      ASSERT_TRUE(streamed.ok()) << streamed.status().message();
      EXPECT_TRUE(SameGraph(streamed.value(), exact))
          << "resident=" << resident << " chunk=" << chunk;
    }
  }
}

// A stream advertising more rows than it yields must produce a Status, not
// a partial graph or a crash.
TEST(KnnGraphBuilderTest, StreamEndingShortFails) {
  const Matrix data = TestData(/*n=*/100, /*seed=*/9);

  class ShortStream final : public ChunkStream {
   public:
    explicit ShortStream(const Matrix& data) : inner_(data) {}
    size_t dim() const override { return inner_.dim(); }
    size_t num_rows() const override { return inner_.num_rows() + 50; }
    Status Reset() override { return inner_.Reset(); }
    StatusOr<MatrixView> NextChunk(size_t max_rows) override {
      return inner_.NextChunk(max_rows);
    }

   private:
    MatrixStream inner_;
  };

  ShortStream stream(data);
  KnnGraphConfig config;
  config.k = 5;
  StatusOr<KnnResult> result =
      KnnGraphBuilder(config).BuildFromStream(&stream, /*resident_rows=*/64);
  EXPECT_FALSE(result.ok());
}

TEST(KnnGraphBuilderTest, ApproximateAtFullBudgetRecoversExactGraph) {
  const Matrix data = TestData(/*n=*/400, /*seed=*/10);
  KnnGraphConfig config;
  config.k = 10;
  const KnnGraphBuilder builder(config);
  const KnnResult exact = builder.BuildExact(data);

  IvfConfig ivf_config;
  ivf_config.nlist = 8;
  ivf_config.seed = 3;
  const IvfFlatIndex ivf(&data, ivf_config);
  // Budget >= nlist probes every list: the candidate set is the whole base,
  // so every true neighbor is found. (Distances are not compared bitwise —
  // the index rerank path and the exact build's norm-trick tiles round
  // differently; ids can only differ where that last-ulp wobble flips an
  // exact tie at the k boundary.)
  const KnnResult approx =
      builder.BuildApproximate(ivf, data, /*budget=*/ivf_config.nlist);
  EXPECT_GE(KnnGraphBuilder::GraphRecall(approx, exact), 0.999);
}

TEST(KnnGraphBuilderTest, ApproximatePartialBudgetStaysValidForGraphBuild) {
  const size_t n = 400;
  const Matrix data = TestData(n, /*seed=*/11);
  KnnGraphConfig config;
  config.k = 10;
  const KnnGraphBuilder builder(config);
  const KnnResult exact = builder.BuildExact(data);

  IvfConfig ivf_config;
  ivf_config.nlist = 16;
  ivf_config.seed = 3;
  const IvfFlatIndex ivf(&data, ivf_config);
  const KnnResult approx = builder.BuildApproximate(ivf, data, /*budget=*/2);

  // Rows are always full and valid: in-range ids, no kInvalidId sentinel,
  // no self-matches except the self-fallback pad for a row with zero hits.
  ASSERT_EQ(approx.indices.size(), n * config.k);
  for (size_t i = 0; i < n; ++i) {
    bool has_non_self = false;
    for (size_t j = 0; j < config.k; ++j) {
      const uint32_t id = approx.indices[i * config.k + j];
      ASSERT_LT(id, n);
      if (id != i) has_non_self = true;
    }
    // A 2-probe search over this workload always finds someone.
    EXPECT_TRUE(has_non_self) << "row " << i;
  }

  // The approximate output feeds the partitioning pipeline unchanged.
  const Graph graph = BuildKnnGraph(approx, n);
  EXPECT_EQ(graph.num_vertices(), n);

  const double recall = KnnGraphBuilder::GraphRecall(approx, exact);
  EXPECT_GT(recall, 0.3);  // 2 of 16 lists still finds most neighbors
  EXPECT_LT(recall, 1.0);  // ...but not all of them at this budget
}

TEST(KnnGraphBuilderTest, GraphRecallCountsOverlapPerRow) {
  KnnResult exact;
  exact.k = 2;
  exact.indices = {1, 2, 0, 2};  // two rows
  exact.distances = {0, 0, 0, 0};
  KnnResult graph = exact;
  EXPECT_EQ(KnnGraphBuilder::GraphRecall(graph, exact), 1.0);
  graph.indices = {1, 3, 3, 3};  // 1 of 2 hits in row 0, 0 of 2 in row 1
  EXPECT_EQ(KnnGraphBuilder::GraphRecall(graph, exact), 0.25);
}

}  // namespace
}  // namespace usp
