// Pins the BatchSearchResult padding contract (index/index.h): when a query
// yields fewer than k neighbors (here k > size()), every Index
// implementation pads the same way — real neighbors first, ascending by
// distance with finite reported distances, then an uninterrupted run of
// kInvalidId slots with +inf distances.
#include <cmath>
#include <limits>
#include <memory>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/kmeans.h"
#include "core/ensemble.h"
#include "core/partition_index.h"
#include "dataset/workload.h"
#include "hnsw/hnsw.h"
#include "ivf/ivf.h"
#include "quant/pq.h"
#include "quant/scann_index.h"
#include "serve/dynamic_index.h"

namespace usp {
namespace {

const Workload& TinyWorkload() {
  static const Workload* w = [] {
    WorkloadSpec spec;
    spec.kind = WorkloadKind::kGaussian;
    spec.num_base = 6;
    spec.num_queries = 4;
    spec.gt_k = 3;
    spec.knn_k = 3;
    spec.seed = 5;
    return new Workload(MakeWorkload(spec));
  }();
  return *w;
}

/// Asserts the shared contract on one result: every row holds exactly
/// `expected_hits` real neighbors (valid unique ids, finite ascending
/// distances) followed by kInvalidId / +inf padding.
void ExpectPaddedRows(const BatchSearchResult& result, size_t num_queries,
                      size_t num_points, size_t expected_hits,
                      const char* label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(result.ids.size(), num_queries * result.k);
  ASSERT_EQ(result.distances.size(), result.ids.size());
  for (size_t q = 0; q < num_queries; ++q) {
    const uint32_t* ids = result.Row(q);
    const float* dists = result.DistanceRow(q);
    std::unordered_set<uint32_t> seen;
    for (size_t j = 0; j < result.k; ++j) {
      if (j < expected_hits) {
        ASSERT_NE(ids[j], kInvalidId) << "q=" << q << " j=" << j;
        EXPECT_LT(ids[j], num_points);
        EXPECT_TRUE(seen.insert(ids[j]).second) << "duplicate id";
        EXPECT_TRUE(std::isfinite(dists[j]));
        if (j > 0) {
          EXPECT_GE(dists[j], dists[j - 1]);
        }
      } else {
        EXPECT_EQ(ids[j], kInvalidId) << "q=" << q << " j=" << j;
        EXPECT_EQ(dists[j], std::numeric_limits<float>::infinity());
      }
    }
  }
}

TEST(IndexPaddingTest, AllIndexTypesPadConsistently) {
  const Workload& w = TinyWorkload();
  const size_t n = w.base.rows();
  const size_t nq = w.queries.rows();
  const size_t k = n + 4;  // k > size(): every row must be padded

  // Exhaustive settings, so every implementation returns all n points.
  {
    KMeansConfig kc;
    kc.num_clusters = 2;
    KMeansPartitioner scorer(w.base, kc);
    PartitionIndex index(&w.base, &scorer);
    ExpectPaddedRows(index.SearchBatch(w.queries, k, 2), nq, n, n,
                     "partition");
  }
  {
    IvfConfig config;
    config.nlist = 2;
    IvfFlatIndex index(&w.base, config);
    ExpectPaddedRows(index.SearchBatch(w.queries, k, 2), nq, n, n,
                     "ivf_flat");
  }
  {
    IvfConfig config;
    config.nlist = 2;
    config.pq.num_subspaces = 2;
    config.pq.codebook_size = 4;
    config.rerank_budget = 2 * n;
    IvfPqIndex index(&w.base, config);
    ExpectPaddedRows(index.SearchBatch(w.queries, k, 2), nq, n, n, "ivf_pq");
  }
  {
    PqConfig pq_config;
    pq_config.num_subspaces = 2;
    pq_config.codebook_size = 4;
    ProductQuantizer pq(pq_config);
    pq.Train(w.base);
    ScannIndexConfig sc;
    sc.rerank_budget = 2 * n;
    ScannIndex index(&w.base, /*partitioner=*/nullptr, std::move(pq), sc);
    ExpectPaddedRows(index.SearchBatch(w.queries, k, 1), nq, n, n, "scann");
  }
  {
    HnswConfig config;
    HnswIndex index(config);
    index.Build(w.base);
    ExpectPaddedRows(index.SearchBatch(w.queries, k, 4 * n), nq, n, n,
                     "hnsw");
  }
  {
    UspEnsembleConfig config;
    config.num_models = 1;
    config.model.num_bins = 2;
    config.model.epochs = 2;
    config.model.hidden_dim = 8;
    config.model.batch_size = 4;
    UspEnsemble ensemble(config);
    ensemble.Train(w.base, w.knn_matrix);
    ExpectPaddedRows(ensemble.SearchBatch(w.queries, k, 2), nq, n, n,
                     "usp_ensemble");
  }
  {
    DynamicIndex index(w.base.cols());
    index.AddBatch(w.base);
    ExpectPaddedRows(index.SearchBatch(w.queries, k, 1), nq, n, n,
                     "dynamic");
  }
}

// The single-query path stops at the first padding slot.
TEST(IndexPaddingTest, SearchTruncatesAtPadding) {
  const Workload& w = TinyWorkload();
  const size_t n = w.base.rows();
  IvfConfig config;
  config.nlist = 2;
  IvfFlatIndex index(&w.base, config);
  const std::vector<uint32_t> ids =
      index.Search(w.queries.Row(0), n + 4, /*budget=*/2);
  EXPECT_EQ(ids.size(), n);
  for (uint32_t id : ids) EXPECT_LT(id, n);
}

}  // namespace
}  // namespace usp
