// Tests for serve/out_of_core_builder.h: the disk-direct build must be
// byte-identical to SaveIndex of the in-memory reference build and must
// answer searches bit-identically through both load modes — and its working
// set must stay bounded while the base does not fit the budget an in-memory
// build would need.
#include <sys/resource.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dataset/fvecs_stream.h"
#include "dataset/io.h"
#include "dataset/synthetic.h"
#include "index/id_selector.h"
#include "index/serialize.h"
#include "serve/out_of_core_builder.h"
#include "tensor/matrix.h"
#include "util/rng.h"

namespace usp {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

/// Process peak RSS in KiB (Linux ru_maxrss), a monotone high-water mark.
size_t PeakRssKb() {
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<size_t>(usage.ru_maxrss);
}

/// Address/thread sanitizers keep shadow memory resident; the RSS cap only
/// means something in an unsanitized build.
constexpr bool SanitizerActive() {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  return true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
  return true;
#else
  return false;
#endif
#else
  return false;
#endif
}

/// Writes `rows` Gaussian rows of width `dim` to an .fvecs file chunk by
/// chunk, so even the test fixture never materializes the full base.
void WriteGaussianFvecs(const std::string& path, size_t rows, size_t dim,
                        uint64_t seed, size_t chunk_rows) {
  Rng rng(seed);
  FvecsWriter writer(path);
  ASSERT_TRUE(writer.ok());
  for (size_t done = 0; done < rows; done += chunk_rows) {
    const size_t count = std::min(chunk_rows, rows - done);
    const Matrix chunk = Matrix::RandomGaussian(count, dim, &rng);
    ASSERT_TRUE(writer.Append(chunk).ok());
  }
  ASSERT_TRUE(writer.Close().ok());
}

std::vector<uint8_t> ReadAllBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  if (f == nullptr) return {};
  std::fseek(f, 0, SEEK_END);
  std::vector<uint8_t> bytes(static_cast<size_t>(std::ftell(f)));
  std::fseek(f, 0, SEEK_SET);
  EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
  return bytes;
}

void ExpectSameResults(const BatchSearchResult& a, const BatchSearchResult& b,
                       const std::string& label) {
  ASSERT_EQ(a.k, b.k) << label;
  ASSERT_EQ(a.ids, b.ids) << label;
  ASSERT_EQ(a.distances, b.distances) << label;
}

// ---------------------------------------------------------------------------
// Bounded-memory guard. Runs first (ctest isolates it in its own process, so
// the process-wide peak-RSS high-water mark is a clean baseline): building a
// 200k x 64d base (51.2 MB of fp32) with small chunks must fit in a budget
// the in-memory path provably exceeds — it would need the full 51.2 MB
// resident for the base matrix alone before any index structure.
// ---------------------------------------------------------------------------

TEST(OutOfCoreRssGuardTest, BuildPeakRssStaysFarBelowBaseSize) {
  const size_t rows = 200000, dim = 64;
  const std::string fvecs = TempPath("rss_guard.fvecs");
  const std::string index = TempPath("rss_guard.usp");
  WriteGaussianFvecs(fvecs, rows, dim, 77, 8192);

  OutOfCoreConfig config;
  config.kind = OutOfCoreKind::kIvfFlat;
  config.chunk_rows = 8192;
  config.nlist = 128;
  config.train_epochs = 1;
  config.sample_rows = 8192;
  config.seed = 77;

  const size_t before_kb = PeakRssKb();
  auto stats = OutOfCoreBuilder(config).Build(fvecs, index);
  const size_t after_kb = PeakRssKb();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.value().rows, rows);

  const size_t delta_kb = after_kb - before_kb;
  const size_t base_kb = rows * dim * sizeof(float) / 1024;  // 51200 KiB
  // Generous fixed cap: chunk buffers + sample + centroids + posting
  // buffers sum to ~15 MB at these knobs; 40 MB leaves allocator headroom
  // while staying well under the 51.2 MB the base alone would cost.
  const size_t cap_kb = SanitizerActive() ? 8 * 40960 : 40960;
  EXPECT_LT(delta_kb, cap_kb)
      << "build RSS delta " << delta_kb << " KiB, base is " << base_kb
      << " KiB";

  // The file it produced under that budget is a real, openable index.
  auto opened = MmapIndex(index);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(opened.value()->size(), rows);
  EXPECT_EQ(opened.value()->dim(), dim);
  std::remove(fvecs.c_str());
  std::remove(index.c_str());
}

// ---------------------------------------------------------------------------
// Bit-identity acceptance: disk-direct container == SaveIndex(BuildInMemory)
// byte for byte, and searches through heap and mmap loads match the
// in-memory index exactly, filtered and unfiltered, at full budget.
// ---------------------------------------------------------------------------

struct AcceptanceCase {
  const char* name;
  OutOfCoreKind kind;
  Metric metric;
};

class OutOfCoreAcceptanceTest
    : public testing::TestWithParam<AcceptanceCase> {};

TEST_P(OutOfCoreAcceptanceTest, DiskBuildMatchesInMemoryBuildBitForBit) {
  const AcceptanceCase& param = GetParam();
  const size_t rows = 20000, dim = 32;
  const LabeledDataset ds =
      MakeGaussianMixture(rows, dim, 40, 12.0f, 1.0f, 91);
  const std::string fvecs = TempPath(std::string(param.name) + ".fvecs");
  const std::string index_path = TempPath(std::string(param.name) + ".usp");
  const std::string saved_path =
      TempPath(std::string(param.name) + "_saved.usp");
  ASSERT_TRUE(WriteFvecs(fvecs, ds.points).ok());

  OutOfCoreConfig config;
  config.kind = param.kind;
  config.metric = param.metric;
  config.chunk_rows = 4096;  // 5 chunks: genuinely multi-chunk
  config.nlist = 64;
  config.train_epochs = 3;
  config.sample_rows = 4096;
  config.seed = 91;
  config.rerank_budget = 150;
  const OutOfCoreBuilder builder(config);

  auto stats = builder.Build(fvecs, index_path);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.value().rows, rows);
  EXPECT_EQ(stats.value().dim, dim);
  EXPECT_EQ(stats.value().chunks, 5u);
  if (param.kind == OutOfCoreKind::kIvfFlat) {
    EXPECT_EQ(stats.value().nlist, 64u);
    EXPECT_GE(stats.value().epochs_run, 1u);
    EXPECT_GT(stats.value().train_inertia, 0.0);
    EXPECT_GE(stats.value().max_list, stats.value().min_list);
  }

  auto in_memory = builder.BuildInMemory(ds.points);
  ASSERT_TRUE(in_memory.ok()) << in_memory.status().ToString();
  ASSERT_TRUE(SaveIndex(*in_memory.value(), saved_path).ok());

  // The disk-direct file and the saved in-memory build are the same bytes.
  const std::vector<uint8_t> direct = ReadAllBytes(index_path);
  const std::vector<uint8_t> saved = ReadAllBytes(saved_path);
  ASSERT_EQ(direct.size(), saved.size());
  ASSERT_EQ(stats.value().file_size, direct.size());
  EXPECT_EQ(std::memcmp(direct.data(), saved.data(), direct.size()), 0)
      << "disk-direct container diverges from SaveIndex(BuildInMemory)";

  // Full-budget searches agree bit for bit across in-memory, heap-loaded,
  // and mmap'd forms — unfiltered and under a selective predicate.
  auto heap = OpenIndex(index_path, LoadMode::kHeap);
  auto mapped = OpenIndex(index_path, LoadMode::kMmap);
  ASSERT_TRUE(heap.ok()) << heap.status().ToString();
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();

  Rng rng(17);
  const Matrix queries = Matrix::RandomGaussian(64, dim, &rng);
  const IdSelectorRange filter(rows / 4, rows / 2);
  for (const bool filtered : {false, true}) {
    SearchRequest request;
    request.queries = queries;
    request.options.k = 10;
    request.options.budget = config.nlist;  // full budget: probe every list
    if (filtered) request.options.filter = &filter;
    const std::string label =
        std::string(param.name) + (filtered ? "/filtered" : "/unfiltered");

    const BatchSearchResult want = in_memory.value()->SearchBatch(request);
    ExpectSameResults(heap.value()->SearchBatch(request), want,
                      label + "/heap");
    ExpectSameResults(mapped.value()->SearchBatch(request), want,
                      label + "/mmap");
  }

  std::remove(fvecs.c_str());
  std::remove(index_path.c_str());
  std::remove(saved_path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    AllKindsAndMetrics, OutOfCoreAcceptanceTest,
    testing::Values(
        AcceptanceCase{"ivf_l2", OutOfCoreKind::kIvfFlat,
                       Metric::kSquaredL2},
        AcceptanceCase{"ivf_cosine", OutOfCoreKind::kIvfFlat,
                       Metric::kCosine},
        AcceptanceCase{"sq8_l2", OutOfCoreKind::kSq8, Metric::kSquaredL2},
        AcceptanceCase{"sq8_ip", OutOfCoreKind::kSq8,
                       Metric::kInnerProduct}),
    [](const testing::TestParamInfo<AcceptanceCase>& info) {
      return std::string(info.param.name);
    });

// ---------------------------------------------------------------------------
// Error handling.
// ---------------------------------------------------------------------------

TEST(OutOfCoreBuilderTest, MissingBaseFileFails) {
  OutOfCoreConfig config;
  auto stats = OutOfCoreBuilder(config).Build(TempPath("no_such.fvecs"),
                                              TempPath("no_such.usp"));
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kIoError);
}

TEST(OutOfCoreBuilderTest, ZeroChunkRowsIsRejected) {
  Rng rng(3);
  const Matrix base = Matrix::RandomGaussian(50, 4, &rng);
  OutOfCoreConfig config;
  config.chunk_rows = 0;
  MatrixStream stream(base);
  auto stats = OutOfCoreBuilder(config).BuildFromStream(
      &stream, TempPath("zero_chunk.usp"));
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kInvalidArgument);
}

TEST(OutOfCoreBuilderTest, FailedBuildRemovesPartialOutput) {
  // A base that turns ragged mid-stream: the build must fail and must not
  // leave a half-written container behind.
  const std::string fvecs = TempPath("ragged_base.fvecs");
  const std::string index_path = TempPath("ragged_base.usp");
  std::FILE* f = std::fopen(fvecs.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const float values[3] = {1.0f, 2.0f, 3.0f};
  int32_t dim = 3;
  for (int rec = 0; rec < 3; ++rec) {
    std::fwrite(&dim, sizeof(dim), 1, f);
    std::fwrite(values, sizeof(float), 3, f);
  }
  dim = 2;  // ragged record, grid-preserving padding after it
  std::fwrite(&dim, sizeof(dim), 1, f);
  std::fwrite(values, sizeof(float), 2, f);
  const float pad = 0.0f;
  std::fwrite(&pad, sizeof(float), 1, f);
  std::fclose(f);

  OutOfCoreConfig config;
  config.chunk_rows = 2;
  config.nlist = 2;
  config.sample_rows = 2;
  auto stats = OutOfCoreBuilder(config).Build(fvecs, index_path);
  ASSERT_FALSE(stats.ok());
  std::FILE* leftover = std::fopen(index_path.c_str(), "rb");
  EXPECT_EQ(leftover, nullptr) << "partial container left behind";
  if (leftover != nullptr) std::fclose(leftover);
  std::remove(fvecs.c_str());
}

// ---------------------------------------------------------------------------
// Chunk-size sensitivity: different chunk sizes may legitimately train
// different centroids (mini-batch updates depend on batch boundaries), but
// every resulting container must load and answer exact-budget searches
// consistently with ITS OWN in-memory twin.
// ---------------------------------------------------------------------------

TEST(OutOfCoreBuilderTest, EveryChunkSizeMatchesItsInMemoryTwin) {
  const size_t rows = 3000, dim = 16;
  const LabeledDataset ds = MakeGaussianMixture(rows, dim, 10, 9.0f, 1.0f, 55);
  const std::string fvecs = TempPath("chunk_sweep.fvecs");
  ASSERT_TRUE(WriteFvecs(fvecs, ds.points).ok());

  for (size_t chunk_rows : {size_t{100}, size_t{999}, size_t{3000}}) {
    OutOfCoreConfig config;
    config.chunk_rows = chunk_rows;
    config.nlist = 16;
    config.train_epochs = 2;
    config.sample_rows = 1024;
    config.seed = 55;
    const OutOfCoreBuilder builder(config);
    const std::string index_path =
        TempPath("chunk_sweep_" + std::to_string(chunk_rows) + ".usp");

    auto stats = builder.Build(fvecs, index_path);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    auto in_memory = builder.BuildInMemory(ds.points);
    ASSERT_TRUE(in_memory.ok());

    const std::string saved_path = index_path + ".saved";
    ASSERT_TRUE(SaveIndex(*in_memory.value(), saved_path).ok());
    const std::vector<uint8_t> direct = ReadAllBytes(index_path);
    const std::vector<uint8_t> saved = ReadAllBytes(saved_path);
    ASSERT_EQ(direct.size(), saved.size()) << "chunk_rows=" << chunk_rows;
    EXPECT_EQ(std::memcmp(direct.data(), saved.data(), direct.size()), 0)
        << "chunk_rows=" << chunk_rows;
    std::remove(index_path.c_str());
    std::remove(saved_path.c_str());
  }
  std::remove(fvecs.c_str());
}

}  // namespace
}  // namespace usp
