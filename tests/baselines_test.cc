// Tests for baselines/: K-means invariants, cross-polytope LSH hashing
// properties, and the partition-tree family (all Fig. 6 split rules).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "baselines/cross_polytope_lsh.h"
#include "baselines/kmeans.h"
#include "baselines/partition_tree.h"
#include "core/partition_index.h"
#include "dataset/fvecs_stream.h"
#include "dataset/io.h"
#include "dataset/synthetic.h"
#include "dataset/workload.h"
#include "tensor/ops.h"

namespace usp {
namespace {

TEST(KMeansTest, RecoversWellSeparatedClusters) {
  const LabeledDataset ds = MakeGaussianMixture(600, 4, 3, 100.0f, 0.5f, 1);
  KMeansConfig config;
  config.num_clusters = 3;
  config.seed = 2;
  const KMeansResult result = RunKMeans(ds.points, config);
  // Each predicted cluster should map 1:1 onto a generative cluster.
  std::set<std::pair<uint32_t, uint32_t>> pairs;
  for (size_t i = 0; i < 600; ++i) {
    pairs.insert({ds.labels[i], result.assignments[i]});
  }
  EXPECT_EQ(pairs.size(), 3u);
}

TEST(KMeansTest, InertiaDecreasesWithMoreClusters) {
  const LabeledDataset ds = MakeGaussianMixture(500, 6, 8, 20.0f, 1.0f, 3);
  double prev = 1e300;
  for (size_t k : {2, 4, 8}) {
    KMeansConfig config;
    config.num_clusters = k;
    config.seed = 4;
    const double inertia = RunKMeans(ds.points, config).inertia;
    EXPECT_LT(inertia, prev);
    prev = inertia;
  }
}

TEST(KMeansTest, AssignmentsAreNearestCentroid) {
  Rng rng(5);
  const Matrix data = Matrix::RandomGaussian(200, 5, &rng);
  KMeansConfig config;
  config.num_clusters = 7;
  config.seed = 5;
  const KMeansResult result = RunKMeans(data, config);
  for (size_t i = 0; i < 200; ++i) {
    const float own = SquaredDistance(
        data.Row(i), result.centroids.Row(result.assignments[i]), 5);
    for (size_t c = 0; c < 7; ++c) {
      EXPECT_LE(own, SquaredDistance(data.Row(i), result.centroids.Row(c), 5) +
                         1e-4f);
    }
  }
}

TEST(KMeansTest, NoEmptyClustersAfterReseeding) {
  // Pathological init chance is handled by reseeding from farthest points.
  Rng rng(6);
  const Matrix data = Matrix::RandomGaussian(100, 3, &rng);
  KMeansConfig config;
  config.num_clusters = 16;
  config.max_iterations = 30;
  config.seed = 6;
  const KMeansResult result = RunKMeans(data, config);
  std::set<uint32_t> used(result.assignments.begin(),
                          result.assignments.end());
  EXPECT_GE(used.size(), 14u);  // nearly all clusters in use
}

TEST(KMeansTest, KLargerThanNClamps) {
  Rng rng(7);
  const Matrix data = Matrix::RandomGaussian(5, 2, &rng);
  KMeansConfig config;
  config.num_clusters = 50;
  const KMeansResult result = RunKMeans(data, config);
  EXPECT_EQ(result.centroids.rows(), 5u);
}

TEST(MiniBatchKMeansTest, OneEpochWholeStreamChunkIsALloydIteration) {
  // The mini-batch trainer's anchor contract: seeded from the full dataset
  // with a chunk spanning the whole stream, one epoch must be bit-identical
  // to one Lloyd iteration — same k-means++ draws, same kernels, same
  // accumulation order, same empty-cluster reseed.
  const LabeledDataset ds = MakeGaussianMixture(300, 8, 6, 15.0f, 1.0f, 31);
  KMeansConfig lc;
  lc.num_clusters = 10;
  lc.max_iterations = 1;
  lc.seed = 31;
  const KMeansResult lloyd = RunKMeans(ds.points, lc);

  MiniBatchKMeansConfig mc;
  mc.num_clusters = 10;
  mc.epochs = 1;
  mc.chunk_rows = 1000;  // > n: one chunk per epoch
  mc.seed = 31;
  MatrixStream stream(ds.points);
  auto mini = RunMiniBatchKMeans(&stream, ds.points, mc);
  ASSERT_TRUE(mini.ok()) << mini.status().ToString();

  EXPECT_EQ(mini.value().epochs_run, 1u);
  EXPECT_EQ(mini.value().inertia, lloyd.inertia);
  ASSERT_EQ(mini.value().centroids.rows(), lloyd.centroids.rows());
  for (size_t i = 0; i < lloyd.centroids.size(); ++i) {
    ASSERT_EQ(mini.value().centroids.data()[i], lloyd.centroids.data()[i])
        << "centroid float " << i << " diverged";
  }
}

TEST(MiniBatchKMeansTest, MultiEpochWholeStreamChunkMatchesLloyd) {
  // Same equivalence across epochs: per-epoch count resets make epoch t a
  // Lloyd iteration t, including the early-stop rule, so a multi-epoch run
  // tracks multi-iteration Lloyd bit for bit.
  const LabeledDataset ds = MakeGaussianMixture(400, 6, 8, 10.0f, 1.5f, 32);
  KMeansConfig lc;
  lc.num_clusters = 12;
  lc.max_iterations = 7;
  lc.tolerance = 1e-6;
  lc.seed = 32;
  const KMeansResult lloyd = RunKMeans(ds.points, lc);

  MiniBatchKMeansConfig mc;
  mc.num_clusters = 12;
  mc.epochs = 7;
  mc.chunk_rows = ds.points.rows();
  mc.tolerance = 1e-6;
  mc.seed = 32;
  MatrixStream stream(ds.points);
  auto mini = RunMiniBatchKMeans(&stream, ds.points, mc);
  ASSERT_TRUE(mini.ok()) << mini.status().ToString();

  EXPECT_EQ(mini.value().epochs_run, lloyd.iterations);
  EXPECT_EQ(mini.value().inertia, lloyd.inertia);
  for (size_t i = 0; i < lloyd.centroids.size(); ++i) {
    ASSERT_EQ(mini.value().centroids.data()[i], lloyd.centroids.data()[i]);
  }
}

TEST(MiniBatchKMeansTest, ChunkedObjectiveWithinFactorOfBatchLloyd) {
  // Genuinely chunked training (8 chunks/epoch, sample seeding) is an
  // approximation; pin how loose it is allowed to get. Both objectives are
  // measured with StreamInertia over the same stream so the comparison is
  // apples to apples.
  const LabeledDataset ds = MakeGaussianMixture(4096, 16, 32, 8.0f, 1.0f, 33);
  KMeansConfig lc;
  lc.num_clusters = 32;
  lc.max_iterations = 10;
  lc.seed = 33;
  const KMeansResult lloyd = RunKMeans(ds.points, lc);

  MiniBatchKMeansConfig mc;
  mc.num_clusters = 32;
  mc.epochs = 10;
  mc.chunk_rows = 512;
  mc.seed = 33;
  MatrixStream stream(ds.points);
  auto sample = ReservoirSample(&stream, 1024, 33);
  ASSERT_TRUE(sample.ok());
  auto mini = RunMiniBatchKMeans(&stream, sample.value(), mc);
  ASSERT_TRUE(mini.ok()) << mini.status().ToString();

  auto mini_obj = StreamInertia(&stream, mini.value().centroids, 512);
  auto lloyd_obj = StreamInertia(&stream, lloyd.centroids, 512);
  ASSERT_TRUE(mini_obj.ok());
  ASSERT_TRUE(lloyd_obj.ok());
  EXPECT_GT(mini_obj.value(), 0.0);
  EXPECT_LE(mini_obj.value(), 1.25 * lloyd_obj.value())
      << "mini-batch " << mini_obj.value() << " vs Lloyd "
      << lloyd_obj.value();
}

TEST(MiniBatchKMeansTest, DiskStreamMatchesMatrixStream) {
  // The trainer sees only the ChunkStream interface; the same rows through
  // an .fvecs reader must give bit-identical centroids.
  const LabeledDataset ds = MakeGaussianMixture(700, 5, 4, 12.0f, 1.0f, 34);
  const std::string path = testing::TempDir() + "/minibatch_train.fvecs";
  ASSERT_TRUE(WriteFvecs(path, ds.points).ok());
  auto reader = FvecsReader::Open(path);
  ASSERT_TRUE(reader.ok());
  MatrixStream mem(ds.points);

  MiniBatchKMeansConfig mc;
  mc.num_clusters = 8;
  mc.epochs = 4;
  mc.chunk_rows = 128;
  mc.seed = 34;
  auto sample_disk = ReservoirSample(&reader.value(), 256, 34);
  auto sample_mem = ReservoirSample(&mem, 256, 34);
  ASSERT_TRUE(sample_disk.ok());
  ASSERT_TRUE(sample_mem.ok());
  auto from_disk = RunMiniBatchKMeans(&reader.value(), sample_disk.value(), mc);
  auto from_mem = RunMiniBatchKMeans(&mem, sample_mem.value(), mc);
  ASSERT_TRUE(from_disk.ok()) << from_disk.status().ToString();
  ASSERT_TRUE(from_mem.ok());

  EXPECT_EQ(from_disk.value().inertia, from_mem.value().inertia);
  EXPECT_EQ(from_disk.value().epochs_run, from_mem.value().epochs_run);
  for (size_t i = 0; i < from_mem.value().centroids.size(); ++i) {
    ASSERT_EQ(from_disk.value().centroids.data()[i],
              from_mem.value().centroids.data()[i]);
  }
  std::remove(path.c_str());
}

TEST(KMeansPartitionerTest, ScoreArgmaxMatchesNearestCentroid) {
  Rng rng(8);
  const Matrix data = Matrix::RandomGaussian(300, 8, &rng);
  KMeansConfig config;
  config.num_clusters = 6;
  config.seed = 8;
  KMeansPartitioner partitioner(data, config);
  const Matrix queries = Matrix::RandomGaussian(20, 8, &rng);
  const auto bins = partitioner.AssignBins(queries);
  for (size_t q = 0; q < 20; ++q) {
    float best = 1e30f;
    uint32_t best_c = 0;
    for (size_t c = 0; c < 6; ++c) {
      const float dist = SquaredDistance(
          queries.Row(q), partitioner.centroids().Row(c), 8);
      if (dist < best) {
        best = dist;
        best_c = static_cast<uint32_t>(c);
      }
    }
    EXPECT_EQ(bins[q], best_c);
  }
}

TEST(CrossPolytopeLshTest, RequiresEvenBins) {
  // Even bins work; scores have the +/- structure.
  CrossPolytopeLsh lsh(16, 8, 1);
  EXPECT_EQ(lsh.num_bins(), 8u);
}

TEST(CrossPolytopeLshTest, ScoresAreAntisymmetric) {
  CrossPolytopeLsh lsh(10, 6, 2);
  Rng rng(9);
  const Matrix points = Matrix::RandomGaussian(5, 10, &rng);
  const Matrix scores = lsh.ScoreBins(points);
  for (size_t i = 0; i < 5; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_FLOAT_EQ(scores(i, j), -scores(i, 3 + j));
    }
  }
}

TEST(CrossPolytopeLshTest, ScaleInvariantHash) {
  CrossPolytopeLsh lsh(12, 8, 3);
  Rng rng(10);
  Matrix point(1, 12);
  rng.FillGaussian(point.data(), 12);
  Matrix scaled = point.Clone();
  for (size_t j = 0; j < 12; ++j) scaled(0, j) *= 7.5f;
  EXPECT_EQ(lsh.AssignBins(point)[0], lsh.AssignBins(scaled)[0]);
}

TEST(CrossPolytopeLshTest, NearbyPointsOftenCollide) {
  CrossPolytopeLsh lsh(16, 8, 4);
  Rng rng(11);
  size_t collisions = 0;
  const size_t trials = 200;
  for (size_t t = 0; t < trials; ++t) {
    Matrix pair(2, 16);
    rng.FillGaussian(pair.data(), 16);
    for (size_t j = 0; j < 16; ++j) {
      pair(1, j) = pair(0, j) + 0.05f * static_cast<float>(rng.Gaussian());
    }
    const auto bins = lsh.AssignBins(pair);
    if (bins[0] == bins[1]) ++collisions;
  }
  // Tightly correlated pairs should nearly always hash together.
  EXPECT_GT(collisions, trials * 8 / 10);
}

// ---- Partition trees ----

struct TreeCase {
  const char* name;
  bool needs_knn;
};

class PartitionTreeTest : public ::testing::TestWithParam<TreeCase> {
 protected:
  static HyperplaneSplitFn MakeSplit(const std::string& name) {
    if (name == "rp") return RandomProjectionSplit();
    if (name == "pca") return PcaSplit();
    if (name == "two_means") return TwoMeansSplit();
    if (name == "learned_kd") return LearnedKdSplit();
    return BoostedSearchSplit();
  }
};

TEST_P(PartitionTreeTest, BuildsBalancedLeavesAndSearches) {
  const TreeCase test_case = GetParam();
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kGaussian;
  spec.num_base = 800;
  spec.num_queries = 60;
  spec.gt_k = 10;
  spec.knn_k = 8;
  spec.seed = 17;
  const Workload w = MakeWorkload(spec);

  PartitionTreeConfig config;
  config.depth = 4;  // 16 leaves
  config.seed = 21;
  PartitionTree tree(w.base, config, MakeSplit(test_case.name),
                     &w.knn_matrix);
  EXPECT_GE(tree.num_bins(), 8u);
  EXPECT_LE(tree.num_bins(), 16u);

  // Leaves partition the dataset without starvation.
  const auto bins = tree.AssignBins(w.base);
  const auto histogram = BinHistogram(bins, tree.num_bins());
  size_t nonempty = 0;
  for (size_t count : histogram) {
    if (count > 0) ++nonempty;
  }
  EXPECT_GE(nonempty, tree.num_bins() / 2);

  // Multi-probe search reaches decent recall well below a full scan.
  PartitionIndex index(&w.base, &tree);
  const auto result = index.SearchBatch(w.queries, 10, tree.num_bins() / 2);
  const double accuracy =
      KnnAccuracy(result, w.ground_truth.indices, w.ground_truth.k);
  EXPECT_GT(accuracy, 0.5) << test_case.name;
  EXPECT_LT(result.MeanCandidates(), 0.95 * w.base.rows());
}

INSTANTIATE_TEST_SUITE_P(
    Splits, PartitionTreeTest,
    ::testing::Values(TreeCase{"rp", false}, TreeCase{"pca", false},
                      TreeCase{"two_means", false},
                      TreeCase{"learned_kd", true},
                      TreeCase{"boosted", true}),
    [](const ::testing::TestParamInfo<TreeCase>& info) {
      return std::string(info.param.name);
    });

TEST(PartitionTreeTest, MedianSplitsAreBalanced) {
  Rng rng(22);
  const Matrix data = Matrix::RandomGaussian(512, 6, &rng);
  PartitionTreeConfig config;
  config.depth = 3;  // 8 leaves of 64 each under perfect median splits
  PartitionTree tree(data, config, RandomProjectionSplit());
  const auto bins = tree.AssignBins(data);
  EXPECT_LT(BalanceRatio(bins, tree.num_bins()), 1.3);
}

TEST(PartitionTreeTest, ScoresFormDistributionOverLeaves) {
  Rng rng(23);
  const Matrix data = Matrix::RandomGaussian(256, 4, &rng);
  PartitionTreeConfig config;
  config.depth = 3;
  PartitionTree tree(data, config, PcaSplit());
  const Matrix scores = tree.ScoreBins(data.GatherRows({0, 1, 2}));
  for (size_t i = 0; i < 3; ++i) {
    double sum = 0.0;
    for (size_t j = 0; j < tree.num_bins(); ++j) {
      EXPECT_GE(scores(i, j), 0.0f);
      sum += scores(i, j);
    }
    EXPECT_NEAR(sum, 1.0, 1e-3);  // sigmoid products over a full binary tree
  }
}

TEST(PartitionTreeTest, MinLeafSizeStopsSplitting) {
  Rng rng(24);
  const Matrix data = Matrix::RandomGaussian(40, 4, &rng);
  PartitionTreeConfig config;
  config.depth = 10;
  config.min_leaf_size = 16;
  PartitionTree tree(data, config, RandomProjectionSplit());
  // 40 points with min leaf 16 -> at most 2 levels of splits.
  EXPECT_LE(tree.num_bins(), 4u);
}

TEST(PartitionTreeTest, ParameterCountScalesWithInternalNodes) {
  Rng rng(25);
  const Matrix data = Matrix::RandomGaussian(256, 10, &rng);
  PartitionTreeConfig config;
  config.depth = 2;  // 3 internal nodes
  PartitionTree tree(data, config, RandomProjectionSplit());
  EXPECT_EQ(tree.ParameterCount(), 3u * 11u);
}

}  // namespace
}  // namespace usp
