// Fast k-NN graph construction: the workload behind the paper's offline
// phase (Sec. 4.2.1 — "Preparing this [k'-NN] matrix takes approximately 30
// minutes on the million-sized dataset"). BuildKnnMatrix (knn/brute_force.h)
// answers each row independently, re-scoring every (i, j) pair twice; the
// builder here exploits the symmetry d(i, j) == d(j, i) — each off-diagonal
// tile of the distance matrix is scored once and its distances feed BOTH
// endpoints' heaps — which halves the exact GEMM work, and parallelizes over
// tiles instead of rows.
//
// Three build paths share the KnnResult output shape (and therefore feed
// graphpart/ directly, like BuildKnnMatrix always has):
//   * BuildExact: in-memory symmetric blocked scan, bit-identical to
//     BuildKnnMatrix(data, k) (same norm-trick arithmetic; the (distance, id)
//     k-best set is push-order independent, so tile order cannot change it).
//   * BuildApproximate: index-accelerated — each row queries a prebuilt ANN
//     index over the same rows at a caller-chosen budget; recall is measured
//     against an exact graph with GraphRecall. Rows the budget leaves short
//     are padded by cycling real neighbors (FilterKnnToSubset's convention),
//     never with the kInvalidId sentinel, so BuildKnnGraph's id checks hold.
//   * BuildFromStream: out-of-core exact build over a ChunkStream
//     (dataset/fvecs_stream.h) holding only O(resident_rows + chunk) vectors
//     in memory; bit-identical to BuildExact at every resident/chunk split
//     because per-pair arithmetic never depends on chunk boundaries.
#ifndef USP_WORKLOAD_KNN_GRAPH_H_
#define USP_WORKLOAD_KNN_GRAPH_H_

#include <cstddef>
#include <cstdint>

#include "knn/brute_force.h"
#include "tensor/matrix.h"
#include "util/status.h"

namespace usp {

class ChunkStream;
class Index;

/// Graph-construction knobs.
struct KnnGraphConfig {
  /// Neighbors per row (the paper's k'). Must be < number of points.
  size_t k = 10;

  /// Caps tile/row parallelism (0 = pool default, 1 = serial). Results are
  /// bit-identical at every setting.
  size_t num_threads = 0;

  /// Rows per tile of the symmetric exact scan. A tile pair scores
  /// block_rows^2 distances from one dot-product block; the default keeps a
  /// tile's dots + two local heaps comfortably in cache while leaving enough
  /// tiles to parallelize over.
  size_t block_rows = 1024;
};

/// Builds k-NN graphs (self-matches excluded: row i never contains i) with
/// rows sorted by ascending (distance, id), as a KnnResult ready for
/// BuildKnnGraph / graphpart training.
class KnnGraphBuilder {
 public:
  explicit KnnGraphBuilder(KnnGraphConfig config = {});

  /// Exact graph over `data` (squared L2). Bit-identical — indices AND
  /// distances — to BuildKnnMatrix(data, config.k); roughly half the
  /// distance work thanks to tile symmetry, scheduled tile-parallel.
  KnnResult BuildExact(MatrixView data) const;

  /// Approximate graph: row i's neighbors come from `index` (built over
  /// exactly the rows of `data`, id == row) queried with k+1 at `budget`
  /// search effort, self-match dropped. Short rows — a budget that probed
  /// too few bins — are padded by cycling the row's real neighbors (or the
  /// row id itself when none were found). Exactness is the budget's choice:
  /// measure with GraphRecall against an exact build.
  KnnResult BuildApproximate(const Index& index, MatrixView data,
                             size_t budget) const;

  /// Exact out-of-core graph over a ChunkStream: resident blocks of up to
  /// `resident_rows` rows are copied in one at a time, and for each the
  /// stream is re-scanned chunk-wise to score resident-vs-chunk tiles (row
  /// norms are precomputed in one extra pass). Memory stays
  /// O(resident_rows * dim), independent of stream length. Bit-identical to
  /// BuildExact over the same rows at every (resident_rows, chunk) split.
  /// Errors propagate from the stream (malformed .fvecs, I/O failure).
  StatusOr<KnnResult> BuildFromStream(ChunkStream* stream,
                                      size_t resident_rows) const;

  /// Fraction of `exact`'s edges present in `graph` (intersection over n*k,
  /// id-set semantics per row). 1.0 means every exact neighbor was found.
  static double GraphRecall(const KnnResult& graph, const KnnResult& exact);

  const KnnGraphConfig& config() const { return config_; }

 private:
  const KnnGraphConfig config_;
};

}  // namespace usp

#endif  // USP_WORKLOAD_KNN_GRAPH_H_
