#include "workload/radius.h"

#include <algorithm>

#include "index/index.h"  // SearchStats
#include "util/thread_pool.h"

namespace usp {

std::vector<Neighbor> RangeFilterCandidates(const DistanceComputer& dist,
                                            const float* query,
                                            std::vector<uint32_t>* candidates,
                                            float radius,
                                            const IdSelector* filter,
                                            RadiusRowCounts* counts) {
  std::vector<uint32_t>& ids = *candidates;
  // Overlapping probes (ensembles, multi-bin unions) can repeat ids; dedupe so
  // no point is scored twice or reported twice.
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());

  if (filter != nullptr) {
    const size_t before = ids.size();
    ids.erase(
        std::remove_if(ids.begin(), ids.end(),
                       [&](uint32_t id) { return !filter->is_member(id); }),
        ids.end());
    if (counts != nullptr) {
      counts->filtered_out = static_cast<uint32_t>(before - ids.size());
    }
  }
  if (counts != nullptr) counts->scored = static_cast<uint32_t>(ids.size());

  std::vector<float> scratch;
  const float* prepared = dist.PrepareQuery(query, &scratch);
  std::vector<float> scores(ids.size());
  dist.ScoreIds(prepared, ids.data(), ids.size(), scores.data());

  std::vector<Neighbor> hits;
  for (size_t i = 0; i < ids.size(); ++i) {
    if (scores[i] <= radius) hits.push_back(Neighbor{scores[i], ids[i]});
  }
  std::sort(hits.begin(), hits.end());  // (distance, id) total order
  return hits;
}

RadiusResult CollectRadiusRows(
    size_t num_queries, const RadiusOptions& options,
    const std::function<std::vector<Neighbor>(size_t, RadiusResult*)>&
        row_fn) {
  RadiusResult result;
  result.offsets.assign(num_queries + 1, 0);
  result.candidate_counts.assign(num_queries, 0);
  if (options.stats) {
    result.stats.emplace();
    result.stats->Allocate(num_queries);
  }

  std::vector<std::vector<Neighbor>> rows(num_queries);
  ParallelFor(num_queries, 8, options.num_threads,
              [&](size_t q_begin, size_t q_end, size_t) {
                for (size_t q = q_begin; q < q_end; ++q) {
                  rows[q] = row_fn(q, &result);
                }
              });

  size_t total = 0;
  for (size_t q = 0; q < num_queries; ++q) {
    result.offsets[q] = total;
    total += rows[q].size();
  }
  result.offsets[num_queries] = total;
  result.ids.reserve(total);
  result.distances.reserve(total);
  for (const auto& row : rows) {
    for (const Neighbor& n : row) {
      result.ids.push_back(n.id);
      result.distances.push_back(n.distance);
    }
  }
  return result;
}

}  // namespace usp
