// Radius (range) search: the second query shape of the workload subsystem.
// A RadiusRequest asks, for each query, for *every* indexed point whose
// minimized-form metric distance (dist/metric.h: squared L2, negated inner
// product, cosine distance) is <= radius — the semantics of sklearn's
// radius_neighbors, with results sorted by ascending distance per row.
//
// Results are variable length, so RadiusResult is CSR-shaped: row q spans
// [offsets[q], offsets[q+1]) of the flat ids/distances arrays; an empty row
// has offsets[q] == offsets[q+1]. Every Index implements
// RadiusSearchBatch(request) (index/index.h); at full budget the result is
// bit-identical — offsets, ids, AND distances — to the filtered brute-force
// reference BruteForceRadius (knn/brute_force.h), the same acceptance
// contract filtered k-NN search pins (tests/radius_search_test.cc).
//
// This header also hosts the two helpers every candidate-generating index
// type shares: RangeFilterCandidates (sort/dedupe/pushdown + exact ScoreIds
// scoring + radius cut) and CollectRadiusRows (the parallel per-query driver
// that assembles the CSR result).
#ifndef USP_WORKLOAD_RADIUS_H_
#define USP_WORKLOAD_RADIUS_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <vector>

#include "dist/distance_computer.h"
#include "index/id_selector.h"
#include "knn/top_k.h"
#include "tensor/matrix.h"

namespace usp {

/// Optional per-query instrumentation (SearchOptions::stats /
/// RadiusOptions::stats), sized one entry per query. Lets callers close the
/// recall/latency loop per query instead of batch-averaging through
/// MeanCandidates(). Defined here (not index/index.h, which includes this
/// header) because RadiusResult embeds it by value.
struct SearchStats {
  /// Candidates actually scored by exact/ADC distance, post-filter — the
  /// per-query |C(q)| of Eq. 4. Matches candidate_counts entry for entry.
  std::vector<uint32_t> candidates_scored;

  /// Bins/lists probed (partition-based types; summed across models for
  /// ensembles and across segments for DynamicIndex; 0 for partition-free
  /// scans and HNSW).
  std::vector<uint32_t> bins_probed;

  /// Candidates dropped by the selector before scoring (for HNSW: visited
  /// base-layer nodes the selector kept out of the result set; for
  /// DynamicIndex: also tombstoned hits dropped at the merge).
  std::vector<uint32_t> filtered_out;

  /// HNSW only: base-layer nodes visited during graph traversal (0
  /// elsewhere). candidates_scored additionally includes the upper-layer
  /// greedy-descent evaluations, so it can exceed this count.
  std::vector<uint32_t> nodes_visited;

  /// Sizes every counter to `num_queries` zeroed entries.
  void Allocate(size_t num_queries);
};

/// Per-query radius-search knobs. The default budget is *full effort* —
/// unlike top-k search, a range query's natural contract is exactness
/// ("everything within r"), so callers opt into approximation by lowering
/// the budget rather than opting into exactness by raising it.
struct RadiusOptions {
  /// Search effort: probed bins for the partition-based types, base-layer
  /// beam width for HNSW, forwarded to every segment/shard by the serving
  /// types. The default probes everything, making the result exact.
  size_t budget = std::numeric_limits<size_t>::max();

  /// Caps the per-query sharding over the global thread pool (0 = pool
  /// default, 1 = serial). Results are bit-identical at every setting.
  size_t num_threads = 0;

  /// Optional membership predicate over the queried index's id space,
  /// applied before scoring (selector pushdown) exactly as in k-NN search.
  /// Non-owning; must outlive the call. nullptr means unfiltered.
  const IdSelector* filter = nullptr;

  /// When true, the result carries a SearchStats block (index/index.h).
  bool stats = false;
};

/// A batch of range queries: all points within `radius` (inclusive) of each
/// query row, in the index metric's minimized form.
struct RadiusRequest {
  MatrixView queries;
  float radius = 0.0f;
  RadiusOptions options;
};

/// CSR-shaped range-search output: row q spans [offsets[q], offsets[q+1]) of
/// `ids`/`distances`, sorted by ascending (distance, id). No padding
/// sentinel exists here — an empty row is simply a zero-length span, pinned
/// by tests/radius_search_test.cc (EmptyRowOffsetContract).
struct RadiusResult {
  std::vector<size_t> offsets;   ///< num_queries + 1 entries; offsets[0] == 0
  std::vector<uint32_t> ids;     ///< flat hit ids, row-major by query
  std::vector<float> distances;  ///< parallel to ids; minimized form

  /// Candidates exact-scored per query (post-filter), the radius analogue of
  /// BatchSearchResult::candidate_counts.
  std::vector<uint32_t> candidate_counts;

  /// Per-query instrumentation; engaged only when RadiusOptions::stats.
  std::optional<SearchStats> stats;

  size_t num_queries() const {
    return offsets.empty() ? 0 : offsets.size() - 1;
  }
  size_t RowSize(size_t q) const { return offsets[q + 1] - offsets[q]; }
  const uint32_t* RowIds(size_t q) const { return ids.data() + offsets[q]; }
  const float* RowDistances(size_t q) const {
    return distances.data() + offsets[q];
  }
};

/// Work counters of one RangeFilterCandidates call (mirrors RerankCounts).
struct RadiusRowCounts {
  uint32_t scored = 0;        ///< candidates exact-scored (post-filter)
  uint32_t filtered_out = 0;  ///< candidates the selector dropped unscored
};

/// The shared range-filter stage of every candidate-generating index type:
/// sorts and deduplicates `candidates` in place, drops selector-rejected ids
/// *before* scoring (pushdown — same contract as RerankCandidatesScored),
/// exact-scores the survivors through dist.ScoreIds, and returns the hits
/// with distance <= radius sorted by ascending (distance, id). Because
/// ScoreIds applies the same per-row kernel as the brute-force reference,
/// a candidate set that covers the allowed base (full budget) makes the
/// output bit-identical to BruteForceRadius.
std::vector<Neighbor> RangeFilterCandidates(const DistanceComputer& dist,
                                            const float* query,
                                            std::vector<uint32_t>* candidates,
                                            float radius,
                                            const IdSelector* filter = nullptr,
                                            RadiusRowCounts* counts = nullptr);

/// Parallel per-query driver: runs `row_fn(q, &result)` for every query
/// (sharded over the pool under options.num_threads), where row_fn returns
/// query q's hits sorted by (distance, id) and fills
/// result->candidate_counts[q] (and the stats entries when engaged), then
/// assembles the CSR arrays. candidate_counts and stats are pre-sized before
/// the parallel region; row_fn must touch only its own q entries.
RadiusResult CollectRadiusRows(
    size_t num_queries, const RadiusOptions& options,
    const std::function<std::vector<Neighbor>(size_t, RadiusResult*)>& row_fn);

}  // namespace usp

#endif  // USP_WORKLOAD_RADIUS_H_
