#include "workload/knn_graph.h"

#include <algorithm>
#include <mutex>
#include <utility>
#include <vector>

#include "dataset/fvecs_stream.h"
#include "dist/distance_kernels.h"
#include "index/index.h"
#include "knn/top_k.h"
#include "tensor/ops.h"
#include "util/thread_pool.h"

namespace usp {

namespace {

// Writes each row's heap, sorted ascending by (distance, id), into the flat
// KnnResult arrays. `first_row` offsets the output for streamed blocks.
void DrainHeaps(std::vector<TopK>* heaps, size_t first_row, size_t k,
                KnnResult* result) {
  for (size_t i = 0; i < heaps->size(); ++i) {
    auto sorted = (*heaps)[i].TakeSorted();
    const size_t row = first_row + i;
    for (size_t j = 0; j < k; ++j) {
      result->indices[row * k + j] = sorted[j].id;
      result->distances[row * k + j] = sorted[j].distance;
    }
  }
}

}  // namespace

KnnGraphBuilder::KnnGraphBuilder(KnnGraphConfig config)
    : config_(config) {
  USP_CHECK(config_.k > 0);
  USP_CHECK(config_.block_rows > 0);
}

KnnResult KnnGraphBuilder::BuildExact(MatrixView data) const {
  const size_t n = data.rows(), d = data.cols(), k = config_.k;
  const size_t bs = config_.block_rows;
  USP_CHECK(k < n);
  const size_t nblocks = (n + bs - 1) / bs;

  std::vector<float> norms;
  RowSquaredNorms(data, &norms);
  const DistanceKernels& kd = GetDistanceKernels();

  // Global per-row heaps, guarded per row-block: a tile merges its bounded
  // local heaps under at most two block locks, so the expensive scoring runs
  // lock-free. The (distance, id) k-best set is push-order independent and
  // the distance values are the same bits BuildKnnMatrix computes (dot and +
  // are commutative, so d(i, j) from tile (bi, bj) equals d(j, i) bit for
  // bit), which is what makes the tile schedule invisible in the output.
  std::vector<TopK> heaps;
  heaps.reserve(n);
  for (size_t i = 0; i < n; ++i) heaps.emplace_back(k);
  std::vector<std::mutex> locks(nblocks);

  // All tile pairs of the upper triangle, diagonal included.
  std::vector<std::pair<uint32_t, uint32_t>> tiles;
  for (uint32_t bi = 0; bi < nblocks; ++bi) {
    for (uint32_t bj = bi; bj < nblocks; ++bj) tiles.emplace_back(bi, bj);
  }

  ParallelFor(
      tiles.size(), 1, config_.num_threads,
      [&](size_t t_begin, size_t t_end, size_t) {
        std::vector<float> dots(bs);
        for (size_t t = t_begin; t < t_end; ++t) {
          const uint32_t bi = tiles[t].first, bj = tiles[t].second;
          const size_t i0 = bi * bs, i1 = std::min(n, i0 + bs);
          const size_t j0 = bj * bs, j1 = std::min(n, j0 + bs);
          const bool diagonal = bi == bj;

          std::vector<TopK> local_i, local_j;
          local_i.reserve(i1 - i0);
          for (size_t i = i0; i < i1; ++i) local_i.emplace_back(k);
          if (!diagonal) {
            local_j.reserve(j1 - j0);
            for (size_t j = j0; j < j1; ++j) local_j.emplace_back(k);
          }

          for (size_t i = i0; i < i1; ++i) {
            kd.score_block_dot(data.Row(i), data.Row(j0), j1 - j0, d,
                               dots.data());
            for (size_t j = j0; j < j1; ++j) {
              if (i == j) continue;
              const float dist = std::max(
                  0.0f, norms[i] + norms[j] - 2.0f * dots[j - j0]);
              local_i[i - i0].Push(dist, static_cast<uint32_t>(j));
              // A diagonal tile iterates both (i, j) and (j, i), so only
              // off-diagonal tiles push the mirrored edge.
              if (!diagonal) {
                local_j[j - j0].Push(dist, static_cast<uint32_t>(i));
              }
            }
          }

          {
            std::lock_guard<std::mutex> guard(locks[bi]);
            for (size_t i = i0; i < i1; ++i) {
              for (const Neighbor& nb : local_i[i - i0].TakeSorted()) {
                heaps[i].Push(nb.distance, nb.id);
              }
            }
          }
          if (!diagonal) {
            std::lock_guard<std::mutex> guard(locks[bj]);
            for (size_t j = j0; j < j1; ++j) {
              for (const Neighbor& nb : local_j[j - j0].TakeSorted()) {
                heaps[j].Push(nb.distance, nb.id);
              }
            }
          }
        }
      });

  KnnResult result;
  result.k = k;
  result.indices.resize(n * k);
  result.distances.resize(n * k);
  DrainHeaps(&heaps, 0, k, &result);
  return result;
}

KnnResult KnnGraphBuilder::BuildApproximate(const Index& index,
                                            MatrixView data,
                                            size_t budget) const {
  const size_t n = data.rows(), k = config_.k;
  USP_CHECK(k < n);
  USP_CHECK(index.size() == n);
  USP_CHECK(index.dim() == data.cols());

  // k+1 because every row is its own nearest neighbor under any metric the
  // index serves; the self-match is dropped below.
  SearchRequest request;
  request.queries = data;
  request.options.k = k + 1;
  request.options.budget = budget;
  request.options.num_threads = config_.num_threads;
  const BatchSearchResult batch = index.SearchBatch(request);

  KnnResult result;
  result.k = k;
  result.indices.resize(n * k);
  result.distances.resize(n * k);
  std::vector<Neighbor> kept;
  for (size_t q = 0; q < n; ++q) {
    kept.clear();
    for (size_t j = 0; j < batch.k && kept.size() < k; ++j) {
      const uint32_t id = batch.ids[q * batch.k + j];
      if (id == kInvalidId || id == static_cast<uint32_t>(q)) continue;
      kept.push_back(Neighbor{batch.distances[q * batch.k + j], id});
    }
    // Budget-starved rows pad by cycling the real neighbors (the
    // FilterKnnToSubset convention — BuildKnnGraph rejects sentinel ids);
    // a row with no hits at all falls back to itself at distance 0.
    if (kept.empty()) {
      kept.push_back(Neighbor{0.0f, static_cast<uint32_t>(q)});
    }
    for (size_t j = 0; j < k; ++j) {
      const Neighbor& nb = kept[j % kept.size()];
      result.indices[q * k + j] = nb.id;
      result.distances[q * k + j] = nb.distance;
    }
  }
  return result;
}

StatusOr<KnnResult> KnnGraphBuilder::BuildFromStream(
    ChunkStream* stream, size_t resident_rows) const {
  USP_CHECK(stream != nullptr);
  USP_CHECK(resident_rows > 0);
  const size_t n = stream->num_rows(), d = stream->dim(), k = config_.k;
  USP_CHECK(k < n);
  const size_t io_rows = config_.block_rows;

  // Pass 1: row norms. RowSquaredNorms is a per-row reduction, so computing
  // it chunk by chunk yields the same bits as one whole-matrix pass — the
  // root of the bit-identity-with-BuildExact contract.
  std::vector<float> norms(n);
  Status st = stream->Reset();
  if (!st.ok()) return st;
  size_t filled = 0;
  std::vector<float> chunk_norms;
  for (;;) {
    StatusOr<MatrixView> chunk = stream->NextChunk(io_rows);
    if (!chunk.ok()) return chunk.status();
    const MatrixView view = chunk.value();
    if (view.rows() == 0) break;
    if (filled + view.rows() > n) {
      return Status::FailedPrecondition(
          "stream yielded more rows than advertised");
    }
    RowSquaredNorms(view, &chunk_norms);
    std::copy(chunk_norms.begin(), chunk_norms.end(), norms.begin() + filled);
    filled += view.rows();
  }
  // Streams are external input: a length lie is a Status, not a crash.
  if (filled != n) {
    return Status::FailedPrecondition(
        "stream ended before yielding all advertised rows");
  }

  KnnResult result;
  result.k = k;
  result.indices.resize(n * k);
  result.distances.resize(n * k);
  const DistanceKernels& kd = GetDistanceKernels();

  // Pass 2: one resident block at a time. For each block, rewind and copy
  // its rows in, then rewind again and score resident-vs-chunk tiles across
  // the whole stream. Memory is O(resident_rows * d); the stream is read
  // ceil(n / resident_rows) + 1 times.
  for (size_t r0 = 0; r0 < n; r0 += resident_rows) {
    const size_t r1 = std::min(n, r0 + resident_rows);
    Matrix resident(r1 - r0, d);

    st = stream->Reset();
    if (!st.ok()) return st;
    size_t cursor = 0;
    while (cursor < r1) {
      StatusOr<MatrixView> chunk = stream->NextChunk(io_rows);
      if (!chunk.ok()) return chunk.status();
      const MatrixView view = chunk.value();
      if (view.rows() == 0) {
        return Status::FailedPrecondition(
            "stream ended before yielding all advertised rows");
      }
      // Copy the overlap of [cursor, cursor + rows) with [r0, r1).
      const size_t lo = std::max(cursor, r0);
      const size_t hi = std::min(cursor + view.rows(), r1);
      for (size_t g = lo; g < hi; ++g) {
        const float* src = view.Row(g - cursor);
        std::copy(src, src + d, resident.Row(g - r0));
      }
      cursor += view.rows();
    }

    std::vector<TopK> heaps;
    heaps.reserve(r1 - r0);
    for (size_t i = r0; i < r1; ++i) heaps.emplace_back(k);

    st = stream->Reset();
    if (!st.ok()) return st;
    size_t b_start = 0;
    for (;;) {
      StatusOr<MatrixView> chunk = stream->NextChunk(io_rows);
      if (!chunk.ok()) return chunk.status();
      const MatrixView view = chunk.value();
      if (view.rows() == 0) break;
      ParallelFor(
          r1 - r0, 8, config_.num_threads,
          [&](size_t begin, size_t end, size_t) {
            std::vector<float> dots(view.rows());
            for (size_t i = begin; i < end; ++i) {
              const size_t gi = r0 + i;
              kd.score_block_dot(resident.Row(i), view.data(), view.rows(), d,
                                 dots.data());
              for (size_t j = 0; j < view.rows(); ++j) {
                const size_t gj = b_start + j;
                if (gi == gj) continue;
                const float dist = std::max(
                    0.0f, norms[gi] + norms[gj] - 2.0f * dots[j]);
                heaps[i].Push(dist, static_cast<uint32_t>(gj));
              }
            }
          });
      b_start += view.rows();
    }
    DrainHeaps(&heaps, r0, k, &result);
  }
  return result;
}

double KnnGraphBuilder::GraphRecall(const KnnResult& graph,
                                    const KnnResult& exact) {
  USP_CHECK(graph.k == exact.k);
  USP_CHECK(graph.indices.size() == exact.indices.size());
  const size_t k = exact.k;
  USP_CHECK(k > 0);
  const size_t n = exact.indices.size() / k;
  size_t hits = 0;
  std::vector<uint32_t> row;
  for (size_t q = 0; q < n; ++q) {
    row.assign(graph.Row(q), graph.Row(q) + k);
    std::sort(row.begin(), row.end());
    for (size_t j = 0; j < k; ++j) {
      if (std::binary_search(row.begin(), row.end(), exact.Row(q)[j])) ++hits;
    }
  }
  return n == 0 ? 1.0 : static_cast<double>(hits) / static_cast<double>(n * k);
}

}  // namespace usp
