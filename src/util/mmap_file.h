// Read-only memory-mapped file (RAII). The zero-copy substrate of
// index/serialize.h: a mapped index container serves searches directly from
// the page cache, so a multi-GB index is query-ready in milliseconds and the
// mapping is shared across processes opening the same file.
#ifndef USP_UTIL_MMAP_FILE_H_
#define USP_UTIL_MMAP_FILE_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace usp {

/// Move-only owner of one PROT_READ/MAP_SHARED mapping. The mapping lives
/// until destruction; views into data() must not outlive the object.
class MmapFile {
 public:
  MmapFile() = default;
  ~MmapFile();
  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  /// Maps `path` read-only. Fails with kIoError for missing/empty/unmappable
  /// files; never aborts.
  static StatusOr<MmapFile> Open(const std::string& path);

  bool valid() const { return data_ != nullptr; }
  const uint8_t* data() const { return static_cast<const uint8_t*>(data_); }
  size_t size() const { return size_; }

 private:
  MmapFile(void* data, size_t size) : data_(data), size_(size) {}

  void* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace usp

#endif  // USP_UTIL_MMAP_FILE_H_
