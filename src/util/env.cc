#include "util/env.h"

#include <cstdlib>

namespace usp {

int64_t EnvInt(const char* name, int64_t default_value) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return default_value;
  char* end = nullptr;
  const long long parsed = std::strtoll(raw, &end, 10);
  if (end == raw) return default_value;
  return static_cast<int64_t>(parsed);
}

double EnvDouble(const char* name, double default_value) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return default_value;
  char* end = nullptr;
  const double parsed = std::strtod(raw, &end);
  if (end == raw) return default_value;
  return parsed;
}

std::string EnvString(const char* name, const std::string& default_value) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return default_value;
  return raw;
}

}  // namespace usp
