#include "util/rng.h"

#include <cmath>

#include "util/status.h"

namespace usp {

namespace {
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

float Rng::UniformFloat(float lo, float hi) {
  return lo + static_cast<float>(Uniform()) * (hi - lo);
}

uint64_t Rng::UniformInt(uint64_t n) {
  USP_CHECK(n > 0);
  // Lemire-style rejection-free for our purposes (bias < 2^-64 * n).
  return static_cast<uint64_t>(Uniform() * static_cast<double>(n)) % n;
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  const double u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

void Rng::FillGaussian(float* out, size_t count, float mean, float stddev) {
  for (size_t i = 0; i < count; ++i) {
    out[i] = mean + stddev * static_cast<float>(Gaussian());
  }
}

void Rng::Shuffle(std::vector<uint32_t>* values) {
  for (size_t i = values->size(); i > 1; --i) {
    const size_t j = UniformInt(i);
    std::swap((*values)[i - 1], (*values)[j]);
  }
}

std::vector<uint32_t> Rng::SampleWithoutReplacement(uint32_t n, uint32_t k) {
  USP_CHECK(k <= n);
  // Partial Fisher-Yates over an index array; O(n) memory, O(n + k) time.
  std::vector<uint32_t> idx(n);
  for (uint32_t i = 0; i < n; ++i) idx[i] = i;
  for (uint32_t i = 0; i < k; ++i) {
    const uint32_t j = i + static_cast<uint32_t>(UniformInt(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xA5A5A5A5DEADBEEFULL); }

}  // namespace usp
