// Lightweight error propagation for fallible operations (mostly IO).
// Library code never throws; programmer errors are guarded with USP_CHECK.
#ifndef USP_UTIL_STATUS_H_
#define USP_UTIL_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace usp {

/// Error codes used across the library. kOk means success.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIoError,
  kFailedPrecondition,
  kInternal,
};

/// Result of a fallible operation: a code plus a human-readable message.
/// Cheap to copy when ok (empty message).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<code>: <message>" for logs and test failures.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Use `ok()` before `value()`.
/// T need not be default-constructible.
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {}     // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

 private:
  Status status_;
  std::optional<T> value_;
};

namespace internal {
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr);
}  // namespace internal

}  // namespace usp

/// Aborts with a diagnostic when `cond` is false. Used for programmer errors
/// (dimension mismatches, out-of-range bins) that are bugs, not bad input.
#define USP_CHECK(cond)                                         \
  do {                                                          \
    if (!(cond)) {                                              \
      ::usp::internal::CheckFailed(__FILE__, __LINE__, #cond);  \
    }                                                           \
  } while (0)

#endif  // USP_UTIL_STATUS_H_
