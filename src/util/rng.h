// Deterministic, fast pseudo-random generation. Every stochastic component in
// the library takes an explicit seed so experiments are reproducible.
#ifndef USP_UTIL_RNG_H_
#define USP_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace usp {

/// xoshiro256** seeded via splitmix64. Not cryptographic; chosen for speed and
/// reproducibility across platforms (no reliance on std:: distributions whose
/// output is implementation-defined).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform float in [lo, hi).
  float UniformFloat(float lo, float hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Standard normal via Box-Muller (cached pair).
  double Gaussian();

  /// Fills `out` with iid N(mean, stddev) floats.
  void FillGaussian(float* out, size_t count, float mean = 0.0f,
                    float stddev = 1.0f);

  /// Fisher-Yates shuffle of an index vector.
  void Shuffle(std::vector<uint32_t>* values);

  /// k distinct indices sampled uniformly from [0, n). Requires k <= n.
  std::vector<uint32_t> SampleWithoutReplacement(uint32_t n, uint32_t k);

  /// Derives an independent child generator (for per-thread streams).
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace usp

#endif  // USP_UTIL_RNG_H_
