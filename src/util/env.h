// Environment-variable configuration used by benchmarks so dataset scale can
// be raised (e.g. to full SIFT1M) without recompiling.
#ifndef USP_UTIL_ENV_H_
#define USP_UTIL_ENV_H_

#include <cstdint>
#include <string>

namespace usp {

/// Returns the integer value of environment variable `name`, or
/// `default_value` when unset or unparsable.
int64_t EnvInt(const char* name, int64_t default_value);

/// Returns the double value of environment variable `name`, or
/// `default_value` when unset or unparsable.
double EnvDouble(const char* name, double default_value);

/// Returns environment variable `name` or `default_value` when unset.
std::string EnvString(const char* name, const std::string& default_value);

}  // namespace usp

#endif  // USP_UTIL_ENV_H_
