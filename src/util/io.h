// Byte-stream abstractions for serialization: a Writer/Reader pair with file
// and in-memory backends. Model and index serializers are written against
// these interfaces so the same record format can target a standalone file or
// an embedded section of the index container (index/container.h).
#ifndef USP_UTIL_IO_H_
#define USP_UTIL_IO_H_

#include <cstdint>
#include <cstdio>
#include <string>

#include "util/status.h"

namespace usp {

/// Sequential byte sink. Write returns false on the first failure and every
/// call after it, so callers can chain writes and check once.
class Writer {
 public:
  virtual ~Writer() = default;
  virtual bool Write(const void* data, size_t size) = 0;

  /// Convenience for PODs: Write(&value, sizeof(value)).
  template <typename T>
  bool WritePod(const T& value) {
    return Write(&value, sizeof(T));
  }
};

/// Sequential byte source. Read returns false when fewer than `size` bytes
/// remain (a short read), after which the stream position is unspecified.
class Reader {
 public:
  virtual ~Reader() = default;
  virtual bool Read(void* data, size_t size) = 0;

  template <typename T>
  bool ReadPod(T* value) {
    return Read(value, sizeof(T));
  }
};

/// Writer over a stdio FILE. Owns the handle; closes on destruction. Check
/// `ok()` after construction (open failure) and `Close()` to flush.
class FileWriter : public Writer {
 public:
  explicit FileWriter(const std::string& path);
  ~FileWriter() override;
  FileWriter(const FileWriter&) = delete;
  FileWriter& operator=(const FileWriter&) = delete;

  bool ok() const { return file_ != nullptr && !failed_; }
  bool Write(const void* data, size_t size) override;

  /// Flushes and closes; returns false if any write (or the close) failed.
  bool Close();

 private:
  std::FILE* file_ = nullptr;
  bool failed_ = false;
};

/// Reader over a stdio FILE. Owns the handle; closes on destruction.
class FileReader : public Reader {
 public:
  explicit FileReader(const std::string& path);
  ~FileReader() override;
  FileReader(const FileReader&) = delete;
  FileReader& operator=(const FileReader&) = delete;

  bool ok() const { return file_ != nullptr; }
  bool Read(void* data, size_t size) override;

  /// Absolute seek; returns false on failure.
  bool Seek(uint64_t offset);

  /// Total file size in bytes, or an error for unreadable files.
  StatusOr<uint64_t> Size();

 private:
  std::FILE* file_ = nullptr;
};

/// Writer that appends to an in-memory string (used to embed nested records,
/// e.g. a partitioner model blob inside an index container section).
class StringWriter : public Writer {
 public:
  bool Write(const void* data, size_t size) override;
  const std::string& bytes() const { return bytes_; }
  std::string TakeBytes() { return std::move(bytes_); }

 private:
  std::string bytes_;
};

/// Reader over a caller-owned byte range (e.g. an mmap'd container section).
/// Does not copy; the range must outlive the reader.
class MemReader : public Reader {
 public:
  MemReader(const void* data, size_t size)
      : cursor_(static_cast<const uint8_t*>(data)),
        end_(static_cast<const uint8_t*>(data) + size) {}

  bool Read(void* data, size_t size) override;
  size_t remaining() const { return static_cast<size_t>(end_ - cursor_); }

 private:
  const uint8_t* cursor_;
  const uint8_t* end_;
};

}  // namespace usp

#endif  // USP_UTIL_IO_H_
