// Monotonic wall-clock timing for experiment reporting.
#ifndef USP_UTIL_TIMER_H_
#define USP_UTIL_TIMER_H_

#include <chrono>

namespace usp {

/// Stopwatch measuring elapsed wall time since construction or Reset().
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace usp

#endif  // USP_UTIL_TIMER_H_
