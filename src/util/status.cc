#include "util/status.h"

namespace usp {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kIoError: return "IO_ERROR";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  return std::string(CodeName(code_)) + ": " + message_;
}

namespace internal {
void CheckFailed(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "USP_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}
}  // namespace internal

}  // namespace usp
