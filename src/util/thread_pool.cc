#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace usp {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(lock,
                           [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // shutting down and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool();
  return *pool;
}

void ParallelFor(size_t count, size_t grain,
                 const std::function<void(size_t, size_t, size_t)>& body) {
  ParallelFor(count, grain, /*num_threads=*/0, body);
}

void ParallelFor(size_t count, size_t grain, size_t num_threads,
                 const std::function<void(size_t, size_t, size_t)>& body) {
  if (count == 0) return;
  // Serial cases never touch Global(), so a strictly serial caller does not
  // lazily spin up the pool as a side effect.
  if (num_threads == 1 || count <= grain) {
    body(0, count, 0);
    return;
  }
  ThreadPool& pool = ThreadPool::Global();
  const size_t workers =
      num_threads == 0 ? pool.num_threads() : num_threads;
  if (workers <= 1) {
    body(0, count, 0);
    return;
  }
  const size_t chunks = std::min(workers, (count + grain - 1) / grain);
  const size_t chunk_size = (count + chunks - 1) / chunks;
  for (size_t c = 0; c < chunks; ++c) {
    const size_t begin = c * chunk_size;
    const size_t end = std::min(count, begin + chunk_size);
    if (begin >= end) break;
    pool.Submit([&body, begin, end, c] { body(begin, end, c); });
  }
  pool.Wait();
}

}  // namespace usp
