#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace usp {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}


void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(lock,
                           [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // shutting down and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool();
  return *pool;
}

void ParallelFor(size_t count, size_t grain,
                 const std::function<void(size_t, size_t, size_t)>& body) {
  ParallelFor(count, grain, /*num_threads=*/0, body);
}

void ParallelFor(size_t count, size_t grain, size_t num_threads,
                 const std::function<void(size_t, size_t, size_t)>& body) {
  if (count == 0) return;
  // Serial cases never touch Global(), so a strictly serial caller does not
  // lazily spin up the pool as a side effect.
  if (num_threads == 1 || count <= grain) {
    body(0, count, 0);
    return;
  }
  ThreadPool& pool = ThreadPool::Global();
  const size_t workers =
      num_threads == 0 ? pool.num_threads() : num_threads;
  if (workers <= 1) {
    body(0, count, 0);
    return;
  }
  const size_t chunks = std::min(workers, (count + grain - 1) / grain);
  const size_t chunk_size = (count + chunks - 1) / chunks;
  const size_t real_chunks = (count + chunk_size - 1) / chunk_size;
  if (real_chunks <= 1) {
    body(0, count, 0);
    return;
  }

  // Work-claiming execution with per-call completion. Chunk boundaries are
  // fixed up front (so results stay bit-identical regardless of which thread
  // claims which chunk); the calling thread claims chunks alongside the
  // workers instead of blocking, which makes this safe to reach from a task
  // already running on the pool — e.g. a background Seal/Compact of the
  // serving layer whose training fans out — even on a one-worker pool. The
  // caller only ever executes its *own* chunks (never arbitrary queued
  // tasks), so a caller holding a lock cannot be re-entered by unrelated
  // work that takes the same lock.
  struct Call {
    std::atomic<size_t> next_chunk{0};
    std::mutex mutex;
    std::condition_variable done;
    size_t finished = 0;
  };
  auto call = std::make_shared<Call>();
  auto run_chunks = [call, &body, chunk_size, count, real_chunks] {
    for (;;) {
      const size_t c =
          call->next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= real_chunks) return;
      const size_t begin = c * chunk_size;
      const size_t end = std::min(count, begin + chunk_size);
      body(begin, end, c);
      std::unique_lock<std::mutex> lock(call->mutex);
      if (++call->finished == real_chunks) call->done.notify_all();
    }
  };
  // The task lambdas capture `call` by shared_ptr and `body` by reference;
  // they touch `body` only while holding an unclaimed chunk, which implies
  // the caller is still inside the final wait below.
  for (size_t c = 0; c + 1 < real_chunks; ++c) pool.Submit(run_chunks);
  run_chunks();
  std::unique_lock<std::mutex> lock(call->mutex);
  call->done.wait(lock, [&] { return call->finished == real_chunks; });
}

void ParallelInvoke(size_t count, const std::function<void(size_t)>& body) {
  if (count == 0) return;
  if (count == 1) {
    body(0);
    return;
  }
  ThreadPool& pool = ThreadPool::Global();
  if (pool.num_threads() <= 1) {
    for (size_t i = 0; i < count; ++i) body(i);
    return;
  }

  // Same work-claiming shape as ParallelFor, but each claimed unit is one
  // whole task rather than a range chunk. Tasks may themselves run
  // ParallelFor: from a worker they are pool-resident tasks (supported), and
  // from the caller they are ordinary call-stack invocations. What would be
  // unsupported is a *ParallelFor body* spawning nested parallelism — a task
  // here is not a ParallelFor body, so the contract holds.
  struct Call {
    std::atomic<size_t> next{0};
    std::mutex mutex;
    std::condition_variable done;
    size_t finished = 0;
  };
  auto call = std::make_shared<Call>();
  auto run_tasks = [call, &body, count] {
    for (;;) {
      const size_t i = call->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      body(i);
      std::unique_lock<std::mutex> lock(call->mutex);
      if (++call->finished == count) call->done.notify_all();
    }
  };
  // As in ParallelFor, `body` is captured by reference: pool tasks only touch
  // it while holding an unclaimed index, which implies the caller is still
  // blocked in the wait below. Submit at most count-1 helpers.
  const size_t helpers = std::min(count - 1, pool.num_threads());
  for (size_t i = 0; i < helpers; ++i) pool.Submit(run_tasks);
  run_tasks();
  std::unique_lock<std::mutex> lock(call->mutex);
  call->done.wait(lock, [&] { return call->finished == count; });
}

}  // namespace usp
