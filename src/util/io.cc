#include "util/io.h"

#include <cstring>

namespace usp {

FileWriter::FileWriter(const std::string& path)
    : file_(std::fopen(path.c_str(), "wb")) {}

FileWriter::~FileWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

bool FileWriter::Write(const void* data, size_t size) {
  if (file_ == nullptr || failed_) return false;
  if (std::fwrite(data, 1, size, file_) != size) {
    failed_ = true;
    return false;
  }
  return true;
}

bool FileWriter::Close() {
  if (file_ == nullptr) return false;
  const bool close_ok = std::fclose(file_) == 0;
  file_ = nullptr;
  return close_ok && !failed_;
}

FileReader::FileReader(const std::string& path)
    : file_(std::fopen(path.c_str(), "rb")) {}

FileReader::~FileReader() {
  if (file_ != nullptr) std::fclose(file_);
}

bool FileReader::Read(void* data, size_t size) {
  if (file_ == nullptr) return false;
  return std::fread(data, 1, size, file_) == size;
}

bool FileReader::Seek(uint64_t offset) {
  if (file_ == nullptr) return false;
  return std::fseek(file_, static_cast<long>(offset), SEEK_SET) == 0;
}

StatusOr<uint64_t> FileReader::Size() {
  if (file_ == nullptr) return Status::IoError("file not open");
  const long pos = std::ftell(file_);
  if (pos < 0 || std::fseek(file_, 0, SEEK_END) != 0) {
    return Status::IoError("cannot seek to end of file");
  }
  const long end = std::ftell(file_);
  if (end < 0 || std::fseek(file_, pos, SEEK_SET) != 0) {
    return Status::IoError("cannot restore file position");
  }
  return static_cast<uint64_t>(end);
}

bool StringWriter::Write(const void* data, size_t size) {
  bytes_.append(static_cast<const char*>(data), size);
  return true;
}

bool MemReader::Read(void* data, size_t size) {
  if (remaining() < size) return false;
  std::memcpy(data, cursor_, size);
  cursor_ += size;
  return true;
}

}  // namespace usp
