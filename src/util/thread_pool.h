// Work-sharing thread pool. All data-parallel loops in the library (GEMM,
// brute-force kNN, k-means assignment, graph refinement) go through
// ParallelFor so thread count is controlled in one place.
#ifndef USP_UTIL_THREAD_POOL_H_
#define USP_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace usp {

/// Fixed-size pool of worker threads executing submitted closures.
class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means std::thread::hardware_concurrency.
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// Process-wide default pool (lazily constructed, sized to the machine).
  static ThreadPool& Global();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

/// Splits [0, count) into contiguous chunks and runs
/// `body(begin, end, worker_index)` across the global pool. Runs inline when
/// `count` is small or the pool has one thread, so it is safe to call from
/// anywhere. Chunk boundaries are fixed up front and execution is
/// work-claiming: the calling thread executes chunks of its own call
/// alongside the workers (never unrelated queued tasks) and completion is
/// tracked per call, so concurrent ParallelFor calls — including from tasks
/// already running on the pool, such as the serving layer's background
/// seal/compaction — make progress independently and cannot deadlock.
/// Direct recursion from within a ParallelFor body is still unsupported.
void ParallelFor(size_t count, size_t grain,
                 const std::function<void(size_t, size_t, size_t)>& body);

/// Same, but with an explicit cap on sharding. `num_threads == 0` defers to
/// the global pool's size; `num_threads == 1` runs the whole range inline on
/// the calling thread (a true serial path, no pool involvement); larger
/// values split the range into at most `num_threads` chunks. For
/// `num_threads >= 1`, chunk boundaries depend only on (count, grain,
/// num_threads); at 0 they additionally depend on the pool size, which varies
/// across machines. Boundaries never depend on scheduling, so a
/// per-index-deterministic body (one that ignores the chunk/worker indexes)
/// yields identical results at every setting.
void ParallelFor(size_t count, size_t grain, size_t num_threads,
                 const std::function<void(size_t, size_t, size_t)>& body);

/// Runs `count` independent heterogeneous tasks (`body(i)` for i in
/// [0, count)) across the global pool and returns when all have finished.
/// This is the scatter-gather primitive of the sharded serving layer
/// (serve/sharded_index.h): unlike ParallelFor — whose body must be a cheap
/// range loop — each ParallelInvoke task may itself call ParallelFor (tasks
/// run either as pool-submitted closures or on the calling thread, both
/// supported ParallelFor contexts). Execution is work-claiming like
/// ParallelFor: the caller claims unstarted tasks alongside the workers and
/// never blocks on a queue position, so ParallelInvoke is safe to call from a
/// task already running on the pool (e.g. a coalesced batch executed by
/// BatchingExecutor) even when every worker is busy — the caller just runs
/// all `count` tasks itself. Nesting ParallelInvoke inside a ParallelInvoke
/// task is likewise safe.
void ParallelInvoke(size_t count, const std::function<void(size_t)>& body);

}  // namespace usp

#endif  // USP_UTIL_THREAD_POOL_H_
