// Bounded MPSC queue with deadline-based batch pops — the coalescing engine
// behind serve/batching_executor.h. Producers Push single items; one consumer
// calls PopBatch, which blocks until at least one item is queued, then keeps
// accumulating until either `width` items are available or `max_delay` has
// elapsed since the first item of the batch was seen. That two-trigger wait is
// the whole micro-batching state machine: IDLE (queue empty, consumer asleep)
// -> FILLING (first item arms the deadline) -> FLUSH (width or deadline).
//
// Lives in util/ beside ThreadPool because it is index-agnostic plumbing; the
// executor layers search semantics (grouping by options, scattering results to
// futures) on top.
#ifndef USP_UTIL_BATCHING_QUEUE_H_
#define USP_UTIL_BATCHING_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace usp {

template <typename T>
class BatchingQueue {
 public:
  /// `capacity` bounds the number of queued (not yet popped) items; Push
  /// blocks while full. Capacity 0 is reserved/invalid — a zero-capacity
  /// queue could never make progress.
  explicit BatchingQueue(size_t capacity) : capacity_(capacity) {}

  BatchingQueue(const BatchingQueue&) = delete;
  BatchingQueue& operator=(const BatchingQueue&) = delete;

  /// Blocks while the queue is full. Returns false (dropping `item`) iff the
  /// queue was closed before space became available; a true return means the
  /// item is queued and a consumer will eventually pop it (Close never drops
  /// queued items).
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking Push: returns false without waiting when the queue is full
  /// or closed. Lets callers implement load-shedding instead of back-pressure.
  bool TryPush(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Pops up to `width` items into `out` (appended; caller usually clears).
  /// Blocks until the first item arrives, then until `width` items are
  /// available or `max_delay` has passed since that first observation.
  /// Returns the number of items popped; 0 means closed-and-drained, the
  /// consumer's signal to exit. After Close, remaining items are still
  /// delivered (possibly as a short final batch) before 0 is returned.
  size_t PopBatch(std::vector<T>& out, size_t width,
                  std::chrono::microseconds max_delay) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return 0;  // closed and drained
    if (!closed_ && items_.size() < width && max_delay.count() > 0) {
      // FILLING: the deadline is armed by the first item we observed, not by
      // each arrival, so a trickle of singles cannot postpone the flush
      // forever.
      const auto deadline = std::chrono::steady_clock::now() + max_delay;
      not_empty_.wait_until(lock, deadline, [this, width] {
        return closed_ || items_.size() >= width;
      });
    }
    const size_t n = items_.size() < width ? items_.size() : width;
    for (size_t i = 0; i < n; ++i) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
    }
    not_full_.notify_all();
    return n;
  }

  /// Closes the queue: subsequent Push calls fail, blocked producers wake
  /// with false, and consumers drain the remaining items before PopBatch
  /// returns 0. Idempotent.
  void Close() {
    std::unique_lock<std::mutex> lock(mutex_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  size_t size() const {
    std::unique_lock<std::mutex> lock(mutex_);
    return items_.size();
  }

  bool closed() const {
    std::unique_lock<std::mutex> lock(mutex_);
    return closed_;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace usp

#endif  // USP_UTIL_BATCHING_QUEUE_H_
