#include "util/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <utility>

namespace usp {

MmapFile::~MmapFile() {
  if (data_ != nullptr) ::munmap(data_, size_);
}

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) ::munmap(data_, size_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

StatusOr<MmapFile> MmapFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IoError("cannot open " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IoError("cannot stat " + path);
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return Status::IoError("empty file " + path);
  }
  void* data = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (data == MAP_FAILED) {
    return Status::IoError("mmap failed for " + path);
  }
  return MmapFile(data, size);
}

}  // namespace usp
