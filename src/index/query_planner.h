// The selectivity-aware query planner for predicate-filtered search.
//
// Motivation (BENCH_filtered.json, ROADMAP item 4): selector *pushdown* —
// run the index's normal traversal and test membership before scoring — is
// the right plan at moderate selectivity, but collapses at low selectivity.
// The worst case is HNSW: its visit-but-don't-return filtering means that
// whenever the selector admits fewer nodes than ef, the ef-bound never
// engages and every query degrades to an O(n) traversal of the connected
// component, while brute force over the ~s*n allowed rows would be strictly
// cheaper. The planner fixes the cliff generically instead of patching HNSW:
// for each filtered request it probes the selector's cardinality (O(1) for
// counting selectors, bounded otherwise — id_selector.h CountUpTo) and picks
// the cheapest of three strategies under a per-index-type cost model:
//
//   kPushdown     the historical path: the index's own traversal with the
//                 selector applied before scoring.
//   kAllowedScan  filtered BruteForceKnn over base_view() — cost is exactly
//                 the allowed count, independent of index structure, and the
//                 result is exact at any budget. The low-selectivity escape
//                 hatch.
//   kPostFilter   unfiltered search with an enlarged k, then drop disallowed
//                 rows; underfilled rows are re-run with real pushdown, so
//                 exactness at full budget is never lost. Wins at very high
//                 selectivity, where membership tests on the candidate
//                 stream cost more than over-fetching.
//
// Every strategy returns results bit-identical to filtered brute force at
// full budget (tests/query_planner_test.cc pins all strategies x all seven
// index types), so the planner is purely a cost decision. SearchOptions::plan
// overrides it per request (kForce* modes); docs/ARCHITECTURE.md "Query path"
// has the decision table.
//
// Cost model. Unit = one exact/ADC distance evaluation (C_score = 1); a
// selector membership test costs C_test = 0.05 of that. With n = index size,
// s = allowed/n, E = Index::EstimateCandidates(budget) the expected
// unfiltered candidate volume, and k' the post-filter over-fetch window:
//
//   pushdown:      E * (C_test + s)            [test E candidates, score s*E]
//                  ... except HNSW, which scores every visited node and falls
//                  off the cliff when allowed < ef: cost ≈ n there, E else.
//   allowed-scan:  allowed                     [score exactly the allowed set]
//   post-filter:   E + k' * C_test             [full unfiltered work + tests]
//
// A second layer, QueryPlanner, closes the recall/cost loop of Eq. 4: it
// calibrates budget -> (recall, mean candidates) on a query sample against
// exact ground truth, then serves requests at the smallest budget whose
// calibrated recall meets a caller-supplied target.
#ifndef USP_INDEX_QUERY_PLANNER_H_
#define USP_INDEX_QUERY_PLANNER_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "index/index.h"
#include "util/status.h"

namespace usp {

/// The three execution strategies for a filtered request; see file comment.
enum class PlanStrategy : uint8_t {
  kPushdown = 0,
  kAllowedScan = 1,
  kPostFilter = 2,
};

/// "pushdown" / "allowed_scan" / "post_filter" (bench JSON + sweep labels).
const char* PlanStrategyName(PlanStrategy strategy);

/// Outcome of planning one filtered request: the chosen strategy plus the
/// probe and cost-model inputs that led to it (surfaced in BENCH_planner.json
/// so decisions are auditable).
struct PlanDecision {
  PlanStrategy strategy = PlanStrategy::kPushdown;

  /// Selector cardinality inside [0, size()). When `allowed_exact` is false
  /// the probe hit its bound and this is a lower bound (>= probe_limit means
  /// "dense enough that pushdown wins regardless").
  size_t allowed_count = 0;
  bool allowed_exact = false;

  /// allowed_count / max(1, n); a lower bound when !allowed_exact.
  double selectivity = 1.0;

  /// Modeled costs in distance-evaluation units (see file comment). The
  /// chosen strategy minimizes these; ties prefer pushdown, then
  /// allowed-scan. +inf marks an unavailable strategy (e.g. allowed-scan on
  /// an index with an empty base_view).
  double cost_pushdown = 0.0;
  double cost_allowed_scan = 0.0;
  double cost_post_filter = 0.0;
};

/// Plans one filtered request against `index` without executing it: probes
/// the selector (bounded; never more expensive than the work it arbitrates),
/// evaluates the cost model, and applies any kForce* override in
/// `options.plan`. Requires options.filter != nullptr.
PlanDecision PlanFilteredSearch(const Index& index,
                                const SearchOptions& options);

/// The planner's hook into every concrete SearchBatch: returns a full result
/// when the plan routes the request away from pushdown (allowed-scan or
/// post-filter, executed here), or std::nullopt when the implementation
/// should proceed with its own pushdown path (unfiltered requests,
/// kForcePushdown, or a plan that picked pushdown). Sub-searches issued by
/// the executors pin plan = kForcePushdown, so implementations calling this
/// first cannot recurse.
std::optional<BatchSearchResult> MaybeReroute(const Index& index,
                                              const SearchRequest& request);

/// Executes the allowed-scan strategy: filtered BruteForceKnn over
/// base_view(), exact at any budget. candidate_counts / candidates_scored
/// report the allowed count (the rows actually scored), bins_probed is 0 and
/// filtered_out is n - allowed. Requires a non-empty base_view (callers
/// check; PlanFilteredSearch never picks this strategy without one).
BatchSearchResult AllowedScanSearch(const Index& index,
                                    const SearchRequest& request);

/// Executes the post-filter strategy: one unfiltered sub-search with k
/// enlarged to min(n, max(2k, ceil(k/s) + k)), then per-row selector
/// filtering. Rows left with fewer than k allowed hits (the over-fetch
/// window was too small) are collected into one escalation sub-batch and
/// re-run with genuine pushdown, so full-budget results stay bit-identical
/// to filtered brute force. candidate_counts reports the sub-search's scored
/// work; filtered_out counts window rows the selector dropped (plus
/// escalation drops).
BatchSearchResult PostFilterSearch(const Index& index,
                                   const SearchRequest& request);

/// Recall-target search: the Eq. 4 feedback loop as a serving policy.
/// Calibrate() sweeps budget over a doubling schedule on a sample of
/// queries, measuring recall@k against exact brute force (via base_view) and
/// the mean candidate volume S(R); BudgetForRecall() then answers "smallest
/// calibrated budget whose recall meets the target", and Search() serves a
/// request at that budget (planner still active for filtered requests).
/// Calibration is offline/amortized; serving adds zero per-query overhead.
class QueryPlanner {
 public:
  /// One calibration measurement at a fixed budget.
  struct CalibrationPoint {
    size_t budget = 0;
    double recall = 0.0;           ///< recall@k vs exact ground truth
    double mean_candidates = 0.0;  ///< S(R): mean candidates scored per query
  };

  /// Non-owning; `index` must outlive the planner.
  explicit QueryPlanner(const Index* index) : index_(index) {}

  /// Calibrates on `sample_queries` at recall@`k`. Budgets double from 1
  /// until recall reaches 1.0 or the budget covers the index (bins for
  /// partition types, size() for HNSW's ef). Fails when the index has no
  /// base_view to take ground truth from, or the sample is empty.
  Status Calibrate(MatrixView sample_queries, size_t k);

  /// Smallest calibrated budget with recall >= target; the largest
  /// calibrated budget when none reaches the target. Requires Calibrate().
  size_t BudgetForRecall(double target_recall) const;

  /// Serves `request` with options.budget replaced by
  /// BudgetForRecall(target_recall). Other options (k, filter, plan, stats)
  /// pass through; the filtered-request planner applies as usual.
  BatchSearchResult Search(const SearchRequest& request,
                           double target_recall) const;

  /// The calibrated budget -> (recall, S(R)) curve, ascending by budget.
  const std::vector<CalibrationPoint>& curve() const { return curve_; }

 private:
  const Index* index_;
  size_t k_ = 0;
  std::vector<CalibrationPoint> curve_;
};

}  // namespace usp

#endif  // USP_INDEX_QUERY_PLANNER_H_
