// POD kConfig section payloads shared by more than one container producer:
// index/serialize.cc (SaveIndex/LoadIndex) and the disk-direct out-of-core
// build path (serve/out_of_core_builder.cc) must write bit-identical records.
// Layouts are part of the on-disk contract (docs/FORMAT.md): fixed-width
// little-endian fields, no implicit padding — never reorder or resize, only
// append on a version bump. Records used by a single producer stay local to
// serialize.cc.
#ifndef USP_INDEX_INDEX_RECORDS_H_
#define USP_INDEX_INDEX_RECORDS_H_

#include <cstdint>

namespace usp {

/// IVF-Flat kConfig payload (IndexType::kIvfFlat containers).
struct IvfFlatConfigRecord {
  uint64_t nlist;
  uint64_t kmeans_iterations;
  uint64_t seed;
};
static_assert(sizeof(IvfFlatConfigRecord) == 24, "on-disk contract");

/// SQ8 kConfig payload (IndexType::kSq8 containers). The metric lives in the
/// container header; per-dim mins/scales live in the kSq8Params section.
struct Sq8ConfigRecord {
  uint64_t rerank_budget;
};
static_assert(sizeof(Sq8ConfigRecord) == 8, "on-disk contract");

}  // namespace usp

#endif  // USP_INDEX_INDEX_RECORDS_H_
