// sklearn-style `algorithm='auto'` index selection: map (dataset size, dim,
// metric) to an index type plus trained-to-fit parameters, so callers who do
// not want to reason about nlist/ef/PQ shapes get a sane default in one call.
// This is the capstone of the query-planner stack (index/query_planner.h):
// the planner adapts the *strategy* per query, QueryPlanner adapts the
// *budget* per recall target, and this factory picks the *index* per dataset.
//
// The decision mirrors sklearn's neighbors heuristics transplanted to this
// repository's index zoo (docs/ARCHITECTURE.md has the full table):
//
//   n <= kSmallDataset            -> IVF-Flat, nlist = 1   (exact scan; any
//                                    structure would cost more than it saves)
//   dim <= kLowDim                -> IVF-Flat, nlist ~ sqrt(n)  (distances
//                                    are cheap; list scans beat graphs)
//   n <= kGraphDataset            -> HNSW for squared L2 (dim-robust recall
//                                    at low budget; the graph is L2-only),
//                                    IVF-Flat for IP/cosine
//   otherwise                     -> IVF-PQ (compressed residency for large
//                                    high-dim bases, any metric), subspaces
//                                    fit to dim
#ifndef USP_INDEX_AUTO_INDEX_H_
#define USP_INDEX_AUTO_INDEX_H_

#include <cstddef>
#include <memory>

#include "dist/metric.h"
#include "index/index.h"
#include "ivf/ivf.h"
#include "tensor/matrix.h"

namespace usp {

/// Decision thresholds (exposed for tests and tuning).
inline constexpr size_t kAutoIndexSmallDataset = 2000;
inline constexpr size_t kAutoIndexLowDim = 16;
inline constexpr size_t kAutoIndexGraphDataset = 100000;

/// The factory's resolved choice: which type to build and the parameters it
/// would build it with (only the config matching `type` is meaningful).
struct AutoIndexChoice {
  IndexType type = IndexType::kIvfFlat;
  IvfConfig ivf;           ///< kIvfFlat / kIvfPq parameters
  size_t hnsw_max_neighbors = 16;     ///< kHnsw: M
  size_t hnsw_ef_construction = 100;  ///< kHnsw: build beam
};

/// Pure decision function: (n, dim, metric) -> type + parameters, no
/// training. Deterministic; documented in the header comment.
AutoIndexChoice ChooseIndexType(size_t n, size_t dim, Metric metric);

/// Trains the chosen index over `base` (which must outlive the returned
/// index — the repository-wide view convention). `seed` feeds every
/// stochastic stage (k-means, PQ, HNSW level draws) for reproducible builds.
std::unique_ptr<Index> BuildAutoIndex(const Matrix& base,
                                      Metric metric = Metric::kSquaredL2,
                                      uint64_t seed = 1);

}  // namespace usp

#endif  // USP_INDEX_AUTO_INDEX_H_
