#include "index/id_selector.h"

#include <algorithm>

namespace usp {

IdSelectorArray::IdSelectorArray(std::vector<uint32_t> ids)
    : ids_(std::move(ids)) {
  std::sort(ids_.begin(), ids_.end());
  ids_.erase(std::unique(ids_.begin(), ids_.end()), ids_.end());
}

bool IdSelectorArray::is_member(uint32_t id) const {
  return std::binary_search(ids_.begin(), ids_.end(), id);
}

size_t IdSelectorArray::count(size_t universe) const {
  // Entries are sorted, so the members below `universe` are a prefix.
  if (universe > static_cast<size_t>(UINT32_MAX)) return ids_.size();
  const auto it = std::lower_bound(ids_.begin(), ids_.end(),
                                   static_cast<uint32_t>(universe));
  return static_cast<size_t>(it - ids_.begin());
}

IdSelectorBitmap::IdSelectorBitmap(size_t universe)
    : universe_(universe), words_((universe + 63) / 64, 0) {}

IdSelectorBitmap::IdSelectorBitmap(size_t universe,
                                   const std::vector<uint32_t>& ids)
    : IdSelectorBitmap(universe) {
  for (uint32_t id : ids) {
    if (id < universe_) Set(id);
  }
}

void IdSelectorBitmap::Set(uint32_t id) {
  if (id < universe_) words_[id >> 6] |= uint64_t{1} << (id & 63u);
}

void IdSelectorBitmap::Reset(uint32_t id) {
  if (id < universe_) words_[id >> 6] &= ~(uint64_t{1} << (id & 63u));
}

size_t IdSelectorBitmap::count() const {
  size_t total = 0;
  for (uint64_t word : words_) total += __builtin_popcountll(word);
  return total;
}

size_t IdSelectorBitmap::count(size_t universe) const {
  const size_t limit = std::min(universe, universe_);
  const size_t full_words = limit >> 6;
  size_t total = 0;
  for (size_t w = 0; w < full_words; ++w) {
    total += __builtin_popcountll(words_[w]);
  }
  const size_t tail_bits = limit & 63u;
  if (tail_bits != 0) {
    const uint64_t mask = (uint64_t{1} << tail_bits) - 1;
    total += __builtin_popcountll(words_[full_words] & mask);
  }
  return total;
}

size_t CountUpTo(const IdSelector& filter, size_t universe, size_t limit) {
  const size_t exact = filter.count(universe);
  if (exact != kUnknownCount) return std::min(exact, limit);
  size_t found = 0;
  for (size_t id = 0; id < universe && found < limit; ++id) {
    if (filter.is_member(static_cast<uint32_t>(id))) ++found;
  }
  return found;
}

}  // namespace usp
