#include "index/id_selector.h"

#include <algorithm>

namespace usp {

IdSelectorArray::IdSelectorArray(std::vector<uint32_t> ids)
    : ids_(std::move(ids)) {
  std::sort(ids_.begin(), ids_.end());
  ids_.erase(std::unique(ids_.begin(), ids_.end()), ids_.end());
}

bool IdSelectorArray::is_member(uint32_t id) const {
  return std::binary_search(ids_.begin(), ids_.end(), id);
}

IdSelectorBitmap::IdSelectorBitmap(size_t universe)
    : universe_(universe), words_((universe + 63) / 64, 0) {}

IdSelectorBitmap::IdSelectorBitmap(size_t universe,
                                   const std::vector<uint32_t>& ids)
    : IdSelectorBitmap(universe) {
  for (uint32_t id : ids) {
    if (id < universe_) Set(id);
  }
}

void IdSelectorBitmap::Set(uint32_t id) {
  if (id < universe_) words_[id >> 6] |= uint64_t{1} << (id & 63u);
}

void IdSelectorBitmap::Reset(uint32_t id) {
  if (id < universe_) words_[id >> 6] &= ~(uint64_t{1} << (id & 63u));
}

size_t IdSelectorBitmap::count() const {
  size_t total = 0;
  for (uint64_t word : words_) total += __builtin_popcountll(word);
  return total;
}

}  // namespace usp
