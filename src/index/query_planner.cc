#include "index/query_planner.h"

#include <algorithm>
#include <limits>

#include "knn/brute_force.h"

namespace usp {
namespace {

/// Relative cost of one selector membership test vs one exact/ADC distance
/// evaluation (the model's unit). A membership test is a few loads and
/// compares while a distance evaluation is dim() FLOPs; 0.05 is deliberately
/// generous to membership so the planner abandons pushdown only on clear
/// wins.
constexpr double kCostMembershipTest = 0.05;

constexpr double kInfiniteCost = std::numeric_limits<double>::infinity();

/// Over-fetch window of the post-filter strategy: the unfiltered k' expected
/// to contain k allowed rows — ceil(k/s) — plus k slack against unlucky
/// ordering, floored at 2k and capped at n. `allowed` may be a lower bound
/// (bounded probe); the true window only shrinks as the real count grows, so
/// the estimate errs toward over-fetching, never toward escalation.
size_t PostFilterWindow(size_t n, size_t k, size_t allowed) {
  if (allowed == 0) return std::min(n, 2 * k);
  const size_t expected_window = (k * n + allowed - 1) / allowed + k;
  return std::min(n, std::max(2 * k, expected_window));
}

/// recall@k of `result` against exact ground truth, macro-averaged over all
/// real (non-padded) truth entries.
double RecallAtK(const KnnResult& truth, const BatchSearchResult& result,
                 size_t nq, size_t k) {
  size_t hits = 0;
  size_t total = 0;
  for (size_t q = 0; q < nq; ++q) {
    const uint32_t* want = truth.Row(q);
    const uint32_t* got = result.Row(q);
    for (size_t j = 0; j < k; ++j) {
      if (want[j] == kInvalidId) break;
      ++total;
      for (size_t i = 0; i < k; ++i) {
        if (got[i] == want[j]) {
          ++hits;
          break;
        }
      }
    }
  }
  return total == 0 ? 1.0
                    : static_cast<double>(hits) / static_cast<double>(total);
}

}  // namespace

const char* PlanStrategyName(PlanStrategy strategy) {
  switch (strategy) {
    case PlanStrategy::kPushdown:
      return "pushdown";
    case PlanStrategy::kAllowedScan:
      return "allowed_scan";
    case PlanStrategy::kPostFilter:
      return "post_filter";
  }
  return "unknown";
}

PlanDecision PlanFilteredSearch(const Index& index,
                                const SearchOptions& options) {
  USP_CHECK(options.filter != nullptr);
  PlanDecision decision;
  const size_t n = index.size();
  if (n == 0) return decision;  // every path returns pure padding
  const bool scannable = index.base_view().data() != nullptr;

  const size_t budget = std::max<size_t>(options.budget, 1);
  const size_t expected =
      std::max<size_t>(std::min(index.EstimateCandidates(budget), n), 1);

  // Selectivity probe, bounded where allowed-scan can no longer win: once
  // the selector admits >= 2E + k ids, an allowed scan costs at least 2E
  // while pushdown costs at most ~1.05E, so the exact count is irrelevant.
  // Counting selectors answer in O(1)/O(log) (id_selector.h count); others
  // pay at most probe_limit-ish membership tests — bounded by the very work
  // the probe arbitrates.
  const size_t probe_limit = std::min(n, 2 * expected + options.k + 1);
  size_t allowed = options.filter->count(n);
  if (allowed != kUnknownCount) {
    decision.allowed_exact = true;
  } else {
    allowed = CountUpTo(*options.filter, n, probe_limit);
    decision.allowed_exact = allowed < probe_limit;
  }
  decision.allowed_count = allowed;
  decision.selectivity =
      static_cast<double>(allowed) / static_cast<double>(n);

  const double s = decision.selectivity;
  const double e = static_cast<double>(expected);
  if (index.type() == IndexType::kHnsw) {
    // HNSW scores every node it visits, and its visit-but-don't-return
    // filtering falls off a cliff when the selector admits fewer nodes than
    // the beam: the ef-bound never engages and traversal degrades to the
    // whole connected component — O(n) per query (hnsw.h SearchBatch).
    const size_t beam = std::max(options.k, options.budget);
    decision.cost_pushdown = allowed < beam ? static_cast<double>(n) : e;
  } else {
    // Test every generated candidate, score the allowed fraction.
    decision.cost_pushdown = e * (kCostMembershipTest + s);
  }
  decision.cost_allowed_scan =
      scannable ? static_cast<double>(allowed) : kInfiniteCost;
  // Post-filter guarantees per-row escalation when the window cannot hold k
  // allowed rows, so it is never auto-picked with allowed < k.
  const size_t window = PostFilterWindow(n, options.k, allowed);
  decision.cost_post_filter =
      allowed < options.k
          ? kInfiniteCost
          : e + static_cast<double>(window) * kCostMembershipTest;

  switch (options.plan) {
    case PlanMode::kForcePushdown:
      decision.strategy = PlanStrategy::kPushdown;
      return decision;
    case PlanMode::kForceAllowedScan:
      // Indexes with no base to scan (DynamicIndex at the top level — its
      // segments plan for themselves) fall back to pushdown.
      decision.strategy =
          scannable ? PlanStrategy::kAllowedScan : PlanStrategy::kPushdown;
      return decision;
    case PlanMode::kForcePostFilter:
      decision.strategy = PlanStrategy::kPostFilter;
      return decision;
    case PlanMode::kAuto:
      break;
  }

  // Minimum modeled cost; ties keep the historical pushdown path, then
  // prefer allowed-scan (exact at any budget) over post-filter.
  decision.strategy = PlanStrategy::kPushdown;
  double best = decision.cost_pushdown;
  if (decision.cost_allowed_scan < best) {
    decision.strategy = PlanStrategy::kAllowedScan;
    best = decision.cost_allowed_scan;
  }
  if (decision.cost_post_filter < best) {
    decision.strategy = PlanStrategy::kPostFilter;
  }
  return decision;
}

std::optional<BatchSearchResult> MaybeReroute(const Index& index,
                                              const SearchRequest& request) {
  const SearchOptions& options = request.options;
  if (options.filter == nullptr) return std::nullopt;
  if (options.plan == PlanMode::kForcePushdown) return std::nullopt;
  const PlanDecision decision = PlanFilteredSearch(index, options);
  switch (decision.strategy) {
    case PlanStrategy::kPushdown:
      return std::nullopt;
    case PlanStrategy::kAllowedScan:
      return AllowedScanSearch(index, request);
    case PlanStrategy::kPostFilter:
      return PostFilterSearch(index, request);
  }
  return std::nullopt;
}

BatchSearchResult AllowedScanSearch(const Index& index,
                                    const SearchRequest& request) {
  const SearchOptions& options = request.options;
  USP_CHECK(options.filter != nullptr);
  const MatrixView base = index.base_view();
  USP_CHECK(base.data() != nullptr);
  const size_t n = index.size();
  const size_t nq = request.queries.rows();

  // The reference path itself: gather-scored brute force over the allowed
  // subset, so the result is bit-identical to the acceptance suite's ground
  // truth at *any* budget.
  KnnResult exact = BruteForceKnn(base, request.queries, options.k,
                                  index.metric(), options.filter,
                                  options.num_threads);

  BatchSearchResult result;
  result.Prepare(nq, options);
  result.ids = std::move(exact.indices);
  result.distances = std::move(exact.distances);

  // The scan tested every row, so the exact allowed count is free relative
  // to the work just done (O(1) for counting selectors anyway).
  size_t allowed = options.filter->count(n);
  if (allowed == kUnknownCount) allowed = CountUpTo(*options.filter, n, n);
  const auto scored = static_cast<uint32_t>(allowed);
  std::fill(result.candidate_counts.begin(), result.candidate_counts.end(),
            scored);
  if (result.stats) {
    std::fill(result.stats->candidates_scored.begin(),
              result.stats->candidates_scored.end(), scored);
    std::fill(result.stats->filtered_out.begin(),
              result.stats->filtered_out.end(),
              static_cast<uint32_t>(n - allowed));
  }
  return result;
}

BatchSearchResult PostFilterSearch(const Index& index,
                                   const SearchRequest& request) {
  const SearchOptions& options = request.options;
  USP_CHECK(options.filter != nullptr);
  const size_t n = index.size();
  const size_t k = options.k;
  const size_t nq = request.queries.rows();

  BatchSearchResult result;
  result.Prepare(nq, options);
  if (n == 0 || nq == 0) return result;

  // Window-sizing probe, bounded at ~16k members: past that the window is
  // within [2k, n/16 + k] and a lower bound on the count only enlarges it.
  size_t allowed = options.filter->count(n);
  if (allowed == kUnknownCount) {
    allowed = CountUpTo(*options.filter, n, std::min(n, 16 * k + 1));
  }
  const size_t window = PostFilterWindow(n, k, allowed);

  // One unfiltered sub-search, k widened to the window. plan is irrelevant
  // without a filter but pinned anyway so the intent is explicit.
  SearchRequest sub;
  sub.queries = request.queries;
  sub.options = options;
  sub.options.filter = nullptr;
  sub.options.k = window;
  sub.options.plan = PlanMode::kForcePushdown;
  const BatchSearchResult raw = index.SearchBatch(sub);

  std::vector<size_t> escalate;
  for (size_t q = 0; q < nq; ++q) {
    const uint32_t* row = raw.Row(q);
    const float* dist = raw.DistanceRow(q);
    size_t kept = 0;
    uint32_t dropped = 0;
    bool exhausted = false;  // the index returned fewer than `window` rows
    for (size_t j = 0; j < window && kept < k; ++j) {
      if (row[j] == kInvalidId) {
        exhausted = true;
        break;
      }
      if (options.filter->is_member(row[j])) {
        result.ids[q * k + kept] = row[j];
        result.distances[q * k + kept] = dist[j];
        ++kept;
      } else {
        ++dropped;
      }
    }
    result.candidate_counts[q] = raw.candidate_counts[q];
    if (result.stats) {
      result.stats->candidates_scored[q] =
          raw.stats->candidates_scored[q];
      result.stats->bins_probed[q] = raw.stats->bins_probed[q];
      result.stats->nodes_visited[q] = raw.stats->nodes_visited[q];
      result.stats->filtered_out[q] = dropped;
    }
    // Exactness backstop: the window was filled with < k allowed rows and
    // more candidates existed beyond it — only genuine pushdown can tell
    // whether allowed rows hide there. An exhausted window already saw every
    // candidate this budget generates, so filtering it IS the pushdown
    // result; window == n is the degenerate exhaustive case.
    if (kept < k && !exhausted && window < n) escalate.push_back(q);
  }

  for (size_t q : escalate) {
    SearchRequest esc;
    esc.queries = MatrixView(request.queries.Row(q), 1, request.queries.cols());
    esc.options = options;
    esc.options.plan = PlanMode::kForcePushdown;
    const BatchSearchResult fixed = index.SearchBatch(esc);
    std::copy(fixed.ids.begin(), fixed.ids.begin() + k,
              result.ids.begin() + q * k);
    std::copy(fixed.distances.begin(), fixed.distances.begin() + k,
              result.distances.begin() + q * k);
    // Count the escalation's work on top of the wasted window pass — the
    // planner's honesty about its mispredictions.
    result.candidate_counts[q] += fixed.candidate_counts[0];
    if (result.stats) {
      result.stats->candidates_scored[q] +=
          fixed.stats->candidates_scored[0];
      result.stats->bins_probed[q] += fixed.stats->bins_probed[0];
      result.stats->nodes_visited[q] += fixed.stats->nodes_visited[0];
      result.stats->filtered_out[q] += fixed.stats->filtered_out[0];
    }
  }
  return result;
}

Status QueryPlanner::Calibrate(MatrixView sample_queries, size_t k) {
  USP_CHECK(index_ != nullptr);
  if (sample_queries.rows() == 0 || k == 0) {
    return Status::InvalidArgument(
        "QueryPlanner::Calibrate: empty query sample or k == 0");
  }
  if (sample_queries.cols() != index_->dim()) {
    return Status::InvalidArgument(
        "QueryPlanner::Calibrate: query dim does not match index dim");
  }
  const MatrixView base = index_->base_view();
  if (base.data() == nullptr || base.rows() == 0) {
    return Status::FailedPrecondition(
        "QueryPlanner::Calibrate: index exposes no base_view to take exact "
        "ground truth from");
  }

  k_ = k;
  curve_.clear();
  const KnnResult truth =
      BruteForceKnn(base, sample_queries, k, index_->metric());
  const size_t nq = sample_queries.rows();

  // Doubling budget schedule: stop at perfect recall or once the budget
  // covers the index (bins saturate well before size(); HNSW's ef == size()
  // explores the whole component).
  size_t budget = 1;
  while (true) {
    SearchRequest request;
    request.queries = sample_queries;
    request.options.k = k;
    request.options.budget = budget;
    request.options.stats = true;
    const BatchSearchResult result = index_->SearchBatch(request);

    CalibrationPoint point;
    point.budget = budget;
    point.recall = RecallAtK(truth, result, nq, k);
    double sum = 0.0;
    for (size_t q = 0; q < nq; ++q) {
      sum += static_cast<double>(result.stats->candidates_scored[q]);
    }
    point.mean_candidates = sum / static_cast<double>(nq);
    curve_.push_back(point);

    if (point.recall >= 1.0 - 1e-9 || budget >= index_->size()) break;
    budget = std::min(budget * 2, index_->size());
  }
  return Status::Ok();
}

size_t QueryPlanner::BudgetForRecall(double target_recall) const {
  USP_CHECK(!curve_.empty());  // Calibrate() first
  for (const CalibrationPoint& point : curve_) {
    if (point.recall >= target_recall) return point.budget;
  }
  return curve_.back().budget;
}

BatchSearchResult QueryPlanner::Search(const SearchRequest& request,
                                       double target_recall) const {
  SearchRequest tuned = request;
  tuned.options.budget = BudgetForRecall(target_recall);
  return index_->SearchBatch(tuned);
}

}  // namespace usp
