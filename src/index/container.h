// The versioned on-disk container every index serializes into. One file =
// one header + a section table + 64-byte-aligned section payloads; the byte
// layout is a documented contract (docs/FORMAT.md), little-endian throughout.
// ContainerWriter assembles and writes a file; ContainerReader opens one
// either streaming (stdio, payloads copied to the heap) or zero-copy (mmap,
// payload views served straight from the page cache).
#ifndef USP_INDEX_CONTAINER_H_
#define USP_INDEX_CONTAINER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "index/index.h"
#include "util/io.h"
#include "util/mmap_file.h"
#include "util/status.h"

namespace usp {

/// First 8 bytes of every index container.
inline constexpr char kContainerMagic[8] = {'U', 'S', 'P', 'I',
                                            'N', 'D', 'X', '1'};

/// Bumped on any incompatible layout change; readers reject other versions.
/// Version 2 added the dynamic-index manifest sections (kManifest,
/// kSegmentBlob, kIdMap, kTombstones); the bump is deliberate even though
/// static-type layouts are unchanged, because a version-1 reader that
/// tolerated unknown sections could open a dynamic container and serve
/// deleted points (it would not know to honor the tombstone bitmap).
inline constexpr uint32_t kContainerVersion = 2;

/// Every section payload starts on a multiple of this (so mmap'd float/int
/// payloads are aligned far beyond what any SIMD load needs).
inline constexpr uint64_t kSectionAlignment = 64;

/// Section payload kinds. Values are a persistence contract — never reuse or
/// renumber. `ordinal` distinguishes repeated tags (ensemble member j).
enum class SectionTag : uint32_t {
  kConfig = 1,       ///< per-index-type POD config record
  kBaseVectors = 2,  ///< (num_points x dim) float32 base matrix
  kAssignments = 3,  ///< num_points uint32 residency bins
  kCentroids = 4,    ///< (nlist x dim) float32 coarse centroids
  kUspModel = 5,     ///< embedded UspPartitioner record (core/partitioner.h)
  kPqMeta = 6,       ///< PqMetaRecord
  kPqOffsets = 7,    ///< (num_subspaces + 1) uint64 subspace boundaries
  kPqCodebooks = 8,  ///< concatenated per-subspace codeword matrices, float32
  kPqCodes = 9,      ///< (num_points x num_subspaces) uint8 PQ codes
  kHnswLevels = 10,  ///< num_points int32 node levels
  kHnswLinks = 11,   ///< per node, per level: uint32 count + count uint32 ids
  kWeights = 12,     ///< num_points float32 ensemble training weights
  // Dynamic-index (serve/dynamic_index.h) sections, container version 2.
  // Sharded containers (serve/sharded_index.h, type tag kSharded, no version
  // bump — the new type tag gates readers) reuse kManifest (ShardManifestEntry
  // rows), kSegmentBlob (ordinal j: embedded container of shard j) and kIdMap
  // (ordinal j: shard-local id -> global id):
  kManifest = 13,     ///< per-sealed-segment table (DynamicSegmentEntry) or
                      ///< per-shard table (ShardManifestEntry)
  kSegmentBlob = 14,  ///< ordinal j: embedded full container of segment j
  kIdMap = 15,        ///< ordinal j: segment-local row -> global id (uint32);
                      ///< ordinal num_sealed is the write segment's map
  kTombstones = 16,   ///< deleted-id bitmap, ceil(next_id/64) uint64 words
  // Quantized-scan sections (no version bump: readers that ignore them still
  // rebuild equivalent state from kPqCodes, and kSq8* only appear under the
  // new kSq8 index type tag):
  kPqPackedCodes = 17,  ///< bucket-grouped 4-bit fast-scan blocks
                        ///< (quant/fastscan.h layout)
  kSq8Params = 18,      ///< 2 x dim float32: per-dim mins then scales
  kSq8Codes = 19,       ///< (num_points x dim) uint8 SQ8 codes
};

/// Fixed 64-byte file header.
struct ContainerHeader {
  char magic[8];
  uint32_t version;
  uint32_t index_type;  ///< IndexType value
  uint32_t metric;      ///< Metric value of the exact-rerank stage
  uint32_t section_count;
  uint64_t dim;
  uint64_t num_points;
  uint64_t file_size;  ///< total container bytes; cheap truncation check
  uint8_t reserved[16];
};
static_assert(sizeof(ContainerHeader) == 64, "header layout is a contract");

/// One section-table row (the table immediately follows the header).
struct SectionEntry {
  uint32_t tag;      ///< SectionTag value
  uint32_t ordinal;  ///< repeated-tag discriminator (0 when unique)
  uint64_t offset;   ///< absolute byte offset, kSectionAlignment-aligned
  uint64_t size;     ///< payload bytes (padding excluded)
};
static_assert(sizeof(SectionEntry) == 24, "table layout is a contract");

/// Assembles a container in memory (cheap: unowned payloads are referenced,
/// not copied) and writes it in one pass. Payload pointers passed to
/// AddSection must stay valid until WriteTo returns.
class ContainerWriter {
 public:
  ContainerWriter(IndexType type, Metric metric, uint64_t dim,
                  uint64_t num_points);

  /// References `size` bytes at `data` as section (tag, ordinal).
  void AddSection(SectionTag tag, uint32_t ordinal, const void* data,
                  uint64_t size);

  /// Takes ownership of `bytes` (used for records assembled on the fly, e.g.
  /// embedded model blobs and flattened graphs).
  void AddOwnedSection(SectionTag tag, uint32_t ordinal, std::string bytes);

  /// Lays out offsets and writes header + table + aligned payloads to any
  /// byte sink (`name` labels errors). A StringWriter sink produces an
  /// in-memory container — how sealed segments embed inside a dynamic-index
  /// container (SerializeIndex in index/serialize.h).
  Status WriteTo(Writer* out, const std::string& name);

 private:
  struct PendingSection {
    SectionEntry entry;
    const void* data;  ///< nullptr when `owned` holds the payload
    std::string owned;
  };

  ContainerHeader header_;
  std::vector<PendingSection> sections_;
};

/// Writes a container front to back without ever holding a payload: section
/// sizes are declared up front (PlanSection, in payload order), Start lays
/// out the offsets and emits header + table, then payload bytes are streamed
/// in with Append — split across as many calls as the producer likes, e.g.
/// one call per base chunk. Given identical payload bytes the output file is
/// byte-identical to ContainerWriter's, a property the out-of-core build
/// path (serve/out_of_core_builder.h) turns into its bit-identity guarantee
/// against SaveIndex. Finish verifies every declared byte arrived.
class StreamingContainerWriter {
 public:
  StreamingContainerWriter(IndexType type, Metric metric, uint64_t dim,
                           uint64_t num_points);

  /// Declares the next section; call once per section, in the order payload
  /// bytes will be appended. Must precede Start.
  void PlanSection(SectionTag tag, uint32_t ordinal, uint64_t size);

  /// Lays out section offsets (ContainerWriter's exact algorithm) and writes
  /// the header and section table to `out`, which must stay valid through
  /// Finish. `name` labels errors.
  Status Start(Writer* out, const std::string& name);

  /// Appends payload bytes in planned order. Alignment padding before each
  /// section is inserted automatically; a call may span section boundaries.
  Status Append(const void* data, uint64_t size);

  /// Checks all planned payload bytes were appended and writes any trailing
  /// alignment padding. The writer cannot be reused afterwards.
  Status Finish();

  /// Total container bytes; valid after Start.
  uint64_t file_size() const { return header_.file_size; }

 private:
  Status Pad(uint64_t target);  ///< zero-fill from written_ to target

  ContainerHeader header_;
  std::vector<SectionEntry> sections_;
  Writer* out_ = nullptr;
  std::string name_;
  bool started_ = false;
  size_t current_ = 0;            ///< index of the section being filled
  uint64_t section_written_ = 0;  ///< bytes appended into that section
  uint64_t written_ = 0;          ///< absolute file position
};

/// A validated, opened container. In mmap mode (zero_copy() == true) section
/// payloads can be viewed in place and stay valid for the reader's lifetime;
/// in file mode they are copied out on request. All offsets/sizes are
/// bounds-checked at open, so malformed files fail with Status errors before
/// any payload is interpreted.
class ContainerReader {
 public:
  /// Streaming open: reads and validates header + table, leaves payloads on
  /// disk until ReadSection.
  static StatusOr<std::unique_ptr<ContainerReader>> OpenFile(
      const std::string& path);

  /// Zero-copy open: maps the whole file read-only and validates in place.
  static StatusOr<std::unique_ptr<ContainerReader>> OpenMmap(
      const std::string& path);

  /// Opens a container already resident in memory, taking ownership of the
  /// bytes; section views are served zero-copy from them. This is how the
  /// embedded kSegmentBlob payloads of a dynamic-index container are opened.
  /// `name` labels error messages (there is no backing file).
  static StatusOr<std::unique_ptr<ContainerReader>> OpenMem(
      std::vector<uint8_t> bytes, const std::string& name);

  const ContainerHeader& header() const { return header_; }
  const std::string& path() const { return path_; }
  bool zero_copy() const { return view_ != nullptr; }

  bool Has(SectionTag tag, uint32_t ordinal) const;

  /// Table entry for (tag, ordinal); kInvalidArgument when absent.
  StatusOr<SectionEntry> Find(SectionTag tag, uint32_t ordinal) const;

  /// Copies the payload of (tag, ordinal) into `out`. The stored size must
  /// equal `expected_size` exactly. Works in both modes.
  Status ReadSection(SectionTag tag, uint32_t ordinal, void* out,
                     uint64_t expected_size);

  /// Owning read of a variable-size payload.
  StatusOr<std::vector<uint8_t>> ReadSectionBytes(SectionTag tag,
                                                  uint32_t ordinal);

  /// Zero-copy payload view (mmap mode only; kFailedPrecondition otherwise).
  StatusOr<const uint8_t*> SectionData(SectionTag tag, uint32_t ordinal) const;

 private:
  ContainerReader() = default;

  Status ValidateTable();
  Status ParseView();  ///< header + table from view_ (mmap and mem modes)
  const SectionEntry* FindEntry(SectionTag tag, uint32_t ordinal) const;

  std::string path_;
  ContainerHeader header_;
  std::vector<SectionEntry> table_;
  MmapFile map_;                       ///< mmap mode
  std::vector<uint8_t> mem_;           ///< in-memory mode (owned bytes)
  const uint8_t* view_ = nullptr;      ///< whole-container view (mmap or mem)
  std::unique_ptr<FileReader> file_;   ///< streaming mode
  uint64_t actual_file_size_ = 0;
};

}  // namespace usp

#endif  // USP_INDEX_CONTAINER_H_
