// The unified ANN-index interface. Every index type in the repository —
// PartitionIndex, IvfFlatIndex, IvfPqIndex, ScannIndex, HnswIndex,
// UspEnsemble — implements Index, so benches, examples, and the serving layer
// program against one vtable and the serialization layer (index/serialize.h)
// can persist and reopen any of them behind a single OpenIndex() call.
#ifndef USP_INDEX_INDEX_H_
#define USP_INDEX_INDEX_H_

#include <cstdint>
#include <vector>

#include "dist/metric.h"
#include "knn/top_k.h"
#include "tensor/matrix.h"

namespace usp {

/// Sentinel id marking a padded result slot. Rows of BatchSearchResult are
/// always exactly k wide; when a query yields fewer than k neighbors (k >
/// size(), tiny probe budgets, heavy deletes) the trailing slots hold
/// kInvalidId with +inf distance. Every Index implementation pads this way —
/// real neighbors first (ascending by distance), then an uninterrupted run of
/// kInvalidId slots. Pinned by tests/index_padding_test.cc.
inline constexpr uint32_t kInvalidId = 0xFFFFFFFFu;

/// Search output for a batch of queries.
struct BatchSearchResult {
  size_t k = 0;
  std::vector<uint32_t> ids;               ///< (num_queries x k), row-major
  std::vector<float> distances;            ///< parallel to ids; minimized form
  std::vector<uint32_t> candidate_counts;  ///< |C(q)| per query

  const uint32_t* Row(size_t q) const { return ids.data() + q * k; }
  const float* DistanceRow(size_t q) const { return distances.data() + q * k; }

  /// Sizes ids/distances/candidate_counts for `num_queries` rows, every slot
  /// pre-padded (kInvalidId / +inf / 0).
  void AllocatePadded(size_t num_queries);

  /// Writes the first min(k, sorted.size()) neighbors into row q (ids and
  /// distances); trailing slots keep their padding.
  void SetRow(size_t q, const std::vector<Neighbor>& sorted);

  /// Mean candidate-set size S(R) over the batch (Eq. 4).
  double MeanCandidates() const;
};

/// On-disk type tag of each index implementation. Stored in the container
/// header (docs/FORMAT.md); values are a persistence contract — never reuse
/// or renumber them.
enum class IndexType : uint32_t {
  kPartition = 1,    ///< PartitionIndex (any BinScorer + exact rerank)
  kIvfFlat = 2,      ///< IvfFlatIndex
  kIvfPq = 3,        ///< IvfPqIndex
  kScann = 4,        ///< ScannIndex
  kHnsw = 5,         ///< HnswIndex
  kUspEnsemble = 6,  ///< UspEnsemble
  kDynamic = 7,      ///< DynamicIndex (serve/dynamic_index.h)
};

/// Human-readable name of a type tag ("partition", "ivf_flat", ...);
/// "unknown" for unregistered values.
const char* IndexTypeName(IndexType type);

/// Abstract, immutable (Add-free) ANN index: train or load offline, serve
/// queries online. `budget` is the per-query search effort knob — the number
/// of probed bins for partition-based indexes, ef_search for HNSW.
class Index {
 public:
  virtual ~Index() = default;

  /// Batched k-NN search. `queries` is a non-owning view (a Matrix converts
  /// implicitly; external storage — an mmap'd section, a caller-owned buffer —
  /// is searched zero-copy). `num_threads` caps the per-query sharding over
  /// the global thread pool (0 = pool default, 1 = serial); results are
  /// bit-identical at every setting. Result rows hold real neighbors first
  /// (ascending by distance, with matching `distances`), then kInvalidId
  /// padding.
  virtual BatchSearchResult SearchBatch(MatrixView queries, size_t k,
                                        size_t budget,
                                        size_t num_threads = 0) const = 0;

  /// Single-query convenience: returns up to k neighbor ids, ascending by
  /// distance. The default wraps `query` in a 1-row MatrixView (zero-copy)
  /// and routes through SearchBatch on the calling thread.
  virtual std::vector<uint32_t> Search(const float* query, size_t k,
                                       size_t budget) const;

  virtual size_t dim() const = 0;     ///< base vector dimensionality
  virtual size_t size() const = 0;    ///< number of indexed base vectors
  virtual Metric metric() const = 0;  ///< exact-rerank metric
  virtual IndexType type() const = 0;

  /// Read-only view of the indexed base vectors (row i = base point i) when
  /// the implementation stores them contiguously; an empty view otherwise.
  /// The serving layer's compaction (serve/dynamic_index.h) uses this to
  /// gather live rows out of sealed segments without knowing their type.
  virtual MatrixView base_view() const { return MatrixView(); }

  /// The concrete index this object answers queries with. Loaded indexes
  /// (index/serialize.h) are wrappers owning their storage; underlying()
  /// unwraps them so SaveIndex and type introspection see the real object.
  virtual const Index& underlying() const { return *this; }
};

}  // namespace usp

#endif  // USP_INDEX_INDEX_H_
