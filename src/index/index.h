// The unified ANN-index interface. Every index type in the repository —
// PartitionIndex, IvfFlatIndex, IvfPqIndex, ScannIndex, HnswIndex,
// UspEnsemble, DynamicIndex — implements Index, so benches, examples, and the
// serving layer program against one vtable and the serialization layer
// (index/serialize.h) can persist and reopen any of them behind a single
// OpenIndex() call.
//
// Queries are expressed as a SearchRequest: a view of the query vectors plus
// SearchOptions carrying k, the effort budget, the thread cap, an optional
// IdSelector filter (predicate-filtered search), and a per-query stats
// switch. The historical positional SearchBatch(queries, k, budget,
// num_threads) survives as a thin convenience shim over the request form.
#ifndef USP_INDEX_INDEX_H_
#define USP_INDEX_INDEX_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "dist/metric.h"
#include "index/id_selector.h"
#include "knn/top_k.h"
#include "tensor/matrix.h"
#include "workload/radius.h"

namespace usp {

/// Sentinel id marking a padded result slot. Rows of BatchSearchResult are
/// always exactly k wide; when a query yields fewer than k neighbors (k >
/// size(), tiny probe budgets, heavy deletes, a selector admitting fewer than
/// k points) the trailing slots hold kInvalidId with +inf distance. Every
/// Index implementation pads this way — real neighbors first (ascending by
/// distance), then an uninterrupted run of kInvalidId slots. Pinned by
/// tests/index_padding_test.cc and tests/filtered_search_test.cc.
inline constexpr uint32_t kInvalidId = 0xFFFFFFFFu;

/// How a filtered request is executed (SearchOptions::plan). kAuto lets the
/// query planner (index/query_planner.h) pick per request from a selectivity
/// probe and a per-index-type cost model; the kForce* modes pin one strategy
/// for benchmarking, debugging, or tests that target a specific path. All
/// strategies return bit-identical results to filtered brute force at full
/// budget; they differ only in cost. Unfiltered requests ignore this field.
enum class PlanMode : uint8_t {
  /// Planner's choice: pushdown, allowed-set scan, or post-filter, whichever
  /// the cost model predicts cheapest for this (index, selectivity, budget).
  kAuto = 0,

  /// Historical behavior: push the selector down into the index's own
  /// traversal (probe/visit as usual, test membership before scoring).
  kForcePushdown = 1,

  /// Brute force over the allowed subset (filtered BruteForceKnn on
  /// base_view) — exact at any budget; the low-selectivity escape hatch.
  kForceAllowedScan = 2,

  /// Unfiltered search with an enlarged k, then drop disallowed rows. Rows
  /// left with fewer than k allowed hits are re-run with real pushdown, so
  /// exactness at full budget is preserved.
  kForcePostFilter = 3,
};

/// Per-query search knobs. Defaults reproduce the historical positional call:
/// no filter, no stats, pool-default threading.
struct SearchOptions {
  /// Neighbors to return per query (result rows are exactly k wide, padded
  /// with kInvalidId).
  size_t k = 10;

  /// Per-query search effort: probed bins for the partition-based types,
  /// ef_search for HNSW, forwarded to every sealed segment by DynamicIndex.
  size_t budget = 1;

  /// Caps the per-query sharding over the global thread pool (0 = pool
  /// default, 1 = serial). Results are bit-identical at every setting.
  size_t num_threads = 0;

  /// Optional membership predicate: only ids with filter->is_member(id) may
  /// be returned. Applied before scoring in every index type (selector
  /// pushdown, docs/ARCHITECTURE.md "Query path"), so at full budget the
  /// result equals brute force restricted to the allowed subset — never a
  /// post-filtered truncation. Non-owning; must outlive the call. nullptr
  /// means unfiltered.
  const IdSelector* filter = nullptr;

  /// When true, the result carries a SearchStats block with per-query
  /// instrumentation (candidates scored, bins probed, filtered-out count,
  /// visited nodes).
  bool stats = false;

  /// Execution strategy for filtered requests; see PlanMode. Ignored when
  /// filter == nullptr.
  PlanMode plan = PlanMode::kAuto;
};

/// A batch of queries plus the options they run under. `queries` is a
/// non-owning view (a Matrix converts implicitly; external storage — an
/// mmap'd section, a caller-owned buffer — is searched zero-copy).
struct SearchRequest {
  MatrixView queries;
  SearchOptions options;
};

// SearchStats lives in workload/radius.h (included above): RadiusResult
// embeds it by value, and this header includes radius.h for the radius query
// surface, so the definition sits on the radius side of the include edge.

/// Search output for a batch of queries.
struct BatchSearchResult {
  size_t k = 0;
  std::vector<uint32_t> ids;     ///< (num_queries x k), row-major
  std::vector<float> distances;  ///< parallel to ids; minimized form

  /// |C(q)| per query: the number of candidates *scored* by the exact/ADC
  /// distance stage. Under a filter this is the post-filter count (dropped
  /// candidates are never scored), which keeps MeanCandidates() — the S(R)
  /// of Eq. 4 — meaningful as "exact-distance work per query". HNSW scores
  /// every visited node (navigation needs the distance), so its count is the
  /// visit count regardless of filter. Pinned by
  /// tests/filtered_search_test.cc (CandidateCountsArePostFilter).
  std::vector<uint32_t> candidate_counts;

  /// Per-query instrumentation; engaged only when SearchOptions::stats.
  std::optional<SearchStats> stats;

  const uint32_t* Row(size_t q) const { return ids.data() + q * k; }
  const float* DistanceRow(size_t q) const { return distances.data() + q * k; }

  /// Sizes ids/distances/candidate_counts for `num_queries` rows, every slot
  /// pre-padded (kInvalidId / +inf / 0).
  void AllocatePadded(size_t num_queries);

  /// AllocatePadded + sets k from `options` and engages the stats block when
  /// options.stats. The standard first step of every SearchBatch impl.
  void Prepare(size_t num_queries, const SearchOptions& options);

  /// Writes the first min(k, sorted.size()) neighbors into row q (ids and
  /// distances); trailing slots keep their padding.
  void SetRow(size_t q, const std::vector<Neighbor>& sorted);

  /// Mean candidate-set size S(R) over the batch (Eq. 4).
  double MeanCandidates() const;
};

/// On-disk type tag of each index implementation. Stored in the container
/// header (docs/FORMAT.md); values are a persistence contract — never reuse
/// or renumber them.
enum class IndexType : uint32_t {
  kPartition = 1,    ///< PartitionIndex (any BinScorer + exact rerank)
  kIvfFlat = 2,      ///< IvfFlatIndex
  kIvfPq = 3,        ///< IvfPqIndex
  kScann = 4,        ///< ScannIndex
  kHnsw = 5,         ///< HnswIndex
  kUspEnsemble = 6,  ///< UspEnsemble
  kDynamic = 7,      ///< DynamicIndex (serve/dynamic_index.h)
  kSq8 = 8,          ///< Sq8Index (quant/sq8_index.h)
  kSharded = 9,      ///< ShardedIndex (serve/sharded_index.h)
};

/// Human-readable name of a type tag ("partition", "ivf_flat", ...);
/// "unknown" for unregistered values.
const char* IndexTypeName(IndexType type);

/// Abstract, immutable (Add-free) ANN index: train or load offline, serve
/// queries online. Implementations override SearchBatch(const SearchRequest&)
/// and add `using Index::SearchBatch;` so the positional convenience shim
/// stays visible on the concrete type.
class Index {
 public:
  virtual ~Index() = default;

  /// Batched k-NN search over a structured request. Result rows hold real
  /// neighbors first (ascending by distance, with matching `distances`), then
  /// kInvalidId padding. With a filter, only allowed ids appear and at full
  /// budget the row is bit-identical to brute force over the allowed subset
  /// (tests/filtered_search_test.cc).
  virtual BatchSearchResult SearchBatch(const SearchRequest& request) const = 0;

  /// Positional convenience shim over the request form — kept so historical
  /// call sites stay source-compatible, and bit-identical to an unfiltered
  /// SearchRequest with the same (k, budget, num_threads) by construction.
  /// New code should build a SearchRequest (it is the only spelling that can
  /// express filters and stats).
  BatchSearchResult SearchBatch(MatrixView queries, size_t k, size_t budget,
                                size_t num_threads = 0) const {
    SearchRequest request;
    request.queries = queries;
    request.options.k = k;
    request.options.budget = budget;
    request.options.num_threads = num_threads;
    return SearchBatch(request);
  }

  /// Batched radius (range) search: for every query, all indexed points with
  /// minimized-form distance <= request.radius (inclusive), as a CSR
  /// RadiusResult with rows sorted by ascending (distance, id) — see
  /// workload/radius.h. At full budget (the RadiusOptions default) the result
  /// is bit-identical — offsets, ids, distances — to BruteForceRadius over
  /// base_view() restricted to the filter, including through Dynamic/Sharded
  /// fan-out with tombstones (tests/radius_search_test.cc); lower budgets
  /// trade recall for probing cost exactly as in k-NN search. The base
  /// implementation brute-forces base_view() and requires a non-empty view;
  /// every shipped index type overrides it with its native traversal.
  virtual RadiusResult RadiusSearchBatch(const RadiusRequest& request) const;

  /// Positional convenience shim over the request form, mirroring
  /// SearchBatch's shim.
  RadiusResult RadiusSearch(MatrixView queries, float radius,
                            const RadiusOptions& options = {}) const {
    RadiusRequest request;
    request.queries = queries;
    request.radius = radius;
    request.options = options;
    return RadiusSearchBatch(request);
  }

  /// Single-query convenience: returns up to k neighbor ids, ascending by
  /// distance. The default wraps `query` in a 1-row MatrixView (zero-copy)
  /// and routes through SearchBatch on the calling thread.
  virtual std::vector<uint32_t> Search(const float* query, size_t k,
                                       size_t budget) const;

  virtual size_t dim() const = 0;     ///< base vector dimensionality
  virtual size_t size() const = 0;    ///< number of indexed base vectors
  virtual Metric metric() const = 0;  ///< exact-rerank metric
  virtual IndexType type() const = 0;

  /// Read-only view of the indexed base vectors (row i = base point i) when
  /// the implementation stores them contiguously; an empty view otherwise.
  /// The serving layer's compaction (serve/dynamic_index.h) uses this to
  /// gather live rows out of sealed segments without knowing their type.
  virtual MatrixView base_view() const { return MatrixView(); }

  /// Expected number of candidates an *unfiltered* query generates at
  /// `budget` — the E term of the planner's cost model
  /// (index/query_planner.h). An estimate, not a promise: partition types
  /// assume balanced bins, HNSW bounds its frontier expansion. The default
  /// (the whole base) is the conservative upper bound.
  virtual size_t EstimateCandidates(size_t budget) const {
    (void)budget;
    return size();
  }

  /// The concrete index this object answers queries with. Loaded indexes
  /// (index/serialize.h) are wrappers owning their storage; underlying()
  /// unwraps them so SaveIndex and type introspection see the real object.
  virtual const Index& underlying() const { return *this; }
};

}  // namespace usp

#endif  // USP_INDEX_INDEX_H_
