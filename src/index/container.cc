#include "index/container.h"

#include <algorithm>
#include <cstring>

namespace usp {

namespace {

uint64_t AlignUp(uint64_t value, uint64_t alignment) {
  return (value + alignment - 1) / alignment * alignment;
}

std::string SectionName(SectionTag tag, uint32_t ordinal) {
  return "section " + std::to_string(static_cast<uint32_t>(tag)) + "/" +
         std::to_string(ordinal);
}

}  // namespace

ContainerWriter::ContainerWriter(IndexType type, Metric metric, uint64_t dim,
                                 uint64_t num_points) {
  std::memset(&header_, 0, sizeof(header_));
  std::memcpy(header_.magic, kContainerMagic, sizeof(kContainerMagic));
  header_.version = kContainerVersion;
  header_.index_type = static_cast<uint32_t>(type);
  header_.metric = static_cast<uint32_t>(metric);
  header_.dim = dim;
  header_.num_points = num_points;
}

void ContainerWriter::AddSection(SectionTag tag, uint32_t ordinal,
                                 const void* data, uint64_t size) {
  PendingSection section;
  section.entry = {static_cast<uint32_t>(tag), ordinal, 0, size};
  section.data = data;
  sections_.push_back(std::move(section));
}

void ContainerWriter::AddOwnedSection(SectionTag tag, uint32_t ordinal,
                                      std::string bytes) {
  PendingSection section;
  section.entry = {static_cast<uint32_t>(tag), ordinal, 0, bytes.size()};
  section.data = nullptr;
  section.owned = std::move(bytes);
  sections_.push_back(std::move(section));
}

Status ContainerWriter::WriteTo(Writer* out, const std::string& name) {
  header_.section_count = static_cast<uint32_t>(sections_.size());
  uint64_t cursor =
      sizeof(ContainerHeader) + sections_.size() * sizeof(SectionEntry);
  for (PendingSection& section : sections_) {
    cursor = AlignUp(cursor, kSectionAlignment);
    section.entry.offset = cursor;
    cursor += section.entry.size;
  }
  header_.file_size = cursor;

  bool ok = out->WritePod(header_);
  for (const PendingSection& section : sections_) {
    ok = ok && out->WritePod(section.entry);
  }
  static constexpr char kPadding[kSectionAlignment] = {};
  uint64_t written =
      sizeof(ContainerHeader) + sections_.size() * sizeof(SectionEntry);
  for (const PendingSection& section : sections_) {
    ok = ok && out->Write(kPadding, section.entry.offset - written);
    const void* data =
        section.data != nullptr ? section.data : section.owned.data();
    ok = ok && out->Write(data, section.entry.size);
    written = section.entry.offset + section.entry.size;
  }
  if (!ok) return Status::IoError("short write to " + name);
  return Status::Ok();
}

StreamingContainerWriter::StreamingContainerWriter(IndexType type,
                                                   Metric metric, uint64_t dim,
                                                   uint64_t num_points) {
  std::memset(&header_, 0, sizeof(header_));
  std::memcpy(header_.magic, kContainerMagic, sizeof(kContainerMagic));
  header_.version = kContainerVersion;
  header_.index_type = static_cast<uint32_t>(type);
  header_.metric = static_cast<uint32_t>(metric);
  header_.dim = dim;
  header_.num_points = num_points;
}

void StreamingContainerWriter::PlanSection(SectionTag tag, uint32_t ordinal,
                                           uint64_t size) {
  USP_CHECK(!started_);
  sections_.push_back({static_cast<uint32_t>(tag), ordinal, 0, size});
}

Status StreamingContainerWriter::Start(Writer* out, const std::string& name) {
  if (started_) {
    return Status::FailedPrecondition("StreamingContainerWriter restarted");
  }
  out_ = out;
  name_ = name;
  // ContainerWriter::WriteTo's layout, verbatim: the two writers must place
  // every byte identically.
  header_.section_count = static_cast<uint32_t>(sections_.size());
  uint64_t cursor =
      sizeof(ContainerHeader) + sections_.size() * sizeof(SectionEntry);
  for (SectionEntry& entry : sections_) {
    cursor = AlignUp(cursor, kSectionAlignment);
    entry.offset = cursor;
    cursor += entry.size;
  }
  header_.file_size = cursor;

  bool ok = out_->WritePod(header_);
  for (const SectionEntry& entry : sections_) {
    ok = ok && out_->WritePod(entry);
  }
  if (!ok) return Status::IoError("short write to " + name_);
  written_ =
      sizeof(ContainerHeader) + sections_.size() * sizeof(SectionEntry);
  started_ = true;
  return Status::Ok();
}

Status StreamingContainerWriter::Pad(uint64_t target) {
  static constexpr char kPadding[kSectionAlignment] = {};
  while (written_ < target) {
    const uint64_t step =
        std::min<uint64_t>(target - written_, kSectionAlignment);
    if (!out_->Write(kPadding, step)) {
      return Status::IoError("short write to " + name_);
    }
    written_ += step;
  }
  return Status::Ok();
}

Status StreamingContainerWriter::Append(const void* data, uint64_t size) {
  if (!started_) {
    return Status::FailedPrecondition("Append before Start on " + name_);
  }
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  while (size > 0) {
    while (current_ < sections_.size() &&
           section_written_ == sections_[current_].size) {
      ++current_;
      section_written_ = 0;
    }
    if (current_ == sections_.size()) {
      return Status::InvalidArgument("payload bytes beyond planned sections in " +
                                     name_);
    }
    const SectionEntry& entry = sections_[current_];
    if (section_written_ == 0) {
      Status status = Pad(entry.offset);
      if (!status.ok()) return status;
    }
    const uint64_t take =
        std::min<uint64_t>(size, entry.size - section_written_);
    if (!out_->Write(bytes, take)) {
      return Status::IoError("short write to " + name_);
    }
    bytes += take;
    size -= take;
    section_written_ += take;
    written_ += take;
  }
  return Status::Ok();
}

Status StreamingContainerWriter::Finish() {
  if (!started_) {
    return Status::FailedPrecondition("Finish before Start on " + name_);
  }
  while (current_ < sections_.size() &&
         section_written_ == sections_[current_].size) {
    ++current_;
    section_written_ = 0;
  }
  if (current_ != sections_.size()) {
    const SectionEntry& entry = sections_[current_];
    return Status::InvalidArgument(
        SectionName(static_cast<SectionTag>(entry.tag), entry.ordinal) +
        " in " + name_ + " is short: " + std::to_string(section_written_) +
        " of " + std::to_string(entry.size) + " bytes appended");
  }
  // Trailing zero-size sections still claim an aligned offset; pad out to
  // the declared file size so the bytes match ContainerWriter exactly.
  Status status = Pad(header_.file_size);
  if (!status.ok()) return status;
  started_ = false;
  return Status::Ok();
}


Status ContainerReader::ValidateTable() {
  if (std::memcmp(header_.magic, kContainerMagic, sizeof(kContainerMagic)) !=
      0) {
    return Status::InvalidArgument(path_ + " is not a USP index container");
  }
  if (header_.version != kContainerVersion) {
    return Status::InvalidArgument(
        "unsupported container format version " +
        std::to_string(header_.version) + " in " + path_ + " (this build reads " +
        std::to_string(kContainerVersion) + ")");
  }
  if (header_.file_size != actual_file_size_) {
    return Status::IoError("truncated container " + path_ + ": header says " +
                           std::to_string(header_.file_size) + " bytes, file has " +
                           std::to_string(actual_file_size_));
  }
  const uint64_t table_end =
      sizeof(ContainerHeader) + header_.section_count * sizeof(SectionEntry);
  if (table_end > actual_file_size_) {
    return Status::InvalidArgument("section table overruns " + path_);
  }
  for (const SectionEntry& entry : table_) {
    if (entry.offset % kSectionAlignment != 0) {
      return Status::InvalidArgument("misaligned section offset in " + path_);
    }
    if (entry.offset < table_end || entry.offset > actual_file_size_ ||
        entry.size > actual_file_size_ - entry.offset) {
      return Status::InvalidArgument("section out of bounds in " + path_);
    }
  }
  return Status::Ok();
}

StatusOr<std::unique_ptr<ContainerReader>> ContainerReader::OpenFile(
    const std::string& path) {
  auto reader = std::unique_ptr<ContainerReader>(new ContainerReader());
  reader->path_ = path;
  reader->file_ = std::make_unique<FileReader>(path);
  if (!reader->file_->ok()) return Status::IoError("cannot open " + path);
  StatusOr<uint64_t> size = reader->file_->Size();
  if (!size.ok()) return size.status();
  reader->actual_file_size_ = size.value();
  if (!reader->file_->ReadPod(&reader->header_)) {
    return Status::IoError("truncated container header in " + path);
  }
  // Bound the table read before trusting section_count.
  if (reader->actual_file_size_ <
      sizeof(ContainerHeader) +
          static_cast<uint64_t>(reader->header_.section_count) *
              sizeof(SectionEntry)) {
    // Magic/version errors should win over the size complaint.
    if (std::memcmp(reader->header_.magic, kContainerMagic,
                    sizeof(kContainerMagic)) != 0) {
      return Status::InvalidArgument(path + " is not a USP index container");
    }
    return Status::IoError("truncated container " + path);
  }
  reader->table_.resize(reader->header_.section_count);
  if (!reader->table_.empty() &&
      !reader->file_->Read(reader->table_.data(),
                           reader->table_.size() * sizeof(SectionEntry))) {
    return Status::IoError("truncated section table in " + path);
  }
  Status status = reader->ValidateTable();
  if (!status.ok()) return status;
  return reader;
}

Status ContainerReader::ParseView() {
  if (actual_file_size_ < sizeof(ContainerHeader)) {
    return Status::IoError("truncated container header in " + path_);
  }
  std::memcpy(&header_, view_, sizeof(ContainerHeader));
  const uint64_t table_bytes =
      static_cast<uint64_t>(header_.section_count) * sizeof(SectionEntry);
  if (actual_file_size_ < sizeof(ContainerHeader) + table_bytes) {
    if (std::memcmp(header_.magic, kContainerMagic,
                    sizeof(kContainerMagic)) != 0) {
      return Status::InvalidArgument(path_ + " is not a USP index container");
    }
    return Status::IoError("truncated container " + path_);
  }
  table_.resize(header_.section_count);
  if (!table_.empty()) {
    std::memcpy(table_.data(), view_ + sizeof(ContainerHeader), table_bytes);
  }
  return ValidateTable();
}

StatusOr<std::unique_ptr<ContainerReader>> ContainerReader::OpenMmap(
    const std::string& path) {
  StatusOr<MmapFile> map = MmapFile::Open(path);
  if (!map.ok()) return map.status();
  auto reader = std::unique_ptr<ContainerReader>(new ContainerReader());
  reader->path_ = path;
  reader->map_ = std::move(map).value();
  reader->view_ = reader->map_.data();
  reader->actual_file_size_ = reader->map_.size();
  Status status = reader->ParseView();
  if (!status.ok()) return status;
  return reader;
}

StatusOr<std::unique_ptr<ContainerReader>> ContainerReader::OpenMem(
    std::vector<uint8_t> bytes, const std::string& name) {
  auto reader = std::unique_ptr<ContainerReader>(new ContainerReader());
  reader->path_ = name;
  reader->mem_ = std::move(bytes);
  reader->view_ = reader->mem_.data();
  reader->actual_file_size_ = reader->mem_.size();
  Status status = reader->ParseView();
  if (!status.ok()) return status;
  return reader;
}

const SectionEntry* ContainerReader::FindEntry(SectionTag tag,
                                               uint32_t ordinal) const {
  for (const SectionEntry& entry : table_) {
    if (entry.tag == static_cast<uint32_t>(tag) && entry.ordinal == ordinal) {
      return &entry;
    }
  }
  return nullptr;
}

bool ContainerReader::Has(SectionTag tag, uint32_t ordinal) const {
  return FindEntry(tag, ordinal) != nullptr;
}

StatusOr<SectionEntry> ContainerReader::Find(SectionTag tag,
                                             uint32_t ordinal) const {
  const SectionEntry* entry = FindEntry(tag, ordinal);
  if (entry == nullptr) {
    return Status::InvalidArgument("missing " + SectionName(tag, ordinal) +
                                   " in " + path_);
  }
  return *entry;
}

Status ContainerReader::ReadSection(SectionTag tag, uint32_t ordinal,
                                    void* out, uint64_t expected_size) {
  const SectionEntry* entry = FindEntry(tag, ordinal);
  if (entry == nullptr) {
    return Status::InvalidArgument("missing " + SectionName(tag, ordinal) +
                                   " in " + path_);
  }
  if (entry->size != expected_size) {
    return Status::InvalidArgument(
        SectionName(tag, ordinal) + " in " + path_ + " has " +
        std::to_string(entry->size) + " bytes, expected " +
        std::to_string(expected_size));
  }
  if (entry->size == 0) return Status::Ok();
  if (view_ != nullptr) {
    std::memcpy(out, view_ + entry->offset, entry->size);
    return Status::Ok();
  }
  if (!file_->Seek(entry->offset) || !file_->Read(out, entry->size)) {
    return Status::IoError("short read of " + SectionName(tag, ordinal) +
                           " in " + path_);
  }
  return Status::Ok();
}

StatusOr<std::vector<uint8_t>> ContainerReader::ReadSectionBytes(
    SectionTag tag, uint32_t ordinal) {
  StatusOr<SectionEntry> entry = Find(tag, ordinal);
  if (!entry.ok()) return entry.status();
  std::vector<uint8_t> bytes(entry.value().size);
  Status status = ReadSection(tag, ordinal, bytes.data(), bytes.size());
  if (!status.ok()) return status;
  return bytes;
}

StatusOr<const uint8_t*> ContainerReader::SectionData(SectionTag tag,
                                                      uint32_t ordinal) const {
  if (view_ == nullptr) {
    return Status::FailedPrecondition(
        "zero-copy section views need an mmap- or memory-opened container");
  }
  const SectionEntry* entry = FindEntry(tag, ordinal);
  if (entry == nullptr) {
    return Status::InvalidArgument("missing " + SectionName(tag, ordinal) +
                                   " in " + path_);
  }
  return view_ + entry->offset;
}

}  // namespace usp
