#include "index/index.h"

#include <cstring>
#include <limits>
#include <numeric>

namespace usp {

double BatchSearchResult::MeanCandidates() const {
  if (candidate_counts.empty()) return 0.0;
  const double sum =
      std::accumulate(candidate_counts.begin(), candidate_counts.end(), 0.0);
  return sum / static_cast<double>(candidate_counts.size());
}

const char* IndexTypeName(IndexType type) {
  switch (type) {
    case IndexType::kPartition:
      return "partition";
    case IndexType::kIvfFlat:
      return "ivf_flat";
    case IndexType::kIvfPq:
      return "ivf_pq";
    case IndexType::kScann:
      return "scann";
    case IndexType::kHnsw:
      return "hnsw";
    case IndexType::kUspEnsemble:
      return "usp_ensemble";
  }
  return "unknown";
}

std::vector<uint32_t> Index::Search(const float* query, size_t k,
                                    size_t budget) const {
  Matrix one(1, dim());
  std::memcpy(one.Row(0), query, dim() * sizeof(float));
  const BatchSearchResult result =
      SearchBatch(one, k, budget, /*num_threads=*/1);
  std::vector<uint32_t> ids;
  ids.reserve(k);
  for (size_t j = 0; j < result.k; ++j) {
    const uint32_t id = result.Row(0)[j];
    if (id == std::numeric_limits<uint32_t>::max()) break;  // padding
    ids.push_back(id);
  }
  return ids;
}

}  // namespace usp
