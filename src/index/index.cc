#include "index/index.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "knn/brute_force.h"
#include "util/status.h"

namespace usp {

void SearchStats::Allocate(size_t num_queries) {
  candidates_scored.assign(num_queries, 0);
  bins_probed.assign(num_queries, 0);
  filtered_out.assign(num_queries, 0);
  nodes_visited.assign(num_queries, 0);
}

void BatchSearchResult::AllocatePadded(size_t num_queries) {
  ids.assign(num_queries * k, kInvalidId);
  distances.assign(num_queries * k,
                   std::numeric_limits<float>::infinity());
  candidate_counts.assign(num_queries, 0);
}

void BatchSearchResult::Prepare(size_t num_queries,
                                const SearchOptions& options) {
  k = options.k;
  AllocatePadded(num_queries);
  if (options.stats) {
    stats.emplace();
    stats->Allocate(num_queries);
  } else {
    stats.reset();
  }
}

void BatchSearchResult::SetRow(size_t q, const std::vector<Neighbor>& sorted) {
  const size_t count = std::min(k, sorted.size());
  for (size_t j = 0; j < count; ++j) {
    ids[q * k + j] = sorted[j].id;
    distances[q * k + j] = sorted[j].distance;
  }
}

double BatchSearchResult::MeanCandidates() const {
  if (candidate_counts.empty()) return 0.0;
  const double sum =
      std::accumulate(candidate_counts.begin(), candidate_counts.end(), 0.0);
  return sum / static_cast<double>(candidate_counts.size());
}

const char* IndexTypeName(IndexType type) {
  switch (type) {
    case IndexType::kPartition:
      return "partition";
    case IndexType::kIvfFlat:
      return "ivf_flat";
    case IndexType::kIvfPq:
      return "ivf_pq";
    case IndexType::kScann:
      return "scann";
    case IndexType::kHnsw:
      return "hnsw";
    case IndexType::kUspEnsemble:
      return "usp_ensemble";
    case IndexType::kDynamic:
      return "dynamic";
    case IndexType::kSq8:
      return "sq8";
    case IndexType::kSharded:
      return "sharded";
  }
  return "unknown";
}

RadiusResult Index::RadiusSearchBatch(const RadiusRequest& request) const {
  // Fallback for implementations without a native range traversal: exact scan
  // of the stored base. Types that do not expose their vectors contiguously
  // must override instead.
  const MatrixView base = base_view();
  USP_CHECK(base.data() != nullptr && base.rows() == size());
  return BruteForceRadius(base, request.queries, request.radius, metric(),
                          request.options.filter, request.options.num_threads);
}

std::vector<uint32_t> Index::Search(const float* query, size_t k,
                                    size_t budget) const {
  // Zero-copy: the caller's buffer is viewed in place, never staged through a
  // heap Matrix.
  const BatchSearchResult result = SearchBatch(
      MatrixView(query, 1, dim()), k, budget, /*num_threads=*/1);
  std::vector<uint32_t> ids;
  ids.reserve(k);
  for (size_t j = 0; j < result.k; ++j) {
    const uint32_t id = result.Row(0)[j];
    if (id == kInvalidId) break;  // padding
    ids.push_back(id);
  }
  return ids;
}

}  // namespace usp
