#include "index/serialize.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "baselines/kmeans.h"
#include "core/ensemble.h"
#include "core/partition_index.h"
#include "core/partitioner.h"
#include "dist/quant_kernels.h"
#include "hnsw/hnsw.h"
#include "index/index_records.h"
#include "ivf/ivf.h"
#include "quant/scann_index.h"
#include "quant/sq8_index.h"
#include "serve/dynamic_index.h"
#include "serve/sharded_index.h"
#include "util/io.h"

namespace usp {

namespace {

// ---------------------------------------------------------------------------
// POD config records (kConfig / kPqMeta section payloads). Layouts are part
// of the on-disk contract (docs/FORMAT.md): fixed-width little-endian fields,
// no implicit padding — never reorder or resize, only append on a version
// bump.
// ---------------------------------------------------------------------------

enum ScorerKind : uint32_t {
  kScorerNone = 0,
  kScorerKMeans = 1,
  kScorerUsp = 2,
};

struct PartitionConfigRecord {
  uint32_t scorer_kind;
  uint32_t scorer_metric;
};
static_assert(sizeof(PartitionConfigRecord) == 8, "on-disk contract");

// IvfFlatConfigRecord and Sq8ConfigRecord moved to index/index_records.h:
// the out-of-core builder writes them too.

struct IvfPqConfigRecord {
  uint64_t nlist;
  uint64_t kmeans_iterations;
  uint64_t seed;
  uint64_t rerank_budget;
};
static_assert(sizeof(IvfPqConfigRecord) == 32, "on-disk contract");

struct ScannConfigRecord {
  uint64_t rerank_budget;
  uint32_t scorer_kind;
  uint32_t scorer_metric;
};
static_assert(sizeof(ScannConfigRecord) == 16, "on-disk contract");

struct HnswConfigRecord {
  uint64_t max_neighbors;
  uint64_t ef_construction;
  uint64_t seed;
  int32_t max_level;
  uint32_t entry_point;
};
static_assert(sizeof(HnswConfigRecord) == 32, "on-disk contract");

struct PqMetaRecord {
  uint64_t num_subspaces;
  uint64_t codebook_size;
  uint64_t kmeans_iterations;
  uint64_t seed;
  uint64_t codebook_rows;  ///< trained rows per codebook (<= codebook_size)
  uint64_t dims;
  float anisotropic_eta;
  uint32_t reserved;
};
static_assert(sizeof(PqMetaRecord) == 56, "on-disk contract");

struct UspTrainRecord {
  uint64_t num_bins;
  uint64_t hidden_dim;
  uint64_t epochs;
  uint64_t batch_size;
  uint64_t seed;
  float eta;
  float dropout;
  float learning_rate;
  uint32_t model_kind;
  uint32_t use_batchnorm;
  uint32_t soft_targets;
};
static_assert(sizeof(UspTrainRecord) == 64, "on-disk contract");

struct EnsembleConfigRecord {
  UspTrainRecord model;
  uint64_t num_models;
  float weight_floor;
  uint32_t combine;
};
static_assert(sizeof(EnsembleConfigRecord) == 80, "on-disk contract");

struct DynamicConfigRecord {
  uint64_t next_global_id;
  uint64_t num_sealed;
  uint64_t write_rows;
  uint64_t tombstone_count;
  uint64_t seal_threshold;
  uint64_t max_sealed_segments;
};
static_assert(sizeof(DynamicConfigRecord) == 48, "on-disk contract");

/// One kManifest row describing a sealed segment (its payload lives in the
/// kSegmentBlob section of the same ordinal).
struct DynamicSegmentEntry {
  uint64_t rows;
  uint32_t index_type;  ///< IndexType tag of the embedded container
  uint32_t reserved;
};
static_assert(sizeof(DynamicSegmentEntry) == 16, "on-disk contract");

struct ShardedConfigRecord {
  uint64_t next_global_id;
  uint64_t num_shards;
};
static_assert(sizeof(ShardedConfigRecord) == 16, "on-disk contract");

/// One kManifest row describing a shard (payload in the kSegmentBlob /
/// kIdMap sections of the same ordinal). index_type 0 marks an absent shard
/// (its hash partition received no rows): no blob, no id map.
struct ShardManifestEntry {
  uint64_t rows;        ///< live rows (sub-index size())
  uint64_t id_entries;  ///< local_to_global length (> rows when a dynamic
                        ///< shard carries tombstoned ids)
  uint32_t index_type;  ///< IndexType tag of the embedded container; 0 absent
  uint32_t reserved;
};
static_assert(sizeof(ShardManifestEntry) == 24, "on-disk contract");

UspTrainRecord PackTrainConfig(const UspTrainConfig& c) {
  UspTrainRecord r{};
  r.num_bins = c.num_bins;
  r.hidden_dim = c.hidden_dim;
  r.epochs = c.epochs;
  r.batch_size = c.batch_size;
  r.seed = c.seed;
  r.eta = c.eta;
  r.dropout = c.dropout;
  r.learning_rate = c.learning_rate;
  r.model_kind = c.model == UspModelKind::kMlp ? 0 : 1;
  r.use_batchnorm = c.use_batchnorm ? 1 : 0;
  r.soft_targets = c.soft_targets ? 1 : 0;
  return r;
}

UspTrainConfig UnpackTrainConfig(const UspTrainRecord& r) {
  UspTrainConfig c;
  c.num_bins = static_cast<size_t>(r.num_bins);
  c.hidden_dim = static_cast<size_t>(r.hidden_dim);
  c.epochs = static_cast<size_t>(r.epochs);
  c.batch_size = static_cast<size_t>(r.batch_size);
  c.seed = r.seed;
  c.eta = r.eta;
  c.dropout = r.dropout;
  c.learning_rate = r.learning_rate;
  c.model = r.model_kind == 0 ? UspModelKind::kMlp
                              : UspModelKind::kLogisticRegression;
  c.use_batchnorm = r.use_batchnorm != 0;
  c.soft_targets = r.soft_targets != 0;
  return c;
}

// ---------------------------------------------------------------------------
// Shared save helpers.
// ---------------------------------------------------------------------------

Status CheckMetricValue(uint32_t metric, const std::string& path) {
  if (metric > static_cast<uint32_t>(Metric::kCosine)) {
    return Status::InvalidArgument("unknown metric tag " +
                                   std::to_string(metric) + " in " + path);
  }
  return Status::Ok();
}

/// Classifies a scorer for serialization and appends its payload section.
/// Returns kInvalidArgument for scorer types with no on-disk representation.
Status AppendScorerSections(const BinScorer* scorer, uint32_t ordinal,
                            ContainerWriter* writer, uint32_t* kind,
                            uint32_t* scorer_metric) {
  if (const auto* kmeans = dynamic_cast<const KMeansPartitioner*>(scorer)) {
    *kind = kScorerKMeans;
    *scorer_metric = static_cast<uint32_t>(kmeans->metric());
    const Matrix& centroids = kmeans->centroids();
    writer->AddSection(SectionTag::kCentroids, ordinal, centroids.data(),
                       centroids.size() * sizeof(float));
    return Status::Ok();
  }
  if (const auto* usp = dynamic_cast<const UspPartitioner*>(scorer)) {
    *kind = kScorerUsp;
    *scorer_metric = 0;
    StringWriter blob;
    Status status = usp->SaveTo(&blob, "embedded model");
    if (!status.ok()) return status;
    writer->AddOwnedSection(SectionTag::kUspModel, ordinal, blob.TakeBytes());
    return Status::Ok();
  }
  return Status::InvalidArgument(
      "cannot serialize this BinScorer type: only KMeansPartitioner and "
      "UspPartitioner have an on-disk representation");
}

void AppendBaseSection(MatrixView base, ContainerWriter* writer) {
  writer->AddSection(SectionTag::kBaseVectors, 0, base.data(),
                     base.size() * sizeof(float));
}

void AppendAssignments(const std::vector<uint32_t>& assignments,
                       uint32_t ordinal, ContainerWriter* writer) {
  writer->AddSection(SectionTag::kAssignments, ordinal, assignments.data(),
                     assignments.size() * sizeof(uint32_t));
}

/// Adds kPqMeta / kPqOffsets / kPqCodebooks. The returned buffers back the
/// referenced sections and must stay alive until WriteTo.
struct PqSections {
  PqMetaRecord meta;
  std::vector<uint64_t> offsets;
  std::vector<float> codebooks;
};

PqSections AppendPqSections(const ProductQuantizer& pq,
                            ContainerWriter* writer) {
  PqSections out;
  out.meta = PqMetaRecord{};
  out.meta.num_subspaces = pq.num_subspaces();
  out.meta.codebook_size = pq.codebook_size();
  out.meta.kmeans_iterations = pq.config().kmeans_iterations;
  out.meta.seed = pq.config().seed;
  out.meta.codebook_rows = pq.codebook(0).rows();
  out.meta.dims = pq.dims();
  out.meta.anisotropic_eta = pq.config().anisotropic_eta;

  out.offsets.assign(pq.subspace_offsets().begin(),
                     pq.subspace_offsets().end());
  for (size_t s = 0; s < pq.num_subspaces(); ++s) {
    const Matrix& codebook = pq.codebook(s);
    out.codebooks.insert(out.codebooks.end(), codebook.data(),
                         codebook.data() + codebook.size());
  }
  writer->AddSection(SectionTag::kPqMeta, 0, &out.meta, sizeof(out.meta));
  writer->AddSection(SectionTag::kPqOffsets, 0, out.offsets.data(),
                     out.offsets.size() * sizeof(uint64_t));
  writer->AddSection(SectionTag::kPqCodebooks, 0, out.codebooks.data(),
                     out.codebooks.size() * sizeof(float));
  return out;
}

// ---------------------------------------------------------------------------
// Per-type savers. Locals referenced by AddSection live until WriteTo.
// ---------------------------------------------------------------------------

Status SavePartition(const PartitionIndex& index, Writer* out,
            const std::string& name) {
  ContainerWriter writer(IndexType::kPartition, index.metric(), index.dim(),
                         index.size());
  PartitionConfigRecord config{};
  Status status = AppendScorerSections(index.scorer(), 0, &writer,
                                       &config.scorer_kind,
                                       &config.scorer_metric);
  if (!status.ok()) return status;
  writer.AddSection(SectionTag::kConfig, 0, &config, sizeof(config));
  AppendBaseSection(index.base(), &writer);
  AppendAssignments(index.assignments(), 0, &writer);
  return writer.WriteTo(out, name);
}

Status SaveIvfFlat(const IvfFlatIndex& index, Writer* out,
            const std::string& name) {
  ContainerWriter writer(IndexType::kIvfFlat, index.metric(), index.dim(),
                         index.size());
  IvfFlatConfigRecord config{};
  config.nlist = index.config().nlist;
  config.kmeans_iterations = index.config().kmeans_iterations;
  config.seed = index.config().seed;
  writer.AddSection(SectionTag::kConfig, 0, &config, sizeof(config));
  const Matrix& centroids = index.coarse_quantizer().centroids();
  writer.AddSection(SectionTag::kCentroids, 0, centroids.data(),
                    centroids.size() * sizeof(float));
  AppendBaseSection(index.partition().base(), &writer);
  AppendAssignments(index.partition().assignments(), 0, &writer);
  return writer.WriteTo(out, name);
}

/// Appends the fast-scan block section when the index carries packed codes,
/// so mmap'd loads serve them zero-copy instead of re-packing kPqCodes.
void AppendPackedCodes(const ScannIndex& scann, ContainerWriter* writer) {
  if (!scann.has_fast_scan()) return;
  writer->AddSection(SectionTag::kPqPackedCodes, 0, scann.packed_codes(),
                     scann.PackedBytes());
}

Status SaveIvfPq(const IvfPqIndex& index, Writer* out,
            const std::string& name) {
  ContainerWriter writer(IndexType::kIvfPq, index.metric(), index.dim(),
                         index.size());
  IvfPqConfigRecord config{};
  config.nlist = index.config().nlist;
  config.kmeans_iterations = index.config().kmeans_iterations;
  config.seed = index.config().seed;
  config.rerank_budget = index.config().rerank_budget;
  writer.AddSection(SectionTag::kConfig, 0, &config, sizeof(config));
  const Matrix& centroids = index.coarse_quantizer().centroids();
  writer.AddSection(SectionTag::kCentroids, 0, centroids.data(),
                    centroids.size() * sizeof(float));
  AppendBaseSection(index.scann().base(), &writer);
  const std::vector<uint32_t> assignments = index.scann().Assignments();
  AppendAssignments(assignments, 0, &writer);
  const PqSections pq = AppendPqSections(index.scann().quantizer(), &writer);
  writer.AddSection(SectionTag::kPqCodes, 0, index.scann().codes(),
                    index.size() * index.scann().quantizer().num_subspaces());
  AppendPackedCodes(index.scann(), &writer);
  return writer.WriteTo(out, name);
}

Status SaveScann(const ScannIndex& index, Writer* out,
            const std::string& name) {
  ContainerWriter writer(IndexType::kScann, index.metric(), index.dim(),
                         index.size());
  ScannConfigRecord config{};
  config.rerank_budget = index.config().rerank_budget;
  config.scorer_kind = kScorerNone;
  std::vector<uint32_t> assignments;
  if (index.has_partition()) {
    Status status = AppendScorerSections(index.partitioner(), 0, &writer,
                                         &config.scorer_kind,
                                         &config.scorer_metric);
    if (!status.ok()) return status;
    assignments = index.Assignments();
    AppendAssignments(assignments, 0, &writer);
  }
  writer.AddSection(SectionTag::kConfig, 0, &config, sizeof(config));
  AppendBaseSection(index.base(), &writer);
  const PqSections pq = AppendPqSections(index.quantizer(), &writer);
  writer.AddSection(SectionTag::kPqCodes, 0, index.codes(),
                    index.size() * index.quantizer().num_subspaces());
  AppendPackedCodes(index, &writer);
  return writer.WriteTo(out, name);
}

Status SaveSq8(const Sq8Index& index, Writer* out, const std::string& name) {
  ContainerWriter writer(IndexType::kSq8, index.metric(), index.dim(),
                         index.size());
  Sq8ConfigRecord config{};
  config.rerank_budget = index.config().rerank_budget;
  writer.AddSection(SectionTag::kConfig, 0, &config, sizeof(config));
  AppendBaseSection(index.base_view(), &writer);
  std::vector<float> params;
  params.reserve(2 * index.dim());
  params.insert(params.end(), index.mins().begin(), index.mins().end());
  params.insert(params.end(), index.scales().begin(), index.scales().end());
  writer.AddSection(SectionTag::kSq8Params, 0, params.data(),
                    params.size() * sizeof(float));
  writer.AddSection(SectionTag::kSq8Codes, 0, index.codes(),
                    index.size() * index.dim());
  return writer.WriteTo(out, name);
}

Status SaveHnsw(const HnswIndex& index, Writer* out,
            const std::string& name) {
  if (index.max_level() < 0) {
    return Status::FailedPrecondition("HNSW index not built");
  }
  ContainerWriter writer(IndexType::kHnsw, Metric::kSquaredL2, index.dim(),
                         index.size());
  HnswConfigRecord config{};
  config.max_neighbors = index.config().max_neighbors;
  config.ef_construction = index.config().ef_construction;
  config.seed = index.config().seed;
  config.max_level = index.max_level();
  config.entry_point = index.entry_point();
  writer.AddSection(SectionTag::kConfig, 0, &config, sizeof(config));
  AppendBaseSection(index.base(), &writer);

  std::vector<int32_t> levels(index.node_levels().begin(),
                              index.node_levels().end());
  writer.AddSection(SectionTag::kHnswLevels, 0, levels.data(),
                    levels.size() * sizeof(int32_t));
  StringWriter links;
  for (const auto& node_links : index.links()) {
    for (const auto& level_links : node_links) {
      const uint32_t count = static_cast<uint32_t>(level_links.size());
      links.WritePod(count);
      links.Write(level_links.data(), level_links.size() * sizeof(uint32_t));
    }
  }
  writer.AddOwnedSection(SectionTag::kHnswLinks, 0, links.TakeBytes());
  return writer.WriteTo(out, name);
}

Status SaveEnsemble(const UspEnsemble& index, Writer* out,
            const std::string& name) {
  ContainerWriter writer(IndexType::kUspEnsemble, Metric::kSquaredL2,
                         index.dim(), index.size());
  EnsembleConfigRecord config{};
  config.model = PackTrainConfig(index.config().model);
  config.num_models = index.num_models();
  config.weight_floor = index.config().weight_floor;
  config.combine = static_cast<uint32_t>(index.config().combine);
  writer.AddSection(SectionTag::kConfig, 0, &config, sizeof(config));
  AppendBaseSection(index.index(0).base(), &writer);
  for (size_t j = 0; j < index.num_models(); ++j) {
    StringWriter blob;
    Status status = index.model(j).SaveTo(&blob, "embedded ensemble model");
    if (!status.ok()) return status;
    writer.AddOwnedSection(SectionTag::kUspModel, static_cast<uint32_t>(j),
                           blob.TakeBytes());
    AppendAssignments(index.index(j).assignments(), static_cast<uint32_t>(j),
                      &writer);
  }
  writer.AddSection(SectionTag::kWeights, 0, index.final_weights().data(),
                    index.final_weights().size() * sizeof(float));
  return writer.WriteTo(out, name);
}

Status SaveDynamic(const DynamicIndex& index, Writer* out,
                   const std::string& name) {
  // WithFrozenState holds the index's reader lock for the whole save, so the
  // container is one consistent snapshot even while writers run.
  return index.WithFrozenState([&](const DynamicIndex::FrozenState& state)
                                   -> Status {
    uint64_t total_rows = state.write_rows;
    for (const auto& segment : state.sealed) {
      total_rows += segment->index->size();
    }
    ContainerWriter writer(IndexType::kDynamic, index.metric(), index.dim(),
                           total_rows);

    DynamicConfigRecord config{};
    config.next_global_id = state.next_global_id;
    config.num_sealed = state.sealed.size();
    config.write_rows = state.write_rows;
    config.tombstone_count = state.tombstones.size();
    config.seal_threshold = index.config().seal_threshold;
    config.max_sealed_segments = index.config().max_sealed_segments;
    writer.AddSection(SectionTag::kConfig, 0, &config, sizeof(config));

    std::vector<DynamicSegmentEntry> manifest;
    manifest.reserve(state.sealed.size());
    for (const auto& segment : state.sealed) {
      DynamicSegmentEntry entry{};
      entry.rows = segment->index->size();
      entry.index_type = static_cast<uint32_t>(segment->index->type());
      manifest.push_back(entry);
    }
    writer.AddSection(SectionTag::kManifest, 0, manifest.data(),
                      manifest.size() * sizeof(DynamicSegmentEntry));

    for (size_t j = 0; j < state.sealed.size(); ++j) {
      const DynamicIndex::SealedSegment& segment = *state.sealed[j];
      StatusOr<std::string> blob = SerializeIndex(*segment.index);
      if (!blob.ok()) return blob.status();
      writer.AddOwnedSection(SectionTag::kSegmentBlob,
                             static_cast<uint32_t>(j),
                             std::move(blob).value());
      writer.AddSection(SectionTag::kIdMap, static_cast<uint32_t>(j),
                        segment.global_ids.data(),
                        segment.global_ids.size() * sizeof(uint32_t));
    }
    writer.AddSection(SectionTag::kIdMap,
                      static_cast<uint32_t>(state.sealed.size()),
                      state.write_ids.data(),
                      state.write_ids.size() * sizeof(uint32_t));
    writer.AddSection(SectionTag::kBaseVectors, 0, state.write_data,
                      state.write_rows * index.dim() * sizeof(float));

    std::vector<uint64_t> bitmap((state.next_global_id + 63) / 64, 0);
    for (uint32_t id : state.tombstones) {
      bitmap[id / 64] |= uint64_t{1} << (id % 64);
    }
    writer.AddSection(SectionTag::kTombstones, 0, bitmap.data(),
                      bitmap.size() * sizeof(uint64_t));
    return writer.WriteTo(out, name);
  });
}

Status SaveSharded(const ShardedIndex& index, Writer* out,
                   const std::string& name) {
  // The frozen state pins the placement (shard set, id maps, next id); each
  // embedded SerializeIndex then snapshots its own shard under the shard's
  // lock (a dynamic shard's background seal/compact reorganizes rows but
  // never changes ids or the live count, so the manifest stays consistent).
  return index.WithFrozenState([&](const ShardedIndex::FrozenState& state)
                                   -> Status {
    uint64_t total_rows = 0;
    for (const ShardedIndex::Shard& shard : state.shards) {
      if (shard.index != nullptr) total_rows += shard.index->size();
    }
    ContainerWriter writer(IndexType::kSharded, index.metric(), index.dim(),
                           total_rows);

    ShardedConfigRecord config{};
    config.next_global_id = state.next_global_id;
    config.num_shards = state.shards.size();
    writer.AddSection(SectionTag::kConfig, 0, &config, sizeof(config));

    std::vector<ShardManifestEntry> manifest;
    manifest.reserve(state.shards.size());
    for (const ShardedIndex::Shard& shard : state.shards) {
      ShardManifestEntry entry{};
      if (shard.index != nullptr) {
        entry.rows = shard.index->size();
        entry.id_entries = shard.local_to_global.size();
        entry.index_type = static_cast<uint32_t>(shard.index->type());
      }
      manifest.push_back(entry);
    }
    writer.AddSection(SectionTag::kManifest, 0, manifest.data(),
                      manifest.size() * sizeof(ShardManifestEntry));

    for (size_t j = 0; j < state.shards.size(); ++j) {
      const ShardedIndex::Shard& shard = state.shards[j];
      if (shard.index == nullptr) continue;  // absent: manifest row only
      StatusOr<std::string> blob = SerializeIndex(*shard.index);
      if (!blob.ok()) return blob.status();
      writer.AddOwnedSection(SectionTag::kSegmentBlob,
                             static_cast<uint32_t>(j),
                             std::move(blob).value());
      writer.AddSection(SectionTag::kIdMap, static_cast<uint32_t>(j),
                        shard.local_to_global.data(),
                        shard.local_to_global.size() * sizeof(uint32_t));
    }
    return writer.WriteTo(out, name);
  });
}

// ---------------------------------------------------------------------------
// Load side: bundle (owned storage) + typed section helpers.
// ---------------------------------------------------------------------------

/// Everything a loaded index needs to stay alive: the container (holding the
/// mmap in zero-copy mode), heap copies of payloads in streaming mode, and
/// the ownership of scorers the concrete index only points at.
struct IndexBundle {
  std::unique_ptr<ContainerReader> container;
  Matrix base_owned;
  MatrixView base;
  std::vector<uint8_t> codes_owned;
  const uint8_t* codes = nullptr;
  std::vector<uint8_t> packed_owned;
  const uint8_t* packed = nullptr;  ///< fast-scan blocks (kPqPackedCodes)
  std::unique_ptr<BinScorer> scorer;
  std::unique_ptr<Index> index;
};

/// The self-contained object OpenIndex returns: delegates every query to the
/// concrete index while owning all backing storage.
class LoadedIndex : public Index {
 public:
  explicit LoadedIndex(std::unique_ptr<IndexBundle> bundle)
      : bundle_(std::move(bundle)) {}

  using Index::SearchBatch;
  BatchSearchResult SearchBatch(const SearchRequest& request) const override {
    return bundle_->index->SearchBatch(request);
  }
  RadiusResult RadiusSearchBatch(const RadiusRequest& request) const override {
    return bundle_->index->RadiusSearchBatch(request);
  }
  std::vector<uint32_t> Search(const float* query, size_t k,
                               size_t budget) const override {
    return bundle_->index->Search(query, k, budget);
  }
  size_t dim() const override { return bundle_->index->dim(); }
  size_t size() const override { return bundle_->index->size(); }
  Metric metric() const override { return bundle_->index->metric(); }
  IndexType type() const override { return bundle_->index->type(); }
  MatrixView base_view() const override { return bundle_->index->base_view(); }
  size_t EstimateCandidates(size_t budget) const override {
    return bundle_->index->EstimateCandidates(budget);
  }
  const Index& underlying() const override { return *bundle_->index; }

 private:
  std::unique_ptr<IndexBundle> bundle_;
};

StatusOr<std::unique_ptr<Index>> FinishBundle(
    std::unique_ptr<IndexBundle> bundle) {
  return std::unique_ptr<Index>(new LoadedIndex(std::move(bundle)));
}

/// Multiplies size components with overflow detection.
bool ByteCount(uint64_t count, uint64_t elem_size, uint64_t* out) {
  if (elem_size != 0 && count > UINT64_MAX / elem_size) return false;
  *out = count * elem_size;
  return true;
}

/// Reads a float-matrix section into owned heap memory (small payloads:
/// centroids, codebooks, weights).
StatusOr<Matrix> ReadMatrixSection(ContainerReader* container, SectionTag tag,
                                   uint32_t ordinal, uint64_t rows,
                                   uint64_t cols) {
  uint64_t bytes = 0;
  if (cols == 0 || rows > UINT64_MAX / cols ||
      !ByteCount(rows * cols, sizeof(float), &bytes)) {
    return Status::InvalidArgument("implausible matrix shape in " +
                                   container->path());
  }
  // Check the stored size BEFORE allocating: a corrupt shape field (e.g. a
  // patched nlist) must fail with a Status, not a bad_alloc. Sizes in the
  // table are bounded by file_size, so a matching size bounds the allocation.
  StatusOr<SectionEntry> entry = container->Find(tag, ordinal);
  if (!entry.ok()) return entry.status();
  if (entry.value().size != bytes) {
    return Status::InvalidArgument("matrix section size mismatch in " +
                                   container->path());
  }
  std::vector<float> data(rows * cols);
  Status status = container->ReadSection(tag, ordinal, data.data(), bytes);
  if (!status.ok()) return status;
  return Matrix(rows, cols, std::move(data));
}

StatusOr<std::vector<uint32_t>> ReadU32Section(ContainerReader* container,
                                               SectionTag tag,
                                               uint32_t ordinal,
                                               uint64_t count) {
  std::vector<uint32_t> values(count);
  Status status = container->ReadSection(tag, ordinal, values.data(),
                                         count * sizeof(uint32_t));
  if (!status.ok()) return status;
  return values;
}

/// Materializes the base-vector payload: a zero-copy view in mmap mode, an
/// owned heap Matrix in streaming mode. Fills bundle->base either way.
Status LoadBase(IndexBundle* bundle) {
  ContainerReader* container = bundle->container.get();
  const uint64_t rows = container->header().num_points;
  const uint64_t cols = container->header().dim;
  if (rows == 0 || cols == 0 || cols > (1ULL << 24) || rows > (1ULL << 40)) {
    return Status::InvalidArgument("implausible index shape in " +
                                   container->path());
  }
  uint64_t bytes = 0;
  if (rows > UINT64_MAX / cols ||
      !ByteCount(rows * cols, sizeof(float), &bytes)) {
    return Status::InvalidArgument("implausible index shape in " +
                                   container->path());
  }
  StatusOr<SectionEntry> entry = container->Find(SectionTag::kBaseVectors, 0);
  if (!entry.ok()) return entry.status();
  if (entry.value().size != bytes) {
    return Status::InvalidArgument("base-vector section size mismatch in " +
                                   container->path());
  }
  if (container->zero_copy()) {
    StatusOr<const uint8_t*> data =
        container->SectionData(SectionTag::kBaseVectors, 0);
    if (!data.ok()) return data.status();
    bundle->base = MatrixView(reinterpret_cast<const float*>(data.value()),
                              rows, cols);
    return Status::Ok();
  }
  StatusOr<Matrix> owned =
      ReadMatrixSection(container, SectionTag::kBaseVectors, 0, rows, cols);
  if (!owned.ok()) return owned.status();
  bundle->base_owned = std::move(owned).value();
  bundle->base = MatrixView(bundle->base_owned);
  return Status::Ok();
}

/// Loads residency assignments and checks every bin id against `num_bins`
/// (the index constructors USP_CHECK this; a corrupt file must fail with a
/// Status instead).
StatusOr<std::vector<uint32_t>> LoadAssignments(ContainerReader* container,
                                                uint32_t ordinal,
                                                uint64_t num_points,
                                                uint64_t num_bins) {
  StatusOr<std::vector<uint32_t>> assignments = ReadU32Section(
      container, SectionTag::kAssignments, ordinal, num_points);
  if (!assignments.ok()) return assignments.status();
  for (uint32_t bin : assignments.value()) {
    if (bin >= num_bins) {
      return Status::InvalidArgument("assignment bin out of range in " +
                                     container->path());
    }
  }
  return assignments;
}

/// Rebuilds a serialized scorer. `dim` is the expected input dimensionality.
StatusOr<std::unique_ptr<BinScorer>> LoadScorer(ContainerReader* container,
                                                uint32_t kind,
                                                uint32_t scorer_metric,
                                                uint32_t ordinal,
                                                uint64_t dim) {
  if (kind == kScorerKMeans) {
    Status status = CheckMetricValue(scorer_metric, container->path());
    if (!status.ok()) return status;
    StatusOr<SectionEntry> entry =
        container->Find(SectionTag::kCentroids, ordinal);
    if (!entry.ok()) return entry.status();
    const uint64_t row_bytes = dim * sizeof(float);
    if (row_bytes == 0 || entry.value().size == 0 ||
        entry.value().size % row_bytes != 0) {
      return Status::InvalidArgument("centroid section size mismatch in " +
                                     container->path());
    }
    const uint64_t nlist = entry.value().size / row_bytes;
    StatusOr<Matrix> centroids = ReadMatrixSection(
        container, SectionTag::kCentroids, ordinal, nlist, dim);
    if (!centroids.ok()) return centroids.status();
    return std::unique_ptr<BinScorer>(
        new KMeansPartitioner(KMeansPartitioner::FromTrainedCentroids(
            std::move(centroids).value(),
            static_cast<Metric>(scorer_metric))));
  }
  if (kind == kScorerUsp) {
    StatusOr<std::vector<uint8_t>> blob =
        container->ReadSectionBytes(SectionTag::kUspModel, ordinal);
    if (!blob.ok()) return blob.status();
    MemReader reader(blob.value().data(), blob.value().size());
    StatusOr<UspPartitioner> model =
        UspPartitioner::LoadFrom(&reader, container->path());
    if (!model.ok()) return model.status();
    return std::unique_ptr<BinScorer>(
        new UspPartitioner(std::move(model).value()));
  }
  return Status::InvalidArgument("unknown scorer kind " +
                                 std::to_string(kind) + " in " +
                                 container->path());
}

/// Loads PQ metadata + codebooks into a rehydrated quantizer, and the code
/// bytes into bundle->codes (zero-copy when mapped).
StatusOr<ProductQuantizer> LoadPq(IndexBundle* bundle) {
  ContainerReader* container = bundle->container.get();
  const std::string& path = container->path();
  PqMetaRecord meta{};
  Status status =
      container->ReadSection(SectionTag::kPqMeta, 0, &meta, sizeof(meta));
  if (!status.ok()) return status;
  const uint64_t dim = container->header().dim;
  const uint64_t n = container->header().num_points;
  if (meta.dims != dim || meta.num_subspaces == 0 || meta.num_subspaces > dim ||
      meta.codebook_size == 0 || meta.codebook_size > 256 ||
      meta.codebook_rows == 0 || meta.codebook_rows > meta.codebook_size) {
    return Status::InvalidArgument("corrupt PQ metadata in " + path);
  }

  std::vector<uint64_t> offsets(meta.num_subspaces + 1);
  status = container->ReadSection(SectionTag::kPqOffsets, 0, offsets.data(),
                                  offsets.size() * sizeof(uint64_t));
  if (!status.ok()) return status;
  if (offsets.front() != 0 || offsets.back() != dim) {
    return Status::InvalidArgument("corrupt PQ subspace offsets in " + path);
  }
  for (size_t s = 0; s + 1 < offsets.size(); ++s) {
    if (offsets[s] >= offsets[s + 1]) {
      return Status::InvalidArgument("corrupt PQ subspace offsets in " + path);
    }
  }

  StatusOr<Matrix> concat =
      ReadMatrixSection(container, SectionTag::kPqCodebooks, 0,
                        meta.codebook_rows, dim);
  if (!concat.ok()) return concat.status();
  // The concatenated payload stores subspace blocks back to back (each
  // codebook_rows x subspace_dim), not an interleaved (rows x dim) matrix, so
  // split by walking the flat buffer.
  std::vector<Matrix> codebooks;
  codebooks.reserve(meta.num_subspaces);
  const float* cursor = concat.value().data();
  for (size_t s = 0; s < meta.num_subspaces; ++s) {
    const size_t sd = offsets[s + 1] - offsets[s];
    const size_t count = meta.codebook_rows * sd;
    codebooks.push_back(Matrix(meta.codebook_rows, sd,
                               std::vector<float>(cursor, cursor + count)));
    cursor += count;
  }

  PqConfig config;
  config.num_subspaces = static_cast<size_t>(meta.num_subspaces);
  config.codebook_size = static_cast<size_t>(meta.codebook_size);
  config.kmeans_iterations = static_cast<size_t>(meta.kmeans_iterations);
  config.anisotropic_eta = meta.anisotropic_eta;
  config.seed = meta.seed;

  // Code bytes: (n x M) uint8 — the other zero-copy payload.
  uint64_t code_bytes = 0;
  if (!ByteCount(n, meta.num_subspaces, &code_bytes)) {
    return Status::InvalidArgument("implausible code shape in " + path);
  }
  StatusOr<SectionEntry> codes_entry = container->Find(SectionTag::kPqCodes, 0);
  if (!codes_entry.ok()) return codes_entry.status();
  if (codes_entry.value().size != code_bytes) {
    return Status::InvalidArgument("PQ code section size mismatch in " + path);
  }
  if (container->zero_copy()) {
    StatusOr<const uint8_t*> data =
        container->SectionData(SectionTag::kPqCodes, 0);
    if (!data.ok()) return data.status();
    bundle->codes = data.value();
  } else {
    StatusOr<std::vector<uint8_t>> owned =
        container->ReadSectionBytes(SectionTag::kPqCodes, 0);
    if (!owned.ok()) return owned.status();
    bundle->codes_owned = std::move(owned).value();
    bundle->codes = bundle->codes_owned.data();
  }

  return ProductQuantizer(config, static_cast<size_t>(dim),
                          std::vector<size_t>(offsets.begin(), offsets.end()),
                          std::move(codebooks));
}

/// Loads the optional kPqPackedCodes section into bundle->packed (zero-copy
/// when mapped). The stored size must equal the bucket-grouped block layout
/// the index derives from `assignments` (quant/scann_index.cc SetUpFastScan);
/// a missing section leaves bundle->packed null and the blocks are rebuilt
/// from kPqCodes. Sections saved for a wide codebook are impossible (the
/// saver only packs 4-bit codes), so codebook_size > 16 skips the read.
Status LoadPackedCodes(IndexBundle* bundle, const ProductQuantizer& pq,
                       const std::vector<uint32_t>& assignments,
                       uint64_t num_bins) {
  ContainerReader* c = bundle->container.get();
  if (pq.codebook_size() > 16 || !c->Has(SectionTag::kPqPackedCodes, 0)) {
    return Status::Ok();
  }
  const uint64_t n = c->header().num_points;
  uint64_t blocks = 0;
  if (assignments.empty()) {
    blocks = (n + kPq4BlockSize - 1) / kPq4BlockSize;
  } else {
    std::vector<uint64_t> counts(num_bins, 0);
    for (uint32_t bin : assignments) ++counts[bin];
    for (uint64_t count : counts) {
      blocks += (count + kPq4BlockSize - 1) / kPq4BlockSize;
    }
  }
  uint64_t bytes = 0;
  if (!ByteCount(blocks, 16 * pq.num_subspaces(), &bytes)) {
    return Status::InvalidArgument("implausible packed-code shape in " +
                                   c->path());
  }
  StatusOr<SectionEntry> entry = c->Find(SectionTag::kPqPackedCodes, 0);
  if (!entry.ok()) return entry.status();
  if (entry.value().size != bytes) {
    return Status::InvalidArgument("packed-code section size mismatch in " +
                                   c->path());
  }
  if (c->zero_copy()) {
    StatusOr<const uint8_t*> data =
        c->SectionData(SectionTag::kPqPackedCodes, 0);
    if (!data.ok()) return data.status();
    bundle->packed = data.value();
    return Status::Ok();
  }
  StatusOr<std::vector<uint8_t>> owned =
      c->ReadSectionBytes(SectionTag::kPqPackedCodes, 0);
  if (!owned.ok()) return owned.status();
  bundle->packed_owned = std::move(owned).value();
  bundle->packed = bundle->packed_owned.data();
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Per-type loaders (registry targets).
// ---------------------------------------------------------------------------

StatusOr<std::unique_ptr<Index>> LoadPartition(
    std::unique_ptr<ContainerReader> container) {
  auto bundle = std::make_unique<IndexBundle>();
  bundle->container = std::move(container);
  ContainerReader* c = bundle->container.get();
  Status status = CheckMetricValue(c->header().metric, c->path());
  if (!status.ok()) return status;
  status = LoadBase(bundle.get());
  if (!status.ok()) return status;

  PartitionConfigRecord config{};
  status = c->ReadSection(SectionTag::kConfig, 0, &config, sizeof(config));
  if (!status.ok()) return status;
  StatusOr<std::unique_ptr<BinScorer>> scorer =
      LoadScorer(c, config.scorer_kind, config.scorer_metric, 0,
                 c->header().dim);
  if (!scorer.ok()) return scorer.status();
  bundle->scorer = std::move(scorer).value();

  StatusOr<std::vector<uint32_t>> assignments = LoadAssignments(
      c, 0, c->header().num_points, bundle->scorer->num_bins());
  if (!assignments.ok()) return assignments.status();

  bundle->index = std::make_unique<PartitionIndex>(
      bundle->base, bundle->scorer.get(), std::move(assignments).value(),
      static_cast<Metric>(c->header().metric));
  return FinishBundle(std::move(bundle));
}

StatusOr<std::unique_ptr<Index>> LoadIvfFlat(
    std::unique_ptr<ContainerReader> container) {
  auto bundle = std::make_unique<IndexBundle>();
  bundle->container = std::move(container);
  ContainerReader* c = bundle->container.get();
  Status status = CheckMetricValue(c->header().metric, c->path());
  if (!status.ok()) return status;
  status = LoadBase(bundle.get());
  if (!status.ok()) return status;

  IvfFlatConfigRecord record{};
  status = c->ReadSection(SectionTag::kConfig, 0, &record, sizeof(record));
  if (!status.ok()) return status;
  if (record.nlist == 0) {
    return Status::InvalidArgument("corrupt IVF config in " + c->path());
  }
  StatusOr<Matrix> centroids = ReadMatrixSection(
      c, SectionTag::kCentroids, 0, record.nlist, c->header().dim);
  if (!centroids.ok()) return centroids.status();
  StatusOr<std::vector<uint32_t>> assignments =
      LoadAssignments(c, 0, c->header().num_points, record.nlist);
  if (!assignments.ok()) return assignments.status();

  IvfConfig config;
  config.nlist = static_cast<size_t>(record.nlist);
  config.kmeans_iterations = static_cast<size_t>(record.kmeans_iterations);
  config.seed = record.seed;
  config.metric = static_cast<Metric>(c->header().metric);
  bundle->index = std::make_unique<IvfFlatIndex>(
      bundle->base, config, std::move(centroids).value(),
      std::move(assignments).value());
  return FinishBundle(std::move(bundle));
}

StatusOr<std::unique_ptr<Index>> LoadIvfPq(
    std::unique_ptr<ContainerReader> container) {
  auto bundle = std::make_unique<IndexBundle>();
  bundle->container = std::move(container);
  ContainerReader* c = bundle->container.get();
  Status status = CheckMetricValue(c->header().metric, c->path());
  if (!status.ok()) return status;
  status = LoadBase(bundle.get());
  if (!status.ok()) return status;

  IvfPqConfigRecord record{};
  status = c->ReadSection(SectionTag::kConfig, 0, &record, sizeof(record));
  if (!status.ok()) return status;
  StatusOr<ProductQuantizer> pq = LoadPq(bundle.get());
  if (!pq.ok()) return pq.status();

  IvfConfig config;
  config.nlist = static_cast<size_t>(record.nlist);
  config.kmeans_iterations = static_cast<size_t>(record.kmeans_iterations);
  config.seed = record.seed;
  config.metric = static_cast<Metric>(c->header().metric);
  config.rerank_budget = static_cast<size_t>(record.rerank_budget);
  config.pq = pq.value().config();
  status = IvfPqIndex::ValidateConfig(config);
  if (!status.ok()) return status;

  StatusOr<Matrix> centroids = ReadMatrixSection(
      c, SectionTag::kCentroids, 0, record.nlist, c->header().dim);
  if (!centroids.ok()) return centroids.status();
  StatusOr<std::vector<uint32_t>> assignments =
      LoadAssignments(c, 0, c->header().num_points, record.nlist);
  if (!assignments.ok()) return assignments.status();
  status = LoadPackedCodes(bundle.get(), pq.value(), assignments.value(),
                           record.nlist);
  if (!status.ok()) return status;

  bundle->index = std::make_unique<IvfPqIndex>(
      bundle->base, config, std::move(centroids).value(),
      std::move(pq).value(), bundle->codes, assignments.value(),
      bundle->packed);
  return FinishBundle(std::move(bundle));
}

StatusOr<std::unique_ptr<Index>> LoadScann(
    std::unique_ptr<ContainerReader> container) {
  auto bundle = std::make_unique<IndexBundle>();
  bundle->container = std::move(container);
  ContainerReader* c = bundle->container.get();
  Status status = CheckMetricValue(c->header().metric, c->path());
  if (!status.ok()) return status;
  status = LoadBase(bundle.get());
  if (!status.ok()) return status;

  ScannConfigRecord record{};
  status = c->ReadSection(SectionTag::kConfig, 0, &record, sizeof(record));
  if (!status.ok()) return status;
  StatusOr<ProductQuantizer> pq = LoadPq(bundle.get());
  if (!pq.ok()) return pq.status();

  std::vector<uint32_t> assignments;
  if (record.scorer_kind != kScorerNone) {
    StatusOr<std::unique_ptr<BinScorer>> scorer =
        LoadScorer(c, record.scorer_kind, record.scorer_metric, 0,
                   c->header().dim);
    if (!scorer.ok()) return scorer.status();
    bundle->scorer = std::move(scorer).value();
    StatusOr<std::vector<uint32_t>> loaded = LoadAssignments(
        c, 0, c->header().num_points, bundle->scorer->num_bins());
    if (!loaded.ok()) return loaded.status();
    assignments = std::move(loaded).value();
  }
  status = LoadPackedCodes(
      bundle.get(), pq.value(), assignments,
      bundle->scorer != nullptr ? bundle->scorer->num_bins() : 0);
  if (!status.ok()) return status;

  ScannIndexConfig config;
  config.rerank_budget = static_cast<size_t>(record.rerank_budget);
  bundle->index = std::make_unique<ScannIndex>(
      bundle->base, bundle->scorer.get(), std::move(pq).value(), config,
      bundle->codes, assignments, static_cast<Metric>(c->header().metric),
      bundle->packed);
  return FinishBundle(std::move(bundle));
}

StatusOr<std::unique_ptr<Index>> LoadSq8(
    std::unique_ptr<ContainerReader> container) {
  auto bundle = std::make_unique<IndexBundle>();
  bundle->container = std::move(container);
  ContainerReader* c = bundle->container.get();
  const std::string& path = c->path();
  Status status = CheckMetricValue(c->header().metric, path);
  if (!status.ok()) return status;
  status = LoadBase(bundle.get());
  if (!status.ok()) return status;
  const uint64_t n = c->header().num_points;
  const uint64_t dim = c->header().dim;

  Sq8ConfigRecord record{};
  status = c->ReadSection(SectionTag::kConfig, 0, &record, sizeof(record));
  if (!status.ok()) return status;

  std::vector<float> params(2 * dim);
  status = c->ReadSection(SectionTag::kSq8Params, 0, params.data(),
                          params.size() * sizeof(float));
  if (!status.ok()) return status;
  std::vector<float> mins(params.begin(), params.begin() + dim);
  std::vector<float> scales(params.begin() + dim, params.end());

  // The (n x dim) code matrix is the zero-copy payload.
  uint64_t code_bytes = 0;
  if (!ByteCount(n, dim, &code_bytes)) {
    return Status::InvalidArgument("implausible code shape in " + path);
  }
  StatusOr<SectionEntry> entry = c->Find(SectionTag::kSq8Codes, 0);
  if (!entry.ok()) return entry.status();
  if (entry.value().size != code_bytes) {
    return Status::InvalidArgument("SQ8 code section size mismatch in " +
                                   path);
  }
  if (c->zero_copy()) {
    StatusOr<const uint8_t*> data = c->SectionData(SectionTag::kSq8Codes, 0);
    if (!data.ok()) return data.status();
    bundle->codes = data.value();
  } else {
    StatusOr<std::vector<uint8_t>> owned =
        c->ReadSectionBytes(SectionTag::kSq8Codes, 0);
    if (!owned.ok()) return owned.status();
    bundle->codes_owned = std::move(owned).value();
    bundle->codes = bundle->codes_owned.data();
  }

  Sq8IndexConfig config;
  config.metric = static_cast<Metric>(c->header().metric);
  config.rerank_budget = static_cast<size_t>(record.rerank_budget);
  bundle->index = std::make_unique<Sq8Index>(bundle->base, config,
                                             std::move(mins),
                                             std::move(scales), bundle->codes);
  return FinishBundle(std::move(bundle));
}

StatusOr<std::unique_ptr<Index>> LoadHnsw(
    std::unique_ptr<ContainerReader> container) {
  auto bundle = std::make_unique<IndexBundle>();
  bundle->container = std::move(container);
  ContainerReader* c = bundle->container.get();
  const std::string& path = c->path();
  Status status = LoadBase(bundle.get());
  if (!status.ok()) return status;
  const uint64_t n = c->header().num_points;

  HnswConfigRecord record{};
  status = c->ReadSection(SectionTag::kConfig, 0, &record, sizeof(record));
  if (!status.ok()) return status;
  if (record.max_neighbors < 2 || record.max_level < 0 ||
      record.max_level > 63 || record.entry_point >= n) {
    return Status::InvalidArgument("corrupt HNSW config in " + path);
  }

  std::vector<int32_t> levels(n);
  status = c->ReadSection(SectionTag::kHnswLevels, 0, levels.data(),
                          n * sizeof(int32_t));
  if (!status.ok()) return status;
  int32_t observed_max = -1;
  for (int32_t level : levels) {
    if (level < 0 || level > record.max_level) {
      return Status::InvalidArgument("corrupt HNSW levels in " + path);
    }
    observed_max = std::max(observed_max, level);
  }
  if (observed_max != record.max_level ||
      levels[record.entry_point] != record.max_level) {
    return Status::InvalidArgument("corrupt HNSW levels in " + path);
  }

  StatusOr<std::vector<uint8_t>> link_bytes =
      c->ReadSectionBytes(SectionTag::kHnswLinks, 0);
  if (!link_bytes.ok()) return link_bytes.status();
  MemReader reader(link_bytes.value().data(), link_bytes.value().size());
  std::vector<std::vector<std::vector<uint32_t>>> links(n);
  for (uint64_t i = 0; i < n; ++i) {
    links[i].resize(levels[i] + 1);
    for (int32_t l = 0; l <= levels[i]; ++l) {
      uint32_t count = 0;
      if (!reader.ReadPod(&count) || count >= n) {
        return Status::InvalidArgument("corrupt HNSW links in " + path);
      }
      std::vector<uint32_t>& ids = links[i][l];
      ids.resize(count);
      if (count > 0 && !reader.Read(ids.data(), count * sizeof(uint32_t))) {
        return Status::InvalidArgument("corrupt HNSW links in " + path);
      }
      for (uint32_t id : ids) {
        // Every link target must exist on this layer, otherwise search would
        // index past a node's level vector.
        if (id >= n || levels[id] < l) {
          return Status::InvalidArgument("corrupt HNSW links in " + path);
        }
      }
    }
  }
  if (reader.remaining() != 0) {
    return Status::InvalidArgument("trailing HNSW link bytes in " + path);
  }

  HnswConfig config;
  config.max_neighbors = static_cast<size_t>(record.max_neighbors);
  config.ef_construction = static_cast<size_t>(record.ef_construction);
  config.seed = record.seed;
  bundle->index = std::make_unique<HnswIndex>(
      config, bundle->base, std::move(links),
      std::vector<int>(levels.begin(), levels.end()), record.max_level,
      record.entry_point);
  return FinishBundle(std::move(bundle));
}

StatusOr<std::unique_ptr<Index>> LoadEnsemble(
    std::unique_ptr<ContainerReader> container) {
  auto bundle = std::make_unique<IndexBundle>();
  bundle->container = std::move(container);
  ContainerReader* c = bundle->container.get();
  const std::string& path = c->path();
  Status status = LoadBase(bundle.get());
  if (!status.ok()) return status;
  const uint64_t n = c->header().num_points;

  EnsembleConfigRecord record{};
  status = c->ReadSection(SectionTag::kConfig, 0, &record, sizeof(record));
  if (!status.ok()) return status;
  if (record.num_models == 0 || record.num_models > 1024 ||
      record.combine > 1) {
    return Status::InvalidArgument("corrupt ensemble config in " + path);
  }

  std::vector<std::unique_ptr<UspPartitioner>> models;
  std::vector<std::unique_ptr<PartitionIndex>> indexes;
  for (uint32_t j = 0; j < record.num_models; ++j) {
    StatusOr<std::unique_ptr<BinScorer>> scorer =
        LoadScorer(c, kScorerUsp, 0, j, c->header().dim);
    if (!scorer.ok()) return scorer.status();
    auto model = std::unique_ptr<UspPartitioner>(
        static_cast<UspPartitioner*>(scorer.value().release()));
    StatusOr<std::vector<uint32_t>> assignments =
        LoadAssignments(c, j, n, model->num_bins());
    if (!assignments.ok()) return assignments.status();
    indexes.push_back(std::make_unique<PartitionIndex>(
        bundle->base, model.get(), std::move(assignments).value(),
        Metric::kSquaredL2));
    models.push_back(std::move(model));
  }

  std::vector<float> weights(n);
  status = c->ReadSection(SectionTag::kWeights, 0, weights.data(),
                          n * sizeof(float));
  if (!status.ok()) return status;

  UspEnsembleConfig config;
  config.model = UnpackTrainConfig(record.model);
  config.num_models = static_cast<size_t>(record.num_models);
  config.weight_floor = record.weight_floor;
  config.combine = static_cast<EnsembleCombine>(record.combine);
  bundle->index = std::make_unique<UspEnsemble>(
      config, bundle->base, std::move(models), std::move(indexes),
      std::move(weights));
  return FinishBundle(std::move(bundle));
}

StatusOr<std::unique_ptr<Index>> LoadDynamic(
    std::unique_ptr<ContainerReader> container) {
  auto bundle = std::make_unique<IndexBundle>();
  bundle->container = std::move(container);
  ContainerReader* c = bundle->container.get();
  const std::string& path = c->path();
  Status status = CheckMetricValue(c->header().metric, path);
  if (!status.ok()) return status;
  const Metric metric = static_cast<Metric>(c->header().metric);
  const uint64_t dim = c->header().dim;
  if (dim == 0 || dim > (1ULL << 24)) {
    return Status::InvalidArgument("implausible index shape in " + path);
  }

  DynamicConfigRecord record{};
  status = c->ReadSection(SectionTag::kConfig, 0, &record, sizeof(record));
  if (!status.ok()) return status;
  if (record.num_sealed > 4096 || record.next_global_id > 0xFFFFFFFFull ||
      record.write_rows > record.next_global_id ||
      record.tombstone_count > record.next_global_id) {
    return Status::InvalidArgument("corrupt dynamic config in " + path);
  }

  std::vector<DynamicSegmentEntry> manifest(record.num_sealed);
  status = c->ReadSection(SectionTag::kManifest, 0, manifest.data(),
                          record.num_sealed * sizeof(DynamicSegmentEntry));
  if (!status.ok()) return status;

  // Bound the id space by the tombstone bitmap the file actually carries
  // before allocating anything sized by next_global_id: section sizes are
  // bounded by file_size at open, so a corrupt record cannot force huge
  // allocations (the failure contract is Status, never bad_alloc).
  const uint64_t tombstone_words = (record.next_global_id + 63) / 64;
  StatusOr<SectionEntry> tombstone_entry =
      c->Find(SectionTag::kTombstones, 0);
  if (!tombstone_entry.ok()) return tombstone_entry.status();
  if (tombstone_entry.value().size != tombstone_words * sizeof(uint64_t)) {
    return Status::InvalidArgument("tombstone bitmap size mismatch in " +
                                   path);
  }

  // `seen` tracks which global ids physically exist (for uniqueness and for
  // validating the tombstone bitmap against real rows).
  std::vector<bool> seen(record.next_global_id, false);
  auto claim_ids = [&](const std::vector<uint32_t>& ids) -> bool {
    for (uint32_t id : ids) {
      if (id >= record.next_global_id || seen[id]) return false;
      seen[id] = true;
    }
    return true;
  };

  std::vector<std::unique_ptr<DynamicIndex::SealedSegment>> sealed;
  sealed.reserve(record.num_sealed);
  uint64_t total_rows = record.write_rows;
  for (uint32_t j = 0; j < record.num_sealed; ++j) {
    StatusOr<std::vector<uint8_t>> blob =
        c->ReadSectionBytes(SectionTag::kSegmentBlob, j);
    if (!blob.ok()) return blob.status();
    StatusOr<std::unique_ptr<ContainerReader>> sub = ContainerReader::OpenMem(
        std::move(blob).value(),
        path + " [segment " + std::to_string(j) + "]");
    if (!sub.ok()) return sub.status();
    if (sub.value()->header().index_type != manifest[j].index_type ||
        manifest[j].index_type ==
            static_cast<uint32_t>(IndexType::kDynamic)) {
      return Status::InvalidArgument("corrupt dynamic manifest in " + path);
    }
    StatusOr<std::unique_ptr<Index>> segment_index =
        OpenIndexFromContainer(std::move(sub).value());
    if (!segment_index.ok()) return segment_index.status();
    auto segment = std::make_unique<DynamicIndex::SealedSegment>();
    segment->index = std::move(segment_index).value();
    if (segment->index->dim() != dim || segment->index->metric() != metric ||
        segment->index->size() != manifest[j].rows) {
      return Status::InvalidArgument("corrupt dynamic manifest in " + path);
    }
    StatusOr<std::vector<uint32_t>> ids =
        ReadU32Section(c, SectionTag::kIdMap, j, manifest[j].rows);
    if (!ids.ok()) return ids.status();
    segment->global_ids = std::move(ids).value();
    if (!claim_ids(segment->global_ids)) {
      return Status::InvalidArgument("corrupt dynamic id map in " + path);
    }
    total_rows += manifest[j].rows;
    sealed.push_back(std::move(segment));
  }
  if (c->header().num_points != total_rows) {
    return Status::InvalidArgument("corrupt dynamic manifest in " + path);
  }

  StatusOr<Matrix> write_rows = ReadMatrixSection(
      c, SectionTag::kBaseVectors, 0, record.write_rows, dim);
  if (!write_rows.ok()) return write_rows.status();
  StatusOr<std::vector<uint32_t>> write_ids =
      ReadU32Section(c, SectionTag::kIdMap,
                     static_cast<uint32_t>(record.num_sealed),
                     record.write_rows);
  if (!write_ids.ok()) return write_ids.status();
  if (!claim_ids(write_ids.value())) {
    return Status::InvalidArgument("corrupt dynamic id map in " + path);
  }

  std::vector<uint64_t> bitmap(tombstone_words);
  status = c->ReadSection(SectionTag::kTombstones, 0, bitmap.data(),
                          tombstone_words * sizeof(uint64_t));
  if (!status.ok()) return status;
  std::vector<uint32_t> tombstones;
  for (uint64_t id = 0; id < record.next_global_id; ++id) {
    if ((bitmap[id / 64] >> (id % 64)) & 1) {
      if (!seen[id]) {
        return Status::InvalidArgument("tombstone for unknown id in " + path);
      }
      tombstones.push_back(static_cast<uint32_t>(id));
    }
  }
  if (tombstones.size() != record.tombstone_count) {
    return Status::InvalidArgument("tombstone count mismatch in " + path);
  }

  DynamicIndexConfig config;
  config.metric = metric;
  config.seal_threshold = static_cast<size_t>(record.seal_threshold);
  config.max_sealed_segments =
      static_cast<size_t>(record.max_sealed_segments);
  bundle->index = std::make_unique<DynamicIndex>(
      static_cast<size_t>(dim), std::move(config), std::move(sealed),
      std::move(write_rows).value(), std::move(write_ids).value(),
      std::move(tombstones), static_cast<uint32_t>(record.next_global_id));
  return FinishBundle(std::move(bundle));
}

StatusOr<std::unique_ptr<Index>> LoadSharded(
    std::unique_ptr<ContainerReader> container) {
  auto bundle = std::make_unique<IndexBundle>();
  bundle->container = std::move(container);
  ContainerReader* c = bundle->container.get();
  const std::string& path = c->path();
  Status status = CheckMetricValue(c->header().metric, path);
  if (!status.ok()) return status;
  const Metric metric = static_cast<Metric>(c->header().metric);
  const uint64_t dim = c->header().dim;
  if (dim == 0 || dim > (1ULL << 24)) {
    return Status::InvalidArgument("implausible index shape in " + path);
  }

  ShardedConfigRecord record{};
  status = c->ReadSection(SectionTag::kConfig, 0, &record, sizeof(record));
  if (!status.ok()) return status;
  if (record.num_shards == 0 || record.num_shards > 4096 ||
      record.next_global_id > 0xFFFFFFFFull) {
    return Status::InvalidArgument("corrupt sharded config in " + path);
  }

  std::vector<ShardManifestEntry> manifest(record.num_shards);
  status = c->ReadSection(SectionTag::kManifest, 0, manifest.data(),
                          record.num_shards * sizeof(ShardManifestEntry));
  if (!status.ok()) return status;

  // Uniqueness of global ids across shards; every validation below fails
  // with a Status (never an allocation or a crash) before the rehydrate
  // constructor's own invariant checks run.
  std::vector<bool> seen(record.next_global_id, false);
  std::vector<ShardedIndex::Shard> shards(record.num_shards);
  uint64_t total_rows = 0;
  for (uint32_t j = 0; j < record.num_shards; ++j) {
    ShardedIndex::Shard& shard = shards[j];
    if (manifest[j].index_type == 0) {
      if (manifest[j].rows != 0 || manifest[j].id_entries != 0) {
        return Status::InvalidArgument("corrupt sharded manifest in " + path);
      }
      continue;  // absent shard
    }
    if (manifest[j].id_entries < manifest[j].rows ||
        manifest[j].id_entries > record.next_global_id) {
      return Status::InvalidArgument("corrupt sharded manifest in " + path);
    }
    StatusOr<std::vector<uint8_t>> blob =
        c->ReadSectionBytes(SectionTag::kSegmentBlob, j);
    if (!blob.ok()) return blob.status();
    StatusOr<std::unique_ptr<ContainerReader>> sub = ContainerReader::OpenMem(
        std::move(blob).value(), path + " [shard " + std::to_string(j) + "]");
    if (!sub.ok()) return sub.status();
    // Shards may be any type including kDynamic (a mutable sharded index
    // round-trips as mutable); only another router is rejected — nesting
    // would break the one-level embedding.
    if (sub.value()->header().index_type != manifest[j].index_type ||
        manifest[j].index_type ==
            static_cast<uint32_t>(IndexType::kSharded)) {
      return Status::InvalidArgument("corrupt sharded manifest in " + path);
    }
    StatusOr<std::unique_ptr<Index>> shard_index =
        OpenIndexFromContainer(std::move(sub).value());
    if (!shard_index.ok()) return shard_index.status();
    shard.index = std::move(shard_index).value();
    if (shard.index->dim() != dim || shard.index->metric() != metric ||
        shard.index->size() != manifest[j].rows) {
      return Status::InvalidArgument("corrupt sharded manifest in " + path);
    }
    // Re-acquire the mutation handle: a dynamic shard stays mutable after
    // load. The const_cast is sound — the loaded wrapper owns the object
    // non-const and DynamicIndex's mutators are thread-safe.
    shard.dynamic = dynamic_cast<DynamicIndex*>(
        const_cast<Index*>(&shard.index->underlying()));
    if (shard.dynamic != nullptr) {
      // A dynamic shard's local ids span [0, next_global_id); every one
      // needs a global mapping or a remapped result could index past the
      // table.
      if (manifest[j].id_entries != shard.dynamic->next_global_id()) {
        return Status::InvalidArgument("corrupt sharded id map in " + path);
      }
    } else if (manifest[j].id_entries != manifest[j].rows) {
      return Status::InvalidArgument("corrupt sharded id map in " + path);
    }
    StatusOr<std::vector<uint32_t>> ids =
        ReadU32Section(c, SectionTag::kIdMap, j, manifest[j].id_entries);
    if (!ids.ok()) return ids.status();
    shard.local_to_global = std::move(ids).value();
    uint32_t prev = 0;
    for (size_t i = 0; i < shard.local_to_global.size(); ++i) {
      const uint32_t gid = shard.local_to_global[i];
      // Ascending (which also implies per-shard uniqueness), hash-consistent
      // placement, and cross-shard uniqueness — the rehydrate constructor's
      // invariants, enforced here as Status.
      if (gid >= record.next_global_id || (i > 0 && gid <= prev) ||
          ShardedIndex::Place(gid, record.num_shards) != j || seen[gid]) {
        return Status::InvalidArgument("corrupt sharded id map in " + path);
      }
      seen[gid] = true;
      prev = gid;
    }
    total_rows += manifest[j].rows;
  }
  if (c->header().num_points != total_rows) {
    return Status::InvalidArgument("corrupt sharded manifest in " + path);
  }

  ShardedIndexConfig config;
  config.metric = metric;
  config.num_shards = static_cast<size_t>(record.num_shards);
  bundle->index = std::make_unique<ShardedIndex>(
      static_cast<size_t>(dim), std::move(config), std::move(shards),
      static_cast<uint32_t>(record.next_global_id));
  return FinishBundle(std::move(bundle));
}

}  // namespace

// ---------------------------------------------------------------------------
// Public entry points.
// ---------------------------------------------------------------------------

const std::vector<IndexLoaderEntry>& IndexLoaderRegistry() {
  static const std::vector<IndexLoaderEntry>* registry =
      new std::vector<IndexLoaderEntry>{
          {IndexType::kPartition, "partition", &LoadPartition},
          {IndexType::kIvfFlat, "ivf_flat", &LoadIvfFlat},
          {IndexType::kIvfPq, "ivf_pq", &LoadIvfPq},
          {IndexType::kScann, "scann", &LoadScann},
          {IndexType::kHnsw, "hnsw", &LoadHnsw},
          {IndexType::kUspEnsemble, "usp_ensemble", &LoadEnsemble},
          {IndexType::kDynamic, "dynamic", &LoadDynamic},
          {IndexType::kSq8, "sq8", &LoadSq8},
          {IndexType::kSharded, "sharded", &LoadSharded},
      };
  return *registry;
}

const IndexLoaderEntry* FindIndexLoader(uint32_t type_tag) {
  for (const IndexLoaderEntry& entry : IndexLoaderRegistry()) {
    if (static_cast<uint32_t>(entry.type) == type_tag) return &entry;
  }
  return nullptr;
}

Status SaveIndexTo(const Index& index, Writer* out,
                   const std::string& name) {
  const Index& concrete = index.underlying();
  switch (concrete.type()) {
    case IndexType::kPartition:
      return SavePartition(static_cast<const PartitionIndex&>(concrete), out,
                           name);
    case IndexType::kIvfFlat:
      return SaveIvfFlat(static_cast<const IvfFlatIndex&>(concrete), out,
                         name);
    case IndexType::kIvfPq:
      return SaveIvfPq(static_cast<const IvfPqIndex&>(concrete), out, name);
    case IndexType::kScann:
      return SaveScann(static_cast<const ScannIndex&>(concrete), out, name);
    case IndexType::kHnsw:
      return SaveHnsw(static_cast<const HnswIndex&>(concrete), out, name);
    case IndexType::kUspEnsemble:
      return SaveEnsemble(static_cast<const UspEnsemble&>(concrete), out,
                          name);
    case IndexType::kDynamic:
      return SaveDynamic(static_cast<const DynamicIndex&>(concrete), out,
                         name);
    case IndexType::kSq8:
      return SaveSq8(static_cast<const Sq8Index&>(concrete), out, name);
    case IndexType::kSharded:
      return SaveSharded(static_cast<const ShardedIndex&>(concrete), out,
                         name);
  }
  return Status::InvalidArgument("unknown index type");
}

Status SaveIndex(const Index& index, const std::string& path) {
  FileWriter writer(path);
  if (!writer.ok()) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  Status status = SaveIndexTo(index, &writer, path);
  if (!status.ok()) return status;
  if (!writer.Close()) return Status::IoError("short write to " + path);
  return Status::Ok();
}

StatusOr<std::string> SerializeIndex(const Index& index) {
  StringWriter writer;
  Status status = SaveIndexTo(index, &writer, "<in-memory container>");
  if (!status.ok()) return status;
  return writer.TakeBytes();
}

StatusOr<std::unique_ptr<Index>> OpenIndexFromContainer(
    std::unique_ptr<ContainerReader> container) {
  const uint32_t type_tag = container->header().index_type;
  const std::string& path = container->path();
  const IndexLoaderEntry* loader = FindIndexLoader(type_tag);
  if (loader == nullptr) {
    return Status::InvalidArgument("unknown index type tag " +
                                   std::to_string(type_tag) + " in " + path);
  }
  return loader->load(std::move(container));
}

StatusOr<std::unique_ptr<Index>> OpenIndex(const std::string& path,
                                           LoadMode mode) {
  StatusOr<std::unique_ptr<ContainerReader>> container =
      mode == LoadMode::kMmap ? ContainerReader::OpenMmap(path)
                              : ContainerReader::OpenFile(path);
  if (!container.ok()) return container.status();
  return OpenIndexFromContainer(std::move(container).value());
}

StatusOr<std::unique_ptr<Index>> LoadIndex(const std::string& path) {
  return OpenIndex(path, LoadMode::kHeap);
}

StatusOr<std::unique_ptr<Index>> MmapIndex(const std::string& path) {
  return OpenIndex(path, LoadMode::kMmap);
}

}  // namespace usp
