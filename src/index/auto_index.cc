#include "index/auto_index.h"

#include <algorithm>
#include <cmath>

#include "hnsw/hnsw.h"
#include "util/status.h"

namespace usp {
namespace {

/// nlist ~ sqrt(n), clamped to [1, n]: the standard IVF balance between
/// coarse-scoring cost (nlist) and list-scan cost (n / nlist).
size_t NlistFor(size_t n) {
  const auto root =
      static_cast<size_t>(std::lround(std::sqrt(static_cast<double>(n))));
  return std::max<size_t>(1, std::min(root, std::max<size_t>(n, 1)));
}

/// Largest M <= 8 that divides dim exactly (PQ subspaces must tile the
/// vector); 1 always divides, so this never fails.
size_t PqSubspacesFor(size_t dim) {
  for (size_t m = std::min<size_t>(dim, 8); m > 1; --m) {
    if (dim % m == 0) return m;
  }
  return 1;
}

}  // namespace

AutoIndexChoice ChooseIndexType(size_t n, size_t dim, Metric metric) {
  AutoIndexChoice choice;
  choice.ivf.metric = metric;
  choice.ivf.nlist = NlistFor(n);

  if (n <= kAutoIndexSmallDataset) {
    // Structure cannot pay for itself: one list == an exact scan at budget 1.
    choice.type = IndexType::kIvfFlat;
    choice.ivf.nlist = 1;
    return choice;
  }
  if (dim <= kAutoIndexLowDim) {
    // Low-dim distances are nearly free; flat list scans beat graph hops.
    choice.type = IndexType::kIvfFlat;
    return choice;
  }
  if (n <= kAutoIndexGraphDataset) {
    // HNSW is squared-L2 only (docs/ARCHITECTURE.md metric x index table);
    // IVF-Flat supports IP and cosine end to end at this scale.
    choice.type = metric == Metric::kSquaredL2 ? IndexType::kHnsw
                                               : IndexType::kIvfFlat;
    return choice;
  }
  // Large high-dim base: compressed residency.
  choice.type = IndexType::kIvfPq;
  choice.ivf.pq.num_subspaces = PqSubspacesFor(dim);
  return choice;
}

std::unique_ptr<Index> BuildAutoIndex(const Matrix& base, Metric metric,
                                      uint64_t seed) {
  USP_CHECK(base.rows() > 0 && base.cols() > 0);
  AutoIndexChoice choice = ChooseIndexType(base.rows(), base.cols(), metric);
  choice.ivf.seed = seed;
  choice.ivf.pq.seed = seed;

  switch (choice.type) {
    case IndexType::kHnsw: {
      HnswConfig config;
      config.max_neighbors = choice.hnsw_max_neighbors;
      config.ef_construction = choice.hnsw_ef_construction;
      config.seed = seed;
      auto index = std::make_unique<HnswIndex>(config);
      index->Build(base);
      return index;
    }
    case IndexType::kIvfPq: {
      // Guard against configs the ADC pipeline rejects (shape edge cases);
      // degrade to IVF-Flat rather than abort — the factory's contract is
      // "always a working index".
      if (IvfPqIndex::ValidateConfig(choice.ivf).ok()) {
        return std::make_unique<IvfPqIndex>(&base, choice.ivf);
      }
      return std::make_unique<IvfFlatIndex>(&base, choice.ivf);
    }
    default:
      return std::make_unique<IvfFlatIndex>(&base, choice.ivf);
  }
}

}  // namespace usp
