// Predicate-filtered search: an IdSelector names the subset of base ids a
// query is allowed to return (the FAISS SearchParameters/IDSelector idea).
// SearchOptions::filter carries one through every scoring path, where it is
// applied *before* scoring — filtered search is "brute force over the allowed
// subset" at full budget, never a post-filtered truncation of an unfiltered
// result. See docs/ARCHITECTURE.md ("Query path") for how each index type
// pushes the selector down.
//
// Selectors are immutable at query time and shared by concurrent queries, so
// is_member must be const-thread-safe (all implementations here are plain
// reads). They are non-owning from the index's point of view: the caller
// keeps the selector alive for the duration of the search.
#ifndef USP_INDEX_ID_SELECTOR_H_
#define USP_INDEX_ID_SELECTOR_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace usp {

/// Sentinel returned by IdSelector::count when a selector cannot report its
/// cardinality without enumerating the universe.
inline constexpr size_t kUnknownCount = static_cast<size_t>(-1);

/// Membership predicate over base-point ids. `id` is whatever id space the
/// queried index reports: base row numbers for the static index types, stable
/// global ids for DynamicIndex (which translates the selector to per-segment
/// local ids internally).
class IdSelector {
 public:
  virtual ~IdSelector() = default;

  /// True when `id` may appear in search results.
  virtual bool is_member(uint32_t id) const = 0;

  /// Exact number of members inside [0, universe) when that is cheaply
  /// computable (O(1) arithmetic for All/Range, O(log) for Array, one
  /// popcount pass for Bitmap, complement arithmetic for Not), or
  /// kUnknownCount when counting would require enumerating the universe.
  /// This is the query planner's selectivity probe; see CountUpTo for the
  /// bounded fallback that handles kUnknownCount selectors.
  virtual size_t count(size_t universe) const {
    (void)universe;
    return kUnknownCount;
  }
};

/// Accepts every id: search behaves exactly as with no filter. Useful as a
/// neutral default in code that always composes selectors.
class IdSelectorAll final : public IdSelector {
 public:
  bool is_member(uint32_t) const override { return true; }

  size_t count(size_t universe) const override { return universe; }
};

/// Accepts the half-open range [begin, end) — the natural selector for
/// time-ordered corpora where ids are assigned by ingestion order.
class IdSelectorRange final : public IdSelector {
 public:
  IdSelectorRange(uint32_t begin, uint32_t end) : begin_(begin), end_(end) {}

  bool is_member(uint32_t id) const override {
    return id >= begin_ && id < end_;
  }

  /// |[begin, end) ∩ [0, universe)|.
  size_t count(size_t universe) const override {
    const size_t lo = std::min<size_t>(begin_, universe);
    const size_t hi = std::min<size_t>(end_, universe);
    return hi > lo ? hi - lo : 0;
  }

  uint32_t begin() const { return begin_; }
  uint32_t end() const { return end_; }

 private:
  uint32_t begin_;
  uint32_t end_;
};

/// Accepts an explicit id list (sorted + deduplicated at construction;
/// membership is a binary search). Suited to short allow-lists; prefer
/// IdSelectorBitmap when the list is a sizable fraction of the base.
class IdSelectorArray final : public IdSelector {
 public:
  explicit IdSelectorArray(std::vector<uint32_t> ids);

  bool is_member(uint32_t id) const override;

  /// Entries below `universe` — a binary search over the sorted list, so ids
  /// at or beyond the queried index's size never inflate the selectivity.
  size_t count(size_t universe) const override;

  /// The sorted, deduplicated allow-list.
  const std::vector<uint32_t>& ids() const { return ids_; }

 private:
  std::vector<uint32_t> ids_;
};

/// Dense bitmap over the id universe [0, universe): O(1) membership, one bit
/// per base point. Ids at or beyond `universe` are non-members. This is the
/// selector DynamicIndex builds internally when translating a global filter
/// to segment-local ids.
class IdSelectorBitmap final : public IdSelector {
 public:
  /// All ids non-members; populate with Set().
  explicit IdSelectorBitmap(size_t universe);

  /// Members are exactly the in-range entries of `ids`.
  IdSelectorBitmap(size_t universe, const std::vector<uint32_t>& ids);

  bool is_member(uint32_t id) const override {
    return id < universe_ &&
           (words_[id >> 6] >> (id & 63u) & uint64_t{1}) != 0;
  }

  void Set(uint32_t id);
  void Reset(uint32_t id);

  size_t universe() const { return universe_; }

  /// Number of member ids (popcount over the bitmap).
  size_t count() const;

  /// Members below min(universe, this->universe()): the popcount restricted
  /// to the queried index's id range.
  size_t count(size_t universe) const override;

 private:
  size_t universe_;
  std::vector<uint64_t> words_;
};

/// Complement of another selector: is_member(id) == !inner.is_member(id).
/// Composable — Not(Array) expresses a deny-list, Not(Range) excludes a
/// cohort. Non-owning: `inner` must outlive this selector.
class IdSelectorNot final : public IdSelector {
 public:
  explicit IdSelectorNot(const IdSelector* inner) : inner_(inner) {}

  bool is_member(uint32_t id) const override {
    return !inner_->is_member(id);
  }

  /// Universe-aware complement: universe - inner.count(universe), propagating
  /// kUnknownCount when the inner selector cannot count itself.
  size_t count(size_t universe) const override {
    const size_t inner_count = inner_->count(universe);
    return inner_count == kUnknownCount ? kUnknownCount
                                        : universe - inner_count;
  }

 private:
  const IdSelector* inner_;
};

/// Bounded selectivity probe: min(limit, |members of `filter` in
/// [0, universe)|). O(1)-ish when the selector implements count();
/// otherwise scans ids upward and stops as soon as `limit` members are found
/// (or the universe is exhausted) — so a planner asking "are there at least
/// L allowed ids?" pays at most one membership test per id up to the answer.
size_t CountUpTo(const IdSelector& filter, size_t universe, size_t limit);

}  // namespace usp

#endif  // USP_INDEX_ID_SELECTOR_H_
