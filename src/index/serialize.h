// Save/load for every index type through the unified Index interface.
//
//   SaveIndex(index, path)   — writes the versioned container (docs/FORMAT.md)
//   LoadIndex(path)          — streaming read; all payloads copied to the heap
//   MmapIndex(path)          — zero-copy: vector/code payloads are mapped
//                              read-only and searches run straight off the
//                              mapping, so a multi-GB index is query-ready in
//                              milliseconds and shareable across processes
//   OpenIndex(path, mode)    — the factory both wrap: reads the stored type
//                              tag and dispatches through the loader registry
//
// Loaded indexes answer Search/SearchBatch bit-identically to the index that
// was saved. Malformed files (truncation, corruption, version skew, unknown
// type tags) fail with Status errors, never crashes.
#ifndef USP_INDEX_SERIALIZE_H_
#define USP_INDEX_SERIALIZE_H_

#include <memory>
#include <string>
#include <vector>

#include "index/container.h"
#include "index/index.h"
#include "util/status.h"

namespace usp {

/// How OpenIndex materializes section payloads.
enum class LoadMode {
  kHeap,  ///< streaming read, payloads owned on the heap (LoadIndex)
  kMmap,  ///< zero-copy mmap views, payloads stay on disk (MmapIndex)
};

/// Serializes `index` (any Index implementation; loaded wrappers are
/// unwrapped) into the container format at `path`. PartitionIndex/ScannIndex
/// scorers must be KMeansPartitioner or UspPartitioner — other BinScorer
/// implementations have no on-disk representation yet and are rejected with
/// kInvalidArgument. A DynamicIndex (serve/dynamic_index.h) serializes as a
/// manifest plus one embedded sub-container per sealed segment; saving takes
/// a consistent snapshot, so it is safe while writers run.
Status SaveIndex(const Index& index, const std::string& path);

/// Same, into any byte sink (`name` labels errors).
Status SaveIndexTo(const Index& index, Writer* out, const std::string& name);

/// Serializes into an in-memory container blob — how sealed segments embed
/// inside a dynamic-index container (SectionTag::kSegmentBlob).
StatusOr<std::string> SerializeIndex(const Index& index);

/// Opens a container, dispatches on its stored index-type tag, and returns a
/// self-contained index (the wrapper owns all storage: heap buffers or the
/// mmap). The returned object's underlying() exposes the concrete index.
StatusOr<std::unique_ptr<Index>> OpenIndex(const std::string& path,
                                           LoadMode mode = LoadMode::kMmap);

/// Streaming load: every payload is copied onto the heap; the file can be
/// deleted afterwards.
StatusOr<std::unique_ptr<Index>> LoadIndex(const std::string& path);

/// Zero-copy load: base vectors and PQ codes are served directly from the
/// read-only mapping (small metadata is still heap-materialized).
StatusOr<std::unique_ptr<Index>> MmapIndex(const std::string& path);

/// Dispatches an already-opened container through the loader registry (the
/// shared tail of OpenIndex; also how embedded segment blobs of a dynamic
/// container are materialized via ContainerReader::OpenMem).
StatusOr<std::unique_ptr<Index>> OpenIndexFromContainer(
    std::unique_ptr<ContainerReader> container);

/// One registered index type: its tag, name, and container loader.
struct IndexLoaderEntry {
  IndexType type;
  const char* name;
  StatusOr<std::unique_ptr<Index>> (*load)(
      std::unique_ptr<ContainerReader> container);
};

/// The type-tag registry OpenIndex dispatches through (one entry per
/// IndexType value).
const std::vector<IndexLoaderEntry>& IndexLoaderRegistry();

/// Registry lookup by raw header tag; nullptr for unknown tags.
const IndexLoaderEntry* FindIndexLoader(uint32_t type_tag);

}  // namespace usp

#endif  // USP_INDEX_SERIALIZE_H_
