#include "nn/batchnorm.h"

#include <cmath>

namespace usp {

BatchNorm::BatchNorm(size_t features, float momentum, float epsilon)
    : momentum_(momentum),
      epsilon_(epsilon),
      gamma_(1, features),
      beta_(1, features),
      gamma_grad_(1, features),
      beta_grad_(1, features),
      running_mean_(1, features),
      running_var_(1, features) {
  gamma_.Fill(1.0f);
  running_var_.Fill(1.0f);
}

Matrix BatchNorm::Forward(const Matrix& input, bool training) {
  const size_t n = input.rows(), f = input.cols();
  USP_CHECK(f == gamma_.cols());
  Matrix out(n, f);
  // The caches feed Backward; inference passes must not touch them (scorer
  // layers are shared by concurrent searches, see serve/dynamic_index.h).
  if (training) {
    cached_normalized_ = Matrix(n, f);
    cached_inv_std_.assign(f, 0.0f);
  }

  if (training && n > 1) {
    for (size_t j = 0; j < f; ++j) {
      double mean = 0.0;
      for (size_t i = 0; i < n; ++i) mean += input(i, j);
      mean /= static_cast<double>(n);
      double var = 0.0;
      for (size_t i = 0; i < n; ++i) {
        const double d = input(i, j) - mean;
        var += d * d;
      }
      var /= static_cast<double>(n);  // biased, like torch's normalization
      const float inv_std = 1.0f / std::sqrt(static_cast<float>(var) + epsilon_);
      cached_inv_std_[j] = inv_std;
      for (size_t i = 0; i < n; ++i) {
        const float xn = (input(i, j) - static_cast<float>(mean)) * inv_std;
        cached_normalized_(i, j) = xn;
        out(i, j) = gamma_(0, j) * xn + beta_(0, j);
      }
      running_mean_(0, j) = (1.0f - momentum_) * running_mean_(0, j) +
                         momentum_ * static_cast<float>(mean);
      running_var_(0, j) = (1.0f - momentum_) * running_var_(0, j) +
                        momentum_ * static_cast<float>(var);
    }
  } else {
    for (size_t j = 0; j < f; ++j) {
      const float inv_std = 1.0f / std::sqrt(running_var_(0, j) + epsilon_);
      if (training) cached_inv_std_[j] = inv_std;
      for (size_t i = 0; i < n; ++i) {
        const float xn = (input(i, j) - running_mean_(0, j)) * inv_std;
        if (training) cached_normalized_(i, j) = xn;
        out(i, j) = gamma_(0, j) * xn + beta_(0, j);
      }
    }
  }
  return out;
}

Matrix BatchNorm::Backward(const Matrix& grad_output) {
  const size_t n = grad_output.rows(), f = grad_output.cols();
  USP_CHECK(n == cached_normalized_.rows() && f == cached_normalized_.cols());
  Matrix grad_input(n, f);
  // Standard batch-norm backward through batch statistics:
  //   dxhat = dy * gamma
  //   dx = inv_std/N * (N*dxhat - sum(dxhat) - xhat * sum(dxhat*xhat))
  for (size_t j = 0; j < f; ++j) {
    double sum_dxhat = 0.0, sum_dxhat_xhat = 0.0, sum_dy = 0.0, sum_dy_xhat = 0.0;
    const float g = gamma_(0, j);
    for (size_t i = 0; i < n; ++i) {
      const float dy = grad_output(i, j);
      const float xhat = cached_normalized_(i, j);
      const float dxhat = dy * g;
      sum_dxhat += dxhat;
      sum_dxhat_xhat += static_cast<double>(dxhat) * xhat;
      sum_dy += dy;
      sum_dy_xhat += static_cast<double>(dy) * xhat;
    }
    gamma_grad_(0, j) = static_cast<float>(sum_dy_xhat);
    beta_grad_(0, j) = static_cast<float>(sum_dy);
    const float inv_std = cached_inv_std_[j];
    const float inv_n = 1.0f / static_cast<float>(n);
    for (size_t i = 0; i < n; ++i) {
      const float dxhat = grad_output(i, j) * g;
      grad_input(i, j) =
          inv_std * (dxhat - inv_n * static_cast<float>(sum_dxhat) -
                     cached_normalized_(i, j) * inv_n *
                         static_cast<float>(sum_dxhat_xhat));
    }
  }
  return grad_input;
}

void BatchNorm::CollectParameters(std::vector<Matrix*>* params,
                                  std::vector<Matrix*>* grads) {
  params->push_back(&gamma_);
  params->push_back(&beta_);
  grads->push_back(&gamma_grad_);
  grads->push_back(&beta_grad_);
}

void BatchNorm::CollectStateTensors(std::vector<Matrix*>* tensors) {
  tensors->push_back(&gamma_);
  tensors->push_back(&beta_);
  tensors->push_back(&running_mean_);
  tensors->push_back(&running_var_);
}

}  // namespace usp
