#include "nn/optimizer.h"

#include <cmath>

#include "util/status.h"

namespace usp {

void Optimizer::Attach(std::vector<Matrix*> params, std::vector<Matrix*> grads) {
  USP_CHECK(params.size() == grads.size());
  params_ = std::move(params);
  grads_ = std::move(grads);
  for (size_t i = 0; i < params_.size(); ++i) {
    USP_CHECK(params_[i]->size() == grads_[i]->size());
  }
}

void Optimizer::ZeroGrad() {
  for (Matrix* g : grads_) g->Fill(0.0f);
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    float* p = params_[i]->data();
    const float* g = grads_[i]->data();
    for (size_t j = 0; j < params_[i]->size(); ++j) {
      p[j] -= learning_rate_ * g[j];
    }
  }
}

Adam::Adam(float learning_rate, float beta1, float beta2, float epsilon)
    : learning_rate_(learning_rate),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon) {}

void Adam::Step() {
  if (first_moment_.empty()) {
    first_moment_.resize(params_.size());
    second_moment_.resize(params_.size());
    for (size_t i = 0; i < params_.size(); ++i) {
      first_moment_[i].assign(params_[i]->size(), 0.0f);
      second_moment_[i].assign(params_[i]->size(), 0.0f);
    }
  }
  ++step_count_;
  const float bias1 = 1.0f - std::pow(beta1_, static_cast<float>(step_count_));
  const float bias2 = 1.0f - std::pow(beta2_, static_cast<float>(step_count_));
  for (size_t i = 0; i < params_.size(); ++i) {
    float* p = params_[i]->data();
    const float* g = grads_[i]->data();
    float* m = first_moment_[i].data();
    float* v = second_moment_[i].data();
    for (size_t j = 0; j < params_[i]->size(); ++j) {
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * g[j];
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * g[j] * g[j];
      const float m_hat = m[j] / bias1;
      const float v_hat = v[j] / bias2;
      p[j] -= learning_rate_ * m_hat / (std::sqrt(v_hat) + epsilon_);
    }
  }
}

}  // namespace usp
