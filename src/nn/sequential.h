// Ordered container of layers: the "model M" of the paper. Outputs logits;
// softmax is applied by the loss (training) or by the index wrapper
// (inference) for numerical stability.
#ifndef USP_NN_SEQUENTIAL_H_
#define USP_NN_SEQUENTIAL_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/layer.h"

namespace usp {

/// Feed-forward stack of layers with a combined backward pass.
class Sequential {
 public:
  Sequential() = default;
  Sequential(Sequential&&) = default;
  Sequential& operator=(Sequential&&) = default;

  void Add(std::unique_ptr<Layer> layer) { layers_.push_back(std::move(layer)); }

  /// Runs every layer in order; returns logits (batch x out_features).
  Matrix Forward(const Matrix& input, bool training);

  /// View-input overload: the first layer consumes the view (zero-copy when
  /// it supports views, staged otherwise); later layers pass owned batches.
  Matrix Forward(MatrixView input, bool training);

  /// Backpropagates dLoss/dLogits through every layer (reverse order),
  /// accumulating parameter gradients. Returns dLoss/dInput.
  Matrix Backward(const Matrix& grad_logits);

  /// All learnable tensors and their gradient buffers, in layer order.
  void CollectParameters(std::vector<Matrix*>* params,
                         std::vector<Matrix*>* grads);

  /// All tensors defining inference behaviour (parameters + batch-norm
  /// running statistics), in layer order. Serialization surface.
  void CollectStateTensors(std::vector<Matrix*>* tensors);

  /// Total learnable scalar count (Table 2 of the paper).
  size_t ParameterCount() const;

  size_t num_layers() const { return layers_.size(); }

  /// "Linear(128->16) -> BatchNorm -> ReLU ..." style summary.
  std::string Summary() const;

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace usp

#endif  // USP_NN_SEQUENTIAL_H_
