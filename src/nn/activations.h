// Parameter-free layers: ReLU and (inverted) Dropout.
#ifndef USP_NN_ACTIVATIONS_H_
#define USP_NN_ACTIVATIONS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "nn/layer.h"
#include "util/rng.h"

namespace usp {

/// Elementwise max(0, x).
class Relu : public Layer {
 public:
  Matrix Forward(const Matrix& input, bool training) override;
  Matrix Backward(const Matrix& grad_output) override;
  std::string name() const override { return "ReLU"; }

 private:
  std::vector<uint8_t> mask_;  // 1 where input > 0
};

/// Inverted dropout: at train time zeroes activations with probability `rate`
/// and scales survivors by 1/(1-rate); identity at inference. The paper uses
/// rate 0.1 (Sec. 5.2).
class Dropout : public Layer {
 public:
  Dropout(float rate, uint64_t seed);

  Matrix Forward(const Matrix& input, bool training) override;
  Matrix Backward(const Matrix& grad_output) override;
  std::string name() const override { return "Dropout"; }

 private:
  float rate_;
  Rng rng_;
  std::vector<uint8_t> mask_;  // 1 where kept
  bool last_was_training_ = false;
};

}  // namespace usp

#endif  // USP_NN_ACTIVATIONS_H_
