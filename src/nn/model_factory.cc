#include "nn/model_factory.h"

#include <memory>

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/linear.h"
#include "util/rng.h"

namespace usp {

Sequential BuildMlp(const MlpConfig& config) {
  USP_CHECK(config.input_dim > 0 && config.num_bins > 1);
  USP_CHECK(config.num_hidden_layers >= 1);
  Rng rng(config.seed);
  Sequential model;
  size_t in_features = config.input_dim;
  for (size_t layer = 0; layer < config.num_hidden_layers; ++layer) {
    model.Add(std::make_unique<Linear>(in_features, config.hidden_dim, &rng));
    if (config.use_batchnorm) {
      model.Add(std::make_unique<BatchNorm>(config.hidden_dim));
    }
    model.Add(std::make_unique<Relu>());
    if (config.dropout_rate > 0.0f) {
      model.Add(std::make_unique<Dropout>(config.dropout_rate, rng.Next()));
    }
    in_features = config.hidden_dim;
  }
  model.Add(std::make_unique<Linear>(in_features, config.num_bins, &rng));
  return model;
}

Sequential BuildLogisticRegression(size_t input_dim, size_t num_bins,
                                   uint64_t seed) {
  USP_CHECK(input_dim > 0 && num_bins > 1);
  Rng rng(seed);
  Sequential model;
  model.Add(std::make_unique<Linear>(input_dim, num_bins, &rng));
  return model;
}

}  // namespace usp
