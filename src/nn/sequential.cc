#include "nn/sequential.h"

namespace usp {

Matrix Sequential::Forward(const Matrix& input, bool training) {
  USP_CHECK(!layers_.empty());
  Matrix current = layers_[0]->Forward(input, training);
  for (size_t i = 1; i < layers_.size(); ++i) {
    current = layers_[i]->Forward(current, training);
  }
  return current;
}

Matrix Sequential::Forward(MatrixView input, bool training) {
  USP_CHECK(!layers_.empty());
  Matrix current = layers_[0]->Forward(input, training);
  for (size_t i = 1; i < layers_.size(); ++i) {
    current = layers_[i]->Forward(current, training);
  }
  return current;
}

Matrix Sequential::Backward(const Matrix& grad_logits) {
  USP_CHECK(!layers_.empty());
  Matrix grad = layers_.back()->Backward(grad_logits);
  for (size_t i = layers_.size() - 1; i-- > 0;) {
    grad = layers_[i]->Backward(grad);
  }
  return grad;
}

void Sequential::CollectParameters(std::vector<Matrix*>* params,
                                   std::vector<Matrix*>* grads) {
  for (auto& layer : layers_) layer->CollectParameters(params, grads);
}

void Sequential::CollectStateTensors(std::vector<Matrix*>* tensors) {
  for (auto& layer : layers_) layer->CollectStateTensors(tensors);
}

size_t Sequential::ParameterCount() const {
  size_t total = 0;
  for (const auto& layer : layers_) total += layer->ParameterCount();
  return total;
}

std::string Sequential::Summary() const {
  std::string out;
  for (size_t i = 0; i < layers_.size(); ++i) {
    if (i > 0) out += " -> ";
    out += layers_[i]->name();
  }
  return out;
}

}  // namespace usp
