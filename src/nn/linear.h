// Fully connected layer with Glorot (Xavier) uniform initialization, matching
// the paper's setup (Sec. 5.2, ref. [14]).
#ifndef USP_NN_LINEAR_H_
#define USP_NN_LINEAR_H_

#include <string>

#include "nn/layer.h"
#include "util/rng.h"

namespace usp {

/// y = x W + b, where W is (in_features x out_features) and b broadcasts over
/// the batch.
class Linear : public Layer {
 public:
  Linear(size_t in_features, size_t out_features, Rng* rng);

  Matrix Forward(const Matrix& input, bool training) override;
  Matrix Forward(MatrixView input, bool training) override;
  Matrix Backward(const Matrix& grad_output) override;
  void CollectParameters(std::vector<Matrix*>* params,
                         std::vector<Matrix*>* grads) override;
  size_t ParameterCount() const override {
    return weight_.size() + bias_.size();
  }
  std::string name() const override { return "Linear"; }

  size_t in_features() const { return weight_.rows(); }
  size_t out_features() const { return weight_.cols(); }

  Matrix& weight() { return weight_; }
  Matrix& bias() { return bias_; }

 private:
  Matrix weight_;       // (in x out)
  Matrix bias_;         // (1 x out)
  Matrix weight_grad_;  // same shape as weight_
  Matrix bias_grad_;    // same shape as bias_
  Matrix cached_input_;
};

}  // namespace usp

#endif  // USP_NN_LINEAR_H_
