// Builders for the two model architectures evaluated in the paper (Sec. 5.2):
// a small MLP (Linear -> BatchNorm -> ReLU -> Dropout -> Linear) and a
// logistic-regression model (single Linear).
#ifndef USP_NN_MODEL_FACTORY_H_
#define USP_NN_MODEL_FACTORY_H_

#include <cstdint>

#include "nn/sequential.h"

namespace usp {

/// Hyperparameters for the paper's neural-network partitioning model.
struct MlpConfig {
  size_t input_dim = 0;
  size_t hidden_dim = 128;      ///< paper: one hidden layer of 128 units
  size_t num_hidden_layers = 1; ///< Neural LSH's quoted 729k params needs 3x512
  size_t num_bins = 16;         ///< m, the output layer width
  float dropout_rate = 0.1f;    ///< paper: dropout 0.1
  bool use_batchnorm = true;
  uint64_t seed = 1;
};

/// Builds [Linear -> BatchNorm -> ReLU -> Dropout] x num_hidden_layers
/// followed by Linear(h->m). Output is logits over the m bins.
Sequential BuildMlp(const MlpConfig& config);

/// Builds a single Linear(d->m) (logistic regression when m == 2 and a
/// softmax is applied downstream).
Sequential BuildLogisticRegression(size_t input_dim, size_t num_bins,
                                   uint64_t seed);

}  // namespace usp

#endif  // USP_NN_MODEL_FACTORY_H_
