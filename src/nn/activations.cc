#include "nn/activations.h"

namespace usp {

Matrix Relu::Forward(const Matrix& input, bool training) {
  Matrix out(input.rows(), input.cols());
  const float* src = input.data();
  float* dst = out.data();
  if (training) {
    mask_.assign(input.size(), 0);
    for (size_t i = 0; i < input.size(); ++i) {
      if (src[i] > 0.0f) {
        dst[i] = src[i];
        mask_[i] = 1;
      }
    }
  } else {
    // Inference writes no member state: scorer layers are shared by
    // concurrent searches (serve/dynamic_index.h), so the cache used by
    // Backward must only be touched on training passes.
    for (size_t i = 0; i < input.size(); ++i) {
      if (src[i] > 0.0f) dst[i] = src[i];
    }
  }
  return out;
}

Matrix Relu::Backward(const Matrix& grad_output) {
  USP_CHECK(grad_output.size() == mask_.size());
  Matrix grad_input(grad_output.rows(), grad_output.cols());
  const float* src = grad_output.data();
  float* dst = grad_input.data();
  for (size_t i = 0; i < grad_output.size(); ++i) {
    dst[i] = mask_[i] ? src[i] : 0.0f;
  }
  return grad_input;
}

Dropout::Dropout(float rate, uint64_t seed) : rate_(rate), rng_(seed) {
  USP_CHECK(rate >= 0.0f && rate < 1.0f);
}

Matrix Dropout::Forward(const Matrix& input, bool training) {
  // Inference passes must not touch member state (see Relu::Forward).
  if (!training || rate_ == 0.0f) return input.Clone();
  last_was_training_ = true;
  Matrix out(input.rows(), input.cols());
  mask_.assign(input.size(), 0);
  const float scale = 1.0f / (1.0f - rate_);
  const float* src = input.data();
  float* dst = out.data();
  for (size_t i = 0; i < input.size(); ++i) {
    if (rng_.Uniform() >= rate_) {
      mask_[i] = 1;
      dst[i] = src[i] * scale;
    }
  }
  return out;
}

Matrix Dropout::Backward(const Matrix& grad_output) {
  if (!last_was_training_ || rate_ == 0.0f) return grad_output.Clone();
  USP_CHECK(grad_output.size() == mask_.size());
  Matrix grad_input(grad_output.rows(), grad_output.cols());
  const float scale = 1.0f / (1.0f - rate_);
  const float* src = grad_output.data();
  float* dst = grad_input.data();
  for (size_t i = 0; i < grad_output.size(); ++i) {
    dst[i] = mask_[i] ? src[i] * scale : 0.0f;
  }
  return grad_input;
}

}  // namespace usp
