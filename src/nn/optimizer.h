// First-order optimizers. The paper trains with Adam (Sec. 5.2, ref. [25]);
// SGD is provided for tests and ablations.
#ifndef USP_NN_OPTIMIZER_H_
#define USP_NN_OPTIMIZER_H_

#include <vector>

#include "tensor/matrix.h"

namespace usp {

/// Updates parameters in place from their gradient buffers.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Binds parameter/gradient tensor pairs (indices must stay aligned).
  void Attach(std::vector<Matrix*> params, std::vector<Matrix*> grads);

  /// Applies one update step using current gradient values.
  virtual void Step() = 0;

  /// Zeroes all gradient buffers.
  void ZeroGrad();

 protected:
  std::vector<Matrix*> params_;
  std::vector<Matrix*> grads_;
};

/// Plain stochastic gradient descent: p -= lr * g.
class Sgd : public Optimizer {
 public:
  explicit Sgd(float learning_rate) : learning_rate_(learning_rate) {}
  void Step() override;

 private:
  float learning_rate_;
};

/// Adam with bias correction (Kingma & Ba 2015).
class Adam : public Optimizer {
 public:
  explicit Adam(float learning_rate = 1e-3f, float beta1 = 0.9f,
                float beta2 = 0.999f, float epsilon = 1e-8f);
  void Step() override;

 private:
  float learning_rate_;
  float beta1_;
  float beta2_;
  float epsilon_;
  int64_t step_count_ = 0;
  std::vector<std::vector<float>> first_moment_;
  std::vector<std::vector<float>> second_moment_;
};

}  // namespace usp

#endif  // USP_NN_OPTIMIZER_H_
