// Layer abstraction for the feed-forward substrate that replaces PyTorch.
// Each layer implements an explicit forward pass and an explicit backward pass
// (manual backprop); gradients are verified against finite differences in
// tests/nn_test.cc.
#ifndef USP_NN_LAYER_H_
#define USP_NN_LAYER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "tensor/matrix.h"

namespace usp {

/// One differentiable layer. Forward caches whatever Backward needs, so a
/// layer instance processes one batch at a time (no re-entrancy), which
/// matches the training loop's usage.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the layer output for `input` (batch x in_features).
  /// `training` toggles train-time behaviour (dropout masks, batch-norm batch
  /// statistics vs. running statistics).
  virtual Matrix Forward(const Matrix& input, bool training) = 0;

  /// View-input overload for the first layer of an inference pass: layers
  /// that can consume external storage directly (Linear) override it; the
  /// default stages the view into an owned batch. Lets scorer inference run
  /// zero-copy from caller-owned or mmap'd query storage.
  virtual Matrix Forward(MatrixView input, bool training) {
    const Matrix staged = input.Clone();
    return Forward(staged, training);
  }

  /// Given dLoss/dOutput, accumulates parameter gradients and returns
  /// dLoss/dInput. Must be called after Forward on the same batch.
  virtual Matrix Backward(const Matrix& grad_output) = 0;

  /// Appends pointers to learnable parameter tensors (may be empty).
  virtual void CollectParameters(std::vector<Matrix*>* params,
                                 std::vector<Matrix*>* grads) {
    (void)params;
    (void)grads;
  }

  /// Appends pointers to every tensor that defines the layer's inference
  /// behaviour: the learnable parameters plus non-learned state such as
  /// batch-norm running statistics. This is the serialization surface.
  virtual void CollectStateTensors(std::vector<Matrix*>* tensors) {
    std::vector<Matrix*> grads;
    CollectParameters(tensors, &grads);
  }

  /// Number of learnable scalars (for Table 2 of the paper).
  virtual size_t ParameterCount() const { return 0; }

  /// Human-readable layer name for model summaries.
  virtual std::string name() const = 0;
};

}  // namespace usp

#endif  // USP_NN_LAYER_H_
