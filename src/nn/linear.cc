#include "nn/linear.h"

#include <cmath>

#include "tensor/ops.h"

namespace usp {

Linear::Linear(size_t in_features, size_t out_features, Rng* rng)
    : weight_(in_features, out_features),
      bias_(1, out_features),
      weight_grad_(in_features, out_features),
      bias_grad_(1, out_features) {
  // Glorot uniform: U(-limit, limit), limit = sqrt(6 / (fan_in + fan_out)).
  const float limit =
      std::sqrt(6.0f / static_cast<float>(in_features + out_features));
  for (size_t i = 0; i < weight_.size(); ++i) {
    weight_.data()[i] = rng->UniformFloat(-limit, limit);
  }
}

Matrix Linear::Forward(const Matrix& input, bool training) {
  return Forward(MatrixView(input), training);
}

Matrix Linear::Forward(MatrixView input, bool training) {
  USP_CHECK(input.cols() == weight_.rows());
  // Backward needs the input; inference passes skip the copy entirely, which
  // keeps scorer serving zero-copy end to end.
  if (training) cached_input_ = input.Clone();
  Matrix out(input.rows(), weight_.cols());
  Gemm(input, weight_, &out);
  for (size_t i = 0; i < out.rows(); ++i) {
    float* row = out.Row(i);
    for (size_t j = 0; j < out.cols(); ++j) row[j] += bias_(0, j);
  }
  return out;
}

Matrix Linear::Backward(const Matrix& grad_output) {
  USP_CHECK(grad_output.rows() == cached_input_.rows());
  USP_CHECK(grad_output.cols() == weight_.cols());
  // dW = X^T dY ; db = column sums of dY ; dX = dY W^T.
  GemmTransposedA(cached_input_, grad_output, &weight_grad_);
  bias_grad_.Fill(0.0f);
  for (size_t i = 0; i < grad_output.rows(); ++i) {
    const float* row = grad_output.Row(i);
    for (size_t j = 0; j < grad_output.cols(); ++j) bias_grad_(0, j) += row[j];
  }
  Matrix grad_input(cached_input_.rows(), weight_.rows());
  GemmTransposedB(grad_output, weight_, &grad_input);
  return grad_input;
}

void Linear::CollectParameters(std::vector<Matrix*>* params,
                               std::vector<Matrix*>* grads) {
  params->push_back(&weight_);
  params->push_back(&bias_);
  grads->push_back(&weight_grad_);
  grads->push_back(&bias_grad_);
}

}  // namespace usp
