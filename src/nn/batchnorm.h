// Batch normalization over feature columns (BatchNorm1d), as used between the
// paper's fully connected layers (Sec. 5.2, ref. [20]).
#ifndef USP_NN_BATCHNORM_H_
#define USP_NN_BATCHNORM_H_

#include <string>
#include <vector>

#include "nn/layer.h"

namespace usp {

/// Per-feature standardization with learnable scale (gamma) and shift (beta).
/// Training uses batch statistics and updates exponential running statistics;
/// inference uses the running statistics, so single-query inference works.
class BatchNorm : public Layer {
 public:
  explicit BatchNorm(size_t features, float momentum = 0.1f,
                     float epsilon = 1e-5f);

  Matrix Forward(const Matrix& input, bool training) override;
  Matrix Backward(const Matrix& grad_output) override;
  void CollectParameters(std::vector<Matrix*>* params,
                         std::vector<Matrix*>* grads) override;
  void CollectStateTensors(std::vector<Matrix*>* tensors) override;
  size_t ParameterCount() const override { return gamma_.size() + beta_.size(); }
  std::string name() const override { return "BatchNorm"; }

 private:
  float momentum_;
  float epsilon_;
  Matrix gamma_;  // (1 x features)
  Matrix beta_;   // (1 x features)
  Matrix gamma_grad_;
  Matrix beta_grad_;
  Matrix running_mean_;  // (1 x features); inference statistics
  Matrix running_var_;   // (1 x features)
  // Backward caches (batch statistics + normalized activations).
  Matrix cached_normalized_;
  std::vector<float> cached_inv_std_;
};

}  // namespace usp

#endif  // USP_NN_BATCHNORM_H_
