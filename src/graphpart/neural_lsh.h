// Neural LSH (Dong, Indyk, Razenshteyn, Wagner; ICLR 2020): the supervised
// state-of-the-art the paper improves on. Pipeline: k-NN graph -> balanced
// graph partition (training labels) -> MLP classifier that routes queries to
// bins. This reproduction uses the same two-stage structure with our balanced
// partitioner standing in for KaHIP (see DESIGN.md).
#ifndef USP_GRAPHPART_NEURAL_LSH_H_
#define USP_GRAPHPART_NEURAL_LSH_H_

#include <cstdint>
#include <vector>

#include "core/bin_scorer.h"
#include "graphpart/balanced_partitioner.h"
#include "knn/brute_force.h"
#include "nn/sequential.h"

namespace usp {

/// Neural LSH hyperparameters. Defaults follow the original setup the paper
/// quotes in Table 2 (hidden width 512).
struct NeuralLshConfig {
  size_t num_bins = 16;
  size_t hidden_dim = 512;
  float dropout = 0.1f;
  size_t epochs = 30;
  size_t batch_size = 512;
  float learning_rate = 1e-3f;
  uint64_t seed = 1;
  BalancedPartitionConfig partition;

  /// Multi-label training ablation (core/loss.h
  /// BuildMultiLabelBinTargets): each point's target is a normalized
  /// histogram over its own partition bin plus the bins of its top
  /// `label_top_m` k-NN-graph neighbors, softening the one-hot labels with
  /// the same neighborhood signal the unsupervised USP loss trains on. 0
  /// (the default) is the historical single-label one-hot pipeline —
  /// training is bit-identical to before the knob existed. Capped at the
  /// k-NN matrix's k. bench_table4_candidates sweeps m in {1, 3, 5}.
  size_t label_top_m = 0;
};

/// Trained Neural LSH index model (BinScorer over its m bins).
class NeuralLsh : public BinScorer {
 public:
  explicit NeuralLsh(NeuralLshConfig config);

  /// Runs the full two-stage pipeline on `data` + its k-NN matrix.
  void Train(const Matrix& data, const KnnResult& knn_matrix);

  size_t num_bins() const override { return config_.num_bins; }
  Matrix ScoreBins(MatrixView points) const override;

  /// Labels produced by the graph partitioning stage (stage 1).
  const std::vector<uint32_t>& training_labels() const { return labels_; }

  /// Wall-clock split, for the training-time comparisons of Sec. 5.3.
  double partition_seconds() const { return partition_seconds_; }
  double train_seconds() const { return train_seconds_; }

  size_t ParameterCount() const { return model_.ParameterCount(); }

 private:
  NeuralLshConfig config_;
  mutable Sequential model_;
  std::vector<uint32_t> labels_;
  double partition_seconds_ = 0.0;
  double train_seconds_ = 0.0;
};

}  // namespace usp

#endif  // USP_GRAPHPART_NEURAL_LSH_H_
