// Regression LSH (the Neural LSH variant of Fig. 6): a binary tree where
// every node (1) bisects the subset's k-NN graph with the balanced graph
// partitioner and (2) fits a logistic regression to imitate that bisection,
// splitting by the learned hyperplane. Plugs into PartitionTree.
#ifndef USP_GRAPHPART_REGRESSION_LSH_H_
#define USP_GRAPHPART_REGRESSION_LSH_H_

#include "baselines/partition_tree.h"
#include "graphpart/graph.h"

namespace usp {

/// Builds the split rule. `graph` must be the symmetrized k-NN graph of the
/// full dataset and must outlive the returned function (PartitionTree holds
/// it only during construction).
/// `lr_epochs` controls the per-node logistic-regression fit.
HyperplaneSplitFn RegressionLshSplit(const Graph* graph,
                                     size_t lr_epochs = 25);

}  // namespace usp

#endif  // USP_GRAPHPART_REGRESSION_LSH_H_
