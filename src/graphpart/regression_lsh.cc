#include "graphpart/regression_lsh.h"

#include <algorithm>

#include "core/loss.h"
#include "graphpart/balanced_partitioner.h"
#include "nn/linear.h"
#include "nn/model_factory.h"
#include "nn/optimizer.h"

namespace usp {

HyperplaneSplitFn RegressionLshSplit(const Graph* graph, size_t lr_epochs) {
  return [graph, lr_epochs](const SplitContext& ctx, std::vector<float>* w,
                            float* threshold) {
    const size_t d = ctx.data.cols();
    const size_t n = ctx.ids.size();
    if (n < 4) return false;

    // Stage 1: balanced bisection of the induced k-NN subgraph.
    const Graph sub = InducedSubgraph(*graph, ctx.ids);
    BalancedPartitionConfig pc;
    pc.seed = ctx.rng->Next();
    const std::vector<uint32_t> side = BisectBalanced(sub, n / 2, pc);

    // Stage 2: logistic regression imitating the bisection.
    Matrix subset = ctx.data.GatherRows(ctx.ids);
    Sequential model = BuildLogisticRegression(d, 2, ctx.rng->Next());
    Adam optimizer(1e-2f);
    std::vector<Matrix*> params, grads;
    model.CollectParameters(&params, &grads);
    optimizer.Attach(params, grads);

    Matrix targets(n, 2);
    for (size_t i = 0; i < n; ++i) targets(i, side[i]) = 1.0f;
    UspLossConfig loss_config{2, /*eta=*/0.0f};
    Matrix grad_logits;
    for (size_t epoch = 0; epoch < lr_epochs; ++epoch) {
      Matrix logits = model.Forward(subset, /*training=*/true);
      UspLoss(logits, targets, nullptr, loss_config, &grad_logits);
      optimizer.ZeroGrad();
      model.Backward(grad_logits);
      optimizer.Step();
    }

    // Decision boundary of the two-output softmax: x goes to class 1 when
    // x.(w1 - w0) >= b0 - b1.
    std::vector<Matrix*> p, g;
    model.CollectParameters(&p, &g);
    const Matrix& weight = *p[0];  // (d x 2)
    const Matrix& bias = *p[1];    // (1 x 2)
    w->resize(d);
    for (size_t j = 0; j < d; ++j) (*w)[j] = weight(j, 1) - weight(j, 0);
    *threshold = bias(0, 0) - bias(0, 1);
    return true;
  };
}

}  // namespace usp
