#include "graphpart/balanced_partitioner.h"

#include <algorithm>
#include <deque>
#include <queue>

#include "util/status.h"

namespace usp {

namespace {

// Grows side 0 by BFS from random seeds until it holds `target_left`
// vertices. Produces a connected-ish initial bisection, the standard warm
// start for FM refinement.
std::vector<uint32_t> GrowInitialBisection(const Graph& graph,
                                           size_t target_left, Rng* rng) {
  const size_t n = graph.num_vertices();
  std::vector<uint32_t> labels(n, 1);
  std::vector<uint8_t> visited(n, 0);
  size_t grown = 0;
  std::deque<uint32_t> queue;
  while (grown < target_left) {
    if (queue.empty()) {
      // New seed for the next (possibly disconnected) component.
      uint32_t seed = static_cast<uint32_t>(rng->UniformInt(n));
      while (visited[seed]) seed = (seed + 1) % n;
      visited[seed] = 1;
      queue.push_back(seed);
    }
    const uint32_t v = queue.front();
    queue.pop_front();
    labels[v] = 0;
    ++grown;
    if (grown >= target_left) break;
    for (uint32_t nb : graph.adjacency[v]) {
      if (!visited[nb]) {
        visited[nb] = 1;
        queue.push_back(nb);
      }
    }
  }
  return labels;
}

// One Fiduccia–Mattheyses pass with unit vertex/edge weights: repeatedly move
// the highest-gain unlocked vertex whose move keeps both sides inside
// [min_left, max_left], then roll back to the best prefix. Returns the cut
// improvement (0 when the pass found nothing).
int64_t FmPass(const Graph& graph, std::vector<uint32_t>* labels,
               size_t min_left, size_t max_left) {
  const size_t n = graph.num_vertices();
  // gain(v) = edges to the other side - edges to the own side.
  std::vector<int32_t> gain(n, 0);
  for (size_t v = 0; v < n; ++v) {
    int32_t g = 0;
    for (uint32_t nb : graph.adjacency[v]) {
      g += ((*labels)[nb] != (*labels)[v]) ? 1 : -1;
    }
    gain[v] = g;
  }
  size_t left_size = 0;
  for (uint32_t l : *labels) {
    if (l == 0) ++left_size;
  }

  // Lazy-deletion max-heap of (gain, vertex); stale entries are skipped.
  using Entry = std::pair<int32_t, uint32_t>;
  std::priority_queue<Entry> heap;
  for (uint32_t v = 0; v < n; ++v) heap.push({gain[v], v});
  std::vector<uint8_t> locked(n, 0);

  std::vector<uint32_t> moves;
  moves.reserve(n);
  int64_t cumulative = 0, best = 0;
  size_t best_prefix = 0;

  while (!heap.empty()) {
    const auto [g, v] = heap.top();
    heap.pop();
    if (locked[v] || g != gain[v]) continue;  // stale or already moved
    // Balance feasibility of moving v to the other side.
    const bool from_left = (*labels)[v] == 0;
    const size_t new_left = from_left ? left_size - 1 : left_size + 1;
    if (new_left < min_left || new_left > max_left) continue;

    locked[v] = 1;
    (*labels)[v] = from_left ? 1 : 0;
    left_size = new_left;
    cumulative += g;
    moves.push_back(v);
    if (cumulative > best) {
      best = cumulative;
      best_prefix = moves.size();
    }
    for (uint32_t nb : graph.adjacency[v]) {
      if (locked[nb]) continue;
      // Edge flipped from cut<->uncut relative to nb: adjust nb's gain by +-2.
      gain[nb] += ((*labels)[nb] != (*labels)[v]) ? -2 : 2;
      heap.push({gain[nb], nb});
    }
  }

  // Roll back moves after the best prefix.
  for (size_t i = moves.size(); i-- > best_prefix;) {
    const uint32_t v = moves[i];
    (*labels)[v] = (*labels)[v] == 0 ? 1 : 0;
  }
  return best;
}

}  // namespace

std::vector<uint32_t> BisectBalanced(const Graph& graph, size_t target_left,
                                     const BalancedPartitionConfig& config) {
  const size_t n = graph.num_vertices();
  USP_CHECK(target_left <= n);
  if (n == 0) return {};
  if (target_left == 0) return std::vector<uint32_t>(n, 1);
  if (target_left == n) return std::vector<uint32_t>(n, 0);

  Rng rng(config.seed);
  std::vector<uint32_t> labels = GrowInitialBisection(graph, target_left, &rng);

  const size_t slack = std::max<size_t>(
      1, static_cast<size_t>(config.epsilon * static_cast<double>(n)));
  const size_t min_left = target_left > slack ? target_left - slack : 1;
  const size_t max_left = std::min(n - 1, target_left + slack);

  for (size_t pass = 0; pass < config.refinement_passes; ++pass) {
    if (FmPass(graph, &labels, min_left, max_left) <= 0) break;
  }
  return labels;
}

namespace {
void PartitionRecursive(const Graph& graph,
                        const std::vector<uint32_t>& vertex_ids,
                        size_t num_parts, uint32_t label_offset,
                        const BalancedPartitionConfig& config, uint64_t seed,
                        std::vector<uint32_t>* out_labels) {
  if (num_parts <= 1 || vertex_ids.size() <= 1) {
    for (uint32_t v : vertex_ids) (*out_labels)[v] = label_offset;
    return;
  }
  const size_t left_parts = num_parts / 2;
  const size_t target_left = vertex_ids.size() * left_parts / num_parts;

  const Graph sub = InducedSubgraph(graph, vertex_ids);
  BalancedPartitionConfig local = config;
  local.seed = seed;
  const std::vector<uint32_t> side =
      BisectBalanced(sub, target_left, local);

  std::vector<uint32_t> left_ids, right_ids;
  for (size_t i = 0; i < vertex_ids.size(); ++i) {
    (side[i] == 0 ? left_ids : right_ids).push_back(vertex_ids[i]);
  }
  PartitionRecursive(graph, left_ids, left_parts, label_offset, config,
                     seed * 6364136223846793005ULL + 1, out_labels);
  PartitionRecursive(graph, right_ids, num_parts - left_parts,
                     label_offset + static_cast<uint32_t>(left_parts), config,
                     seed * 6364136223846793005ULL + 2, out_labels);
}
}  // namespace

std::vector<uint32_t> PartitionGraph(const Graph& graph, size_t num_parts,
                                     const BalancedPartitionConfig& config) {
  USP_CHECK(num_parts >= 1);
  const size_t n = graph.num_vertices();
  std::vector<uint32_t> labels(n, 0);
  std::vector<uint32_t> all(n);
  for (size_t i = 0; i < n; ++i) all[i] = static_cast<uint32_t>(i);
  PartitionRecursive(graph, all, num_parts, 0, config, config.seed, &labels);
  return labels;
}

}  // namespace usp
