#include "graphpart/graph.h"

#include <algorithm>
#include <unordered_map>

#include "util/status.h"

namespace usp {

size_t Graph::num_edges() const {
  size_t total = 0;
  for (const auto& list : adjacency) total += list.size();
  return total / 2;
}

Graph BuildKnnGraph(const KnnResult& knn_matrix, size_t num_vertices) {
  USP_CHECK(knn_matrix.indices.size() == num_vertices * knn_matrix.k);
  Graph graph;
  graph.adjacency.resize(num_vertices);
  for (size_t i = 0; i < num_vertices; ++i) {
    const uint32_t* nbrs = knn_matrix.Row(i);
    for (size_t t = 0; t < knn_matrix.k; ++t) {
      const uint32_t j = nbrs[t];
      USP_CHECK(j < num_vertices);
      if (j == i) continue;
      graph.adjacency[i].push_back(j);
      graph.adjacency[j].push_back(static_cast<uint32_t>(i));
    }
  }
  for (auto& list : graph.adjacency) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
  return graph;
}

Graph InducedSubgraph(const Graph& graph,
                      const std::vector<uint32_t>& vertex_ids) {
  std::unordered_map<uint32_t, uint32_t> local_id;
  local_id.reserve(vertex_ids.size());
  for (size_t i = 0; i < vertex_ids.size(); ++i) {
    local_id.emplace(vertex_ids[i], static_cast<uint32_t>(i));
  }
  Graph sub;
  sub.adjacency.resize(vertex_ids.size());
  for (size_t i = 0; i < vertex_ids.size(); ++i) {
    for (uint32_t nb : graph.adjacency[vertex_ids[i]]) {
      const auto it = local_id.find(nb);
      if (it != local_id.end()) sub.adjacency[i].push_back(it->second);
    }
  }
  return sub;
}

size_t CutSize(const Graph& graph, const std::vector<uint32_t>& labels) {
  USP_CHECK(labels.size() == graph.num_vertices());
  size_t cut = 0;
  for (size_t i = 0; i < graph.num_vertices(); ++i) {
    for (uint32_t j : graph.adjacency[i]) {
      if (j > i && labels[i] != labels[j]) ++cut;
    }
  }
  return cut;
}

}  // namespace usp
