// Balanced graph partitioning: the preprocessing step of Neural LSH.
//
// The original paper delegates to KaHIP; this module implements the classical
// pipeline KaHIP refines — BFS region growing for an initial bisection
// followed by Fiduccia–Mattheyses boundary refinement under a balance
// constraint, applied recursively for m-way partitions. Produces partitions
// of the same character (balanced, low cut) which is all Neural LSH needs as
// training labels; see DESIGN.md substitution table.
#ifndef USP_GRAPHPART_BALANCED_PARTITIONER_H_
#define USP_GRAPHPART_BALANCED_PARTITIONER_H_

#include <cstdint>
#include <vector>

#include "graphpart/graph.h"
#include "util/rng.h"

namespace usp {

/// Partitioner knobs.
struct BalancedPartitionConfig {
  /// Allowed size slack per side during bisection: a side may hold up to
  /// (1 + epsilon) * its proportional target.
  double epsilon = 0.05;
  size_t refinement_passes = 8;  ///< FM passes per bisection
  uint64_t seed = 1;
};

/// Bisects the graph into sides of `target_left` vs. (n - target_left)
/// vertices (within epsilon slack), minimizing edge cut. Returns one label in
/// {0, 1} per vertex.
std::vector<uint32_t> BisectBalanced(const Graph& graph, size_t target_left,
                                     const BalancedPartitionConfig& config);

/// m-way balanced partition by recursive bisection with proportional targets
/// (supports any m >= 1, not just powers of two). Returns labels in [0, m).
std::vector<uint32_t> PartitionGraph(const Graph& graph, size_t num_parts,
                                     const BalancedPartitionConfig& config);

}  // namespace usp

#endif  // USP_GRAPHPART_BALANCED_PARTITIONER_H_
