#include "graphpart/neural_lsh.h"

#include <algorithm>

#include "core/loss.h"
#include "nn/model_factory.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"
#include "util/rng.h"
#include "util/timer.h"

namespace usp {

NeuralLsh::NeuralLsh(NeuralLshConfig config) : config_(std::move(config)) {
  USP_CHECK(config_.num_bins > 1);
}

void NeuralLsh::Train(const Matrix& data, const KnnResult& knn_matrix) {
  const size_t n = data.rows(), d = data.cols(), m = config_.num_bins;
  WallTimer timer;

  // Stage 1: balanced partition of the k-NN graph -> ground-truth labels.
  const Graph graph = BuildKnnGraph(knn_matrix, n);
  BalancedPartitionConfig pc = config_.partition;
  pc.seed = config_.seed;
  labels_ = PartitionGraph(graph, m, pc);
  partition_seconds_ = timer.ElapsedSeconds();

  // Stage 2: supervised classifier (softmax cross-entropy on one-hot labels;
  // reuses the USP loss with eta = 0, which reduces to plain weighted CE).
  timer.Reset();
  MlpConfig mc;
  mc.input_dim = d;
  mc.hidden_dim = config_.hidden_dim;
  mc.num_bins = m;
  mc.dropout_rate = config_.dropout;
  mc.seed = config_.seed;
  model_ = BuildMlp(mc);

  Adam optimizer(config_.learning_rate);
  std::vector<Matrix*> params, grads;
  model_.CollectParameters(&params, &grads);
  optimizer.Attach(params, grads);

  Rng rng(config_.seed ^ 0x1357ULL);
  const size_t batch_size = std::min(config_.batch_size, n);
  const size_t batches = std::max<size_t>(1, n / batch_size);
  std::vector<uint32_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<uint32_t>(i);

  UspLossConfig loss_config{m, /*eta=*/0.0f};
  Matrix grad_logits;
  for (size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(&order);
    for (size_t b = 0; b < batches; ++b) {
      const size_t begin = b * batch_size;
      const size_t end = std::min(n, begin + batch_size);
      if (end - begin < 2) continue;
      std::vector<uint32_t> ids(order.begin() + begin, order.begin() + end);
      Matrix batch = data.GatherRows(ids);
      // label_top_m == 0 produces the historical one-hot rows bit for bit.
      Matrix targets = BuildMultiLabelBinTargets(
          labels_, ids, knn_matrix.indices.data(), knn_matrix.k,
          config_.label_top_m, m);
      Matrix logits = model_.Forward(batch, /*training=*/true);
      UspLoss(logits, targets, nullptr, loss_config, &grad_logits);
      optimizer.ZeroGrad();
      model_.Backward(grad_logits);
      optimizer.Step();
    }
  }
  train_seconds_ = timer.ElapsedSeconds();
}

Matrix NeuralLsh::ScoreBins(MatrixView points) const {
  Matrix logits = model_.Forward(points, /*training=*/false);
  SoftmaxRows(&logits);
  return logits;
}

}  // namespace usp
