// Undirected graph built from a k-NN matrix, the substrate Neural LSH
// partitions (Dong et al. 2020 build a k-NN graph and run a balanced graph
// partitioner on it to produce training labels).
#ifndef USP_GRAPHPART_GRAPH_H_
#define USP_GRAPHPART_GRAPH_H_

#include <cstdint>
#include <vector>

#include "knn/brute_force.h"

namespace usp {

/// Compact undirected adjacency (CSR-ish: per-vertex sorted neighbor lists,
/// each edge stored on both endpoints).
struct Graph {
  std::vector<std::vector<uint32_t>> adjacency;

  size_t num_vertices() const { return adjacency.size(); }
  size_t num_edges() const;  ///< undirected edge count
};

/// Symmetrizes a k-NN matrix into an undirected graph: edge (i, j) exists if
/// j is in i's list or i is in j's list. Duplicates are removed.
Graph BuildKnnGraph(const KnnResult& knn_matrix, size_t num_vertices);

/// Induced subgraph on `vertex_ids` (vertices renumbered 0..|ids|-1 in order).
Graph InducedSubgraph(const Graph& graph,
                      const std::vector<uint32_t>& vertex_ids);

/// Number of edges whose endpoints have different labels.
size_t CutSize(const Graph& graph, const std::vector<uint32_t>& labels);

}  // namespace usp

#endif  // USP_GRAPHPART_GRAPH_H_
