#include "baselines/cross_polytope_lsh.h"

#include <cmath>

#include "dist/distance_kernels.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace usp {

CrossPolytopeLsh::CrossPolytopeLsh(size_t dim, size_t num_bins, uint64_t seed) {
  USP_CHECK(num_bins >= 2 && num_bins % 2 == 0);
  Rng rng(seed);
  projection_ = Matrix::RandomGaussian(dim, num_bins / 2, &rng, 0.0f,
                                       1.0f / std::sqrt(float(dim)));
}

Matrix CrossPolytopeLsh::ScoreBins(MatrixView points) const {
  USP_CHECK(points.cols() == projection_.rows());
  const size_t half = projection_.cols();
  Matrix rotated(points.rows(), half);
  Gemm(points, projection_, &rotated);
  Matrix scores(points.rows(), 2 * half);
  const DistanceKernels& kd = GetDistanceKernels();
  for (size_t i = 0; i < points.rows(); ++i) {
    // Normalize per point so scores are scale-free (the hash of the
    // direction, as in angular-distance LSH).
    const float* r = rotated.Row(i);
    float norm = std::sqrt(kd.dot(r, r, half)) + 1e-12f;
    float* s = scores.Row(i);
    for (size_t j = 0; j < half; ++j) {
      s[j] = r[j] / norm;
      s[half + j] = -r[j] / norm;
    }
  }
  return scores;
}

}  // namespace usp
