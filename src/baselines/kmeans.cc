#include "baselines/kmeans.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "dist/distance_kernels.h"
#include "tensor/ops.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace usp {

Matrix KMeansPlusPlusInit(MatrixView data, size_t k, Rng* rng) {
  const size_t n = data.rows(), d = data.cols();
  Matrix centroids(k, d);
  const DistanceKernels& kd = GetDistanceKernels();
  std::vector<float> min_dist(n, std::numeric_limits<float>::max());
  std::vector<float> prev_dist(n);
  size_t first = rng->UniformInt(n);
  std::memcpy(centroids.Row(0), data.Row(first), d * sizeof(float));
  for (size_t c = 1; c < k; ++c) {
    // 1-vs-many block scan of the whole dataset against the latest center.
    kd.score_block_l2(centroids.Row(c - 1), data.data(), n, d,
                      prev_dist.data());
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      min_dist[i] = std::min(min_dist[i], prev_dist[i]);
      total += min_dist[i];
    }
    size_t chosen = 0;
    if (total > 0.0) {
      double target = rng->Uniform() * total;
      for (size_t i = 0; i < n; ++i) {
        target -= min_dist[i];
        if (target <= 0.0) {
          chosen = i;
          break;
        }
      }
    } else {
      chosen = rng->UniformInt(n);
    }
    std::memcpy(centroids.Row(c), data.Row(chosen), d * sizeof(float));
  }
  return centroids;
}

namespace {

// Assignment step shared by the streaming paths: nearest centroid per chunk
// row via the 1-vs-many block kernel, deterministic strict-< argmin (lowest
// index wins ties) — the exact loop of RunKMeans' assignment phase.
void AssignChunk(MatrixView chunk, const Matrix& centroids, uint32_t* assign,
                 float* point_dist) {
  const size_t m = chunk.rows(), d = chunk.cols(), k = centroids.rows();
  const DistanceKernels& kd = GetDistanceKernels();
  ParallelFor(m, 64, [&](size_t begin, size_t end, size_t) {
    std::vector<float> dist(k);
    for (size_t i = begin; i < end; ++i) {
      kd.score_block_l2(chunk.Row(i), centroids.data(), k, d, dist.data());
      float best = std::numeric_limits<float>::max();
      uint32_t best_c = 0;
      for (size_t c = 0; c < k; ++c) {
        if (dist[c] < best) {
          best = dist[c];
          best_c = static_cast<uint32_t>(c);
        }
      }
      assign[i] = best_c;
      point_dist[i] = best;
    }
  });
}

}  // namespace

KMeansResult RunKMeans(const Matrix& data, const KMeansConfig& config) {
  const size_t n = data.rows(), d = data.cols();
  const size_t k = std::min(config.num_clusters, n);
  USP_CHECK(k >= 1);
  Rng rng(config.seed);

  KMeansResult result;
  result.centroids = KMeansPlusPlusInit(data, k, &rng);
  result.assignments.assign(n, 0);
  std::vector<float> point_dist(n, 0.0f);
  double prev_inertia = std::numeric_limits<double>::max();

  for (size_t iter = 0; iter < config.max_iterations; ++iter) {
    result.iterations = iter + 1;
    // Assignment step (parallel): 1-vs-many scan over the contiguous
    // centroid rows, then a deterministic argmin (strict < keeps the lowest
    // index on ties, matching the historical per-centroid loop).
    AssignChunk(data, result.centroids, result.assignments.data(),
                point_dist.data());
    double inertia = 0.0;
    for (size_t i = 0; i < n; ++i) inertia += point_dist[i];
    result.inertia = inertia;

    // Update step.
    Matrix sums(k, d);
    std::vector<size_t> counts(k, 0);
    for (size_t i = 0; i < n; ++i) {
      const uint32_t c = result.assignments[i];
      ++counts[c];
      const float* x = data.Row(i);
      float* s = sums.Row(c);
      for (size_t j = 0; j < d; ++j) s[j] += x[j];
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Reseed an empty cluster from the worst-served point.
        size_t farthest = 0;
        for (size_t i = 1; i < n; ++i) {
          if (point_dist[i] > point_dist[farthest]) farthest = i;
        }
        std::memcpy(result.centroids.Row(c), data.Row(farthest),
                    d * sizeof(float));
        point_dist[farthest] = 0.0f;
        continue;
      }
      const float inv = 1.0f / static_cast<float>(counts[c]);
      float* dst = result.centroids.Row(c);
      const float* s = sums.Row(c);
      for (size_t j = 0; j < d; ++j) dst[j] = s[j] * inv;
    }

    if (prev_inertia < std::numeric_limits<double>::max() &&
        prev_inertia - inertia <= config.tolerance * prev_inertia) {
      break;
    }
    prev_inertia = inertia;
  }
  return result;
}

StatusOr<MiniBatchKMeansResult> RunMiniBatchKMeans(
    ChunkStream* data, MatrixView seeding_sample,
    const MiniBatchKMeansConfig& config) {
  const size_t d = data->dim();
  if (config.chunk_rows == 0) {
    return Status::InvalidArgument("MiniBatchKMeansConfig::chunk_rows must be > 0");
  }
  if (config.epochs == 0) {
    return Status::InvalidArgument("MiniBatchKMeansConfig::epochs must be > 0");
  }
  if (seeding_sample.rows() == 0 || seeding_sample.cols() != d) {
    return Status::InvalidArgument(
        "seeding sample must be non-empty and match the stream dimension");
  }
  const size_t k = std::min(config.num_clusters, seeding_sample.rows());
  USP_CHECK(k >= 1);
  Rng rng(config.seed);

  MiniBatchKMeansResult result;
  result.centroids = KMeansPlusPlusInit(seeding_sample, k, &rng);

  Matrix sums(k, d);
  std::vector<size_t> chunk_counts(k, 0);
  std::vector<uint64_t> counts(k, 0);  ///< points absorbed this epoch
  std::vector<uint32_t> assign;
  std::vector<float> point_dist;
  double prev_inertia = std::numeric_limits<double>::max();

  for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
    result.epochs_run = epoch + 1;
    Status status = data->Reset();
    if (!status.ok()) return status;
    // Counts restart each epoch: the first chunk of every epoch fully adopts
    // its chunk means (learning rate 1), later chunks blend in with weight
    // proportional to their share of the epoch's points. With one chunk
    // spanning the whole stream this update IS a Lloyd iteration, bit for
    // bit — same kernels, same accumulation order, same reseed rule.
    std::fill(counts.begin(), counts.end(), 0);
    double inertia = 0.0;
    for (;;) {
      StatusOr<MatrixView> chunk_or = data->NextChunk(config.chunk_rows);
      if (!chunk_or.ok()) return chunk_or.status();
      const MatrixView chunk = chunk_or.value();
      const size_t m = chunk.rows();
      if (m == 0) break;
      if (assign.size() < m) {
        assign.resize(m);
        point_dist.resize(m);
      }
      AssignChunk(chunk, result.centroids, assign.data(), point_dist.data());
      for (size_t i = 0; i < m; ++i) inertia += point_dist[i];

      sums.Fill(0.0f);
      std::fill(chunk_counts.begin(), chunk_counts.end(), 0);
      for (size_t i = 0; i < m; ++i) {
        const uint32_t c = assign[i];
        ++chunk_counts[c];
        const float* x = chunk.Row(i);
        float* s = sums.Row(c);
        for (size_t j = 0; j < d; ++j) s[j] += x[j];
      }
      for (size_t c = 0; c < k; ++c) {
        if (chunk_counts[c] == 0) {
          if (counts[c] == 0) {
            // A center no chunk has fed this epoch: reseed from the current
            // chunk's worst-served point (RunKMeans' farthest-point rule).
            size_t farthest = 0;
            for (size_t i = 1; i < m; ++i) {
              if (point_dist[i] > point_dist[farthest]) farthest = i;
            }
            std::memcpy(result.centroids.Row(c), chunk.Row(farthest),
                        d * sizeof(float));
            point_dist[farthest] = 0.0f;
          }
          continue;
        }
        const float inv = 1.0f / static_cast<float>(chunk_counts[c]);
        float* dst = result.centroids.Row(c);
        const float* s = sums.Row(c);
        if (counts[c] == 0) {
          // First feed of the epoch: adopt the chunk mean outright, with
          // RunKMeans' exact arithmetic (sum * (1/count)).
          for (size_t j = 0; j < d; ++j) dst[j] = s[j] * inv;
        } else {
          const float lr =
              static_cast<float>(chunk_counts[c]) /
              static_cast<float>(counts[c] + chunk_counts[c]);
          for (size_t j = 0; j < d; ++j) dst[j] += lr * (s[j] * inv - dst[j]);
        }
        counts[c] += chunk_counts[c];
      }
    }
    result.inertia = inertia;
    if (prev_inertia < std::numeric_limits<double>::max() &&
        prev_inertia - inertia <= config.tolerance * prev_inertia) {
      break;
    }
    prev_inertia = inertia;
  }
  return result;
}

StatusOr<double> StreamInertia(ChunkStream* data, const Matrix& centroids,
                               size_t chunk_rows) {
  if (chunk_rows == 0) {
    return Status::InvalidArgument("chunk_rows must be > 0");
  }
  Status status = data->Reset();
  if (!status.ok()) return status;
  std::vector<uint32_t> assign;
  std::vector<float> point_dist;
  double inertia = 0.0;
  for (;;) {
    StatusOr<MatrixView> chunk_or = data->NextChunk(chunk_rows);
    if (!chunk_or.ok()) return chunk_or.status();
    const MatrixView chunk = chunk_or.value();
    if (chunk.rows() == 0) break;
    if (assign.size() < chunk.rows()) {
      assign.resize(chunk.rows());
      point_dist.resize(chunk.rows());
    }
    AssignChunk(chunk, centroids, assign.data(), point_dist.data());
    for (size_t i = 0; i < chunk.rows(); ++i) inertia += point_dist[i];
  }
  return inertia;
}

KMeansPartitioner::KMeansPartitioner(const Matrix& data,
                                     const KMeansConfig& config) {
  centroids_ = std::move(RunKMeans(data, config).centroids);
}

KMeansPartitioner::KMeansPartitioner(Matrix centroids, Metric metric)
    : centroids_(std::move(centroids)), metric_(metric) {
  if (metric_ == Metric::kCosine) NormalizeRows(&centroids_);
}

KMeansPartitioner KMeansPartitioner::FromTrainedCentroids(Matrix centroids,
                                                          Metric metric) {
  KMeansPartitioner partitioner(std::move(centroids), Metric::kSquaredL2);
  partitioner.metric_ = metric;
  return partitioner;
}

Matrix KMeansPartitioner::ScoreBins(MatrixView points) const {
  Matrix scores(points.rows(), centroids_.rows());
  switch (metric_) {
    case Metric::kSquaredL2: {
      PairwiseSquaredDistances(points, centroids_, &scores);
      for (size_t i = 0; i < scores.size(); ++i) {
        scores.data()[i] = -scores.data()[i];
      }
      break;
    }
    case Metric::kInnerProduct:
      GemmTransposedB(points, centroids_, &scores);
      break;
    case Metric::kCosine: {
      // Cosine similarity against the unit centroids; normalizing the points
      // makes scores scale-free (ranking would survive without it, but
      // AssignBins/argmax comparisons stay well-conditioned this way).
      Matrix normalized = points.Clone();
      NormalizeRows(&normalized);
      GemmTransposedB(normalized, centroids_, &scores);
      break;
    }
  }
  return scores;
}

}  // namespace usp
