// Cross-polytope LSH (Andoni et al. 2015): the data-oblivious baseline of
// Fig. 5. A point is hashed by rotating it pseudo-randomly into R^{m/2} and
// taking the closest signed standard basis vector, giving m = 2 * (m/2) bins.
// Scores are the signed rotated coordinates, which yields the natural
// multi-probe order.
#ifndef USP_BASELINES_CROSS_POLYTOPE_LSH_H_
#define USP_BASELINES_CROSS_POLYTOPE_LSH_H_

#include <cstdint>

#include "core/bin_scorer.h"

namespace usp {

/// One cross-polytope hash table acting as a space partition with `num_bins`
/// bins (`num_bins` must be even; the projection dimension is num_bins / 2).
class CrossPolytopeLsh : public BinScorer {
 public:
  CrossPolytopeLsh(size_t dim, size_t num_bins, uint64_t seed);

  size_t num_bins() const override { return 2 * projection_.cols(); }

  /// Scores: concatenation of (rotated coords, negated rotated coords) of the
  /// L2-normalized point. Argmax = cross-polytope hash bucket.
  Matrix ScoreBins(MatrixView points) const override;

 private:
  Matrix projection_;  // (dim x num_bins/2) iid Gaussian rotation
};

}  // namespace usp

#endif  // USP_BASELINES_CROSS_POLYTOPE_LSH_H_
