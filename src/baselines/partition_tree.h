// Generic recursive binary space-partitioning tree over hyperplane splits.
// Every tree baseline of Fig. 6 (2-means tree, PCA tree, random-projection
// tree, learned KD-tree, boosted search tree, Regression LSH) is this tree
// with a different split rule. Leaves are the partition bins; multi-probe
// scores are products of sigmoid margins down the path, so "closest to the
// boundary" leaves are probed first.
#ifndef USP_BASELINES_PARTITION_TREE_H_
#define USP_BASELINES_PARTITION_TREE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/bin_scorer.h"
#include "knn/brute_force.h"
#include "util/rng.h"

namespace usp {

/// Context handed to a split rule for one tree node.
struct SplitContext {
  const Matrix& data;                     ///< full dataset
  const std::vector<uint32_t>& ids;       ///< points in this node (global ids)
  const KnnResult* knn_matrix;            ///< global k'-NN matrix (may be null)
  Rng* rng;
};

/// Computes a hyperplane split for a node: side(x) = dot(x, w) >= threshold.
/// Returns false when the node should become a leaf (degenerate subset).
using HyperplaneSplitFn = std::function<bool(
    const SplitContext& context, std::vector<float>* w, float* threshold)>;

/// Tree build parameters.
struct PartitionTreeConfig {
  size_t depth = 10;        ///< max depth; full tree has 2^depth leaves
  size_t min_leaf_size = 8; ///< stop splitting smaller subsets
  uint64_t seed = 1;
};

/// Binary hyperplane tree implementing BinScorer over its leaves.
class PartitionTree : public BinScorer {
 public:
  /// Builds the tree by recursively applying `split` to `data`.
  /// `knn_matrix` is optional and forwarded to split rules that learn from
  /// neighborhood structure (learned KD, boosted, Regression LSH).
  PartitionTree(const Matrix& data, const PartitionTreeConfig& config,
                const HyperplaneSplitFn& split,
                const KnnResult* knn_matrix = nullptr);

  size_t num_bins() const override { return num_leaves_; }
  Matrix ScoreBins(MatrixView points) const override;

  size_t depth() const { return config_.depth; }

  /// Total parameters across all internal-node hyperplanes ((d+1) per node).
  size_t ParameterCount() const;

 private:
  struct Node {
    std::vector<float> w;
    float threshold = 0.0f;
    float margin_scale = 1.0f;  ///< sigmoid sharpness; data-scale invariant
    int32_t left = -1;          ///< index into nodes_
    int32_t right = -1;
    int32_t leaf_id = -1;       ///< >= 0 for leaves
  };

  int32_t Build(const Matrix& data, std::vector<uint32_t> ids, size_t depth,
                const HyperplaneSplitFn& split, const KnnResult* knn_matrix,
                Rng* rng);
  void Score(MatrixView points, size_t node_index,
             const std::vector<float>& scale, Matrix* out) const;

  PartitionTreeConfig config_;
  std::vector<Node> nodes_;
  size_t num_leaves_ = 0;
};

// ---- Split rules for the Fig. 6 baselines ----

/// Random-projection tree: random Gaussian direction, median threshold.
HyperplaneSplitFn RandomProjectionSplit();

/// PCA tree: top principal component (power iteration), median threshold.
HyperplaneSplitFn PcaSplit();

/// 2-means tree: hyperplane bisecting the two Lloyd centroids.
HyperplaneSplitFn TwoMeansSplit();

/// Learned KD-tree (Cayton & Dasgupta 2007 style): axis-aligned split chosen
/// to minimize the number of k'-NN pairs separated, over a sampled set of
/// candidate dimensions, at the median threshold.
HyperplaneSplitFn LearnedKdSplit(size_t candidate_dims = 16);

/// Boosted search tree (Li et al. 2011 style): each node samples candidate
/// directions and keeps the one minimizing the weighted fraction of neighbor
/// pairs split; points whose neighborhoods were cut get boosted weights for
/// deeper nodes (AdaBoost-flavored, matching the paper's description of
/// Boosted Search Forest's per-hyperplane loss).
HyperplaneSplitFn BoostedSearchSplit(size_t candidate_directions = 24);

}  // namespace usp

#endif  // USP_BASELINES_PARTITION_TREE_H_
