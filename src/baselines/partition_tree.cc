#include "baselines/partition_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "baselines/kmeans.h"
#include "tensor/ops.h"

namespace usp {

namespace {

// Projects subset points onto w; returns projections aligned with ids.
std::vector<float> Project(const Matrix& data,
                           const std::vector<uint32_t>& ids,
                           const std::vector<float>& w) {
  std::vector<float> proj(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    proj[i] = Dot(data.Row(ids[i]), w.data(), data.cols());
  }
  return proj;
}

float MedianOf(std::vector<float> values) {
  const size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  return values[mid];
}

bool Degenerate(const std::vector<float>& proj, float threshold) {
  size_t left = 0;
  for (float p : proj) {
    if (p < threshold) ++left;
  }
  return left == 0 || left == proj.size();
}

}  // namespace

PartitionTree::PartitionTree(const Matrix& data,
                             const PartitionTreeConfig& config,
                             const HyperplaneSplitFn& split,
                             const KnnResult* knn_matrix)
    : config_(config) {
  USP_CHECK(data.rows() > 0);
  Rng rng(config_.seed);
  std::vector<uint32_t> all(data.rows());
  for (size_t i = 0; i < data.rows(); ++i) all[i] = static_cast<uint32_t>(i);
  Build(data, std::move(all), 0, split, knn_matrix, &rng);
}

int32_t PartitionTree::Build(const Matrix& data, std::vector<uint32_t> ids,
                             size_t depth, const HyperplaneSplitFn& split,
                             const KnnResult* knn_matrix, Rng* rng) {
  const int32_t index = static_cast<int32_t>(nodes_.size());
  nodes_.emplace_back();

  auto make_leaf = [&]() {
    nodes_[index].leaf_id = static_cast<int32_t>(num_leaves_++);
    return index;
  };

  if (depth >= config_.depth || ids.size() < 2 * config_.min_leaf_size) {
    return make_leaf();
  }

  std::vector<float> w;
  float threshold = 0.0f;
  SplitContext context{data, ids, knn_matrix, rng};
  if (!split(context, &w, &threshold)) return make_leaf();

  const std::vector<float> proj = Project(data, ids, w);
  if (Degenerate(proj, threshold)) return make_leaf();

  // Sigmoid sharpness from the subset's own margin scale, so multi-probe
  // scores are comparable across nodes regardless of data units.
  double mean_abs_margin = 0.0;
  for (float p : proj) mean_abs_margin += std::abs(p - threshold);
  mean_abs_margin /= static_cast<double>(proj.size());
  const float margin_scale =
      1.0f / (static_cast<float>(mean_abs_margin) + 1e-12f);

  std::vector<uint32_t> left_ids, right_ids;
  for (size_t i = 0; i < ids.size(); ++i) {
    (proj[i] >= threshold ? right_ids : left_ids).push_back(ids[i]);
  }
  ids.clear();
  ids.shrink_to_fit();

  // Fill the node before recursing (vector may reallocate, so write through
  // the index afterwards too).
  nodes_[index].w = std::move(w);
  nodes_[index].threshold = threshold;
  nodes_[index].margin_scale = margin_scale;
  const int32_t left =
      Build(data, std::move(left_ids), depth + 1, split, knn_matrix, rng);
  const int32_t right =
      Build(data, std::move(right_ids), depth + 1, split, knn_matrix, rng);
  nodes_[index].left = left;
  nodes_[index].right = right;
  return index;
}

Matrix PartitionTree::ScoreBins(MatrixView points) const {
  Matrix out(points.rows(), num_leaves_);
  std::vector<float> ones(points.rows(), 1.0f);
  Score(points, 0, ones, &out);
  return out;
}

void PartitionTree::Score(MatrixView points, size_t node_index,
                          const std::vector<float>& scale, Matrix* out) const {
  const Node& node = nodes_[node_index];
  if (node.leaf_id >= 0) {
    for (size_t i = 0; i < points.rows(); ++i) {
      (*out)(i, node.leaf_id) = scale[i];
    }
    return;
  }
  std::vector<float> left_scale(points.rows()), right_scale(points.rows());
  for (size_t i = 0; i < points.rows(); ++i) {
    const float margin =
        Dot(points.Row(i), node.w.data(), points.cols()) - node.threshold;
    const float p_right =
        1.0f / (1.0f + std::exp(-node.margin_scale * margin));
    right_scale[i] = scale[i] * p_right;
    left_scale[i] = scale[i] * (1.0f - p_right);
  }
  Score(points, node.left, left_scale, out);
  Score(points, node.right, right_scale, out);
}

size_t PartitionTree::ParameterCount() const {
  size_t total = 0;
  for (const auto& node : nodes_) {
    if (node.leaf_id < 0) total += node.w.size() + 1;
  }
  return total;
}

// ---- Split rules ----

HyperplaneSplitFn RandomProjectionSplit() {
  return [](const SplitContext& ctx, std::vector<float>* w, float* threshold) {
    const size_t d = ctx.data.cols();
    w->resize(d);
    for (size_t j = 0; j < d; ++j) {
      (*w)[j] = static_cast<float>(ctx.rng->Gaussian());
    }
    *threshold = MedianOf(Project(ctx.data, ctx.ids, *w));
    return true;
  };
}

HyperplaneSplitFn PcaSplit() {
  return [](const SplitContext& ctx, std::vector<float>* w, float* threshold) {
    const size_t d = ctx.data.cols();
    const size_t n = ctx.ids.size();
    // Mean of the subset.
    std::vector<float> mean(d, 0.0f);
    for (uint32_t id : ctx.ids) {
      const float* row = ctx.data.Row(id);
      for (size_t j = 0; j < d; ++j) mean[j] += row[j];
    }
    for (size_t j = 0; j < d; ++j) mean[j] /= static_cast<float>(n);
    // Power iteration on the covariance (implicit; never materialized).
    std::vector<float> v(d);
    for (size_t j = 0; j < d; ++j) {
      v[j] = static_cast<float>(ctx.rng->Gaussian());
    }
    std::vector<float> next(d);
    for (int iter = 0; iter < 20; ++iter) {
      std::fill(next.begin(), next.end(), 0.0f);
      for (uint32_t id : ctx.ids) {
        const float* row = ctx.data.Row(id);
        float dot = 0.0f;
        for (size_t j = 0; j < d; ++j) dot += (row[j] - mean[j]) * v[j];
        for (size_t j = 0; j < d; ++j) next[j] += dot * (row[j] - mean[j]);
      }
      float norm = std::sqrt(Dot(next.data(), next.data(), d));
      if (norm < 1e-12f) return false;  // zero variance subset
      for (size_t j = 0; j < d; ++j) v[j] = next[j] / norm;
    }
    *w = std::move(v);
    *threshold = MedianOf(Project(ctx.data, ctx.ids, *w));
    return true;
  };
}

HyperplaneSplitFn TwoMeansSplit() {
  return [](const SplitContext& ctx, std::vector<float>* w, float* threshold) {
    Matrix subset = ctx.data.GatherRows(ctx.ids);
    KMeansConfig config;
    config.num_clusters = 2;
    config.max_iterations = 12;
    config.seed = ctx.rng->Next();
    const KMeansResult km = RunKMeans(subset, config);
    if (km.centroids.rows() < 2) return false;
    const size_t d = subset.cols();
    w->resize(d);
    float t = 0.0f;
    for (size_t j = 0; j < d; ++j) {
      const float c0 = km.centroids(0, j), c1 = km.centroids(1, j);
      (*w)[j] = c1 - c0;
      t += (c1 - c0) * 0.5f * (c0 + c1);
    }
    *threshold = t;
    return true;
  };
}

HyperplaneSplitFn LearnedKdSplit(size_t candidate_dims) {
  return [candidate_dims](const SplitContext& ctx, std::vector<float>* w,
                          float* threshold) {
    USP_CHECK(ctx.knn_matrix != nullptr);
    const size_t d = ctx.data.cols();
    const size_t num_candidates = std::min(candidate_dims, d);
    std::unordered_set<uint32_t> in_subset(ctx.ids.begin(), ctx.ids.end());
    // Evaluate candidate dimensions on a bounded sample of the subset.
    const size_t sample_cap = 1500;
    std::vector<uint32_t> sample = ctx.ids;
    if (sample.size() > sample_cap) {
      const auto picks = ctx.rng->SampleWithoutReplacement(
          static_cast<uint32_t>(sample.size()),
          static_cast<uint32_t>(sample_cap));
      std::vector<uint32_t> reduced;
      reduced.reserve(sample_cap);
      for (uint32_t p : picks) reduced.push_back(sample[p]);
      sample = std::move(reduced);
    }

    size_t best_dim = 0;
    size_t best_cost = std::numeric_limits<size_t>::max();
    float best_threshold = 0.0f;
    const auto dims = ctx.rng->SampleWithoutReplacement(
        static_cast<uint32_t>(d), static_cast<uint32_t>(num_candidates));
    for (uint32_t dim : dims) {
      std::vector<float> values;
      values.reserve(ctx.ids.size());
      for (uint32_t id : ctx.ids) values.push_back(ctx.data(id, dim));
      const float median = MedianOf(std::move(values));
      // Cost: neighbor pairs (within the subset) separated by this split.
      size_t cost = 0;
      for (uint32_t id : sample) {
        const bool side = ctx.data(id, dim) >= median;
        const uint32_t* nbrs = ctx.knn_matrix->Row(id);
        for (size_t t = 0; t < ctx.knn_matrix->k; ++t) {
          const uint32_t nb = nbrs[t];
          if (!in_subset.count(nb)) continue;
          if ((ctx.data(nb, dim) >= median) != side) ++cost;
        }
      }
      if (cost < best_cost) {
        best_cost = cost;
        best_dim = dim;
        best_threshold = median;
      }
    }
    w->assign(d, 0.0f);
    (*w)[best_dim] = 1.0f;
    *threshold = best_threshold;
    return true;
  };
}

HyperplaneSplitFn BoostedSearchSplit(size_t candidate_directions) {
  // Shared boosting weights across nodes of the same tree: points whose
  // neighborhoods a previous hyperplane cut get more influence deeper down.
  auto weights = std::make_shared<std::unordered_map<uint32_t, float>>();
  return [candidate_directions, weights](const SplitContext& ctx,
                                         std::vector<float>* w,
                                         float* threshold) {
    USP_CHECK(ctx.knn_matrix != nullptr);
    const size_t d = ctx.data.cols();
    std::unordered_set<uint32_t> in_subset(ctx.ids.begin(), ctx.ids.end());

    auto weight_of = [&](uint32_t id) {
      const auto it = weights->find(id);
      return it == weights->end() ? 1.0f : it->second;
    };

    const size_t sample_cap = 1200;
    std::vector<uint32_t> sample = ctx.ids;
    if (sample.size() > sample_cap) {
      const auto picks = ctx.rng->SampleWithoutReplacement(
          static_cast<uint32_t>(sample.size()),
          static_cast<uint32_t>(sample_cap));
      std::vector<uint32_t> reduced;
      reduced.reserve(sample_cap);
      for (uint32_t p : picks) reduced.push_back(sample[p]);
      sample = std::move(reduced);
    }

    std::vector<float> best_w;
    float best_threshold = 0.0f;
    double best_cost = std::numeric_limits<double>::max();
    std::vector<float> candidate(d);
    for (size_t c = 0; c < candidate_directions; ++c) {
      for (size_t j = 0; j < d; ++j) {
        candidate[j] = static_cast<float>(ctx.rng->Gaussian());
      }
      const float median = MedianOf(Project(ctx.data, ctx.ids, candidate));
      // Weighted similarity-preservation loss: sum of weights of neighbor
      // pairs the hyperplane separates (Li et al.'s pairwise loss).
      double cost = 0.0;
      for (uint32_t id : sample) {
        const bool side =
            Dot(ctx.data.Row(id), candidate.data(), d) >= median;
        const uint32_t* nbrs = ctx.knn_matrix->Row(id);
        for (size_t t = 0; t < ctx.knn_matrix->k; ++t) {
          const uint32_t nb = nbrs[t];
          if (!in_subset.count(nb)) continue;
          const bool nb_side =
              Dot(ctx.data.Row(nb), candidate.data(), d) >= median;
          if (nb_side != side) cost += 0.5 * (weight_of(id) + weight_of(nb));
        }
      }
      if (cost < best_cost) {
        best_cost = cost;
        best_w = candidate;
        best_threshold = median;
      }
    }
    if (best_w.empty()) return false;

    // Boost: upweight points whose neighborhoods this split cuts.
    for (uint32_t id : ctx.ids) {
      const bool side = Dot(ctx.data.Row(id), best_w.data(), d) >= best_threshold;
      const uint32_t* nbrs = ctx.knn_matrix->Row(id);
      size_t cut = 0;
      for (size_t t = 0; t < ctx.knn_matrix->k; ++t) {
        const uint32_t nb = nbrs[t];
        if (!in_subset.count(nb)) continue;
        if ((Dot(ctx.data.Row(nb), best_w.data(), d) >= best_threshold) != side) {
          ++cut;
        }
      }
      if (cut > 0) {
        (*weights)[id] = weight_of(id) *
                         (1.0f + static_cast<float>(cut) /
                                     static_cast<float>(ctx.knn_matrix->k));
      }
    }

    *w = std::move(best_w);
    *threshold = best_threshold;
    return true;
  };
}

}  // namespace usp
