// Lloyd's K-means with k-means++ seeding. Triple duty in the paper's
// evaluation: the main quantization-partition baseline (Sec. 5.4.1), the
// coarse quantizer of IVF/FAISS-style indexes (Sec. 5.4.3), and the codebook
// trainer for product quantization (src/quant). RunMiniBatchKMeans is the
// streaming counterpart for bases that exceed RAM: same seeding, same
// kernels, per-chunk updates (serve/out_of_core_builder.h).
#ifndef USP_BASELINES_KMEANS_H_
#define USP_BASELINES_KMEANS_H_

#include <cstdint>
#include <vector>

#include "core/bin_scorer.h"
#include "dataset/fvecs_stream.h"
#include "dist/metric.h"
#include "tensor/matrix.h"
#include "util/rng.h"
#include "util/status.h"

namespace usp {

/// K-means hyperparameters.
struct KMeansConfig {
  size_t num_clusters = 16;
  size_t max_iterations = 25;
  double tolerance = 1e-4;  ///< stop when relative inertia improvement drops below
  uint64_t seed = 1;
};

/// Result of one K-means run.
struct KMeansResult {
  Matrix centroids;                   ///< (k x d)
  std::vector<uint32_t> assignments;  ///< argmin-distance cluster per point
  double inertia = 0.0;               ///< sum of squared distances to centroids
  size_t iterations = 0;
};

/// Runs k-means++ initialization followed by Lloyd iterations. Empty clusters
/// are reseeded from the point currently farthest from its centroid.
KMeansResult RunKMeans(const Matrix& data, const KMeansConfig& config);

/// k-means++ seeding: first center uniform, then each next center sampled
/// proportional to squared distance from the nearest chosen center. Exposed
/// so the streaming trainer shares RunKMeans' exact seeding; consumes the
/// same rng draws in the same order.
Matrix KMeansPlusPlusInit(MatrixView data, size_t k, Rng* rng);

/// Streaming (mini-batch) k-means hyperparameters.
struct MiniBatchKMeansConfig {
  size_t num_clusters = 16;
  size_t epochs = 5;          ///< bounded full passes over the stream
  size_t chunk_rows = 16384;  ///< rows per assign/update step
  double tolerance = 1e-4;    ///< stop when relative epoch-inertia improvement drops below
  uint64_t seed = 1;
};

/// Result of a mini-batch run. Centroids are FromTrainedCentroids-compatible,
/// so KMeansPartitioner / IVF coarse quantizers consume them unchanged.
struct MiniBatchKMeansResult {
  Matrix centroids;    ///< (k x d)
  double inertia = 0;  ///< last epoch's streaming objective (sum sq dist)
  size_t epochs_run = 0;
};

/// Mini-batch k-means over a ChunkStream: k-means++ seeding on
/// `seeding_sample` (typically a ReservoirSample of the stream), then
/// per-chunk assign/update passes through the same block-scored kernels as
/// RunKMeans. Each chunk's points pull their centroid toward the chunk mean
/// with learning rate chunk_count / points_seen_this_epoch; per-center counts
/// reset at each epoch boundary, which makes one epoch over a single chunk
/// holding the whole dataset bit-identical to one Lloyd iteration from the
/// same seed (pinned by tests/baselines_test.cc). Memory stays
/// O(chunk_rows * d + k * d) regardless of stream length. Empty centers are
/// reseeded from the current chunk's worst-served point, mirroring RunKMeans.
StatusOr<MiniBatchKMeansResult> RunMiniBatchKMeans(
    ChunkStream* data, MatrixView seeding_sample,
    const MiniBatchKMeansConfig& config);

/// One assignment-only pass: the k-means objective of `centroids` over the
/// stream (sum of squared distances to the nearest centroid).
StatusOr<double> StreamInertia(ChunkStream* data, const Matrix& centroids,
                               size_t chunk_rows);

/// K-means as a space partition. Bin scores follow the metric: negated
/// squared distance for kSquaredL2 (argmax-score = nearest centroid, the
/// standard IVF probe order), raw dot products for kInnerProduct, and cosine
/// similarity for kCosine (centroids are unit-normalized at construction and
/// query rows are normalized inside ScoreBins).
class KMeansPartitioner : public BinScorer {
 public:
  /// Trains centroids on `data` (squared-L2 scoring).
  KMeansPartitioner(const Matrix& data, const KMeansConfig& config);

  /// Wraps existing centroids, scoring under `metric`. Cosine centroids are
  /// unit-normalized here.
  explicit KMeansPartitioner(Matrix centroids,
                             Metric metric = Metric::kSquaredL2);

  /// Wraps centroids exactly as a previous partitioner stored them (e.g.
  /// deserialized from an index container), with no preprocessing — in
  /// particular no cosine re-normalization, whose rounding would break the
  /// bit-identical save/load contract of index/serialize.h.
  static KMeansPartitioner FromTrainedCentroids(Matrix centroids,
                                                Metric metric);

  size_t num_bins() const override { return centroids_.rows(); }
  Matrix ScoreBins(MatrixView points) const override;

  const Matrix& centroids() const { return centroids_; }
  Metric metric() const { return metric_; }

  /// Learnable parameter count analogue (centroid table, Table 2).
  size_t ParameterCount() const { return centroids_.size(); }

 private:
  Matrix centroids_;
  Metric metric_ = Metric::kSquaredL2;
};

}  // namespace usp

#endif  // USP_BASELINES_KMEANS_H_
