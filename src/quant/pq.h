// Product quantization with optional anisotropic (score-aware) codebook
// training, reproducing the sketching substrate of ScaNN (Guo et al. 2020)
// that Sec. 5.4.3 builds on.
//
// Vanilla PQ minimizes reconstruction error per subspace. Anisotropic
// quantization re-weights the residual component parallel to the data point
// (which perturbs inner-product/distance rankings) by eta > 1 relative to the
// orthogonal component, which is ScaNN's key idea; here it enters the
// assignment step of Lloyd iterations per subspace (see DESIGN.md for the
// simplification relative to ScaNN's closed-form updates).
#ifndef USP_QUANT_PQ_H_
#define USP_QUANT_PQ_H_

#include <cstdint>
#include <vector>

#include "tensor/matrix.h"

namespace usp {

/// PQ hyperparameters.
struct PqConfig {
  size_t num_subspaces = 8;    ///< M; must divide into dims reasonably evenly
  size_t codebook_size = 16;   ///< K codewords per subspace
  size_t kmeans_iterations = 12;
  float anisotropic_eta = 1.0f;  ///< 1.0 = vanilla PQ; >1 = ScaNN-style
  uint64_t seed = 1;
};

/// Trained product quantizer: per-subspace codebooks + encode/ADC search.
class ProductQuantizer {
 public:
  explicit ProductQuantizer(PqConfig config);

  /// Rehydrates a trained quantizer from deserialized state: `offsets` is the
  /// (M+1)-entry subspace boundary table and `codebooks` the per-subspace
  /// (K x subspace_dim) codeword matrices, exactly as a previous quantizer
  /// exposed them. Encoding/ADC behavior is bit-identical to the original.
  ProductQuantizer(PqConfig config, size_t dims, std::vector<size_t> offsets,
                   std::vector<Matrix> codebooks);

  /// Learns per-subspace codebooks from `data`.
  void Train(const Matrix& data);

  /// Encodes points to (n x M) codeword ids.
  std::vector<uint8_t> Encode(const Matrix& points) const;

  /// Builds the asymmetric-distance table for one query: entry (s, c) is the
  /// squared distance between the query's subvector s and codeword c.
  /// Layout: table[s * codebook_size + c].
  std::vector<float> BuildAdcTable(const float* query) const;

  /// Builds the dot-product table for one query: entry (s, c) is the inner
  /// product of the query's subvector s with codeword c, so the per-code sum
  /// reconstructs <query, decoded point>. Feeds the IP/cosine ADC ranking of
  /// ScannIndex/IvfPqIndex (negated at the call site; dist/metric.h minimizes
  /// everything).
  std::vector<float> BuildDotTable(const float* query) const;

  /// Approximate squared distance of an encoded point via table lookups.
  float AdcDistance(const std::vector<float>& table,
                    const uint8_t* code) const;

  /// Exact reconstruction of a code (for tests / diagnostics).
  void Decode(const uint8_t* code, float* out) const;

  /// Mean squared reconstruction error over `points` (quantization quality).
  double ReconstructionError(const Matrix& points) const;

  size_t num_subspaces() const { return config_.num_subspaces; }
  size_t codebook_size() const { return config_.codebook_size; }
  size_t dims() const { return dims_; }
  const PqConfig& config() const { return config_; }
  const std::vector<size_t>& subspace_offsets() const {
    return subspace_offsets_;
  }
  /// Trained codeword matrix of subspace `s`: (K x subspace_dim), where K may
  /// be below codebook_size for tiny training sets.
  const Matrix& codebook(size_t s) const { return codebooks_[s]; }

 private:
  size_t SubspaceBegin(size_t s) const { return subspace_offsets_[s]; }
  size_t SubspaceDim(size_t s) const {
    return subspace_offsets_[s + 1] - subspace_offsets_[s];
  }

  PqConfig config_;
  size_t dims_ = 0;
  std::vector<size_t> subspace_offsets_;  ///< size M+1
  /// Codebooks: per subspace, (K x subspace_dim) row-major floats,
  /// concatenated.
  std::vector<Matrix> codebooks_;
};

}  // namespace usp

#endif  // USP_QUANT_PQ_H_
