#include "quant/fastscan.h"

#include <algorithm>
#include <cmath>

#include "dist/quant_kernels.h"
#include "util/status.h"

namespace usp {

size_t PackedCodesBytes(size_t n, size_t m) {
  const size_t blocks = (n + kPq4BlockSize - 1) / kPq4BlockSize;
  return blocks * 16 * m;
}

namespace {

// Writes the m codes of vector `code_row` into packed slot `slot`.
inline void PackOne(const uint8_t* code_row, size_t m, size_t slot,
                    std::vector<uint8_t>* data) {
  const size_t block = slot / kPq4BlockSize;
  const size_t lane = slot % kPq4BlockSize;
  uint8_t* base = data->data() + block * m * 16;
  for (size_t s = 0; s < m; ++s) {
    const uint8_t code = code_row[s];
    USP_CHECK(code < 16);
    uint8_t& byte = base[s * 16 + (lane & 15)];
    if (lane < 16) {
      byte = static_cast<uint8_t>((byte & 0xF0) | code);
    } else {
      byte = static_cast<uint8_t>((byte & 0x0F) | (code << 4));
    }
  }
}

}  // namespace

PackedCodes PackCodes4(const uint8_t* codes, size_t n, size_t m) {
  PackedCodes packed;
  packed.num_vectors = n;
  packed.num_subspaces = m;
  packed.data.assign(PackedCodesBytes(n, m), 0);
  for (size_t i = 0; i < n; ++i) PackOne(codes + i * m, m, i, &packed.data);
  return packed;
}

PackedCodes PackCodes4(const uint8_t* codes, const std::vector<uint32_t>& ids,
                       size_t m) {
  PackedCodes packed;
  packed.num_vectors = ids.size();
  packed.num_subspaces = m;
  packed.data.assign(PackedCodesBytes(ids.size(), m), 0);
  for (size_t i = 0; i < ids.size(); ++i) {
    PackOne(codes + static_cast<size_t>(ids[i]) * m, m, i, &packed.data);
  }
  return packed;
}

void UnpackCode4(const uint8_t* packed, size_t num_subspaces, size_t i,
                 uint8_t* out) {
  const size_t block = i / kPq4BlockSize;
  const size_t lane = i % kPq4BlockSize;
  const uint8_t* base = packed + block * num_subspaces * 16;
  for (size_t s = 0; s < num_subspaces; ++s) {
    const uint8_t byte = base[s * 16 + (lane & 15)];
    out[s] = lane < 16 ? (byte & 0x0F) : (byte >> 4);
  }
}

QuantizedLut QuantizeAdcTable(const float* table, size_t m, size_t k) {
  USP_CHECK(k >= 1 && k <= 16);
  QuantizedLut q;
  q.lut.assign(m * 16, 0);
  // Pass 1: per-subspace minima (folded into the bias) and the widest range
  // (one shared step keeps the kernel's uint16 sum a plain addition).
  float max_range = 0.0f;
  for (size_t s = 0; s < m; ++s) {
    const float* row = table + s * k;
    float lo = row[0], hi = row[0];
    for (size_t c = 1; c < k; ++c) {
      lo = std::min(lo, row[c]);
      hi = std::max(hi, row[c]);
    }
    q.bias += lo;
    max_range = std::max(max_range, hi - lo);
  }
  q.delta = max_range / 255.0f;
  if (q.delta <= 0.0f) {
    q.delta = 0.0f;  // constant table: every entry quantizes to 0
    return q;
  }
  // Pass 2: quantize entries against their subspace minimum.
  for (size_t s = 0; s < m; ++s) {
    const float* row = table + s * k;
    float lo = row[0];
    for (size_t c = 1; c < k; ++c) lo = std::min(lo, row[c]);
    for (size_t c = 0; c < k; ++c) {
      const float scaled = (row[c] - lo) / q.delta;
      const long rounded = std::lround(scaled);
      q.lut[s * 16 + c] =
          static_cast<uint8_t>(std::min<long>(std::max<long>(rounded, 0), 255));
    }
  }
  return q;
}

void ScorePacked(const PackedCodes& packed, const QuantizedLut& lut,
                 float* out) {
  const size_t blocks = packed.num_blocks();
  std::vector<uint16_t> sums(blocks * kPq4BlockSize);
  GetQuantKernels().pq4_scan(packed.data.data(), lut.lut.data(),
                             packed.num_subspaces, blocks, sums.data());
  for (size_t i = 0; i < packed.num_vectors; ++i) out[i] = lut.Score(sums[i]);
}

}  // namespace usp
