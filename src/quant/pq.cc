#include "quant/pq.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "baselines/kmeans.h"
#include "dist/distance_kernels.h"
#include "tensor/ops.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace usp {

ProductQuantizer::ProductQuantizer(PqConfig config)
    : config_(std::move(config)) {
  USP_CHECK(config_.num_subspaces >= 1);
  USP_CHECK(config_.codebook_size >= 1 && config_.codebook_size <= 256);
}

ProductQuantizer::ProductQuantizer(PqConfig config, size_t dims,
                                   std::vector<size_t> offsets,
                                   std::vector<Matrix> codebooks)
    : ProductQuantizer(std::move(config)) {
  dims_ = dims;
  subspace_offsets_ = std::move(offsets);
  codebooks_ = std::move(codebooks);
  USP_CHECK(subspace_offsets_.size() == config_.num_subspaces + 1);
  USP_CHECK(codebooks_.size() == config_.num_subspaces);
  USP_CHECK(subspace_offsets_.front() == 0 &&
            subspace_offsets_.back() == dims_);
  for (size_t s = 0; s < codebooks_.size(); ++s) {
    USP_CHECK(codebooks_[s].cols() == SubspaceDim(s));
  }
}

void ProductQuantizer::Train(const Matrix& data) {
  dims_ = data.cols();
  const size_t m = config_.num_subspaces;
  USP_CHECK(dims_ >= m);
  // Spread dimensions as evenly as possible over subspaces.
  subspace_offsets_.assign(m + 1, 0);
  for (size_t s = 0; s < m; ++s) {
    subspace_offsets_[s + 1] =
        subspace_offsets_[s] + dims_ / m + (s < dims_ % m ? 1 : 0);
  }

  codebooks_.clear();
  codebooks_.reserve(m);
  const size_t n = data.rows();
  for (size_t s = 0; s < m; ++s) {
    const size_t sd = SubspaceDim(s), off = SubspaceBegin(s);
    Matrix sub(n, sd);
    for (size_t i = 0; i < n; ++i) {
      std::memcpy(sub.Row(i), data.Row(i) + off, sd * sizeof(float));
    }
    KMeansConfig kc;
    kc.num_clusters = std::min(config_.codebook_size, n);
    kc.max_iterations = config_.kmeans_iterations;
    kc.seed = config_.seed + 101 * s;
    KMeansResult km = RunKMeans(sub, kc);

    if (config_.anisotropic_eta > 1.0f) {
      // Anisotropic refinement: Lloyd iterations whose assignment minimizes
      //   eta * (r . xhat)^2 + (||r||^2 - (r . xhat)^2),
      // i.e. residuals parallel to the point direction cost eta times more
      // (they perturb inner-product scores); update step is the plain mean of
      // the re-assigned points.
      const float eta = config_.anisotropic_eta;
      const DistanceKernels& kd = GetDistanceKernels();
      std::vector<uint32_t> assign(n, 0);
      for (size_t iter = 0; iter < 4; ++iter) {
        ParallelFor(n, 128, [&](size_t begin, size_t end, size_t) {
          std::vector<float> r(sd);
          for (size_t i = begin; i < end; ++i) {
            const float* x = sub.Row(i);
            const float x_norm2 = kd.dot(x, x, sd);
            float best = std::numeric_limits<float>::max();
            uint32_t best_c = 0;
            for (size_t c = 0; c < km.centroids.rows(); ++c) {
              const float* cw = km.centroids.Row(c);
              float r2 = 0.0f, r_dot_x = 0.0f;
              for (size_t j = 0; j < sd; ++j) {
                const float rj = x[j] - cw[j];
                r2 += rj * rj;
                r_dot_x += rj * x[j];
              }
              const float par =
                  x_norm2 > 1e-12f ? r_dot_x * r_dot_x / x_norm2 : 0.0f;
              const float cost = eta * par + (r2 - par);
              if (cost < best) {
                best = cost;
                best_c = static_cast<uint32_t>(c);
              }
            }
            assign[i] = best_c;
          }
        });
        // Mean update.
        Matrix sums(km.centroids.rows(), sd);
        std::vector<size_t> counts(km.centroids.rows(), 0);
        for (size_t i = 0; i < n; ++i) {
          ++counts[assign[i]];
          const float* x = sub.Row(i);
          float* dst = sums.Row(assign[i]);
          for (size_t j = 0; j < sd; ++j) dst[j] += x[j];
        }
        for (size_t c = 0; c < km.centroids.rows(); ++c) {
          if (counts[c] == 0) continue;
          const float inv = 1.0f / static_cast<float>(counts[c]);
          float* dst = km.centroids.Row(c);
          const float* src = sums.Row(c);
          for (size_t j = 0; j < sd; ++j) dst[j] = src[j] * inv;
        }
      }
    }
    codebooks_.push_back(std::move(km.centroids));
  }
}

std::vector<uint8_t> ProductQuantizer::Encode(const Matrix& points) const {
  USP_CHECK(points.cols() == dims_);
  const size_t n = points.rows(), m = config_.num_subspaces;
  std::vector<uint8_t> codes(n * m, 0);
  const DistanceKernels& kd = GetDistanceKernels();
  ParallelFor(n, 128, [&](size_t begin, size_t end, size_t) {
    std::vector<float> dist(config_.codebook_size);
    for (size_t i = begin; i < end; ++i) {
      const float* x = points.Row(i);
      for (size_t s = 0; s < m; ++s) {
        const size_t sd = SubspaceDim(s), off = SubspaceBegin(s);
        const Matrix& cb = codebooks_[s];
        kd.score_block_l2(x + off, cb.data(), cb.rows(), sd, dist.data());
        float best = std::numeric_limits<float>::max();
        uint8_t best_c = 0;
        for (size_t c = 0; c < cb.rows(); ++c) {
          if (dist[c] < best) {
            best = dist[c];
            best_c = static_cast<uint8_t>(c);
          }
        }
        codes[i * m + s] = best_c;
      }
    }
  });
  return codes;
}

std::vector<float> ProductQuantizer::BuildAdcTable(const float* query) const {
  const size_t m = config_.num_subspaces, k = config_.codebook_size;
  std::vector<float> table(m * k, 0.0f);
  const DistanceKernels& kd = GetDistanceKernels();
  for (size_t s = 0; s < m; ++s) {
    const size_t sd = SubspaceDim(s), off = SubspaceBegin(s);
    const Matrix& cb = codebooks_[s];
    // One batched 1-vs-many scan fills the subspace's table row.
    kd.score_block_l2(query + off, cb.data(), cb.rows(), sd, table.data() + s * k);
  }
  return table;
}

std::vector<float> ProductQuantizer::BuildDotTable(const float* query) const {
  const size_t m = config_.num_subspaces, k = config_.codebook_size;
  std::vector<float> table(m * k, 0.0f);
  const DistanceKernels& kd = GetDistanceKernels();
  for (size_t s = 0; s < m; ++s) {
    const size_t sd = SubspaceDim(s), off = SubspaceBegin(s);
    const Matrix& cb = codebooks_[s];
    kd.score_block_dot(query + off, cb.data(), cb.rows(), sd,
                       table.data() + s * k);
  }
  return table;
}

float ProductQuantizer::AdcDistance(const std::vector<float>& table,
                                    const uint8_t* code) const {
  const size_t m = config_.num_subspaces, k = config_.codebook_size;
  float total = 0.0f;
  for (size_t s = 0; s < m; ++s) total += table[s * k + code[s]];
  return total;
}

void ProductQuantizer::Decode(const uint8_t* code, float* out) const {
  for (size_t s = 0; s < config_.num_subspaces; ++s) {
    const size_t sd = SubspaceDim(s), off = SubspaceBegin(s);
    std::memcpy(out + off, codebooks_[s].Row(code[s]), sd * sizeof(float));
  }
}

double ProductQuantizer::ReconstructionError(const Matrix& points) const {
  const std::vector<uint8_t> codes = Encode(points);
  std::vector<float> reconstructed(dims_);
  double total = 0.0;
  for (size_t i = 0; i < points.rows(); ++i) {
    Decode(codes.data() + i * config_.num_subspaces, reconstructed.data());
    total += SquaredDistance(points.Row(i), reconstructed.data(), dims_);
  }
  return total / static_cast<double>(points.rows());
}

}  // namespace usp
