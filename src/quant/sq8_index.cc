#include "quant/sq8_index.h"

#include <algorithm>
#include <cmath>

#include "dist/quant_kernels.h"
#include "index/query_planner.h"
#include "knn/brute_force.h"
#include "knn/top_k.h"
#include "tensor/ops.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace usp {

namespace {
// Rows scored per kernel call: bounds the per-thread u32 score buffer while
// keeping calls long enough to amortize dispatch.
constexpr size_t kScanChunk = 4096;
}  // namespace

Sq8Index::Sq8Index(const Matrix* base, Sq8IndexConfig config)
    : base_(*base), config_(config), dist_(MatrixView(*base), config.metric) {
  const size_t n = base_.rows(), d = base_.cols();
  if (config_.metric == Metric::kCosine) {
    // Codes quantize the unit sphere; queries are normalized before encoding.
    Matrix normalized = base->Clone();
    NormalizeRows(&normalized);
    TrainRanges(MatrixView(normalized));
    owned_codes_.resize(n * d);
    ParallelFor(n, 256, [&](size_t begin, size_t end, size_t) {
      for (size_t i = begin; i < end; ++i) {
        EncodeVector(normalized.Row(i), owned_codes_.data() + i * d);
      }
    });
  } else {
    TrainRanges(base_);
    owned_codes_.resize(n * d);
    ParallelFor(n, 256, [&](size_t begin, size_t end, size_t) {
      for (size_t i = begin; i < end; ++i) {
        EncodeVector(base_.Row(i), owned_codes_.data() + i * d);
      }
    });
  }
  codes_ = owned_codes_.data();
}

Sq8Index::Sq8Index(MatrixView base, Sq8IndexConfig config,
                   std::vector<float> mins, std::vector<float> scales,
                   const uint8_t* codes)
    : base_(base),
      config_(config),
      dist_(base, config.metric),
      mins_(std::move(mins)),
      scales_(std::move(scales)),
      codes_(codes) {
  USP_CHECK(codes_ != nullptr);
  USP_CHECK(mins_.size() == base_.cols());
  USP_CHECK(scales_.size() == base_.cols());
}

void Sq8Index::TrainRanges(MatrixView rows) {
  const size_t n = rows.rows(), d = rows.cols();
  USP_CHECK(n > 0);
  mins_.assign(d, 0.0f);
  scales_.assign(d, 0.0f);
  std::vector<float> maxs(d);
  for (size_t j = 0; j < d; ++j) mins_[j] = maxs[j] = rows.Row(0)[j];
  for (size_t i = 1; i < n; ++i) {
    const float* row = rows.Row(i);
    for (size_t j = 0; j < d; ++j) {
      mins_[j] = std::min(mins_[j], row[j]);
      maxs[j] = std::max(maxs[j], row[j]);
    }
  }
  for (size_t j = 0; j < d; ++j) {
    scales_[j] = (maxs[j] - mins_[j]) / 255.0f;
  }
}

void Sq8Index::EncodeVector(const float* x, uint8_t* out) const {
  const size_t d = base_.cols();
  for (size_t j = 0; j < d; ++j) {
    if (scales_[j] <= 0.0f) {
      out[j] = 0;
      continue;
    }
    const long code = std::lround((x[j] - mins_[j]) / scales_[j]);
    out[j] = static_cast<uint8_t>(std::min<long>(std::max<long>(code, 0), 255));
  }
}

void Sq8Index::DecodeVector(const uint8_t* code, float* out) const {
  const size_t d = base_.cols();
  for (size_t j = 0; j < d; ++j) {
    out[j] = mins_[j] + scales_[j] * static_cast<float>(code[j]);
  }
}

BatchSearchResult Sq8Index::SearchBatch(const SearchRequest& request) const {
  // Planner hook: a sparse selector is cheaper by exact brute force over the
  // allowed rows than by a full quantized scan plus rerank.
  if (auto planned = MaybeReroute(*this, request)) return std::move(*planned);
  const MatrixView queries = request.queries;
  const SearchOptions& options = request.options;
  const size_t k = options.k;
  const size_t nq = queries.rows();
  const size_t n = base_.rows(), d = base_.cols();
  BatchSearchResult result;
  result.Prepare(nq, options);

  const QuantKernels& kq = GetQuantKernels();
  const bool use_l2 = config_.metric == Metric::kSquaredL2;

  ParallelFor(nq, 4, options.num_threads, [&](size_t begin, size_t end,
                                              size_t) {
    std::vector<float> query_scratch;
    std::vector<uint8_t> qcode(d);
    std::vector<uint32_t> proxy_scores(kScanChunk);
    std::vector<uint32_t> shortlist;
    for (size_t q = begin; q < end; ++q) {
      const float* query = queries.Row(q);
      const float* prepared = dist_.PrepareQuery(query, &query_scratch);
      EncodeVector(prepared, qcode.data());

      TopK approx(std::max(k, config_.rerank_budget));
      size_t scored = 0, dropped = 0;
      if (options.filter == nullptr) {
        // Chunked exhaustive scan through the block kernels.
        for (size_t first = 0; first < n; first += kScanChunk) {
          const size_t count = std::min(kScanChunk, n - first);
          if (use_l2) {
            kq.sq8_scan_l2(qcode.data(), codes_ + first * d, count, d,
                           proxy_scores.data());
            for (size_t r = 0; r < count; ++r) {
              approx.Push(static_cast<float>(proxy_scores[r]),
                          static_cast<uint32_t>(first + r));
            }
          } else {
            kq.sq8_scan_dot(qcode.data(), codes_ + first * d, count, d,
                            proxy_scores.data());
            for (size_t r = 0; r < count; ++r) {
              approx.Push(-static_cast<float>(proxy_scores[r]),
                          static_cast<uint32_t>(first + r));
            }
          }
        }
        scored = n;
      } else {
        // Selector pushdown: disallowed rows cost no kernel work.
        for (size_t i = 0; i < n; ++i) {
          const uint32_t id = static_cast<uint32_t>(i);
          if (!options.filter->is_member(id)) {
            ++dropped;
            continue;
          }
          const uint8_t* row = codes_ + i * d;
          const float proxy =
              use_l2 ? static_cast<float>(kq.sq8_l2(qcode.data(), row, d))
                     : -static_cast<float>(kq.sq8_dot(qcode.data(), row, d));
          approx.Push(proxy, id);
          ++scored;
        }
      }
      result.candidate_counts[q] = static_cast<uint32_t>(scored);
      if (result.stats) {
        result.stats->candidates_scored[q] = static_cast<uint32_t>(scored);
        result.stats->filtered_out[q] = static_cast<uint32_t>(dropped);
      }

      auto top_approx = approx.TakeSorted();
      shortlist.clear();
      for (const auto& cand : top_approx) shortlist.push_back(cand.id);

      // Exact fp32 re-rank of the shortlist (already filtered above).
      result.SetRow(q, RerankCandidatesScored(dist_, query, shortlist, k));
    }
  });
  return result;
}

RadiusResult Sq8Index::RadiusSearchBatch(const RadiusRequest& request) const {
  return BruteForceRadius(base_, request.queries, request.radius,
                          config_.metric, request.options.filter,
                          request.options.num_threads);
}

}  // namespace usp
