// 4-bit PQ fast-scan support: the packed code layout and per-query LUT
// quantization feeding the pq4_scan kernel (dist/quant_kernels.h).
//
// Layout. Codes are grouped in blocks of 32 vectors. Within a block, each
// subspace s contributes 16 consecutive bytes; byte j packs the 4-bit code of
// vector j in the low nibble and of vector j + 16 in the high nibble, so one
// 16-byte load holds a full block-subspace and one _mm256_shuffle_epi8
// resolves all 32 codes against the register-resident LUT. A group of n
// vectors occupies ceil(n / 32) blocks of 16 * M bytes; tail slots are padded
// with code 0 and their scores ignored by the caller.
//
// LUT quantization. The float ADC table (M x K squared distances or negated
// dot products) is mapped to uint8 per query: bias = sum over s of the
// subspace minimum, delta = the largest subspace range / 255, entry =
// round((T[s][c] - min_s) / delta). The kernel's uint16 sum then recovers the
// float score as bias + delta * sum, with absolute error at most
// M * delta / 2 (each entry rounds within delta / 2) — the bound pinned by
// tests/fastscan_test.cc.
#ifndef USP_QUANT_FASTSCAN_H_
#define USP_QUANT_FASTSCAN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace usp {

/// How ScannIndex (and through it IvfPqIndex) scores the ADC stage.
enum class AdcMode : uint32_t {
  /// Fast-scan whenever it applies (codebook_size <= 16 and the request is
  /// unfiltered); float per-code table walk otherwise. The default.
  kAuto = 0,
  /// Always the float per-code table walk (the historical path; bit-identical
  /// to pre-fast-scan behavior).
  kFloat = 1,
  /// Always fast-scan for unfiltered requests; aborts at construction when
  /// codebook_size > 16. Filtered requests still use the float path (the
  /// selector prunes candidates below block granularity).
  kFastScan = 2,
};

/// Codes of one group of vectors packed for pq4_scan. `data` holds
/// num_blocks() blocks of 16 * num_subspaces bytes each.
struct PackedCodes {
  size_t num_vectors = 0;    ///< logical count (before padding)
  size_t num_subspaces = 0;  ///< M
  std::vector<uint8_t> data;

  size_t num_blocks() const { return data.size() / (16 * num_subspaces); }
};

/// Number of packed bytes a group of `n` vectors occupies at `m` subspaces.
size_t PackedCodesBytes(size_t n, size_t m);

/// Packs (n x m) one-byte-per-subspace codes (each < 16) into the fast-scan
/// block layout. Pad slots encode code 0.
PackedCodes PackCodes4(const uint8_t* codes, size_t n, size_t m);

/// Packs the codes of `ids` (in the given order) — the bucket-grouped form:
/// each bucket packs its members contiguously so a probe scans whole blocks.
PackedCodes PackCodes4(const uint8_t* codes, const std::vector<uint32_t>& ids,
                       size_t m);

/// Reads back the m 4-bit codes of packed vector `i` (for round-trip tests
/// and Decode paths).
void UnpackCode4(const uint8_t* packed, size_t num_subspaces, size_t i,
                 uint8_t* out);

/// A float ADC table quantized to uint8 for the shuffle kernel.
struct QuantizedLut {
  std::vector<uint8_t> lut;  ///< m * 16 entries (unused slots when k < 16)
  float bias = 0.0f;         ///< sum of per-subspace minima
  float delta = 0.0f;        ///< uniform step; 0 when the table is constant
  /// Score recovered from a kernel sum.
  float Score(uint16_t sum) const {
    return bias + delta * static_cast<float>(sum);
  }
};

/// Quantizes an (m x k) float ADC table (layout table[s * k + c], k <= 16).
QuantizedLut QuantizeAdcTable(const float* table, size_t m, size_t k);

/// Scores every vector of `packed` against the quantized LUT through the
/// dispatched pq4_scan kernel: out[i] = lut.Score(sum_i) for
/// i in [0, num_vectors). `out` must hold num_vectors floats.
void ScorePacked(const PackedCodes& packed, const QuantizedLut& lut,
                 float* out);

}  // namespace usp

#endif  // USP_QUANT_FASTSCAN_H_
