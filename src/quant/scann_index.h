// ScaNN-style two-stage index (Sec. 5.4.3): optional space partition for
// candidate generation, anisotropic-PQ ADC scoring inside the candidate set,
// and exact re-ranking of the top scores. Swapping the partitioner between
// nullptr (vanilla ScaNN: full ADC scan), K-means, and USP reproduces the
// "ScaNN / K-means + ScaNN / USP + ScaNN" rows of Fig. 7.
//
// The ADC stage runs in one of two modes (quant/fastscan.h AdcMode):
//   - float:     per-code walk of the float ADC table (the historical path).
//   - fast-scan: 4-bit packed codes + quantized uint8 LUTs scored 32 codes
//     per _mm256_shuffle_epi8 pass (dist/quant_kernels.h). Engages by
//     default (kAuto) when codebook_size <= 16 and the request is
//     unfiltered; filtered requests prune candidates below block
//     granularity, so they keep the float path and its bit-identity
//     contracts.
// Both modes feed the same exact re-rank, so at full budget with
// rerank_budget >= the candidate count the results are exact either way.
//
// Metrics: squared L2 (the historical default), inner product (ADC ranks by
// negated dot-product tables), and cosine (codes encode the unit-normalized
// base; ADC ranks by negated dot against the normalized query). Exact rerank
// always runs under the index metric through DistanceComputer.
#ifndef USP_QUANT_SCANN_INDEX_H_
#define USP_QUANT_SCANN_INDEX_H_

#include <cstdint>
#include <vector>

#include "core/bin_scorer.h"
#include "core/partition_index.h"
#include "dist/distance_computer.h"
#include "index/index.h"
#include "quant/fastscan.h"
#include "quant/pq.h"

namespace usp {

/// Search knobs of the ScaNN-like pipeline.
struct ScannIndexConfig {
  size_t rerank_budget = 100;  ///< exact-distance re-ranks per query
  /// ADC execution mode. A runtime knob, not persisted: loaded indexes run
  /// kAuto. See quant/fastscan.h.
  AdcMode adc = AdcMode::kAuto;
};

/// Immutable index. Base matrix and partitioner must outlive the index.
class ScannIndex : public Index {
 public:
  /// `partitioner == nullptr` means exhaustive ADC scan (vanilla ScaNN).
  /// Encodes the base with `quantizer` (the unit-normalized base under
  /// kCosine — train the quantizer on normalized data in that case) and
  /// assigns residency bins. `assignments`, when non-null, overrides the
  /// partitioner's own AssignBins (IVF-IP keeps L2 list residency while the
  /// partitioner scores probes by dot product).
  ScannIndex(const Matrix* base, const BinScorer* partitioner,
             ProductQuantizer quantizer, ScannIndexConfig config,
             Metric metric = Metric::kSquaredL2,
             const std::vector<uint32_t>* assignments = nullptr);

  /// Rehydrates from deserialized state: `codes` points at the (n x M) PQ
  /// code bytes (external storage, e.g. an mmap'd container section, which
  /// must outlive the index) and `assignments` are the saved residency bins
  /// (empty when the index has no partition). `packed`, when non-null, points
  /// at the bucket-grouped fast-scan blocks (kPqPackedCodes section, same
  /// lifetime rules as `codes`); when null and codebook_size <= 16 the blocks
  /// are rebuilt from `codes`.
  ScannIndex(MatrixView base, const BinScorer* partitioner,
             ProductQuantizer quantizer, ScannIndexConfig config,
             const uint8_t* codes, const std::vector<uint32_t>& assignments,
             Metric metric = Metric::kSquaredL2,
             const uint8_t* packed = nullptr);

  /// k-NN search: probe the `options.budget` best bins, ADC-score their
  /// points, then exact-rerank the best `rerank_budget` candidates. An
  /// options.filter is applied before the ADC stage, so disallowed rows cost
  /// no table lookups and never occupy shortlist slots — with all bins probed
  /// and rerank_budget >= the allowed count, the result is exact brute force
  /// over the allowed subset. `options.num_threads` caps the per-query search
  /// sharding (0 = thread-pool default, 1 = serial; partition scoring still
  /// uses the pool's GEMM); results are identical at every setting.
  using Index::SearchBatch;
  BatchSearchResult SearchBatch(const SearchRequest& request) const override;

  /// Radius search: gather the probed buckets' points (the whole base when
  /// partition-free) and range-filter them by *exact* distance. The ADC stage
  /// is skipped — a range cut needs true distances, and approximating it with
  /// table scores would break the brute-force bit-identity contract — so
  /// rerank_budget does not apply to radius requests; options.budget (probed
  /// bins) is the only knob.
  RadiusResult RadiusSearchBatch(const RadiusRequest& request) const override;

  size_t dim() const override { return base_.cols(); }
  size_t size() const override { return base_.rows(); }
  Metric metric() const override { return metric_; }
  IndexType type() const override { return IndexType::kScann; }
  MatrixView base_view() const override { return base_; }

  /// Planner cost input (index/query_planner.h): balanced-bin ADC candidate
  /// volume; the whole base for a partition-free exhaustive scan.
  size_t EstimateCandidates(size_t budget) const override;

  const ProductQuantizer& quantizer() const { return quantizer_; }
  bool has_partition() const { return partitioner_ != nullptr; }
  /// True when the fast-scan blocks are built (codebook_size <= 16 and the
  /// config does not pin the float path); unfiltered requests then score
  /// through the pq4 shuffle kernel.
  bool has_fast_scan() const { return packed_ != nullptr; }

  // Serialization accessors.
  const ScannIndexConfig& config() const { return config_; }
  MatrixView base() const { return base_; }
  const BinScorer* partitioner() const { return partitioner_; }
  const uint8_t* codes() const { return codes_; }
  const std::vector<std::vector<uint32_t>>& buckets() const { return buckets_; }
  /// Bucket-grouped fast-scan blocks (nullptr when has_fast_scan() is
  /// false); PackedBytes() is their size.
  const uint8_t* packed_codes() const { return packed_; }
  size_t PackedBytes() const;

  /// Flattened residency assignments (inverse of `buckets`); empty when the
  /// index has no partition.
  std::vector<uint32_t> Assignments() const;

 private:
  void BuildBuckets(const std::vector<uint32_t>& assignments);
  void SetUpFastScan(const uint8_t* packed);
  /// Float ADC table whose per-code sum ranks candidates under the index
  /// metric: squared-L2 subdistances for L2, negated dot products for
  /// IP/cosine. `prepared_query` must come from dist_.PrepareQuery.
  std::vector<float> BuildMetricTable(const float* prepared_query) const;

  MatrixView base_;
  const BinScorer* partitioner_;
  Metric metric_;
  DistanceComputer dist_;  ///< exact rerank under metric_
  ProductQuantizer quantizer_;
  ScannIndexConfig config_;
  std::vector<uint8_t> owned_codes_;  ///< empty when codes are external
  const uint8_t* codes_ = nullptr;    ///< (n x M) PQ codes
  std::vector<std::vector<uint32_t>> buckets_;  ///< empty when no partition
  std::vector<uint8_t> owned_packed_;  ///< empty when packed is external
  const uint8_t* packed_ = nullptr;    ///< fast-scan blocks; null = float only
  /// Per bucket, the first block of its packed group (one trailing entry
  /// with the total block count); {0, total} when partition-free.
  std::vector<size_t> bucket_block_offsets_;
};

}  // namespace usp

#endif  // USP_QUANT_SCANN_INDEX_H_
