// ScaNN-style two-stage index (Sec. 5.4.3): optional space partition for
// candidate generation, anisotropic-PQ ADC scoring inside the candidate set,
// and exact re-ranking of the top scores. Swapping the partitioner between
// nullptr (vanilla ScaNN: full ADC scan), K-means, and USP reproduces the
// "ScaNN / K-means + ScaNN / USP + ScaNN" rows of Fig. 7.
#ifndef USP_QUANT_SCANN_INDEX_H_
#define USP_QUANT_SCANN_INDEX_H_

#include <cstdint>
#include <vector>

#include "core/bin_scorer.h"
#include "core/partition_index.h"
#include "dist/distance_computer.h"
#include "quant/pq.h"

namespace usp {

/// Search knobs of the ScaNN-like pipeline.
struct ScannIndexConfig {
  size_t rerank_budget = 100;  ///< exact-distance re-ranks per query
};

/// Immutable index. Base matrix and partitioner must outlive the index.
class ScannIndex {
 public:
  /// `partitioner == nullptr` means exhaustive ADC scan (vanilla ScaNN).
  ScannIndex(const Matrix* base, const BinScorer* partitioner,
             ProductQuantizer quantizer, ScannIndexConfig config);

  /// k-NN search: probe -> ADC score -> exact rerank of the best
  /// `rerank_budget` candidates. `num_threads` caps the per-query search
  /// sharding (0 = thread-pool default, 1 = serial; partition scoring still
  /// uses the pool's GEMM); results are identical at every setting.
  BatchSearchResult SearchBatch(const Matrix& queries, size_t k,
                                size_t num_probes,
                                size_t num_threads = 0) const;

  const ProductQuantizer& quantizer() const { return quantizer_; }
  bool has_partition() const { return partitioner_ != nullptr; }

 private:
  const Matrix* base_;
  const BinScorer* partitioner_;
  DistanceComputer dist_;  ///< exact rerank (squared L2)
  ProductQuantizer quantizer_;
  ScannIndexConfig config_;
  std::vector<uint8_t> codes_;                  ///< (n x M) PQ codes
  std::vector<std::vector<uint32_t>> buckets_;  ///< empty when no partition
};

}  // namespace usp

#endif  // USP_QUANT_SCANN_INDEX_H_
