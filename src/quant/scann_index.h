// ScaNN-style two-stage index (Sec. 5.4.3): optional space partition for
// candidate generation, anisotropic-PQ ADC scoring inside the candidate set,
// and exact re-ranking of the top scores. Swapping the partitioner between
// nullptr (vanilla ScaNN: full ADC scan), K-means, and USP reproduces the
// "ScaNN / K-means + ScaNN / USP + ScaNN" rows of Fig. 7.
#ifndef USP_QUANT_SCANN_INDEX_H_
#define USP_QUANT_SCANN_INDEX_H_

#include <cstdint>
#include <vector>

#include "core/bin_scorer.h"
#include "core/partition_index.h"
#include "dist/distance_computer.h"
#include "index/index.h"
#include "quant/pq.h"

namespace usp {

/// Search knobs of the ScaNN-like pipeline.
struct ScannIndexConfig {
  size_t rerank_budget = 100;  ///< exact-distance re-ranks per query
};

/// Immutable index. Base matrix and partitioner must outlive the index.
class ScannIndex : public Index {
 public:
  /// `partitioner == nullptr` means exhaustive ADC scan (vanilla ScaNN).
  /// Encodes the base with `quantizer` and assigns residency bins.
  ScannIndex(const Matrix* base, const BinScorer* partitioner,
             ProductQuantizer quantizer, ScannIndexConfig config);

  /// Rehydrates from deserialized state: `codes` points at the (n x M) PQ
  /// code bytes (external storage, e.g. an mmap'd container section, which
  /// must outlive the index) and `assignments` are the saved residency bins
  /// (empty when the index has no partition).
  ScannIndex(MatrixView base, const BinScorer* partitioner,
             ProductQuantizer quantizer, ScannIndexConfig config,
             const uint8_t* codes, const std::vector<uint32_t>& assignments);

  /// k-NN search: probe the `options.budget` best bins, ADC-score their
  /// points, then exact-rerank the best `rerank_budget` candidates. An
  /// options.filter is applied before the ADC stage, so disallowed rows cost
  /// no table lookups and never occupy shortlist slots — with all bins probed
  /// and rerank_budget >= the allowed count, the result is exact brute force
  /// over the allowed subset. `options.num_threads` caps the per-query search
  /// sharding (0 = thread-pool default, 1 = serial; partition scoring still
  /// uses the pool's GEMM); results are identical at every setting.
  using Index::SearchBatch;
  BatchSearchResult SearchBatch(const SearchRequest& request) const override;

  size_t dim() const override { return base_.cols(); }
  size_t size() const override { return base_.rows(); }
  Metric metric() const override { return Metric::kSquaredL2; }
  IndexType type() const override { return IndexType::kScann; }
  MatrixView base_view() const override { return base_; }

  /// Planner cost input (index/query_planner.h): balanced-bin ADC candidate
  /// volume; the whole base for a partition-free exhaustive scan.
  size_t EstimateCandidates(size_t budget) const override;

  const ProductQuantizer& quantizer() const { return quantizer_; }
  bool has_partition() const { return partitioner_ != nullptr; }

  // Serialization accessors.
  const ScannIndexConfig& config() const { return config_; }
  MatrixView base() const { return base_; }
  const BinScorer* partitioner() const { return partitioner_; }
  const uint8_t* codes() const { return codes_; }
  const std::vector<std::vector<uint32_t>>& buckets() const { return buckets_; }

  /// Flattened residency assignments (inverse of `buckets`); empty when the
  /// index has no partition.
  std::vector<uint32_t> Assignments() const;

 private:
  void BuildBuckets(const std::vector<uint32_t>& assignments);

  MatrixView base_;
  const BinScorer* partitioner_;
  DistanceComputer dist_;  ///< exact rerank (squared L2)
  ProductQuantizer quantizer_;
  ScannIndexConfig config_;
  std::vector<uint8_t> owned_codes_;  ///< empty when codes are external
  const uint8_t* codes_ = nullptr;    ///< (n x M) PQ codes
  std::vector<std::vector<uint32_t>> buckets_;  ///< empty when no partition
};

}  // namespace usp

#endif  // USP_QUANT_SCANN_INDEX_H_
