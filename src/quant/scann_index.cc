#include "quant/scann_index.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <numeric>

#include "dist/quant_kernels.h"
#include "index/query_planner.h"
#include "knn/brute_force.h"
#include "knn/top_k.h"
#include "tensor/ops.h"
#include "util/thread_pool.h"

namespace usp {

ScannIndex::ScannIndex(const Matrix* base, const BinScorer* partitioner,
                       ProductQuantizer quantizer, ScannIndexConfig config,
                       Metric metric,
                       const std::vector<uint32_t>* assignments)
    : base_(*base),
      partitioner_(partitioner),
      metric_(metric),
      dist_(MatrixView(*base), metric),
      quantizer_(std::move(quantizer)),
      config_(config) {
  if (metric_ == Metric::kCosine) {
    // Codes approximate the unit sphere: ADC dot tables against a normalized
    // query then rank by approximate cosine similarity.
    Matrix normalized = base->Clone();
    NormalizeRows(&normalized);
    owned_codes_ = quantizer_.Encode(normalized);
  } else {
    owned_codes_ = quantizer_.Encode(*base);
  }
  codes_ = owned_codes_.data();
  if (partitioner_ != nullptr) {
    if (assignments != nullptr) {
      BuildBuckets(*assignments);
    } else {
      BuildBuckets(partitioner_->AssignBins(*base));
    }
  }
  SetUpFastScan(nullptr);
}

ScannIndex::ScannIndex(MatrixView base, const BinScorer* partitioner,
                       ProductQuantizer quantizer, ScannIndexConfig config,
                       const uint8_t* codes,
                       const std::vector<uint32_t>& assignments, Metric metric,
                       const uint8_t* packed)
    : base_(base),
      partitioner_(partitioner),
      metric_(metric),
      dist_(base, metric),
      quantizer_(std::move(quantizer)),
      config_(config),
      codes_(codes) {
  USP_CHECK(codes_ != nullptr);
  if (partitioner_ != nullptr) {
    USP_CHECK(assignments.size() == base_.rows());
    BuildBuckets(assignments);
  }
  SetUpFastScan(packed);
}

void ScannIndex::BuildBuckets(const std::vector<uint32_t>& assignments) {
  buckets_.resize(partitioner_->num_bins());
  for (size_t i = 0; i < assignments.size(); ++i) {
    USP_CHECK(assignments[i] < buckets_.size());
    buckets_[assignments[i]].push_back(static_cast<uint32_t>(i));
  }
}

void ScannIndex::SetUpFastScan(const uint8_t* packed) {
  if (config_.adc == AdcMode::kFastScan) {
    USP_CHECK(quantizer_.codebook_size() <= 16);
  }
  if (config_.adc == AdcMode::kFloat || quantizer_.codebook_size() > 16) {
    return;
  }
  const size_t m = quantizer_.num_subspaces();
  // Per-bucket block offsets: each bucket's members pack contiguously so a
  // probe scans whole blocks (one implicit all-rows bucket without a
  // partition).
  bucket_block_offsets_.clear();
  if (partitioner_ == nullptr) {
    bucket_block_offsets_ = {
        0, (base_.rows() + kPq4BlockSize - 1) / kPq4BlockSize};
  } else {
    bucket_block_offsets_.reserve(buckets_.size() + 1);
    size_t off = 0;
    for (const auto& bucket : buckets_) {
      bucket_block_offsets_.push_back(off);
      off += (bucket.size() + kPq4BlockSize - 1) / kPq4BlockSize;
    }
    bucket_block_offsets_.push_back(off);
  }
  if (packed != nullptr) {
    packed_ = packed;  // external (mmap'd) blocks; loader validated the size
    return;
  }
  owned_packed_.assign(bucket_block_offsets_.back() * 16 * m, 0);
  if (partitioner_ == nullptr) {
    PackedCodes pc = PackCodes4(codes_, base_.rows(), m);
    owned_packed_ = std::move(pc.data);
  } else {
    for (size_t b = 0; b < buckets_.size(); ++b) {
      if (buckets_[b].empty()) continue;
      PackedCodes pc = PackCodes4(codes_, buckets_[b], m);
      std::memcpy(owned_packed_.data() + bucket_block_offsets_[b] * 16 * m,
                  pc.data.data(), pc.data.size());
    }
  }
  packed_ = owned_packed_.data();
}

size_t ScannIndex::PackedBytes() const {
  if (packed_ == nullptr) return 0;
  return bucket_block_offsets_.back() * 16 * quantizer_.num_subspaces();
}

std::vector<uint32_t> ScannIndex::Assignments() const {
  std::vector<uint32_t> assignments;
  if (buckets_.empty()) return assignments;
  assignments.resize(base_.rows());
  for (size_t b = 0; b < buckets_.size(); ++b) {
    for (uint32_t id : buckets_[b]) {
      assignments[id] = static_cast<uint32_t>(b);
    }
  }
  return assignments;
}

size_t ScannIndex::EstimateCandidates(size_t budget) const {
  if (buckets_.empty()) return size();
  const size_t probes = std::min(std::max<size_t>(budget, 1), buckets_.size());
  return (size() * probes + buckets_.size() - 1) / buckets_.size();
}

std::vector<float> ScannIndex::BuildMetricTable(
    const float* prepared_query) const {
  if (metric_ == Metric::kSquaredL2) {
    return quantizer_.BuildAdcTable(prepared_query);
  }
  // IP/cosine minimize the negated dot-product sum; the exact rerank restores
  // the metric's true distances on the shortlist.
  std::vector<float> table = quantizer_.BuildDotTable(prepared_query);
  for (float& v : table) v = -v;
  return table;
}

BatchSearchResult ScannIndex::SearchBatch(const SearchRequest& request) const {
  // Planner hook: filtered requests may reroute away from the ADC pipeline
  // entirely (index/query_planner.h) — e.g. a sparse selector is cheaper to
  // satisfy by exact brute force over the allowed rows than by probing.
  if (auto planned = MaybeReroute(*this, request)) return std::move(*planned);
  const MatrixView queries = request.queries;
  const SearchOptions& options = request.options;
  const size_t k = options.k;
  const size_t nq = queries.rows();
  const size_t m_sub = quantizer_.num_subspaces();
  BatchSearchResult result;
  result.Prepare(nq, options);

  Matrix scores;
  if (partitioner_ != nullptr) {
    scores = partitioner_->ScoreBins(queries);
  }

  // Fast-scan engages for unfiltered requests when the packed blocks exist;
  // filtered requests prune candidates below block granularity and keep the
  // float per-code path (and its filtered bit-identity contracts).
  const bool fast_scan = packed_ != nullptr && options.filter == nullptr;
  const QuantKernels& kq = GetQuantKernels();

  ParallelFor(nq, 4, options.num_threads, [&](size_t begin, size_t end,
                                              size_t) {
    std::vector<uint32_t> candidates;
    std::vector<uint32_t> shortlist;
    std::vector<uint32_t> order;
    std::vector<uint16_t> sums;
    std::vector<float> query_scratch;
    for (size_t q = begin; q < end; ++q) {
      const float* query = queries.Row(q);
      const float* prepared = dist_.PrepareQuery(query, &query_scratch);

      // Probed-bucket order (shared by both ADC modes).
      size_t probes = 0;
      if (partitioner_ != nullptr) {
        probes = std::min(options.budget, buckets_.size());
        const float* s = scores.Row(q);
        order.resize(buckets_.size());
        std::iota(order.begin(), order.end(), 0u);
        std::partial_sort(order.begin(), order.begin() + probes, order.end(),
                          [&](uint32_t a, uint32_t b) {
                            if (s[a] != s[b]) return s[a] > s[b];
                            return a < b;
                          });
      }

      TopK approx(std::max(k, config_.rerank_budget));
      size_t scored = 0;

      if (fast_scan) {
        // Quantize the per-query float table once, then score whole packed
        // buckets through the pq4 shuffle kernel.
        const std::vector<float> table = BuildMetricTable(prepared);
        const QuantizedLut qlut = QuantizeAdcTable(table.data(), m_sub,
                                                   quantizer_.codebook_size());
        const auto scan_group = [&](size_t first_block, const uint32_t* ids,
                                    size_t count) {
          const size_t blocks = (count + kPq4BlockSize - 1) / kPq4BlockSize;
          sums.resize(blocks * kPq4BlockSize);
          kq.pq4_scan(packed_ + first_block * m_sub * 16, qlut.lut.data(),
                      m_sub, blocks, sums.data());
          for (size_t t = 0; t < count; ++t) {
            approx.Push(qlut.Score(sums[t]),
                        ids != nullptr ? ids[t] : static_cast<uint32_t>(t));
          }
          scored += count;
        };
        if (partitioner_ == nullptr) {
          scan_group(0, nullptr, base_.rows());
        } else {
          for (size_t p = 0; p < probes; ++p) {
            const auto& bucket = buckets_[order[p]];
            if (bucket.empty()) continue;
            scan_group(bucket_block_offsets_[order[p]], bucket.data(),
                       bucket.size());
          }
        }
        result.candidate_counts[q] = static_cast<uint32_t>(scored);
        if (result.stats) {
          result.stats->candidates_scored[q] = static_cast<uint32_t>(scored);
          result.stats->bins_probed[q] = static_cast<uint32_t>(probes);
        }
      } else {
        // Float path: candidate generation, selector pushdown, per-code walk.
        candidates.clear();
        if (partitioner_ == nullptr) {
          candidates.resize(base_.rows());
          std::iota(candidates.begin(), candidates.end(), 0u);
        } else {
          for (size_t p = 0; p < probes; ++p) {
            const auto& bucket = buckets_[order[p]];
            candidates.insert(candidates.end(), bucket.begin(), bucket.end());
          }
        }

        // Selector pushdown ahead of the ADC stage: disallowed rows cost no
        // table lookups and cannot crowd allowed rows out of the shortlist.
        size_t dropped = 0;
        if (options.filter != nullptr) {
          const size_t before = candidates.size();
          candidates.erase(
              std::remove_if(candidates.begin(), candidates.end(),
                             [&](uint32_t id) {
                               return !options.filter->is_member(id);
                             }),
              candidates.end());
          dropped = before - candidates.size();
        }
        result.candidate_counts[q] = static_cast<uint32_t>(candidates.size());
        if (result.stats) {
          result.stats->candidates_scored[q] =
              static_cast<uint32_t>(candidates.size());
          result.stats->bins_probed[q] = static_cast<uint32_t>(probes);
          result.stats->filtered_out[q] = static_cast<uint32_t>(dropped);
        }

        const std::vector<float> table = BuildMetricTable(prepared);
        for (uint32_t id : candidates) {
          approx.Push(quantizer_.AdcDistance(table, codes_ + id * m_sub), id);
        }
      }

      auto top_approx = approx.TakeSorted();
      shortlist.clear();
      for (const auto& cand : top_approx) shortlist.push_back(cand.id);

      // Exact re-rank of the shortlist through the batched gather-by-id
      // kernels (already filtered in the float stage; fast-scan requests are
      // unfiltered by construction).
      result.SetRow(q, RerankCandidatesScored(dist_, query, shortlist, k));
    }
  });
  return result;
}

RadiusResult ScannIndex::RadiusSearchBatch(const RadiusRequest& request) const {
  const MatrixView queries = request.queries;
  Matrix scores;
  if (partitioner_ != nullptr) {
    scores = partitioner_->ScoreBins(queries);
  }
  const size_t probes =
      partitioner_ == nullptr
          ? 0
          : std::min(request.options.budget, buckets_.size());

  return CollectRadiusRows(
      queries.rows(), request.options, [&](size_t q, RadiusResult* result) {
        std::vector<uint32_t> candidates;
        if (partitioner_ == nullptr) {
          candidates.resize(base_.rows());
          std::iota(candidates.begin(), candidates.end(), 0u);
        } else {
          // Same probe order as SearchBatch: bins by descending score,
          // ties by bin id.
          const float* s = scores.Row(q);
          std::vector<uint32_t> order(buckets_.size());
          std::iota(order.begin(), order.end(), 0u);
          std::partial_sort(order.begin(), order.begin() + probes, order.end(),
                            [&](uint32_t a, uint32_t b) {
                              if (s[a] != s[b]) return s[a] > s[b];
                              return a < b;
                            });
          for (size_t p = 0; p < probes; ++p) {
            const auto& bucket = buckets_[order[p]];
            candidates.insert(candidates.end(), bucket.begin(), bucket.end());
          }
        }
        RadiusRowCounts counts;
        auto hits = RangeFilterCandidates(dist_, queries.Row(q), &candidates,
                                          request.radius,
                                          request.options.filter, &counts);
        result->candidate_counts[q] = counts.scored;
        if (result->stats) {
          result->stats->candidates_scored[q] = counts.scored;
          result->stats->bins_probed[q] = static_cast<uint32_t>(probes);
          result->stats->filtered_out[q] = counts.filtered_out;
        }
        return hits;
      });
}

}  // namespace usp
