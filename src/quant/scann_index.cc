#include "quant/scann_index.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "index/query_planner.h"
#include "knn/brute_force.h"
#include "knn/top_k.h"
#include "util/thread_pool.h"

namespace usp {

ScannIndex::ScannIndex(const Matrix* base, const BinScorer* partitioner,
                       ProductQuantizer quantizer, ScannIndexConfig config)
    : base_(*base),
      partitioner_(partitioner),
      dist_(MatrixView(*base), Metric::kSquaredL2),
      quantizer_(std::move(quantizer)),
      config_(config) {
  owned_codes_ = quantizer_.Encode(*base);
  codes_ = owned_codes_.data();
  if (partitioner_ != nullptr) {
    BuildBuckets(partitioner_->AssignBins(*base));
  }
}

ScannIndex::ScannIndex(MatrixView base, const BinScorer* partitioner,
                       ProductQuantizer quantizer, ScannIndexConfig config,
                       const uint8_t* codes,
                       const std::vector<uint32_t>& assignments)
    : base_(base),
      partitioner_(partitioner),
      dist_(base, Metric::kSquaredL2),
      quantizer_(std::move(quantizer)),
      config_(config),
      codes_(codes) {
  USP_CHECK(codes_ != nullptr);
  if (partitioner_ != nullptr) {
    USP_CHECK(assignments.size() == base_.rows());
    BuildBuckets(assignments);
  }
}

void ScannIndex::BuildBuckets(const std::vector<uint32_t>& assignments) {
  buckets_.resize(partitioner_->num_bins());
  for (size_t i = 0; i < assignments.size(); ++i) {
    USP_CHECK(assignments[i] < buckets_.size());
    buckets_[assignments[i]].push_back(static_cast<uint32_t>(i));
  }
}

std::vector<uint32_t> ScannIndex::Assignments() const {
  std::vector<uint32_t> assignments;
  if (buckets_.empty()) return assignments;
  assignments.resize(base_.rows());
  for (size_t b = 0; b < buckets_.size(); ++b) {
    for (uint32_t id : buckets_[b]) {
      assignments[id] = static_cast<uint32_t>(b);
    }
  }
  return assignments;
}

size_t ScannIndex::EstimateCandidates(size_t budget) const {
  if (buckets_.empty()) return size();
  const size_t probes = std::min(std::max<size_t>(budget, 1), buckets_.size());
  return (size() * probes + buckets_.size() - 1) / buckets_.size();
}

BatchSearchResult ScannIndex::SearchBatch(const SearchRequest& request) const {
  // Planner hook: filtered requests may reroute away from the ADC pipeline
  // entirely (index/query_planner.h) — e.g. a sparse selector is cheaper to
  // satisfy by exact brute force over the allowed rows than by probing.
  if (auto planned = MaybeReroute(*this, request)) return std::move(*planned);
  const MatrixView queries = request.queries;
  const SearchOptions& options = request.options;
  const size_t k = options.k;
  const size_t nq = queries.rows();
  const size_t m_sub = quantizer_.num_subspaces();
  BatchSearchResult result;
  result.Prepare(nq, options);

  Matrix scores;
  if (partitioner_ != nullptr) {
    scores = partitioner_->ScoreBins(queries);
  }

  ParallelFor(nq, 4, options.num_threads, [&](size_t begin, size_t end,
                                              size_t) {
    std::vector<uint32_t> candidates;
    std::vector<uint32_t> shortlist;
    for (size_t q = begin; q < end; ++q) {
      const float* query = queries.Row(q);
      // Stage 1: candidate generation.
      candidates.clear();
      size_t probes = 0;
      if (partitioner_ == nullptr) {
        candidates.resize(base_.rows());
        std::iota(candidates.begin(), candidates.end(), 0u);
      } else {
        probes = std::min(options.budget, buckets_.size());
        const float* s = scores.Row(q);
        std::vector<uint32_t> order(buckets_.size());
        std::iota(order.begin(), order.end(), 0u);
        std::partial_sort(order.begin(), order.begin() + probes, order.end(),
                          [&](uint32_t a, uint32_t b) {
                            if (s[a] != s[b]) return s[a] > s[b];
                            return a < b;
                          });
        for (size_t p = 0; p < probes; ++p) {
          const auto& bucket = buckets_[order[p]];
          candidates.insert(candidates.end(), bucket.begin(), bucket.end());
        }
      }

      // Selector pushdown ahead of the ADC stage: disallowed rows cost no
      // table lookups and cannot crowd allowed rows out of the shortlist.
      size_t dropped = 0;
      if (options.filter != nullptr) {
        const size_t before = candidates.size();
        candidates.erase(
            std::remove_if(candidates.begin(), candidates.end(),
                           [&](uint32_t id) {
                             return !options.filter->is_member(id);
                           }),
            candidates.end());
        dropped = before - candidates.size();
      }
      result.candidate_counts[q] = static_cast<uint32_t>(candidates.size());
      if (result.stats) {
        result.stats->candidates_scored[q] =
            static_cast<uint32_t>(candidates.size());
        result.stats->bins_probed[q] = static_cast<uint32_t>(probes);
        result.stats->filtered_out[q] = static_cast<uint32_t>(dropped);
      }

      // Stage 2: ADC scoring, keep the best rerank_budget approximate hits.
      const std::vector<float> table = quantizer_.BuildAdcTable(query);
      TopK approx(std::max(k, config_.rerank_budget));
      for (uint32_t id : candidates) {
        approx.Push(quantizer_.AdcDistance(table, codes_ + id * m_sub), id);
      }
      auto top_approx = approx.TakeSorted();
      shortlist.clear();
      for (const auto& cand : top_approx) shortlist.push_back(cand.id);

      // Stage 3: exact re-rank of the shortlist through the batched
      // gather-by-id kernels (already filtered in stage 1).
      result.SetRow(q, RerankCandidatesScored(dist_, query, shortlist, k));
    }
  });
  return result;
}

}  // namespace usp
