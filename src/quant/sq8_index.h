// SQ8: int8 scalar quantization as a standalone index. Every dimension gets
// an affine code range (per-dimension min/max over the base, 255 steps);
// vectors compress 4x to one byte per dimension, and the whole code matrix is
// scanned with the int8 kernels of dist/quant_kernels.h (widening
// madd_epi16 sums — exact integers, so the scalar mirror is bit-identical).
//
// Search is a two-stage exhaustive scan: the quantized code-space distance
// ranks every row (L2: sum of squared code differences; IP/cosine: negated
// code dot product), the best max(k, rerank_budget) proxies form a
// shortlist, and exact fp32 re-rank under the index metric produces the
// final neighbors. The code-space proxy equals the true metric up to
// per-dimension scale weighting, so with rerank_budget >= size() the result
// is exact brute force regardless of quantization; tests/sq8_test.cc pins
// that and the recall floor at practical budgets.
//
// Under kCosine the codes quantize the unit-normalized base (queries are
// normalized by DistanceComputer::PrepareQuery before encoding), matching
// the convention of the other metric-aware index types.
#ifndef USP_QUANT_SQ8_INDEX_H_
#define USP_QUANT_SQ8_INDEX_H_

#include <cstdint>
#include <vector>

#include "dist/distance_computer.h"
#include "index/index.h"
#include "tensor/matrix.h"

namespace usp {

/// Sq8Index knobs.
struct Sq8IndexConfig {
  Metric metric = Metric::kSquaredL2;
  /// Exact-distance re-ranks per query; >= size() makes results exact.
  size_t rerank_budget = 100;
};

/// Immutable int8 scalar-quantized index. The base matrix must outlive the
/// index (exact rerank gathers fp32 rows from it).
class Sq8Index : public Index {
 public:
  /// Trains the per-dimension ranges on `base` and encodes it.
  explicit Sq8Index(const Matrix* base, Sq8IndexConfig config = {});

  /// Rehydrates from deserialized state: `mins`/`scales` are the per-dim
  /// affine parameters and `codes` the (n x dim) uint8 code matrix (external
  /// storage, e.g. an mmap'd container section, which must outlive the
  /// index).
  Sq8Index(MatrixView base, Sq8IndexConfig config, std::vector<float> mins,
           std::vector<float> scales, const uint8_t* codes);

  /// k-NN search: quantized-domain scan of every row (options.budget is
  /// irrelevant — the scan is exhaustive), exact re-rank of the best
  /// rerank_budget proxies. An options.filter drops rows before the
  /// quantized scoring, so disallowed rows cost no kernel work; at
  /// rerank_budget >= the allowed count the result is exact brute force over
  /// the allowed subset. `options.num_threads` caps per-query sharding;
  /// results are identical at every setting.
  using Index::SearchBatch;
  BatchSearchResult SearchBatch(const SearchRequest& request) const override;

  /// Radius search: exact exhaustive scan of the fp32 base (the quantized
  /// proxy stage is skipped — a range cut needs true distances, and the scan
  /// is exhaustive either way), so the result is bit-identical to
  /// BruteForceRadius at any budget, which is in fact how it is implemented.
  RadiusResult RadiusSearchBatch(const RadiusRequest& request) const override;

  size_t dim() const override { return base_.cols(); }
  size_t size() const override { return base_.rows(); }
  Metric metric() const override { return config_.metric; }
  IndexType type() const override { return IndexType::kSq8; }
  MatrixView base_view() const override { return base_; }

  /// Planner cost input: the scan is always exhaustive.
  size_t EstimateCandidates(size_t budget) const override {
    (void)budget;
    return size();
  }

  // Serialization accessors.
  const Sq8IndexConfig& config() const { return config_; }
  const std::vector<float>& mins() const { return mins_; }
  const std::vector<float>& scales() const { return scales_; }
  const uint8_t* codes() const { return codes_; }

  /// Quantizes one vector (already metric-prepared, i.e. normalized under
  /// kCosine) into dim() code bytes, clamping to the trained ranges.
  void EncodeVector(const float* x, uint8_t* out) const;

  /// Reconstructs the range midpoint of a code (tests / diagnostics).
  void DecodeVector(const uint8_t* code, float* out) const;

 private:
  void TrainRanges(MatrixView rows);

  MatrixView base_;
  Sq8IndexConfig config_;
  DistanceComputer dist_;  ///< exact rerank under config_.metric
  std::vector<float> mins_;    ///< per-dim range start
  std::vector<float> scales_;  ///< per-dim step: (max - min) / 255, 0 if flat
  std::vector<uint8_t> owned_codes_;  ///< empty when codes are external
  const uint8_t* codes_ = nullptr;    ///< (n x dim) uint8 codes
};

}  // namespace usp

#endif  // USP_QUANT_SQ8_INDEX_H_
