#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <numeric>

#include "util/thread_pool.h"

namespace usp {

namespace {
constexpr size_t kRowGrain = 16;  // min rows per parallel chunk
}  // namespace

void Gemm(const Matrix& a, const Matrix& b, Matrix* c) {
  USP_CHECK(a.cols() == b.rows());
  USP_CHECK(c->rows() == a.rows() && c->cols() == b.cols());
  const size_t n = a.rows(), k = a.cols(), m = b.cols();
  ParallelFor(n, kRowGrain, [&](size_t begin, size_t end, size_t) {
    for (size_t i = begin; i < end; ++i) {
      float* ci = c->Row(i);
      std::memset(ci, 0, m * sizeof(float));
      const float* ai = a.Row(i);
      for (size_t p = 0; p < k; ++p) {
        const float aip = ai[p];
        if (aip == 0.0f) continue;
        const float* bp = b.Row(p);
        for (size_t j = 0; j < m; ++j) ci[j] += aip * bp[j];
      }
    }
  });
}

void GemmTransposedB(const Matrix& a, const Matrix& b, Matrix* c) {
  USP_CHECK(a.cols() == b.cols());
  USP_CHECK(c->rows() == a.rows() && c->cols() == b.rows());
  const size_t n = a.rows(), k = a.cols(), m = b.rows();
  ParallelFor(n, kRowGrain, [&](size_t begin, size_t end, size_t) {
    for (size_t i = begin; i < end; ++i) {
      const float* ai = a.Row(i);
      float* ci = c->Row(i);
      for (size_t j = 0; j < m; ++j) ci[j] = Dot(ai, b.Row(j), k);
    }
  });
}

void GemmTransposedA(const Matrix& a, const Matrix& b, Matrix* c) {
  USP_CHECK(a.rows() == b.rows());
  USP_CHECK(c->rows() == a.cols() && c->cols() == b.cols());
  const size_t k = a.rows(), n = a.cols(), m = b.cols();
  // Parallelize over output rows (columns of A): each worker owns disjoint
  // rows of C, so no synchronization is needed.
  ParallelFor(n, kRowGrain, [&](size_t begin, size_t end, size_t) {
    for (size_t i = begin; i < end; ++i) {
      float* ci = c->Row(i);
      std::memset(ci, 0, m * sizeof(float));
      for (size_t p = 0; p < k; ++p) {
        const float api = a(p, i);
        if (api == 0.0f) continue;
        const float* bp = b.Row(p);
        for (size_t j = 0; j < m; ++j) ci[j] += api * bp[j];
      }
    }
  });
}

void RowSquaredNorms(const Matrix& m, std::vector<float>* out) {
  out->resize(m.rows());
  ParallelFor(m.rows(), 64, [&](size_t begin, size_t end, size_t) {
    for (size_t i = begin; i < end; ++i) {
      (*out)[i] = Dot(m.Row(i), m.Row(i), m.cols());
    }
  });
}

void PairwiseSquaredDistances(const Matrix& a, const Matrix& b, Matrix* dist) {
  USP_CHECK(a.cols() == b.cols());
  USP_CHECK(dist->rows() == a.rows() && dist->cols() == b.rows());
  std::vector<float> a_norms, b_norms;
  RowSquaredNorms(a, &a_norms);
  RowSquaredNorms(b, &b_norms);
  GemmTransposedB(a, b, dist);
  ParallelFor(a.rows(), kRowGrain, [&](size_t begin, size_t end, size_t) {
    for (size_t i = begin; i < end; ++i) {
      float* row = dist->Row(i);
      const float an = a_norms[i];
      for (size_t j = 0; j < b.rows(); ++j) {
        row[j] = std::max(0.0f, an + b_norms[j] - 2.0f * row[j]);
      }
    }
  });
}

float SquaredDistance(const float* x, const float* y, size_t d) {
  float acc = 0.0f;
  for (size_t i = 0; i < d; ++i) {
    const float diff = x[i] - y[i];
    acc += diff * diff;
  }
  return acc;
}

float Dot(const float* x, const float* y, size_t d) {
  float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
  size_t i = 0;
  for (; i + 4 <= d; i += 4) {
    acc0 += x[i] * y[i];
    acc1 += x[i + 1] * y[i + 1];
    acc2 += x[i + 2] * y[i + 2];
    acc3 += x[i + 3] * y[i + 3];
  }
  for (; i < d; ++i) acc0 += x[i] * y[i];
  return acc0 + acc1 + acc2 + acc3;
}

void SoftmaxRows(Matrix* m) {
  ParallelFor(m->rows(), 64, [&](size_t begin, size_t end, size_t) {
    for (size_t i = begin; i < end; ++i) {
      float* row = m->Row(i);
      const size_t c = m->cols();
      float mx = row[0];
      for (size_t j = 1; j < c; ++j) mx = std::max(mx, row[j]);
      float sum = 0.0f;
      for (size_t j = 0; j < c; ++j) {
        row[j] = std::exp(row[j] - mx);
        sum += row[j];
      }
      const float inv = 1.0f / sum;
      for (size_t j = 0; j < c; ++j) row[j] *= inv;
    }
  });
}

void LogSoftmaxRows(const Matrix& in, Matrix* out) {
  USP_CHECK(in.rows() == out->rows() && in.cols() == out->cols());
  ParallelFor(in.rows(), 64, [&](size_t begin, size_t end, size_t) {
    for (size_t i = begin; i < end; ++i) {
      const float* src = in.Row(i);
      float* dst = out->Row(i);
      const size_t c = in.cols();
      float mx = src[0];
      for (size_t j = 1; j < c; ++j) mx = std::max(mx, src[j]);
      float sum = 0.0f;
      for (size_t j = 0; j < c; ++j) sum += std::exp(src[j] - mx);
      const float log_sum = std::log(sum) + mx;
      for (size_t j = 0; j < c; ++j) dst[j] = src[j] - log_sum;
    }
  });
}

std::vector<uint32_t> ArgmaxRows(const Matrix& m) {
  std::vector<uint32_t> out(m.rows());
  ParallelFor(m.rows(), 64, [&](size_t begin, size_t end, size_t) {
    for (size_t i = begin; i < end; ++i) {
      const float* row = m.Row(i);
      uint32_t best = 0;
      for (size_t j = 1; j < m.cols(); ++j) {
        if (row[j] > row[best]) best = static_cast<uint32_t>(j);
      }
      out[i] = best;
    }
  });
  return out;
}

std::vector<uint8_t> ColumnTopKMask(const Matrix& m, size_t k) {
  const size_t rows = m.rows(), cols = m.cols();
  std::vector<uint8_t> mask(rows * cols, 0);
  k = std::min(k, rows);
  if (k == 0) return mask;
  ParallelFor(cols, 1, [&](size_t begin, size_t end, size_t) {
    std::vector<uint32_t> order(rows);
    for (size_t j = begin; j < end; ++j) {
      std::iota(order.begin(), order.end(), 0u);
      std::nth_element(order.begin(), order.begin() + (k - 1), order.end(),
                       [&](uint32_t a, uint32_t b) {
                         const float va = m(a, j), vb = m(b, j);
                         if (va != vb) return va > vb;
                         return a < b;  // deterministic tie-break
                       });
      for (size_t r = 0; r < k; ++r) mask[order[r] * cols + j] = 1;
    }
  });
  return mask;
}

double MaskedSum(const Matrix& m, const std::vector<uint8_t>& mask) {
  USP_CHECK(mask.size() == m.size());
  double total = 0.0;
  const float* data = m.data();
  for (size_t i = 0; i < m.size(); ++i) {
    if (mask[i]) total += data[i];
  }
  return total;
}

void Axpy(float alpha, const Matrix& x, Matrix* y) {
  USP_CHECK(x.rows() == y->rows() && x.cols() == y->cols());
  float* yd = y->data();
  const float* xd = x.data();
  for (size_t i = 0; i < x.size(); ++i) yd[i] += alpha * xd[i];
}

double Mean(const Matrix& m) {
  if (m.size() == 0) return 0.0;
  double sum = std::accumulate(m.data(), m.data() + m.size(), 0.0);
  return sum / static_cast<double>(m.size());
}

}  // namespace usp
