#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <numeric>

#include "dist/distance_kernels.h"
#include "util/thread_pool.h"

namespace usp {

namespace {
constexpr size_t kRowGrain = 16;  // min rows per parallel chunk
}  // namespace

void Gemm(MatrixView a, const Matrix& b, Matrix* c) {
  USP_CHECK(a.cols() == b.rows());
  USP_CHECK(c->rows() == a.rows() && c->cols() == b.cols());
  const size_t n = a.rows(), k = a.cols(), m = b.cols();
  const DistanceKernels& kd = GetDistanceKernels();
  ParallelFor(n, kRowGrain, [&](size_t begin, size_t end, size_t) {
    for (size_t i = begin; i < end; ++i) {
      float* ci = c->Row(i);
      std::memset(ci, 0, m * sizeof(float));
      const float* ai = a.Row(i);
      for (size_t p = 0; p < k; ++p) kd.axpy(ai[p], b.Row(p), ci, m);
    }
  });
}

void GemmTransposedB(MatrixView a, const Matrix& b, Matrix* c) {
  USP_CHECK(a.cols() == b.cols());
  USP_CHECK(c->rows() == a.rows() && c->cols() == b.rows());
  const size_t n = a.rows(), k = a.cols(), m = b.rows();
  const DistanceKernels& kd = GetDistanceKernels();
  ParallelFor(n, kRowGrain, [&](size_t begin, size_t end, size_t) {
    for (size_t i = begin; i < end; ++i) {
      kd.score_block_dot(a.Row(i), b.data(), m, k, c->Row(i));
    }
  });
}

void GemmTransposedA(const Matrix& a, const Matrix& b, Matrix* c) {
  USP_CHECK(a.rows() == b.rows());
  USP_CHECK(c->rows() == a.cols() && c->cols() == b.cols());
  const size_t k = a.rows(), n = a.cols(), m = b.cols();
  const DistanceKernels& kd = GetDistanceKernels();
  // Parallelize over output rows (columns of A): each worker owns disjoint
  // rows of C, so no synchronization is needed.
  ParallelFor(n, kRowGrain, [&](size_t begin, size_t end, size_t) {
    for (size_t i = begin; i < end; ++i) {
      float* ci = c->Row(i);
      std::memset(ci, 0, m * sizeof(float));
      for (size_t p = 0; p < k; ++p) kd.axpy(a(p, i), b.Row(p), ci, m);
    }
  });
}

void RowSquaredNorms(MatrixView m, std::vector<float>* out) {
  out->resize(m.rows());
  const DistanceKernels& kd = GetDistanceKernels();
  ParallelFor(m.rows(), 64, [&](size_t begin, size_t end, size_t) {
    for (size_t i = begin; i < end; ++i) {
      (*out)[i] = kd.dot(m.Row(i), m.Row(i), m.cols());
    }
  });
}

void NormalizeRows(Matrix* m) {
  const size_t d = m->cols();
  const DistanceKernels& kd = GetDistanceKernels();
  ParallelFor(m->rows(), 64, [&](size_t begin, size_t end, size_t) {
    for (size_t i = begin; i < end; ++i) {
      float* row = m->Row(i);
      const float norm = std::sqrt(kd.dot(row, row, d));
      if (norm > 0.0f) {
        const float inv = 1.0f / norm;
        for (size_t j = 0; j < d; ++j) row[j] *= inv;
      }
    }
  });
}

void PairwiseSquaredDistances(MatrixView a, const Matrix& b, Matrix* dist) {
  USP_CHECK(a.cols() == b.cols());
  USP_CHECK(dist->rows() == a.rows() && dist->cols() == b.rows());
  std::vector<float> a_norms, b_norms;
  RowSquaredNorms(a, &a_norms);
  RowSquaredNorms(b, &b_norms);
  GemmTransposedB(a, b, dist);
  ParallelFor(a.rows(), kRowGrain, [&](size_t begin, size_t end, size_t) {
    for (size_t i = begin; i < end; ++i) {
      float* row = dist->Row(i);
      const float an = a_norms[i];
      for (size_t j = 0; j < b.rows(); ++j) {
        row[j] = std::max(0.0f, an + b_norms[j] - 2.0f * row[j]);
      }
    }
  });
}

float SquaredDistance(const float* x, const float* y, size_t d) {
  return GetDistanceKernels().squared_l2(x, y, d);
}

float Dot(const float* x, const float* y, size_t d) {
  return GetDistanceKernels().dot(x, y, d);
}

void SoftmaxRows(Matrix* m) {
  ParallelFor(m->rows(), 64, [&](size_t begin, size_t end, size_t) {
    for (size_t i = begin; i < end; ++i) {
      float* row = m->Row(i);
      const size_t c = m->cols();
      float mx = row[0];
      for (size_t j = 1; j < c; ++j) mx = std::max(mx, row[j]);
      float sum = 0.0f;
      for (size_t j = 0; j < c; ++j) {
        row[j] = std::exp(row[j] - mx);
        sum += row[j];
      }
      const float inv = 1.0f / sum;
      for (size_t j = 0; j < c; ++j) row[j] *= inv;
    }
  });
}

void LogSoftmaxRows(const Matrix& in, Matrix* out) {
  USP_CHECK(in.rows() == out->rows() && in.cols() == out->cols());
  ParallelFor(in.rows(), 64, [&](size_t begin, size_t end, size_t) {
    for (size_t i = begin; i < end; ++i) {
      const float* src = in.Row(i);
      float* dst = out->Row(i);
      const size_t c = in.cols();
      float mx = src[0];
      for (size_t j = 1; j < c; ++j) mx = std::max(mx, src[j]);
      float sum = 0.0f;
      for (size_t j = 0; j < c; ++j) sum += std::exp(src[j] - mx);
      const float log_sum = std::log(sum) + mx;
      for (size_t j = 0; j < c; ++j) dst[j] = src[j] - log_sum;
    }
  });
}

std::vector<uint32_t> ArgmaxRows(const Matrix& m) {
  std::vector<uint32_t> out(m.rows());
  ParallelFor(m.rows(), 64, [&](size_t begin, size_t end, size_t) {
    for (size_t i = begin; i < end; ++i) {
      const float* row = m.Row(i);
      uint32_t best = 0;
      for (size_t j = 1; j < m.cols(); ++j) {
        if (row[j] > row[best]) best = static_cast<uint32_t>(j);
      }
      out[i] = best;
    }
  });
  return out;
}

std::vector<uint8_t> ColumnTopKMask(const Matrix& m, size_t k) {
  const size_t rows = m.rows(), cols = m.cols();
  std::vector<uint8_t> mask(rows * cols, 0);
  k = std::min(k, rows);
  if (k == 0) return mask;
  ParallelFor(cols, 1, [&](size_t begin, size_t end, size_t) {
    std::vector<uint32_t> order(rows);
    for (size_t j = begin; j < end; ++j) {
      std::iota(order.begin(), order.end(), 0u);
      std::nth_element(order.begin(), order.begin() + (k - 1), order.end(),
                       [&](uint32_t a, uint32_t b) {
                         const float va = m(a, j), vb = m(b, j);
                         if (va != vb) return va > vb;
                         return a < b;  // deterministic tie-break
                       });
      for (size_t r = 0; r < k; ++r) mask[order[r] * cols + j] = 1;
    }
  });
  return mask;
}

double MaskedSum(const Matrix& m, const std::vector<uint8_t>& mask) {
  USP_CHECK(mask.size() == m.size());
  double total = 0.0;
  const float* data = m.data();
  for (size_t i = 0; i < m.size(); ++i) {
    if (mask[i]) total += data[i];
  }
  return total;
}

void Axpy(float alpha, const Matrix& x, Matrix* y) {
  USP_CHECK(x.rows() == y->rows() && x.cols() == y->cols());
  float* yd = y->data();
  const float* xd = x.data();
  for (size_t i = 0; i < x.size(); ++i) yd[i] += alpha * xd[i];
}

double Mean(const Matrix& m) {
  if (m.size() == 0) return 0.0;
  double sum = std::accumulate(m.data(), m.data() + m.size(), 0.0);
  return sum / static_cast<double>(m.size());
}

}  // namespace usp
