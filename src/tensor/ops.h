// Parallel kernels on Matrix: GEMM, distances, row softmax, column top-k.
// These are the hot paths for both training (nn/) and search (knn/, quant/).
#ifndef USP_TENSOR_OPS_H_
#define USP_TENSOR_OPS_H_

#include <cstdint>
#include <vector>

#include "tensor/matrix.h"

namespace usp {

/// C = A * B. A is (n x k), B is (k x m), C is (n x m). Parallel over rows,
/// blocked over k for cache friendliness. The A operand is a view so query
/// batches (including zero-copy single-query wraps and mmap'd storage) feed
/// the scoring paths without staging through an owned Matrix.
void Gemm(MatrixView a, const Matrix& b, Matrix* c);

/// C = A * B^T. A is (n x k), B is (m x k), C is (n x m). This layout (both
/// operands row-major over the shared dimension) is the fast path for distance
/// computations and linear layers.
void GemmTransposedB(MatrixView a, const Matrix& b, Matrix* c);

/// C = A^T * B. A is (k x n), B is (k x m), C is (n x m). Used by backprop for
/// weight gradients.
void GemmTransposedA(const Matrix& a, const Matrix& b, Matrix* c);

/// out[i] = ||row i||^2.
void RowSquaredNorms(MatrixView m, std::vector<float>* out);

/// Scales every row to unit L2 norm in place (zero rows stay zero). Used for
/// cosine-metric preprocessing and spectral embeddings.
void NormalizeRows(Matrix* m);

/// dist(i, j) = ||a_i - b_j||^2, computed as |a|^2 + |b|^2 - 2 a.b via GEMM.
/// Clamped at 0 to guard against floating-point cancellation.
void PairwiseSquaredDistances(MatrixView a, const Matrix& b, Matrix* dist);

/// Exact squared Euclidean distance between two d-vectors. Thin wrapper over
/// the dispatched kernel set (src/dist/); hot loops should hoist
/// GetDistanceKernels() and call the kernels directly.
float SquaredDistance(const float* x, const float* y, size_t d);

/// Dot product of two d-vectors (dispatched kernel wrapper, see above).
float Dot(const float* x, const float* y, size_t d);

/// In-place numerically stable softmax applied to each row.
void SoftmaxRows(Matrix* m);

/// Writes log-softmax of each row of `in` into `out` (may alias `in`).
void LogSoftmaxRows(const Matrix& in, Matrix* out);

/// argmax of each row.
std::vector<uint32_t> ArgmaxRows(const Matrix& m);

/// Boolean mask (same shape as `m`) marking, per column, the `k` largest
/// entries. Ties are broken by lower row index. This is the window `w` of
/// Eq. 12 in the paper; the balance-loss gradient flows only through marked
/// entries.
std::vector<uint8_t> ColumnTopKMask(const Matrix& m, size_t k);

/// Sum of the masked entries (the paper's sum over the window `w`, Eq. 13).
double MaskedSum(const Matrix& m, const std::vector<uint8_t>& mask);

/// y += alpha * x, elementwise over matrices of identical shape.
void Axpy(float alpha, const Matrix& x, Matrix* y);

/// Mean of all entries.
double Mean(const Matrix& m);

}  // namespace usp

#endif  // USP_TENSOR_OPS_H_
