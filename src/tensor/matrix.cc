#include "tensor/matrix.h"

#include <algorithm>
#include <cstring>

namespace usp {

void Matrix::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

Matrix Matrix::RandomGaussian(size_t rows, size_t cols, Rng* rng, float mean,
                              float stddev) {
  Matrix m(rows, cols);
  rng->FillGaussian(m.data(), m.size(), mean, stddev);
  return m;
}

Matrix Matrix::RandomUniform(size_t rows, size_t cols, Rng* rng, float lo,
                             float hi) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) m.data()[i] = rng->UniformFloat(lo, hi);
  return m;
}

Matrix Matrix::GatherRows(const std::vector<uint32_t>& indices) const {
  Matrix out(indices.size(), cols_);
  for (size_t i = 0; i < indices.size(); ++i) {
    USP_CHECK(indices[i] < rows_);
    std::memcpy(out.Row(i), Row(indices[i]), cols_ * sizeof(float));
  }
  return out;
}

}  // namespace usp
