// Dense row-major float32 matrix. The single numeric container used by the
// dataset, k-NN, neural-net and quantization modules.
#ifndef USP_TENSOR_MATRIX_H_
#define USP_TENSOR_MATRIX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace usp {

/// Row-major matrix of float. Rows are points/examples; columns are features.
/// Cheap to move, explicit to copy (use Clone) to keep large-data copies
/// visible at call sites.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}
  Matrix(size_t rows, size_t cols, std::vector<float> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    USP_CHECK(data_.size() == rows_ * cols_);
  }

  Matrix(Matrix&&) = default;
  Matrix& operator=(Matrix&&) = default;
  Matrix(const Matrix&) = delete;
  Matrix& operator=(const Matrix&) = delete;

  /// Explicit deep copy.
  Matrix Clone() const { return Matrix(rows_, cols_, data_); }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float* Row(size_t i) { return data_.data() + i * cols_; }
  const float* Row(size_t i) const { return data_.data() + i * cols_; }

  float& operator()(size_t i, size_t j) { return data_[i * cols_ + j]; }
  float operator()(size_t i, size_t j) const { return data_[i * cols_ + j]; }

  /// Sets every element to `value`.
  void Fill(float value);

  /// All-zeros matrix.
  static Matrix Zeros(size_t rows, size_t cols) { return Matrix(rows, cols); }

  /// iid N(mean, stddev) entries from `rng`.
  static Matrix RandomGaussian(size_t rows, size_t cols, Rng* rng,
                               float mean = 0.0f, float stddev = 1.0f);

  /// iid U[lo, hi) entries from `rng`.
  static Matrix RandomUniform(size_t rows, size_t cols, Rng* rng, float lo,
                              float hi);

  /// New matrix holding the selected rows (gather).
  Matrix GatherRows(const std::vector<uint32_t>& indices) const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<float> data_;
};

/// Non-owning read-only view of a row-major float matrix. Implicitly
/// constructible from Matrix, and constructible over external storage — in
/// particular an mmap'd index-container section — so the search paths can run
/// zero-copy over data the process never loaded onto the heap. The viewed
/// storage must outlive the view and stay 4-byte aligned (container sections
/// are 64-byte aligned, see docs/FORMAT.md).
class MatrixView {
 public:
  MatrixView() : data_(nullptr), rows_(0), cols_(0) {}
  MatrixView(const float* data, size_t rows, size_t cols)
      : data_(data), rows_(rows), cols_(cols) {
    USP_CHECK(data != nullptr || rows * cols == 0);
  }
  MatrixView(const Matrix& m)  // NOLINT: implicit, like std::string_view
      : data_(m.data()), rows_(m.rows()), cols_(m.cols()) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return rows_ * cols_; }
  bool empty() const { return rows_ * cols_ == 0; }

  const float* data() const { return data_; }
  const float* Row(size_t i) const { return data_ + i * cols_; }
  float operator()(size_t i, size_t j) const { return data_[i * cols_ + j]; }

  /// Deep copy into an owning Matrix (the streaming-load path).
  Matrix Clone() const {
    return Matrix(rows_, cols_, std::vector<float>(data_, data_ + size()));
  }

 private:
  const float* data_;
  size_t rows_;
  size_t cols_;
};

}  // namespace usp

#endif  // USP_TENSOR_MATRIX_H_
