// Hierarchical Navigable Small World graphs (Malkov & Yashunin 2018), the
// graph-based ANN baseline of Fig. 7. Full multi-layer construction with
// greedy descent and ef-bounded best-first search at the base layer.
#ifndef USP_HNSW_HNSW_H_
#define USP_HNSW_HNSW_H_

#include <cstdint>
#include <vector>

#include "core/partition_index.h"
#include "index/index.h"
#include "tensor/matrix.h"

namespace usp {

/// HNSW hyperparameters.
struct HnswConfig {
  size_t max_neighbors = 16;     ///< M: links per node on upper layers
  size_t ef_construction = 100;  ///< beam width while building
  uint64_t seed = 1;
};

/// In-memory HNSW index over a base matrix (which must outlive the index).
class HnswIndex : public Index {
 public:
  explicit HnswIndex(HnswConfig config);

  /// Rehydrates a built graph from deserialized state over external (possibly
  /// mmap'd) base storage; the graph must come from an index built with the
  /// same config.
  HnswIndex(HnswConfig config, MatrixView base,
            std::vector<std::vector<std::vector<uint32_t>>> links,
            std::vector<int> node_levels, int max_level, uint32_t entry_point);

  /// Inserts all base points (sequentially; deterministic given the seed).
  void Build(const Matrix& base);

  /// Single-query search with beam width `budget` (= ef_search, >= k).
  std::vector<uint32_t> Search(const float* query, size_t k,
                               size_t budget) const override;

  /// Batch search with beam width `options.budget` (= ef_search).
  /// `candidate_counts` reports the number of distance evaluations per query,
  /// the analogue of the candidate-set size |C| used to compare against
  /// partition-based methods; HNSW scores every node it visits (navigation
  /// needs the distance), so under a filter the count still reflects visited
  /// nodes — filtering changes what is *returned*, not what is scored.
  ///
  /// Filter semantics are visit-but-don't-return: traversal expands through
  /// disallowed nodes (they keep the graph connected and navigable) but only
  /// allowed nodes enter the result set or tighten its bound. With ef >=
  /// size() the whole connected component is explored, so filtered
  /// full-budget search equals brute force over the allowed subset. The
  /// flip side: whenever the selector admits fewer than ef nodes, the
  /// ef-bound can never engage and the search degrades to a full traversal
  /// of the connected component — O(size()) per query. At very low
  /// selectivity that is the price of exactness here; latency-sensitive
  /// callers should cap ef near the expected allowed count (or prefer a
  /// partition-based index, whose filtered cost shrinks with selectivity).
  ///
  /// `options.num_threads` caps the per-query sharding (0 = pool default,
  /// 1 = serial); results are identical at every setting.
  using Index::SearchBatch;
  BatchSearchResult SearchBatch(const SearchRequest& request) const override;

  /// Radius search: the usual greedy descent to the base layer, then a
  /// best-first expansion that keeps growing while the frontier holds nodes
  /// within `radius` — the ef beam (`options.budget`) only bounds effort
  /// *outside* the radius, so every node whose distance is within the radius
  /// and reachable through in-range or beam-admitted nodes is found. At full
  /// budget the whole connected component is traversed, making the result
  /// bit-identical to BruteForceRadius (the traversal scores with the same
  /// squared-L2 kernel as ScoreRange). Filter semantics are
  /// visit-but-don't-return, exactly as in SearchBatch.
  RadiusResult RadiusSearchBatch(const RadiusRequest& request) const override;

  size_t dim() const override { return base_.cols(); }
  size_t size() const override { return node_levels_.size(); }
  Metric metric() const override { return Metric::kSquaredL2; }
  IndexType type() const override { return IndexType::kHnsw; }
  MatrixView base_view() const override { return base_; }

  /// Planner cost input (index/query_planner.h): distance evaluations of an
  /// unfiltered ef=`budget` search, modeled as the beam expanding up to M
  /// neighbors per kept node — min(n, budget * M). The planner
  /// separately models the filtered cliff described above, which this
  /// estimate deliberately excludes.
  size_t EstimateCandidates(size_t budget) const override {
    const size_t beam = std::max<size_t>(budget, 1);
    return std::min(size(), beam * config_.max_neighbors);
  }
  int max_level() const { return max_level_; }

  // Graph state accessors (serialization + diagnostics).
  const HnswConfig& config() const { return config_; }
  MatrixView base() const { return base_; }
  const std::vector<std::vector<std::vector<uint32_t>>>& links() const {
    return links_;
  }
  const std::vector<int>& node_levels() const { return node_levels_; }
  uint32_t entry_point() const { return entry_point_; }

 private:
  // Best-first search on one layer from `entry`; returns up to `ef` closest
  // *allowed* (distance, id) pairs. `filter` (optional) applies the
  // visit-but-don't-return semantics above; disallowed nodes still steer the
  // frontier. `stats` (optional) accumulates traversal counters.
  struct Scored {
    float distance;
    uint32_t id;
  };
  struct LayerStats {
    size_t evaluations = 0;   ///< distance computations
    size_t visited = 0;       ///< distinct nodes marked visited
    size_t filtered_out = 0;  ///< visited nodes the selector excluded
  };
  std::vector<Scored> SearchLayer(const float* query, uint32_t entry,
                                  size_t ef, int level,
                                  const IdSelector* filter,
                                  LayerStats* stats) const;
  // Radius variant of SearchLayer on the base layer: returns every *allowed*
  // visited node with distance <= radius (unsorted). The beam keeps the
  // ef-bounded expansion of SearchLayer; in-range nodes additionally always
  // enter the frontier and override the termination bound, so a full-budget
  // call degenerates to a component traversal.
  std::vector<Scored> RadiusLayer(const float* query, uint32_t entry,
                                  size_t ef, float radius,
                                  const IdSelector* filter,
                                  LayerStats* stats) const;
  std::vector<uint32_t>& LinksAt(uint32_t node, int level) {
    return links_[node][level];
  }
  const std::vector<uint32_t>& LinksAt(uint32_t node, int level) const {
    return links_[node][level];
  }

  HnswConfig config_;
  MatrixView base_;
  std::vector<std::vector<std::vector<uint32_t>>> links_;  // [node][level]
  std::vector<int> node_levels_;
  int max_level_ = -1;
  uint32_t entry_point_ = 0;
};

}  // namespace usp

#endif  // USP_HNSW_HNSW_H_
