#include "hnsw/hnsw.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "dist/distance_kernels.h"
#include "index/query_planner.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace usp {

namespace {
// Min-heap on distance for expansion candidates; max-heap for the result set.
struct FartherFirst {
  bool operator()(const std::pair<float, uint32_t>& a,
                  const std::pair<float, uint32_t>& b) const {
    return a.first > b.first;
  }
};
struct CloserFirst {
  bool operator()(const std::pair<float, uint32_t>& a,
                  const std::pair<float, uint32_t>& b) const {
    return a.first < b.first;
  }
};

// HNSW neighbor-selection heuristic (Alg. 4 of the paper): walk candidates in
// ascending distance from `node`, keeping a candidate only if it is closer to
// `node` than to every already-kept neighbor; this preserves edges across
// sparse regions and keeps the graph connected. Pruned candidates backfill
// remaining slots (keepPrunedConnections).
std::vector<uint32_t> SelectNeighborsHeuristic(
    const Matrix& base, uint32_t node,
    const std::vector<std::pair<float, uint32_t>>& sorted_candidates,
    size_t max_links) {
  const size_t d = base.cols();
  const DistanceKernels& kd = GetDistanceKernels();
  std::vector<uint32_t> kept;
  std::vector<uint32_t> pruned;
  for (const auto& [dist, cand] : sorted_candidates) {
    if (cand == node) continue;
    if (kept.size() >= max_links) break;
    bool diverse = true;
    for (uint32_t existing : kept) {
      if (kd.squared_l2(base.Row(cand), base.Row(existing), d) < dist) {
        diverse = false;
        break;
      }
    }
    if (diverse) {
      kept.push_back(cand);
    } else {
      pruned.push_back(cand);
    }
  }
  for (uint32_t cand : pruned) {
    if (kept.size() >= max_links) break;
    kept.push_back(cand);
  }
  return kept;
}
}  // namespace

HnswIndex::HnswIndex(HnswConfig config) : config_(std::move(config)) {
  USP_CHECK(config_.max_neighbors >= 2);
}

HnswIndex::HnswIndex(HnswConfig config, MatrixView base,
                     std::vector<std::vector<std::vector<uint32_t>>> links,
                     std::vector<int> node_levels, int max_level,
                     uint32_t entry_point)
    : config_(std::move(config)),
      base_(base),
      links_(std::move(links)),
      node_levels_(std::move(node_levels)),
      max_level_(max_level),
      entry_point_(entry_point) {
  USP_CHECK(links_.size() == base_.rows());
  USP_CHECK(node_levels_.size() == base_.rows());
  USP_CHECK(max_level_ >= 0 && entry_point_ < base_.rows());
}

std::vector<HnswIndex::Scored> HnswIndex::SearchLayer(
    const float* query, uint32_t entry, size_t ef, int level,
    const IdSelector* filter, LayerStats* stats) const {
  const size_t d = base_.cols();
  const DistanceKernels& kd = GetDistanceKernels();
  std::vector<uint8_t> visited(base_.rows(), 0);

  std::priority_queue<std::pair<float, uint32_t>,
                      std::vector<std::pair<float, uint32_t>>, FartherFirst>
      frontier;  // closest first
  std::priority_queue<std::pair<float, uint32_t>,
                      std::vector<std::pair<float, uint32_t>>, CloserFirst>
      best;  // farthest of the kept *allowed* set on top

  const float entry_dist = kd.squared_l2(query, base_.Row(entry), d);
  if (stats != nullptr) {
    ++stats->evaluations;
    ++stats->visited;
  }
  visited[entry] = 1;
  frontier.push({entry_dist, entry});
  if (filter == nullptr || filter->is_member(entry)) {
    best.push({entry_dist, entry});
  } else if (stats != nullptr) {
    ++stats->filtered_out;
  }

  // Visit-but-don't-return: the frontier expands through every node (the
  // admission bound uses the worst kept *allowed* distance, so navigation
  // crosses filtered regions), while `best` only ever holds allowed nodes.
  // With no filter this is arithmetic-for-arithmetic the classic ef-bounded
  // search: `best` is non-empty from the entry push onward, so the size
  // guard below never changes a comparison.
  while (!frontier.empty()) {
    const auto [dist, node] = frontier.top();
    frontier.pop();
    if (best.size() >= ef && dist > best.top().first) break;
    for (uint32_t nb : LinksAt(node, level)) {
      if (visited[nb]) continue;
      visited[nb] = 1;
      const float nb_dist = kd.squared_l2(query, base_.Row(nb), d);
      const bool allowed = filter == nullptr || filter->is_member(nb);
      if (stats != nullptr) {
        ++stats->evaluations;
        ++stats->visited;
        // Counted at visit time, admission-bound or not, so filtered_out
        // really is "visited nodes the selector excluded".
        if (!allowed) ++stats->filtered_out;
      }
      if (best.size() < ef || nb_dist < best.top().first) {
        frontier.push({nb_dist, nb});
        if (allowed) {
          best.push({nb_dist, nb});
          if (best.size() > ef) best.pop();
        }
      }
    }
  }

  std::vector<Scored> result(best.size());
  for (size_t i = best.size(); i-- > 0;) {
    result[i] = {best.top().first, best.top().second};
    best.pop();
  }
  return result;  // ascending by distance
}

std::vector<HnswIndex::Scored> HnswIndex::RadiusLayer(
    const float* query, uint32_t entry, size_t ef, float radius,
    const IdSelector* filter, LayerStats* stats) const {
  const size_t d = base_.cols();
  const DistanceKernels& kd = GetDistanceKernels();
  std::vector<uint8_t> visited(base_.rows(), 0);

  std::priority_queue<std::pair<float, uint32_t>,
                      std::vector<std::pair<float, uint32_t>>, FartherFirst>
      frontier;
  std::priority_queue<std::pair<float, uint32_t>,
                      std::vector<std::pair<float, uint32_t>>, CloserFirst>
      best;  // ef-bounded beam of allowed nodes, as in SearchLayer
  std::vector<Scored> hits;

  const float entry_dist = kd.squared_l2(query, base_.Row(entry), d);
  if (stats != nullptr) {
    ++stats->evaluations;
    ++stats->visited;
  }
  visited[entry] = 1;
  frontier.push({entry_dist, entry});
  if (filter == nullptr || filter->is_member(entry)) {
    best.push({entry_dist, entry});
    if (entry_dist <= radius) hits.push_back({entry_dist, entry});
  } else if (stats != nullptr) {
    ++stats->filtered_out;
  }

  while (!frontier.empty()) {
    const auto [dist, node] = frontier.top();
    frontier.pop();
    // Stop only once the closest frontier node is both outside the radius
    // and worse than a full beam: the radius term keeps in-range regions
    // expanding no matter how small ef is.
    if (dist > radius && best.size() >= ef && dist > best.top().first) break;
    for (uint32_t nb : LinksAt(node, 0)) {
      if (visited[nb]) continue;
      visited[nb] = 1;
      const float nb_dist = kd.squared_l2(query, base_.Row(nb), d);
      const bool allowed = filter == nullptr || filter->is_member(nb);
      if (stats != nullptr) {
        ++stats->evaluations;
        ++stats->visited;
        if (!allowed) ++stats->filtered_out;
      }
      if (nb_dist <= radius || best.size() < ef ||
          nb_dist < best.top().first) {
        frontier.push({nb_dist, nb});
        if (allowed) {
          if (nb_dist <= radius) hits.push_back({nb_dist, nb});
          best.push({nb_dist, nb});
          if (best.size() > ef) best.pop();
        }
      }
    }
  }
  return hits;
}

void HnswIndex::Build(const Matrix& base) {
  base_ = MatrixView(base);
  const size_t n = base.rows();
  USP_CHECK(n > 0);
  links_.assign(n, {});
  node_levels_.assign(n, 0);
  max_level_ = -1;

  Rng rng(config_.seed);
  const DistanceKernels& kd = GetDistanceKernels();
  const double level_lambda = 1.0 / std::log(double(config_.max_neighbors));
  const size_t max_links0 = 2 * config_.max_neighbors;

  for (uint32_t i = 0; i < n; ++i) {
    double u = rng.Uniform();
    if (u < 1e-12) u = 1e-12;
    const int level = static_cast<int>(-std::log(u) * level_lambda);
    node_levels_[i] = level;
    links_[i].assign(level + 1, {});

    if (max_level_ < 0) {
      max_level_ = level;
      entry_point_ = i;
      continue;
    }

    // Greedy descent through layers above the node's top level.
    uint32_t current = entry_point_;
    const size_t d = base.cols();
    float current_dist = kd.squared_l2(base.Row(i), base.Row(current), d);
    for (int l = max_level_; l > level; --l) {
      bool improved = true;
      while (improved) {
        improved = false;
        for (uint32_t nb : LinksAt(current, l)) {
          const float dist = kd.squared_l2(base.Row(i), base.Row(nb), d);
          if (dist < current_dist) {
            current_dist = dist;
            current = nb;
            improved = true;
          }
        }
      }
    }

    // Connect on each layer from min(level, max_level_) down to 0.
    for (int l = std::min(level, max_level_); l >= 0; --l) {
      auto nearest = SearchLayer(base.Row(i), current, config_.ef_construction,
                                 l, /*filter=*/nullptr, /*stats=*/nullptr);
      const size_t cap = (l == 0) ? max_links0 : config_.max_neighbors;
      std::vector<std::pair<float, uint32_t>> candidates;
      candidates.reserve(nearest.size());
      for (const auto& scored : nearest) {
        candidates.push_back({scored.distance, scored.id});
      }
      auto& my_links = LinksAt(i, l);
      my_links = SelectNeighborsHeuristic(base, i, candidates,
                                          config_.max_neighbors);
      for (const uint32_t nb : my_links) {
        auto& their_links = LinksAt(nb, l);
        their_links.push_back(i);
        if (their_links.size() > cap) {
          // Shrink with the same diversity heuristic (never plain truncation,
          // which disconnects early nodes).
          std::vector<std::pair<float, uint32_t>> theirs;
          theirs.reserve(their_links.size());
          for (uint32_t existing : their_links) {
            theirs.push_back(
                {kd.squared_l2(base.Row(nb), base.Row(existing), d),
                 existing});
          }
          std::sort(theirs.begin(), theirs.end());
          their_links = SelectNeighborsHeuristic(base, nb, theirs, cap);
        }
      }
      if (!nearest.empty()) current = nearest[0].id;
    }

    if (level > max_level_) {
      max_level_ = level;
      entry_point_ = i;
    }
  }
}

std::vector<uint32_t> HnswIndex::Search(const float* query, size_t k,
                                        size_t budget) const {
  USP_CHECK(!base_.empty() && max_level_ >= 0);
  // Greedy descent to layer 1.
  uint32_t current = entry_point_;
  const size_t d = base_.cols();
  const DistanceKernels& kd = GetDistanceKernels();
  float current_dist = kd.squared_l2(query, base_.Row(current), d);
  for (int l = max_level_; l >= 1; --l) {
    bool improved = true;
    while (improved) {
      improved = false;
      for (uint32_t nb : LinksAt(current, l)) {
        const float dist = kd.squared_l2(query, base_.Row(nb), d);
        if (dist < current_dist) {
          current_dist = dist;
          current = nb;
          improved = true;
        }
      }
    }
  }
  LayerStats layer_stats;
  const auto nearest = SearchLayer(query, current, std::max(k, budget), 0,
                                   /*filter=*/nullptr, &layer_stats);
  std::vector<uint32_t> out;
  out.reserve(std::min(k, nearest.size()));
  for (size_t i = 0; i < nearest.size() && i < k; ++i) {
    out.push_back(nearest[i].id);
  }
  return out;
}

BatchSearchResult HnswIndex::SearchBatch(const SearchRequest& request) const {
  // Planner hook (index/query_planner.h): this is the fix for the
  // low-selectivity cliff documented above — when the selector admits fewer
  // nodes than the beam, the planner reroutes to brute force over the
  // allowed set instead of paying the O(n) degraded traversal.
  if (auto planned = MaybeReroute(*this, request)) return std::move(*planned);
  const MatrixView queries = request.queries;
  const SearchOptions& options = request.options;
  const size_t k = options.k;
  const size_t nq = queries.rows();
  BatchSearchResult result;
  result.Prepare(nq, options);
  const DistanceKernels& kd = GetDistanceKernels();
  ParallelFor(nq, 4, options.num_threads, [&](size_t begin, size_t end,
                                              size_t) {
    for (size_t q = begin; q < end; ++q) {
      // Greedy descent ignores the filter: upper layers only pick the base
      // layer's entry point, never a returned neighbor.
      size_t evals = 0;
      uint32_t current = entry_point_;
      const size_t d = base_.cols();
      float current_dist =
          kd.squared_l2(queries.Row(q), base_.Row(current), d);
      ++evals;
      for (int l = max_level_; l >= 1; --l) {
        bool improved = true;
        while (improved) {
          improved = false;
          for (uint32_t nb : LinksAt(current, l)) {
            const float dist =
                kd.squared_l2(queries.Row(q), base_.Row(nb), d);
            ++evals;
            if (dist < current_dist) {
              current_dist = dist;
              current = nb;
              improved = true;
            }
          }
        }
      }
      LayerStats layer_stats;
      const auto nearest = SearchLayer(queries.Row(q), current,
                                       std::max(k, options.budget), 0,
                                       options.filter, &layer_stats);
      for (size_t i = 0; i < nearest.size() && i < k; ++i) {
        result.ids[q * k + i] = nearest[i].id;
        result.distances[q * k + i] = nearest[i].distance;
      }
      // Every visited node is distance-scored (navigation requires it), so
      // the scored count is descent evals + base-layer evals even under a
      // filter — see the SearchBatch contract in hnsw.h.
      result.candidate_counts[q] =
          static_cast<uint32_t>(evals + layer_stats.evaluations);
      if (result.stats) {
        result.stats->candidates_scored[q] = result.candidate_counts[q];
        result.stats->filtered_out[q] =
            static_cast<uint32_t>(layer_stats.filtered_out);
        result.stats->nodes_visited[q] =
            static_cast<uint32_t>(layer_stats.visited);
      }
    }
  });
  return result;
}

RadiusResult HnswIndex::RadiusSearchBatch(const RadiusRequest& request) const {
  USP_CHECK(!base_.empty() && max_level_ >= 0);
  const MatrixView queries = request.queries;
  const DistanceKernels& kd = GetDistanceKernels();
  const size_t ef = std::max<size_t>(request.options.budget, 1);
  return CollectRadiusRows(
      queries.rows(), request.options, [&](size_t q, RadiusResult* result) {
        // Greedy descent ignores the filter, exactly as in SearchBatch.
        size_t evals = 0;
        uint32_t current = entry_point_;
        const size_t d = base_.cols();
        float current_dist =
            kd.squared_l2(queries.Row(q), base_.Row(current), d);
        ++evals;
        for (int l = max_level_; l >= 1; --l) {
          bool improved = true;
          while (improved) {
            improved = false;
            for (uint32_t nb : LinksAt(current, l)) {
              const float dist =
                  kd.squared_l2(queries.Row(q), base_.Row(nb), d);
              ++evals;
              if (dist < current_dist) {
                current_dist = dist;
                current = nb;
                improved = true;
              }
            }
          }
        }
        LayerStats layer_stats;
        const auto found =
            RadiusLayer(queries.Row(q), current, ef, request.radius,
                        request.options.filter, &layer_stats);
        std::vector<Neighbor> hits;
        hits.reserve(found.size());
        for (const auto& s : found) hits.push_back(Neighbor{s.distance, s.id});
        std::sort(hits.begin(), hits.end());
        result->candidate_counts[q] =
            static_cast<uint32_t>(evals + layer_stats.evaluations);
        if (result->stats) {
          result->stats->candidates_scored[q] = result->candidate_counts[q];
          result->stats->filtered_out[q] =
              static_cast<uint32_t>(layer_stats.filtered_out);
          result->stats->nodes_visited[q] =
              static_cast<uint32_t>(layer_stats.visited);
        }
        return hits;
      });
}

}  // namespace usp
