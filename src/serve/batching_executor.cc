#include "serve/batching_executor.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace usp {

namespace {
/// Two requests may share one SearchRequest only when every result-affecting
/// option matches. num_threads does not change results (the repo-wide
/// bit-identity invariant) but is kept in the key anyway so a caller pinning
/// a thread cap gets exactly the execution they asked for.
bool Compatible(const SearchOptions& a, const SearchOptions& b) {
  return a.k == b.k && a.budget == b.budget &&
         a.num_threads == b.num_threads && a.filter == b.filter &&
         a.stats == b.stats && a.plan == b.plan;
}
}  // namespace

BatchingExecutor::BatchingExecutor(const Index* index,
                                   BatchingExecutorConfig config)
    : index_(index),
      config_(config),
      queue_(config.max_queue == 0 ? 1 : config.max_queue) {
  USP_CHECK(index_ != nullptr);
  USP_CHECK(config_.max_batch > 0);
  batcher_ = std::thread([this] { BatcherLoop(); });
}

BatchingExecutor::~BatchingExecutor() { Shutdown(); }

StatusOr<std::future<SingleSearchResult>> BatchingExecutor::Submit(
    const float* query, SearchOptions options, uint64_t tenant) {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (shutdown_) {
      return Status::FailedPrecondition("executor is shut down");
    }
    if (config_.max_in_flight_per_tenant > 0 &&
        tenant_in_flight_[tenant] >= config_.max_in_flight_per_tenant) {
      return Status::FailedPrecondition(
          "tenant " + std::to_string(tenant) + " is at its in-flight cap (" +
          std::to_string(config_.max_in_flight_per_tenant) + ")");
    }
    ++tenant_in_flight_[tenant];
    ++in_flight_;
  }

  Pending pending;
  pending.query.assign(query, query + index_->dim());
  pending.options = options;
  pending.tenant = tenant;
  std::future<SingleSearchResult> future = pending.promise.get_future();
  if (!queue_.Push(std::move(pending))) {
    // Shut down between the admission check and the push: roll the
    // accounting back and report it the same way the check would have.
    FinishRequest(tenant);
    return Status::FailedPrecondition("executor is shut down");
  }
  return future;
}

void BatchingExecutor::Drain() {
  std::unique_lock<std::mutex> lock(state_mutex_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void BatchingExecutor::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    shutdown_ = true;
  }
  // Close wakes the batcher, which drains every queued request (fulfilling
  // its future) before PopBatch returns 0 and the loop exits.
  queue_.Close();
  if (batcher_.joinable()) batcher_.join();
}

void BatchingExecutor::BatcherLoop() {
  const std::chrono::microseconds delay(config_.max_delay_us);
  std::vector<Pending> batch;
  std::vector<size_t> group;
  for (;;) {
    batch.clear();
    if (queue_.PopBatch(batch, config_.max_batch, delay) == 0) return;

    // Group compatible requests preserving submission order within each
    // group (first-fit): one SearchBatch per group. The common case — every
    // client asking with the same options — is a single full-width group.
    std::vector<char> grouped(batch.size(), 0);
    for (size_t i = 0; i < batch.size(); ++i) {
      if (grouped[i]) continue;
      group.clear();
      group.push_back(i);
      grouped[i] = 1;
      for (size_t j = i + 1; j < batch.size(); ++j) {
        if (!grouped[j] && Compatible(batch[i].options, batch[j].options)) {
          grouped[j] = 1;
          group.push_back(j);
        }
      }
      ExecuteGroup(batch, group);
    }
  }
}

void BatchingExecutor::ExecuteGroup(std::vector<Pending>& batch,
                                    const std::vector<size_t>& group) {
  const size_t dim = index_->dim();
  Matrix queries(group.size(), dim);
  for (size_t r = 0; r < group.size(); ++r) {
    const std::vector<float>& q = batch[group[r]].query;
    std::copy(q.begin(), q.end(), queries.Row(r));
  }

  SearchRequest request;
  request.queries = queries;
  request.options = batch[group.front()].options;
  const BatchSearchResult result = index_->SearchBatch(request);

  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    requests_executed_ += group.size();
    ++batches_executed_;
    if (group.size() > max_batch_width_) max_batch_width_ = group.size();
  }

  // Scatter: row r of the coalesced result is, by the per-row independence
  // invariant, bit-identical to what request r would have gotten alone.
  for (size_t r = 0; r < group.size(); ++r) {
    Pending& pending = batch[group[r]];
    SingleSearchResult out;
    out.k = result.k;
    out.ids.assign(result.Row(r), result.Row(r) + result.k);
    out.distances.assign(result.DistanceRow(r),
                         result.DistanceRow(r) + result.k);
    out.candidates_scored = result.candidate_counts[r];
    if (result.stats) {
      out.bins_probed = result.stats->bins_probed[r];
      out.filtered_out = result.stats->filtered_out[r];
      out.nodes_visited = result.stats->nodes_visited[r];
    }
    pending.promise.set_value(std::move(out));
    FinishRequest(pending.tenant);
  }
}

void BatchingExecutor::FinishRequest(uint64_t tenant) {
  std::lock_guard<std::mutex> lock(state_mutex_);
  auto it = tenant_in_flight_.find(tenant);
  if (it != tenant_in_flight_.end() && --it->second == 0) {
    tenant_in_flight_.erase(it);
  }
  if (--in_flight_ == 0) idle_.notify_all();
}

uint64_t BatchingExecutor::requests_executed() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return requests_executed_;
}

uint64_t BatchingExecutor::batches_executed() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return batches_executed_;
}

size_t BatchingExecutor::max_batch_width() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return max_batch_width_;
}

}  // namespace usp
