#include "serve/dynamic_index.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "index/query_planner.h"
#include "ivf/ivf.h"
#include "knn/brute_force.h"
#include "quant/sq8_index.h"
#include "util/thread_pool.h"

namespace usp {

SegmentBuilder Sq8SegmentBuilder(size_t rerank_budget) {
  return [rerank_budget](const Matrix& base,
                         Metric metric) -> std::unique_ptr<Index> {
    Sq8IndexConfig config;
    config.metric = metric;
    config.rerank_budget = rerank_budget;
    return std::make_unique<Sq8Index>(&base, config);
  };
}

DynamicIndex::DynamicIndex(size_t dim, DynamicIndexConfig config)
    : dim_(dim), config_(std::move(config)) {
  USP_CHECK(dim_ > 0);
}

DynamicIndex::DynamicIndex(size_t dim, DynamicIndexConfig config,
                           std::vector<std::unique_ptr<SealedSegment>> sealed,
                           Matrix write_rows, std::vector<uint32_t> write_ids,
                           std::vector<uint32_t> tombstones,
                           uint32_t next_global_id)
    : dim_(dim), config_(std::move(config)), next_id_(next_global_id) {
  USP_CHECK(dim_ > 0);
  USP_CHECK(write_rows.rows() == write_ids.size());
  USP_CHECK(write_rows.empty() || write_rows.cols() == dim_);
  sealed_ = std::move(sealed);
  for (size_t s = 0; s < sealed_.size(); ++s) {
    const SealedSegment& seg = *sealed_[s];
    USP_CHECK(seg.index != nullptr);
    USP_CHECK(seg.index->dim() == dim_);
    USP_CHECK(seg.index->metric() == config_.metric);
    USP_CHECK(seg.index->size() == seg.global_ids.size());
    for (size_t i = 0; i < seg.global_ids.size(); ++i) {
      USP_CHECK(seg.global_ids[i] < next_id_);
      const bool inserted =
          id_map_
              .emplace(seg.global_ids[i],
                       SegmentRef{static_cast<uint32_t>(s),
                                  static_cast<uint32_t>(i)})
              .second;
      USP_CHECK(inserted);  // ids must be globally unique
    }
  }
  write_ids_ = std::move(write_ids);
  write_data_.assign(write_rows.data(),
                     write_rows.data() + write_rows.size());
  for (size_t i = 0; i < write_ids_.size(); ++i) {
    USP_CHECK(write_ids_[i] < next_id_);
    const bool inserted =
        id_map_
            .emplace(write_ids_[i],
                     SegmentRef{kWriteSegment, static_cast<uint32_t>(i)})
            .second;
    USP_CHECK(inserted);
  }
  for (uint32_t id : tombstones) {
    const auto it = id_map_.find(id);
    USP_CHECK(it != id_map_.end());
    USP_CHECK(tombstones_.insert(id).second);
    if (it->second.segment == kWriteSegment) {
      ++write_tombstoned_;
    } else {
      ++sealed_[it->second.segment]->tombstoned;
    }
  }
  live_ = id_map_.size() - tombstones_.size();
}

DynamicIndex::~DynamicIndex() { WaitForMaintenance(); }

// ---------------------------------------------------------------------------
// Mutation.
// ---------------------------------------------------------------------------

uint32_t DynamicIndex::Add(const float* vector) {
  uint32_t id = 0;
  bool schedule_seal = false;
  {
    std::unique_lock<std::shared_mutex> lock(mutex_);
    // Ids are monotonic and never recycled; the space below the kInvalidId
    // sentinel must last the index's lifetime.
    USP_CHECK(next_id_ < kInvalidId);
    id = next_id_++;
    write_data_.insert(write_data_.end(), vector, vector + dim_);
    id_map_.emplace(
        id, SegmentRef{kWriteSegment,
                       static_cast<uint32_t>(write_ids_.size())});
    write_ids_.push_back(id);
    ++live_;
    if (config_.seal_threshold > 0 && !seal_scheduled_ &&
        write_ids_.size() >= config_.seal_threshold) {
      seal_scheduled_ = true;
      schedule_seal = true;
    }
  }
  if (schedule_seal) ScheduleSeal();
  return id;
}

std::vector<uint32_t> DynamicIndex::AddBatch(MatrixView vectors) {
  USP_CHECK(vectors.empty() || vectors.cols() == dim_);
  std::vector<uint32_t> ids;
  ids.reserve(vectors.rows());
  bool schedule_seal = false;
  {
    std::unique_lock<std::shared_mutex> lock(mutex_);
    USP_CHECK(vectors.rows() <= kInvalidId - next_id_);
    write_data_.insert(write_data_.end(), vectors.data(),
                       vectors.data() + vectors.size());
    for (size_t i = 0; i < vectors.rows(); ++i) {
      const uint32_t id = next_id_++;
      id_map_.emplace(
          id, SegmentRef{kWriteSegment,
                         static_cast<uint32_t>(write_ids_.size())});
      write_ids_.push_back(id);
      ids.push_back(id);
    }
    live_ += vectors.rows();
    if (config_.seal_threshold > 0 && !seal_scheduled_ &&
        write_ids_.size() >= config_.seal_threshold) {
      seal_scheduled_ = true;
      schedule_seal = true;
    }
  }
  if (schedule_seal) ScheduleSeal();
  return ids;
}

bool DynamicIndex::Delete(uint32_t global_id) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  const auto it = id_map_.find(global_id);
  if (it == id_map_.end()) return false;
  if (!tombstones_.insert(global_id).second) return false;  // already deleted
  if (it->second.segment == kWriteSegment) {
    ++write_tombstoned_;
  } else {
    ++sealed_[it->second.segment]->tombstoned;
  }
  --live_;
  return true;
}

bool DynamicIndex::Contains(uint32_t global_id) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return id_map_.count(global_id) == 1 && tombstones_.count(global_id) == 0;
}

uint32_t DynamicIndex::AddSealedSegment(std::unique_ptr<Index> segment,
                                        Matrix storage) {
  USP_CHECK(segment != nullptr);
  USP_CHECK(segment->dim() == dim_);
  USP_CHECK(segment->metric() == config_.metric);
  // Segments must be static types: nesting a DynamicIndex or a ShardedIndex
  // would break compaction (no base_view) and the one-level container
  // embedding.
  USP_CHECK(segment->type() != IndexType::kDynamic);
  USP_CHECK(segment->type() != IndexType::kSharded);
  const size_t n = segment->size();
  USP_CHECK(n > 0);
  auto seg = std::make_unique<SealedSegment>();
  seg->storage = std::move(storage);
  seg->index = std::move(segment);

  std::unique_lock<std::shared_mutex> lock(mutex_);
  USP_CHECK(n <= kInvalidId - next_id_);
  const uint32_t first = next_id_;
  seg->global_ids.reserve(n);
  const uint32_t seg_index = static_cast<uint32_t>(sealed_.size());
  for (size_t i = 0; i < n; ++i) {
    const uint32_t id = next_id_++;
    seg->global_ids.push_back(id);
    id_map_.emplace(id,
                    SegmentRef{seg_index, static_cast<uint32_t>(i)});
  }
  live_ += n;
  sealed_.push_back(std::move(seg));
  return first;
}

StatusOr<uint32_t> DynamicIndex::AddSealedSegmentFromContainer(
    const std::string& path, LoadMode mode) {
  auto opened = OpenIndex(path, mode);
  if (!opened.ok()) return opened.status();
  std::unique_ptr<Index> segment = std::move(opened).value();
  // Files are user input: validate with Status errors (AddSealedSegment's
  // USP_CHECKs are for programmer errors) before any state changes.
  if (segment->dim() != dim_) {
    return Status::InvalidArgument("segment dim " +
                                   std::to_string(segment->dim()) +
                                   " != index dim " + std::to_string(dim_));
  }
  if (segment->metric() != config_.metric) {
    return Status::InvalidArgument("segment metric does not match the index");
  }
  const IndexType type = segment->type();
  if (type == IndexType::kDynamic || type == IndexType::kSharded) {
    return Status::FailedPrecondition(
        "dynamic/sharded containers cannot nest as sealed segments");
  }
  if (segment->size() == 0) {
    return Status::FailedPrecondition("container indexes no vectors");
  }
  // The loaded wrapper owns its storage (heap buffers or the mapping), so no
  // separate storage matrix transfers.
  return AddSealedSegment(std::move(segment));
}

// ---------------------------------------------------------------------------
// Maintenance.
// ---------------------------------------------------------------------------

std::unique_ptr<Index> DynamicIndex::BuildSegment(const Matrix& base) const {
  std::unique_ptr<Index> index;
  if (config_.segment_builder) {
    index = config_.segment_builder(base, config_.metric);
  } else {
    IvfConfig ivf;
    ivf.metric = config_.metric;
    const size_t n = base.rows();
    ivf.nlist = std::max<size_t>(
        1, std::min(n, static_cast<size_t>(
                           std::lround(std::sqrt(static_cast<double>(n))))));
    index = std::make_unique<IvfFlatIndex>(&base, ivf);
  }
  USP_CHECK(index != nullptr);
  USP_CHECK(index->dim() == dim_);
  USP_CHECK(index->metric() == config_.metric);
  USP_CHECK(index->size() == base.rows());
  return index;
}

void DynamicIndex::Seal() {
  std::lock_guard<std::mutex> maintenance(maintenance_mutex_);

  // Snapshot the current write segment (rows appended after this stay in the
  // write segment and are picked up by the next seal).
  size_t snap_rows = 0;
  auto seg = std::make_unique<SealedSegment>();
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    snap_rows = write_ids_.size();
    if (snap_rows > 0) {
      seg->storage = Matrix(
          snap_rows, dim_,
          std::vector<float>(write_data_.begin(),
                             write_data_.begin() + snap_rows * dim_));
      seg->global_ids.assign(write_ids_.begin(),
                             write_ids_.begin() + snap_rows);
    }
  }
  if (snap_rows == 0) {
    std::unique_lock<std::shared_mutex> lock(mutex_);
    seal_scheduled_ = false;
    return;
  }

  // Train outside every lock: reads and writes continue against the old
  // segment set, which still serves the snapshotted rows.
  seg->index = BuildSegment(seg->storage);

  bool schedule_compact = false;
  {
    std::unique_lock<std::shared_mutex> lock(mutex_);
    write_data_.erase(write_data_.begin(),
                      write_data_.begin() + snap_rows * dim_);
    write_ids_.erase(write_ids_.begin(), write_ids_.begin() + snap_rows);
    const uint32_t seg_index = static_cast<uint32_t>(sealed_.size());
    for (size_t i = 0; i < seg->global_ids.size(); ++i) {
      id_map_[seg->global_ids[i]] =
          SegmentRef{seg_index, static_cast<uint32_t>(i)};
      if (tombstones_.count(seg->global_ids[i]) > 0) ++seg->tombstoned;
    }
    write_tombstoned_ -= seg->tombstoned;
    for (size_t i = 0; i < write_ids_.size(); ++i) {
      id_map_[write_ids_[i]] =
          SegmentRef{kWriteSegment, static_cast<uint32_t>(i)};
    }
    sealed_.push_back(std::move(seg));
    seal_scheduled_ = false;
    if (config_.max_sealed_segments > 0 && !compact_scheduled_ &&
        sealed_.size() > config_.max_sealed_segments) {
      compact_scheduled_ = true;
      schedule_compact = true;
    }
  }
  if (schedule_compact) ScheduleCompact();
}

void DynamicIndex::Compact() {
  std::lock_guard<std::mutex> maintenance(maintenance_mutex_);

  // Snapshot: copy every live row out of the current sealed segments. Only
  // maintenance removes segments and maintenance is serialized, so the
  // segment prefix [0, snap_count) survives until the install below.
  size_t snap_count = 0;
  std::vector<float> merged_data;
  std::vector<uint32_t> merged_ids;
  // Ids observed tombstoned at snapshot time: their rows are excluded from
  // the merged segment, so exactly these are reclaimed at install. Ids
  // deleted *during* training are in the merged segment; their tombstones
  // must survive (they are reclaimed by the next compaction).
  std::vector<uint32_t> reclaimed;
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    snap_count = sealed_.size();
    size_t total_rows = 0;
    for (size_t s = 0; s < snap_count; ++s) {
      total_rows += sealed_[s]->index->size();
    }
    merged_data.reserve(total_rows * dim_);
    merged_ids.reserve(total_rows);
    for (size_t s = 0; s < snap_count; ++s) {
      const SealedSegment& segment = *sealed_[s];
      const MatrixView rows = segment.index->base_view();
      USP_CHECK(rows.rows() == segment.global_ids.size());
      for (size_t i = 0; i < rows.rows(); ++i) {
        const uint32_t gid = segment.global_ids[i];
        if (tombstones_.count(gid) > 0) {
          reclaimed.push_back(gid);
          continue;
        }
        merged_data.insert(merged_data.end(), rows.Row(i),
                           rows.Row(i) + dim_);
        merged_ids.push_back(gid);
      }
    }
  }
  if (snap_count == 0) {
    std::unique_lock<std::shared_mutex> lock(mutex_);
    compact_scheduled_ = false;
    return;
  }

  std::unique_ptr<SealedSegment> merged;
  if (!merged_ids.empty()) {
    merged = std::make_unique<SealedSegment>();
    merged->storage =
        Matrix(merged_ids.size(), dim_, std::move(merged_data));
    merged->global_ids = std::move(merged_ids);
    merged->index = BuildSegment(merged->storage);  // trains outside locks
  }

  {
    std::unique_lock<std::shared_mutex> lock(mutex_);
    // Reclaim exactly the rows the snapshot excluded: they vanish
    // physically, so both tables forget them. Rows deleted during training
    // are in the merged segment and keep their tombstones.
    for (uint32_t gid : reclaimed) {
      tombstones_.erase(gid);
      id_map_.erase(gid);
    }
    sealed_.erase(sealed_.begin(), sealed_.begin() + snap_count);
    if (merged != nullptr) {
      sealed_.insert(sealed_.begin(), std::move(merged));
    }
    // Segment indices shifted; rebuild the sealed half of the id map and
    // refresh the per-segment tombstone counters.
    for (size_t s = 0; s < sealed_.size(); ++s) {
      SealedSegment& segment = *sealed_[s];
      segment.tombstoned = 0;
      for (size_t i = 0; i < segment.global_ids.size(); ++i) {
        id_map_[segment.global_ids[i]] =
            SegmentRef{static_cast<uint32_t>(s), static_cast<uint32_t>(i)};
        if (tombstones_.count(segment.global_ids[i]) > 0) {
          ++segment.tombstoned;
        }
      }
    }
    compact_scheduled_ = false;
  }
}

void DynamicIndex::ScheduleSeal() {
  {
    std::lock_guard<std::mutex> lock(maintenance_state_mutex_);
    ++pending_maintenance_;
  }
  ThreadPool::Global().Submit([this] {
    Seal();
    FinishMaintenanceTask();
  });
}

void DynamicIndex::ScheduleCompact() {
  {
    std::lock_guard<std::mutex> lock(maintenance_state_mutex_);
    ++pending_maintenance_;
  }
  ThreadPool::Global().Submit([this] {
    Compact();
    FinishMaintenanceTask();
  });
}

void DynamicIndex::FinishMaintenanceTask() const {
  std::lock_guard<std::mutex> lock(maintenance_state_mutex_);
  if (--pending_maintenance_ == 0) maintenance_done_.notify_all();
}

void DynamicIndex::WaitForMaintenance() const {
  std::unique_lock<std::mutex> lock(maintenance_state_mutex_);
  maintenance_done_.wait(lock, [this] { return pending_maintenance_ == 0; });
}

// ---------------------------------------------------------------------------
// Search.
// ---------------------------------------------------------------------------

namespace {
/// Lazy segment-local view of the caller's global selector composed with the
/// tombstone set: local row i is allowed iff its global id passes the filter
/// AND is live. Membership is evaluated per candidate the segment actually
/// visits — O(candidates) instead of an O(segment) eager bitmap translation
/// per query — and reads global_ids/tombstones safely because the search
/// holds the index lock shared for the whole fan-out.
class LocalSelector final : public IdSelector {
 public:
  LocalSelector(const IdSelector* global,
                const std::vector<uint32_t>& global_ids,
                const std::unordered_set<uint32_t>& tombstones)
      : global_(global), global_ids_(global_ids), tombstones_(tombstones) {}

  bool is_member(uint32_t local) const override {
    const uint32_t gid = global_ids_[local];
    return global_->is_member(gid) && tombstones_.count(gid) == 0;
  }

 private:
  const IdSelector* global_;
  const std::vector<uint32_t>& global_ids_;
  const std::unordered_set<uint32_t>& tombstones_;
};
}  // namespace

BatchSearchResult DynamicIndex::SearchBatch(const SearchRequest& request) const {
  // Planner hook. With no base_view to scan, the top level only ever chooses
  // between pushdown and post-filter; under pushdown the filter fans out as
  // per-segment sub-requests that keep options.plan, so each sealed segment
  // re-plans against its own translated (filter && !tombstone) selector —
  // a sparse global filter can brute-force one segment's allowed rows while
  // another segment still probes (index/query_planner.h).
  if (auto planned = MaybeReroute(*this, request)) return std::move(*planned);
  const MatrixView queries = request.queries;
  const SearchOptions& options = request.options;
  const IdSelector* filter = options.filter;
  const size_t k = options.k;
  USP_CHECK(queries.empty() || queries.cols() == dim_);
  const size_t nq = queries.rows();
  BatchSearchResult result;
  result.Prepare(nq, options);
  if (nq == 0 || k == 0) return result;

  // The lock is held shared across the whole fan-out + merge: segments and
  // the write buffer cannot change under us; appends briefly queue behind the
  // batch.
  std::shared_lock<std::shared_mutex> lock(mutex_);

  struct SegmentHits {
    BatchSearchResult batch;
    const std::vector<uint32_t>* global_ids;
  };
  std::vector<SegmentHits> per_segment;
  per_segment.reserve(sealed_.size());

  for (const auto& seg : sealed_) {
    SearchRequest sub;
    sub.queries = queries;
    sub.options = options;
    if (filter == nullptr) {
      // Over-fetch per segment by its own tombstone count, so every
      // tombstoned hit can be dropped at the merge without surfacing fewer
      // than k live neighbors while deeper live ones exist in the segment.
      const size_t fetch = std::min(seg->index->size(), k + seg->tombstoned);
      if (fetch == 0) continue;
      sub.options.k = fetch;
      per_segment.push_back({seg->index->SearchBatch(sub), &seg->global_ids});
    } else {
      // Tombstones ride inside the pushed-down selector, so the segment
      // returns only mergeable hits and no over-fetch is needed. The local
      // view is only consulted during this synchronous sub-search.
      const LocalSelector local(filter, seg->global_ids, tombstones_);
      sub.options.k = std::min(seg->index->size(), k);
      sub.options.filter = &local;
      per_segment.push_back({seg->index->SearchBatch(sub), &seg->global_ids});
    }
  }

  const size_t write_rows = write_ids_.size();
  KnnResult write_hits;
  size_t write_scored = 0;    // post-filter rows the write scan may return
  size_t write_filtered = 0;  // write rows the selector/tombstones excluded
  std::unique_ptr<IdSelectorBitmap> write_filter;
  if (write_rows > 0 && filter != nullptr) {
    write_filter = std::make_unique<IdSelectorBitmap>(write_rows);
    for (size_t i = 0; i < write_rows; ++i) {
      const uint32_t gid = write_ids_[i];
      if (filter->is_member(gid) && tombstones_.count(gid) == 0) {
        write_filter->Set(static_cast<uint32_t>(i));
        ++write_scored;
      }
    }
    write_filtered = write_rows - write_scored;
  }
  if (write_rows > 0 && filter == nullptr) {
    write_scored = write_rows;  // the write segment is scanned exactly
    const MatrixView write_view(write_data_.data(), write_rows, dim_);
    write_hits = BruteForceKnn(write_view, queries,
                               std::min(write_rows, k + write_tombstoned_),
                               config_.metric, options.num_threads);
  } else if (write_scored > 0) {
    const MatrixView write_view(write_data_.data(), write_rows, dim_);
    write_hits = BruteForceKnn(write_view, queries, std::min(write_rows, k),
                               config_.metric, write_filter.get(),
                               options.num_threads);
  }

  ParallelFor(nq, 8, options.num_threads, [&](size_t begin, size_t end,
                                              size_t) {
    for (size_t q = begin; q < end; ++q) {
      TopK heap(k);
      size_t candidates = 0;
      size_t merge_dropped = 0;  // unfiltered path: tombstoned hits dropped
      for (const SegmentHits& hits : per_segment) {
        const BatchSearchResult& batch = hits.batch;
        candidates += batch.candidate_counts[q];
        const uint32_t* ids = batch.Row(q);
        const float* dists = batch.DistanceRow(q);
        for (size_t j = 0; j < batch.k; ++j) {
          if (ids[j] == kInvalidId) break;  // padding: no more hits
          const uint32_t gid = (*hits.global_ids)[ids[j]];
          // Filtered hits are pre-screened by the local selector; the
          // tombstone check only runs on the unfiltered over-fetch path.
          if (filter == nullptr && tombstones_.count(gid) > 0) {
            ++merge_dropped;
            continue;
          }
          heap.Push(dists[j], gid);
        }
      }
      if (write_hits.k > 0) {
        candidates += write_scored;
        const uint32_t* ids = write_hits.Row(q);
        const float* dists = write_hits.distances.data() + q * write_hits.k;
        for (size_t j = 0; j < write_hits.k; ++j) {
          if (ids[j] == kInvalidId) break;  // filtered-scan padding
          const uint32_t gid = write_ids_[ids[j]];
          if (filter == nullptr && tombstones_.count(gid) > 0) {
            ++merge_dropped;
            continue;
          }
          heap.Push(dists[j], gid);
        }
      }
      result.candidate_counts[q] = static_cast<uint32_t>(candidates);
      result.SetRow(q, heap.TakeSorted());
      if (result.stats) {
        uint32_t bins = 0, fout = 0, visited = 0;
        for (const SegmentHits& hits : per_segment) {
          if (!hits.batch.stats) continue;
          bins += hits.batch.stats->bins_probed[q];
          fout += hits.batch.stats->filtered_out[q];
          visited += hits.batch.stats->nodes_visited[q];
        }
        result.stats->candidates_scored[q] = result.candidate_counts[q];
        result.stats->bins_probed[q] = bins;
        result.stats->filtered_out[q] = static_cast<uint32_t>(
            fout + write_filtered + merge_dropped);
        result.stats->nodes_visited[q] = visited;
      }
    }
  });
  return result;
}

RadiusResult DynamicIndex::RadiusSearchBatch(
    const RadiusRequest& request) const {
  const MatrixView queries = request.queries;
  const RadiusOptions& options = request.options;
  const IdSelector* filter = options.filter;
  USP_CHECK(queries.empty() || queries.cols() == dim_);
  const size_t nq = queries.rows();

  // Shared lock across the whole fan-out + merge, as in SearchBatch.
  std::shared_lock<std::shared_mutex> lock(mutex_);

  struct SegmentHits {
    RadiusResult rows;
    const std::vector<uint32_t>* global_ids;
  };
  std::vector<SegmentHits> per_segment;
  per_segment.reserve(sealed_.size());

  for (const auto& seg : sealed_) {
    RadiusRequest sub;
    sub.queries = queries;
    sub.radius = request.radius;
    sub.options = options;
    if (filter == nullptr) {
      // Unlike top-k, radius rows carry *every* in-range hit, so no
      // tombstone over-fetch is needed: tombstoned hits drop at the merge
      // without ever hiding deeper live ones.
      per_segment.push_back(
          {seg->index->RadiusSearchBatch(sub), &seg->global_ids});
    } else {
      // Tombstones ride inside the pushed-down selector; the local view is
      // only consulted during this synchronous sub-search.
      const LocalSelector local(filter, seg->global_ids, tombstones_);
      sub.options.filter = &local;
      per_segment.push_back(
          {seg->index->RadiusSearchBatch(sub), &seg->global_ids});
    }
  }

  const size_t write_rows = write_ids_.size();
  RadiusResult write_hits;  // num_queries() == 0 when the scan was skipped
  size_t write_scored = 0;
  size_t write_filtered = 0;
  std::unique_ptr<IdSelectorBitmap> write_filter;
  if (write_rows > 0) {
    const MatrixView write_view(write_data_.data(), write_rows, dim_);
    if (filter != nullptr) {
      write_filter = std::make_unique<IdSelectorBitmap>(write_rows);
      for (size_t i = 0; i < write_rows; ++i) {
        const uint32_t gid = write_ids_[i];
        if (filter->is_member(gid) && tombstones_.count(gid) == 0) {
          write_filter->Set(static_cast<uint32_t>(i));
          ++write_scored;
        }
      }
      write_filtered = write_rows - write_scored;
      if (write_scored > 0) {
        write_hits =
            BruteForceRadius(write_view, queries, request.radius,
                             config_.metric, write_filter.get(),
                             options.num_threads);
      }
    } else {
      write_scored = write_rows;  // scanned exactly, as in SearchBatch
      write_hits = BruteForceRadius(write_view, queries, request.radius,
                                    config_.metric, /*filter=*/nullptr,
                                    options.num_threads);
    }
  }

  return CollectRadiusRows(nq, options, [&](size_t q, RadiusResult* out) {
    std::vector<Neighbor> merged;
    size_t candidates = 0;
    uint32_t bins = 0, fout = 0, visited = 0;
    for (const SegmentHits& hits : per_segment) {
      const RadiusResult& r = hits.rows;
      candidates += r.candidate_counts[q];
      if (r.stats) {
        bins += r.stats->bins_probed[q];
        fout += r.stats->filtered_out[q];
        visited += r.stats->nodes_visited[q];
      }
      for (size_t j = r.offsets[q]; j < r.offsets[q + 1]; ++j) {
        const uint32_t gid = (*hits.global_ids)[r.ids[j]];
        // Filtered hits are pre-screened by the local selector; the
        // tombstone check only runs on the unfiltered path.
        if (filter == nullptr && tombstones_.count(gid) > 0) {
          ++fout;
          continue;
        }
        merged.push_back(Neighbor{r.distances[j], gid});
      }
    }
    if (write_hits.num_queries() > 0) {
      candidates += write_scored;
      for (size_t j = write_hits.offsets[q]; j < write_hits.offsets[q + 1];
           ++j) {
        const uint32_t gid = write_ids_[write_hits.ids[j]];
        if (filter == nullptr && tombstones_.count(gid) > 0) {
          ++fout;
          continue;
        }
        merged.push_back(Neighbor{write_hits.distances[j], gid});
      }
    }
    // Segments hold disjoint global ids, so a plain (distance, gid) sort is
    // the whole merge — no dedupe needed.
    std::sort(merged.begin(), merged.end());
    out->candidate_counts[q] = static_cast<uint32_t>(candidates);
    if (out->stats) {
      out->stats->candidates_scored[q] = static_cast<uint32_t>(candidates);
      out->stats->bins_probed[q] = bins;
      out->stats->filtered_out[q] =
          static_cast<uint32_t>(fout + write_filtered);
      out->stats->nodes_visited[q] = visited;
    }
    return merged;
  });
}

// ---------------------------------------------------------------------------
// Introspection.
// ---------------------------------------------------------------------------

size_t DynamicIndex::size() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return live_;
}

size_t DynamicIndex::EstimateCandidates(size_t budget) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  size_t total = write_ids_.size();
  for (const auto& segment : sealed_) {
    total += segment->index->EstimateCandidates(budget);
  }
  return total;
}

size_t DynamicIndex::num_sealed_segments() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return sealed_.size();
}

size_t DynamicIndex::write_segment_rows() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return write_ids_.size();
}

size_t DynamicIndex::num_tombstones() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return tombstones_.size();
}

uint32_t DynamicIndex::next_global_id() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return next_id_;
}

Status DynamicIndex::WithFrozenState(
    const std::function<Status(const FrozenState&)>& fn) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  const FrozenState state{next_id_,    sealed_,   write_data_.data(),
                          write_ids_.size(),      write_ids_, tombstones_};
  return fn(state);
}

}  // namespace usp
