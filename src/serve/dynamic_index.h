// The mutable serving layer: an LSM-style segmented index that absorbs live
// inserts and deletes while every underlying index type in the repository
// stays train-once/immutable.
//
// Layout. Writes land in a mutable **write segment** (a lock-protected
// append-only row buffer served by exact brute force). `Seal()` snapshots the
// write segment and trains an immutable **sealed segment** (any `Index`
// implementation — IVF-Flat by default) from it on the global thread pool
// while reads and writes continue; `Compact()` merges all sealed segments
// into one, physically dropping deleted rows. Deletes are **tombstones**: a
// deleted id is filtered from every result immediately and reclaimed at the
// next compaction. Queries fan out over the write segment and all sealed
// segments, and per-segment results — which carry exact distances
// (BatchSearchResult::distances) — are merged with a TopK heap and remapped
// from segment-local row numbers to stable global ids.
//
// Concurrency. One reader/writer lock guards the segment set: searches hold
// it shared for their whole fan-out/merge, appends and deletes take it
// exclusively for O(1) work, and Seal/Compact hold it only to snapshot and to
// install (training runs lock-free on a private copy). Background maintenance
// (`ScheduleSeal`/`ScheduleCompact`, or the auto thresholds in the config)
// runs on the global thread pool. tests/dynamic_index_test.cc stress-tests
// readers against a concurrent writer under TSan.
#ifndef USP_SERVE_DYNAMIC_INDEX_H_
#define USP_SERVE_DYNAMIC_INDEX_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "dist/metric.h"
#include "index/index.h"
#include "index/serialize.h"  // LoadMode for container-backed sealed segments
#include "tensor/matrix.h"
#include "util/status.h"

namespace usp {

/// Trains an immutable segment index over `base` (which the DynamicIndex
/// keeps alive next to the returned index). The result must view `base`,
/// index all of its rows, and report `metric`.
using SegmentBuilder =
    std::function<std::unique_ptr<Index>(const Matrix& base, Metric metric)>;

/// SegmentBuilder that seals write segments to SQ8 (quant/sq8_index.h):
/// 4x-compressed int8 codes scanned by the quantized kernels with exact fp32
/// re-rank, under any metric. Drop-in for DynamicIndexConfig::segment_builder
/// when sealed segments should trade a little recall headroom for memory and
/// scan speed.
SegmentBuilder Sq8SegmentBuilder(size_t rerank_budget = 100);

/// Serving-layer knobs.
struct DynamicIndexConfig {
  Metric metric = Metric::kSquaredL2;

  /// Auto-seal: once an Add grows the write segment to this many rows, a
  /// background Seal is scheduled on the global thread pool. 0 = manual
  /// Seal()/ScheduleSeal() only.
  size_t seal_threshold = 0;

  /// Auto-compact: after a seal, if more than this many sealed segments
  /// exist, a background Compact is scheduled. 0 = manual only.
  size_t max_sealed_segments = 0;

  /// Trains sealed segments. Defaults to IVF-Flat with nlist ~ sqrt(n).
  SegmentBuilder segment_builder;
};

/// Mutable, thread-safe ANN index composed of immutable segments. Global ids
/// returned by Add are stable across Seal/Compact/save/load and are what
/// SearchBatch reports. `budget` is forwarded to every sealed segment (probe
/// count / ef_search of the segment type); the write segment is always
/// scanned exactly.
class DynamicIndex : public Index {
 public:
  /// One immutable segment: the index, the storage backing it (empty when the
  /// index owns its storage, e.g. a container-loaded segment), and the
  /// local-row -> global-id map.
  struct SealedSegment {
    Matrix storage;
    std::unique_ptr<Index> index;
    std::vector<uint32_t> global_ids;
    size_t tombstoned = 0;  ///< live tombstones among this segment's rows
  };

  explicit DynamicIndex(size_t dim, DynamicIndexConfig config = {});

  /// Rehydrates from deserialized state (index/serialize.cc validates before
  /// calling): adopts sealed segments, write-segment rows with their ids, and
  /// the tombstone set; `next_global_id` must exceed every adopted id.
  DynamicIndex(size_t dim, DynamicIndexConfig config,
               std::vector<std::unique_ptr<SealedSegment>> sealed,
               Matrix write_rows, std::vector<uint32_t> write_ids,
               std::vector<uint32_t> tombstones, uint32_t next_global_id);

  ~DynamicIndex() override;

  // --- Mutation (thread-safe) ----------------------------------------------

  /// Appends one vector (dim() floats) to the write segment; returns its
  /// stable global id. May schedule a background seal (config.seal_threshold).
  uint32_t Add(const float* vector);

  /// Appends a batch under one lock acquisition; the returned global ids are
  /// contiguous even with concurrent writers. May schedule a background seal.
  std::vector<uint32_t> AddBatch(MatrixView vectors);

  /// Tombstones a point: it stops appearing in results immediately and its
  /// storage is reclaimed at the next compaction. Returns false when the id
  /// was never assigned, was already deleted, or was reclaimed.
  bool Delete(uint32_t global_id);

  /// True while `global_id` is live (assigned and not deleted).
  bool Contains(uint32_t global_id) const;

  /// Adopts an externally trained immutable index as a sealed segment,
  /// assigning its rows the next contiguous run of global ids (row i ->
  /// first + i); returns `first`. `storage` transfers ownership of the base
  /// matrix the segment views (pass {} when the index owns its storage, e.g.
  /// OpenIndex results). The segment's dim and metric must match.
  uint32_t AddSealedSegment(std::unique_ptr<Index> segment,
                            Matrix storage = Matrix());

  /// Incremental bulk load: opens the index container at `path` (e.g. an
  /// OutOfCoreBuilder product, serve/out_of_core_builder.h) and adopts it as
  /// a sealed segment — the disk-to-serving handoff without retraining.
  /// kMmap (the default) leaves the segment's vectors on disk and serves
  /// straight off the mapping. Returns the first assigned global id, or an
  /// error Status when the file cannot be opened or the container's dim,
  /// metric, or type is incompatible (dynamic/sharded containers do not
  /// nest) — validation happens before any state changes, so a failed call
  /// leaves the index untouched.
  StatusOr<uint32_t> AddSealedSegmentFromContainer(
      const std::string& path, LoadMode mode = LoadMode::kMmap);

  // --- Maintenance ---------------------------------------------------------

  /// Trains a sealed segment from a snapshot of the write segment and
  /// installs it; rows appended while training stay in the write segment.
  /// Reads and writes continue throughout. No-op on an empty write segment.
  void Seal();

  /// Merges all current sealed segments into one, dropping tombstoned rows
  /// (their ids are reclaimed). Reads and writes continue throughout.
  void Compact();

  /// Background variants: run Seal/Compact as a task on the global thread
  /// pool. Safe to call concurrently with everything else; maintenance
  /// operations serialize among themselves.
  void ScheduleSeal();
  void ScheduleCompact();

  /// Blocks until every scheduled background maintenance task has finished.
  void WaitForMaintenance() const;

  // --- Index interface -----------------------------------------------------

  /// Batched search over the segment set. An options.filter operates on the
  /// *stable global ids* this index reports; it is composed with the
  /// tombstone set and lazily translated to per-segment local-row selectors
  /// (evaluated per candidate, never an eager O(segment) pass), so every
  /// segment applies `allowed = filter(global_id) && !deleted(global_id)` as
  /// its own pushed-down selector — filtered hits are never post-dropped at
  /// the merge, and at full budget the result equals brute force over the
  /// live allowed set. Segment-level stats are summed per query; in the
  /// filtered path, tombstone drops are folded into filtered_out.
  using Index::SearchBatch;
  BatchSearchResult SearchBatch(const SearchRequest& request) const override;

  /// Radius search over the segment set: every sealed segment answers the
  /// sub-request with its own RadiusSearchBatch (tombstones and the global
  /// filter composed into the pushed-down local selector on the filtered
  /// path, tombstoned hits dropped at the merge otherwise — range results
  /// need no over-fetch: a radius row already holds *every* in-range hit),
  /// the write segment is range-scanned exactly, and per-segment rows are
  /// remapped to global ids and merged by (distance, global id). At full
  /// budget the result is bit-identical to BruteForceRadius over the live
  /// allowed rows.
  RadiusResult RadiusSearchBatch(const RadiusRequest& request) const override;
  size_t dim() const override { return dim_; }
  /// Number of live (non-tombstoned) points.
  size_t size() const override;

  /// Planner cost input (index/query_planner.h): summed sealed-segment
  /// estimates plus the always-scanned write segment. Note the top level
  /// never reroutes itself (no base_view to scan); each sealed segment plans
  /// its own sub-request against its translated selector.
  size_t EstimateCandidates(size_t budget) const override;
  Metric metric() const override { return config_.metric; }
  IndexType type() const override { return IndexType::kDynamic; }

  // --- Introspection -------------------------------------------------------

  size_t num_sealed_segments() const;
  size_t write_segment_rows() const;
  size_t num_tombstones() const;
  uint32_t next_global_id() const;
  const DynamicIndexConfig& config() const { return config_; }

  /// A consistent, lock-held view of the whole index handed to
  /// WithFrozenState: no append, delete, seal install, or compaction can run
  /// while the callback executes. This is the serializer's snapshot surface
  /// (index/serialize.cc); the references die with the callback.
  struct FrozenState {
    uint32_t next_global_id;
    const std::vector<std::unique_ptr<SealedSegment>>& sealed;
    const float* write_data;
    size_t write_rows;
    const std::vector<uint32_t>& write_ids;
    const std::unordered_set<uint32_t>& tombstones;
  };
  Status WithFrozenState(
      const std::function<Status(const FrozenState&)>& fn) const;

 private:
  /// id_map_ value: which segment a global id lives in (kWriteSegment for
  /// the write segment) and its local row there.
  struct SegmentRef {
    uint32_t segment;
    uint32_t local;
  };
  static constexpr uint32_t kWriteSegment = 0xFFFFFFFFu;

  std::unique_ptr<Index> BuildSegment(const Matrix& base) const;
  void FinishMaintenanceTask() const;

  const size_t dim_;
  const DynamicIndexConfig config_;

  /// Guards every member below. Searches hold it shared; Add/Delete and the
  /// snapshot/install phases of Seal/Compact hold it exclusively.
  mutable std::shared_mutex mutex_;
  std::vector<std::unique_ptr<SealedSegment>> sealed_;
  std::vector<float> write_data_;      ///< write segment, row-major
  std::vector<uint32_t> write_ids_;    ///< write row -> global id
  std::unordered_set<uint32_t> tombstones_;
  size_t write_tombstoned_ = 0;  ///< tombstones among write-segment rows
  std::unordered_map<uint32_t, SegmentRef> id_map_;
  uint32_t next_id_ = 0;
  size_t live_ = 0;
  bool seal_scheduled_ = false;
  bool compact_scheduled_ = false;

  /// Serializes Seal/Compact bodies (one maintenance op at a time).
  mutable std::mutex maintenance_mutex_;

  /// Tracks scheduled background tasks for WaitForMaintenance / destruction.
  mutable std::mutex maintenance_state_mutex_;
  mutable std::condition_variable maintenance_done_;
  mutable size_t pending_maintenance_ = 0;
};

}  // namespace usp

#endif  // USP_SERVE_DYNAMIC_INDEX_H_
