#include "serve/sharded_index.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "index/query_planner.h"
#include "ivf/ivf.h"
#include "util/thread_pool.h"

namespace usp {

uint32_t ShardedIndex::Place(uint32_t global_id, size_t num_shards) {
  // Fibonacci multiplicative hash: cheap, stateless, and spreads the dense
  // ids Add assigns evenly instead of striping them (id % N would put every
  // N-th insert on the same shard — fine for load, terrible for locality
  // experiments). Part of the on-disk contract: the loader revalidates saved
  // placements against this function.
  uint32_t h = global_id * 2654435761u;
  h ^= h >> 16;
  return h % static_cast<uint32_t>(num_shards);
}

ShardedIndex::ShardedIndex(size_t dim, ShardedIndexConfig config)
    : dim_(dim), config_(std::move(config)) {
  USP_CHECK(dim_ > 0);
  USP_CHECK(config_.num_shards > 0);
  shards_.resize(config_.num_shards);
  for (Shard& shard : shards_) {
    DynamicIndexConfig shard_config = config_.shard_config;
    shard_config.metric = config_.metric;
    auto dynamic = std::make_unique<DynamicIndex>(dim_, shard_config);
    shard.dynamic = dynamic.get();
    shard.index = std::move(dynamic);
  }
}

ShardedIndex::ShardedIndex(MatrixView base, ShardedIndexConfig config)
    : dim_(base.cols()), config_(std::move(config)) {
  USP_CHECK(dim_ > 0);
  USP_CHECK(config_.num_shards > 0);
  USP_CHECK(base.rows() < kInvalidId);
  const size_t n = base.rows();
  next_id_ = static_cast<uint32_t>(n);
  shards_.resize(config_.num_shards);
  placement_.resize(n, ShardRef{kUnplaced, 0});

  // Hash-partition the base rows. Row order is preserved within each shard,
  // so every shard's local_to_global is ascending — the monotonicity the
  // cross-shard tie-break relies on (see SearchBatch).
  std::vector<std::vector<float>> rows(config_.num_shards);
  for (size_t i = 0; i < n; ++i) {
    const uint32_t gid = static_cast<uint32_t>(i);
    const uint32_t s = Place(gid, config_.num_shards);
    placement_[i] = ShardRef{
        s, static_cast<uint32_t>(shards_[s].local_to_global.size())};
    shards_[s].local_to_global.push_back(gid);
    rows[s].insert(rows[s].end(), base.Row(i), base.Row(i) + dim_);
  }
  for (size_t s = 0; s < config_.num_shards; ++s) {
    Shard& shard = shards_[s];
    if (shard.local_to_global.empty()) continue;  // absent shard
    shard.storage =
        Matrix(shard.local_to_global.size(), dim_, std::move(rows[s]));
    shard.index = BuildShard(shard.storage);
  }
}

ShardedIndex::ShardedIndex(size_t dim, ShardedIndexConfig config,
                           std::vector<Shard> shards,
                           uint32_t next_global_id)
    : dim_(dim), config_(std::move(config)), next_id_(next_global_id) {
  USP_CHECK(dim_ > 0);
  USP_CHECK(!shards.empty());
  shards_ = std::move(shards);
  placement_.resize(next_id_, ShardRef{kUnplaced, 0});
  for (size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = shards_[s];
    if (shard.index != nullptr) {
      USP_CHECK(shard.index->dim() == dim_);
      USP_CHECK(shard.index->metric() == config_.metric);
    } else {
      USP_CHECK(shard.local_to_global.empty());
    }
    uint32_t prev = 0;
    for (size_t i = 0; i < shard.local_to_global.size(); ++i) {
      const uint32_t gid = shard.local_to_global[i];
      USP_CHECK(gid < next_id_);
      // Ascending ids keep the per-shard tie-break (local order) identical
      // to the global-id tie-break a single index would apply; duplicates
      // across shards are impossible because each gid hashes to one shard.
      USP_CHECK(i == 0 || gid > prev);
      prev = gid;
      USP_CHECK(Place(gid, shards_.size()) == s);
      USP_CHECK(placement_[gid].shard == kUnplaced);
      placement_[gid] = ShardRef{static_cast<uint32_t>(s),
                                 static_cast<uint32_t>(i)};
    }
  }
}

std::unique_ptr<Index> ShardedIndex::BuildShard(const Matrix& base) const {
  std::unique_ptr<Index> index;
  if (config_.shard_builder) {
    index = config_.shard_builder(base, config_.metric);
  } else {
    IvfConfig ivf;
    ivf.metric = config_.metric;
    const size_t n = base.rows();
    ivf.nlist = std::max<size_t>(
        1, std::min(n, static_cast<size_t>(
                           std::lround(std::sqrt(static_cast<double>(n))))));
    index = std::make_unique<IvfFlatIndex>(&base, ivf);
  }
  USP_CHECK(index != nullptr);
  USP_CHECK(index->dim() == dim_);
  USP_CHECK(index->metric() == config_.metric);
  USP_CHECK(index->size() == base.rows());
  // Nesting another router would break the one-level container embedding.
  USP_CHECK(index->type() != IndexType::kSharded &&
            index->type() != IndexType::kDynamic);
  return index;
}

// ---------------------------------------------------------------------------
// Mutation.
// ---------------------------------------------------------------------------

bool ShardedIndex::is_mutable() const {
  for (const Shard& shard : shards_) {
    if (shard.dynamic == nullptr) return false;
  }
  return true;
}

uint32_t ShardedIndex::Add(const float* vector) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  USP_CHECK(next_id_ < kInvalidId);
  const uint32_t gid = next_id_++;
  const uint32_t s = Place(gid, shards_.size());
  Shard& shard = shards_[s];
  USP_CHECK(shard.dynamic != nullptr);  // mutable configuration only
  const uint32_t local = shard.dynamic->Add(vector);
  USP_CHECK(local == shard.local_to_global.size());
  shard.local_to_global.push_back(gid);
  placement_.push_back(ShardRef{s, local});
  return gid;
}

std::vector<uint32_t> ShardedIndex::AddBatch(MatrixView vectors) {
  USP_CHECK(vectors.empty() || vectors.cols() == dim_);
  std::vector<uint32_t> ids;
  ids.reserve(vectors.rows());
  std::unique_lock<std::shared_mutex> lock(mutex_);
  USP_CHECK(vectors.rows() <= kInvalidId - next_id_);

  // Group rows by target shard so each shard sees one AddBatch (one lock
  // acquisition and one contiguous run of shard-local ids per shard).
  std::vector<std::vector<float>> rows(shards_.size());
  std::vector<std::vector<uint32_t>> gids(shards_.size());
  for (size_t i = 0; i < vectors.rows(); ++i) {
    const uint32_t gid = next_id_++;
    const uint32_t s = Place(gid, shards_.size());
    rows[s].insert(rows[s].end(), vectors.Row(i), vectors.Row(i) + dim_);
    gids[s].push_back(gid);
    ids.push_back(gid);
  }
  placement_.resize(next_id_, ShardRef{kUnplaced, 0});
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (gids[s].empty()) continue;
    Shard& shard = shards_[s];
    USP_CHECK(shard.dynamic != nullptr);
    const MatrixView view(rows[s].data(), gids[s].size(), dim_);
    const std::vector<uint32_t> locals = shard.dynamic->AddBatch(view);
    for (size_t i = 0; i < locals.size(); ++i) {
      USP_CHECK(locals[i] == shard.local_to_global.size());
      shard.local_to_global.push_back(gids[s][i]);
      placement_[gids[s][i]] =
          ShardRef{static_cast<uint32_t>(s), locals[i]};
    }
  }
  return ids;
}

bool ShardedIndex::Delete(uint32_t global_id) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  if (global_id >= placement_.size()) return false;
  const ShardRef ref = placement_[global_id];
  if (ref.shard == kUnplaced) return false;
  Shard& shard = shards_[ref.shard];
  USP_CHECK(shard.dynamic != nullptr);  // mutable configuration only
  return shard.dynamic->Delete(ref.local);
}

bool ShardedIndex::Contains(uint32_t global_id) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  if (global_id >= placement_.size()) return false;
  const ShardRef ref = placement_[global_id];
  if (ref.shard == kUnplaced) return false;
  const Shard& shard = shards_[ref.shard];
  return shard.dynamic == nullptr || shard.dynamic->Contains(ref.local);
}

// ---------------------------------------------------------------------------
// Search.
// ---------------------------------------------------------------------------

namespace {
/// Lazy per-shard view of the caller's global selector: shard-local id i is
/// allowed iff its global id passes the filter. Evaluated per candidate the
/// shard actually visits (never an eager O(shard) translation); reads
/// local_to_global safely because the search holds the placement lock shared
/// for the whole fan-out.
class LocalShardSelector final : public IdSelector {
 public:
  LocalShardSelector(const IdSelector* global,
                     const std::vector<uint32_t>& local_to_global)
      : global_(global), local_to_global_(local_to_global) {}

  bool is_member(uint32_t local) const override {
    return global_->is_member(local_to_global_[local]);
  }

 private:
  const IdSelector* global_;
  const std::vector<uint32_t>& local_to_global_;
};
}  // namespace

BatchSearchResult ShardedIndex::SearchBatch(const SearchRequest& request) const {
  // Planner hook. Like DynamicIndex, the router has no base_view, so the top
  // level only chooses between pushdown and post-filter; under pushdown the
  // filter fans out per shard (keeping options.plan), and each shard
  // re-plans its own sub-request against its translated selector.
  if (auto planned = MaybeReroute(*this, request)) return std::move(*planned);
  const MatrixView queries = request.queries;
  const SearchOptions& options = request.options;
  const IdSelector* filter = options.filter;
  const size_t k = options.k;
  USP_CHECK(queries.empty() || queries.cols() == dim_);
  const size_t nq = queries.rows();
  BatchSearchResult result;
  result.Prepare(nq, options);
  if (nq == 0 || k == 0) return result;

  // The placement lock is held shared across the whole fan-out + merge, so
  // local_to_global and the shard set cannot change under us. Shard-internal
  // mutation (a concurrent Add on another shard) queues behind its own
  // shard's lock, not this batch.
  std::shared_lock<std::shared_mutex> lock(mutex_);

  std::vector<size_t> live;
  live.reserve(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (shards_[s].index != nullptr && shards_[s].index->size() > 0) {
      live.push_back(s);
    }
  }

  // Thread budget: options.num_threads caps the total; each shard's
  // sub-request gets an equal slice (at least 1 = serial). Results are
  // bit-identical at every setting — each shard's SearchBatch already
  // guarantees that, and the merge below is per-query deterministic.
  const size_t nt = options.num_threads;
  const bool parallel_shards = nt != 1 && live.size() > 1;
  size_t per_shard = 1;
  if (nt != 1) {
    const size_t total =
        nt == 0 ? ThreadPool::Global().num_threads() : nt;
    per_shard = std::max<size_t>(1, total / std::max<size_t>(1, live.size()));
  }

  std::vector<BatchSearchResult> hits(live.size());
  auto search_shard = [&](size_t i) {
    const Shard& shard = shards_[live[i]];
    SearchRequest sub;
    sub.queries = queries;
    sub.options = options;
    sub.options.num_threads = per_shard;
    sub.options.k = std::min(shard.index->size(), k);
    if (filter == nullptr) {
      hits[i] = shard.index->SearchBatch(sub);
    } else {
      // The local view is only consulted during this synchronous sub-search.
      const LocalShardSelector local(filter, shard.local_to_global);
      sub.options.filter = &local;
      hits[i] = shard.index->SearchBatch(sub);
    }
  };
  if (parallel_shards) {
    ParallelInvoke(live.size(), search_shard);
  } else {
    for (size_t i = 0; i < live.size(); ++i) search_shard(i);
  }

  // Gather: per-query TopK merge on (exact distance, global id) — the same
  // contract as DynamicIndex's per-segment merge, so the merged row equals
  // what a single index over the union would produce. Per-shard rows are
  // already deduplicated and tombstone-free (each shard owns its ids and
  // filters its own deletes), so no drops happen here.
  ParallelFor(nq, 8, options.num_threads,
              [&](size_t begin, size_t end, size_t) {
    for (size_t q = begin; q < end; ++q) {
      TopK heap(k);
      size_t candidates = 0;
      for (size_t i = 0; i < live.size(); ++i) {
        const BatchSearchResult& batch = hits[i];
        const std::vector<uint32_t>& to_global =
            shards_[live[i]].local_to_global;
        candidates += batch.candidate_counts[q];
        const uint32_t* ids = batch.Row(q);
        const float* dists = batch.DistanceRow(q);
        for (size_t j = 0; j < batch.k; ++j) {
          if (ids[j] == kInvalidId) break;  // padding: no more hits
          heap.Push(dists[j], to_global[ids[j]]);
        }
      }
      result.candidate_counts[q] = static_cast<uint32_t>(candidates);
      result.SetRow(q, heap.TakeSorted());
      if (result.stats) {
        // Eq.4-style budget accounting must survive the fan-out: sum every
        // per-shard counter so S(R) still means "exact-distance work per
        // query" across the whole sharded index.
        uint32_t bins = 0, fout = 0, visited = 0;
        for (const BatchSearchResult& batch : hits) {
          if (!batch.stats) continue;
          bins += batch.stats->bins_probed[q];
          fout += batch.stats->filtered_out[q];
          visited += batch.stats->nodes_visited[q];
        }
        result.stats->candidates_scored[q] = result.candidate_counts[q];
        result.stats->bins_probed[q] = bins;
        result.stats->filtered_out[q] = fout;
        result.stats->nodes_visited[q] = visited;
      }
    }
  });
  return result;
}

RadiusResult ShardedIndex::RadiusSearchBatch(
    const RadiusRequest& request) const {
  const MatrixView queries = request.queries;
  const RadiusOptions& options = request.options;
  const IdSelector* filter = options.filter;
  USP_CHECK(queries.empty() || queries.cols() == dim_);
  const size_t nq = queries.rows();

  std::shared_lock<std::shared_mutex> lock(mutex_);

  std::vector<size_t> live;
  live.reserve(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (shards_[s].index != nullptr && shards_[s].index->size() > 0) {
      live.push_back(s);
    }
  }

  // Same thread-budget split as SearchBatch: the cap is the total across
  // shards, each sub-request gets an equal slice.
  const size_t nt = options.num_threads;
  const bool parallel_shards = nt != 1 && live.size() > 1;
  size_t per_shard = 1;
  if (nt != 1) {
    const size_t total = nt == 0 ? ThreadPool::Global().num_threads() : nt;
    per_shard = std::max<size_t>(1, total / std::max<size_t>(1, live.size()));
  }

  std::vector<RadiusResult> hits(live.size());
  auto search_shard = [&](size_t i) {
    const Shard& shard = shards_[live[i]];
    RadiusRequest sub;
    sub.queries = queries;
    sub.radius = request.radius;
    sub.options = options;
    sub.options.num_threads = per_shard;
    if (filter == nullptr) {
      hits[i] = shard.index->RadiusSearchBatch(sub);
    } else {
      // The local view is only consulted during this synchronous sub-search.
      const LocalShardSelector local(filter, shard.local_to_global);
      sub.options.filter = &local;
      hits[i] = shard.index->RadiusSearchBatch(sub);
    }
  };
  if (parallel_shards) {
    ParallelInvoke(live.size(), search_shard);
  } else {
    for (size_t i = 0; i < live.size(); ++i) search_shard(i);
  }

  // Gather: radius rows already hold every in-range hit, so the merge is a
  // remap + concat + (distance, global id) sort. Shards own disjoint id
  // ranges and filter their own deletes, so no dedupe or drops happen here.
  return CollectRadiusRows(nq, options, [&](size_t q, RadiusResult* out) {
    std::vector<Neighbor> merged;
    size_t candidates = 0;
    uint32_t bins = 0, fout = 0, visited = 0;
    for (size_t i = 0; i < live.size(); ++i) {
      const RadiusResult& r = hits[i];
      const std::vector<uint32_t>& to_global = shards_[live[i]].local_to_global;
      candidates += r.candidate_counts[q];
      if (r.stats) {
        bins += r.stats->bins_probed[q];
        fout += r.stats->filtered_out[q];
        visited += r.stats->nodes_visited[q];
      }
      for (size_t j = r.offsets[q]; j < r.offsets[q + 1]; ++j) {
        merged.push_back(Neighbor{r.distances[j], to_global[r.ids[j]]});
      }
    }
    std::sort(merged.begin(), merged.end());
    out->candidate_counts[q] = static_cast<uint32_t>(candidates);
    if (out->stats) {
      out->stats->candidates_scored[q] = static_cast<uint32_t>(candidates);
      out->stats->bins_probed[q] = bins;
      out->stats->filtered_out[q] = fout;
      out->stats->nodes_visited[q] = visited;
    }
    return merged;
  });
}

// ---------------------------------------------------------------------------
// Introspection.
// ---------------------------------------------------------------------------

size_t ShardedIndex::size() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  size_t total = 0;
  for (const Shard& shard : shards_) {
    if (shard.index != nullptr) total += shard.index->size();
  }
  return total;
}

size_t ShardedIndex::EstimateCandidates(size_t budget) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  size_t total = 0;
  for (const Shard& shard : shards_) {
    if (shard.index != nullptr) {
      total += shard.index->EstimateCandidates(budget);
    }
  }
  return total;
}

size_t ShardedIndex::shard_size(size_t s) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  USP_CHECK(s < shards_.size());
  return shards_[s].index == nullptr ? 0 : shards_[s].index->size();
}

uint32_t ShardedIndex::next_global_id() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return next_id_;
}

Status ShardedIndex::WithFrozenState(
    const std::function<Status(const FrozenState&)>& fn) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  const FrozenState state{next_id_, shards_};
  return fn(state);
}

}  // namespace usp
