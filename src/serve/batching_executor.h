// Async micro-batching front-end: turns single-query traffic into SIMD-width
// SearchBatch calls. The repo's fast paths — GEMM block scoring (dist/),
// fast-scan PQ/SQ8 (quant/), shard fan-out (serve/sharded_index.h) — all pay
// off at batch width, but a single user query arrives alone. The executor
// closes that gap: callers Submit one query and get a future; a dedicated
// batcher thread pops pending singles off a bounded BatchingQueue
// (util/batching_queue.h), coalesces compatible ones into one SearchRequest
// when either `max_batch` width or a `max_delay_us` deadline is reached,
// executes it on the global pool, and scatters the per-row results back to
// the futures.
//
// Coalescing state machine (the queue implements the waits, the executor the
// transitions):
//
//   IDLE ──first Submit──▶ FILLING(deadline = now + max_delay_us)
//   FILLING ──width == max_batch──▶ FLUSH (execute + scatter) ──▶ IDLE
//   FILLING ──deadline hit───────▶ FLUSH (whatever is pending) ──▶ IDLE
//
// Correctness contract: every index's SearchBatch computes result rows
// independently (bit-identical at every thread count and batch width — the
// repo-wide invariant pinned since PR 1), so the row a query gets inside a
// coalesced batch is bit-identical to the row it would get submitted alone
// with the same (k, budget, filter, plan). Queries whose options differ in
// any result-affecting field are never merged into one request: the batcher
// groups a popped batch by (k, budget, filter, plan, stats, num_threads)
// and issues one SearchBatch per group. tests/batching_executor_test.cc pins
// both properties; bench/bench_serving.cc measures the QPS payoff.
//
// Admission control: an optional per-tenant in-flight cap. Submit tags each
// request with a tenant id; when a tenant already has max_in_flight_per_tenant
// requests queued-or-executing, further Submits fail fast with
// kFailedPrecondition instead of letting one hot tenant consume the whole
// queue (global backpressure — a full queue — still blocks everyone).
#ifndef USP_SERVE_BATCHING_EXECUTOR_H_
#define USP_SERVE_BATCHING_EXECUTOR_H_

#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "index/index.h"
#include "util/batching_queue.h"
#include "util/status.h"

namespace usp {

struct BatchingExecutorConfig {
  /// Widest coalesced batch; also the per-pop bound of the request queue.
  size_t max_batch = 32;

  /// How long the batcher waits for more singles after the first of a batch
  /// arrives before flushing short (the FILLING deadline). 0 flushes
  /// immediately with whatever one pop observes.
  size_t max_delay_us = 200;

  /// Bound of the pending-request queue; Submit blocks (backpressure) while
  /// full.
  size_t max_queue = 1024;

  /// Per-tenant in-flight cap (queued + executing). 0 = unlimited.
  size_t max_in_flight_per_tenant = 0;
};

/// One query's answer, scattered out of a coalesced BatchSearchResult row.
/// Rows follow the index padding contract: real neighbors first (ascending
/// by distance), then kInvalidId / +inf slots.
struct SingleSearchResult {
  size_t k = 0;
  std::vector<uint32_t> ids;
  std::vector<float> distances;
  uint32_t candidates_scored = 0;

  /// Engaged per counter only when the request asked for stats.
  uint32_t bins_probed = 0;
  uint32_t filtered_out = 0;
  uint32_t nodes_visited = 0;
};

/// Async single-query front-end over any Index. Thread-safe: any number of
/// client threads may Submit concurrently; one internal batcher thread
/// coalesces and executes. The index must outlive the executor.
class BatchingExecutor {
 public:
  BatchingExecutor(const Index* index, BatchingExecutorConfig config = {});

  /// Shuts down (fulfilling every pending future) before destruction.
  ~BatchingExecutor();

  BatchingExecutor(const BatchingExecutor&) = delete;
  BatchingExecutor& operator=(const BatchingExecutor&) = delete;

  /// Enqueues one query (dim() floats, copied — the caller's buffer may die
  /// at return). `options.filter`, if set, must outlive the returned
  /// future's completion. Fails with kFailedPrecondition when the executor
  /// is shut down or the tenant is at its in-flight cap; otherwise blocks
  /// while the queue is full and returns a future that is always eventually
  /// fulfilled (drain on shutdown included).
  StatusOr<std::future<SingleSearchResult>> Submit(const float* query,
                                                   SearchOptions options,
                                                   uint64_t tenant = 0);

  /// Blocks until every request submitted before the call has been executed
  /// and its future fulfilled. Concurrent Submits may keep the executor busy
  /// past the return; Drain only promises the past is flushed.
  void Drain();

  /// Stops admission, drains every pending request (their futures are
  /// fulfilled normally), and joins the batcher thread. Idempotent; Submit
  /// afterwards fails with kFailedPrecondition.
  void Shutdown();

  // --- Coalescing telemetry (monotonic; for tests and bench) ---------------

  /// Requests executed so far.
  uint64_t requests_executed() const;
  /// SearchBatch calls issued so far (<= requests; the gap is the win).
  uint64_t batches_executed() const;
  /// Widest single SearchBatch issued so far.
  size_t max_batch_width() const;

  const Index& index() const { return *index_; }
  const BatchingExecutorConfig& config() const { return config_; }

 private:
  struct Pending {
    std::vector<float> query;
    SearchOptions options;
    uint64_t tenant = 0;
    std::promise<SingleSearchResult> promise;
  };

  void BatcherLoop();
  void ExecuteGroup(std::vector<Pending>& batch, const std::vector<size_t>& group);
  void FinishRequest(uint64_t tenant);

  const Index* index_;
  const BatchingExecutorConfig config_;
  BatchingQueue<Pending> queue_;
  std::thread batcher_;

  /// Guards the admission/telemetry state below (never held during
  /// SearchBatch execution).
  mutable std::mutex state_mutex_;
  std::condition_variable idle_;  ///< signaled when in_flight_ drops to 0
  std::unordered_map<uint64_t, size_t> tenant_in_flight_;
  size_t in_flight_ = 0;  ///< queued + executing, all tenants
  bool shutdown_ = false;
  uint64_t requests_executed_ = 0;
  uint64_t batches_executed_ = 0;
  size_t max_batch_width_ = 0;
};

}  // namespace usp

#endif  // USP_SERVE_BATCHING_EXECUTOR_H_
