// Scatter-gather sharding: one Index composed of N shards (any Index type,
// including the mutable DynamicIndex) behind a hash-based id->shard
// placement. This is the horizontal half of ROADMAP item 3 — one index
// becomes N cooperating shards that search in parallel on the shared pool —
// and the natural partner of serve/batching_executor.h, which widens the
// traffic those shards see.
//
// Placement. Every point has a stable *global id*. A multiplicative hash of
// the global id picks its shard (`Place`), and a dense placement table maps
// global id -> (shard, shard-local id) so Add/Delete/Contains route in O(1).
// In the mutable configuration every shard is a DynamicIndex and global ids
// are assigned densely by Add; in the static configuration the shards are
// built up front by hash-partitioning an existing base matrix and global ids
// are the original row numbers, so results compare 1:1 against a single
// index over the same matrix.
//
// Search. SearchBatch fans the batch out to every live shard on the global
// pool (util/thread_pool.h ParallelInvoke; the per-request thread cap is
// split across shards), translating an options.filter — which speaks global
// ids — into a per-shard local selector evaluated lazily per candidate.
// Per-shard results carry exact distances, so the gather is a TopK merge on
// (distance, global id) exactly like DynamicIndex's per-segment merge: the
// merged row is bit-identical to what one index holding the union of the
// shards would return, filtered or not, at every shard count
// (tests/sharded_index_test.cc pins {1, 3, 8}).
//
// Persistence. SaveIndex embeds each shard as a nested container-v2 blob
// (kSegmentBlob) plus its local->global id map (kIdMap), the same pattern
// DynamicIndex uses for sealed segments, so a sharded index round-trips
// through OpenIndex in both heap and mmap modes (docs/FORMAT.md "Sharded
// records").
#ifndef USP_SERVE_SHARDED_INDEX_H_
#define USP_SERVE_SHARDED_INDEX_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "dist/metric.h"
#include "index/index.h"
#include "serve/dynamic_index.h"
#include "tensor/matrix.h"
#include "util/status.h"

namespace usp {

/// Builds the index of one static shard over its hash-partitioned rows. Same
/// contract as SegmentBuilder: the result must view `base`, index all of its
/// rows, and report `metric`. Defaults to IVF-Flat with nlist ~ sqrt(n).
using ShardBuilder = SegmentBuilder;

struct ShardedIndexConfig {
  Metric metric = Metric::kSquaredL2;

  /// Number of shards; fixed for the index's lifetime (placement is a pure
  /// function of (global id, num_shards), so resharding means rebuilding).
  size_t num_shards = 4;

  /// Mutable configuration only: per-shard DynamicIndex knobs
  /// (seal_threshold and max_sealed_segments apply to each shard
  /// independently; metric is overridden by `metric` above).
  DynamicIndexConfig shard_config;

  /// Static configuration only: per-shard index builder.
  ShardBuilder shard_builder;
};

/// N-shard scatter-gather index. Thread-safe the same way DynamicIndex is:
/// searches hold a reader lock across the whole fan-out + merge, mutations
/// take it exclusively for O(1) routing work (the per-shard mutation then
/// runs under the shard's own lock).
class ShardedIndex : public Index {
 public:
  /// One shard: its index (nullptr for a static shard whose hash partition
  /// received no rows), optional owned storage the index views, the
  /// local-row -> global-id map, and a non-owning DynamicIndex handle when
  /// the shard is mutable (null for static shards).
  struct Shard {
    std::unique_ptr<Index> index;
    Matrix storage;
    std::vector<uint32_t> local_to_global;
    DynamicIndex* dynamic = nullptr;
  };

  /// Mutable sharded index: `num_shards` empty DynamicIndex shards. Points
  /// enter through Add/AddBatch and get dense global ids.
  ShardedIndex(size_t dim, ShardedIndexConfig config);

  /// Static sharded index: hash-partitions `base` across the shards and
  /// builds each shard with config.shard_builder (IVF-Flat default). Global
  /// id of base row i is i, so results are directly comparable to any
  /// single index built over `base`.
  ShardedIndex(MatrixView base, ShardedIndexConfig config);

  /// Rehydrates from deserialized state (index/serialize.cc validates before
  /// calling): adopts `shards` whose local_to_global entries must be unique
  /// across shards and below `next_global_id`, and must agree with the hash
  /// placement.
  ShardedIndex(size_t dim, ShardedIndexConfig config,
               std::vector<Shard> shards, uint32_t next_global_id);

  /// Stable shard choice for a global id: multiplicative hash mod
  /// num_shards. Part of the persistence contract — the loader revalidates
  /// saved placements against it.
  static uint32_t Place(uint32_t global_id, size_t num_shards);

  // --- Mutation (mutable configuration; thread-safe) -----------------------

  /// True when every shard is mutable (DynamicIndex); Add/AddBatch/Delete
  /// require it.
  bool is_mutable() const;

  /// Appends one vector (dim() floats) to the shard its new global id hashes
  /// to; returns the global id.
  uint32_t Add(const float* vector);

  /// Appends a batch; one placement-lock acquisition, then one grouped
  /// AddBatch per target shard. Returned ids are contiguous.
  std::vector<uint32_t> AddBatch(MatrixView vectors);

  /// Tombstones a point in its shard. Returns false when the id was never
  /// assigned or was already deleted.
  bool Delete(uint32_t global_id);

  /// True while `global_id` is live.
  bool Contains(uint32_t global_id) const;

  // --- Index interface -----------------------------------------------------

  /// Scatter-gather search; see file comment. options.filter speaks global
  /// ids; options.num_threads caps the *total* parallelism (split across
  /// shards, each shard's sub-request gets an equal slice). Results are
  /// bit-identical at every thread count and every shard count.
  using Index::SearchBatch;
  BatchSearchResult SearchBatch(const SearchRequest& request) const override;

  /// Scatter-gather radius search: every live shard answers the sub-request
  /// with its own RadiusSearchBatch (global filter translated to the lazy
  /// per-shard selector; mutable shards compose their tombstones themselves),
  /// then per-query rows are remapped to global ids, concatenated, and sorted
  /// by (distance, global id). Bit-identical to one index over the union of
  /// the shards at every shard count, and to BruteForceRadius at full budget.
  RadiusResult RadiusSearchBatch(const RadiusRequest& request) const override;
  size_t dim() const override { return dim_; }
  /// Number of live points across all shards.
  size_t size() const override;
  /// Summed shard estimates (planner cost input). Like DynamicIndex, the top
  /// level has no base_view; each shard re-plans its own sub-request.
  size_t EstimateCandidates(size_t budget) const override;
  Metric metric() const override { return config_.metric; }
  IndexType type() const override { return IndexType::kSharded; }

  // --- Introspection -------------------------------------------------------

  size_t num_shards() const { return shards_.size(); }
  /// Live points in shard `s` (0 for an absent static shard).
  size_t shard_size(size_t s) const;
  uint32_t next_global_id() const;
  const ShardedIndexConfig& config() const { return config_; }

  /// A consistent, lock-held view for the serializer (index/serialize.cc):
  /// no mutation can run while the callback executes. For mutable shards the
  /// callback must snapshot through each shard's own WithFrozenState (shard
  /// pointers stay valid; the placement lock does not freeze shard-internal
  /// state, SaveIndex on the shard does).
  struct FrozenState {
    uint32_t next_global_id;
    const std::vector<Shard>& shards;
  };
  Status WithFrozenState(
      const std::function<Status(const FrozenState&)>& fn) const;

 private:
  /// placement_ entry: which shard a global id lives in and its local id
  /// there. kUnplaced marks ids that were never assigned (holes cannot occur
  /// in practice — ids are dense — but the loader tolerates them).
  struct ShardRef {
    uint32_t shard;
    uint32_t local;
  };
  static constexpr uint32_t kUnplaced = 0xFFFFFFFFu;

  std::unique_ptr<Index> BuildShard(const Matrix& base) const;

  const size_t dim_;
  const ShardedIndexConfig config_;

  /// Guards placement_ / next_id_ / the shard vector's shape. Shard-internal
  /// state has its own synchronization (DynamicIndex locks), so this lock is
  /// only about routing consistency.
  mutable std::shared_mutex mutex_;
  std::vector<Shard> shards_;
  std::vector<ShardRef> placement_;  ///< indexed by global id
  uint32_t next_id_ = 0;
};

}  // namespace usp

#endif  // USP_SERVE_SHARDED_INDEX_H_
