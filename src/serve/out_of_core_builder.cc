#include "serve/out_of_core_builder.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <vector>

#include "baselines/kmeans.h"
#include "index/container.h"
#include "index/index_records.h"
#include "ivf/ivf.h"
#include "quant/sq8_index.h"
#include "tensor/ops.h"
#include "util/io.h"

namespace usp {

namespace {

// Total ids buffered across all posting lists before spilling (4 MiB of
// uint32). Divided evenly per list, so memory is flat in nlist.
constexpr size_t kPostingBufferIds = 1u << 20;

// Bytes per Append when relaying a temp file into a container section.
constexpr size_t kRelayBytes = 1u << 20;

/// Buffered append-only spill of per-list posting ids to one temp file per
/// list. Files are opened only for the duration of a flush, so the open-fd
/// count stays O(1) at any nlist. Reading one list back is the "one list" of
/// the builder's RSS contract.
class PostingSpill {
 public:
  PostingSpill(std::string prefix, size_t nlist)
      : prefix_(std::move(prefix)),
        buffers_(nlist),
        counts_(nlist, 0),
        per_list_cap_(std::max<size_t>(
            64, kPostingBufferIds / std::max<size_t>(nlist, 1))) {}

  ~PostingSpill() { RemoveFiles(); }

  std::string ListPath(size_t list) const {
    return prefix_ + std::to_string(list);
  }

  Status Add(uint32_t list, uint32_t id) {
    std::vector<uint32_t>& buffer = buffers_[list];
    buffer.push_back(id);
    ++counts_[list];
    if (buffer.size() >= per_list_cap_) return Flush(list);
    return Status::Ok();
  }

  Status FlushAll() {
    for (size_t list = 0; list < buffers_.size(); ++list) {
      if (!buffers_[list].empty()) {
        Status status = Flush(list);
        if (!status.ok()) return status;
      }
    }
    return Status::Ok();
  }

  /// Reads one flushed list back (ids in append = base-row order).
  StatusOr<std::vector<uint32_t>> ReadList(size_t list) const {
    std::vector<uint32_t> ids(counts_[list]);
    if (ids.empty()) return ids;
    std::FILE* f = std::fopen(ListPath(list).c_str(), "rb");
    if (f == nullptr) {
      return Status::IoError("cannot open " + ListPath(list));
    }
    const size_t got = std::fread(ids.data(), sizeof(uint32_t), ids.size(), f);
    std::fclose(f);
    if (got != ids.size()) {
      return Status::IoError("truncated posting spill " + ListPath(list));
    }
    return ids;
  }

  const std::vector<uint64_t>& counts() const { return counts_; }

  void RemoveFiles() {
    for (size_t list = 0; list < buffers_.size(); ++list) {
      if (counts_[list] > buffers_[list].size()) {
        std::remove(ListPath(list).c_str());
      }
    }
  }

 private:
  Status Flush(size_t list) {
    std::vector<uint32_t>& buffer = buffers_[list];
    std::FILE* f = std::fopen(ListPath(list).c_str(), "ab");
    if (f == nullptr) {
      return Status::IoError("cannot open " + ListPath(list) + " for writing");
    }
    const size_t put =
        std::fwrite(buffer.data(), sizeof(uint32_t), buffer.size(), f);
    const bool close_ok = std::fclose(f) == 0;
    if (put != buffer.size() || !close_ok) {
      return Status::IoError("short write to " + ListPath(list));
    }
    buffer.clear();
    return Status::Ok();
  }

  std::string prefix_;
  std::vector<std::vector<uint32_t>> buffers_;
  std::vector<uint64_t> counts_;  ///< total ids added per list
  size_t per_list_cap_;
};

/// The trained coarse model of an IVF build: the exact centroid payload to
/// persist plus the scorer residency assignment runs through.
struct IvfModel {
  Matrix centroids;  ///< bytes of the kCentroids section
  std::unique_ptr<KMeansPartitioner> assigner;
  bool assign_normalized = false;  ///< cosine: assign over unit rows
  double train_inertia = 0.0;
  size_t epochs_run = 0;
};

/// ChunkStream decorator yielding unit-normalized copies of the inner
/// stream's chunks (spherical k-means training under kCosine).
class NormalizingStream : public ChunkStream {
 public:
  explicit NormalizingStream(ChunkStream* inner) : inner_(inner) {}

  size_t dim() const override { return inner_->dim(); }
  size_t num_rows() const override { return inner_->num_rows(); }
  Status Reset() override { return inner_->Reset(); }

  StatusOr<MatrixView> NextChunk(size_t max_rows) override {
    StatusOr<MatrixView> chunk = inner_->NextChunk(max_rows);
    if (!chunk.ok()) return chunk;
    buffer_ = chunk.value().Clone();
    NormalizeRows(&buffer_);
    return MatrixView(buffer_);
  }

 private:
  ChunkStream* inner_;
  Matrix buffer_;
};

StatusOr<IvfModel> TrainIvf(ChunkStream* base, const OutOfCoreConfig& config) {
  StatusOr<Matrix> sample =
      ReservoirSample(base, config.sample_rows, config.seed);
  if (!sample.ok()) return sample.status();
  const bool cosine = config.metric == Metric::kCosine;
  if (cosine) NormalizeRows(&sample.value());

  MiniBatchKMeansConfig mc;
  mc.num_clusters = config.nlist;
  mc.epochs = config.train_epochs;
  mc.chunk_rows = config.chunk_rows;
  mc.tolerance = config.tolerance;
  mc.seed = config.seed;
  NormalizingStream normalized(base);
  ChunkStream* train_stream = cosine ? &normalized : base;
  StatusOr<MiniBatchKMeansResult> trained =
      RunMiniBatchKMeans(train_stream, sample.value(), mc);
  if (!trained.ok()) return trained.status();

  IvfModel model;
  model.train_inertia = trained.value().inertia;
  model.epochs_run = trained.value().epochs_run;
  model.assign_normalized = cosine;
  if (cosine) {
    // Mirror the in-memory cosine IVF: unit-normalized centroids are both
    // the residency scorer and the persisted payload.
    model.assigner = std::make_unique<KMeansPartitioner>(
        std::move(trained.value().centroids), Metric::kCosine);
    model.centroids = model.assigner->centroids().Clone();
  } else {
    // L2 and IP both keep L2 list residency (standard IVF-IP); the metric
    // only changes probe/rerank behavior at load time.
    model.centroids = std::move(trained.value().centroids);
    model.assigner =
        std::make_unique<KMeansPartitioner>(KMeansPartitioner::FromTrainedCentroids(
            model.centroids.Clone(), Metric::kSquaredL2));
  }
  return model;
}

/// One pass over the base: assigns every chunk through the model's scorer
/// and hands (raw chunk, assignments, first row id) to `fn`, which returns a
/// Status. Bit-deterministic for a given chunk size, which is why the
/// disk-direct and in-memory paths share it.
template <typename Fn>
Status ForEachAssignedChunk(ChunkStream* base, const IvfModel& model,
                            size_t chunk_rows, Fn&& fn) {
  Status status = base->Reset();
  if (!status.ok()) return status;
  // AssignBins materializes a rows x nlist score matrix, so assignment runs
  // in fixed sub-blocks: the score buffer stays O(block * nlist) however
  // large the streaming chunk is. The block size is a constant — part of the
  // deterministic pipeline both build paths share, never config-dependent.
  constexpr size_t kAssignBlockRows = 4096;
  size_t row_base = 0;
  for (;;) {
    StatusOr<MatrixView> chunk_or = base->NextChunk(chunk_rows);
    if (!chunk_or.ok()) return chunk_or.status();
    const MatrixView chunk = chunk_or.value();
    if (chunk.rows() == 0) break;
    Matrix normalized;
    MatrixView assign_rows = chunk;
    if (model.assign_normalized) {
      normalized = chunk.Clone();
      NormalizeRows(&normalized);
      assign_rows = MatrixView(normalized);
    }
    std::vector<uint32_t> assignments(chunk.rows());
    for (size_t start = 0; start < assign_rows.rows();
         start += kAssignBlockRows) {
      const size_t count =
          std::min(kAssignBlockRows, assign_rows.rows() - start);
      const MatrixView block(assign_rows.Row(start), count,
                             assign_rows.cols());
      const std::vector<uint32_t> bins = model.assigner->AssignBins(block);
      std::copy(bins.begin(), bins.end(), assignments.begin() + start);
    }
    status = fn(chunk, assignments, row_base);
    if (!status.ok()) return status;
    row_base += chunk.rows();
  }
  return Status::Ok();
}

/// Streaming min/max range fit with Sq8Index::TrainRanges' arithmetic.
struct Sq8Ranges {
  std::vector<float> mins, maxs, scales;
  bool initialized = false;

  void Accumulate(MatrixView chunk) {
    const size_t d = chunk.cols();
    size_t first = 0;
    if (!initialized && chunk.rows() > 0) {
      mins.assign(chunk.Row(0), chunk.Row(0) + d);
      maxs = mins;
      initialized = true;
      first = 1;
    }
    for (size_t i = first; i < chunk.rows(); ++i) {
      const float* row = chunk.Row(i);
      for (size_t j = 0; j < d; ++j) {
        mins[j] = std::min(mins[j], row[j]);
        maxs[j] = std::max(maxs[j], row[j]);
      }
    }
  }

  void FinishScales() {
    scales.resize(mins.size());
    for (size_t j = 0; j < mins.size(); ++j) {
      scales[j] = (maxs[j] - mins[j]) / 255.0f;
    }
  }
};

// Sq8Index::EncodeVector's exact arithmetic — the streamed codes must match
// the in-memory encoder bit for bit.
void EncodeSq8Row(const Sq8Ranges& ranges, const float* x, size_t d,
                  uint8_t* out) {
  for (size_t j = 0; j < d; ++j) {
    if (ranges.scales[j] <= 0.0f) {
      out[j] = 0;
      continue;
    }
    const long code = std::lround((x[j] - ranges.mins[j]) / ranges.scales[j]);
    out[j] =
        static_cast<uint8_t>(std::min<long>(std::max<long>(code, 0), 255));
  }
}

/// Relays an entire temp file into the current container section.
Status RelayFile(const std::string& path, StreamingContainerWriter* writer) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  std::vector<uint8_t> buffer(kRelayBytes);
  Status status = Status::Ok();
  for (;;) {
    const size_t got = std::fread(buffer.data(), 1, buffer.size(), f);
    if (got == 0) {
      if (std::ferror(f) != 0) status = Status::IoError("short read of " + path);
      break;
    }
    status = writer->Append(buffer.data(), got);
    if (!status.ok()) break;
  }
  std::fclose(f);
  return status;
}

StatusOr<OutOfCoreBuildStats> BuildIvfFlat(ChunkStream* base,
                                           const std::string& index_path,
                                           const OutOfCoreConfig& config) {
  StatusOr<IvfModel> model = TrainIvf(base, config);
  if (!model.ok()) return model.status();
  const uint64_t n = base->num_rows();
  const uint64_t d = base->dim();
  const size_t nlist = model.value().centroids.rows();

  IvfFlatConfigRecord record{};
  record.nlist = nlist;
  record.kmeans_iterations = config.train_epochs;
  record.seed = config.seed;

  // SaveIvfFlat's exact section order; all sizes are known before the encode
  // pass starts, so the container streams out front to back.
  StreamingContainerWriter writer(IndexType::kIvfFlat, config.metric, d, n);
  writer.PlanSection(SectionTag::kConfig, 0, sizeof(record));
  writer.PlanSection(SectionTag::kCentroids, 0,
                     model.value().centroids.size() * sizeof(float));
  writer.PlanSection(SectionTag::kBaseVectors, 0, n * d * sizeof(float));
  writer.PlanSection(SectionTag::kAssignments, 0, n * sizeof(uint32_t));

  FileWriter out(index_path);
  if (!out.ok()) {
    return Status::IoError("cannot open " + index_path + " for writing");
  }
  Status status = writer.Start(&out, index_path);
  if (!status.ok()) return status;
  status = writer.Append(&record, sizeof(record));
  if (!status.ok()) return status;
  status = writer.Append(model.value().centroids.data(),
                         model.value().centroids.size() * sizeof(float));
  if (!status.ok()) return status;

  // Encode pass: base rows go straight into the container; assignments spill
  // row-ordered to one temp file (relayed into kAssignments afterwards) and
  // id-per-list to the posting spill.
  const std::string assign_path = index_path + ".assign.tmp";
  PostingSpill postings(index_path + ".list.tmp.", nlist);
  {
    std::FILE* assign_file = std::fopen(assign_path.c_str(), "wb");
    if (assign_file == nullptr) {
      return Status::IoError("cannot open " + assign_path + " for writing");
    }
    size_t chunks = 0;
    status = ForEachAssignedChunk(
        base, model.value(), config.chunk_rows,
        [&](MatrixView chunk, const std::vector<uint32_t>& assignments,
            size_t row_base) {
          ++chunks;
          Status st =
              writer.Append(chunk.data(), chunk.size() * sizeof(float));
          if (!st.ok()) return st;
          if (std::fwrite(assignments.data(), sizeof(uint32_t),
                          assignments.size(),
                          assign_file) != assignments.size()) {
            return Status::IoError("short write to " + assign_path);
          }
          for (size_t i = 0; i < assignments.size(); ++i) {
            st = postings.Add(assignments[i],
                              static_cast<uint32_t>(row_base + i));
            if (!st.ok()) return st;
          }
          return Status::Ok();
        });
    const bool close_ok = std::fclose(assign_file) == 0;
    if (status.ok() && !close_ok) {
      status = Status::IoError("short write to " + assign_path);
    }
    if (!status.ok()) {
      std::remove(assign_path.c_str());
      return status;
    }

    status = RelayFile(assign_path, &writer);
    std::remove(assign_path.c_str());
    if (!status.ok()) return status;
    status = writer.Finish();
    if (!status.ok()) return status;
    if (!out.Close()) return Status::IoError("short write to " + index_path);

    OutOfCoreBuildStats stats;
    stats.rows = n;
    stats.dim = d;
    stats.chunks = chunks;
    stats.file_size = writer.file_size();
    stats.nlist = nlist;
    stats.epochs_run = model.value().epochs_run;
    stats.train_inertia = model.value().train_inertia;

    // List-balance stats plus an integrity probe of the spill: the largest
    // list is read back whole (the RSS contract's "one list") and must hold
    // exactly its count of strictly increasing base rows.
    status = postings.FlushAll();
    if (!status.ok()) return status;
    const std::vector<uint64_t>& counts = postings.counts();
    size_t largest = 0;
    uint64_t total = 0;
    stats.min_list = std::numeric_limits<size_t>::max();
    for (size_t list = 0; list < counts.size(); ++list) {
      total += counts[list];
      if (counts[list] == 0) ++stats.empty_lists;
      stats.min_list = std::min<size_t>(stats.min_list, counts[list]);
      stats.max_list = std::max<size_t>(stats.max_list, counts[list]);
      if (counts[list] > counts[largest]) largest = list;
    }
    if (total != n) {
      return Status::Internal("posting spill lost rows in " + index_path);
    }
    StatusOr<std::vector<uint32_t>> list = postings.ReadList(largest);
    if (!list.ok()) return list.status();
    for (size_t i = 0; i < list.value().size(); ++i) {
      const uint32_t id = list.value()[i];
      if (id >= n || (i > 0 && id <= list.value()[i - 1])) {
        return Status::Internal("posting spill corrupt for list " +
                                std::to_string(largest) + " of " + index_path);
      }
    }
    return stats;
  }
}

StatusOr<OutOfCoreBuildStats> BuildSq8(ChunkStream* base,
                                       const std::string& index_path,
                                       const OutOfCoreConfig& config) {
  const uint64_t n = base->num_rows();
  const uint64_t d = base->dim();
  const bool cosine = config.metric == Metric::kCosine;

  Sq8ConfigRecord record{};
  record.rerank_budget = config.rerank_budget;

  // SaveSq8's exact section order.
  StreamingContainerWriter writer(IndexType::kSq8, config.metric, d, n);
  writer.PlanSection(SectionTag::kConfig, 0, sizeof(record));
  writer.PlanSection(SectionTag::kBaseVectors, 0, n * d * sizeof(float));
  writer.PlanSection(SectionTag::kSq8Params, 0, 2 * d * sizeof(float));
  writer.PlanSection(SectionTag::kSq8Codes, 0, n * d);

  FileWriter out(index_path);
  if (!out.ok()) {
    return Status::IoError("cannot open " + index_path + " for writing");
  }
  Status status = writer.Start(&out, index_path);
  if (!status.ok()) return status;
  status = writer.Append(&record, sizeof(record));
  if (!status.ok()) return status;

  // Pass 1: raw rows into kBaseVectors while the range fit accumulates
  // (over unit-normalized copies under cosine, like the in-memory trainer).
  status = base->Reset();
  if (!status.ok()) return status;
  Sq8Ranges ranges;
  size_t chunks = 0;
  for (;;) {
    StatusOr<MatrixView> chunk_or = base->NextChunk(config.chunk_rows);
    if (!chunk_or.ok()) return chunk_or.status();
    const MatrixView chunk = chunk_or.value();
    if (chunk.rows() == 0) break;
    ++chunks;
    status = writer.Append(chunk.data(), chunk.size() * sizeof(float));
    if (!status.ok()) return status;
    if (cosine) {
      Matrix normalized = chunk.Clone();
      NormalizeRows(&normalized);
      ranges.Accumulate(normalized);
    } else {
      ranges.Accumulate(chunk);
    }
  }
  if (!ranges.initialized) {
    return Status::InvalidArgument("cannot build an SQ8 index from 0 rows");
  }
  ranges.FinishScales();
  status = writer.Append(ranges.mins.data(), d * sizeof(float));
  if (!status.ok()) return status;
  status = writer.Append(ranges.scales.data(), d * sizeof(float));
  if (!status.ok()) return status;

  // Pass 2: re-stream and encode.
  status = base->Reset();
  if (!status.ok()) return status;
  std::vector<uint8_t> codes;
  for (;;) {
    StatusOr<MatrixView> chunk_or = base->NextChunk(config.chunk_rows);
    if (!chunk_or.ok()) return chunk_or.status();
    MatrixView chunk = chunk_or.value();
    if (chunk.rows() == 0) break;
    Matrix normalized;
    if (cosine) {
      normalized = chunk.Clone();
      NormalizeRows(&normalized);
      chunk = MatrixView(normalized);
    }
    codes.resize(chunk.size());
    for (size_t i = 0; i < chunk.rows(); ++i) {
      EncodeSq8Row(ranges, chunk.Row(i), d, codes.data() + i * d);
    }
    status = writer.Append(codes.data(), chunk.size());
    if (!status.ok()) return status;
  }
  status = writer.Finish();
  if (!status.ok()) return status;
  if (!out.Close()) return Status::IoError("short write to " + index_path);

  OutOfCoreBuildStats stats;
  stats.rows = n;
  stats.dim = d;
  stats.chunks = chunks;
  stats.file_size = writer.file_size();
  return stats;
}

}  // namespace

StatusOr<OutOfCoreBuildStats> OutOfCoreBuilder::Build(
    const std::string& fvecs_path, const std::string& index_path) const {
  StatusOr<FvecsReader> reader = FvecsReader::Open(fvecs_path);
  if (!reader.ok()) return reader.status();
  return BuildFromStream(&reader.value(), index_path);
}

StatusOr<OutOfCoreBuildStats> OutOfCoreBuilder::BuildFromStream(
    ChunkStream* base, const std::string& index_path) const {
  if (base->num_rows() == 0 || base->dim() == 0) {
    return Status::InvalidArgument("cannot build an index from an empty base");
  }
  if (config_.chunk_rows == 0) {
    return Status::InvalidArgument("OutOfCoreConfig::chunk_rows must be > 0");
  }
  StatusOr<OutOfCoreBuildStats> stats =
      config_.kind == OutOfCoreKind::kIvfFlat
          ? BuildIvfFlat(base, index_path, config_)
          : BuildSq8(base, index_path, config_);
  if (!stats.ok()) std::remove(index_path.c_str());
  return stats;
}

StatusOr<std::unique_ptr<Index>> OutOfCoreBuilder::BuildInMemory(
    const Matrix& base) const {
  if (base.rows() == 0 || base.cols() == 0) {
    return Status::InvalidArgument("cannot build an index from an empty base");
  }
  if (config_.chunk_rows == 0) {
    return Status::InvalidArgument("OutOfCoreConfig::chunk_rows must be > 0");
  }
  if (config_.kind == OutOfCoreKind::kSq8) {
    // The in-memory trainer already matches the streamed ranges/codes bit
    // for bit (same row order, same arithmetic).
    Sq8IndexConfig sc;
    sc.metric = config_.metric;
    sc.rerank_budget = config_.rerank_budget;
    return std::unique_ptr<Index>(std::make_unique<Sq8Index>(&base, sc));
  }
  MatrixStream stream(base);
  StatusOr<IvfModel> model = TrainIvf(&stream, config_);
  if (!model.ok()) return model.status();
  std::vector<uint32_t> assignments(base.rows());
  Status status = ForEachAssignedChunk(
      &stream, model.value(), config_.chunk_rows,
      [&](MatrixView chunk, const std::vector<uint32_t>& chunk_assignments,
          size_t row_base) {
        std::memcpy(assignments.data() + row_base, chunk_assignments.data(),
                    chunk_assignments.size() * sizeof(uint32_t));
        (void)chunk;
        return Status::Ok();
      });
  if (!status.ok()) return status;
  IvfConfig config;
  config.nlist = model.value().centroids.rows();
  config.kmeans_iterations = config_.train_epochs;
  config.seed = config_.seed;
  config.metric = config_.metric;
  return std::unique_ptr<Index>(std::make_unique<IvfFlatIndex>(
      MatrixView(base), config, std::move(model.value().centroids),
      std::move(assignments)));
}

}  // namespace usp
