// Disk-direct index construction for bases that exceed RAM. The builder
// streams an .fvecs base through bounded-memory passes — reservoir-sampled
// k-means++ seeding, mini-batch k-means training (baselines/kmeans.h), a
// chunked assignment/encode pass — and writes a sealed IVF-Flat or SQ8
// container file section by section (StreamingContainerWriter), spilling
// per-list postings and row assignments to temp files instead of holding
// them. The working set stays O(chunk_rows * dim + nlist * dim + largest
// list), never O(n * dim); the finished file opens through the ordinary
// OpenIndex heap/mmap paths and is byte-identical to SaveIndex of the
// equivalent in-memory build (BuildInMemory), which is how the acceptance
// tests pin the whole pipeline (tests/out_of_core_test.cc).
#ifndef USP_SERVE_OUT_OF_CORE_BUILDER_H_
#define USP_SERVE_OUT_OF_CORE_BUILDER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "dataset/fvecs_stream.h"
#include "dist/metric.h"
#include "index/index.h"
#include "tensor/matrix.h"
#include "util/status.h"

namespace usp {

/// Which sealed segment type the builder produces.
enum class OutOfCoreKind {
  kIvfFlat,  ///< mini-batch-trained coarse quantizer + exact lists
  kSq8,      ///< int8 scalar quantization (streaming range fit, 2 passes)
};

/// Out-of-core build knobs. Defaults target ~1M x 64-128d bases.
struct OutOfCoreConfig {
  OutOfCoreKind kind = OutOfCoreKind::kIvfFlat;

  /// All three metrics are supported; cosine trains/assigns/encodes on
  /// per-chunk unit-normalized rows (NormalizeRows is row-local, so chunking
  /// does not change the result).
  Metric metric = Metric::kSquaredL2;

  /// Rows per streaming pass step; bounds the resident chunk buffer.
  size_t chunk_rows = 65536;

  // IVF-Flat only:
  size_t nlist = 256;          ///< coarse lists (clamped to the sample size)
  size_t train_epochs = 5;     ///< mini-batch passes over the base
  size_t sample_rows = 65536;  ///< reservoir sample for k-means++ seeding
  double tolerance = 1e-4;     ///< mini-batch early-stop threshold
  uint64_t seed = 1;

  // SQ8 only:
  size_t rerank_budget = 100;
};

/// What a build did — reported, not persisted.
struct OutOfCoreBuildStats {
  size_t rows = 0;
  size_t dim = 0;
  size_t chunks = 0;        ///< encode-pass chunks streamed
  uint64_t file_size = 0;   ///< finished container bytes
  // IVF-Flat only:
  size_t nlist = 0;         ///< actual coarse lists (post sample clamp)
  size_t epochs_run = 0;    ///< mini-batch epochs before early stop
  double train_inertia = 0; ///< last epoch's streaming k-means objective
  size_t min_list = 0;      ///< smallest posting list
  size_t max_list = 0;      ///< largest posting list
  size_t empty_lists = 0;
};

/// Streams a base from disk into a sealed index container. Stateless apart
/// from its config; one builder can run many builds.
class OutOfCoreBuilder {
 public:
  explicit OutOfCoreBuilder(OutOfCoreConfig config) : config_(config) {}

  /// Builds `index_path` from the .fvecs file at `fvecs_path` without ever
  /// materializing the base in RAM. Temp spill files live next to
  /// `index_path` and are removed on exit; on error the partial output is
  /// removed too.
  StatusOr<OutOfCoreBuildStats> Build(const std::string& fvecs_path,
                                      const std::string& index_path) const;

  /// Same pipeline over any ChunkStream (how Build runs after opening the
  /// reader; also lets tests drive an in-memory MatrixStream through the
  /// disk-direct writer).
  StatusOr<OutOfCoreBuildStats> BuildFromStream(
      ChunkStream* base, const std::string& index_path) const;

  /// The bit-identity reference: the same pipeline over an in-memory
  /// MatrixStream with the same chunk boundaries, returned as a live index
  /// (no file involved). SaveIndex of this index produces a byte-identical
  /// container to Build on the same rows, and its SearchBatch results match
  /// the opened out-of-core index bit for bit. `base` must outlive the
  /// returned index.
  StatusOr<std::unique_ptr<Index>> BuildInMemory(const Matrix& base) const;

  const OutOfCoreConfig& config() const { return config_; }

 private:
  OutOfCoreConfig config_;
};

}  // namespace usp

#endif  // USP_SERVE_OUT_OF_CORE_BUILDER_H_
