// FAISS-style inverted-file indexes (the "FAISS" baseline of Fig. 7):
// IVF-Flat (k-means coarse quantizer + exact scan of probed lists) and
// IVF-PQ (same coarse quantizer, ADC scan + exact re-rank inside the lists).
#ifndef USP_IVF_IVF_H_
#define USP_IVF_IVF_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "baselines/kmeans.h"
#include "core/partition_index.h"
#include "dist/metric.h"
#include "index/index.h"
#include "quant/fastscan.h"
#include "quant/pq.h"
#include "quant/scann_index.h"

namespace usp {

/// IVF hyperparameters.
struct IvfConfig {
  size_t nlist = 64;             ///< coarse clusters (inverted lists)
  size_t kmeans_iterations = 20;
  uint64_t seed = 1;
  /// Search metric: kSquaredL2 reproduces the historical behavior exactly.
  /// kInnerProduct keeps L2 list residency (standard IVF-IP) but probes
  /// lists by centroid dot product and reranks by negated inner product.
  /// kCosine trains the coarse quantizer on unit-normalized data (spherical
  /// k-means) and probes/reranks by cosine distance. IVF-PQ follows the same
  /// scheme and ranks its ADC stage by dot-product tables for IP/cosine
  /// (cosine PQ-encodes the normalized base) — see the metric x index table
  /// in docs/ARCHITECTURE.md.
  Metric metric = Metric::kSquaredL2;
  // IVF-PQ only:
  PqConfig pq;
  size_t rerank_budget = 100;
  /// ADC execution mode (quant/fastscan.h): kAuto fast-scans 4-bit
  /// codebooks on unfiltered queries. Runtime knob, not persisted.
  AdcMode adc = AdcMode::kAuto;
};

/// IVF-Flat: probe nprobe nearest centroids, scan their lists exactly.
class IvfFlatIndex : public Index {
 public:
  IvfFlatIndex(const Matrix* base, const IvfConfig& config);

  /// Rehydrates from deserialized state: `centroids` and `assignments` must
  /// be exactly what a previous index exposed through coarse_quantizer() and
  /// partition().assignments().
  IvfFlatIndex(MatrixView base, const IvfConfig& config, Matrix centroids,
               std::vector<uint32_t> assignments);

  size_t dim() const override { return index_->dim(); }
  size_t size() const override { return index_->size(); }
  Metric metric() const override { return index_->metric(); }
  IndexType type() const override { return IndexType::kIvfFlat; }
  MatrixView base_view() const override { return index_->base(); }

  /// Planner cost input: the inner PartitionIndex's balanced-list estimate.
  /// (Query planning itself also happens in the inner index, whose
  /// SearchBatch this class delegates to.)
  size_t EstimateCandidates(size_t budget) const override {
    return index_->EstimateCandidates(budget);
  }

  /// k-NN search probing the `options.budget` (= nprobe) best lists; an
  /// options.filter restricts results to allowed base rows (dropped before
  /// the exact scan). `options.num_threads` caps the per-query search
  /// sharding (0 = pool default, 1 = serial; coarse scoring still uses the
  /// pool's GEMM); results are identical at every setting.
  using Index::SearchBatch;
  BatchSearchResult SearchBatch(const SearchRequest& request) const override;

  /// Radius search over the probed lists: delegates to the inner
  /// PartitionIndex, which shares this index's base view and metric, so the
  /// full-budget bit-identity contract carries over unchanged.
  RadiusResult RadiusSearchBatch(const RadiusRequest& request) const override {
    return index_->RadiusSearchBatch(request);
  }

  const KMeansPartitioner& coarse_quantizer() const { return *coarse_; }
  const PartitionIndex& partition() const { return *index_; }
  const IvfConfig& config() const { return config_; }

 private:
  IvfConfig config_;
  std::unique_ptr<KMeansPartitioner> coarse_;
  std::unique_ptr<PartitionIndex> index_;
};

/// IVF-PQ: probe nprobe lists, score with ADC, exact re-rank of the best.
class IvfPqIndex : public Index {
 public:
  /// Constructing with an invalid config (see ValidateConfig) aborts; call
  /// ValidateConfig first when the config comes from user input or a file.
  IvfPqIndex(const Matrix* base, const IvfConfig& config);

  /// Rehydrates from deserialized state; `codes` points at external (possibly
  /// mmap'd) storage that must outlive the index. `packed`, when non-null,
  /// points at the saved fast-scan blocks (kPqPackedCodes section, same
  /// lifetime rules); when null and codebook_size <= 16 they are rebuilt.
  IvfPqIndex(MatrixView base, const IvfConfig& config, Matrix centroids,
             ProductQuantizer quantizer, const uint8_t* codes,
             const std::vector<uint32_t>& assignments,
             const uint8_t* packed = nullptr);

  /// Rejects malformed shape parameters (nlist, PQ subspaces/codebook size),
  /// so misconfiguration surfaces as a Status at config/load time instead of
  /// an abort deep in construction. All three metrics are accepted: L2 runs
  /// the historical squared-distance ADC tables bit-identically, IP/cosine
  /// rank the ADC stage by dot-product tables (quant/scann_index.h).
  static Status ValidateConfig(const IvfConfig& config);

  size_t dim() const override { return index_->dim(); }
  size_t size() const override { return index_->size(); }
  Metric metric() const override { return config_.metric; }
  IndexType type() const override { return IndexType::kIvfPq; }
  MatrixView base_view() const override { return index_->base(); }

  /// Planner cost input: the inner ScannIndex's balanced-list estimate.
  /// (Query planning itself also happens in the inner index, whose
  /// SearchBatch this class delegates to.)
  size_t EstimateCandidates(size_t budget) const override {
    return index_->EstimateCandidates(budget);
  }

  /// k-NN search probing the `options.budget` (= nprobe) best lists; an
  /// options.filter drops disallowed rows before the ADC scan, so filtered
  /// rows never consume rerank budget. `options.num_threads` caps the
  /// per-query search sharding (0 = pool default, 1 = serial; coarse scoring
  /// still uses the pool's GEMM); results are identical at every setting.
  using Index::SearchBatch;
  BatchSearchResult SearchBatch(const SearchRequest& request) const override;

  /// Radius search over the probed lists. Delegates to the inner ScannIndex,
  /// which skips the ADC stage entirely for range queries (every gathered
  /// candidate is exact-scored — the radius cut needs true distances), so
  /// the result matches the flat types bit for bit at full budget.
  RadiusResult RadiusSearchBatch(const RadiusRequest& request) const override {
    return index_->RadiusSearchBatch(request);
  }

  const KMeansPartitioner& coarse_quantizer() const { return *coarse_; }
  const ScannIndex& scann() const { return *index_; }
  const IvfConfig& config() const { return config_; }

 private:
  IvfConfig config_;
  std::unique_ptr<KMeansPartitioner> coarse_;
  std::unique_ptr<ScannIndex> index_;
};

}  // namespace usp

#endif  // USP_IVF_IVF_H_
