// FAISS-style inverted-file indexes (the "FAISS" baseline of Fig. 7):
// IVF-Flat (k-means coarse quantizer + exact scan of probed lists) and
// IVF-PQ (same coarse quantizer, ADC scan + exact re-rank inside the lists).
#ifndef USP_IVF_IVF_H_
#define USP_IVF_IVF_H_

#include <cstdint>
#include <memory>

#include "baselines/kmeans.h"
#include "core/partition_index.h"
#include "dist/metric.h"
#include "quant/pq.h"
#include "quant/scann_index.h"

namespace usp {

/// IVF hyperparameters.
struct IvfConfig {
  size_t nlist = 64;             ///< coarse clusters (inverted lists)
  size_t kmeans_iterations = 20;
  uint64_t seed = 1;
  /// Search metric (IVF-Flat): kSquaredL2 reproduces the historical
  /// behavior exactly. kInnerProduct keeps L2 list residency (standard
  /// IVF-IP) but probes lists by centroid dot product and reranks by negated
  /// inner product. kCosine trains the coarse quantizer on unit-normalized
  /// data (spherical k-means) and probes/reranks by cosine distance.
  Metric metric = Metric::kSquaredL2;
  // IVF-PQ only:
  PqConfig pq;
  size_t rerank_budget = 100;
};

/// IVF-Flat: probe nprobe nearest centroids, scan their lists exactly.
class IvfFlatIndex {
 public:
  IvfFlatIndex(const Matrix* base, const IvfConfig& config);

  Metric metric() const { return index_->metric(); }

  /// `num_threads` caps the per-query search sharding (0 = pool default,
  /// 1 = serial; coarse scoring still uses the pool's GEMM); results are
  /// identical at every setting.
  BatchSearchResult SearchBatch(const Matrix& queries, size_t k, size_t nprobe,
                                size_t num_threads = 0) const;

  const KMeansPartitioner& coarse_quantizer() const { return *coarse_; }

 private:
  std::unique_ptr<KMeansPartitioner> coarse_;
  std::unique_ptr<PartitionIndex> index_;
};

/// IVF-PQ: probe nprobe lists, score with ADC, exact re-rank of the best.
class IvfPqIndex {
 public:
  IvfPqIndex(const Matrix* base, const IvfConfig& config);

  /// `num_threads` caps the per-query search sharding (0 = pool default,
  /// 1 = serial; coarse scoring still uses the pool's GEMM); results are
  /// identical at every setting.
  BatchSearchResult SearchBatch(const Matrix& queries, size_t k, size_t nprobe,
                                size_t num_threads = 0) const;

 private:
  std::unique_ptr<KMeansPartitioner> coarse_;
  std::unique_ptr<ScannIndex> index_;
};

}  // namespace usp

#endif  // USP_IVF_IVF_H_
