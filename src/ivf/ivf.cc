#include "ivf/ivf.h"

namespace usp {

IvfFlatIndex::IvfFlatIndex(const Matrix* base, const IvfConfig& config) {
  KMeansConfig kc;
  kc.num_clusters = config.nlist;
  kc.max_iterations = config.kmeans_iterations;
  kc.seed = config.seed;
  coarse_ = std::make_unique<KMeansPartitioner>(*base, kc);
  index_ = std::make_unique<PartitionIndex>(base, coarse_.get());
}

BatchSearchResult IvfFlatIndex::SearchBatch(const Matrix& queries, size_t k,
                                            size_t nprobe,
                                            size_t num_threads) const {
  return index_->SearchBatch(queries, k, nprobe, num_threads);
}

IvfPqIndex::IvfPqIndex(const Matrix* base, const IvfConfig& config) {
  KMeansConfig kc;
  kc.num_clusters = config.nlist;
  kc.max_iterations = config.kmeans_iterations;
  kc.seed = config.seed;
  coarse_ = std::make_unique<KMeansPartitioner>(*base, kc);

  ProductQuantizer pq(config.pq);
  pq.Train(*base);
  ScannIndexConfig sc;
  sc.rerank_budget = config.rerank_budget;
  index_ = std::make_unique<ScannIndex>(base, coarse_.get(), std::move(pq), sc);
}

BatchSearchResult IvfPqIndex::SearchBatch(const Matrix& queries, size_t k,
                                          size_t nprobe,
                                          size_t num_threads) const {
  return index_->SearchBatch(queries, k, nprobe, num_threads);
}

}  // namespace usp
