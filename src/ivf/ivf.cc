#include "ivf/ivf.h"

#include <utility>

#include "tensor/ops.h"

namespace usp {

IvfFlatIndex::IvfFlatIndex(const Matrix* base, const IvfConfig& config)
    : config_(config) {
  KMeansConfig kc;
  kc.num_clusters = config.nlist;
  kc.max_iterations = config.kmeans_iterations;
  kc.seed = config.seed;
  switch (config.metric) {
    case Metric::kSquaredL2:
      coarse_ = std::make_unique<KMeansPartitioner>(*base, kc);
      index_ = std::make_unique<PartitionIndex>(base, coarse_.get());
      break;
    case Metric::kInnerProduct: {
      // Standard IVF-IP: lists hold L2-nearest-centroid residents, queries
      // probe lists by centroid inner product, rerank is exact -<q, x>.
      KMeansResult km = RunKMeans(*base, kc);
      coarse_ = std::make_unique<KMeansPartitioner>(std::move(km.centroids),
                                                    Metric::kInnerProduct);
      index_ = std::make_unique<PartitionIndex>(base, coarse_.get(),
                                                std::move(km.assignments),
                                                Metric::kInnerProduct);
      break;
    }
    case Metric::kCosine: {
      // Spherical coarse quantizer: k-means on unit-normalized data.
      // Residency is assigned with the same cosine scoring that ranks probe
      // lists at query time (argmax similarity to the unit centroids), so a
      // point's home list is always its query-side rank-1 list; rerank is
      // exact cosine distance.
      Matrix normalized = base->Clone();
      NormalizeRows(&normalized);
      KMeansResult km = RunKMeans(normalized, kc);
      coarse_ = std::make_unique<KMeansPartitioner>(std::move(km.centroids),
                                                    Metric::kCosine);
      index_ = std::make_unique<PartitionIndex>(
          base, coarse_.get(), coarse_->AssignBins(normalized),
          Metric::kCosine);
      break;
    }
  }
}

IvfFlatIndex::IvfFlatIndex(MatrixView base, const IvfConfig& config,
                           Matrix centroids, std::vector<uint32_t> assignments)
    : config_(config) {
  coarse_ = std::make_unique<KMeansPartitioner>(
      KMeansPartitioner::FromTrainedCentroids(std::move(centroids),
                                              config.metric));
  index_ = std::make_unique<PartitionIndex>(base, coarse_.get(),
                                            std::move(assignments),
                                            config.metric);
}

BatchSearchResult IvfFlatIndex::SearchBatch(
    const SearchRequest& request) const {
  // The inner PartitionIndex shares the base-row id space, so the selector
  // and stats pass through unchanged.
  return index_->SearchBatch(request);
}

Status IvfPqIndex::ValidateConfig(const IvfConfig& config) {
  if (config.nlist == 0) {
    return Status::InvalidArgument("IvfConfig::nlist must be >= 1");
  }
  if (config.pq.num_subspaces == 0) {
    return Status::InvalidArgument("PqConfig::num_subspaces must be >= 1");
  }
  if (config.pq.codebook_size == 0 || config.pq.codebook_size > 256) {
    return Status::InvalidArgument(
        "PqConfig::codebook_size must be in [1, 256] (codes are one byte)");
  }
  return Status::Ok();
}

IvfPqIndex::IvfPqIndex(const Matrix* base, const IvfConfig& config)
    : config_(config) {
  // Fail loudly rather than silently serving a malformed config; fallible
  // callers (config files, loaders) should run ValidateConfig first.
  USP_CHECK(ValidateConfig(config).ok());
  KMeansConfig kc;
  kc.num_clusters = config.nlist;
  kc.max_iterations = config.kmeans_iterations;
  kc.seed = config.seed;
  ScannIndexConfig sc;
  sc.rerank_budget = config.rerank_budget;
  sc.adc = config.adc;
  switch (config.metric) {
    case Metric::kSquaredL2: {
      coarse_ = std::make_unique<KMeansPartitioner>(*base, kc);
      ProductQuantizer pq(config.pq);
      pq.Train(*base);
      index_ = std::make_unique<ScannIndex>(base, coarse_.get(), std::move(pq),
                                            sc);
      break;
    }
    case Metric::kInnerProduct: {
      // IVF-IP (mirrors IvfFlatIndex): lists hold L2-nearest-centroid
      // residents, probes rank lists by centroid dot product, ADC ranks by
      // dot tables, rerank is exact -<q, x>.
      KMeansResult km = RunKMeans(*base, kc);
      coarse_ = std::make_unique<KMeansPartitioner>(std::move(km.centroids),
                                                    Metric::kInnerProduct);
      ProductQuantizer pq(config.pq);
      pq.Train(*base);
      index_ = std::make_unique<ScannIndex>(base, coarse_.get(), std::move(pq),
                                            sc, Metric::kInnerProduct,
                                            &km.assignments);
      break;
    }
    case Metric::kCosine: {
      // Spherical coarse quantizer + PQ on the unit-normalized base; the
      // ScannIndex encodes its own normalized clone and reranks by exact
      // cosine distance.
      Matrix normalized = base->Clone();
      NormalizeRows(&normalized);
      KMeansResult km = RunKMeans(normalized, kc);
      coarse_ = std::make_unique<KMeansPartitioner>(std::move(km.centroids),
                                                    Metric::kCosine);
      const std::vector<uint32_t> assignments =
          coarse_->AssignBins(normalized);
      ProductQuantizer pq(config.pq);
      pq.Train(normalized);
      index_ = std::make_unique<ScannIndex>(base, coarse_.get(), std::move(pq),
                                            sc, Metric::kCosine, &assignments);
      break;
    }
  }
}

IvfPqIndex::IvfPqIndex(MatrixView base, const IvfConfig& config,
                       Matrix centroids, ProductQuantizer quantizer,
                       const uint8_t* codes,
                       const std::vector<uint32_t>& assignments,
                       const uint8_t* packed)
    : config_(config) {
  USP_CHECK(ValidateConfig(config).ok());
  coarse_ = std::make_unique<KMeansPartitioner>(
      KMeansPartitioner::FromTrainedCentroids(std::move(centroids),
                                              config.metric));
  ScannIndexConfig sc;
  sc.rerank_budget = config.rerank_budget;
  sc.adc = config.adc;
  index_ = std::make_unique<ScannIndex>(base, coarse_.get(),
                                        std::move(quantizer), sc, codes,
                                        assignments, config.metric, packed);
}

BatchSearchResult IvfPqIndex::SearchBatch(const SearchRequest& request) const {
  return index_->SearchBatch(request);
}

}  // namespace usp
