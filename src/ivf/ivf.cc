#include "ivf/ivf.h"

#include <utility>

#include "tensor/ops.h"

namespace usp {

IvfFlatIndex::IvfFlatIndex(const Matrix* base, const IvfConfig& config) {
  KMeansConfig kc;
  kc.num_clusters = config.nlist;
  kc.max_iterations = config.kmeans_iterations;
  kc.seed = config.seed;
  switch (config.metric) {
    case Metric::kSquaredL2:
      coarse_ = std::make_unique<KMeansPartitioner>(*base, kc);
      index_ = std::make_unique<PartitionIndex>(base, coarse_.get());
      break;
    case Metric::kInnerProduct: {
      // Standard IVF-IP: lists hold L2-nearest-centroid residents, queries
      // probe lists by centroid inner product, rerank is exact -<q, x>.
      KMeansResult km = RunKMeans(*base, kc);
      coarse_ = std::make_unique<KMeansPartitioner>(std::move(km.centroids),
                                                    Metric::kInnerProduct);
      index_ = std::make_unique<PartitionIndex>(base, coarse_.get(),
                                                std::move(km.assignments),
                                                Metric::kInnerProduct);
      break;
    }
    case Metric::kCosine: {
      // Spherical coarse quantizer: k-means on unit-normalized data.
      // Residency is assigned with the same cosine scoring that ranks probe
      // lists at query time (argmax similarity to the unit centroids), so a
      // point's home list is always its query-side rank-1 list; rerank is
      // exact cosine distance.
      Matrix normalized = base->Clone();
      NormalizeRows(&normalized);
      KMeansResult km = RunKMeans(normalized, kc);
      coarse_ = std::make_unique<KMeansPartitioner>(std::move(km.centroids),
                                                    Metric::kCosine);
      index_ = std::make_unique<PartitionIndex>(
          base, coarse_.get(), coarse_->AssignBins(normalized),
          Metric::kCosine);
      break;
    }
  }
}

BatchSearchResult IvfFlatIndex::SearchBatch(const Matrix& queries, size_t k,
                                            size_t nprobe,
                                            size_t num_threads) const {
  return index_->SearchBatch(queries, k, nprobe, num_threads);
}

IvfPqIndex::IvfPqIndex(const Matrix* base, const IvfConfig& config) {
  // The ADC pipeline is squared-L2 only for now; fail loudly rather than
  // silently serving wrong-metric neighbors.
  USP_CHECK(config.metric == Metric::kSquaredL2);
  KMeansConfig kc;
  kc.num_clusters = config.nlist;
  kc.max_iterations = config.kmeans_iterations;
  kc.seed = config.seed;
  coarse_ = std::make_unique<KMeansPartitioner>(*base, kc);

  ProductQuantizer pq(config.pq);
  pq.Train(*base);
  ScannIndexConfig sc;
  sc.rerank_budget = config.rerank_budget;
  index_ = std::make_unique<ScannIndex>(base, coarse_.get(), std::move(pq), sc);
}

BatchSearchResult IvfPqIndex::SearchBatch(const Matrix& queries, size_t k,
                                          size_t nprobe,
                                          size_t num_threads) const {
  return index_->SearchBatch(queries, k, nprobe, num_threads);
}

}  // namespace usp
