#include "core/partition_index.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <unordered_set>

#include "index/query_planner.h"
#include "knn/brute_force.h"
#include "util/thread_pool.h"

namespace usp {

PartitionIndex::PartitionIndex(const Matrix* base, const BinScorer* scorer,
                               Metric metric)
    : PartitionIndex(MatrixView(*base), scorer, scorer->AssignBins(*base),
                     metric) {}

PartitionIndex::PartitionIndex(const Matrix* base, const BinScorer* scorer,
                               std::vector<uint32_t> assignments, Metric metric)
    : PartitionIndex(MatrixView(*base), scorer, std::move(assignments),
                     metric) {}

PartitionIndex::PartitionIndex(MatrixView base, const BinScorer* scorer,
                               std::vector<uint32_t> assignments, Metric metric)
    : base_(base),
      scorer_(scorer),
      dist_(base, metric),
      assignments_(std::move(assignments)) {
  USP_CHECK(assignments_.size() == base_.rows());
  buckets_.resize(scorer_->num_bins());
  for (size_t i = 0; i < assignments_.size(); ++i) {
    USP_CHECK(assignments_[i] < buckets_.size());
    buckets_[assignments_[i]].push_back(static_cast<uint32_t>(i));
  }
}

Matrix PartitionIndex::ScoreQueries(MatrixView queries) const {
  return scorer_->ScoreBins(queries);
}

void PartitionIndex::CollectCandidates(const float* scores, size_t num_probes,
                                       std::vector<uint32_t>* candidates) const {
  candidates->clear();
  const size_t m = buckets_.size();
  num_probes = std::min(num_probes, m);
  // Rank bins by descending score (deterministic tie-break on bin id).
  std::vector<uint32_t> bin_order(m);
  std::iota(bin_order.begin(), bin_order.end(), 0u);
  std::partial_sort(bin_order.begin(), bin_order.begin() + num_probes,
                    bin_order.end(), [&](uint32_t a, uint32_t b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return a < b;
                    });
  for (size_t p = 0; p < num_probes; ++p) {
    const auto& bucket = buckets_[bin_order[p]];
    candidates->insert(candidates->end(), bucket.begin(), bucket.end());
  }
}

BatchSearchResult PartitionIndex::SearchBatch(
    const SearchRequest& request) const {
  // Planner hook: a filtered request may reroute to an allowed-set scan or
  // post-filter before any bin scoring happens (index/query_planner.h).
  // SearchBatchWithScores below is the raw pushdown path — callers that
  // precompute scores (eval sweeps) opt out of planning by construction.
  if (auto planned = MaybeReroute(*this, request)) return std::move(*planned);
  return SearchBatchWithScores(request.queries, ScoreQueries(request.queries),
                               request.options);
}

RadiusResult PartitionIndex::RadiusSearchBatch(
    const RadiusRequest& request) const {
  const Matrix scores = ScoreQueries(request.queries);
  const size_t probes = std::min(request.options.budget, buckets_.size());
  return CollectRadiusRows(
      request.queries.rows(), request.options,
      [&](size_t q, RadiusResult* result) {
        std::vector<uint32_t> candidates;
        CollectCandidates(scores.Row(q), probes, &candidates);
        RadiusRowCounts counts;
        auto hits = RangeFilterCandidates(dist_, request.queries.Row(q),
                                          &candidates, request.radius,
                                          request.options.filter, &counts);
        result->candidate_counts[q] = counts.scored;
        if (result->stats) {
          result->stats->candidates_scored[q] = counts.scored;
          result->stats->bins_probed[q] = static_cast<uint32_t>(probes);
          result->stats->filtered_out[q] = counts.filtered_out;
        }
        return hits;
      });
}

size_t PartitionIndex::EstimateCandidates(size_t budget) const {
  if (buckets_.empty()) return size();
  const size_t probes = std::min(std::max<size_t>(budget, 1), buckets_.size());
  return (size() * probes + buckets_.size() - 1) / buckets_.size();
}

BatchSearchResult PartitionIndex::SearchBatchWithScores(
    MatrixView queries, const Matrix& scores,
    const SearchOptions& options) const {
  USP_CHECK(scores.rows() == queries.rows());
  USP_CHECK(scores.cols() == buckets_.size());
  const size_t nq = queries.rows();
  const size_t probes = std::min(options.budget, buckets_.size());
  BatchSearchResult result;
  result.Prepare(nq, options);

  ParallelFor(nq, 8, options.num_threads, [&](size_t begin, size_t end,
                                              size_t) {
    std::vector<uint32_t> candidates;
    for (size_t q = begin; q < end; ++q) {
      CollectCandidates(scores.Row(q), probes, &candidates);
      RerankCounts counts;
      result.SetRow(q, RerankCandidatesScored(dist_, queries.Row(q),
                                              candidates, options.k,
                                              options.filter, &counts));
      // Buckets are disjoint, so post-dedupe scored == collected when no
      // filter drops anything: candidate_counts stays |C(q)| as scored.
      result.candidate_counts[q] = counts.scored;
      if (result.stats) {
        result.stats->candidates_scored[q] = counts.scored;
        result.stats->bins_probed[q] = static_cast<uint32_t>(probes);
        result.stats->filtered_out[q] = counts.filtered_out;
      }
    }
  });
  return result;
}

BatchSearchResult PartitionIndex::SearchBatchWithScores(
    MatrixView queries, const Matrix& scores, size_t k, size_t num_probes,
    size_t num_threads) const {
  SearchOptions options;
  options.k = k;
  options.budget = num_probes;
  options.num_threads = num_threads;
  return SearchBatchWithScores(queries, scores, options);
}

double KnnAccuracy(const BatchSearchResult& result,
                   const std::vector<uint32_t>& truth, size_t truth_k) {
  USP_CHECK(result.k <= truth_k);
  const size_t nq = result.candidate_counts.size();
  USP_CHECK(truth.size() >= nq * truth_k);
  size_t hits = 0;
  for (size_t q = 0; q < nq; ++q) {
    std::unordered_set<uint32_t> expected(truth.begin() + q * truth_k,
                                          truth.begin() + q * truth_k +
                                              result.k);
    const uint32_t* got = result.Row(q);
    for (size_t j = 0; j < result.k; ++j) {
      if (expected.count(got[j]) > 0) ++hits;
    }
  }
  return static_cast<double>(hits) /
         static_cast<double>(nq * result.k);
}

}  // namespace usp
